package xenic_test

import (
	"testing"

	"xenic"
)

// checkSystems constructs the Xenic cluster and all four baselines behind
// the System interface, running a small Smallbank (read-write) workload at
// a fixed seed, with any options applied at construction.
func checkSystems(t *testing.T, seed int64, faults *xenic.FaultPlan, opts ...xenic.Option) map[string]xenic.System {
	t.Helper()
	out := make(map[string]xenic.System)

	g := xenic.Smallbank()
	g.AccountsPerServer = 2000
	cfg := xenic.DefaultConfig()
	cfg.Nodes = 4
	cfg.Replication = 3
	cfg.AppThreads, cfg.WorkerThreads, cfg.NICCores = 2, 2, 4
	cfg.Outstanding = 4
	cfg.Seed = seed
	cfg.Faults = faults
	xc, err := xenic.NewCluster(cfg, g, opts...)
	if err != nil {
		t.Fatal(err)
	}
	out["xenic"] = xc

	for _, sys := range []xenic.Baseline{xenic.DrTMH, xenic.DrTMHNC, xenic.FaSST, xenic.DrTMR} {
		g := xenic.Smallbank()
		g.AccountsPerServer = 2000
		bcfg := xenic.DefaultBaselineConfig(sys)
		bcfg.Nodes = 4
		bcfg.Replication = 3
		bcfg.Threads = 4
		bcfg.Outstanding = 4
		bcfg.Seed = seed
		bcfg.Faults = faults
		bc, err := xenic.NewBaseline(bcfg, g, opts...)
		if err != nil {
			t.Fatal(err)
		}
		out[sys.String()] = bc
	}
	return out
}

// driveAndCheck runs s briefly, drains it, and requires a clean
// serializability check and state audit from its attached history.
func driveAndCheck(t *testing.T, name string, s xenic.System, h *xenic.History) {
	t.Helper()
	s.Start()
	s.Run(3 * xenic.Millisecond)
	if !s.Drain(200 * xenic.Millisecond) {
		t.Fatalf("%s: did not drain", name)
	}
	if h.Len() == 0 {
		t.Fatalf("%s: history recorded nothing", name)
	}
	rep := h.Check()
	if !rep.Ok() {
		t.Errorf("%s: serializability violation:\n%s", name, rep.String())
	}
	if err := s.AuditHistory(); err != nil {
		t.Errorf("%s: %v", name, err)
	}
}

// TestHistorySerializable attaches a recorder to every system via
// WithHistory, drives a read-write workload, and requires a cycle-free
// dependency graph plus a clean final-state audit.
func TestHistorySerializable(t *testing.T) {
	hists := make(map[string]*xenic.History)
	mk := func(name string) xenic.Option {
		h := xenic.NewHistory()
		hists[name] = h
		return xenic.WithHistory(h)
	}
	for _, name := range []string{"xenic", "DrTM+H", "DrTM+H NC", "FaSST", "DrTM+R"} {
		s := checkSystems(t, 7, nil, mk(name))[name]
		driveAndCheck(t, name, s, hists[name])
	}
}

// TestHistorySerializableUnderFaults repeats the check with a lossy
// network (drops and duplicates), which forces retransmissions, timeouts,
// and retries through the same commit protocol.
func TestHistorySerializableUnderFaults(t *testing.T) {
	plan, err := xenic.ParseFaultPlan("drop=0.02,dup=0.01")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"xenic", "DrTM+H", "DrTM+H NC", "FaSST", "DrTM+R"} {
		h := xenic.NewHistory()
		s := checkSystems(t, 11, plan, xenic.WithHistory(h))[name]
		driveAndCheck(t, name, s, h)
	}
}

// TestHistoryRecordingDeterministic verifies that attaching a recorder
// never perturbs the simulation: the same seed with and without
// WithHistory produces identical results on every system.
func TestHistoryRecordingDeterministic(t *testing.T) {
	run := func(name string, opts ...xenic.Option) xenic.Result {
		s := checkSystems(t, 3, nil, opts...)[name]
		res := s.Measure(1*xenic.Millisecond, 2*xenic.Millisecond)
		if !s.Drain(200 * xenic.Millisecond) {
			t.Fatalf("%s: did not drain", name)
		}
		return res
	}
	for _, name := range []string{"xenic", "DrTM+H", "DrTM+H NC", "FaSST", "DrTM+R"} {
		h := xenic.NewHistory()
		with := run(name, xenic.WithHistory(h))
		without := run(name)
		if with != without {
			t.Errorf("%s: WithHistory perturbed the run:\n  with:    %+v\n  without: %+v",
				name, with, without)
		}
		if h.Len() == 0 {
			t.Errorf("%s: recorder attached but empty", name)
		}
	}
}
