package xenic_test

import (
	"fmt"
	"testing"

	"xenic"
)

// openSystems builds all five systems (Xenic + 4 baselines) with an
// open-loop source configured by cfg, at a small 4-node scale.
func openSystems(t *testing.T, cfg xenic.OpenLoopConfig) map[string]xenic.System {
	t.Helper()
	out := map[string]xenic.System{}
	xc := xenic.DefaultConfig()
	xc.Nodes = 4
	xc.AppThreads = 2
	xc.WorkerThreads = 1
	xc.NICCores = 4
	cl, err := xenic.NewCluster(xc, &tinyWorkload{keys: 4000}, xenic.WithOpenLoop(cfg))
	if err != nil {
		t.Fatal(err)
	}
	out["xenic"] = cl
	for _, sys := range []xenic.Baseline{xenic.DrTMH, xenic.DrTMHNC, xenic.FaSST, xenic.DrTMR} {
		bc := xenic.DefaultBaselineConfig(sys)
		bc.Nodes = 4
		bc.Threads = 4
		b, err := xenic.NewBaseline(bc, &tinyWorkload{keys: 4000}, xenic.WithOpenLoop(cfg))
		if err != nil {
			t.Fatalf("%v: %v", sys, err)
		}
		out[fmt.Sprint(sys)] = b
	}
	return out
}

// TestOpenLoopAllSystems drives the open-loop front-end through every
// system: arrivals flow, transactions complete, and the system drains.
func TestOpenLoopAllSystems(t *testing.T) {
	for name, sys := range openSystems(t, xenic.OpenLoopConfig{
		Rate: 2e6, Sessions: 32, Seed: 7,
	}) {
		sys.Start()
		sys.Run(2 * xenic.Millisecond)
		ol := sys.OfferedLoad()
		if ol.Offered == 0 || ol.Admitted == 0 || ol.Completed == 0 {
			t.Fatalf("%s: no open-loop traffic: %+v", name, ol)
		}
		if ol.Rejected != 0 || ol.Delayed != 0 {
			t.Fatalf("%s: unlimited admission rejected/delayed: %+v", name, ol)
		}
		if ol.ActiveSessions != 32 || ol.SessionsOpened != 32 {
			t.Fatalf("%s: wrong session pool: %+v", name, ol)
		}
		if ol.LatencyP99 <= 0 || ol.LatencyP50 <= 0 {
			t.Fatalf("%s: no client latency recorded: %+v", name, ol)
		}
		if !sys.Drain(20 * xenic.Millisecond) {
			t.Fatalf("%s: failed to drain", name)
		}
		end := sys.OfferedLoad()
		if got := end.Completed + end.Failed; got != end.Admitted {
			t.Fatalf("%s: admitted %d but finished %d after drain", name, end.Admitted, got)
		}
		if end.InFlight != 0 || end.QueueLen != 0 {
			t.Fatalf("%s: residual in-flight work after drain: %+v", name, end)
		}
	}
}

// TestOpenLoopDeterminism runs the same seeded open-loop configuration
// twice on every system and requires identical results and counters.
func TestOpenLoopDeterminism(t *testing.T) {
	run := func() map[string]string {
		out := map[string]string{}
		for name, sys := range openSystems(t, xenic.OpenLoopConfig{
			Rate: 1.5e6, Sessions: 16, Tenants: 4,
			SessionLife: 500 * xenic.Microsecond,
			Admit:       xenic.NewOpenLoopQueueDepth(64, 256),
			Seed:        11,
		}) {
			res := sys.Measure(500*xenic.Microsecond, 2*xenic.Millisecond)
			out[name] = fmt.Sprintf("%v | %+v", res, sys.OfferedLoad())
		}
		return out
	}
	a, b := run(), run()
	for name := range a {
		if a[name] != b[name] {
			t.Fatalf("%s: seeded runs diverge:\n%s\n%s", name, a[name], b[name])
		}
	}
}

// TestSessionChurn enables connection churn and checks sessions cycle while
// the pool size stays constant and the system still drains cleanly.
func TestSessionChurn(t *testing.T) {
	for name, sys := range openSystems(t, xenic.OpenLoopConfig{
		Rate: 1e6, Sessions: 16, SessionLife: 200 * xenic.Microsecond, Seed: 3,
	}) {
		sys.Start()
		sys.Run(2 * xenic.Millisecond)
		ol := sys.OfferedLoad()
		if ol.SessionsClosed == 0 {
			t.Fatalf("%s: churn enabled but no sessions closed: %+v", name, ol)
		}
		if ol.ActiveSessions != 16 {
			t.Fatalf("%s: churn changed the pool size: %+v", name, ol)
		}
		if ol.SessionsOpened != ol.SessionsClosed+16 {
			t.Fatalf("%s: open/close accounting off: %+v", name, ol)
		}
		if !sys.Drain(20 * xenic.Millisecond) {
			t.Fatalf("%s: failed to drain under churn", name)
		}
	}
}

// TestMeasureStartsAttachedSource pins the Measure contract for open-loop:
// with a LoadSource attached, Measure starts the source — never the
// built-in closed loop.
func TestMeasureStartsAttachedSource(t *testing.T) {
	cfg := xenic.DefaultConfig()
	cfg.Nodes = 4
	cfg.AppThreads = 2
	cfg.WorkerThreads = 1
	cfg.NICCores = 4
	cl, err := xenic.NewCluster(cfg, &tinyWorkload{keys: 4000},
		xenic.WithOpenLoop(xenic.OpenLoopConfig{Rate: 1e6, Sessions: 16, Seed: 5}))
	if err != nil {
		t.Fatal(err)
	}
	res := cl.Measure(500*xenic.Microsecond, 2*xenic.Millisecond)
	ol := cl.OfferedLoad()
	if ol.Offered == 0 {
		t.Fatal("Measure did not start the attached source")
	}
	// Closed-loop top-up would commit far more than the source admitted;
	// every committed transaction must be an admitted open-loop arrival.
	if res.Committed == 0 || int64(res.Committed) > ol.Admitted {
		t.Fatalf("closed loop leaked into an open-loop Measure: committed=%d admitted=%d",
			res.Committed, ol.Admitted)
	}
}

// TestOpenLoopAdmissionBounds checks queue-depth backpressure holds
// in-flight work at its bound under an overload rate while the unlimited
// policy lets it grow without bound.
func TestOpenLoopAdmissionBounds(t *testing.T) {
	build := func(admit xenic.LoadAdmission) xenic.System {
		cfg := xenic.DefaultConfig()
		cfg.Nodes = 4
		cfg.AppThreads = 2
		cfg.WorkerThreads = 1
		cfg.NICCores = 4
		cl, err := xenic.NewCluster(cfg, &tinyWorkload{keys: 4000},
			xenic.WithOpenLoop(xenic.OpenLoopConfig{
				Rate: 4e7, Sessions: 32, Admit: admit, Seed: 9,
			}))
		if err != nil {
			t.Fatal(err)
		}
		return cl
	}

	bounded := build(xenic.NewOpenLoopQueueDepth(32, 128))
	bounded.Start()
	bounded.Run(2 * xenic.Millisecond)
	bl := bounded.OfferedLoad()
	if bl.InFlight > 32 {
		t.Fatalf("queue-depth bound violated: %+v", bl)
	}
	if bl.Rejected == 0 {
		t.Fatalf("overload with a full queue should reject: %+v", bl)
	}

	open := build(nil) // unlimited
	open.Start()
	open.Run(2 * xenic.Millisecond)
	old := open.OfferedLoad()
	if old.InFlight <= 32 {
		t.Fatalf("unlimited admission under overload should exceed the bound: %+v", old)
	}
	if old.Rejected != 0 {
		t.Fatalf("unlimited admission rejected arrivals: %+v", old)
	}
}
