package xenic_test

import (
	"math/rand"
	"testing"

	"xenic"
)

// tinyWorkload exercises the public API surface.
type tinyWorkload struct{ keys int }

type modPlace struct{ nodes int }

func (p modPlace) ShardOf(key uint64) int  { return int(key % uint64(p.nodes)) }
func (p modPlace) IsBTree(key uint64) bool { return false }

func (w *tinyWorkload) Name() string { return "tiny" }
func (w *tinyWorkload) Spec() xenic.StoreSpec {
	return xenic.StoreSpec{HashSlots: w.keys * 2, InlineValueSize: 16, MaxDisplacement: 16,
		NICCacheObjects: w.keys}
}
func (w *tinyWorkload) Placement(nodes, replication int) xenic.Placement {
	return modPlace{nodes: nodes}
}
func (w *tinyWorkload) Register(r *xenic.Registry) {}
func (w *tinyWorkload) Populate(shard, nodes int, emit func(uint64, []byte)) {
	for k := shard; k < w.keys; k += nodes {
		emit(uint64(k), []byte("hello"))
	}
}
func (w *tinyWorkload) Measure(d *xenic.Txn) bool { return true }
func (w *tinyWorkload) Next(node, thread int, rng *rand.Rand) *xenic.Txn {
	return &xenic.Txn{ReadKeys: []uint64{uint64(rng.Intn(w.keys))}}
}

func TestPublicAPIXenicCluster(t *testing.T) {
	cfg := xenic.DefaultConfig()
	cfg.Nodes = 4
	cfg.AppThreads = 2
	cfg.WorkerThreads = 1
	cfg.NICCores = 4
	cl, err := xenic.NewCluster(cfg, &tinyWorkload{keys: 4000})
	if err != nil {
		t.Fatal(err)
	}
	res := cl.Measure(1*xenic.Millisecond, 3*xenic.Millisecond)
	if res.PerServerTput <= 0 || res.Median <= 0 {
		t.Fatalf("empty result: %+v", res)
	}
}

func TestPublicAPIBaselineCluster(t *testing.T) {
	cfg := xenic.DefaultBaselineConfig(xenic.FaSST)
	cfg.Nodes = 4
	cfg.Threads = 4
	cl, err := xenic.NewBaseline(cfg, &tinyWorkload{keys: 4000})
	if err != nil {
		t.Fatal(err)
	}
	res := cl.Measure(1*xenic.Millisecond, 3*xenic.Millisecond)
	if res.PerServerTput <= 0 {
		t.Fatalf("empty result: %+v", res)
	}
}

func TestPublicWorkloadConstructors(t *testing.T) {
	if xenic.TPCC().Name() != "tpcc" ||
		xenic.TPCCNewOrder().Name() != "tpcc-neworder" ||
		xenic.Retwis().Name() != "retwis" ||
		xenic.Smallbank().Name() != "smallbank" {
		t.Fatal("workload constructors misnamed")
	}
	if xenic.DefaultParams().NICCores != 24 {
		t.Fatal("default params not the LiquidIO testbed")
	}
	if !xenic.AllFeatures().MultiHopOCC {
		t.Fatal("AllFeatures missing multi-hop")
	}
}
