module xenic

go 1.24
