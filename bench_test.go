// Benchmarks regenerating every table and figure of the paper's evaluation
// at reduced (Quick) scale — one testing.B per exhibit. Full-scale numbers
// are produced by `xenic-bench <id>` and recorded in EXPERIMENTS.md.
package xenic_test

import (
	"testing"

	"xenic/internal/harness"
)

func benchExperiment(b *testing.B, id string) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e, ok := harness.ByID(id)
		if !ok {
			b.Fatalf("experiment %s not registered", id)
		}
		r := e.Run(harness.Options{Quick: true, Seed: 1})
		if len(r.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// Figure 2 (§3.2): roundtrip latency of remote operations.
func BenchmarkFig2(b *testing.B) { benchExperiment(b, "fig2") }

// Figure 3 (§3.4): remote write throughput, batched vs single.
func BenchmarkFig3(b *testing.B) { benchExperiment(b, "fig3") }

// Figure 4 (§3.5): DMA engine throughput and latency.
func BenchmarkFig4(b *testing.B) { benchExperiment(b, "fig4") }

// Table 1 (§3.6): NIC ARM vs host Xeon core performance.
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }

// Table 2 (§4.1.4): lookup efficiency at 90% occupancy.
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }

// Figure 8a (§5.2): TPC-C new-order throughput/latency.
func BenchmarkFig8a(b *testing.B) { benchExperiment(b, "fig8a") }

// Figure 8b (§5.3): full TPC-C throughput/latency.
func BenchmarkFig8b(b *testing.B) { benchExperiment(b, "fig8b") }

// Figure 8c (§5.4): Retwis throughput/latency.
func BenchmarkFig8c(b *testing.B) { benchExperiment(b, "fig8c") }

// Figure 8d (§5.5): Smallbank throughput/latency.
func BenchmarkFig8d(b *testing.B) { benchExperiment(b, "fig8d") }

// Table 3 (§5.6): minimum threads at 95% of peak.
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }

// Figure 9a (§5.7): Retwis throughput ablation.
func BenchmarkFig9a(b *testing.B) { benchExperiment(b, "fig9a") }

// Figure 9b (§5.7): Smallbank latency ablation.
func BenchmarkFig9b(b *testing.B) { benchExperiment(b, "fig9b") }
