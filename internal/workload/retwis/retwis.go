// Package retwis implements the Retwis benchmark [38, 47] as configured in
// §5.4: a Twitter-like workload over 64B values with 1M keys per server,
// Zipf-distributed accesses (alpha = 0.5), 50% read-only transactions, and
// 1-10 keys per transaction. Minimal coordinator-side computation is
// involved, so all execution ships to the NIC (§5.6).
//
// The transaction mix follows the Retwis usage in Meerkat/TAPIR:
// 5% add-user (1 read, 3 writes), 15% follow (2 reads, 2 writes),
// 30% post-tweet (3 reads, 5 writes), 50% get-timeline (1-10 reads).
package retwis

import (
	"encoding/binary"
	"math"
	"math/rand"

	"xenic/internal/sim"
	"xenic/internal/txnmodel"
	"xenic/internal/wire"
)

const (
	fnTouch = iota + 1 // rewrite each update key's value
)

// Gen generates Retwis transactions.
type Gen struct {
	// KeysPerServer defaults to the paper's 1M.
	KeysPerServer int
	// Alpha is the Zipf exponent (paper: 0.5).
	Alpha float64
	// ValueSize defaults to 64B.
	ValueSize int
	// CacheObjects overrides the SmartNIC index cache capacity
	// (0 = KeysPerServer/4); the cache-size ablation sweeps it.
	CacheObjects int
	// NICExec annotates transactions for NIC execution.
	NICExec bool
	// ReadOnlyFrac overrides the get-timeline (read-only) share of the mix
	// (0 = the paper's 0.5; negative = no read-only transactions at all,
	// for update-path overhead benchmarks). The write transaction types
	// keep their relative proportions within the remainder. Read-heavy
	// MVCC sweeps push this to 0.8+.
	ReadOnlyFrac float64

	nodes int
	total int
}

// New returns a generator with the paper's parameters.
func New() *Gen {
	return &Gen{KeysPerServer: 1_000_000, Alpha: 0.5, ValueSize: 64, NICExec: true}
}

// Name implements txnmodel.Generator.
func (g *Gen) Name() string { return "retwis" }

// Spec sizes the store at ~60% occupancy.
func (g *Gen) Spec() txnmodel.StoreSpec {
	cache := g.CacheObjects
	if cache == 0 {
		cache = g.KeysPerServer / 4
	}
	return txnmodel.StoreSpec{
		HashSlots:       int(float64(g.KeysPerServer) / 0.6),
		InlineValueSize: g.ValueSize,
		MaxDisplacement: 16,
		NICCacheObjects: cache,
	}
}

type place struct{ nodes int }

func (p place) ShardOf(key uint64) int  { return int(key % uint64(p.nodes)) }
func (p place) IsBTree(key uint64) bool { return false }

// Placement implements txnmodel.Generator.
func (g *Gen) Placement(nodes, replication int) txnmodel.Placement {
	g.nodes = nodes
	g.total = g.KeysPerServer * nodes
	return place{nodes: nodes}
}

// Register implements txnmodel.Generator.
func (g *Gen) Register(r *txnmodel.Registry) {
	vs := g.ValueSize
	r.Register(&txnmodel.ExecFunc{
		ID: fnTouch, HostCost: 200 * sim.Nanosecond,
		Run: func(state []byte, reads []wire.KV) txnmodel.ExecResult {
			// state: count of trailing update keys in reads.
			nUpd := int(binary.LittleEndian.Uint16(state))
			var res txnmodel.ExecResult
			for _, kv := range reads[len(reads)-nUpd:] {
				nv := make([]byte, vs)
				binary.LittleEndian.PutUint64(nv, kv.Version+1)
				copy(nv[8:], kv.Value)
				res.Writes = append(res.Writes, wire.KV{Key: kv.Key, Value: nv})
			}
			return res
		},
	})
}

// Populate implements txnmodel.Generator.
func (g *Gen) Populate(shard, nodes int, emit func(uint64, []byte)) {
	v := make([]byte, g.ValueSize)
	for i := range v {
		v[i] = byte(i)
	}
	for k := shard; k < g.total; k += nodes {
		emit(uint64(k), v)
	}
}

// Measure implements txnmodel.Generator.
func (g *Gen) Measure(d *txnmodel.TxnDesc) bool { return true }

// zipfKey draws a key with P(rank k) proportional to k^-alpha, using the
// continuous inverse-CDF (rank = N * u^(1/(1-alpha))), then scatters ranks
// over the keyspace so hot keys spread across shards.
func (g *Gen) zipfKey(rng *rand.Rand) uint64 {
	u := rng.Float64()
	rank := uint64(float64(g.total) * math.Pow(u, 1/(1-g.Alpha)))
	if rank >= uint64(g.total) {
		rank = uint64(g.total) - 1
	}
	// Scatter: multiply by an odd constant mod total (bijective when total
	// and the constant are coprime; ensure by adjusting).
	return (rank * 2654435761) % uint64(g.total)
}

// Next implements txnmodel.Generator.
func (g *Gen) Next(node, thread int, rng *rand.Rand) *txnmodel.TxnDesc {
	d := &txnmodel.TxnDesc{NICExec: g.NICExec, GenCost: 100 * sim.Nanosecond}
	pickN := func(n int) []uint64 {
		seen := map[uint64]bool{}
		out := make([]uint64, 0, n)
		for len(out) < n {
			k := g.zipfKey(rng)
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
		return out
	}
	ro := g.ReadOnlyFrac
	if ro == 0 {
		ro = 0.5
	} else if ro < 0 {
		ro = 0
	}
	// Write types keep their paper proportions (add-user 10%, follow 30%,
	// post-tweet 60% of the write share) under any read-only fraction.
	wr := 1 - ro
	var nRead, nUpd int
	switch p := rng.Float64(); {
	case p < ro: // get-timeline: 1-10 reads
		nRead, nUpd = 1+rng.Intn(10), 0
	case p < ro+0.1*wr: // add-user: 1 read, 3 writes
		nRead, nUpd = 1, 3
	case p < ro+0.4*wr: // follow: 2 reads, 2 writes
		nRead, nUpd = 2, 2
	default: // post-tweet: 3 reads, 5 writes
		nRead, nUpd = 3, 5
	}
	keys := pickN(nRead + nUpd)
	d.ReadKeys = keys[:nRead]
	d.UpdateKeys = keys[nRead:]
	if nUpd > 0 {
		d.FnID = fnTouch
		st := make([]byte, 2)
		binary.LittleEndian.PutUint16(st, uint16(nUpd))
		d.State = st
	}
	return d
}

var _ txnmodel.Generator = (*Gen)(nil)
