// Package smallbank implements the Smallbank benchmark [13] as configured
// in §5.5: a database of account balances with 12B objects, 2.4M accounts
// per server, 15% read-only transactions, at most 3 keys per transaction,
// and 90% of transactions touching a hot 4% of accounts (low contention).
// All execution ships to the NIC (§5.6).
package smallbank

import (
	"encoding/binary"
	"math/rand"

	"xenic/internal/sim"
	"xenic/internal/txnmodel"
	"xenic/internal/wire"
)

// Table ids in the key's top byte.
const (
	tChecking uint64 = 1
	tSavings  uint64 = 2
)

// Transaction type mix (§5.5 / H-Store Smallbank): 15% read-only Balance,
// the rest split across the four update types.
const (
	fnBalance = iota + 1
	fnDepositChecking
	fnTransactSavings
	fnAmalgamate
	fnWriteCheck
)

// Gen generates Smallbank transactions.
type Gen struct {
	// AccountsPerServer defaults to the paper's 2.4M.
	AccountsPerServer int
	// HotFrac/HotProb: HotProb of transactions use the hot HotFrac of
	// accounts (defaults 0.04 and 0.9).
	HotFrac float64
	HotProb float64
	// NICExec annotates transactions for NIC execution (on for Xenic).
	NICExec bool
	// ReadOnlyFrac overrides the Balance (read-only) share of the mix
	// (0 = the paper's 0.15; negative = no read-only transactions at all,
	// for update-path overhead benchmarks). The four update types keep
	// their relative proportions within the remainder. Read-heavy MVCC
	// sweeps push this to 0.8+.
	ReadOnlyFrac float64

	nodes int
	total int
}

// New returns a generator with the paper's parameters.
func New() *Gen {
	return &Gen{AccountsPerServer: 2_400_000, HotFrac: 0.04, HotProb: 0.9, NICExec: true}
}

// Name implements txnmodel.Generator.
func (g *Gen) Name() string { return "smallbank" }

// Spec sizes the store: two 12B objects per account at 60% occupancy.
func (g *Gen) Spec() txnmodel.StoreSpec {
	slots := int(float64(g.AccountsPerServer*2) / 0.6)
	return txnmodel.StoreSpec{
		HashSlots:       slots,
		InlineValueSize: 16,
		MaxDisplacement: 16,
		NICCacheObjects: g.AccountsPerServer / 4,
	}
}

type place struct{ nodes int }

func (p place) ShardOf(key uint64) int  { return int((key & 0x00ffffffffffffff) % uint64(p.nodes)) }
func (p place) IsBTree(key uint64) bool { return false }

// Placement implements txnmodel.Generator: accounts stripe across nodes.
func (g *Gen) Placement(nodes, replication int) txnmodel.Placement {
	g.nodes = nodes
	g.total = g.AccountsPerServer * nodes
	return place{nodes: nodes}
}

func keyOf(table, account uint64) uint64 { return table<<56 | account }

func balance(v []byte) int64 {
	return int64(binary.LittleEndian.Uint64(v))
}

// val encodes a 12B account object: 8B balance + 4B flags.
func val(b int64) []byte {
	out := make([]byte, 12)
	binary.LittleEndian.PutUint64(out, uint64(b))
	return out
}

// Register implements txnmodel.Generator. Read slices arrive in
// (ReadKeys ++ UpdateKeys) order.
func (g *Gen) Register(r *txnmodel.Registry) {
	r.Register(&txnmodel.ExecFunc{
		ID: fnDepositChecking, HostCost: 150 * sim.Nanosecond,
		Run: func(state []byte, reads []wire.KV) txnmodel.ExecResult {
			amount := int64(binary.LittleEndian.Uint64(state))
			return txnmodel.ExecResult{Writes: []wire.KV{
				{Key: reads[0].Key, Value: val(balance(reads[0].Value) + amount)},
			}}
		},
	})
	r.Register(&txnmodel.ExecFunc{
		ID: fnTransactSavings, HostCost: 150 * sim.Nanosecond,
		Run: func(state []byte, reads []wire.KV) txnmodel.ExecResult {
			amount := int64(binary.LittleEndian.Uint64(state))
			nb := balance(reads[0].Value) + amount
			if nb < 0 {
				return txnmodel.ExecResult{Abort: true}
			}
			return txnmodel.ExecResult{Writes: []wire.KV{
				{Key: reads[0].Key, Value: val(nb)},
			}}
		},
	})
	r.Register(&txnmodel.ExecFunc{
		ID: fnAmalgamate, HostCost: 200 * sim.Nanosecond,
		Run: func(state []byte, reads []wire.KV) txnmodel.ExecResult {
			// reads: [A.savings, A.checking, B.checking] — all updates.
			total := balance(reads[0].Value) + balance(reads[1].Value)
			return txnmodel.ExecResult{Writes: []wire.KV{
				{Key: reads[0].Key, Value: val(0)},
				{Key: reads[1].Key, Value: val(0)},
				{Key: reads[2].Key, Value: val(balance(reads[2].Value) + total)},
			}}
		},
	})
	r.Register(&txnmodel.ExecFunc{
		ID: fnWriteCheck, HostCost: 180 * sim.Nanosecond,
		Run: func(state []byte, reads []wire.KV) txnmodel.ExecResult {
			// reads: [savings (read-only), checking (update)].
			amount := int64(binary.LittleEndian.Uint64(state))
			totalBal := balance(reads[0].Value) + balance(reads[1].Value)
			fee := int64(0)
			if totalBal < amount {
				fee = 1 // overdraft penalty
			}
			return txnmodel.ExecResult{Writes: []wire.KV{
				{Key: reads[1].Key, Value: val(balance(reads[1].Value) - amount - fee)},
			}}
		},
	})
}

// Populate implements txnmodel.Generator.
func (g *Gen) Populate(shard, nodes int, emit func(uint64, []byte)) {
	for a := shard; a < g.total; a += nodes {
		emit(keyOf(tChecking, uint64(a)), val(10_000))
		emit(keyOf(tSavings, uint64(a)), val(10_000))
	}
}

// Measure implements txnmodel.Generator: all transactions count.
func (g *Gen) Measure(d *txnmodel.TxnDesc) bool { return true }

// account draws an account id with the hot-set skew.
func (g *Gen) account(rng *rand.Rand) uint64 {
	hot := int(float64(g.total) * g.HotFrac)
	if hot < 1 {
		hot = 1
	}
	if rng.Float64() < g.HotProb {
		return uint64(rng.Intn(hot))
	}
	return uint64(hot + rng.Intn(g.total-hot))
}

func amountState(rng *rand.Rand) []byte {
	st := make([]byte, 8)
	binary.LittleEndian.PutUint64(st, uint64(1+rng.Intn(100)))
	return st
}

// Next implements txnmodel.Generator.
func (g *Gen) Next(node, thread int, rng *rand.Rand) *txnmodel.TxnDesc {
	d := &txnmodel.TxnDesc{NICExec: g.NICExec, GenCost: 120 * sim.Nanosecond}
	a := g.account(rng)
	ro := g.ReadOnlyFrac
	if ro == 0 {
		ro = 0.15
	} else if ro < 0 {
		ro = 0
	}
	// The four update types split the remainder evenly, as in the paper mix.
	wr := (1 - ro) / 4
	switch p := rng.Float64(); {
	case p < ro: // Balance: read-only
		d.ReadKeys = []uint64{keyOf(tSavings, a), keyOf(tChecking, a)}
	case p < ro+wr: // DepositChecking
		d.UpdateKeys = []uint64{keyOf(tChecking, a)}
		d.FnID = fnDepositChecking
		d.State = amountState(rng)
	case p < ro+2*wr: // TransactSavings
		d.UpdateKeys = []uint64{keyOf(tSavings, a)}
		d.FnID = fnTransactSavings
		d.State = amountState(rng)
	case p < ro+3*wr: // Amalgamate: two customers, three updates
		b := g.account(rng)
		for b == a {
			b = g.account(rng)
		}
		d.UpdateKeys = []uint64{keyOf(tSavings, a), keyOf(tChecking, a), keyOf(tChecking, b)}
		d.FnID = fnAmalgamate
	default: // WriteCheck: read savings, update checking
		d.ReadKeys = []uint64{keyOf(tSavings, a)}
		d.UpdateKeys = []uint64{keyOf(tChecking, a)}
		d.FnID = fnWriteCheck
		d.State = amountState(rng)
	}
	return d
}

var _ txnmodel.Generator = (*Gen)(nil)
