// Package tpcc implements the TPC-C benchmark [42] as used in §5.2-§5.3:
// nine tables with object sizes up to 660B, warehouses partitioned across
// servers, and two workload variants:
//
//   - the DrTM+H-comparison variant (§5.2): new-order transactions only,
//     with items drawn from partitions chosen uniformly at random (a
//     strenuous remote access pattern);
//   - the full mix (§5.3): new-order 45%, payment 43%, order-status 4%,
//     delivery 4%, stock-level 4%, standard remote probabilities (~10% of
//     new orders and 15% of payments touch a remote warehouse), with
//     long-running local transactions chopped into database transactions.
//
// Storage split (§5.2): warehouse, customer, and stock are partitioned hash
// tables accessed across the cluster; district, history, new-order, order,
// and order-line are coordinator-local B+trees; item is a read-only
// catalog replicated at every node (its reads are part of transaction
// generation). Throughput is reported as new orders per second (§5.3).
package tpcc

import (
	"encoding/binary"
	"math/rand"

	"xenic/internal/sim"
	"xenic/internal/txnmodel"
	"xenic/internal/wire"
)

// Table tags (key top byte).
const (
	tWarehouse uint64 = 1
	tDistrict  uint64 = 2
	tCustomer  uint64 = 3
	tHistory   uint64 = 4
	tNewOrder  uint64 = 5
	tOrder     uint64 = 6
	tOrderLine uint64 = 7
	tStock     uint64 = 9
)

// Object sizes (bytes), following the TPC-C schema footprints the paper
// cites (up to 660B; stock and customer exceed the 256B inline threshold
// and live behind large-object pointers in the Xenic store).
const (
	warehouseSize = 89
	districtSize  = 95
	customerSize  = 655
	historySize   = 46
	newOrderSize  = 8
	orderSize     = 24
	orderLineSize = 54
	stockSize     = 306
)

// Execution function ids.
const (
	fnNewOrder = iota + 1
	fnPayment
	fnDelivery
)

// Gen generates TPC-C transactions.
type Gen struct {
	// WarehousesPerServer defaults to the paper's 72.
	WarehousesPerServer int
	// ItemsPerWarehouse is the stock rows per warehouse. TPC-C specifies
	// 100k; the default is scaled to 2k to fit simulation memory —
	// store occupancy and access skew are preserved (see EXPERIMENTS.md).
	ItemsPerWarehouse int
	// CustomersPerDistrict is scaled from TPC-C's 3000 for the same reason.
	CustomersPerDistrict int
	// Districts per warehouse (spec: 10).
	Districts int
	// NewOrderOnly selects the §5.2 variant.
	NewOrderOnly bool
	// UniformItems draws item partitions uniformly at random (§5.2);
	// otherwise the standard ~1%-per-item remote-warehouse rule applies.
	UniformItems bool
	// NICExec ships new-order and payment execution to the NIC (§5.3).
	NICExec bool

	nodes int
	seqs  map[uint64]uint32 // per-(w,d) order-id sequencers
	hseq  map[uint64]uint32 // per-w history sequencers
}

// New returns the full-mix generator at the paper's scale factors.
func New() *Gen {
	return &Gen{
		WarehousesPerServer:  72,
		ItemsPerWarehouse:    2000,
		CustomersPerDistrict: 60,
		Districts:            10,
		NICExec:              true,
		seqs:                 map[uint64]uint32{},
		hseq:                 map[uint64]uint32{},
	}
}

// NewOrderVariant returns the §5.2 new-order-only generator.
func NewOrderVariant() *Gen {
	g := New()
	g.NewOrderOnly = true
	g.UniformItems = true
	return g
}

// Name implements txnmodel.Generator.
func (g *Gen) Name() string {
	if g.NewOrderOnly {
		return "tpcc-neworder"
	}
	return "tpcc"
}

// Spec sizes each node's hash store: warehouses + customers + stock at
// ~60% occupancy.
func (g *Gen) Spec() txnmodel.StoreSpec {
	perServer := g.WarehousesPerServer * (1 + g.Districts*g.CustomersPerDistrict + g.ItemsPerWarehouse)
	return txnmodel.StoreSpec{
		HashSlots:       int(float64(perServer) / 0.6),
		InlineValueSize: 96,
		MaxDisplacement: 16,
		NICCacheObjects: perServer / 4,
	}
}

type place struct{ nodes int }

func warehouseOf(key uint64) uint64 { return (key >> 40) & 0xffff }

func (p place) ShardOf(key uint64) int { return int(warehouseOf(key) % uint64(p.nodes)) }
func (p place) IsBTree(key uint64) bool {
	switch key >> 56 {
	case tDistrict, tHistory, tNewOrder, tOrder, tOrderLine:
		return true
	}
	return false
}

// Placement implements txnmodel.Generator.
func (g *Gen) Placement(nodes, replication int) txnmodel.Placement {
	g.nodes = nodes
	return place{nodes: nodes}
}

func key(table, w, payload uint64) uint64 {
	return table<<56 | (w&0xffff)<<40 | (payload & 0xffffffffff)
}

func custKey(w, d, c uint64) uint64  { return key(tCustomer, w, d<<24|c) }
func stockKey(w, i uint64) uint64    { return key(tStock, w, i) }
func distKey(w, d uint64) uint64     { return key(tDistrict, w, d) }
func orderKey(w, d, o uint64) uint64 { return key(tOrder, w, d<<24|o) }
func nordKey(w, d, o uint64) uint64  { return key(tNewOrder, w, d<<24|o) }
func olKey(w, d, o, l uint64) uint64 { return key(tOrderLine, w, d<<28|o<<4|l) }
func histKey(w, h uint64) uint64     { return key(tHistory, w, h) }

func filler(n int, tag byte) []byte {
	v := make([]byte, n)
	for i := range v {
		v[i] = tag + byte(i%13)
	}
	return v
}

// stockVal encodes quantity/ytd at the head of a 306B stock row.
func stockVal(quantity, ytd uint32) []byte {
	v := filler(stockSize, 's')
	binary.LittleEndian.PutUint32(v, quantity)
	binary.LittleEndian.PutUint32(v[4:], ytd)
	return v
}

// moneyVal encodes a balance at the head of an n-byte row.
func moneyVal(n int, tag byte, balance uint64) []byte {
	v := filler(n, tag)
	binary.LittleEndian.PutUint64(v, balance)
	return v
}

// Register implements txnmodel.Generator.
func (g *Gen) Register(r *txnmodel.Registry) {
	r.Register(&txnmodel.ExecFunc{
		ID: fnNewOrder, HostCost: 1200 * sim.Nanosecond,
		Run: func(state []byte, reads []wire.KV) txnmodel.ExecResult {
			// state: nItems, then per-item quantity. reads: [customer,
			// warehouse, stock..., blind entries...].
			n := int(state[0])
			var res txnmodel.ExecResult
			for i := 0; i < n; i++ {
				kv := reads[2+i]
				qty := uint32(state[1+i])
				cur := uint32(10)
				ytd := uint32(0)
				if len(kv.Value) >= 8 {
					cur = binary.LittleEndian.Uint32(kv.Value)
					ytd = binary.LittleEndian.Uint32(kv.Value[4:])
				}
				if cur >= qty+10 {
					cur -= qty
				} else {
					cur = cur - qty + 91
				}
				res.Writes = append(res.Writes, wire.KV{Key: kv.Key, Value: stockVal(cur, ytd+qty)})
			}
			return res
		},
	})
	r.Register(&txnmodel.ExecFunc{
		ID: fnPayment, HostCost: 600 * sim.Nanosecond,
		Run: func(state []byte, reads []wire.KV) txnmodel.ExecResult {
			// reads: [customer, warehouse, ...blind]. state: amount.
			amount := binary.LittleEndian.Uint64(state)
			cust, wh := reads[0], reads[1]
			cbal := uint64(0)
			if len(cust.Value) >= 8 {
				cbal = binary.LittleEndian.Uint64(cust.Value)
			}
			wytd := uint64(0)
			if len(wh.Value) >= 8 {
				wytd = binary.LittleEndian.Uint64(wh.Value)
			}
			return txnmodel.ExecResult{Writes: []wire.KV{
				{Key: cust.Key, Value: moneyVal(customerSize, 'c', cbal-amount)},
				{Key: wh.Key, Value: moneyVal(warehouseSize, 'w', wytd+amount)},
			}}
		},
	})
	r.Register(&txnmodel.ExecFunc{
		ID: fnDelivery, HostCost: 2500 * sim.Nanosecond,
		Run: func(state []byte, reads []wire.KV) txnmodel.ExecResult {
			// reads: customers to credit (updates). state: amount.
			amount := binary.LittleEndian.Uint64(state)
			var res txnmodel.ExecResult
			for _, kv := range reads {
				if kv.Key>>56 != tCustomer {
					continue
				}
				bal := uint64(0)
				if len(kv.Value) >= 8 {
					bal = binary.LittleEndian.Uint64(kv.Value)
				}
				res.Writes = append(res.Writes, wire.KV{
					Key: kv.Key, Value: moneyVal(customerSize, 'c', bal+amount),
				})
			}
			return res
		},
	})
}

// Populate implements txnmodel.Generator: warehouses, customers, and stock
// rows for the shard's warehouses. Order tables start empty; districts are
// seeded so their versions exist.
func (g *Gen) Populate(shard, nodes int, emit func(uint64, []byte)) {
	total := g.WarehousesPerServer * nodes
	for w := shard; w < total; w += nodes {
		wu := uint64(w)
		emit(key(tWarehouse, wu, 0), moneyVal(warehouseSize, 'w', 0))
		for d := 0; d < g.Districts; d++ {
			emit(distKey(wu, uint64(d)), filler(districtSize, 'd'))
			for c := 0; c < g.CustomersPerDistrict; c++ {
				emit(custKey(wu, uint64(d), uint64(c)), moneyVal(customerSize, 'c', 1000))
			}
		}
		for i := 0; i < g.ItemsPerWarehouse; i++ {
			emit(stockKey(wu, uint64(i)), stockVal(50, 0))
		}
	}
}

// Measure implements txnmodel.Generator: only new orders count (§5.3).
func (g *Gen) Measure(d *txnmodel.TxnDesc) bool { return d.FnID == fnNewOrder }

// localWarehouse picks one of the node's warehouses.
func (g *Gen) localWarehouse(node int, rng *rand.Rand) uint64 {
	return uint64(node + g.nodes*rng.Intn(g.WarehousesPerServer))
}

func (g *Gen) nextOID(w, d uint64) uint64 {
	k := w<<8 | d
	g.seqs[k]++
	return uint64(g.seqs[k])
}

func (g *Gen) lastOID(w, d uint64) uint64 {
	return uint64(g.seqs[w<<8|d])
}

func (g *Gen) nextHist(w uint64) uint64 {
	g.hseq[w]++
	return uint64(g.hseq[w])
}

// nuRand is TPC-C's non-uniform customer/item distribution.
func nuRand(rng *rand.Rand, a, x, y int) int {
	c := a / 2
	return (((rng.Intn(a+1) | (x + rng.Intn(y-x+1))) + c) % (y - x + 1)) + x
}

// Next implements txnmodel.Generator.
func (g *Gen) Next(node, thread int, rng *rand.Rand) *txnmodel.TxnDesc {
	if g.NewOrderOnly {
		return g.newOrder(node, rng)
	}
	switch p := rng.Float64(); {
	case p < 0.45:
		return g.newOrder(node, rng)
	case p < 0.88:
		return g.payment(node, rng)
	case p < 0.92:
		return g.orderStatus(node, rng)
	case p < 0.96:
		return g.delivery(node, rng)
	default:
		return g.stockLevel(node, rng)
	}
}

// newOrder builds a new-order transaction at a home warehouse of node
// (§5.2): reads customer and warehouse, updates 5-15 stock rows (remote
// per the variant's pattern), and inserts district/order/order-line rows
// as coordinator-local B+tree blind writes.
func (g *Gen) newOrder(node int, rng *rand.Rand) *txnmodel.TxnDesc {
	w := g.localWarehouse(node, rng)
	d := uint64(rng.Intn(g.Districts))
	c := uint64(nuRand(rng, 1023, 0, g.CustomersPerDistrict-1))
	nItems := 5 + rng.Intn(11)
	oid := g.nextOID(w, d)

	desc := &txnmodel.TxnDesc{
		FnID:    fnNewOrder,
		NICExec: g.NICExec,
		// District read, item-catalog lookups, and record building happen
		// at generation (the chopped local logic of §5.3).
		GenCost: sim.Time(1200+180*nItems) * sim.Nanosecond,
	}
	desc.ReadKeys = []uint64{custKey(w, d, c), key(tWarehouse, w, 0)}

	state := make([]byte, 1+nItems)
	state[0] = byte(nItems)
	seen := map[uint64]bool{}
	for i := 0; i < nItems; i++ {
		item := uint64(nuRand(rng, 8191, 0, g.ItemsPerWarehouse-1))
		sw := w
		if g.UniformItems {
			// §5.2: partitions chosen uniformly at random.
			sw = uint64(rng.Intn(g.WarehousesPerServer * g.nodes))
		} else if rng.Intn(100) == 0 {
			// Standard: ~1% of items from a remote warehouse.
			sw = uint64(rng.Intn(g.WarehousesPerServer * g.nodes))
		}
		sk := stockKey(sw, item)
		for seen[sk] {
			item = (item + 1) % uint64(g.ItemsPerWarehouse)
			sk = stockKey(sw, item)
		}
		seen[sk] = true
		desc.UpdateKeys = append(desc.UpdateKeys, sk)
		state[1+i] = byte(1 + rng.Intn(10))
	}
	desc.State = state

	// Local B+tree inserts: district update, order, new-order, order lines.
	desc.BlindWrites = append(desc.BlindWrites,
		wire.KV{Key: distKey(w, d), Value: filler(districtSize, 'd')},
		wire.KV{Key: orderKey(w, d, oid), Value: filler(orderSize, 'o')},
		wire.KV{Key: nordKey(w, d, oid), Value: filler(newOrderSize, 'n')},
	)
	for l := 0; l < nItems; l++ {
		desc.BlindWrites = append(desc.BlindWrites,
			wire.KV{Key: olKey(w, d, oid, uint64(l)), Value: filler(orderLineSize, 'l')})
	}
	return desc
}

// payment updates a customer's balance (15% at a remote warehouse) and the
// home warehouse/district year-to-date totals (§5.3).
func (g *Gen) payment(node int, rng *rand.Rand) *txnmodel.TxnDesc {
	w := g.localWarehouse(node, rng)
	cw := w
	if rng.Intn(100) < 15 {
		cw = uint64(rng.Intn(g.WarehousesPerServer * g.nodes))
	}
	d := uint64(rng.Intn(g.Districts))
	c := uint64(nuRand(rng, 1023, 0, g.CustomersPerDistrict-1))
	st := make([]byte, 8)
	binary.LittleEndian.PutUint64(st, uint64(1+rng.Intn(5000)))
	return &txnmodel.TxnDesc{
		FnID:    fnPayment,
		NICExec: g.NICExec,
		GenCost: 900 * sim.Nanosecond,
		State:   st,
		UpdateKeys: []uint64{
			custKey(cw, d, c),
			key(tWarehouse, w, 0),
		},
		BlindWrites: []wire.KV{
			{Key: distKey(w, d), Value: filler(districtSize, 'd')},
			{Key: histKey(w, g.nextHist(w)), Value: filler(historySize, 'h')},
		},
	}
}

// orderStatus is a coordinator-local read-only transaction: customer plus
// the most recent order and its lines.
func (g *Gen) orderStatus(node int, rng *rand.Rand) *txnmodel.TxnDesc {
	w := g.localWarehouse(node, rng)
	d := uint64(rng.Intn(g.Districts))
	c := uint64(nuRand(rng, 1023, 0, g.CustomersPerDistrict-1))
	desc := &txnmodel.TxnDesc{GenCost: 1500 * sim.Nanosecond}
	desc.ReadKeys = append(desc.ReadKeys, custKey(w, d, c))
	if oid := g.lastOID(w, d); oid > 0 {
		desc.ReadKeys = append(desc.ReadKeys, orderKey(w, d, oid))
		for l := 0; l < 5; l++ {
			desc.ReadKeys = append(desc.ReadKeys, olKey(w, d, oid, uint64(l)))
		}
	}
	return desc
}

// delivery is a chopped local transaction crediting one customer per
// district and marking orders delivered (§5.3).
func (g *Gen) delivery(node int, rng *rand.Rand) *txnmodel.TxnDesc {
	w := g.localWarehouse(node, rng)
	st := make([]byte, 8)
	binary.LittleEndian.PutUint64(st, uint64(1+rng.Intn(500)))
	desc := &txnmodel.TxnDesc{
		FnID:    fnDelivery,
		GenCost: 4000 * sim.Nanosecond, // B+tree scans for oldest new-orders
		State:   st,
	}
	for d := 0; d < g.Districts; d++ {
		du := uint64(d)
		c := uint64(rng.Intn(g.CustomersPerDistrict))
		desc.UpdateKeys = append(desc.UpdateKeys, custKey(w, du, c))
		if oid := g.lastOID(w, du); oid > 0 {
			desc.BlindWrites = append(desc.BlindWrites,
				wire.KV{Key: orderKey(w, du, oid), Value: filler(orderSize, 'O')})
		}
	}
	return desc
}

// stockLevel is a coordinator-local read-only transaction over recent
// order lines and their stock rows.
func (g *Gen) stockLevel(node int, rng *rand.Rand) *txnmodel.TxnDesc {
	w := g.localWarehouse(node, rng)
	d := uint64(rng.Intn(g.Districts))
	desc := &txnmodel.TxnDesc{GenCost: 3000 * sim.Nanosecond}
	desc.ReadKeys = append(desc.ReadKeys, distKey(w, d))
	for i := 0; i < 20; i++ {
		item := uint64(rng.Intn(g.ItemsPerWarehouse))
		desc.ReadKeys = append(desc.ReadKeys, stockKey(w, item))
	}
	if oid := g.lastOID(w, d); oid > 0 {
		for l := 0; l < 5; l++ {
			desc.ReadKeys = append(desc.ReadKeys, olKey(w, d, oid, uint64(l)))
		}
	}
	return desc
}

var _ txnmodel.Generator = (*Gen)(nil)
