// Package workload_test runs each benchmark end to end on small clusters of
// both the Xenic system and a baseline, checking that transactions commit,
// the cluster quiesces, and replicas converge.
package workload_test

import (
	"math/rand"
	"testing"

	"xenic/internal/baseline"
	"xenic/internal/core"
	"xenic/internal/sim"
	"xenic/internal/txnmodel"
	"xenic/internal/workload/retwis"
	"xenic/internal/workload/smallbank"
	"xenic/internal/workload/tpcc"
)

func smallTPCC(newOrderOnly bool) *tpcc.Gen {
	var g *tpcc.Gen
	if newOrderOnly {
		g = tpcc.NewOrderVariant()
	} else {
		g = tpcc.New()
	}
	g.WarehousesPerServer = 4
	g.ItemsPerWarehouse = 400
	g.CustomersPerDistrict = 20
	return g
}

func smallRetwis() *retwis.Gen {
	g := retwis.New()
	g.KeysPerServer = 20000
	return g
}

func smallSmallbank() *smallbank.Gen {
	g := smallbank.New()
	g.AccountsPerServer = 20000
	return g
}

func runXenic(t *testing.T, gen txnmodel.Generator, dur sim.Time) *core.Cluster {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Nodes = 4
	cfg.AppThreads = 2
	cfg.WorkerThreads = 2
	cfg.NICCores = 6
	cfg.Outstanding = 4
	cl, err := core.New(cfg, gen)
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	cl.Run(dur)
	if !cl.Drain(time500()) {
		t.Fatalf("%s did not quiesce", gen.Name())
	}
	var committed int64
	for i := 0; i < cl.Nodes(); i++ {
		committed += cl.Node(i).Stats().Committed
	}
	if committed == 0 {
		t.Fatalf("%s committed nothing", gen.Name())
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := cl.ReplicasConsistent(); err != nil {
		t.Fatal(err)
	}
	return cl
}

func time500() sim.Time { return 500 * sim.Millisecond }

func runBaseline(t *testing.T, sys baseline.System, gen txnmodel.Generator, dur sim.Time) {
	t.Helper()
	cfg := baseline.DefaultConfig(sys)
	cfg.Nodes = 4
	cfg.Threads = 4
	cfg.Outstanding = 4
	cl, err := baseline.New(cfg, gen)
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	cl.Run(dur)
	if !cl.Drain(time500()) {
		t.Fatalf("%v/%s did not quiesce", sys, gen.Name())
	}
	if err := cl.ReplicasConsistent(); err != nil {
		t.Fatal(err)
	}
	var committed int64
	for i := 0; i < 4; i++ {
		committed += cl.Node(i).Stats().Committed
	}
	if committed == 0 {
		t.Fatalf("%v/%s committed nothing", sys, gen.Name())
	}
}

func TestSmallbankXenic(t *testing.T) {
	cl := runXenic(t, smallSmallbank(), 10*sim.Millisecond)
	// Money conservation: total balance is invariant under every
	// Smallbank transaction except WriteCheck's overdraft fee and
	// deposits; instead verify commit accounting matched writes.
	var aborts int64
	for i := 0; i < cl.Nodes(); i++ {
		aborts += cl.Node(i).Stats().Aborts
	}
	t.Logf("smallbank aborts: %d", aborts)
}

func TestRetwisXenic(t *testing.T) {
	runXenic(t, smallRetwis(), 10*sim.Millisecond)
}

func TestTPCCNewOrderXenic(t *testing.T) {
	cl := runXenic(t, smallTPCC(true), 10*sim.Millisecond)
	var measured int64
	for i := 0; i < cl.Nodes(); i++ {
		measured += cl.Node(i).Stats().Measured
	}
	if measured == 0 {
		t.Fatal("no new orders measured")
	}
}

func TestTPCCFullXenic(t *testing.T) {
	cl := runXenic(t, smallTPCC(false), 10*sim.Millisecond)
	var measured, committed int64
	for i := 0; i < cl.Nodes(); i++ {
		measured += cl.Node(i).Stats().Measured
		committed += cl.Node(i).Stats().Committed
	}
	if measured == 0 {
		t.Fatal("no new orders measured")
	}
	// New orders are ~45% of the mix.
	frac := float64(measured) / float64(committed)
	if frac < 0.3 || frac > 0.6 {
		t.Fatalf("new-order fraction %.2f out of range", frac)
	}
}

func TestSmallbankBaselines(t *testing.T) {
	for _, sys := range []baseline.System{baseline.DrTMH, baseline.FaSST} {
		runBaseline(t, sys, smallSmallbank(), 5*sim.Millisecond)
	}
}

func TestRetwisBaselines(t *testing.T) {
	for _, sys := range []baseline.System{baseline.DrTMH, baseline.DrTMHNC} {
		runBaseline(t, sys, smallRetwis(), 5*sim.Millisecond)
	}
}

func TestTPCCBaseline(t *testing.T) {
	runBaseline(t, baseline.DrTMH, smallTPCC(true), 5*sim.Millisecond)
	runBaseline(t, baseline.DrTMR, smallTPCC(false), 5*sim.Millisecond)
}

func TestGeneratorShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := smallTPCC(false)
	g.Placement(4, 3)
	counts := map[uint16]int{}
	for i := 0; i < 5000; i++ {
		d := g.Next(0, 0, rng)
		counts[d.FnID]++
		if len(d.UpdateKeys) == 0 && len(d.BlindWrites) == 0 && len(d.ReadKeys) == 0 {
			t.Fatal("empty transaction")
		}
	}
	// New-order (fn 1) ~45%, payment (fn 2) ~43%.
	if counts[1] < 2000 || counts[1] > 2600 {
		t.Fatalf("new-order count %d out of range", counts[1])
	}
	if counts[2] < 1900 || counts[2] > 2500 {
		t.Fatalf("payment count %d out of range", counts[2])
	}

	rw := smallRetwis()
	rw.Placement(4, 3)
	readOnly := 0
	for i := 0; i < 5000; i++ {
		d := rw.Next(0, 0, rng)
		n := len(d.ReadKeys) + len(d.UpdateKeys)
		if n < 1 || n > 10 {
			t.Fatalf("retwis txn with %d keys", n)
		}
		if d.ReadOnly() {
			readOnly++
		}
	}
	if readOnly < 2200 || readOnly > 2800 {
		t.Fatalf("retwis read-only fraction %d/5000", readOnly)
	}

	sb := smallSmallbank()
	sb.Placement(4, 3)
	readOnly = 0
	for i := 0; i < 5000; i++ {
		d := sb.Next(0, 0, rng)
		if len(d.ReadKeys)+len(d.UpdateKeys) > 3 {
			t.Fatalf("smallbank txn with >3 keys")
		}
		if d.ReadOnly() {
			readOnly++
		}
	}
	if readOnly < 550 || readOnly > 950 {
		t.Fatalf("smallbank read-only %d/5000, want ~15%%", readOnly)
	}
}

func TestTPCCKeyEncoding(t *testing.T) {
	g := smallTPCC(false)
	p := g.Placement(6, 3)
	// All district/order keys of a warehouse share its shard and are
	// B+tree keys; stock/customer are hash keys.
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 2000; i++ {
		d := g.Next(3, 0, rng)
		for _, kv := range d.BlindWrites {
			if !p.IsBTree(kv.Key) && (kv.Key>>56) != 1 && (kv.Key>>56) != 3 && (kv.Key>>56) != 9 {
				t.Fatalf("blind write to unexpected table %d", kv.Key>>56)
			}
			if p.IsBTree(kv.Key) && p.ShardOf(kv.Key) != 3 {
				t.Fatalf("B+tree blind write to remote shard %d", p.ShardOf(kv.Key))
			}
		}
		for _, k := range d.UpdateKeys {
			if p.IsBTree(k) {
				t.Fatal("B+tree key in UpdateKeys")
			}
		}
	}
}
