package openloop

import (
	"fmt"
	"strconv"
	"strings"

	"xenic/internal/sim"
)

// Decision is an admission-control verdict for one arrival.
type Decision uint8

const (
	// Admit injects the transaction now.
	Admit Decision = iota
	// Delay parks the arrival in the backpressure queue until capacity frees.
	Delay
	// Reject drops the arrival; the client sees an admission error.
	Reject
)

// Admission is a pluggable admission-control policy. Arrive is consulted
// once per arrival (and again per queued arrival when capacity frees);
// Release is called when an admitted transaction completes. Policies are
// pure functions of simulated time and the supplied occupancy, so runs stay
// deterministic.
type Admission interface {
	Name() string
	Arrive(now sim.Time, inflight, queued int) Decision
	Release(now sim.Time)
}

// Unlimited admits every arrival: the no-backpressure baseline whose p99
// diverges past saturation.
type Unlimited struct{}

// Name implements Admission.
func (Unlimited) Name() string { return "none" }

// Arrive implements Admission.
func (Unlimited) Arrive(sim.Time, int, int) Decision { return Admit }

// Release implements Admission.
func (Unlimited) Release(sim.Time) {}

// TokenBucket rate-limits admissions: tokens accrue at Rate per second of
// simulated time up to Burst, and an arrival without a token is rejected
// outright (no queueing — the NIC-edge "shed early" policy).
type TokenBucket struct {
	Rate  float64 // tokens per simulated second
	Burst float64 // bucket capacity; also the initial fill

	tokens float64
	last   sim.Time
	primed bool
}

// NewTokenBucket returns a token-bucket policy admitting rate txns/sec with
// the given burst allowance.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	return &TokenBucket{Rate: rate, Burst: burst}
}

// Name implements Admission.
func (tb *TokenBucket) Name() string { return "token" }

// Arrive implements Admission.
func (tb *TokenBucket) Arrive(now sim.Time, _, _ int) Decision {
	if !tb.primed {
		tb.tokens = tb.Burst
		tb.last = now
		tb.primed = true
	}
	tb.tokens += float64(now-tb.last) / float64(sim.Second) * tb.Rate
	if tb.tokens > tb.Burst {
		tb.tokens = tb.Burst
	}
	tb.last = now
	if tb.tokens >= 1 {
		tb.tokens--
		return Admit
	}
	return Reject
}

// Release implements Admission.
func (tb *TokenBucket) Release(sim.Time) {}

// QueueDepth bounds admitted-but-unfinished transactions at MaxInFlight —
// the closed-loop window re-imposed at the admission edge. Excess arrivals
// wait in a queue of at most MaxQueue; beyond that they are rejected. This
// is the policy that keeps in-system p99 bounded past the saturation knee.
type QueueDepth struct {
	MaxInFlight int
	MaxQueue    int
}

// NewQueueDepth returns a queue-depth policy bounding in-flight work.
func NewQueueDepth(maxInFlight, maxQueue int) *QueueDepth {
	return &QueueDepth{MaxInFlight: maxInFlight, MaxQueue: maxQueue}
}

// Name implements Admission.
func (qd *QueueDepth) Name() string { return "queue" }

// Arrive implements Admission.
func (qd *QueueDepth) Arrive(_ sim.Time, inflight, queued int) Decision {
	if inflight < qd.MaxInFlight {
		return Admit
	}
	if queued < qd.MaxQueue {
		return Delay
	}
	return Reject
}

// Release implements Admission.
func (qd *QueueDepth) Release(sim.Time) {}

// ParseAdmission maps a CLI policy spec to an Admission:
//
//	none                     no admission control (default when empty)
//	token:RATE[:BURST]       token bucket, RATE txns/sec (BURST defaults to RATE/100)
//	queue:DEPTH[:QLEN]       queue-depth bound (QLEN defaults to 4*DEPTH)
func ParseAdmission(spec string) (Admission, error) {
	parts := strings.Split(spec, ":")
	switch parts[0] {
	case "", "none", "unlimited":
		if len(parts) > 1 {
			return nil, fmt.Errorf("openloop: policy %q takes no arguments", parts[0])
		}
		return Unlimited{}, nil
	case "token":
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("openloop: want token:RATE[:BURST], got %q", spec)
		}
		rate, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || rate <= 0 {
			return nil, fmt.Errorf("openloop: bad token rate %q", parts[1])
		}
		burst := rate / 100
		if burst < 1 {
			burst = 1
		}
		if len(parts) == 3 {
			if burst, err = strconv.ParseFloat(parts[2], 64); err != nil || burst < 1 {
				return nil, fmt.Errorf("openloop: bad token burst %q", parts[2])
			}
		}
		return NewTokenBucket(rate, burst), nil
	case "queue":
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("openloop: want queue:DEPTH[:QLEN], got %q", spec)
		}
		depth, err := strconv.Atoi(parts[1])
		if err != nil || depth <= 0 {
			return nil, fmt.Errorf("openloop: bad queue depth %q", parts[1])
		}
		qlen := 4 * depth
		if len(parts) == 3 {
			if qlen, err = strconv.Atoi(parts[2]); err != nil || qlen < 0 {
				return nil, fmt.Errorf("openloop: bad queue length %q", parts[2])
			}
		}
		return NewQueueDepth(depth, qlen), nil
	default:
		return nil, fmt.Errorf("openloop: unknown admission policy %q (want none, token:RATE[:BURST], or queue:DEPTH[:QLEN])", parts[0])
	}
}
