package openloop

import (
	"math/rand"
	"testing"

	"xenic/internal/sim"
	"xenic/internal/txnmodel"
)

// fakeDriver is a minimal load.Driver for unit tests: every injected
// transaction completes successfully after a fixed service time.
type fakeDriver struct {
	eng      *sim.Engine
	service  sim.Time
	injected int
	closed   bool // closed-loop flag, toggled by Start/StopClosedLoop
}

func newFakeDriver() *fakeDriver {
	return &fakeDriver{eng: sim.NewEngine(1), service: 5 * sim.Microsecond}
}

func (f *fakeDriver) Engine() *sim.Engine          { return f.eng }
func (f *fakeDriver) Nodes() int                   { return 4 }
func (f *fakeDriver) AppThreadsPerNode() int       { return 2 }
func (f *fakeDriver) Workload() txnmodel.Generator { return fakeGen{} }
func (f *fakeDriver) StartClosedLoop()             { f.closed = true }
func (f *fakeDriver) StopClosedLoop()              { f.closed = false }
func (f *fakeDriver) InjectTxn(node, thread int, d *txnmodel.TxnDesc, done func(bool)) {
	f.injected++
	if done != nil {
		f.eng.After(f.service, func() { done(true) })
	}
}

type fakeGen struct{}

func (fakeGen) Name() string                                         { return "fake" }
func (fakeGen) Spec() txnmodel.StoreSpec                             { return txnmodel.StoreSpec{} }
func (fakeGen) Placement(nodes, repl int) txnmodel.Placement         { return nil }
func (fakeGen) Register(r *txnmodel.Registry)                        {}
func (fakeGen) Populate(shard, nodes int, emit func(uint64, []byte)) {}
func (fakeGen) Measure(d *txnmodel.TxnDesc) bool                     { return true }
func (fakeGen) Next(node, thread int, rng *rand.Rand) *txnmodel.TxnDesc {
	return &txnmodel.TxnDesc{ReadKeys: []uint64{uint64(rng.Intn(100))}}
}

// TestSourceAgainstFakeDriver drives the source standalone: offered counts
// track the configured rate, and stop/start resumes cleanly.
func TestSourceAgainstFakeDriver(t *testing.T) {
	d := newFakeDriver()
	src := New(Config{Rate: 1e6, Sessions: 8, Seed: 42})
	if err := src.Attach(d); err != nil {
		t.Fatal(err)
	}
	src.Start()
	d.eng.Run(1 * sim.Millisecond)
	st := src.Stats()
	// 1e6/s for 1ms => ~1000 arrivals; Poisson spread is a few percent.
	if st.Offered < 800 || st.Offered > 1200 {
		t.Fatalf("offered %d, want ~1000", st.Offered)
	}
	if st.Admitted != st.Offered {
		t.Fatalf("unlimited policy dropped arrivals: %+v", st)
	}
	if d.closed {
		t.Fatal("open-loop source started the closed loop")
	}
	src.Stop()
	before := src.Stats().Offered
	d.eng.Run(2 * sim.Millisecond)
	if src.Stats().Offered != before {
		t.Fatal("arrivals continued after Stop")
	}
	src.Start()
	d.eng.Run(3 * sim.Millisecond)
	if src.Stats().Offered <= before {
		t.Fatal("arrivals did not resume after restart")
	}
}

// TestQueueDelayAccounting checks delayed arrivals are admitted in FIFO
// order as capacity frees and their queue delay is recorded.
func TestQueueDelayAccounting(t *testing.T) {
	d := newFakeDriver()
	d.service = 100 * sim.Microsecond // slow server: 10k/s capacity per slot
	src := New(Config{
		Rate: 1e6, Sessions: 4, Seed: 1,
		Admit: NewQueueDepth(2, 8),
	})
	if err := src.Attach(d); err != nil {
		t.Fatal(err)
	}
	src.Start()
	d.eng.Run(2 * sim.Millisecond)
	st := src.Stats()
	if st.Delayed == 0 || st.Rejected == 0 {
		t.Fatalf("overload should delay and reject: %+v", st)
	}
	if st.InFlight > 2 {
		t.Fatalf("in-flight exceeds bound: %+v", st)
	}
	if st.QueueDelayP99 == 0 {
		t.Fatalf("no queue delay recorded: %+v", st)
	}
	if st.LatencyP99 < st.QueueDelayP99 {
		t.Fatalf("client latency excludes queue delay: %+v", st)
	}
}
