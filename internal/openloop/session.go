package openloop

import (
	"math/rand"

	"xenic/internal/sim"
)

// A session models one client connection: it has a home (node, thread)
// coordinator pair — so its transactions exhibit key affinity through the
// workload's locality model — and its own PRNG, so the keys it touches are
// stable across runs regardless of what other sessions do. Sessions belong
// to a tenant; each tenant is an independent arrival stream.
type session struct {
	id     uint64
	node   int
	thread int
	rng    *rand.Rand
	live   bool
}

// A tenant is one independent arrival stream carrying 1/Tenants of the
// offered rate across its pool of sessions. It owns two PRNGs: one for
// arrival gaps and session selection, one for churn lifetimes, so enabling
// churn never perturbs the arrival schedule.
type tenant struct {
	id       int
	mean     sim.Time // mean interarrival gap for this stream
	rng      *rand.Rand
	churn    *rand.Rand
	sessions []*session
	armed    bool // an arrival event is pending on the engine
}

// newSession opens a session with round-robin coordinator affinity and a
// seed-derived PRNG, and schedules its expiry when churn is enabled.
func (s *Source) newSession(t *tenant) *session {
	id := s.nextSID
	s.nextSID++
	sess := &session{
		id:     id,
		node:   int(id % uint64(s.nodes)),
		thread: int(id/uint64(s.nodes)) % s.threads,
		rng:    rand.New(rand.NewSource(s.cfg.Seed*1000003 + int64(id)*7919 + 13)),
		live:   true,
	}
	s.opened++
	s.active++
	if s.cfg.SessionLife > 0 {
		life := clampGap(sim.Time(t.churn.ExpFloat64() * float64(s.cfg.SessionLife)))
		s.eng.After(life, func() { s.expire(t, sess) })
	}
	return sess
}

// expire closes sess and immediately opens a replacement, keeping the
// tenant's pool size constant: connection churn changes *which* keys are
// hot, not how much load is offered. Transactions the dying session already
// has in flight (or queued) complete normally — closing a connection does
// not cancel submitted work.
func (s *Source) expire(t *tenant, sess *session) {
	if !sess.live {
		return
	}
	sess.live = false
	s.closed++
	s.active--
	for i, cur := range t.sessions {
		if cur == sess {
			t.sessions[i] = s.newSession(t)
			return
		}
	}
}
