package openloop

import (
	"math"
	"math/rand"
	"testing"

	"xenic/internal/sim"
)

func TestPoissonGapMean(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	mean := 10 * sim.Microsecond
	var sum sim.Time
	const n = 200000
	for i := 0; i < n; i++ {
		sum += Poisson{}.Gap(rng, mean)
	}
	got := float64(sum) / n
	if math.Abs(got-float64(mean)) > 0.02*float64(mean) {
		t.Fatalf("poisson mean off: got %v want ~%v", sim.Time(got), mean)
	}
}

func TestBoundedParetoGapMeanAndBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mean := 10 * sim.Microsecond
	p := BoundedPareto{}
	// Reconstruct the scale the sampler uses to check truncation bounds.
	a, s := DefaultAlpha, DefaultSpread
	m := (a / (a - 1)) * (1 - math.Pow(s, 1-a)) / (1 - math.Pow(s, -a))
	low := float64(mean) / m
	var sum sim.Time
	const n = 500000
	for i := 0; i < n; i++ {
		g := p.Gap(rng, mean)
		if fg := float64(g); fg < low*0.999 || fg > low*s*1.001 {
			t.Fatalf("gap %v outside truncation [%v, %v]", g, low, low*s)
		}
		sum += g
	}
	got := float64(sum) / n
	if math.Abs(got-float64(mean)) > 0.05*float64(mean) {
		t.Fatalf("pareto mean off: got %v want ~%v", sim.Time(got), mean)
	}
}

func TestParseArrival(t *testing.T) {
	for _, spec := range []string{"", "poisson", "pareto"} {
		if _, err := ParseArrival(spec); err != nil {
			t.Fatalf("ParseArrival(%q): %v", spec, err)
		}
	}
	if _, err := ParseArrival("uniform"); err == nil {
		t.Fatal("ParseArrival accepted unknown process")
	}
}

func TestTokenBucket(t *testing.T) {
	// 1000 tokens/sec, burst 2: two immediate admits, then rejects until
	// 1ms of simulated time accrues the next token.
	tb := NewTokenBucket(1000, 2)
	if tb.Arrive(0, 0, 0) != Admit || tb.Arrive(0, 0, 0) != Admit {
		t.Fatal("burst tokens not granted")
	}
	if tb.Arrive(0, 0, 0) != Reject {
		t.Fatal("empty bucket admitted")
	}
	if tb.Arrive(sim.Millisecond/2, 0, 0) != Reject {
		t.Fatal("half a token admitted")
	}
	if tb.Arrive(sim.Millisecond+sim.Microsecond, 0, 0) != Admit {
		t.Fatal("accrued token not granted")
	}
	if tb.Arrive(sim.Millisecond+2*sim.Microsecond, 0, 0) != Reject {
		t.Fatal("token granted twice")
	}
}

func TestQueueDepth(t *testing.T) {
	qd := NewQueueDepth(2, 3)
	if qd.Arrive(0, 0, 0) != Admit || qd.Arrive(0, 1, 0) != Admit {
		t.Fatal("under-bound arrivals not admitted")
	}
	if qd.Arrive(0, 2, 0) != Delay || qd.Arrive(0, 2, 2) != Delay {
		t.Fatal("at-bound arrivals not delayed")
	}
	if qd.Arrive(0, 2, 3) != Reject {
		t.Fatal("full queue did not reject")
	}
	if qd.Arrive(0, 1, 3) != Admit {
		t.Fatal("freed capacity not admitted")
	}
}

func TestParseAdmission(t *testing.T) {
	cases := map[string]string{
		"":             "none",
		"none":         "none",
		"unlimited":    "none",
		"token:1000":   "token",
		"token:1e6:50": "token",
		"queue:64":     "queue",
		"queue:64:256": "queue",
	}
	for spec, want := range cases {
		adm, err := ParseAdmission(spec)
		if err != nil {
			t.Fatalf("ParseAdmission(%q): %v", spec, err)
		}
		if adm.Name() != want {
			t.Fatalf("ParseAdmission(%q) = %s, want %s", spec, adm.Name(), want)
		}
	}
	for _, spec := range []string{"token", "token:0", "token:x", "queue", "queue:-1", "queue:4:x", "drop:1", "none:1"} {
		if _, err := ParseAdmission(spec); err == nil {
			t.Fatalf("ParseAdmission(%q) accepted a bad spec", spec)
		}
	}
}

func TestAttachValidation(t *testing.T) {
	if err := New(Config{}).Attach(nil); err == nil {
		t.Fatal("attach to nil driver accepted")
	}
	d := newFakeDriver()
	if err := New(Config{}).Attach(d); err == nil {
		t.Fatal("zero rate accepted")
	}
	if err := New(Config{Rate: 1e6, Sessions: 2, Tenants: 4}).Attach(d); err == nil {
		t.Fatal("fewer sessions than tenants accepted")
	}
	src := New(Config{Rate: 1e6})
	if err := src.Attach(d); err != nil {
		t.Fatal(err)
	}
	if err := src.Attach(d); err == nil {
		t.Fatal("double attach accepted")
	}
}
