// Package openloop is the open-loop traffic front-end: transactions arrive
// according to a configured interarrival process at an offered rate that
// does not depend on completions — the serving regime a deployed system
// faces, where offered load can exceed capacity and p99 latency diverges
// unless admission control sheds the excess.
//
// The front-end is a load.Source, so it drives any system implementing
// load.Driver (the Xenic cluster and all four baselines). It layers:
//
//   - arrival processes (Poisson, bounded-Pareto) split across per-tenant
//     streams, each carrying an equal share of the offered rate;
//   - a session layer: a fixed-size pool of client sessions per tenant,
//     each with home-coordinator key affinity and an optional churn process
//     that closes sessions and opens replacements;
//   - pluggable admission control (unlimited, token-bucket, queue-depth
//     backpressure) deciding per arrival whether to inject, delay, or
//     reject.
//
// Everything is driven by the simulation engine and seed-derived PRNGs, so
// two runs with the same seed produce byte-identical traffic.
package openloop

import (
	"errors"
	"fmt"
	"math/rand"

	"xenic/internal/load"
	"xenic/internal/metrics"
	"xenic/internal/sim"
	"xenic/internal/txnmodel"
)

// Config parameterizes the open-loop source. Rate is required; every other
// field has a usable zero value.
type Config struct {
	// Rate is the offered load in transactions per simulated second,
	// cluster-wide, split evenly across tenants. Required.
	Rate float64
	// Arrival is the interarrival process; nil means Poisson.
	Arrival Arrival
	// Sessions is the total client-session count across all tenants;
	// DefaultSessions when zero. Must be >= Tenants.
	Sessions int
	// Tenants is the number of independent arrival streams; 1 when zero.
	Tenants int
	// SessionLife enables connection churn: sessions close after an
	// exponentially distributed lifetime with this mean and are replaced
	// immediately. Zero disables churn.
	SessionLife sim.Time
	// Admit is the admission-control policy; nil means Unlimited.
	Admit Admission
	// Seed derives every PRNG in the source; 1 when zero.
	Seed int64
}

// DefaultSessions is the session-pool size when Config.Sessions is zero.
const DefaultSessions = 64

// Source is the open-loop front-end. Create with New, attach via
// xenic.WithLoad (or load.Source.Attach directly), then Start/Stop as usual.
type Source struct {
	cfg Config
	d   load.Driver
	eng *sim.Engine
	gen txnmodel.Generator

	nodes   int
	threads int

	running bool
	tenants []*tenant
	nextSID uint64

	// Admission accounting (see load.Stats for field semantics).
	offered   int64
	admitted  int64
	delayed   int64
	rejected  int64
	completed int64
	failed    int64
	inflight  int
	queue     []pending
	opened    int64
	closed    int64
	active    int
	qdelay    *metrics.Histogram
	lat       *metrics.Histogram
}

// pending is one arrival parked by a Delay admission decision.
type pending struct {
	sess *session
	at   sim.Time
}

// New returns an open-loop source for cfg. Configuration errors surface
// from Attach, when the driver's shape is known.
func New(cfg Config) *Source {
	return &Source{
		cfg:    cfg,
		qdelay: metrics.NewHistogram(),
		lat:    metrics.NewHistogram(),
	}
}

// Attach implements load.Source: it validates cfg against the driver's
// shape and builds the tenant streams and session pools.
func (s *Source) Attach(d load.Driver) error {
	if s.d != nil {
		return errors.New("openloop: source already attached")
	}
	if d == nil {
		return errors.New("openloop: nil driver")
	}
	if s.cfg.Rate <= 0 {
		return fmt.Errorf("openloop: offered rate must be positive, got %v", s.cfg.Rate)
	}
	if s.cfg.Arrival == nil {
		s.cfg.Arrival = Poisson{}
	}
	if s.cfg.Admit == nil {
		s.cfg.Admit = Unlimited{}
	}
	if s.cfg.Tenants == 0 {
		s.cfg.Tenants = 1
	}
	if s.cfg.Sessions == 0 {
		s.cfg.Sessions = DefaultSessions
	}
	if s.cfg.Seed == 0 {
		s.cfg.Seed = 1
	}
	if s.cfg.Tenants < 0 || s.cfg.Sessions < s.cfg.Tenants {
		return fmt.Errorf("openloop: need at least one session per tenant (%d sessions, %d tenants)",
			s.cfg.Sessions, s.cfg.Tenants)
	}
	s.d = d
	s.eng = d.Engine()
	s.gen = d.Workload()
	s.nodes = d.Nodes()
	s.threads = d.AppThreadsPerNode()
	if s.nodes <= 0 || s.threads <= 0 {
		return fmt.Errorf("openloop: driver reports no injection targets (%d nodes x %d threads)",
			s.nodes, s.threads)
	}
	mean := sim.Time(float64(sim.Second) / s.cfg.Rate * float64(s.cfg.Tenants))
	s.tenants = make([]*tenant, s.cfg.Tenants)
	for i := range s.tenants {
		t := &tenant{
			id:    i,
			mean:  clampGap(mean),
			rng:   rand.New(rand.NewSource(s.cfg.Seed*1000003 + int64(i)*104729 + 1)),
			churn: rand.New(rand.NewSource(s.cfg.Seed*1000003 + int64(i)*104729 + 2)),
		}
		s.tenants[i] = t
	}
	// Deal sessions round-robin so pools differ by at most one.
	for i := 0; i < s.cfg.Sessions; i++ {
		t := s.tenants[i%len(s.tenants)]
		t.sessions = append(t.sessions, s.newSession(t))
	}
	return nil
}

// Start implements load.Source: arrival streams begin (or resume) firing.
func (s *Source) Start() {
	if s.d == nil || s.running {
		return
	}
	s.running = true
	for _, t := range s.tenants {
		s.arm(t)
	}
}

// Stop implements load.Source: streams stop after their pending gap expires
// and the backpressure queue is dropped (counted rejected); in-flight
// transactions drain through the system as usual.
func (s *Source) Stop() {
	if !s.running {
		return
	}
	s.running = false
	s.rejected += int64(len(s.queue))
	s.queue = nil
}

// arm schedules t's next arrival unless one is already pending.
func (s *Source) arm(t *tenant) {
	if t.armed {
		return
	}
	t.armed = true
	s.eng.After(s.cfg.Arrival.Gap(t.rng, t.mean), func() { s.tick(t) })
}

// tick fires one arrival for t and schedules the next; a stopped source
// lets the stream go quiet instead.
func (s *Source) tick(t *tenant) {
	if !s.running {
		t.armed = false
		return
	}
	s.arrive(t)
	s.eng.After(s.cfg.Arrival.Gap(t.rng, t.mean), func() { s.tick(t) })
}

// arrive processes one offered arrival: pick the issuing session, consult
// admission control, and inject, park, or drop.
func (s *Source) arrive(t *tenant) {
	s.offered++
	sess := t.sessions[t.rng.Intn(len(t.sessions))]
	now := s.eng.Now()
	switch s.cfg.Admit.Arrive(now, s.inflight, len(s.queue)) {
	case Admit:
		s.launch(sess, now)
	case Delay:
		s.delayed++
		s.queue = append(s.queue, pending{sess: sess, at: now})
	case Reject:
		s.rejected++
	}
}

// launch injects one transaction for sess, stamping it with its original
// arrival time so client-observed latency includes any queue delay.
func (s *Source) launch(sess *session, arrivedAt sim.Time) {
	s.admitted++
	s.inflight++
	desc := s.gen.Next(sess.node, sess.thread, sess.rng)
	s.d.InjectTxn(sess.node, sess.thread, desc, func(ok bool) {
		s.finish(arrivedAt, ok)
	})
}

// finish is the completion callback for every injected transaction: account
// the outcome, credit the admission policy, and admit queued arrivals into
// the freed capacity.
func (s *Source) finish(arrivedAt sim.Time, ok bool) {
	s.inflight--
	if ok {
		s.completed++
	} else {
		s.failed++
	}
	now := s.eng.Now()
	s.lat.Record(now - arrivedAt)
	s.cfg.Admit.Release(now)
	for len(s.queue) > 0 {
		if s.cfg.Admit.Arrive(now, s.inflight, len(s.queue)-1) != Admit {
			break
		}
		head := s.queue[0]
		s.queue = s.queue[1:]
		s.qdelay.Record(now - head.at)
		s.launch(head.sess, head.at)
	}
}

// Stats implements load.Source.
func (s *Source) Stats() load.Stats {
	return load.Stats{
		Offered:        s.offered,
		Admitted:       s.admitted,
		Delayed:        s.delayed,
		Rejected:       s.rejected,
		Completed:      s.completed,
		Failed:         s.failed,
		InFlight:       s.inflight,
		QueueLen:       len(s.queue),
		ActiveSessions: s.active,
		SessionsOpened: s.opened,
		SessionsClosed: s.closed,
		QueueDelayMean: s.qdelay.Mean(),
		QueueDelayP99:  load.QuantileOrZero(s.qdelay, 0.99),
		LatencyP50:     load.QuantileOrZero(s.lat, 0.50),
		LatencyP99:     load.QuantileOrZero(s.lat, 0.99),
	}
}
