package openloop

import (
	"fmt"
	"math"
	"math/rand"

	"xenic/internal/sim"
)

// Arrival is an interarrival-time process. Gap draws the next gap for a
// stream whose mean interarrival time is mean; implementations must use only
// the supplied PRNG so arrival schedules are reproducible under a seed.
type Arrival interface {
	Name() string
	Gap(rng *rand.Rand, mean sim.Time) sim.Time
}

// Poisson is the memoryless arrival process: exponential interarrival gaps,
// the classic open-loop client model (λ-NIC's serving regime).
type Poisson struct{}

// Name implements Arrival.
func (Poisson) Name() string { return "poisson" }

// Gap draws an exponential gap with the given mean.
func (Poisson) Gap(rng *rand.Rand, mean sim.Time) sim.Time {
	return clampGap(sim.Time(rng.ExpFloat64() * float64(mean)))
}

// BoundedPareto is a heavy-tailed arrival process: interarrival gaps follow
// a Pareto distribution with tail index Alpha truncated to [L, Spread*L],
// with L chosen so the mean matches the configured rate. Bursts of
// near-back-to-back arrivals alternate with long quiet gaps, stressing
// admission control far harder than Poisson at the same offered rate.
type BoundedPareto struct {
	// Alpha is the tail index (must be > 1 so the mean exists and != 1 for
	// the closed form); DefaultAlpha when zero.
	Alpha float64
	// Spread is the upper truncation as a multiple of the lower bound;
	// DefaultSpread when zero.
	Spread float64
}

// Default tail shape: alpha 1.5 keeps the variance finite but large, and a
// 100x truncation bounds the worst quiet gap.
const (
	DefaultAlpha  = 1.5
	DefaultSpread = 100.0
)

// Name implements Arrival.
func (BoundedPareto) Name() string { return "pareto" }

// Gap draws a bounded-Pareto gap via inverse-CDF sampling, scaled so the
// process mean equals mean.
func (p BoundedPareto) Gap(rng *rand.Rand, mean sim.Time) sim.Time {
	a, s := p.Alpha, p.Spread
	if a == 0 {
		a = DefaultAlpha
	}
	if s == 0 {
		s = DefaultSpread
	}
	// E[X] = L * m(a, s) for the truncated Pareto on [L, s*L]:
	// m = (a/(a-1)) * (1 - s^(1-a)) / (1 - s^-a).
	m := (a / (a - 1)) * (1 - math.Pow(s, 1-a)) / (1 - math.Pow(s, -a))
	low := float64(mean) / m
	u := rng.Float64()
	x := low * math.Pow(1-u*(1-math.Pow(s, -a)), -1/a)
	return clampGap(sim.Time(x))
}

// clampGap keeps gaps strictly positive so arrival streams always advance
// simulated time.
func clampGap(g sim.Time) sim.Time {
	if g < sim.Time(1) {
		return 1
	}
	return g
}

// ParseArrival maps the CLI spelling to a process: "poisson" (default when
// empty) or "pareto" with the default tail shape.
func ParseArrival(name string) (Arrival, error) {
	switch name {
	case "", "poisson":
		return Poisson{}, nil
	case "pareto":
		return BoundedPareto{}, nil
	default:
		return nil, fmt.Errorf("openloop: unknown arrival process %q (want poisson or pareto)", name)
	}
}
