// Package model holds the calibrated hardware parameters for the simulated
// testbed: 6 servers, each with a Marvell LiquidIO 3 SmartNIC (24 ARM cores,
// 16GB DRAM, PCIe 3.0 x8, 2x50GbE) and a Mellanox CX5 100GbE RDMA NIC, as in
// the paper's evaluation (§5). Every constant cites the paper measurement it
// was calibrated against. EXPERIMENTS.md records how well the calibrated
// model reproduces the paper's §3 microbenchmarks before it is used to
// predict the §5 results.
package model

import "xenic/internal/sim"

// Params is the full set of device/timing parameters for one cluster.
// Defaults() returns the calibrated testbed; experiments mutate copies
// (e.g. the §5.3 one-link 50Gbps configuration).
type Params struct {
	// ---- Ethernet fabric ----

	// LinkBandwidth is the usable bandwidth of one Ethernet link in
	// bytes/second. The LiquidIO has 2x50GbE; the CX5 one 100GbE port.
	LinkBandwidth float64
	// LinksPerNode is the number of links ganged per server (2 for the
	// default testbed, 1 for the §5.3 DrTM+R comparison).
	LinksPerNode int
	// PropDelay is the one-way propagation + switching delay between any
	// two servers. Calibrated so a 256B CX5 RDMA WRITE round trip lands at
	// ~3.5us (§3.2).
	PropDelay sim.Time
	// FrameOverhead is the per-Ethernet-frame byte cost on the wire:
	// preamble+SFD (8) + Ethernet header+FCS (18) + IFG (12) + IP/UDP (28).
	FrameOverhead int
	// MTU is the maximum Ethernet payload per frame. Aggregated
	// transmissions (§4.3.2) pack messages up to this size.
	MTU int

	// ---- LiquidIO SmartNIC SoC ----

	// NICCores is the number of SmartNIC cores (24 on the LiquidIO 3).
	NICCores int
	// NICCoreSpeed is NIC per-thread compute speed relative to a host
	// thread, from the Coremark normalization in §5.6 (0.31x multi-thread).
	NICCoreSpeed float64
	// NICFrameRx/NICFrameTx are NIC-core costs to receive/transmit one
	// Ethernet frame (descriptor + buffer management). With NICMsgHandle
	// they calibrate the 71.8Mops/s 16-thread NIC echo-RPC result (§3.3):
	// 16 threads / 71.8M = 223ns per packet total.
	NICFrameRx sim.Time
	NICFrameTx sim.Time
	// NICMsgHandle is the NIC-core cost to dispatch one application message
	// (header parse + handler entry), charged per message even when many
	// messages share a frame. It bounds aggregated small-op throughput:
	// ~75ns/msg * 16 cores ~= 210Mops/s, matching the 22.2x batched NIC-DRAM
	// write gain over the ~9.5M unbatched baseline (§3.4).
	NICMsgHandle sim.Time
	// NICIndexOp is the NIC-core cost of one NIC hash-index operation
	// (lookup/lock/version check) in SmartNIC DRAM (§4.1.3).
	NICIndexOp sim.Time
	// NICCacheObjCopy is the per-256B NIC-core cost to copy a cached object
	// into an outgoing message.
	NICCacheObjCopy sim.Time
	// NICLoopIdle is the cost of one empty polling-loop iteration; it sets
	// the latency floor for request pickup by a NIC core (§4.3.2).
	NICLoopIdle sim.Time
	// NICDRAMBandwidth is the SmartNIC DDR4 bandwidth in bytes/second,
	// shared by cached-object reads/writes.
	NICDRAMBandwidth float64

	// ---- Host <-> SmartNIC PCIe packet interface ----

	// HostToNIC is the latency for a message posted by host DPDK to become
	// visible to a NIC core (doorbell + descriptor fetch + payload DMA +
	// NIC poll). Calibrated with NICToHost against the gap between
	// host-sourced and NIC-sourced operations in Figure 2a.
	HostToNIC sim.Time
	// NICToHost is the latency for a NIC-written message to be observed by
	// a polling host DPDK thread (DMA write + host poll).
	NICToHost sim.Time
	// HostSendCost is host-CPU time to build and post one unbatched packet
	// via DPDK. Calibrated so 5 source servers sustain the 9.0-10.4Mops/s
	// unbatched remote-write rate of §3.4 (~2Mops/s per source thread).
	HostSendCost sim.Time
	// HostRPCHandle is host-CPU time to handle one RPC (poll + parse +
	// reply), calibrated to the 23.0Mops/s 16-thread host echo result
	// (§3.3): 16/23.0M = 696ns.
	HostRPCHandle sim.Time
	// HostMsgProc is host-CPU time for a coordinator application thread to
	// consume one message from its local NIC (lighter than a full RPC:
	// no network descriptor handling).
	HostMsgProc sim.Time
	// HostStoreOp is host-CPU time for one local hash-table operation
	// (lookup/insert probe work is charged separately per element).
	HostStoreOp sim.Time
	// HostBTreeOp is host-CPU time for one B+tree operation on TPC-C's
	// coordinator-local tables; these dominate TPC-C host usage (§5.6).
	HostBTreeOp sim.Time
	// HostCores is the number of host hyperthreads (32 on Xeon Gold 5218).
	HostCores int

	// ---- LiquidIO PCIe DMA engine (§3.5) ----

	// DMAQueues is the number of hardware DMA request queues (8).
	DMAQueues int
	// DMAVectorMax is the maximum reads/writes per vectored submission (15).
	DMAVectorMax int
	// DMASubmit is the NIC-core submission cost per vector, "up to 190ns",
	// amortized across up to 15 elements (§3.5).
	DMASubmit sim.Time
	// DMAReadLatency / DMAWriteLatency are completion latencies for one
	// element: "typically up to 1295ns for reads and 570ns for writes".
	DMAReadLatency  sim.Time
	DMAWriteLatency sim.Time
	// DMAEngineRate is the engine-wide cap on vector submissions per
	// second: "up to the hardware maximum of 8.7Mops/s" (§3.5).
	DMAEngineRate float64
	// DMAElementRate is the engine-wide cap on vector *elements* per second
	// for small (<=64B) elements; beyond 64B the PCIe bandwidth governs.
	// Calibrated to the 7.0x batched host-DRAM write gain of §3.4.
	DMAElementRate float64
	// PCIeBandwidth is usable PCIe 3.0 x8 bandwidth in bytes/second.
	PCIeBandwidth float64

	// ---- Mellanox CX5 RDMA NIC (§2.1, §3.2, §3.4) ----

	// RDMAIssue is initiator-side cost (doorbell + WQE fetch) per verb.
	RDMAIssue sim.Time
	// RDMANICProc is the CX5 hardware processing time per verb per side.
	RDMANICProc sim.Time
	// RDMAHostRead / RDMAHostWrite are target-side PCIe access times for
	// one-sided verbs (the CX5's own DMA to host DRAM).
	RDMAHostRead  sim.Time
	RDMAHostWrite sim.Time
	// RDMACompletion is initiator-side completion delivery + host poll.
	RDMACompletion sim.Time
	// RDMAMsgRate is the per-NIC small-verb message rate cap with doorbell
	// batching: "13.5-15.0Mops/s across the range of buffer sizes" (§3.4).
	RDMAMsgRate float64
	// RDMAAtomicExtra is added target-side latency for ATOMIC verbs
	// (internal read-modify-write locking on the NIC).
	RDMAAtomicExtra sim.Time
}

// Default returns the calibrated parameters for the paper's testbed.
func Default() Params {
	return Params{
		LinkBandwidth: 6.25e9, // 50 Gbit/s
		LinksPerNode:  2,
		PropDelay:     700 * sim.Nanosecond,
		FrameOverhead: 66,
		MTU:           1500,

		NICCores:         24,
		NICCoreSpeed:     0.31,
		NICFrameRx:       70 * sim.Nanosecond,
		NICFrameTx:       90 * sim.Nanosecond,
		NICMsgHandle:     63 * sim.Nanosecond,
		NICIndexOp:       60 * sim.Nanosecond,
		NICCacheObjCopy:  40 * sim.Nanosecond,
		NICLoopIdle:      80 * sim.Nanosecond,
		NICDRAMBandwidth: 19.2e9,

		HostToNIC:     1200 * sim.Nanosecond,
		NICToHost:     900 * sim.Nanosecond,
		HostSendCost:  480 * sim.Nanosecond,
		HostRPCHandle: 696 * sim.Nanosecond,
		HostMsgProc:   250 * sim.Nanosecond,
		HostStoreOp:   120 * sim.Nanosecond,
		HostBTreeOp:   950 * sim.Nanosecond,
		HostCores:     32,

		DMAQueues:       8,
		DMAVectorMax:    15,
		DMASubmit:       190 * sim.Nanosecond,
		DMAReadLatency:  1295 * sim.Nanosecond,
		DMAWriteLatency: 570 * sim.Nanosecond,
		DMAEngineRate:   8.7e6,
		DMAElementRate:  65e6,
		PCIeBandwidth:   6.5e9,

		RDMAIssue:       250 * sim.Nanosecond,
		RDMANICProc:     275 * sim.Nanosecond,
		RDMAHostRead:    800 * sim.Nanosecond,
		RDMAHostWrite:   570 * sim.Nanosecond,
		RDMACompletion:  300 * sim.Nanosecond,
		RDMAMsgRate:     14.5e6,
		RDMAAtomicExtra: 260 * sim.Nanosecond,
	}
}

// OneLink returns a copy of p with a single 50GbE link per node, matching
// the §5.3 configuration used to compare against DrTM+R's published numbers.
func (p Params) OneLink() Params {
	p.LinksPerNode = 1
	return p
}

// TotalBandwidth is the per-server usable network bandwidth in bytes/second.
func (p Params) TotalBandwidth() float64 {
	return p.LinkBandwidth * float64(p.LinksPerNode)
}

// HostScaled scales a host-core cost by the NIC/host speed ratio, i.e. the
// time the same work takes on a NIC core.
func (p Params) HostScaled(hostCost sim.Time) sim.Time {
	return sim.Time(float64(hostCost) / p.NICCoreSpeed)
}

// WireBytes is the on-wire size of a frame carrying payload bytes.
func (p Params) WireBytes(payload int) int { return payload + p.FrameOverhead }

// SerializationDelay is the time to push n bytes through one link.
func (p Params) SerializationDelay(n int) sim.Time {
	return sim.Time(float64(n) / p.LinkBandwidth * 1e12)
}
