package model

import (
	"testing"

	"xenic/internal/sim"
)

func TestDefaultsMatchTestbed(t *testing.T) {
	p := Default()
	if p.LinksPerNode != 2 || p.LinkBandwidth != 6.25e9 {
		t.Fatalf("links: %d x %.2e", p.LinksPerNode, p.LinkBandwidth)
	}
	if p.NICCores != 24 {
		t.Fatalf("NIC cores %d, LiquidIO 3 has 24", p.NICCores)
	}
	if p.HostCores != 32 {
		t.Fatalf("host cores %d, Xeon Gold 5218 has 32 threads", p.HostCores)
	}
	if p.DMAVectorMax != 15 || p.DMAQueues != 8 {
		t.Fatalf("DMA geometry %d/%d, §3.5 says 15-element vectors, 8 queues", p.DMAVectorMax, p.DMAQueues)
	}
	// §3.5 measured values.
	if p.DMAReadLatency != 1295*sim.Nanosecond || p.DMAWriteLatency != 570*sim.Nanosecond {
		t.Fatal("DMA completion latencies drifted from §3.5")
	}
	if p.DMAEngineRate != 8.7e6 {
		t.Fatal("DMA engine rate drifted from §3.5")
	}
	// §3.4: CX5 13.5-15Mops.
	if p.RDMAMsgRate < 13.5e6 || p.RDMAMsgRate > 15e6 {
		t.Fatalf("RDMA message rate %.1fM outside §3.4 range", p.RDMAMsgRate/1e6)
	}
	// §5.6: 0.31x per-thread ratio.
	if p.NICCoreSpeed != 0.31 {
		t.Fatalf("NIC core speed %.2f, §5.6 says 0.31", p.NICCoreSpeed)
	}
}

func TestOneLink(t *testing.T) {
	p := Default().OneLink()
	if p.LinksPerNode != 1 {
		t.Fatal("OneLink did not reduce links")
	}
	if p.TotalBandwidth() != 6.25e9 {
		t.Fatalf("one-link bandwidth %.2e", p.TotalBandwidth())
	}
	if Default().TotalBandwidth() != 12.5e9 {
		t.Fatalf("two-link bandwidth %.2e", Default().TotalBandwidth())
	}
}

func TestHostScaled(t *testing.T) {
	p := Default()
	got := p.HostScaled(310 * sim.Nanosecond)
	if got != 1000*sim.Nanosecond {
		t.Fatalf("HostScaled(310ns) = %v, want 1us at 0.31x", got)
	}
}

func TestSerialization(t *testing.T) {
	p := Default()
	if p.WireBytes(100) != 100+p.FrameOverhead {
		t.Fatal("WireBytes")
	}
	// 1250 bytes at 6.25GB/s per link = 200ns.
	if d := p.SerializationDelay(1250); d != 200*sim.Nanosecond {
		t.Fatalf("SerializationDelay(1250) = %v", d)
	}
	// §3.3 calibration: 16 NIC threads at the echo costs ~= 71.8Mops/s.
	perOp := p.NICFrameRx + p.NICMsgHandle + p.NICFrameTx
	rate := 16.0 / perOp.Seconds()
	if rate < 65e6 || rate > 78e6 {
		t.Fatalf("NIC echo model gives %.1fM ops/s, §3.3 measured 71.8M", rate/1e6)
	}
	// Host: 16 threads / HostRPCHandle ~= 23Mops/s.
	hostRate := 16.0 / p.HostRPCHandle.Seconds()
	if hostRate < 21e6 || hostRate > 25e6 {
		t.Fatalf("host echo model gives %.1fM ops/s, §3.3 measured 23.0M", hostRate/1e6)
	}
}
