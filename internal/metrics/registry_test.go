package metrics

import (
	"encoding/json"
	"strings"
	"testing"

	"xenic/internal/sim"
)

func TestHistogramMergeMinMaxPropagation(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Record(10 * sim.Microsecond)
	a.Record(20 * sim.Microsecond)
	b.Record(2 * sim.Microsecond)
	b.Record(50 * sim.Microsecond)
	a.Merge(b)
	if a.Min() != 2*sim.Microsecond {
		t.Fatalf("merged min = %v, want 2us", a.Min())
	}
	if a.Max() != 50*sim.Microsecond {
		t.Fatalf("merged max = %v, want 50us", a.Max())
	}
	if a.Count() != 4 {
		t.Fatalf("merged count = %d", a.Count())
	}

	// Merging into an empty histogram adopts the source's extremes.
	c := NewHistogram()
	c.Merge(b)
	if c.Min() != 2*sim.Microsecond || c.Max() != 50*sim.Microsecond {
		t.Fatalf("empty-merge min/max = %v/%v", c.Min(), c.Max())
	}

	// Merging an empty histogram must not drag min to zero.
	a.Merge(NewHistogram())
	if a.Min() != 2*sim.Microsecond || a.Count() != 4 {
		t.Fatalf("after merging empty: min=%v count=%d", a.Min(), a.Count())
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
}

func TestUtilizationZeroDuration(t *testing.T) {
	u := NewUtilization(2)
	u.Add(0, 10*sim.Microsecond)
	if got := u.BusyCores(0); got != 0 {
		t.Fatalf("BusyCores(0) = %v, want 0", got)
	}
	if got := u.BusyCores(-1 * sim.Microsecond); got != 0 {
		t.Fatalf("BusyCores(negative) = %v, want 0", got)
	}
}

func TestIntHist(t *testing.T) {
	var h IntHist
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty IntHist not all-zero")
	}
	h.Record(3)
	h.Record(3)
	h.Record(1)
	h.Record(200) // overflow bucket
	h.Record(-5)  // clamps to 0
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 0 || h.Max() != 200 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	snap := h.Snapshot()
	buckets := snap["buckets"].(map[string]int64)
	if buckets["3"] != 2 || buckets["1"] != 1 || buckets["0"] != 1 || buckets["64+"] != 1 {
		t.Fatalf("buckets = %v", buckets)
	}
	if len(buckets) != 4 {
		t.Fatalf("expected only non-empty buckets, got %v", buckets)
	}
}

func TestRegistryScopesAndSnapshot(t *testing.T) {
	r := NewRegistry()
	sub := r.Sub("node0").Sub("nic")
	c := sub.Counter("tx_frames")
	c.Inc()
	c.Add(2)
	r.Gauge("cluster.load", func() float64 { return 0.5 })
	h := r.Sub("node0").Histogram("latency")
	h.Record(10 * sim.Microsecond)

	snap := r.Snapshot()
	if got := snap["node0.nic.tx_frames"]; got != int64(3) {
		t.Fatalf("counter snapshot = %v", got)
	}
	if got := snap["cluster.load"]; got != 0.5 {
		t.Fatalf("gauge snapshot = %v", got)
	}
	lat, ok := snap["node0.latency"].(map[string]any)
	if !ok || lat["count"] != int64(1) {
		t.Fatalf("histogram snapshot = %v", snap["node0.latency"])
	}

	names := r.Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}

	// Re-registering a name replaces the sampler without duplicating it.
	r.RegisterFunc("cluster.load", func() any { return "replaced" })
	if got := r.Snapshot()["cluster.load"]; got != "replaced" {
		t.Fatalf("re-registered value = %v", got)
	}
	if len(r.Names()) != len(names) {
		t.Fatalf("re-registration grew names: %v", r.Names())
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	sub := r.Sub("node0")
	if sub != nil {
		t.Fatal("Sub on nil registry should stay nil")
	}
	c := sub.Counter("x") // must not panic, counter still usable
	c.Inc()
	if c.Value() != 1 {
		t.Fatalf("counter on nil registry = %d", c.Value())
	}
	sub.Gauge("g", func() float64 { return 1 })
	h := sub.Histogram("h")
	h.Record(1 * sim.Microsecond)
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("nil snapshot = %v", got)
	}
	var buf strings.Builder
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "{\n}\n" {
		t.Fatalf("nil WriteJSON = %q", buf.String())
	}
}

func TestRegistryWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count").Add(7)
	r.Gauge("a.val", func() float64 { return 1.5 })

	var buf strings.Builder
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	var parsed map[string]any
	if err := json.Unmarshal([]byte(out), &parsed); err != nil {
		t.Fatalf("WriteJSON output not valid JSON: %v\n%s", err, out)
	}
	if parsed["a.val"] != 1.5 || parsed["b.count"] != 7.0 {
		t.Fatalf("parsed = %v", parsed)
	}
	// Keys render in sorted order, one entry per line.
	if strings.Index(out, `"a.val"`) > strings.Index(out, `"b.count"`) {
		t.Fatalf("keys not sorted:\n%s", out)
	}
}
