// Package metrics provides the measurement primitives the benchmark harness
// uses: latency histograms with quantiles, windowed throughput counters, and
// the Coremark-normalized thread accounting of §5.6.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"xenic/internal/sim"
)

// numBuckets is the histogram bucket count: logarithmic buckets from 1ns to
// ~17s (2^34 ns) with 8 sub-buckets per octave.
const numBuckets = 34 * 8

// Histogram records latency samples with logarithmic buckets, giving <=0.8%
// relative quantile error while using constant memory.
type Histogram struct {
	buckets [numBuckets]int64
	count   int64
	sum     sim.Time
	min     sim.Time
	max     sim.Time
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64}
}

func bucketOf(d sim.Time) int {
	ns := d.Nanos()
	if ns < 1 {
		ns = 1
	}
	b := int(math.Log2(ns) * 8)
	if b < 0 {
		b = 0
	}
	if b >= numBuckets {
		b = numBuckets - 1
	}
	return b
}

func bucketMid(b int) sim.Time {
	return sim.FromNanos(math.Exp2((float64(b) + 0.5) / 8))
}

// Record adds one latency sample.
func (h *Histogram) Record(d sim.Time) {
	if d < 0 {
		d = 0
	}
	h.buckets[bucketOf(d)]++
	h.count++
	h.sum += d
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count reports the number of samples.
func (h *Histogram) Count() int64 { return h.count }

// Mean reports the exact mean of recorded samples.
func (h *Histogram) Mean() sim.Time {
	if h.count == 0 {
		return 0
	}
	return h.sum / sim.Time(h.count)
}

// Min and Max report exact extremes.
func (h *Histogram) Min() sim.Time {
	if h.count == 0 {
		return 0
	}
	return h.min
}

func (h *Histogram) Max() sim.Time {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the approximate q-quantile (0 <= q <= 1). Edge behavior
// is exact rather than bucket-approximate: an empty histogram reports 0,
// q <= 0 reports Min, and q >= 1 reports Max.
func (h *Histogram) Quantile(q float64) sim.Time {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := int64(q * float64(h.count-1))
	var seen int64
	for b, n := range h.buckets {
		if n == 0 {
			continue
		}
		if seen+n > target {
			m := bucketMid(b)
			if m < h.min {
				m = h.min
			}
			if m > h.max {
				m = h.max
			}
			return m
		}
		seen += n
	}
	return h.max
}

// Median is Quantile(0.5).
func (h *Histogram) Median() sim.Time { return h.Quantile(0.5) }

// Reset clears all samples.
func (h *Histogram) Reset() { *h = Histogram{min: math.MaxInt64} }

// Merge adds all samples of o into h.
func (h *Histogram) Merge(o *Histogram) {
	for i, n := range o.buckets {
		h.buckets[i] += n
	}
	h.count += o.count
	h.sum += o.sum
	if o.count > 0 {
		if o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
}

func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d p50=%v p99=%v mean=%v", h.count, h.Median(), h.Quantile(0.99), h.Mean())
}

// Snapshot summarizes the histogram as a JSON-ready document: sample count
// and latency quantiles in microseconds. The stats registry serializes it
// into the per-run stats file.
func (h *Histogram) Snapshot() map[string]any {
	return map[string]any{
		"count":   h.count,
		"mean_us": h.Mean().Micros(),
		"p50_us":  h.Median().Micros(),
		"p90_us":  h.Quantile(0.90).Micros(),
		"p99_us":  h.Quantile(0.99).Micros(),
		"min_us":  h.Min().Micros(),
		"max_us":  h.Max().Micros(),
	}
}

// WindowStats summarizes the samples a histogram recorded during one
// sampling window.
type WindowStats struct {
	Count          int64
	Mean           sim.Time
	P50, P99, P999 sim.Time
}

// HistWindow derives windowed statistics from a live histogram: each
// Advance reports the count, mean, and quantiles of only the samples
// recorded since the previous Advance, by diffing bucket snapshots. It
// tolerates the histogram being Reset between Advances (e.g. Measure
// resetting latency at a window boundary): a shrunken count means the
// previous snapshot no longer describes a prefix of the data, so the whole
// current content counts as new.
type HistWindow struct {
	h    *Histogram
	prev Histogram
}

// NewHistWindow returns a window over h, primed at h's current content (the
// first Advance reports only samples recorded after this call).
func NewHistWindow(h *Histogram) *HistWindow {
	return &HistWindow{h: h, prev: *h}
}

// Advance reports the window since the last Advance (or construction) and
// starts the next one.
func (w *HistWindow) Advance() WindowStats {
	cur := w.h
	prev := &w.prev
	if cur.count < prev.count {
		*prev = Histogram{}
	}
	var out WindowStats
	out.Count = cur.count - prev.count
	if out.Count > 0 {
		out.Mean = (cur.sum - prev.sum) / sim.Time(out.Count)
		out.P50 = w.diffQuantile(0.50, out.Count)
		out.P99 = w.diffQuantile(0.99, out.Count)
		out.P999 = w.diffQuantile(0.999, out.Count)
	}
	w.prev = *cur
	return out
}

// diffQuantile computes a quantile over the bucket-count deltas between the
// live histogram and the previous snapshot. Exact min/max are not
// recoverable from a diff, so edges report the midpoint of the extreme
// non-empty delta bucket.
func (w *HistWindow) diffQuantile(q float64, n int64) sim.Time {
	target := int64(q * float64(n-1))
	var seen int64
	for b := range w.h.buckets {
		d := w.h.buckets[b] - w.prev.buckets[b]
		if d <= 0 {
			continue
		}
		if seen+d > target {
			return bucketMid(b)
		}
		seen += d
	}
	return 0
}

// intHistDirect is the number of directly-counted values in an IntHist;
// larger values share one overflow bucket.
const intHistDirect = 64

// IntHist is a distribution over small non-negative integers (batch sizes,
// gather-list lengths, DMA vector occupancies): values 0..intHistDirect-1
// count exactly, larger ones land in an overflow bucket. Recording is two
// array updates, cheap enough to stay always-on in NIC hot paths.
type IntHist struct {
	buckets  [intHistDirect + 1]int64
	count    int64
	sum      int64
	min, max int64
}

// Record adds one observation (negative values clamp to 0).
func (h *IntHist) Record(v int) {
	x := int64(v)
	if x < 0 {
		x = 0
	}
	b := x
	if b >= intHistDirect {
		b = intHistDirect
	}
	h.buckets[b]++
	if h.count == 0 || x < h.min {
		h.min = x
	}
	if x > h.max {
		h.max = x
	}
	h.count++
	h.sum += x
}

// Count reports the number of observations.
func (h *IntHist) Count() int64 { return h.count }

// Mean reports the average observation, or 0 when empty.
func (h *IntHist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min and Max report exact extremes (0 when empty).
func (h *IntHist) Min() int64 { return h.min }
func (h *IntHist) Max() int64 { return h.max }

// Snapshot summarizes the distribution with its non-empty buckets.
func (h *IntHist) Snapshot() map[string]any {
	buckets := map[string]int64{}
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		if i == intHistDirect {
			buckets[fmt.Sprintf("%d+", intHistDirect)] = n
			continue
		}
		buckets[fmt.Sprintf("%d", i)] = n
	}
	return map[string]any{
		"count":   h.count,
		"mean":    h.Mean(),
		"min":     h.min,
		"max":     h.max,
		"buckets": buckets,
	}
}

// Counter is a monotonically increasing event counter with a marked window,
// used to measure steady-state throughput after warmup.
type Counter struct {
	total     int64
	markCount int64
	markAt    sim.Time
}

// Inc adds n events.
func (c *Counter) Inc(n int64) { c.total += n }

// Total reports all events since creation.
func (c *Counter) Total() int64 { return c.total }

// Mark starts a measurement window at time now.
func (c *Counter) Mark(now sim.Time) {
	c.markCount = c.total
	c.markAt = now
}

// Rate reports events/second over the window [markAt, now): the events
// counted since the last Mark, divided by the simulated time elapsed since
// it. Without a prior Mark the window starts at time 0 with zero events, so
// Rate is the lifetime average. now at or before the mark (an empty or
// negative window) reports 0 rather than dividing by it.
func (c *Counter) Rate(now sim.Time) float64 {
	dt := (now - c.markAt).Seconds()
	if dt <= 0 {
		return 0
	}
	return float64(c.total-c.markCount) / dt
}

// WindowCount reports events since the last Mark.
func (c *Counter) WindowCount() int64 { return c.total - c.markCount }

// Utilization accumulates busy time for a set of cores and reports
// occupancy and normalized thread counts.
type Utilization struct {
	busy []sim.Time
}

// NewUtilization tracks n cores.
func NewUtilization(n int) *Utilization { return &Utilization{busy: make([]sim.Time, n)} }

// Add charges d of busy time to core i.
func (u *Utilization) Add(i int, d sim.Time) { u.busy[i] += d }

// Busy reports total busy time of core i.
func (u *Utilization) Busy(i int) sim.Time { return u.busy[i] }

// BusyCores reports the equivalent number of fully-busy cores over a window
// of length dur.
func (u *Utilization) BusyCores(dur sim.Time) float64 {
	var total sim.Time
	for _, b := range u.busy {
		total += b
	}
	if dur <= 0 {
		return 0
	}
	return float64(total) / float64(dur)
}

// TotalBusy reports the summed busy time across all cores; samplers diff
// successive values to derive windowed occupancy.
func (u *Utilization) TotalBusy() sim.Time {
	var total sim.Time
	for _, b := range u.busy {
		total += b
	}
	return total
}

// Lanes reports the number of cores tracked.
func (u *Utilization) Lanes() int { return len(u.busy) }

// ActiveCores reports how many cores saw any work.
func (u *Utilization) ActiveCores() int {
	n := 0
	for _, b := range u.busy {
		if b > 0 {
			n++
		}
	}
	return n
}

// Reset zeroes all busy accounting.
func (u *Utilization) Reset() {
	for i := range u.busy {
		u.busy[i] = 0
	}
}

// NormalizedThreads implements the §5.6 accounting: host threads count 1.0
// each, NIC threads count coremarkRatio each (0.31 in the paper).
func NormalizedThreads(hostThreads, nicThreads int, coremarkRatio float64) float64 {
	return float64(hostThreads) + float64(nicThreads)*coremarkRatio
}

// Series is a labelled sequence of (x, y) points, the unit the harness uses
// to print figure data.
type Series struct {
	Label  string
	X, Y   []float64
	XLabel string
	YLabel string
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// PeakY returns the maximum y value, or 0 when empty.
func (s *Series) PeakY() float64 {
	peak := 0.0
	for _, y := range s.Y {
		if y > peak {
			peak = y
		}
	}
	return peak
}

// SortByX orders points by ascending x.
func (s *Series) SortByX() {
	idx := make([]int, len(s.X))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return s.X[idx[a]] < s.X[idx[b]] })
	x := make([]float64, len(s.X))
	y := make([]float64, len(s.Y))
	for i, j := range idx {
		x[i], y[i] = s.X[j], s.Y[j]
	}
	s.X, s.Y = x, y
}
