package metrics

import (
	"math/rand"
	"sort"
	"testing"

	"xenic/internal/sim"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Median() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
	h.Record(10 * sim.Microsecond)
	h.Record(20 * sim.Microsecond)
	h.Record(30 * sim.Microsecond)
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 20*sim.Microsecond {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != 10*sim.Microsecond || h.Max() != 30*sim.Microsecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h := NewHistogram()
	var samples []float64
	for i := 0; i < 20000; i++ {
		// Latencies between 1us and 1ms, log-uniform.
		us := 1.0
		for j := 0; j < 3; j++ {
			us *= 1 + rng.Float64()*9
		}
		d := sim.FromNanos(us * 10)
		samples = append(samples, d.Nanos())
		h.Record(d)
	}
	sort.Float64s(samples)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := samples[int(q*float64(len(samples)-1))]
		got := h.Quantile(q).Nanos()
		if got < exact*0.9 || got > exact*1.1 {
			t.Errorf("q=%.2f: got %.0fns, exact %.0fns", q, got, exact)
		}
	}
}

func TestHistogramSingleSampleQuantiles(t *testing.T) {
	h := NewHistogram()
	h.Record(42 * sim.Microsecond)
	// Quantiles are clamped to [min,max], so a single sample is exact.
	if h.Median() != 42*sim.Microsecond || h.Quantile(0.99) != 42*sim.Microsecond {
		t.Fatalf("median=%v p99=%v", h.Median(), h.Quantile(0.99))
	}
}

func TestHistogramMergeReset(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Record(1 * sim.Microsecond)
	b.Record(3 * sim.Microsecond)
	a.Merge(b)
	if a.Count() != 2 || a.Max() != 3*sim.Microsecond {
		t.Fatalf("after merge: %v", a)
	}
	a.Reset()
	if a.Count() != 0 {
		t.Fatal("reset did not clear")
	}
	a.Record(5 * sim.Microsecond)
	if a.Min() != 5*sim.Microsecond {
		t.Fatalf("min after reset+record = %v", a.Min())
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := NewHistogram()
	// Empty: every quantile reports 0, including the out-of-range edges.
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v", q, got)
		}
	}
	h.Record(10 * sim.Microsecond)
	h.Record(20 * sim.Microsecond)
	h.Record(90 * sim.Microsecond)
	// q <= 0 is exactly Min and q >= 1 exactly Max, not bucket midpoints.
	if got := h.Quantile(0); got != 10*sim.Microsecond {
		t.Fatalf("Quantile(0) = %v, want Min", got)
	}
	if got := h.Quantile(-0.5); got != 10*sim.Microsecond {
		t.Fatalf("Quantile(-0.5) = %v, want Min", got)
	}
	if got := h.Quantile(1); got != 90*sim.Microsecond {
		t.Fatalf("Quantile(1) = %v, want Max", got)
	}
	if got := h.Quantile(1.5); got != 90*sim.Microsecond {
		t.Fatalf("Quantile(1.5) = %v, want Max", got)
	}
}

func TestHistWindow(t *testing.T) {
	h := NewHistogram()
	h.Record(10 * sim.Microsecond)
	w := NewHistWindow(h)
	// The window is primed at construction: pre-existing samples don't count.
	h.Record(20 * sim.Microsecond)
	h.Record(40 * sim.Microsecond)
	s := w.Advance()
	if s.Count != 2 {
		t.Fatalf("window count = %d, want 2", s.Count)
	}
	if s.Mean != 30*sim.Microsecond {
		t.Fatalf("window mean = %v, want 30us", s.Mean)
	}
	lo, hi := 18*sim.Microsecond, 22*sim.Microsecond
	if s.P50 < lo || s.P50 > hi {
		t.Fatalf("window p50 = %v, want ~20us", s.P50)
	}
	// An empty window reports zeros.
	if s = w.Advance(); s.Count != 0 || s.Mean != 0 || s.P99 != 0 {
		t.Fatalf("empty window = %+v", s)
	}
	// Reset tolerance: after the histogram resets, the whole current content
	// counts as the new window instead of producing negative deltas.
	h.Reset()
	h.Record(5 * sim.Microsecond)
	if s = w.Advance(); s.Count != 1 || s.Mean != 5*sim.Microsecond {
		t.Fatalf("post-reset window = %+v", s)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5 * sim.Microsecond)
	if h.Min() != 0 {
		t.Fatalf("negative sample recorded as %v", h.Min())
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc(10)
	c.Mark(1 * sim.Second)
	c.Inc(500)
	if got := c.Rate(2 * sim.Second); got != 500 {
		t.Fatalf("rate = %v", got)
	}
	if c.Total() != 510 || c.WindowCount() != 500 {
		t.Fatalf("total=%d window=%d", c.Total(), c.WindowCount())
	}
	if c.Rate(1*sim.Second) != 0 {
		t.Fatal("zero-length window should report 0")
	}
}

func TestUtilization(t *testing.T) {
	u := NewUtilization(4)
	u.Add(0, 500*sim.Millisecond)
	u.Add(1, 250*sim.Millisecond)
	if got := u.BusyCores(1 * sim.Second); got != 0.75 {
		t.Fatalf("BusyCores = %v", got)
	}
	if u.ActiveCores() != 2 {
		t.Fatalf("ActiveCores = %d", u.ActiveCores())
	}
	if u.Busy(0) != 500*sim.Millisecond {
		t.Fatalf("Busy(0) = %v", u.Busy(0))
	}
	u.Reset()
	if u.BusyCores(1*sim.Second) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestUtilizationTotalBusyLanes(t *testing.T) {
	u := NewUtilization(3)
	if u.Lanes() != 3 {
		t.Fatalf("Lanes = %d", u.Lanes())
	}
	if u.TotalBusy() != 0 {
		t.Fatalf("fresh TotalBusy = %v", u.TotalBusy())
	}
	u.Add(0, 100*sim.Microsecond)
	u.Add(2, 50*sim.Microsecond)
	if u.TotalBusy() != 150*sim.Microsecond {
		t.Fatalf("TotalBusy = %v", u.TotalBusy())
	}
}

func TestNormalizedThreads(t *testing.T) {
	// §5.6: Xenic Retwis = 5 host + 16 NIC threads at 0.31 ratio -> 9.96.
	got := NormalizedThreads(5, 16, 0.31)
	if got < 9.9 || got > 10.0 {
		t.Fatalf("normalized threads = %v, want ~9.96", got)
	}
}

func TestSeries(t *testing.T) {
	s := &Series{Label: "x"}
	s.Add(3, 30)
	s.Add(1, 10)
	s.Add(2, 50)
	if s.PeakY() != 50 {
		t.Fatalf("peak = %v", s.PeakY())
	}
	s.SortByX()
	if s.X[0] != 1 || s.Y[0] != 10 || s.X[2] != 3 || s.Y[2] != 30 {
		t.Fatalf("sorted: %v %v", s.X, s.Y)
	}
	empty := &Series{}
	if empty.PeakY() != 0 {
		t.Fatal("empty peak != 0")
	}
}
