package metrics

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"strings"
)

// Registry is a cluster-wide stats registry: components register named
// counters, gauges, and histograms into it, and a single Snapshot call
// renders everything as one JSON document per run.
//
// Names are dotted paths ("node3.nicindex.cache_hits"); Sub returns a
// prefixed view so each node and component registers under its own scope
// without knowing the full path. A nil *Registry is a valid disabled
// registry: registration becomes a no-op and the returned instruments still
// work, so components register unconditionally.
//
// Values are captured lazily: each entry is a function sampled at Snapshot
// time, so registering costs nothing on hot paths and snapshots always see
// current state.
type Registry struct {
	prefix string
	core   *regCore
}

type regCore struct {
	names []string
	fns   map[string]func() any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{core: &regCore{fns: map[string]func() any{}}}
}

// Sub returns a view of the registry that prefixes every name with scope
// and a dot. Sub on a nil registry returns nil.
func (r *Registry) Sub(scope string) *Registry {
	if r == nil {
		return nil
	}
	return &Registry{prefix: r.prefix + scope + ".", core: r.core}
}

// RegisterFunc registers a snapshot function under name. The function runs
// at every Snapshot; it must return a JSON-marshalable value. Re-registering
// a name replaces the previous function.
func (r *Registry) RegisterFunc(name string, fn func() any) {
	if r == nil {
		return
	}
	full := r.prefix + name
	if _, dup := r.core.fns[full]; !dup {
		r.core.names = append(r.core.names, full)
	}
	r.core.fns[full] = fn
}

// RegCounter is a registered monotonic counter.
type RegCounter struct{ n int64 }

// Inc adds 1.
func (c *RegCounter) Inc() { c.n++ }

// Add adds delta.
func (c *RegCounter) Add(delta int64) { c.n += delta }

// Value reports the current count.
func (c *RegCounter) Value() int64 { return c.n }

// Counter registers and returns a named counter. On a nil registry the
// counter still works; it is just never snapshotted.
func (r *Registry) Counter(name string) *RegCounter {
	c := &RegCounter{}
	r.RegisterFunc(name, func() any { return c.n })
	return c
}

// Gauge registers a value sampled at snapshot time.
func (r *Registry) Gauge(name string, fn func() float64) {
	r.RegisterFunc(name, func() any { return fn() })
}

// RegisterHistogram registers an existing latency histogram; its quantile
// summary lands in the snapshot.
func (r *Registry) RegisterHistogram(name string, h *Histogram) {
	r.RegisterFunc(name, func() any { return h.Snapshot() })
}

// Histogram creates, registers, and returns a named latency histogram.
func (r *Registry) Histogram(name string) *Histogram {
	h := NewHistogram()
	r.RegisterHistogram(name, h)
	return h
}

// RegisterIntHist registers an existing integer-distribution histogram.
func (r *Registry) RegisterIntHist(name string, h *IntHist) {
	r.RegisterFunc(name, func() any { return h.Snapshot() })
}

// Snapshot samples every registered entry into one flat document keyed by
// full dotted name, in sorted order.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	if r == nil {
		return out
	}
	for _, name := range r.core.names {
		out[name] = r.core.fns[name]()
	}
	return out
}

// Names lists registered entry names in sorted order.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	out := append([]string(nil), r.core.names...)
	sort.Strings(out)
	return out
}

// WriteJSON renders the snapshot as an indented JSON object with sorted
// keys (one line per entry), the per-run stats document.
func (r *Registry) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\n"); err != nil {
		return err
	}
	snap := r.Snapshot()
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	for i, n := range names {
		v, err := json.Marshal(snap[n])
		if err != nil {
			return err
		}
		key, _ := json.Marshal(n)
		line := "  " + string(key) + ": " + string(v)
		if i < len(names)-1 {
			line += ","
		}
		if _, err := bw.WriteString(line + "\n"); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// MarshalSnapshot returns the snapshot rendered by WriteJSON as bytes.
func (r *Registry) MarshalSnapshot() ([]byte, error) {
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		return nil, err
	}
	return []byte(b.String()), nil
}
