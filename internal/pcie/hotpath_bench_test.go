package pcie

import (
	"testing"

	"xenic/internal/model"
	"xenic/internal/sim"
)

// BenchmarkDMACompletion measures the cost of one vector submission plus its
// completion dispatch. The vector and its sizes array are reused across
// iterations (as the NIC runtime's freelists do), so the engine-side cost —
// admission bookkeeping and the completion event — is what's measured; with
// the prebound completion callback it allocates nothing.
func BenchmarkDMACompletion(b *testing.B) {
	eng := sim.NewEngine(1)
	d := New(eng, model.Default())
	completions := 0
	v := &Vector{
		Write:    true,
		Sizes:    []int{64, 128, 256, 512},
		Complete: func() { completions++ },
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Submit(0, v)
		eng.RunAll()
	}
	if completions != b.N {
		b.Fatalf("completed %d vectors, want %d", completions, b.N)
	}
}
