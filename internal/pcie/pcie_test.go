package pcie

import (
	"testing"

	"xenic/internal/model"
	"xenic/internal/sim"
)

func setup() (*sim.Engine, *Engine, model.Params) {
	p := model.Default()
	eng := sim.NewEngine(1)
	return eng, New(eng, p), p
}

func TestSingleWriteLatency(t *testing.T) {
	eng, d, p := setup()
	var done sim.Time
	d.Submit(0, &Vector{Write: true, Sizes: []int{64}, Complete: func() { done = eng.Now() }})
	eng.RunAll()
	want := d.elementCost(64) + p.DMAWriteLatency
	if done != want {
		t.Fatalf("write completed at %v, want %v", done, want)
	}
}

func TestSingleReadLatencyHigherThanWrite(t *testing.T) {
	eng, d, _ := setup()
	var r, w sim.Time
	d.Submit(0, &Vector{Write: false, Sizes: []int{64}, Complete: func() { r = eng.Now() }})
	eng.RunAll()
	eng2 := sim.NewEngine(1)
	d2 := New(eng2, model.Default())
	d2.Submit(0, &Vector{Write: true, Sizes: []int{64}, Complete: func() { w = eng2.Now() }})
	eng2.RunAll()
	if r <= w {
		t.Fatalf("read latency %v not above write latency %v", r, w)
	}
}

func TestFullVectorDoesNotInflateCompletionLatency(t *testing.T) {
	// §3.5: full 15-element vectors do not increase completion latency
	// relative to single-buffer requests (beyond shared engine occupancy).
	eng, d, p := setup()
	var single, full sim.Time
	d.Submit(0, &Vector{Write: true, Sizes: []int{64}, Complete: func() { single = eng.Now() }})
	eng.RunAll()

	eng2 := sim.NewEngine(1)
	d2 := New(eng2, p)
	sizes := make([]int, 15)
	for i := range sizes {
		sizes[i] = 64
	}
	d2.Submit(0, &Vector{Write: true, Sizes: sizes, Complete: func() { full = eng2.Now() }})
	eng2.RunAll()
	// The 15-element vector finishes within a microsecond of the single op.
	if full-single > sim.Microsecond {
		t.Fatalf("vector completion %v vs single %v", full, single)
	}
}

func TestVectoredSubmissionRaisesThroughput(t *testing.T) {
	// Saturating with single-element vectors is admission-capped at
	// DMAEngineRate; 15-element vectors move ~15x more elements until the
	// element rate cap binds.
	run := func(elemsPerVec int) float64 {
		eng := sim.NewEngine(1)
		p := model.Default()
		d := New(eng, p)
		sizes := make([]int, elemsPerVec)
		for i := range sizes {
			sizes[i] = 16
		}
		dur := 10 * sim.Millisecond
		var pump func()
		pump = func() {
			if eng.Now() >= dur {
				return
			}
			// Keep the engine saturated a little ahead of real time.
			for d.submitBusy < eng.Now()+10*sim.Microsecond {
				d.Submit(0, &Vector{Write: true, Sizes: sizes})
			}
			eng.After(sim.Microsecond, pump)
		}
		eng.Defer(pump)
		eng.Run(dur)
		return float64(d.Elements()) / dur.Seconds()
	}
	single := run(1)
	vectored := run(15)
	p := model.Default()
	if single > p.DMAEngineRate*1.02 || single < p.DMAEngineRate*0.9 {
		t.Fatalf("single-element rate %.2fM, want ~%.1fM (engine cap)", single/1e6, p.DMAEngineRate/1e6)
	}
	if vectored > p.DMAElementRate*1.02 || vectored < p.DMAElementRate*0.9 {
		t.Fatalf("vectored element rate %.2fM, want ~%.1fM (element cap)", vectored/1e6, p.DMAElementRate/1e6)
	}
	if vectored < 5*single {
		t.Fatalf("vectoring gained only %.1fx", vectored/single)
	}
}

func TestLargeElementsBandwidthBound(t *testing.T) {
	eng := sim.NewEngine(1)
	p := model.Default()
	d := New(eng, p)
	dur := 10 * sim.Millisecond
	sizes := make([]int, 15)
	for i := range sizes {
		sizes[i] = 4096
	}
	var pump func()
	pump = func() {
		if eng.Now() >= dur {
			return
		}
		for d.submitBusy < eng.Now()+10*sim.Microsecond {
			d.Submit(0, &Vector{Write: true, Sizes: sizes})
		}
		eng.After(sim.Microsecond, pump)
	}
	eng.Defer(pump)
	eng.Run(dur)
	bps := float64(d.Bytes()) / dur.Seconds()
	if bps > p.PCIeBandwidth*1.02 || bps < p.PCIeBandwidth*0.9 {
		t.Fatalf("DMA bandwidth %.2f GB/s, want ~%.2f GB/s", bps/1e9, p.PCIeBandwidth/1e9)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, d, p := setup()
	cases := []struct {
		queue int
		sizes []int
	}{
		{-1, []int{8}},
		{p.DMAQueues, []int{8}},
		{0, nil},
		{0, make([]int, p.DMAVectorMax+1)},
		{0, []int{0}},
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			if c.sizes != nil && len(c.sizes) > 1 {
				for j := range c.sizes {
					c.sizes[j] = 8
				}
			}
			d.Submit(c.queue, &Vector{Write: true, Sizes: c.sizes})
		}()
	}
}

func TestStats(t *testing.T) {
	eng, d, _ := setup()
	d.Submit(0, &Vector{Write: true, Sizes: []int{10, 20}})
	d.Submit(1, &Vector{Write: false, Sizes: []int{30}})
	eng.RunAll()
	if d.Submissions() != 2 || d.Elements() != 3 || d.Bytes() != 60 {
		t.Fatalf("stats: %d subs %d elems %d bytes", d.Submissions(), d.Elements(), d.Bytes())
	}
}
