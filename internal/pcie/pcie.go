// Package pcie models the LiquidIO's PCIe DMA engine as characterized in
// §3.5 of the paper: 8 hardware request queues, vectored submissions of up
// to 15 reads or writes, ~190ns submission cost, completion latencies of up
// to 1295ns (read) / 570ns (write), and an engine-wide hardware maximum of
// 8.7M vector submissions per second. Completion is signalled by a status
// write that the NIC runtime polls (§4.3.1); here the engine invokes a
// callback at the simulated completion instant and the runtime decides when
// its polling loop observes it.
package pcie

import (
	"fmt"

	"xenic/internal/model"
	"xenic/internal/sim"
)

// Vector is one vectored DMA submission: up to DMAVectorMax same-direction
// host-memory operations plus a completion callback.
type Vector struct {
	Write    bool
	Sizes    []int  // element sizes in bytes
	Complete func() // runs when the completion status byte lands
	// Failed, when non-nil, runs instead of Complete if the fault hook
	// declares this vector's completion an error (the submitter retries).
	// Vectors without a Failed callback never see injected errors.
	Failed func()
}

// Engine is one SmartNIC's DMA engine. Not safe for concurrent use; all
// access happens from simulation callbacks.
type Engine struct {
	eng *sim.Engine
	p   model.Params

	submitBusy  sim.Time // engine-wide vector admission (DMAEngineRate)
	elementBusy sim.Time // engine-wide element/bandwidth occupancy
	busy        sim.Time // cumulative element transfer time (occupancy gauge)

	submissions int64
	elements    int64
	bytes       int64
	readBytes   int64
	writeBytes  int64

	// faultHook, when set, is consulted at each completion of a vector that
	// has a Failed callback; returning true fails the vector.
	faultHook func() bool
	failures  int64

	// fireFn is the completion callback bound once at construction, so each
	// completion event schedules without allocating a closure (the *Vector
	// rides as the event argument).
	fireFn func(any)
}

// SetFaultHook installs the completion-error decision hook (fault runs).
func (d *Engine) SetFaultHook(fn func() bool) { d.faultHook = fn }

// Failures reports injected completion errors.
func (d *Engine) Failures() int64 { return d.failures }

// Stall freezes the engine for dur: admission and element cursors are
// pushed past now+dur, so in-flight and subsequent work completes late.
func (d *Engine) Stall(dur sim.Time) {
	edge := d.eng.Now() + dur
	if d.submitBusy < edge {
		d.submitBusy = edge
	}
	if d.elementBusy < edge {
		d.elementBusy = edge
	}
}

// New returns a DMA engine using parameters p.
func New(eng *sim.Engine, p model.Params) *Engine {
	d := &Engine{eng: eng, p: p}
	d.fireFn = d.fire
	return d
}

// fire runs a vector's completion (or its injected failure) at the
// simulated completion instant.
func (d *Engine) fire(arg any) {
	v := arg.(*Vector)
	if v.Failed != nil && d.faultHook != nil && d.faultHook() {
		d.failures++
		v.Failed()
		return
	}
	v.Complete()
}

// elementCost is the engine occupancy of one element: small elements are
// bounded by the element rate, large ones by PCIe bandwidth.
func (d *Engine) elementCost(bytes int) sim.Time {
	rate := sim.Time(1e12 / d.p.DMAElementRate)
	bw := sim.Time(float64(bytes) / d.p.PCIeBandwidth * 1e12)
	if bw > rate {
		return bw
	}
	return rate
}

// Submit enqueues v. queue selects one of the hardware queues (0..DMAQueues-1)
// and exists for interface fidelity and stats; the throughput caps measured
// in §3.5 are engine-wide. The caller is responsible for charging the
// NIC-core submission cost (amortized DMASubmit) to the submitting core.
func (d *Engine) Submit(queue int, v *Vector) {
	if queue < 0 || queue >= d.p.DMAQueues {
		panic(fmt.Sprintf("pcie: bad queue %d", queue))
	}
	if len(v.Sizes) == 0 || len(v.Sizes) > d.p.DMAVectorMax {
		panic(fmt.Sprintf("pcie: vector of %d elements (max %d)", len(v.Sizes), d.p.DMAVectorMax))
	}
	now := d.eng.Now()

	// Vector admission, capped at DMAEngineRate submissions/second. The
	// hardware queues have finite depth: admission also stalls when the
	// engine has more than queueWindow of element work outstanding, so a
	// saturated engine backpressures submitters instead of buffering
	// unboundedly.
	const queueWindow = 10 * sim.Microsecond
	gap := sim.Time(1e12 / d.p.DMAEngineRate)
	start := now
	if d.submitBusy > start {
		start = d.submitBusy
	}
	if b := d.elementBusy - queueWindow; b > start {
		start = b
	}
	d.submitBusy = start + gap

	// Element transfer occupancy. Elements of one vector proceed through
	// the engine back to back; a full vector does not lengthen the
	// per-element completion latency (§3.5), only the shared occupancy.
	finish := start
	for _, sz := range v.Sizes {
		if sz <= 0 {
			panic("pcie: non-positive element size")
		}
		c := d.elementCost(sz)
		if d.elementBusy > finish {
			finish = d.elementBusy
		}
		finish += c
		d.elementBusy = finish
		d.busy += c
		d.elements++
		d.bytes += int64(sz)
		if v.Write {
			d.writeBytes += int64(sz)
		} else {
			d.readBytes += int64(sz)
		}
	}
	d.submissions++

	lat := d.p.DMAWriteLatency
	if !v.Write {
		lat = d.p.DMAReadLatency
	}
	if v.Complete != nil {
		d.eng.At1(finish+lat, d.fireFn, v)
	}
}

// Busy reports cumulative element transfer occupancy; telemetry samplers
// diff successive values to derive windowed DMA-engine utilization. Injected
// stalls push the busy horizons without accumulating here, so utilization
// reflects transferred work, not injected dead time.
func (d *Engine) Busy() sim.Time { return d.busy }

// Backlog reports how far beyond now the engine's element cursor is
// committed: the time a newly-submitted element would wait behind work
// already admitted. 0 when the engine is caught up.
func (d *Engine) Backlog(now sim.Time) sim.Time {
	b := d.elementBusy - now
	if b < 0 {
		return 0
	}
	return b
}

// Submissions reports total vectors submitted.
func (d *Engine) Submissions() int64 { return d.submissions }

// Elements reports total elements transferred.
func (d *Engine) Elements() int64 { return d.elements }

// Bytes reports total payload bytes moved over PCIe by DMA.
func (d *Engine) Bytes() int64 { return d.bytes }

// ReadBytes reports payload bytes moved host-to-NIC (DMA reads).
func (d *Engine) ReadBytes() int64 { return d.readBytes }

// WriteBytes reports payload bytes moved NIC-to-host (DMA writes).
func (d *Engine) WriteBytes() int64 { return d.writeBytes }

// Snapshot renders the engine counters for the stats registry.
func (d *Engine) Snapshot() map[string]any {
	return map[string]any{
		"submissions": d.submissions,
		"elements":    d.elements,
		"bytes":       d.bytes,
		"read_bytes":  d.readBytes,
		"write_bytes": d.writeBytes,
		"failures":    d.failures,
	}
}
