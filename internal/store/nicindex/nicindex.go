// Package nicindex implements Xenic's SmartNIC caching index (§4.1.3): a
// NIC-memory structure with one entry per host-table segment, holding a
// cache of hot objects, transaction metadata (lock state and version
// numbers) for objects touched by ongoing transactions, the known maximum
// displacement d_i of keys homed in the segment, and the segment's overflow
// address. The index makes common-case remote lookups a single DMA read of
// d_i+k+1 slots, with a second adjacent read when concurrent host-side
// insertions have invalidated d_i and an overflow-page read for keys past
// the displacement limit.
//
// Lock state lives only here (one location, §4.2.1), so recovery can
// rebuild it from logs.
package nicindex

import (
	"fmt"

	"xenic/internal/store/robinhood"
)

// Object is a cached object plus its transaction metadata. Value may be nil
// for metadata-only entries (e.g. a locked key whose value was never
// cached, or a key being inserted).
type Object struct {
	Key       uint64
	Value     []byte
	HasValue  bool
	Exists    bool // whether the key currently exists in the shard
	Version   uint64
	Locked    bool
	LockOwner uint64 // transaction id holding the lock
	Pinned    int    // commit-pin count; pinned entries cannot be evicted (§4.2 step 6)
	ref       bool   // CLOCK reference bit

	// MVCC version metadata (zero-valued unless the owning cluster runs
	// with snapshot reads enabled). TS is the commit timestamp of the
	// cached head version: stamped by ApplyCommitTS on commit, or read
	// from the row header on a DMA fill (0 = the row predates timestamp
	// tracking, visible to every snapshot). Hist holds displaced older
	// versions, newest first, so snapshot reads below the head resolve
	// without a DMA walk. Hist values count against the cache capacity.
	TS   uint64
	Hist []Ver
}

// Ver is one retained older version of a cached object.
type Ver struct {
	TS      uint64 // commit timestamp that installed it
	Version uint64
	Value   []byte
}

// ReadOp describes one DMA read a lookup performed.
type ReadOp struct {
	Slots    int  // number of table slots fetched (0 for overflow/large reads)
	Bytes    int  // DMA payload size
	Overflow bool // overflow-page read
	Large    bool // out-of-table large-object read
}

// Result reports a lookup.
type Result struct {
	Found       bool
	Value       []byte
	Version     uint64
	CacheHit    bool
	Reads       []ReadOp // DMA reads performed, in order (empty on cache hit)
	ObjectsRead int      // objects fetched over PCIe
	// Conflict marks a B+tree row caught mid-commit: the index holds a
	// committed version whose value the host has not applied yet, so no
	// consistent (value, version) pair exists. Callers abort and retry.
	Conflict bool
}

// Stats counts index events.
type Stats struct {
	Lookups     int64
	CacheHits   int64
	DMALookups  int64
	SecondReads int64 // stale-d_i adjacent reads
	OverReads   int64 // overflow page reads
	Evictions   int64
	EvictFails  int64 // eviction scans that found nothing evictable
}

// Snapshot renders the counters for the stats registry.
func (s Stats) Snapshot() map[string]any {
	return map[string]any{
		"lookups":      s.Lookups,
		"cache_hits":   s.CacheHits,
		"dma_lookups":  s.DMALookups,
		"second_reads": s.SecondReads,
		"over_reads":   s.OverReads,
		"evictions":    s.Evictions,
		"evict_fails":  s.EvictFails,
	}
}

// Merge adds o's counts into s.
func (s *Stats) Merge(o Stats) {
	s.Lookups += o.Lookups
	s.CacheHits += o.CacheHits
	s.DMALookups += o.DMALookups
	s.SecondReads += o.SecondReads
	s.OverReads += o.OverReads
	s.Evictions += o.Evictions
	s.EvictFails += o.EvictFails
}

// LockTrace observes lock-state transitions: op is "lock" or "unlock", ok
// is false when a TryLock lost to another holder. The hook is installed
// only while tracing, so the disabled-path cost is one nil check.
type LockTrace func(op string, key, owner uint64, ok bool)

// Index is one server's NIC-resident caching index over its host table.
type Index struct {
	host     *robinhood.Table
	k        int   // hint slack: read d_i + k elements beyond home (§4.1.3, k=1)
	di       []int // known max displacement per segment (may lag the host)
	capacity int   // max cached values
	cached   int
	objects  map[uint64]*Object
	ring     []uint64 // CLOCK ring of cached keys
	hand     int
	nlocked  int // currently-locked keys (telemetry gauge, kept O(1))
	stats    Stats

	lockTrace LockTrace

	// tsOf reads a key's head commit timestamp from the host row header
	// during a DMA fill (the simulated Slot does not carry the packed
	// header field). Installed only when MVCC snapshot reads are on.
	tsOf func(key uint64) uint64
	// chainDepth bounds per-entry Hist length (0 = keep no history).
	chainDepth int
}

// New creates an index over host with the given cached-value capacity.
// k is the d_i hint slack; the paper sets k=1 experimentally.
func New(host *robinhood.Table, capacity, k int) *Index {
	if k < 0 {
		panic("nicindex: negative hint slack")
	}
	x := &Index{
		host:     host,
		k:        k,
		di:       make([]int, host.Segments()),
		capacity: capacity,
		objects:  make(map[uint64]*Object),
	}
	return x
}

// SyncHints refreshes every segment's d_i from the host table; called after
// bulk loading, mirroring the NIC learning the layout during setup.
func (x *Index) SyncHints() {
	for s := range x.di {
		x.di[s] = x.host.SegmentMaxDisp(s)
	}
}

// Hint returns the current d_i for segment seg.
func (x *Index) Hint(seg int) int { return x.di[seg] }

// Stats returns a copy of the event counters.
func (x *Index) Stats() Stats { return x.stats }

// SetLockTrace installs (or clears) the lock-transition hook.
func (x *Index) SetLockTrace(fn LockTrace) { x.lockTrace = fn }

// SetTSFunc installs the row-header timestamp reader used by DMA fills
// (MVCC snapshot reads). The hook reads the same host row the fill's DMA
// fetched, so it carries no extra charge.
func (x *Index) SetTSFunc(fn func(key uint64) uint64) { x.tsOf = fn }

// SetChainDepth bounds the per-entry version history retained for serving
// snapshot reads from the cache (0 = none).
func (x *Index) SetChainDepth(k int) { x.chainDepth = k }

// CachedValues reports how many objects currently have cached values.
func (x *Index) CachedValues() int { return x.cached }

// Locked reports how many keys are currently locked. Maintained as a
// counter so telemetry gauges avoid an O(objects) scan.
func (x *Index) Locked() int { return x.nlocked }

// Meta returns the metadata entry for key if one exists.
func (x *Index) Meta(key uint64) (*Object, bool) {
	o, ok := x.objects[key]
	return o, ok
}

// ensure returns key's metadata entry, allocating one if needed.
func (x *Index) ensure(key uint64) *Object {
	if o, ok := x.objects[key]; ok {
		return o
	}
	o := &Object{Key: key}
	x.objects[key] = o
	return o
}

// limit returns the host displacement bound.
func (x *Index) limit() int {
	if dm := x.host.Config().MaxDisplacement; dm > 0 {
		return dm
	}
	return x.host.Slots()
}

// Lookup resolves key, from cache when possible and otherwise by DMA reads
// against the host table, caching what it fetched. The returned ReadOps let
// the NIC runtime charge DMA latency and PCIe bytes.
func (x *Index) Lookup(key uint64) Result {
	x.stats.Lookups++
	if o, ok := x.objects[key]; ok && o.HasValue {
		o.ref = true
		x.stats.CacheHits++
		return Result{Found: o.Exists, Value: o.Value, Version: o.Version, CacheHit: true}
	}
	x.stats.DMALookups++

	home := x.host.Home(key)
	seg := x.host.SegmentOf(home)
	dm := x.limit()

	var res Result
	// First read: home through d_i + k, clamped to the displacement bound.
	window := x.di[seg] + x.k
	if window > dm-1 {
		window = dm - 1
	}
	slots := x.host.ReadRegion(home, window+1)
	res.Reads = append(res.Reads, ReadOp{Slots: len(slots), Bytes: len(slots) * x.host.SlotBytes()})
	res.ObjectsRead += len(slots)
	found, done := x.scan(key, home, slots, &res)

	if !found && !done && window < dm-1 {
		// d_i may be stale: second, adjacent read up to the limit (§4.1.3).
		x.stats.SecondReads++
		more := x.host.ReadRegion(home+window+1, dm-1-window)
		res.Reads = append(res.Reads, ReadOp{Slots: len(more), Bytes: len(more) * x.host.SlotBytes()})
		res.ObjectsRead += len(more)
		found, _ = x.scan(key, home, append(slots, more...), &res)
	}

	if !found && x.host.OverflowLen(seg) > 0 {
		// Key may have spilled past the displacement limit: read the
		// segment's overflow page.
		x.stats.OverReads++
		over := x.host.ReadOverflow(seg)
		sz := 0
		for _, e := range over {
			sz += 16 + len(e.Value)
		}
		res.Reads = append(res.Reads, ReadOp{Bytes: sz, Overflow: true})
		res.ObjectsRead += len(over)
		for _, e := range over {
			if e.Key == key {
				res.Found = true
				res.Value = e.Value
				res.Version = e.Version
				x.fill(key, e.Value, e.Version, true)
			}
		}
	}

	// The NIC has now learned the segment's true layout.
	x.di[seg] = x.host.SegmentMaxDisp(seg)
	if !res.Found && !found {
		// Negative result: record a metadata-only entry so repeated misses
		// and inserts of this key have a home.
		o := x.ensure(key)
		o.Exists = false
	}
	return res
}

// scan searches fetched slots for key, resolving large-object indirection
// and caching the hit. It reports (found, provenDone): provenDone is true
// when an empty slot or Robin Hood early-stop proves the key cannot be
// further in the table.
func (x *Index) scan(key uint64, home int, slots []robinhood.Slot, res *Result) (bool, bool) {
	for d, s := range slots {
		if !s.Occupied {
			return false, true
		}
		if s.Key == key {
			val := s.Value
			if s.Indirect {
				lv, ok := x.host.LargeValue(key)
				if !ok {
					panic(fmt.Sprintf("nicindex: dangling large pointer for key %d", key))
				}
				val = lv
				res.Reads = append(res.Reads, ReadOp{Bytes: len(lv), Large: true})
				res.ObjectsRead++
			}
			res.Found = true
			res.Value = val
			res.Version = s.Version
			x.fill(key, val, s.Version, true)
			return true, true
		}
		if s.Disp < d {
			return false, true
		}
	}
	return false, false
}

// fill caches a value for key, evicting if needed.
func (x *Index) fill(key uint64, value []byte, version uint64, exists bool) {
	o := x.ensure(key)
	if version < o.Version {
		// DMA data lags the index whenever a commit has been applied here
		// but not yet by the host (the entry is pinned for exactly that
		// window): never let a stale host read regress the version the
		// index already vouched for.
		return
	}
	var ts uint64
	if x.tsOf != nil {
		ts = x.tsOf(key)
		if ts < o.TS {
			// Same lag, multi-version form: versions of distinct keys are
			// independent counters, so a blind re-insert can carry an equal
			// version with an older commit timestamp. The timestamp the
			// index vouched for must not regress either, or a snapshot read
			// would judge visibility against the wrong head.
			return
		}
	}
	if !o.HasValue {
		if x.cached >= x.capacity && !x.evict() {
			// Nothing evictable: keep metadata only.
			o.Version = version
			o.Exists = exists
			o.TS = ts
			return
		}
		x.cached++
		x.ring = append(x.ring, key)
	}
	o.Value = append(o.Value[:0], value...)
	o.HasValue = true
	o.Version = version
	o.Exists = exists
	o.TS = ts
	o.ref = true
}

// evict removes one unpinned, unlocked cached value using CLOCK, returning
// whether space was freed.
func (x *Index) evict() bool {
	for scanned := 0; scanned < 2*len(x.ring); scanned++ {
		if len(x.ring) == 0 {
			break
		}
		if x.hand >= len(x.ring) {
			x.hand = 0
		}
		key := x.ring[x.hand]
		o, ok := x.objects[key]
		if !ok || !o.HasValue {
			// Stale ring entry: drop it.
			x.ring[x.hand] = x.ring[len(x.ring)-1]
			x.ring = x.ring[:len(x.ring)-1]
			continue
		}
		if o.ref {
			o.ref = false
			x.hand++
			continue
		}
		if o.Pinned > 0 || o.Locked {
			x.hand++
			continue
		}
		// Evict the value; keep metadata only if locked/pinned state
		// matters (it doesn't here), else drop the whole entry. The
		// version history goes with it — hist values share the entry's
		// cache residency.
		x.ring[x.hand] = x.ring[len(x.ring)-1]
		x.ring = x.ring[:len(x.ring)-1]
		delete(x.objects, key)
		x.cached -= 1 + len(o.Hist)
		x.stats.Evictions++
		return true
	}
	x.stats.EvictFails++
	return false
}

// TryLock acquires key's write lock for owner, allocating a metadata entry
// if necessary. It fails if another transaction holds the lock; re-locking
// by the same owner succeeds (idempotent for retried messages).
func (x *Index) TryLock(key, owner uint64) bool {
	o := x.ensure(key)
	if o.Locked && o.LockOwner != owner {
		if x.lockTrace != nil {
			x.lockTrace("lock", key, owner, false)
		}
		return false
	}
	if !o.Locked {
		x.nlocked++
	}
	o.Locked = true
	o.LockOwner = owner
	if x.lockTrace != nil {
		x.lockTrace("lock", key, owner, true)
	}
	return true
}

// Unlock releases key's lock held by owner. Unlocking a lock not held by
// owner panics: it would indicate a protocol bug.
func (x *Index) Unlock(key, owner uint64) {
	o, ok := x.objects[key]
	if !ok || !o.Locked || o.LockOwner != owner {
		cur := uint64(0)
		held := false
		if ok {
			cur, held = o.LockOwner, o.Locked
		}
		panic(fmt.Sprintf("nicindex: unlock of key %d not held by %#x (exists=%v locked=%v owner=%#x)",
			key, owner, ok, held, cur))
	}
	o.Locked = false
	o.LockOwner = 0
	x.nlocked--
	if x.lockTrace != nil {
		x.lockTrace("unlock", key, owner, true)
	}
	if o.Pinned == 0 && !o.HasValue {
		// Same cleanup as UnlockIf: an aborted writer's metadata-only entry
		// has no reason to outlive its lock.
		delete(x.objects, key)
	}
}

// UnlockIf releases key only if owner still holds it (tolerant unlock for
// recovery sweeps racing normal lock release).
func (x *Index) UnlockIf(key, owner uint64) {
	o, ok := x.objects[key]
	if !ok || !o.Locked || o.LockOwner != owner {
		return
	}
	o.Locked = false
	o.LockOwner = 0
	x.nlocked--
	if x.lockTrace != nil {
		x.lockTrace("unlock", key, owner, true)
	}
	if o.Pinned == 0 && !o.HasValue {
		delete(x.objects, key)
	}
}

// IsLocked reports whether key is locked by a transaction other than owner.
func (x *Index) IsLocked(key, owner uint64) bool {
	o, ok := x.objects[key]
	return ok && o.Locked && o.LockOwner != owner
}

// ForEachLocked visits every locked key with its owning transaction, in
// ascending key order (deterministic for recovery sweeps).
func (x *Index) ForEachLocked(fn func(key, owner uint64)) {
	var keys []uint64
	for k, o := range x.objects {
		if o.Locked {
			keys = append(keys, k)
		}
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	for _, k := range keys {
		fn(k, x.objects[k].LockOwner)
	}
}

// ForceUnlockAll releases every lock; recovery uses it before rebuilding
// lock state from logs (§4.2.1).
func (x *Index) ForceUnlockAll() {
	for _, o := range x.objects {
		o.Locked = false
		o.LockOwner = 0
		o.Pinned = 0
	}
	x.nlocked = 0
}

// ApplyCommit installs a committed write into the cache, bumps the version,
// and pins the entry until the host applies the log (§4.2 step 6). The
// caller must hold the lock.
func (x *Index) ApplyCommit(key uint64, value []byte, version uint64) {
	x.ApplyCommitTS(key, value, version, 0)
}

// ApplyCommitTS is ApplyCommit stamped with the commit's MVCC timestamp
// (cts 0 = MVCC off, byte-identical to ApplyCommit). When history is
// enabled, the displaced head version is pushed onto the entry's Hist so
// snapshot reads just below the new head stay cache-resident.
func (x *Index) ApplyCommitTS(key uint64, value []byte, version uint64, cts uint64) {
	o := x.ensure(key)
	// Pin first: the best-effort evictions below must never pick this
	// entry itself.
	o.Pinned++
	if cts != 0 && x.chainDepth > 0 && o.HasValue && o.Exists {
		// Move the head's buffer into the chain rather than copying it. The
		// displaced value migrates intact and the head gets a fresh buffer
		// below, so an in-flight snapshot response that aliased either one
		// keeps a consistent value — the in-place head overwrite is only
		// safe on the OCC path, where validation catches the version change.
		o.Hist = append(o.Hist, Ver{})
		copy(o.Hist[1:], o.Hist)
		o.Hist[0] = Ver{TS: o.TS, Version: o.Version, Value: o.Value}
		o.Value = nil // the buffer now lives in Hist[0]; never reuse it
		if len(o.Hist) > x.chainDepth {
			o.Hist = o.Hist[:x.chainDepth]
		} else {
			// The retained hist value occupies cache space; evict elsewhere
			// (best effort — like the head below, the cache may run
			// transiently over capacity until Unpin sheds it).
			if x.cached >= x.capacity {
				x.evict()
			}
			x.cached++
		}
	}
	if !o.HasValue {
		if x.cached >= x.capacity {
			// Best effort: the committed value must be retained even when
			// nothing is evictable, or a lookup in the window before the
			// host applies the log would DMA-read (and re-cache) the
			// pre-commit object. The cache runs transiently over capacity
			// until Unpin sheds the excess.
			x.evict()
		}
		x.cached++
		x.ring = append(x.ring, key)
		o.HasValue = true
	}
	o.Value = append(o.Value[:0], value...)
	o.Version = version
	o.Exists = true
	if cts != 0 {
		o.TS = cts
	}
	o.ref = true
}

// LookupAt resolves the newest version of key visible at snapshot S from
// the cache alone. ok=false means the cache cannot prove what S sees and
// the caller must fall back to a DMA walk of the host row's version chain;
// it never means the version does not exist. Charge-free: a hit serves
// entirely from NIC memory.
func (x *Index) LookupAt(key, S uint64) (value []byte, version uint64, ok bool) {
	o, found := x.objects[key]
	if !found || !o.HasValue {
		return nil, 0, false
	}
	if o.TS <= S {
		// The cached head was committed at or before S: it is exactly the
		// version S sees (coherence with the host is the cache invariant
		// OCC validation already relies on).
		o.ref = true
		return o.Value, o.Version, true
	}
	for i := range o.Hist {
		if o.Hist[i].TS <= S {
			o.ref = true
			return o.Hist[i].Value, o.Hist[i].Version, true
		}
	}
	return nil, 0, false
}

// ApplyCommitMeta records a committed version without caching a value —
// used for keys the NIC never serves reads for (coordinator-local B+tree
// keys), whose versions still gate local OCC validation. The entry is
// pinned until the host applies the log.
func (x *Index) ApplyCommitMeta(key uint64, version uint64) {
	o := x.ensure(key)
	o.Version = version
	o.Exists = true
	o.Pinned++
}

// Unpin releases a commit pin once the host acknowledges applying the
// logged write, making the entry evictable again. Metadata-only entries
// with no remaining reason to exist are dropped.
func (x *Index) Unpin(key uint64) {
	o, ok := x.objects[key]
	if !ok || o.Pinned == 0 {
		panic(fmt.Sprintf("nicindex: unpin of unpinned key %d", key))
	}
	o.Pinned--
	if o.Pinned == 0 && !o.HasValue && !o.Locked {
		delete(x.objects, key)
		return
	}
	// Shed any transient overflow ApplyCommit took on while this entry was
	// pinned at a full cache — head values and retained hist versions alike
	// (evicting an entry frees its whole version history).
	for x.cached > x.capacity && x.evict() {
	}
}

// VersionOf returns the cached version for key if the index knows it.
func (x *Index) VersionOf(key uint64) (uint64, bool) {
	if o, ok := x.objects[key]; ok && (o.HasValue || o.Pinned > 0 || o.Version > 0) {
		return o.Version, o.Exists || o.HasValue
	}
	return 0, false
}

// CheckInvariants validates cache bookkeeping.
func (x *Index) CheckInvariants() error {
	n, held := 0, 0
	for k, o := range x.objects {
		if o.Key != k {
			return fmt.Errorf("entry %d has key %d", k, o.Key)
		}
		if len(o.Hist) > 0 && !o.HasValue {
			return fmt.Errorf("key %d has history but no cached head", k)
		}
		if x.chainDepth > 0 && len(o.Hist) > x.chainDepth {
			return fmt.Errorf("key %d hist depth %d exceeds bound %d", k, len(o.Hist), x.chainDepth)
		}
		prev := o.TS
		for i, v := range o.Hist {
			if v.TS >= prev && prev != 0 {
				return fmt.Errorf("key %d hist[%d] ts %d not below predecessor %d", k, i, v.TS, prev)
			}
			prev = v.TS
		}
		if o.HasValue {
			n += 1 + len(o.Hist)
			if o.Pinned > 0 || o.Locked {
				held += 1 + len(o.Hist)
			}
		}
		if o.Pinned < 0 {
			return fmt.Errorf("key %d pinned %d", k, o.Pinned)
		}
	}
	if n != x.cached {
		return fmt.Errorf("cached=%d but %d values resident", x.cached, n)
	}
	// ApplyCommit may run transiently over capacity, but only while the
	// overflow is covered by pinned or locked (unevictable) values.
	if x.cached > x.capacity && x.cached-x.capacity > held {
		return fmt.Errorf("cached=%d exceeds capacity=%d beyond the %d pinned/locked values", x.cached, x.capacity, held)
	}
	return nil
}
