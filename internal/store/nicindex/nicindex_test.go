package nicindex

import (
	"math/rand"
	"testing"

	"xenic/internal/store/robinhood"
)

func newPair(slots, dm, capacity int) (*robinhood.Table, *Index) {
	cfg := robinhood.DefaultConfig(slots)
	cfg.MaxDisplacement = dm
	host := robinhood.New(cfg)
	return host, New(host, capacity, 1)
}

func load(t *testing.T, host *robinhood.Table, n int, seed int64) []uint64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64()
		if err := host.Insert(keys[i], []byte{byte(i), byte(i >> 8)}, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

func TestLookupMissThenHit(t *testing.T) {
	host, idx := newPair(1024, 16, 256)
	keys := load(t, host, 900, 1)
	idx.SyncHints()

	k := keys[10]
	r := idx.Lookup(k)
	if !r.Found || r.CacheHit || len(r.Reads) == 0 {
		t.Fatalf("first lookup: %+v", r)
	}
	if r.Version != 11 {
		t.Fatalf("version = %d", r.Version)
	}
	r2 := idx.Lookup(k)
	if !r2.Found || !r2.CacheHit || len(r2.Reads) != 0 {
		t.Fatalf("second lookup not a cache hit: %+v", r2)
	}
	s := idx.Stats()
	if s.CacheHits != 1 || s.DMALookups != 1 {
		t.Fatalf("stats: %+v", s)
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSingleReadWithFreshHints(t *testing.T) {
	host, idx := newPair(4096, 16, 4096)
	keys := load(t, host, 3600, 2) // ~88%
	idx.SyncHints()
	for _, k := range keys {
		r := idx.Lookup(k)
		if !r.Found {
			t.Fatalf("lost key %d", k)
		}
		if r.CacheHit {
			continue
		}
		// With exact hints, in-table keys take one read; overflow keys two.
		maxReads := 1
		if r.Reads[len(r.Reads)-1].Overflow {
			maxReads = 2
		}
		nonLarge := 0
		for _, rd := range r.Reads {
			if !rd.Large {
				nonLarge++
			}
		}
		if nonLarge > maxReads {
			t.Fatalf("key %d took %d reads with fresh hints: %+v", k, nonLarge, r.Reads)
		}
	}
}

func TestStaleHintTriggersSecondRead(t *testing.T) {
	host, idx := newPair(1024, 32, 1024)
	load(t, host, 700, 3)
	idx.SyncHints()
	// New insertions can displace keys beyond the synced hints.
	rng := rand.New(rand.NewSource(4))
	extra := make([]uint64, 200)
	for i := range extra {
		extra[i] = rng.Uint64()
		if err := host.Insert(extra[i], []byte("x"), 1); err != nil {
			t.Fatal(err)
		}
	}
	second := idx.Stats().SecondReads
	for _, k := range extra {
		if r := idx.Lookup(k); !r.Found {
			t.Fatalf("lost %d", k)
		}
	}
	if idx.Stats().SecondReads == second {
		t.Skip("no hint went stale at this seed (unlikely)")
	}
}

func TestHintLearning(t *testing.T) {
	host, idx := newPair(1024, 32, 1024)
	keys := load(t, host, 800, 5)
	// No SyncHints: all hints start at 0, so lookups may need a second
	// read but must still succeed, and hints converge afterwards.
	k := keys[0]
	if r := idx.Lookup(k); !r.Found {
		t.Fatal("lookup failed with cold hints")
	}
	seg := host.SegmentOf(host.Home(k))
	if idx.Hint(seg) != host.SegmentMaxDisp(seg) {
		t.Fatalf("hint %d not learned, host has %d", idx.Hint(seg), host.SegmentMaxDisp(seg))
	}
}

func TestOverflowRead(t *testing.T) {
	host, idx := newPair(1024, 4, 1024) // tiny Dm forces overflow
	keys := load(t, host, 920, 6)
	idx.SyncHints()
	if host.Stats().Overflows == 0 {
		t.Skip("no overflow at this seed")
	}
	sawOverflowRead := false
	for _, k := range keys {
		r := idx.Lookup(k)
		if !r.Found {
			t.Fatalf("lost %d", k)
		}
		for _, rd := range r.Reads {
			if rd.Overflow {
				sawOverflowRead = true
			}
		}
	}
	if !sawOverflowRead {
		t.Fatal("no lookup read an overflow page")
	}
}

func TestLargeObjectExtraRead(t *testing.T) {
	host, idx := newPair(256, 16, 64)
	big := make([]byte, 660)
	if err := host.Insert(7, big, 3); err != nil {
		t.Fatal(err)
	}
	idx.SyncHints()
	r := idx.Lookup(7)
	if !r.Found || len(r.Value) != 660 {
		t.Fatalf("%+v", r)
	}
	hasLarge := false
	for _, rd := range r.Reads {
		if rd.Large && rd.Bytes == 660 {
			hasLarge = true
		}
	}
	if !hasLarge {
		t.Fatalf("no large-object read: %+v", r.Reads)
	}
}

func TestNegativeLookup(t *testing.T) {
	host, idx := newPair(256, 16, 64)
	load(t, host, 100, 7)
	idx.SyncHints()
	r := idx.Lookup(0xdeadbeef)
	if r.Found {
		t.Fatal("found absent key")
	}
	if len(r.Reads) == 0 {
		t.Fatal("negative lookup reported no reads")
	}
}

func TestLockUnlock(t *testing.T) {
	host, idx := newPair(256, 16, 64)
	_ = host
	if !idx.TryLock(1, 100) {
		t.Fatal("lock failed")
	}
	if !idx.TryLock(1, 100) {
		t.Fatal("re-lock by owner failed")
	}
	if idx.TryLock(1, 200) {
		t.Fatal("lock stolen")
	}
	if !idx.IsLocked(1, 200) {
		t.Fatal("IsLocked(other) = false")
	}
	if idx.IsLocked(1, 100) {
		t.Fatal("IsLocked(owner) = true")
	}
	idx.Unlock(1, 100)
	if !idx.TryLock(1, 200) {
		t.Fatal("lock after unlock failed")
	}
}

func TestUnlockWrongOwnerPanics(t *testing.T) {
	_, idx := newPair(64, 16, 16)
	idx.TryLock(5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	idx.Unlock(5, 2)
}

func TestCommitPinBlocksEviction(t *testing.T) {
	host, idx := newPair(1024, 16, 4) // tiny cache
	keys := load(t, host, 800, 8)
	idx.SyncHints()

	idx.TryLock(keys[0], 1)
	idx.ApplyCommit(keys[0], []byte("committed"), 99)
	idx.Unlock(keys[0], 1)

	// Thrash the cache: the pinned entry must survive.
	for _, k := range keys[1:500] {
		idx.Lookup(k)
	}
	r := idx.Lookup(keys[0])
	if !r.CacheHit || string(r.Value) != "committed" || r.Version != 99 {
		t.Fatalf("pinned entry evicted or stale: %+v", r)
	}
	idx.Unpin(keys[0])
	for _, k := range keys[500:] {
		idx.Lookup(k)
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUnpinWithoutPinPanics(t *testing.T) {
	_, idx := newPair(64, 16, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	idx.Unpin(3)
}

func TestEvictionKeepsCapacity(t *testing.T) {
	host, idx := newPair(4096, 16, 32)
	keys := load(t, host, 3000, 9)
	idx.SyncHints()
	for _, k := range keys {
		idx.Lookup(k)
		if idx.CachedValues() > 32 {
			t.Fatalf("cache grew to %d", idx.CachedValues())
		}
	}
	if idx.Stats().Evictions == 0 {
		t.Fatal("no evictions")
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestVersionOf(t *testing.T) {
	host, idx := newPair(256, 16, 64)
	keys := load(t, host, 100, 10)
	idx.SyncHints()
	if _, ok := idx.VersionOf(keys[0]); ok {
		t.Fatal("version known before lookup")
	}
	idx.Lookup(keys[0])
	v, ok := idx.VersionOf(keys[0])
	if !ok || v != 1 {
		t.Fatalf("VersionOf = %d, %v", v, ok)
	}
}

func TestForceUnlockAll(t *testing.T) {
	_, idx := newPair(64, 16, 16)
	idx.TryLock(1, 9)
	idx.TryLock(2, 9)
	idx.ForceUnlockAll()
	if !idx.TryLock(1, 5) || !idx.TryLock(2, 6) {
		t.Fatal("locks survived ForceUnlockAll")
	}
}

func TestApplyCommitBumpsVersionEvenWithoutCacheSpace(t *testing.T) {
	host, idx := newPair(1024, 16, 1)
	keys := load(t, host, 800, 11)
	idx.SyncHints()
	// Fill the single cache slot and pin it so ApplyCommit below cannot
	// cache a value.
	idx.Lookup(keys[0])
	idx.ApplyCommit(keys[0], []byte("pin"), 50)
	idx.ApplyCommit(keys[1], []byte("meta-only"), 51)
	v, known := idx.VersionOf(keys[1])
	if !known || v != 51 {
		t.Fatalf("metadata-only commit lost: v=%d known=%v", v, known)
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestReadAbortReadSeesPreAbortVersion drives read → aborted-writer-unlock
// → read and asserts the second read serves the pre-abort version: an
// aborted transaction installs nothing, so its unlock must leave the cached
// object exactly as the first read saw it.
func TestReadAbortReadSeesPreAbortVersion(t *testing.T) {
	host, idx := newPair(1024, 16, 256)
	keys := load(t, host, 900, 21)
	idx.SyncHints()

	k := keys[5]
	r1 := idx.Lookup(k)
	if !r1.Found {
		t.Fatalf("setup: %+v", r1)
	}
	writer := uint64(0xabad1dea)
	if !idx.TryLock(k, writer) {
		t.Fatal("lock failed")
	}
	// The writer aborts: lock released, nothing installed.
	idx.Unlock(k, writer)

	r2 := idx.Lookup(k)
	if !r2.Found || !r2.CacheHit {
		t.Fatalf("second read not served from cache: %+v", r2)
	}
	if r2.Version != r1.Version || string(r2.Value) != string(r1.Value) {
		t.Fatalf("abort leaked state: read %d/%q then %d/%q",
			r1.Version, r1.Value, r2.Version, r2.Value)
	}

	// A never-cached key locked by an aborted writer must not leave a
	// metadata husk behind (Unlock now cleans up like UnlockIf).
	k2 := keys[6]
	if !idx.TryLock(k2, writer) {
		t.Fatal("lock failed")
	}
	idx.Unlock(k2, writer)
	if _, ok := idx.Meta(k2); ok {
		t.Fatal("aborted writer left a metadata-only entry")
	}
	r3 := idx.Lookup(k2)
	if !r3.Found || r3.Version != 7 {
		t.Fatalf("read after aborted writer: %+v", r3)
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCommitAtFullCacheServesCommittedVersion pins the stale-read bug: when
// ApplyCommit hit a full cache with nothing evictable, it used to record
// only the version, so a lookup in the window before the host applied the
// log would DMA-read the pre-commit object and re-serve (and re-cache) it.
// The committed value must win, even if the cache transiently overflows.
func TestCommitAtFullCacheServesCommittedVersion(t *testing.T) {
	host, idx := newPair(1024, 16, 1)
	keys := load(t, host, 800, 22)
	idx.SyncHints()

	// Occupy and pin the only cache slot.
	idx.Lookup(keys[0])
	idx.ApplyCommit(keys[0], []byte("hold"), 60)

	// Commit keys[1]; the host table still has the pre-commit object.
	owner := uint64(0xc0ffee)
	if !idx.TryLock(keys[1], owner) {
		t.Fatal("lock failed")
	}
	idx.ApplyCommit(keys[1], []byte("committed"), 61)
	idx.Unlock(keys[1], owner)

	r := idx.Lookup(keys[1])
	if !r.Found || r.Version != 61 || string(r.Value) != "committed" {
		t.Fatalf("lookup served stale pre-commit object: %+v", r)
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Once the host applies the log and unpins, the overflow is shed.
	idx.Unpin(keys[0])
	idx.Unpin(keys[1])
	if idx.CachedValues() > 1 {
		t.Fatalf("cache still over capacity after unpin: %d", idx.CachedValues())
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFillCannotRegressIndexVersion: a DMA read racing a committed-but-not-
// yet-host-applied write must not roll the index's version metadata back to
// the host's stale one — that version is the local OCC validation basis.
func TestFillCannotRegressIndexVersion(t *testing.T) {
	host, idx := newPair(1024, 16, 256)
	keys := load(t, host, 800, 23)
	idx.SyncHints()

	k := keys[2] // host holds version 3
	idx.ApplyCommitMeta(k, 70)
	idx.Lookup(k) // DMA-reads the stale host object
	v, known := idx.VersionOf(k)
	if !known || v != 70 {
		t.Fatalf("stale DMA fill regressed version: v=%d known=%v, want 70", v, known)
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// mvIndex is newPair with MVCC version metadata enabled: head timestamps
// come from tsMap (standing in for the host row header) and depth history
// entries are retained per cached object.
func mvIndex(slots, dm, capacity, depth int) (*robinhood.Table, *Index, map[uint64]uint64) {
	host, idx := newPair(slots, dm, capacity)
	tsMap := map[uint64]uint64{}
	idx.SetTSFunc(func(k uint64) uint64 { return tsMap[k] })
	idx.SetChainDepth(depth)
	return host, idx, tsMap
}

// TestFillCannotRegressIndexTimestamp is the multi-version form of the
// version-regression guard: versions of distinct keys are independent
// counters, so a delete + blind re-insert on the host can carry an equal
// version with an older commit timestamp. A DMA fill must not roll the
// index's head timestamp back, or snapshot reads would judge visibility
// against the wrong head.
func TestFillCannotRegressIndexTimestamp(t *testing.T) {
	host, idx, tsMap := mvIndex(1024, 16, 1, 2)
	keys := load(t, host, 800, 24)
	idx.SyncHints()

	// Occupy and pin the only cache slot so fills below stay metadata-only.
	idx.Lookup(keys[0])
	idx.ApplyCommit(keys[0], []byte("hold"), 90)

	k := keys[1]
	tsMap[k] = 30
	idx.Lookup(k) // full cache: fill records metadata with TS 30
	o, ok := idx.Meta(k)
	if !ok || o.HasValue || o.TS != 30 {
		t.Fatalf("metadata-only fill: %+v ok=%v", o, ok)
	}

	// The host row is re-read while carrying an older timestamp (equal
	// version): the recorded head timestamp must not regress.
	tsMap[k] = 25
	idx.Lookup(k)
	if o.TS != 30 {
		t.Fatalf("stale DMA fill regressed head timestamp to %d, want 30", o.TS)
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMultiVersionReadAbortRead drives read → commit → aborted-writer-unlock
// → read over a multi-version entry: the abort must leave the head, its
// timestamp, and the retained history exactly as the reads saw them, at
// every snapshot.
func TestMultiVersionReadAbortRead(t *testing.T) {
	host, idx, tsMap := mvIndex(1024, 16, 256, 2)
	keys := load(t, host, 800, 25)
	idx.SyncHints()

	k := keys[3]
	tsMap[k] = 10
	r1 := idx.Lookup(k)
	if !r1.Found {
		t.Fatalf("setup: %+v", r1)
	}

	// A committing writer displaces the head into the history.
	writer := uint64(0x1111)
	if !idx.TryLock(k, writer) {
		t.Fatal("lock failed")
	}
	idx.ApplyCommitTS(k, []byte("c1"), r1.Version+1, 20)
	idx.Unlock(k, writer)
	idx.Unpin(k) // host applied

	if v, ver, ok := idx.LookupAt(k, 10); !ok || ver != r1.Version || string(v) != string(r1.Value) {
		t.Fatalf("snapshot below head: %q v%d ok=%v, want %q v%d", v, ver, ok, r1.Value, r1.Version)
	}
	if v, ver, ok := idx.LookupAt(k, 25); !ok || ver != r1.Version+1 || string(v) != "c1" {
		t.Fatalf("snapshot at head: %q v%d ok=%v", v, ver, ok)
	}

	// A second writer locks and aborts without installing anything.
	aborter := uint64(0x2222)
	if !idx.TryLock(k, aborter) {
		t.Fatal("lock failed")
	}
	idx.Unlock(k, aborter)

	// Both snapshots and the plain read still serve the pre-abort state.
	if v, ver, ok := idx.LookupAt(k, 10); !ok || ver != r1.Version || string(v) != string(r1.Value) {
		t.Fatalf("abort disturbed history: %q v%d ok=%v", v, ver, ok)
	}
	if v, ver, ok := idx.LookupAt(k, 25); !ok || ver != r1.Version+1 || string(v) != "c1" {
		t.Fatalf("abort disturbed head: %q v%d ok=%v", v, ver, ok)
	}
	r2 := idx.Lookup(k)
	if !r2.CacheHit || r2.Version != r1.Version+1 || string(r2.Value) != "c1" {
		t.Fatalf("abort leaked state: %+v", r2)
	}
	if _, _, ok := idx.LookupAt(k, 5); ok {
		t.Fatal("snapshot below the retained chain served from cache")
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMultiVersionFullCache: retained history versions count against the
// cache capacity, commits at a full cache may run transiently over it while
// pinned, and Unpin sheds the overflow — history values included.
func TestMultiVersionFullCache(t *testing.T) {
	host, idx, tsMap := mvIndex(1024, 16, 2, 2)
	keys := load(t, host, 800, 26)
	idx.SyncHints()

	k0, k1 := keys[0], keys[1]
	tsMap[k0], tsMap[k1] = 5, 6
	r0, r1 := idx.Lookup(k0), idx.Lookup(k1)
	if idx.CachedValues() != 2 {
		t.Fatalf("cache not full: %d", idx.CachedValues())
	}

	// Lock both entries up front (one cross-key transaction), so neither is
	// evictable while the commits' history pushes overflow the cache.
	w := uint64(0x3333)
	idx.TryLock(k0, w)
	idx.TryLock(k1, w)
	idx.ApplyCommitTS(k0, []byte("a1"), r0.Version+1, 20)
	idx.ApplyCommitTS(k1, []byte("b1"), r1.Version+1, 20)
	idx.Unlock(k0, w)
	idx.Unlock(k1, w)
	if idx.CachedValues() != 4 {
		t.Fatalf("history not counted: cached=%d, want 4 (2 heads + 2 hist)", idx.CachedValues())
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Both old and new versions stay cache-resident while pinned.
	if _, ver, ok := idx.LookupAt(k0, 10); !ok || ver != r0.Version {
		t.Fatalf("pinned history miss: v%d ok=%v", ver, ok)
	}
	if _, ver, ok := idx.LookupAt(k0, 20); !ok || ver != r0.Version+1 {
		t.Fatalf("pinned head miss: v%d ok=%v", ver, ok)
	}

	// Host applies the log: Unpin must shed the overflow back to capacity,
	// evicting whole entries with their histories.
	idx.Unpin(k0)
	idx.Unpin(k1)
	if idx.CachedValues() > 2 {
		t.Fatalf("cache still over capacity after unpin: %d", idx.CachedValues())
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMultiVersionChainDepthCap: successive commits cap the retained history
// at the configured depth; reads below the retained window miss to the DMA
// walk rather than serving a wrong version.
func TestMultiVersionChainDepthCap(t *testing.T) {
	host, idx, tsMap := mvIndex(1024, 16, 256, 2)
	keys := load(t, host, 800, 27)
	idx.SyncHints()

	k := keys[4]
	tsMap[k] = 10
	r := idx.Lookup(k)
	w := uint64(0x4444)
	for i := uint64(1); i <= 3; i++ {
		idx.TryLock(k, w)
		idx.ApplyCommitTS(k, []byte{byte(i)}, r.Version+i, 10+10*i)
		idx.Unlock(k, w)
		idx.Unpin(k)
	}
	o, _ := idx.Meta(k)
	if len(o.Hist) != 2 {
		t.Fatalf("hist depth %d, want 2", len(o.Hist))
	}
	// Oldest retained is the cts-20 version; anything below misses.
	if _, ver, ok := idx.LookupAt(k, 25); !ok || ver != r.Version+1 {
		t.Fatalf("oldest retained: v%d ok=%v, want v%d", ver, ok, r.Version+1)
	}
	if _, _, ok := idx.LookupAt(k, 15); ok {
		t.Fatal("read below the retained window served from cache")
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
