package robinhood

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func cfg(slots, dm int) Config {
	c := DefaultConfig(slots)
	c.MaxDisplacement = dm
	return c
}

func TestInsertLookup(t *testing.T) {
	tb := New(cfg(1024, 16))
	for k := uint64(1); k <= 500; k++ {
		if err := tb.Insert(k, []byte(fmt.Sprintf("v%d", k)), k); err != nil {
			t.Fatalf("insert %d: %v", k, err)
		}
	}
	if tb.Len() != 500 {
		t.Fatalf("len = %d", tb.Len())
	}
	for k := uint64(1); k <= 500; k++ {
		r := tb.Lookup(k)
		if !r.Found || string(r.Value) != fmt.Sprintf("v%d", k) || r.Version != k {
			t.Fatalf("lookup %d: %+v", k, r)
		}
	}
	if tb.Lookup(9999).Found {
		t.Fatal("found absent key")
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertExistingUpdates(t *testing.T) {
	tb := New(cfg(64, 8))
	check := func() {
		r := tb.Lookup(7)
		if !r.Found || string(r.Value) != "new" || r.Version != 2 {
			t.Fatalf("lookup: %+v", r)
		}
		if tb.Len() != 1 {
			t.Fatalf("len = %d", tb.Len())
		}
	}
	tb.Insert(7, []byte("old"), 1)
	tb.Insert(7, []byte("new"), 2)
	check()
}

func TestUpdate(t *testing.T) {
	tb := New(cfg(64, 8))
	if tb.Update(1, []byte("x"), 1) {
		t.Fatal("updated absent key")
	}
	tb.Insert(1, []byte("a"), 1)
	if !tb.Update(1, []byte("b"), 2) {
		t.Fatal("update failed")
	}
	r := tb.Lookup(1)
	if string(r.Value) != "b" || r.Version != 2 {
		t.Fatalf("after update: %+v", r)
	}
}

func TestDisplacementLimitSendsToOverflow(t *testing.T) {
	c := cfg(1024, 4)
	tb := New(c)
	rng := rand.New(rand.NewSource(3))
	// Fill to 90%: with Dm=4 many keys must overflow.
	n := 1024 * 9 / 10
	keys := make([]uint64, 0, n)
	for len(keys) < n {
		k := rng.Uint64()
		if err := tb.Insert(k, []byte("v"), 1); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	if tb.Stats().Overflows == 0 {
		t.Fatal("no overflows at Dm=4, 90% occupancy")
	}
	for _, k := range keys {
		if !tb.Lookup(k).Found {
			t.Fatalf("lost key %d", k)
		}
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUnlimitedDisplacementNeverOverflows(t *testing.T) {
	tb := New(cfg(1024, 0))
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		if err := tb.Insert(rng.Uint64(), []byte("v"), 1); err != nil {
			t.Fatal(err)
		}
	}
	if tb.Stats().Overflows != 0 {
		t.Fatalf("unlimited table overflowed %d times", tb.Stats().Overflows)
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDelete(t *testing.T) {
	tb := New(cfg(256, 8))
	rng := rand.New(rand.NewSource(5))
	keys := make([]uint64, 200)
	for i := range keys {
		keys[i] = rng.Uint64()
		tb.Insert(keys[i], []byte("v"), 1)
	}
	for i, k := range keys {
		if !tb.Delete(k) {
			t.Fatalf("delete %d failed", k)
		}
		if tb.Lookup(k).Found {
			t.Fatalf("key %d survives deletion", k)
		}
		if err := tb.CheckInvariants(); err != nil {
			t.Fatalf("after delete %d: %v", i, err)
		}
		// All remaining keys still reachable.
		for _, k2 := range keys[i+1:] {
			if !tb.Lookup(k2).Found {
				t.Fatalf("deleting %d lost %d", k, k2)
			}
		}
	}
	if tb.Len() != 0 {
		t.Fatalf("len = %d after deleting all", tb.Len())
	}
	if tb.Delete(12345) {
		t.Fatal("deleted absent key")
	}
}

func TestDeletePullsFromOverflow(t *testing.T) {
	tb := New(cfg(256, 4))
	rng := rand.New(rand.NewSource(6))
	keys := make([]uint64, 230) // 90% of 256
	for i := range keys {
		keys[i] = rng.Uint64()
		tb.Insert(keys[i], []byte("v"), 1)
	}
	if tb.Stats().Overflows == 0 {
		t.Skip("seed produced no overflow")
	}
	for _, k := range keys {
		tb.Delete(k)
	}
	if tb.Stats().OverflowSwapsIn == 0 {
		t.Fatal("no deletion reused an overflow element")
	}
}

func TestLargeObjectIndirection(t *testing.T) {
	tb := New(cfg(64, 8))
	big := make([]byte, 660) // TPC-C max object size
	for i := range big {
		big[i] = byte(i)
	}
	tb.Insert(42, big, 1)
	r := tb.Lookup(42)
	if !r.Found || len(r.Value) != 660 {
		t.Fatalf("large lookup: found=%v len=%d", r.Found, len(r.Value))
	}
	// The slot itself must be a pointer, not the payload.
	s := tb.ReadRegion(tb.Home(42), 1)[0]
	if !s.Indirect || s.Value != nil {
		t.Fatalf("large object stored inline: %+v", s)
	}
	if v, ok := tb.LargeValue(42); !ok || len(v) != 660 {
		t.Fatal("LargeValue missing")
	}
	// Shrinking below threshold moves it back inline.
	tb.Update(42, []byte("small"), 2)
	s = tb.ReadRegion(tb.Home(42), 1)[0]
	if s.Indirect {
		t.Fatal("small value left indirect")
	}
	if _, ok := tb.LargeValue(42); ok {
		t.Fatal("stale large value")
	}
}

func TestOversizedInlineValuePanics(t *testing.T) {
	c := cfg(64, 8)
	c.InlineValueSize = 16
	c.LargeThreshold = 64
	tb := New(c)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for 32B value with 16B slots and 64B threshold")
		}
	}()
	tb.Insert(1, make([]byte, 32), 1)
}

func TestSegmentMaxDispTracksInserts(t *testing.T) {
	tb := New(cfg(1024, 16))
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 900; i++ {
		tb.Insert(rng.Uint64(), []byte("v"), 1)
		if err := tb.CheckInvariants(); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	// Exact recomputation must match the incrementally maintained values.
	for seg := 0; seg < tb.Segments(); seg++ {
		got := tb.SegmentMaxDisp(seg)
		tb.recomputeSegMax(seg)
		if tb.SegmentMaxDisp(seg) != got {
			t.Fatalf("segment %d: incremental %d != exact %d", seg, got, tb.SegmentMaxDisp(seg))
		}
	}
}

func TestReadRegionWraps(t *testing.T) {
	tb := New(cfg(64, 8))
	out := tb.ReadRegion(62, 4)
	if len(out) != 4 {
		t.Fatalf("region len %d", len(out))
	}
}

func TestHashIsStable(t *testing.T) {
	if Hash(1) == Hash(2) {
		t.Fatal("trivial collision")
	}
	if Hash(42) != Hash(42) {
		t.Fatal("hash not deterministic")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Slots: 64, SegmentSlots: 7}, // does not divide
		{Slots: 64, SegmentSlots: 0}, // zero
		{Slots: 64, SegmentSlots: 8, MaxDisplacement: -1},
	}
	for i, c := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d: no panic", i)
				}
			}()
			New(c)
		}()
	}
}

// Property: a random interleaving of inserts, updates and deletes matches a
// map model, and invariants hold throughout.
func TestTableMatchesMapModel(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		tb := New(cfg(256, 8))
		model := map[uint64]uint64{} // key -> version
		rng := rand.New(rand.NewSource(seed))
		version := uint64(1)
		for _, op := range ops {
			key := uint64(op % 97) // small key space forces collisions
			switch rng.Intn(3) {
			case 0:
				if tb.Len() < 220 {
					version++
					if tb.Insert(key, []byte{byte(version)}, version) != nil {
						return false
					}
					model[key] = version
				}
			case 1:
				version++
				ok := tb.Update(key, []byte{byte(version)}, version)
				if _, want := model[key]; ok != want {
					return false
				}
				if ok {
					model[key] = version
				}
			case 2:
				ok := tb.Delete(key)
				if _, want := model[key]; ok != want {
					return false
				}
				delete(model, key)
			}
			if err := tb.CheckInvariants(); err != nil {
				t.Logf("invariant: %v", err)
				return false
			}
		}
		if tb.Len() != len(model) {
			return false
		}
		for k, v := range model {
			r := tb.Lookup(k)
			if !r.Found || r.Version != v {
				return false
			}
		}
		return true
	}
	c := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(8))}
	if err := quick.Check(f, c); err != nil {
		t.Fatal(err)
	}
}

// Property: displacement never exceeds the limit for any insertion order.
func TestDisplacementBoundProperty(t *testing.T) {
	f := func(keys []uint64) bool {
		tb := New(cfg(128, 8))
		for i, k := range keys {
			if i >= 115 { // stay near but below capacity
				break
			}
			if tb.Insert(k, []byte("v"), 1) != nil {
				return false
			}
		}
		return tb.CheckInvariants() == nil
	}
	c := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(9))}
	if err := quick.Check(f, c); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert90Percent(b *testing.B) {
	tb := New(cfg(1<<20, 16))
	rng := rand.New(rand.NewSource(1))
	n := (1 << 20) * 9 / 10
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%n == 0 {
			b.StopTimer()
			tb = New(cfg(1<<20, 16))
			b.StartTimer()
		}
		tb.Insert(keys[i%n], []byte("valuevalue"), 1)
	}
}

func BenchmarkLookup90Percent(b *testing.B) {
	tb := New(cfg(1<<20, 16))
	rng := rand.New(rand.NewSource(1))
	n := (1 << 20) * 9 / 10
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64()
		tb.Insert(keys[i], []byte("valuevalue"), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Lookup(keys[i%n])
	}
}

// keysHomedAt finds n distinct keys whose home slot is exactly home.
func keysHomedAt(t *testing.T, tb *Table, home, n int) []uint64 {
	t.Helper()
	var keys []uint64
	for v := uint64(1); len(keys) < n; v++ {
		if tb.Home(v) == home {
			keys = append(keys, v)
		}
		if v > 1<<24 {
			t.Fatalf("could not find %d keys homed at slot %d", n, home)
		}
	}
	return keys
}

// TestDeleteBackwardShiftWrapAround deletes the head of a probe run that
// wraps past the last slot, and asserts the survivors' probe distances —
// not just their presence — after the backward shift crosses the boundary.
func TestDeleteBackwardShiftWrapAround(t *testing.T) {
	tb := New(cfg(16, 8))
	home := tb.Slots() - 2 // run occupies slots 14, 15, 0
	keys := keysHomedAt(t, tb, home, 3)
	for i, k := range keys {
		if err := tb.Insert(k, []byte{byte(i)}, uint64(i+1)); err != nil {
			t.Fatal(err)
		}
		if got := tb.Lookup(k).Disp; got != i {
			t.Fatalf("key %d inserted at disp %d, want %d", k, got, i)
		}
	}
	if !tb.Delete(keys[0]) {
		t.Fatal("delete failed")
	}
	// The shift must pull both survivors one slot back across the wrap.
	for i, k := range keys[1:] {
		r := tb.Lookup(k)
		if !r.Found || r.Disp != i {
			t.Fatalf("after delete: key %d at disp %d (found=%v), want disp %d", k, r.Disp, r.Found, i)
		}
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteRecomputesShiftedSegmentHints pins the stale-hint bug: a
// backward shift that lowers the displacement of an element homed in a
// DIFFERENT segment than the deleted key must update that segment's
// max-displacement hint too, or every later DMA probe of the segment reads
// more slots than needed.
func TestDeleteRecomputesShiftedSegmentHints(t *testing.T) {
	tb := New(cfg(32, 16))
	// a, b homed at slot 7 (last of segment 1); c homed at slot 8
	// (segment 2). Layout: a@7(d0) b@8(d1) c@9(d1).
	ab := keysHomedAt(t, tb, 7, 2)
	c := keysHomedAt(t, tb, 8, 1)[0]
	for _, k := range []uint64{ab[0], ab[1], c} {
		if err := tb.Insert(k, []byte("v"), 1); err != nil {
			t.Fatal(err)
		}
	}
	if d := tb.Lookup(c).Disp; d != 1 {
		t.Fatalf("setup: key c at disp %d, want 1", d)
	}
	if got := tb.SegmentMaxDisp(2); got != 1 {
		t.Fatalf("setup: segment 2 hint %d, want 1", got)
	}
	if !tb.Delete(ab[0]) {
		t.Fatal("delete failed")
	}
	// b and c each shifted home; segment 2's hint (c's home segment) must
	// drop to 0 even though the deleted key was homed in segment 1.
	if d := tb.Lookup(c).Disp; d != 0 {
		t.Fatalf("key c at disp %d after shift, want 0", d)
	}
	if got := tb.SegmentMaxDisp(2); got != 0 {
		t.Fatalf("segment 2 hint %d after delete, want 0 (stale hint)", got)
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDeleteReinsertFullTable drives a displacement-limited table at full
// occupancy through delete/reinsert cycles: every key must stay reachable,
// probe distances must stay within the limit, and the exact-hint and
// count invariants must hold at every step (overflow pages absorb what the
// main table cannot place).
func TestDeleteReinsertFullTable(t *testing.T) {
	tb := New(cfg(64, 4))
	rng := rand.New(rand.NewSource(9))
	keys := make([]uint64, 64) // 100% of slots: some keys must overflow
	for i := range keys {
		keys[i] = rng.Uint64()
		if err := tb.Insert(keys[i], []byte("v"), uint64(i+1)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if tb.Stats().Overflows == 0 {
		t.Fatal("full table produced no overflow")
	}
	for round := 0; round < 3; round++ {
		for i, k := range keys {
			if !tb.Delete(k) {
				t.Fatalf("round %d: delete %d failed", round, k)
			}
			if err := tb.CheckInvariants(); err != nil {
				t.Fatalf("round %d after delete %d: %v", round, i, err)
			}
			if err := tb.Insert(k, []byte("w"), uint64(round+2)); err != nil {
				t.Fatalf("round %d: reinsert %d: %v", round, k, err)
			}
			if err := tb.CheckInvariants(); err != nil {
				t.Fatalf("round %d after reinsert %d: %v", round, i, err)
			}
		}
		for _, k := range keys {
			r := tb.Lookup(k)
			if !r.Found {
				t.Fatalf("round %d: key %d lost", round, k)
			}
			if !r.Overflow && r.Disp >= 4 {
				t.Fatalf("round %d: key %d at disp %d beyond limit", round, k, r.Disp)
			}
		}
	}
	if tb.Len() != len(keys) {
		t.Fatalf("len = %d, want %d", tb.Len(), len(keys))
	}
}
