// Package robinhood implements Xenic's host-side hash table (§4.1.2): a
// closed Robin Hood linear-probing table with a global displacement limit
// Dm, fixed-size segments with linked overflow buckets, overflow-swap or
// bounded backward-shift deletion, and large-object indirection for values
// above 256B so that DMA lookups never fetch large payloads inline.
//
// The table is a real data structure — the Table 2 lookup-efficiency results
// are measured on it — and it also reports the geometry the SmartNIC index
// needs: per-segment maximum displacements and the byte layout of probe
// regions fetched by DMA reads.
package robinhood

import (
	"errors"
	"fmt"
)

// Hash is the 64-bit mix function used to derive home positions; exported so
// the NIC index, and the alternative table designs compared in Table 2, hash
// identically.
func Hash(key uint64) uint64 {
	// splitmix64 finalizer.
	z := key + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Config sizes a table.
type Config struct {
	// Slots is the number of main-table slots; rounded up to a power of 2.
	Slots int
	// SegmentSlots is the number of slots per segment; one NIC index entry
	// covers one segment (§4.1.3). Must divide the rounded slot count.
	SegmentSlots int
	// MaxDisplacement is the global displacement limit Dm. 0 disables the
	// limit (the "no limit" row of Table 2).
	MaxDisplacement int
	// InlineValueSize is the fixed per-slot value capacity in bytes. Values
	// above LargeThreshold are stored out of table behind a pointer.
	InlineValueSize int
	// LargeThreshold is the inline-storage cutoff; the paper uses 256B.
	LargeThreshold int
}

// DefaultConfig returns a table configuration with the paper's defaults.
func DefaultConfig(slots int) Config {
	return Config{
		Slots:           slots,
		SegmentSlots:    4,
		MaxDisplacement: 16,
		InlineValueSize: 64,
		LargeThreshold:  256,
	}
}

// Slot is one main-table entry as visible to a DMA read.
type Slot struct {
	Occupied bool
	Key      uint64
	Disp     int    // displacement from the key's home position
	Version  uint64 // sequence number, incremented on commit
	Value    []byte // inline value, or nil when Indirect
	Indirect bool   // value stored out of table (>LargeThreshold)
}

// OverflowEntry is one element of a segment's overflow bucket.
type OverflowEntry struct {
	Key     uint64
	Version uint64
	Value   []byte
	Home    int // home slot index, needed for overflow-swap deletion
}

// Stats counts structural events, several of which the paper reports
// (e.g. ~6% of insertions at 90% occupancy raise a segment's max
// displacement, and only ~0.2% raise it by more than one — §4.1.3).
type Stats struct {
	Inserts            int64
	Overflows          int64
	Swaps              int64 // occupied-slot swaps during insertion
	Deletes            int64
	BackwardShifts     int64
	OverflowSwapsIn    int64 // deletions resolved by pulling in an overflow element
	MaxDispRaised      int64 // insertions that raised their segment's max displacement
	MaxDispRaisedByTwo int64 // ... by more than one
	MultiLineSwaps     int64 // swaps spanning >1 host cache line (HTM-guarded, §4.1.2)
}

// Table is the host-side store for one shard.
type Table struct {
	cfg      Config
	mask     uint64
	slots    []Slot
	overflow [][]OverflowEntry // per segment
	segMax   []int             // per-segment max displacement (exact)
	count    int
	large    map[uint64][]byte // out-of-table large values
	stats    Stats
}

// ErrFull is returned when insertion cannot find a free slot within the
// probe bound.
var ErrFull = errors.New("robinhood: table full")

// New creates a table. It panics on invalid configuration, since table
// geometry is fixed at startup in the systems being modeled.
func New(cfg Config) *Table {
	n := 1
	for n < cfg.Slots {
		n <<= 1
	}
	if cfg.SegmentSlots <= 0 || n%cfg.SegmentSlots != 0 {
		panic(fmt.Sprintf("robinhood: segment size %d does not divide %d slots", cfg.SegmentSlots, n))
	}
	if cfg.MaxDisplacement < 0 {
		panic("robinhood: negative displacement limit")
	}
	if cfg.LargeThreshold <= 0 {
		cfg.LargeThreshold = 256
	}
	if cfg.InlineValueSize <= 0 {
		cfg.InlineValueSize = 64
	}
	cfg.Slots = n
	return &Table{
		cfg:      cfg,
		mask:     uint64(n - 1),
		slots:    make([]Slot, n),
		overflow: make([][]OverflowEntry, n/cfg.SegmentSlots),
		segMax:   make([]int, n/cfg.SegmentSlots),
		large:    make(map[uint64][]byte),
	}
}

// Config returns the table's effective configuration.
func (t *Table) Config() Config { return t.cfg }

// Len reports the number of stored keys (main table + overflow).
func (t *Table) Len() int { return t.count }

// Slots reports main-table capacity.
func (t *Table) Slots() int { return len(t.slots) }

// Segments reports the number of segments.
func (t *Table) Segments() int { return len(t.overflow) }

// Stats returns a copy of the structural event counters.
func (t *Table) Stats() Stats { return t.stats }

// Home returns the home slot index for key.
func (t *Table) Home(key uint64) int { return int(Hash(key) & t.mask) }

// SegmentOf returns the segment index covering slot index idx.
func (t *Table) SegmentOf(idx int) int { return idx / t.cfg.SegmentSlots }

// SegmentMaxDisp returns the exact maximum displacement among keys whose
// home position lies in segment seg (0 when empty). The NIC index mirrors
// this value, possibly stale, as its lookup hint d_i.
func (t *Table) SegmentMaxDisp(seg int) int { return t.segMax[seg] }

// OverflowLen reports the number of overflow entries for segment seg.
func (t *Table) OverflowLen(seg int) int { return len(t.overflow[seg]) }

// SlotBytes is the encoded size of one slot in host memory: 8B key + 2B
// displacement + 2B flags + 4B version + inline value capacity. DMA probe
// reads fetch multiples of this.
func (t *Table) SlotBytes() int { return 16 + t.cfg.InlineValueSize }

// dispLimited reports whether the displacement limit is enabled.
func (t *Table) dispLimited() bool { return t.cfg.MaxDisplacement > 0 }

// limit returns the probe bound: Dm when limited, else the table size.
func (t *Table) limit() int {
	if t.dispLimited() {
		return t.cfg.MaxDisplacement
	}
	return len(t.slots)
}

func (t *Table) idx(home, d int) int { return (home + d) & int(t.mask) }

// raiseSegMax records a displacement observation for a key homed in seg.
func (t *Table) raiseSegMax(seg, disp int) {
	if disp > t.segMax[seg] {
		if disp > t.segMax[seg]+1 {
			t.stats.MaxDispRaisedByTwo++
		}
		t.stats.MaxDispRaised++
		t.segMax[seg] = disp
	}
}

// recomputeSegMax recalculates a segment's max displacement after deletion.
func (t *Table) recomputeSegMax(seg int) {
	maxD := 0
	base := seg * t.cfg.SegmentSlots
	// A key homed in this segment can sit up to limit()-1 past segment end.
	for off := 0; off < t.cfg.SegmentSlots+t.limit(); off++ {
		s := &t.slots[(base+off)&int(t.mask)]
		if s.Occupied && t.SegmentOf(t.Home(s.Key)) == seg && s.Disp > maxD {
			maxD = s.Disp
		}
	}
	t.segMax[seg] = maxD
}

// storeValue prepares a slot's value fields, applying large-object
// indirection.
func (t *Table) storeValue(s *Slot, key uint64, value []byte) {
	if len(value) > t.cfg.LargeThreshold {
		s.Indirect = true
		s.Value = nil
		t.large[key] = append([]byte(nil), value...)
		return
	}
	if len(value) > t.cfg.InlineValueSize {
		panic(fmt.Sprintf("robinhood: value of %dB exceeds inline capacity %dB (and is below the large threshold %dB)",
			len(value), t.cfg.InlineValueSize, t.cfg.LargeThreshold))
	}
	s.Indirect = false
	s.Value = append([]byte(nil), value...)
	delete(t.large, key)
}

// Insert adds key with value and version. Inserting an existing key updates
// it in place. Returns ErrFull only when no free slot exists within reach
// and the overflow path also cannot apply (unlimited-displacement tables
// that are completely full).
func (t *Table) Insert(key uint64, value []byte, version uint64) error {
	if s := t.findSlot(key); s != nil {
		t.storeValue(s, key, value)
		s.Version = version
		return nil
	}
	if e := t.findOverflow(key); e != nil {
		e.Value = append([]byte(nil), value...)
		e.Version = version
		return nil
	}
	t.stats.Inserts++

	carry := Slot{Occupied: true, Key: key, Version: version}
	t.storeValue(&carry, key, value)
	home := t.Home(key)
	carryHome := home
	d := 0
	for step := 0; step <= len(t.slots); step++ {
		if t.dispLimited() && d >= t.cfg.MaxDisplacement {
			// Displacement reached Dm: the carried element (which may be a
			// displaced victim, not the original key) goes to the overflow
			// bucket of ITS home segment (§4.1.2).
			t.appendOverflow(carry, carryHome)
			return nil
		}
		i := t.idx(carryHome, d)
		s := &t.slots[i]
		if !s.Occupied {
			carry.Disp = d
			*s = carry
			t.count++
			t.raiseSegMax(t.SegmentOf(carryHome), d)
			return nil
		}
		if s.Disp < d {
			// Steal displacement wealth: swap the carried element with the
			// better-placed occupant and continue inserting the victim.
			carry.Disp = d
			victim := *s
			*s = carry
			t.stats.Swaps++
			if t.slotSpansCacheLines() {
				t.stats.MultiLineSwaps++
			}
			t.raiseSegMax(t.SegmentOf(carryHome), d)
			carry = victim
			carryHome = t.Home(victim.Key)
			d = victim.Disp
		}
		d++
	}
	return ErrFull
}

// slotSpansCacheLines reports whether a slot crosses a 64B host cache line,
// requiring the HTM-guarded swap path of §4.1.2.
func (t *Table) slotSpansCacheLines() bool { return t.SlotBytes() > 64 }

func (t *Table) appendOverflow(s Slot, home int) {
	seg := t.SegmentOf(home)
	val := s.Value
	if s.Indirect {
		val = append([]byte(nil), t.large[s.Key]...)
		delete(t.large, s.Key)
	}
	t.overflow[seg] = append(t.overflow[seg], OverflowEntry{
		Key: s.Key, Version: s.Version, Value: val, Home: home,
	})
	t.count++
	t.stats.Overflows++
	// When the carried element is a displaced victim (not the original
	// key), it just left the main table, so its segment's max displacement
	// may have dropped.
	t.recomputeSegMax(seg)
}

// findSlot returns the main-table slot holding key, or nil.
func (t *Table) findSlot(key uint64) *Slot {
	home := t.Home(key)
	for d := 0; d < t.limit(); d++ {
		s := &t.slots[t.idx(home, d)]
		if !s.Occupied {
			return nil
		}
		if s.Key == key {
			return s
		}
		if s.Disp < d {
			// Robin Hood invariant: key would have displaced this element.
			return nil
		}
	}
	return nil
}

func (t *Table) findOverflow(key uint64) *OverflowEntry {
	seg := t.SegmentOf(t.Home(key))
	for i := range t.overflow[seg] {
		if t.overflow[seg][i].Key == key {
			return &t.overflow[seg][i]
		}
	}
	return nil
}

// LookupResult describes a lookup, including the probe work a remote reader
// would have performed; the NIC index and Table 2 use these counts.
type LookupResult struct {
	Found    bool
	Value    []byte
	Version  uint64
	Disp     int  // displacement at which the key was found
	Overflow bool // found in (or required reading) the overflow bucket
}

// Lookup finds key via local memory access (the host fast path).
func (t *Table) Lookup(key uint64) LookupResult {
	if s := t.findSlot(key); s != nil {
		v := s.Value
		if s.Indirect {
			v = t.large[key]
		}
		return LookupResult{Found: true, Value: v, Version: s.Version, Disp: s.Disp}
	}
	if e := t.findOverflow(key); e != nil {
		return LookupResult{Found: true, Value: e.Value, Version: e.Version, Overflow: true}
	}
	return LookupResult{}
}

// Update overwrites an existing key's value and version, returning false if
// the key is absent.
func (t *Table) Update(key uint64, value []byte, version uint64) bool {
	if s := t.findSlot(key); s != nil {
		t.storeValue(s, key, value)
		s.Version = version
		return true
	}
	if e := t.findOverflow(key); e != nil {
		e.Value = append([]byte(nil), value...)
		e.Version = version
		return true
	}
	return false
}

// Delete removes key. Deletion prefers swapping in an overflow element of
// the same segment (if one can legally occupy the freed slot), otherwise it
// performs a backward shift bounded by the displacement limit (§4.1.2).
func (t *Table) Delete(key uint64) bool {
	home := t.Home(key)
	for d := 0; d < t.limit(); d++ {
		i := t.idx(home, d)
		s := &t.slots[i]
		if !s.Occupied {
			break
		}
		if s.Key == key {
			shifted := t.removeAt(i)
			t.stats.Deletes++
			t.count--
			delete(t.large, key)
			t.recomputeSegMax(t.SegmentOf(home))
			for _, seg := range shifted {
				if seg != t.SegmentOf(home) {
					t.recomputeSegMax(seg)
				}
			}
			return true
		}
		if s.Disp < d {
			break
		}
	}
	// Overflow-resident key.
	seg := t.SegmentOf(home)
	for i := range t.overflow[seg] {
		if t.overflow[seg][i].Key == key {
			t.overflow[seg] = append(t.overflow[seg][:i], t.overflow[seg][i+1:]...)
			t.stats.Deletes++
			t.count--
			delete(t.large, key)
			return true
		}
	}
	return false
}

// removeAt frees slot i with a bounded backward shift, then tries to pull an
// overflow element of a covering segment back into the main table (§4.1.2's
// "swap an overflow element over the deleted element"). The pulled element
// goes through the normal insertion path so the Robin Hood run ordering —
// home positions non-decreasing within a probe run, which the early-stop
// lookup rule depends on — is preserved. It returns the home segments of
// every shifted element: their displacements decreased, so the caller must
// recompute those segments' max-displacement hints, not just the deleted
// key's.
func (t *Table) removeAt(i int) []int {
	// Backward shift: move subsequent displaced elements one slot back
	// until an empty slot or an element already at home.
	var shifted []int
	cur := i
	for {
		next := (cur + 1) & int(t.mask)
		n := &t.slots[next]
		if !n.Occupied || n.Disp == 0 {
			break
		}
		moved := *n
		moved.Disp--
		t.slots[cur] = moved
		t.stats.BackwardShifts++
		shifted = append(shifted, t.SegmentOf(t.Home(moved.Key)))
		cur = next
	}
	t.slots[cur] = Slot{}
	t.promoteOverflow(i)
	return shifted
}

// promoteOverflow re-inserts one overflow element homed near slot i, if any;
// insertion may succeed into the vacated space or legitimately overflow
// again.
func (t *Table) promoteOverflow(i int) {
	for _, seg := range t.segmentsCovering(i) {
		bucket := t.overflow[seg]
		if len(bucket) == 0 {
			continue
		}
		e := bucket[len(bucket)-1]
		t.overflow[seg] = bucket[:len(bucket)-1]
		t.count--
		before := t.stats.Overflows
		if err := t.Insert(e.Key, e.Value, e.Version); err != nil {
			// Should be impossible: we just freed a slot. Restore.
			t.overflow[seg] = append(t.overflow[seg], e)
			t.count++
			return
		}
		if t.stats.Overflows == before {
			t.stats.OverflowSwapsIn++
		}
		return
	}
}

// segmentsCovering lists segments whose homed keys could occupy slot i:
// the segment of i and the preceding segments within the probe bound.
func (t *Table) segmentsCovering(i int) []int {
	segs := []int{t.SegmentOf(i)}
	span := (t.limit() + t.cfg.SegmentSlots - 1) / t.cfg.SegmentSlots
	for k := 1; k <= span; k++ {
		idx := (i - k*t.cfg.SegmentSlots) & int(t.mask)
		segs = append(segs, t.SegmentOf(idx))
	}
	return segs
}

// ReadRegion copies n slots starting at the key's home offset; this is what
// a NIC DMA probe read returns. start is an absolute slot index.
func (t *Table) ReadRegion(start, n int) []Slot {
	out := make([]Slot, 0, n)
	for k := 0; k < n; k++ {
		out = append(out, t.slots[(start+k)&int(t.mask)])
	}
	return out
}

// ReadOverflow returns a copy of segment seg's overflow bucket, as a DMA
// read of the overflow page would.
func (t *Table) ReadOverflow(seg int) []OverflowEntry {
	return append([]OverflowEntry(nil), t.overflow[seg]...)
}

// LargeValue fetches an out-of-table value by key (the single-object DMA
// read that follows a pointer slot).
func (t *Table) LargeValue(key uint64) ([]byte, bool) {
	v, ok := t.large[key]
	return v, ok
}

// ForEach visits every stored key (main table then overflow) until fn
// returns false. Values for indirect entries are resolved.
func (t *Table) ForEach(fn func(key uint64, version uint64, value []byte) bool) {
	for i := range t.slots {
		s := &t.slots[i]
		if !s.Occupied {
			continue
		}
		v := s.Value
		if s.Indirect {
			v = t.large[s.Key]
		}
		if !fn(s.Key, s.Version, v) {
			return
		}
	}
	for _, bucket := range t.overflow {
		for _, e := range bucket {
			if !fn(e.Key, e.Version, e.Value) {
				return
			}
		}
	}
}

// CheckInvariants verifies structural invariants, returning an error
// describing the first violation. Tests and failure-injection runs call it.
func (t *Table) CheckInvariants() error {
	n := 0
	for i := range t.slots {
		s := &t.slots[i]
		if !s.Occupied {
			continue
		}
		n++
		home := t.Home(s.Key)
		d := (i - home) & int(t.mask)
		if d != s.Disp {
			return fmt.Errorf("slot %d: stored disp %d != actual %d", i, s.Disp, d)
		}
		if t.dispLimited() && s.Disp >= t.cfg.MaxDisplacement {
			return fmt.Errorf("slot %d: disp %d >= limit %d", i, s.Disp, t.cfg.MaxDisplacement)
		}
	}
	// segMax must be exact, as documented: a low hint breaks nothing (the
	// NIC's second adjacent read covers it) but an inflated one silently
	// widens every DMA probe read.
	exact := make([]int, len(t.segMax))
	for i := range t.slots {
		s := &t.slots[i]
		if !s.Occupied {
			continue
		}
		if seg := t.SegmentOf(t.Home(s.Key)); s.Disp > exact[seg] {
			exact[seg] = s.Disp
		}
	}
	for seg := range exact {
		if t.segMax[seg] != exact[seg] {
			return fmt.Errorf("segment %d: max disp hint %d != exact %d", seg, t.segMax[seg], exact[seg])
		}
	}
	for seg, b := range t.overflow {
		for _, e := range b {
			if t.SegmentOf(e.Home) != seg {
				return fmt.Errorf("overflow entry %d homed in segment %d stored in %d", e.Key, t.SegmentOf(e.Home), seg)
			}
			n++
		}
	}
	if n != t.count {
		return fmt.Errorf("count %d != resident %d", t.count, n)
	}
	return nil
}
