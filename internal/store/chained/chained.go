// Package chained implements DrTM+H's hash structure [44], the second
// comparison point of Table 2: a closed array of fixed-size B-element
// buckets with additional linked buckets allocated as necessary. A remote
// lookup reads whole buckets and follows chain links, so it fetches at
// least B objects and may take multiple roundtrips.
package chained

import (
	"fmt"

	"xenic/internal/store/robinhood"
)

// Entry is one stored object.
type Entry struct {
	Key     uint64
	Version uint64
	Value   []byte
}

type bucket struct {
	used    int
	entries []Entry
	next    *bucket
}

// Table is a chained-bucket hash table.
type Table struct {
	b     int
	mask  uint64
	root  []bucket
	count int
}

// New creates a table with roots root buckets (rounded to a power of two)
// of b entries each.
func New(roots, b int) *Table {
	if b <= 0 {
		panic("chained: non-positive bucket size")
	}
	n := 1
	for n < roots {
		n <<= 1
	}
	t := &Table{b: b, mask: uint64(n - 1), root: make([]bucket, n)}
	for i := range t.root {
		t.root[i].entries = make([]Entry, b)
	}
	return t
}

// B returns the bucket size.
func (t *Table) B() int { return t.b }

// Len reports stored keys; Roots the number of root buckets.
func (t *Table) Len() int   { return t.count }
func (t *Table) Roots() int { return len(t.root) }

func (t *Table) bucketOf(key uint64) *bucket {
	return &t.root[robinhood.Hash(key)&t.mask]
}

// Insert adds or updates key.
func (t *Table) Insert(key uint64, value []byte, version uint64) {
	for b := t.bucketOf(key); b != nil; b = b.next {
		for i := 0; i < b.used; i++ {
			if b.entries[i].Key == key {
				b.entries[i].Value = append([]byte(nil), value...)
				b.entries[i].Version = version
				return
			}
		}
	}
	b := t.bucketOf(key)
	for b.used == t.b {
		if b.next == nil {
			b.next = &bucket{entries: make([]Entry, t.b)}
		}
		b = b.next
	}
	b.entries[b.used] = Entry{Key: key, Version: version, Value: append([]byte(nil), value...)}
	b.used++
	t.count++
}

// LookupResult reports a lookup and its remote-access cost: B objects per
// bucket visited, one roundtrip per chain hop.
type LookupResult struct {
	Found       bool
	Value       []byte
	Version     uint64
	ObjectsRead int
	Roundtrips  int
}

// Lookup traverses the chain from the root bucket.
func (t *Table) Lookup(key uint64) LookupResult {
	var r LookupResult
	for b := t.bucketOf(key); b != nil; b = b.next {
		r.Roundtrips++
		r.ObjectsRead += t.b
		for i := 0; i < b.used; i++ {
			if b.entries[i].Key == key {
				r.Found = true
				r.Value = b.entries[i].Value
				r.Version = b.entries[i].Version
				return r
			}
		}
	}
	if r.Roundtrips == 0 {
		r.Roundtrips = 1
		r.ObjectsRead = t.b
	}
	return r
}

// Delete removes key, compacting the chain tail into the hole.
func (t *Table) Delete(key uint64) bool {
	for b := t.bucketOf(key); b != nil; b = b.next {
		for i := 0; i < b.used; i++ {
			if b.entries[i].Key != key {
				continue
			}
			// Find the last entry in the chain and move it into the hole.
			lastB := b
			for lastB.next != nil && lastB.next.used > 0 {
				lastB = lastB.next
			}
			b.entries[i] = lastB.entries[lastB.used-1]
			lastB.entries[lastB.used-1] = Entry{}
			lastB.used--
			t.count--
			return true
		}
	}
	return false
}

// ForEach visits every stored entry until fn returns false.
func (t *Table) ForEach(fn func(key uint64, version uint64, value []byte) bool) {
	for ri := range t.root {
		for b := &t.root[ri]; b != nil; b = b.next {
			for i := 0; i < b.used; i++ {
				e := b.entries[i]
				if !fn(e.Key, e.Version, e.Value) {
					return
				}
			}
		}
	}
}

// CheckInvariants verifies bucket occupancy bookkeeping and key placement.
func (t *Table) CheckInvariants() error {
	n := 0
	for ri := range t.root {
		for b := &t.root[ri]; b != nil; b = b.next {
			if b.used < 0 || b.used > t.b {
				return fmt.Errorf("bucket %d: used=%d", ri, b.used)
			}
			for i := 0; i < b.used; i++ {
				e := b.entries[i]
				if int(robinhood.Hash(e.Key)&t.mask) != ri {
					return fmt.Errorf("key %d in root %d, hashes to %d", e.Key, ri, robinhood.Hash(e.Key)&t.mask)
				}
				n++
			}
		}
	}
	if n != t.count {
		return fmt.Errorf("count %d != resident %d", t.count, n)
	}
	return nil
}
