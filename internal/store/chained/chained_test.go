package chained

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertLookupDelete(t *testing.T) {
	tb := New(64, 4)
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 300) // forces chains: >B keys per root on average
	for i := range keys {
		keys[i] = rng.Uint64()
		tb.Insert(keys[i], []byte{byte(i)}, uint64(i+1))
	}
	if tb.Len() != 300 {
		t.Fatalf("len = %d", tb.Len())
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	multiRT := 0
	for i, k := range keys {
		r := tb.Lookup(k)
		if !r.Found || r.Version != uint64(i+1) {
			t.Fatalf("lookup %d: %+v", k, r)
		}
		if r.ObjectsRead != r.Roundtrips*tb.B() {
			t.Fatalf("cost mismatch: %+v", r)
		}
		if r.Roundtrips > 1 {
			multiRT++
		}
	}
	if multiRT == 0 {
		t.Fatal("no chained lookups despite 300 keys in 64x4 roots")
	}
	for _, k := range keys {
		if !tb.Delete(k) {
			t.Fatalf("delete %d", k)
		}
		if err := tb.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	if tb.Len() != 0 {
		t.Fatalf("len = %d", tb.Len())
	}
}

func TestUpdateInPlace(t *testing.T) {
	tb := New(16, 4)
	tb.Insert(9, []byte("a"), 1)
	tb.Insert(9, []byte("b"), 2)
	if tb.Len() != 1 {
		t.Fatalf("len = %d", tb.Len())
	}
	if r := tb.Lookup(9); string(r.Value) != "b" {
		t.Fatalf("%+v", r)
	}
}

func TestMissCost(t *testing.T) {
	tb := New(16, 8)
	r := tb.Lookup(77)
	if r.Found || r.ObjectsRead != 8 || r.Roundtrips != 1 {
		t.Fatalf("%+v", r)
	}
}

func TestDeleteCompactsFromChainTail(t *testing.T) {
	tb := New(1, 2) // single root bucket, B=2: keys chain deterministically
	for k := uint64(1); k <= 6; k++ {
		tb.Insert(k, []byte("v"), k)
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Delete a root-bucket key; the tail entry must fill the hole.
	if !tb.Delete(1) {
		t.Fatal("delete failed")
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(2); k <= 6; k++ {
		if !tb.Lookup(k).Found {
			t.Fatalf("lost %d", k)
		}
	}
	// Chain should have shrunk by one entry's roundtrip cost for the tail key.
	if tb.Len() != 5 {
		t.Fatalf("len = %d", tb.Len())
	}
}

func TestBadBucketSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(16, 0)
}

func TestModelEquivalence(t *testing.T) {
	f := func(ops []uint16) bool {
		tb := New(16, 4)
		model := map[uint64]uint64{}
		v := uint64(0)
		for _, op := range ops {
			k := uint64(op % 41)
			if op%3 == 0 {
				_, in := model[k]
				if tb.Delete(k) != in {
					return false
				}
				delete(model, k)
			} else {
				v++
				tb.Insert(k, []byte{1}, v)
				model[k] = v
			}
			if tb.CheckInvariants() != nil {
				return false
			}
		}
		for k, ver := range model {
			r := tb.Lookup(k)
			if !r.Found || r.Version != ver {
				return false
			}
		}
		return len(model) == tb.Len()
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
