package hopscotch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertLookupDelete(t *testing.T) {
	tb := New(1024, 8)
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 900)
	for i := range keys {
		keys[i] = rng.Uint64()
		if err := tb.Insert(keys[i], []byte{byte(i)}, uint64(i)); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if tb.Len() != 900 {
		t.Fatalf("len = %d", tb.Len())
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		r := tb.Lookup(k)
		if !r.Found || r.Version != uint64(i) {
			t.Fatalf("lookup %d: %+v", k, r)
		}
		if r.ObjectsRead < tb.H() {
			t.Fatalf("lookup read %d objects, below neighborhood %d", r.ObjectsRead, tb.H())
		}
	}
	for _, k := range keys[:450] {
		if !tb.Delete(k) {
			t.Fatalf("delete %d", k)
		}
	}
	if tb.Len() != 450 {
		t.Fatalf("len after deletes = %d", tb.Len())
	}
	if err := tb.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys[450:] {
		if !tb.Lookup(k).Found {
			t.Fatalf("lost %d", k)
		}
	}
	if tb.Delete(keys[0]) {
		t.Fatal("double delete succeeded")
	}
}

func TestUpdateInPlace(t *testing.T) {
	tb := New(64, 8)
	tb.Insert(5, []byte("a"), 1)
	tb.Insert(5, []byte("b"), 2)
	if tb.Len() != 1 {
		t.Fatalf("len = %d", tb.Len())
	}
	r := tb.Lookup(5)
	if string(r.Value) != "b" || r.Version != 2 {
		t.Fatalf("%+v", r)
	}
}

func TestOverflowLookupTakesSecondRoundtrip(t *testing.T) {
	tb := New(256, 8)
	rng := rand.New(rand.NewSource(2))
	var keys []uint64
	// Fill to 95% to force neighborhood failures.
	for tb.Len() < 243 {
		k := rng.Uint64()
		if err := tb.Insert(k, []byte("v"), 1); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	if tb.OverflowCount() == 0 {
		t.Skip("no overflow at this seed")
	}
	twoRT := 0
	for _, k := range keys {
		r := tb.Lookup(k)
		if !r.Found {
			t.Fatalf("lost %d", k)
		}
		if r.Roundtrips == 2 {
			twoRT++
		}
	}
	if twoRT < tb.OverflowCount() {
		t.Fatalf("%d overflow keys but only %d two-roundtrip lookups", tb.OverflowCount(), twoRT)
	}
}

func TestMissReportsCost(t *testing.T) {
	tb := New(64, 8)
	r := tb.Lookup(999)
	if r.Found || r.ObjectsRead != 8 || r.Roundtrips != 1 {
		t.Fatalf("%+v", r)
	}
}

func TestBadNeighborhoodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(64, 0)
}

func TestModelEquivalence(t *testing.T) {
	f := func(ops []uint16) bool {
		tb := New(128, 8)
		model := map[uint64]uint64{}
		v := uint64(0)
		for _, op := range ops {
			k := uint64(op % 61)
			if op%3 == 0 && len(model) > 0 {
				if tb.Delete(k) != (model[k] != 0) {
					return false
				}
				delete(model, k)
			} else if tb.Len() < 110 {
				v++
				if tb.Insert(k, []byte{1}, v) != nil {
					return false
				}
				model[k] = v
			}
			if tb.CheckInvariants() != nil {
				return false
			}
		}
		for k, ver := range model {
			r := tb.Lookup(k)
			if !r.Found || r.Version != ver {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
