// Package hopscotch implements FaRM's Hopscotch hash table variant [8],
// used as a comparison point in Table 2 of the Xenic paper: every key is
// stored within a fixed neighborhood of H slots starting at its home
// position (H=8 in FaRM's published results), so a remote lookup is one
// H-object read, with a second roundtrip to a per-bucket overflow chain
// when neighborhood displacement fails.
package hopscotch

import (
	"errors"
	"fmt"

	"xenic/internal/store/robinhood"
)

// Entry is one stored object.
type Entry struct {
	Key     uint64
	Version uint64
	Value   []byte
}

type slot struct {
	occupied bool
	home     int // home bucket of the resident key
	entry    Entry
}

// Table is a Hopscotch hash table.
type Table struct {
	h        int
	mask     uint64
	slots    []slot
	overflow map[int][]Entry
	count    int
	ovCount  int
}

// ErrFull is returned when no free slot can be found or moved into reach.
var ErrFull = errors.New("hopscotch: table full")

// New creates a table with at least slots main-table slots (rounded to a
// power of 2) and neighborhood size h.
func New(slots, h int) *Table {
	if h <= 0 {
		panic("hopscotch: non-positive neighborhood")
	}
	n := 1
	for n < slots {
		n <<= 1
	}
	return &Table{h: h, mask: uint64(n - 1), slots: make([]slot, n), overflow: map[int][]Entry{}}
}

// H returns the neighborhood size.
func (t *Table) H() int { return t.h }

// Len reports stored keys, Slots the main-table capacity, OverflowCount the
// number of keys resident in overflow chains.
func (t *Table) Len() int           { return t.count }
func (t *Table) Slots() int         { return len(t.slots) }
func (t *Table) OverflowCount() int { return t.ovCount }

func (t *Table) home(key uint64) int { return int(robinhood.Hash(key) & t.mask) }

func (t *Table) idx(home, d int) int { return (home + d) & int(t.mask) }

// Insert adds or updates key.
func (t *Table) Insert(key uint64, value []byte, version uint64) error {
	home := t.home(key)
	// Update in place if present.
	for d := 0; d < t.h; d++ {
		s := &t.slots[t.idx(home, d)]
		if s.occupied && s.entry.Key == key {
			s.entry.Value = append([]byte(nil), value...)
			s.entry.Version = version
			return nil
		}
	}
	for i, e := range t.overflow[home] {
		if e.Key == key {
			t.overflow[home][i].Value = append([]byte(nil), value...)
			t.overflow[home][i].Version = version
			return nil
		}
	}

	// Linear probe for a free slot.
	free := -1
	for d := 0; d < len(t.slots); d++ {
		if !t.slots[t.idx(home, d)].occupied {
			free = d
			break
		}
	}
	if free < 0 {
		return ErrFull
	}
	// Hop the free slot back into the neighborhood.
	for free >= t.h {
		moved := false
		// Consider slots in the window [free-h+1, free) whose resident can
		// legally move to the free slot.
		for off := t.h - 1; off >= 1; off-- {
			candIdx := t.idx(home, free-off)
			cand := &t.slots[candIdx]
			if !cand.occupied {
				continue
			}
			// Distance of the free slot from the candidate's home.
			dist := (t.idx(home, free) - cand.home) & int(t.mask)
			if dist < t.h {
				t.slots[t.idx(home, free)] = *cand
				*cand = slot{}
				free = free - off
				moved = true
				break
			}
		}
		if !moved {
			// Cannot displace: spill to the home bucket's overflow chain,
			// costing lookups a second roundtrip (Table 2: 4% of keys at
			// 90% occupancy).
			t.overflow[home] = append(t.overflow[home], Entry{
				Key: key, Version: version, Value: append([]byte(nil), value...),
			})
			t.count++
			t.ovCount++
			return nil
		}
	}
	s := &t.slots[t.idx(home, free)]
	*s = slot{occupied: true, home: home, entry: Entry{
		Key: key, Version: version, Value: append([]byte(nil), value...),
	}}
	t.count++
	return nil
}

// LookupResult reports a lookup and its remote-access cost.
type LookupResult struct {
	Found       bool
	Value       []byte
	Version     uint64
	ObjectsRead int // objects fetched over the (simulated) wire
	Roundtrips  int
}

// Lookup models FaRM's remote lookup: one read of the H-slot neighborhood,
// plus one read of the overflow chain on a neighborhood miss.
func (t *Table) Lookup(key uint64) LookupResult {
	home := t.home(key)
	r := LookupResult{ObjectsRead: t.h, Roundtrips: 1}
	for d := 0; d < t.h; d++ {
		s := &t.slots[t.idx(home, d)]
		if s.occupied && s.entry.Key == key {
			r.Found = true
			r.Value = s.entry.Value
			r.Version = s.entry.Version
			return r
		}
	}
	if chain, ok := t.overflow[home]; ok {
		r.Roundtrips++
		r.ObjectsRead += len(chain)
		for i := range chain {
			if chain[i].Key == key {
				r.Found = true
				r.Value = chain[i].Value
				r.Version = chain[i].Version
				return r
			}
		}
	}
	return r
}

// Delete removes key, returning whether it was present.
func (t *Table) Delete(key uint64) bool {
	home := t.home(key)
	for d := 0; d < t.h; d++ {
		s := &t.slots[t.idx(home, d)]
		if s.occupied && s.entry.Key == key {
			*s = slot{}
			t.count--
			return true
		}
	}
	chain := t.overflow[home]
	for i := range chain {
		if chain[i].Key == key {
			t.overflow[home] = append(chain[:i], chain[i+1:]...)
			if len(t.overflow[home]) == 0 {
				delete(t.overflow, home)
			}
			t.count--
			t.ovCount--
			return true
		}
	}
	return false
}

// CheckInvariants verifies every main-table resident lies within H of its
// home.
func (t *Table) CheckInvariants() error {
	n := 0
	for i := range t.slots {
		s := &t.slots[i]
		if !s.occupied {
			continue
		}
		n++
		want := t.home(s.entry.Key)
		if s.home != want {
			return fmt.Errorf("slot %d: stored home %d != actual %d", i, s.home, want)
		}
		d := (i - s.home) & int(t.mask)
		if d >= t.h {
			return fmt.Errorf("slot %d: key %d at distance %d >= H=%d", i, s.entry.Key, d, t.h)
		}
	}
	for home, chain := range t.overflow {
		n += len(chain)
		for _, e := range chain {
			if t.home(e.Key) != home {
				return fmt.Errorf("overflow key %d in bucket %d, home %d", e.Key, home, t.home(e.Key))
			}
		}
	}
	if n != t.count {
		return fmt.Errorf("count %d != resident %d", t.count, n)
	}
	return nil
}
