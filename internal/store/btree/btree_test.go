package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestInsertGet(t *testing.T) {
	tr := New()
	for k := uint64(0); k < 5000; k++ {
		tr.Insert(k*7919%5000, []byte{byte(k)}, k)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 5000; k++ {
		if _, ok := tr.Get(k); !ok {
			t.Fatalf("missing key %d", k)
		}
	}
	if _, ok := tr.Get(99999); ok {
		t.Fatal("found absent key")
	}
}

func TestInsertReplaces(t *testing.T) {
	tr := New()
	tr.Insert(5, []byte("a"), 1)
	tr.Insert(5, []byte("b"), 2)
	if tr.Len() != 1 {
		t.Fatalf("len = %d", tr.Len())
	}
	it, ok := tr.Get(5)
	if !ok || string(it.Value) != "b" || it.Version != 2 {
		t.Fatalf("%+v", it)
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(1))
	keys := map[uint64]bool{}
	for i := 0; i < 3000; i++ {
		k := uint64(rng.Intn(10000))
		tr.Insert(k, []byte("v"), 1)
		keys[k] = true
	}
	for k := range keys {
		if !tr.Delete(k) {
			t.Fatalf("delete %d failed", k)
		}
		delete(keys, k)
		if len(keys)%500 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("len = %d after deleting all", tr.Len())
	}
	if tr.Delete(42) {
		t.Fatal("deleted absent key")
	}
}

func TestAscendRange(t *testing.T) {
	tr := New()
	for k := uint64(0); k < 1000; k += 2 {
		tr.Insert(k, []byte("v"), k)
	}
	var got []uint64
	tr.AscendRange(100, 120, func(it Item) bool {
		got = append(got, it.Key)
		return true
	})
	want := []uint64{100, 102, 104, 106, 108, 110, 112, 114, 116, 118}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// Early stop.
	n := 0
	tr.AscendRange(0, 1000, func(it Item) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d", n)
	}
	// Empty range.
	n = 0
	tr.AscendRange(500, 500, func(Item) bool { n++; return true })
	if n != 0 {
		t.Fatal("empty range visited items")
	}
}

func TestOrderedIterationMatchesSort(t *testing.T) {
	f := func(keys []uint64) bool {
		tr := New()
		uniq := map[uint64]bool{}
		for _, k := range keys {
			tr.Insert(k, []byte("v"), 1)
			uniq[k] = true
		}
		if tr.CheckInvariants() != nil {
			return false
		}
		var want []uint64
		for k := range uniq {
			want = append(want, k)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		var got []uint64
		tr.AscendRange(0, ^uint64(0), func(it Item) bool {
			got = append(got, it.Key)
			return true
		})
		// ^uint64(0) as hi excludes MaxUint64 itself; add it back if present.
		if uniq[^uint64(0)] {
			got = append(got, ^uint64(0))
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMapModelEquivalence(t *testing.T) {
	f := func(ops []uint16) bool {
		tr := New()
		model := map[uint64]uint64{}
		v := uint64(0)
		for _, op := range ops {
			k := uint64(op % 211)
			if op%4 == 0 {
				_, in := model[k]
				if tr.Delete(k) != in {
					return false
				}
				delete(model, k)
			} else {
				v++
				tr.Insert(k, []byte{byte(v)}, v)
				model[k] = v
			}
		}
		if tr.CheckInvariants() != nil || tr.Len() != len(model) {
			return false
		}
		for k, ver := range model {
			it, ok := tr.Get(k)
			if !ok || it.Version != ver {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInsert(b *testing.B) {
	tr := New()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < b.N; i++ {
		tr.Insert(rng.Uint64(), []byte("order-line-payload"), uint64(i))
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New()
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 100000)
	for i := range keys {
		keys[i] = rng.Uint64()
		tr.Insert(keys[i], []byte("v"), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(keys[i%len(keys)])
	}
}
