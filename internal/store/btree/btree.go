// Package btree implements the B+tree used for TPC-C's coordinator-local
// tables (§5.2: "the others are B+ trees local to their respective
// coordinators; all tables are replicated"). Values carry version numbers
// like the hash store so the same OCC validation and log-replication
// machinery applies to both.
package btree

import "fmt"

// degree is the maximum children per interior node; leaves hold up to
// degree-1 items.
const degree = 32

// Item is one stored object.
type Item struct {
	Key     uint64
	Version uint64
	Value   []byte
}

type node struct {
	leaf     bool
	items    []Item  // keys (leaf: full items; interior: separators only use Key)
	children []*node // len(items)+1 when interior
}

// Tree is a single-writer B+tree mapping uint64 keys to versioned values.
type Tree struct {
	root  *node
	count int
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{leaf: true}}
}

// Len reports the number of stored keys.
func (t *Tree) Len() int { return t.count }

// search returns the index of the first item >= key.
func search(items []Item, key uint64) (int, bool) {
	lo, hi := 0, len(items)
	for lo < hi {
		mid := (lo + hi) / 2
		if items[mid].Key < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(items) && items[lo].Key == key
}

// Get returns the item stored under key.
func (t *Tree) Get(key uint64) (Item, bool) {
	n := t.root
	for {
		i, eq := search(n.items, key)
		if n.leaf {
			if eq {
				return n.items[i], true
			}
			return Item{}, false
		}
		if eq {
			i++
		}
		n = n.children[i]
	}
}

// Insert stores value/version under key, replacing any existing entry.
func (t *Tree) Insert(key uint64, value []byte, version uint64) {
	it := Item{Key: key, Version: version, Value: append([]byte(nil), value...)}
	if added := t.insert(t.root, it); added {
		t.count++
	}
	if len(t.root.items) >= 2*degree-1 {
		old := t.root
		t.root = &node{children: []*node{old}}
		t.split(t.root, 0)
	}
}

func (t *Tree) insert(n *node, it Item) bool {
	i, eq := search(n.items, it.Key)
	if n.leaf {
		if eq {
			n.items[i] = it
			return false
		}
		n.items = append(n.items, Item{})
		copy(n.items[i+1:], n.items[i:])
		n.items[i] = it
		return true
	}
	if eq {
		i++
	}
	child := n.children[i]
	if len(child.items) >= 2*degree-1 {
		t.split(n, i)
		if it.Key > n.items[i].Key {
			i++
		} else if it.Key == n.items[i].Key && child.leaf {
			// Separator equals the key: it lives in the right child's leaf.
			i++
		}
	}
	return t.insert(n.children[i], it)
}

// split divides the full child at index i of parent n.
func (t *Tree) split(n *node, i int) {
	child := n.children[i]
	mid := len(child.items) / 2
	var sep Item
	right := &node{leaf: child.leaf}
	if child.leaf {
		// B+tree: separator is a copy of the first right key; items stay
		// in leaves.
		right.items = append(right.items, child.items[mid:]...)
		child.items = child.items[:mid]
		sep = Item{Key: right.items[0].Key}
	} else {
		sep = Item{Key: child.items[mid].Key}
		right.items = append(right.items, child.items[mid+1:]...)
		right.children = append(right.children, child.children[mid+1:]...)
		child.items = child.items[:mid]
		child.children = child.children[:mid+1]
	}
	n.items = append(n.items, Item{})
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = sep
	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

// Delete removes key, returning whether it was present. Underflowed nodes
// are left in place (lazy deletion), which keeps the structure valid for
// the workloads here (TPC-C only grows its local tables).
func (t *Tree) Delete(key uint64) bool {
	n := t.root
	for {
		i, eq := search(n.items, key)
		if n.leaf {
			if !eq {
				return false
			}
			n.items = append(n.items[:i], n.items[i+1:]...)
			t.count--
			return true
		}
		if eq {
			i++
		}
		n = n.children[i]
	}
}

// AscendRange calls fn for every item with lo <= key < hi, in order, until
// fn returns false.
func (t *Tree) AscendRange(lo, hi uint64, fn func(Item) bool) {
	t.ascend(t.root, lo, hi, fn)
}

func (t *Tree) ascend(n *node, lo, hi uint64, fn func(Item) bool) bool {
	i, _ := search(n.items, lo)
	if n.leaf {
		for ; i < len(n.items); i++ {
			if n.items[i].Key >= hi {
				return false
			}
			if !fn(n.items[i]) {
				return false
			}
		}
		return true
	}
	for ; i <= len(n.items); i++ {
		if !t.ascend(n.children[i], lo, hi, fn) {
			return false
		}
		if i < len(n.items) && n.items[i].Key >= hi {
			return false
		}
	}
	return true
}

// CheckInvariants validates ordering and structure.
func (t *Tree) CheckInvariants() error {
	n, err := check(t.root, 0, ^uint64(0))
	if err != nil {
		return err
	}
	if n != t.count {
		return fmt.Errorf("btree: count %d != resident %d", t.count, n)
	}
	return nil
}

func check(n *node, lo, hi uint64) (int, error) {
	for i := 1; i < len(n.items); i++ {
		if n.items[i-1].Key >= n.items[i].Key {
			return 0, fmt.Errorf("btree: unordered items at %d", i)
		}
	}
	for _, it := range n.items {
		if it.Key < lo || it.Key > hi {
			return 0, fmt.Errorf("btree: key %d outside [%d,%d]", it.Key, lo, hi)
		}
	}
	if n.leaf {
		return len(n.items), nil
	}
	if len(n.children) != len(n.items)+1 {
		return 0, fmt.Errorf("btree: %d children for %d items", len(n.children), len(n.items))
	}
	total := 0
	for i, c := range n.children {
		clo, chi := lo, hi
		if i > 0 {
			clo = n.items[i-1].Key
		}
		if i < len(n.items) {
			chi = n.items[i].Key
		}
		cnt, err := check(c, clo, chi)
		if err != nil {
			return 0, err
		}
		total += cnt
	}
	return total, nil
}
