package harness

import (
	"fmt"

	"xenic/internal/sim"
	"xenic/internal/telemetry"
)

// TelemetryCollector accumulates one telemetry series set per measured
// cluster. Attach one via Options.Telemetry to have every figure/table cell
// record time-resolved series; cmd/xenic-bench -telemetry exports the union
// as CSV/JSON plus a single-file HTML dashboard. Like StatsCollector, a
// collector is not safe for concurrent use: parallel cells each record into
// a private collector that the pool merges in cell order, so results are
// identical at every worker count.
type TelemetryCollector struct {
	// Interval is the sampling cadence handed to every sampler this
	// collector creates (telemetry.DefaultInterval when zero).
	Interval sim.Time
	Sets     map[string]*telemetry.Set
	labels   []string
	keys     []string
}

// NewTelemetryCollector returns an empty collector sampling every interval.
func NewTelemetryCollector(interval sim.Time) *TelemetryCollector {
	return &TelemetryCollector{Interval: interval, Sets: map[string]*telemetry.Set{}}
}

// Sampler returns a fresh sampler for one cell, to be attached at
// construction time via xenic.WithTelemetry and retired with the matching
// Done call. A nil collector returns a nil sampler; WithTelemetry(nil) and
// Done(label, nil) are both no-ops, so runners call the pair
// unconditionally.
func (c *TelemetryCollector) Sampler() *telemetry.Sampler {
	if c == nil {
		return nil
	}
	return telemetry.New(c.Interval)
}

// Done stops s and stores its exported set under label, suffixing "#N" on
// duplicates (mirroring StatsCollector). Call it as soon as the measured
// window ends — before any Drain — so series cover only the run.
func (c *TelemetryCollector) Done(label string, s *telemetry.Sampler) {
	if c == nil || s == nil {
		return
	}
	s.Stop()
	c.add(label, s.Set())
}

func (c *TelemetryCollector) add(label string, set *telemetry.Set) {
	key := label
	for i := 2; ; i++ {
		if _, dup := c.Sets[key]; !dup {
			break
		}
		key = fmt.Sprintf("%s#%d", label, i)
	}
	c.Sets[key] = set
	c.labels = append(c.labels, label)
	c.keys = append(c.keys, key)
}

// merge appends every set of sub, in sub's insertion order, re-running
// duplicate-label resolution against c's contents.
func (c *TelemetryCollector) merge(sub *TelemetryCollector) {
	if c == nil || sub == nil {
		return
	}
	for i, label := range sub.labels {
		c.add(label, sub.Sets[sub.keys[i]])
	}
}

// Verdicts runs the bottleneck analyzer over every collected set, keyed
// like Sets. Nil collector returns nil.
func (c *TelemetryCollector) Verdicts() map[string]*telemetry.Verdict {
	if c == nil {
		return nil
	}
	out := make(map[string]*telemetry.Verdict, len(c.Sets))
	for _, k := range c.keys {
		v := telemetry.Analyze(c.Sets[k])
		out[k] = &v
	}
	return out
}

// finishTelemetry attaches per-cell bottleneck verdicts to r when telemetry
// was collected. Runners call it once, after their cells finish.
func finishTelemetry(r *Report, opt Options) {
	c := opt.Telemetry
	if c == nil {
		return
	}
	r.Bottlenecks = map[string]telemetry.Verdict{}
	for _, k := range c.keys {
		r.Bottlenecks[k] = telemetry.Analyze(c.Sets[k])
	}
}
