package harness

import (
	"fmt"

	"xenic"
	"xenic/internal/core"
	"xenic/internal/sim"
	"xenic/internal/txnmodel"
	"xenic/internal/workload/smallbank"
	"xenic/internal/workload/tpcc"
)

// The contention experiment measures the DESIGN.md §14 claim: under Zipfian
// skew the OCC protocol burns throughput on hot-key aborts, and the NIC-side
// conflict scheduler wins it back by serializing hot-key conflicters behind
// the current owner instead of letting them race, abort, back off, and
// retry. Each cell pair runs the identical workload and seed with the
// scheduler off then on; skew rises across cells so the abort-rate delta is
// visible from "barely contended" to "hammered".

func init() {
	register(&Experiment{
		ID:       "contention",
		Title:    "conflict scheduling: Zipf-skew sweep, hash dispatch vs conflict-aware NIC scheduler",
		PaperRef: "DESIGN.md §14: batch, predict conflicts from declared r/w sets, serialize hot-key conflicters",
		Run:      runContentionSweep,
	})
}

func runContentionSweep(opt Options) *Report {
	warm, win := 2*sim.Millisecond, 8*sim.Millisecond
	if opt.Quick {
		warm, win = 1*sim.Millisecond, 3*sim.Millisecond
	}

	// Skew rises within each workload group; the A/B acceptance gate below
	// is evaluated on the last (highest-skew) cell of each group.
	type cellDef struct {
		workload string
		skew     string
		gen      func() txnmodel.Generator
		// fullWin forces the full-scale window even under -quick: TPC-C
		// commits ~10k txns/s/server, so a 3ms quick window sees ~30
		// commits per server and the A/B delta drowns in sampling noise.
		// The cells are cheap to simulate (low event rate), so they keep
		// the 8ms window unconditionally.
		fullWin bool
	}
	smallbankDef := func(hotFrac, hotProb float64) cellDef {
		return cellDef{"smallbank", fmt.Sprintf("hot %.1f%%@%.0f%%", 100*hotFrac, 100*hotProb),
			func() txnmodel.Generator {
				g := smallbank.New()
				// 1000 accounts/server keep the hot set resident and hot; the
				// sweep shrinks it while raising the probability mass on it.
				g.AccountsPerServer = 1000
				g.HotFrac, g.HotProb = hotFrac, hotProb
				return g
			}, false}
	}
	tpccDef := func(warehouses int) cellDef {
		return cellDef{"tpcc", fmt.Sprintf("wh/server=%d", warehouses),
			func() txnmodel.Generator {
				// TPC-C contention concentrates on the per-district next-order
				// rows; fewer warehouses per server = hotter districts.
				g := tpcc.New()
				g.WarehousesPerServer = warehouses
				return g
			}, true}
	}
	defs := []cellDef{
		smallbankDef(0.04, 0.90), // the paper's mix
		smallbankDef(0.01, 0.95),
		smallbankDef(0.005, 0.99), // gate cell
		tpccDef(4),
		tpccDef(1), // gate cell
	}

	type cellRes struct {
		res   Result
		sched core.SchedStats
	}
	// Cells interleave off/on per definition: cell 2i is scheduler off,
	// 2i+1 on, so -j runs pair the identical workload at any worker count.
	results := runCells(opt, 2*len(defs), func(i int, o Options) cellRes {
		d := defs[i/2]
		cfg := core.DefaultConfig()
		cfg.Nodes = 4
		cfg.Replication = 3
		cfg.AppThreads, cfg.WorkerThreads, cfg.NICCores = 2, 3, 8
		cfg.Outstanding = 16
		cfg.Seed = o.Seed
		cfg.Sched = i%2 == 1
		if cfg.Sched && o.Sched != nil {
			cfg.SchedBatchUs = o.Sched.BatchUs
			cfg.SchedHotK = o.Sched.HotK
		}
		tel := o.Telemetry.Sampler()
		cl, err := xenic.NewCluster(cfg, d.gen(), xenic.WithTelemetry(tel))
		if err != nil {
			panic(err)
		}
		cw, cv := warm, win
		if d.fullWin {
			cw, cv = 2*sim.Millisecond, 8*sim.Millisecond
		}
		res := cl.Measure(cw, cv)
		label := fmt.Sprintf("contention/%s-%s-%s", d.workload, d.skew, onOff(cfg.Sched))
		o.Stats.Snap(label, cl.RegisterMetrics)
		o.Telemetry.Done(label, tel)
		return cellRes{res: res, sched: cl.SchedStats()}
	})

	r := &Report{ID: "contention",
		Title:  "Zipf-skew sweep: static hash dispatch vs conflict-aware NIC scheduler",
		Header: []string{"workload", "skew", "sched", "tput/server", "aborts", "abort-rate", "parked", "shed", "goodput"}}

	abortRate := func(res Result) float64 {
		tot := res.Committed + res.Aborts
		if tot == 0 {
			return 0
		}
		return float64(res.Aborts) / float64(tot)
	}
	gatePass := true
	gateCells := map[int]bool{2: true, 4: true} // highest-skew def per workload
	for i, d := range defs {
		off, on := results[2*i], results[2*i+1]
		gain := 0.0
		if off.res.PerServerTput > 0 {
			gain = on.res.PerServerTput / off.res.PerServerTput
		}
		offRate, onRate := abortRate(off.res), abortRate(on.res)
		r.AddCells(Text(d.workload), Text(d.skew), Text("off"),
			Tput(off.res.PerServerTput), Count(int(off.res.Aborts)),
			Num(offRate, fmt.Sprintf("%.1f%%", 100*offRate)),
			Text("-"), Text("-"), Text("1.00x"))
		r.AddCells(Text(d.workload), Text(d.skew), Text("on"),
			Tput(on.res.PerServerTput), Count(int(on.res.Aborts)),
			Num(onRate, fmt.Sprintf("%.1f%%", 100*onRate)),
			Count(int(on.sched.Parked)), Count(int(on.sched.Shed)),
			Num(gain, fmt.Sprintf("%.2fx", gain)))
		if gateCells[i] && (onRate >= offRate || gain < 1.0) {
			gatePass = false
		}
	}
	if gatePass {
		r.AddNote("A/B gate (highest-skew cell per workload): PASS - scheduler-on abort rate strictly lower, goodput >= off")
	} else {
		r.AddNote("A/B gate (highest-skew cell per workload): FAIL - see abort-rate / goodput columns")
	}
	r.AddNote("scheduler-off cells use the legacy hash dispatch byte-for-byte (pinned against the closed-loop goldens)")
	r.AddNote("parked = transactions serialized behind a hot-key owner instead of racing; shed = parked past the deadline and retried (counts in aborts as sched=)")
	finishTelemetry(r, opt)
	return r
}
