package harness

import (
	"fmt"

	"xenic/internal/baseline"
	"xenic/internal/core"
	"xenic/internal/cpubench"
	"xenic/internal/metrics"
	"xenic/internal/sim"
)

// This file regenerates Table 3 (§5.6): the minimum number of threads each
// system needs to stay within 95% of its peak throughput, with NIC threads
// normalized by the Coremark ratio.

func init() {
	register(&Experiment{
		ID:       "table3",
		Title:    "Minimum threads at 95% of peak throughput (Coremark-normalized)",
		PaperRef: "Table 3: Xenic 21.7/9.9/9.9 vs DrTM+H 24/18/20, FaSST 32/24/28",
		Run:      runTable3,
	})
}

func runTable3(opt Options) *Report {
	warm, win := 2*sim.Millisecond, 6*sim.Millisecond
	if opt.Quick {
		warm, win = 1*sim.Millisecond, 2*sim.Millisecond
	}
	benches := []string{"fig8a", "fig8c", "fig8d"}
	names := map[string]string{"fig8a": "TPC-C NO", "fig8c": "Retwis", "fig8d": "Smallbank"}
	paper := map[string]string{
		"fig8a": "Xenic 21.7 (18,12) | DrTM+H 24 | FaSST 32",
		"fig8c": "Xenic 9.9 (5,16) | DrTM+H 18 | FaSST 24",
		"fig8d": "Xenic 9.9 (5,16) | DrTM+H 20 | FaSST 28",
	}

	r := &Report{ID: "table3", Title: "Normalized thread counts at 95% of peak",
		Header: []string{"benchmark", "Xenic norm (host,NIC)", "DrTM+H", "FaSST", "paper"}}
	ratio := cpubench.CoremarkRatio()

	// Each benchmark contributes three pool cells — the Xenic host/NIC
	// shrink and the two baseline shrinks — which are independent searches.
	// Within a cell the shrink stays sequential: every measurement depends
	// on the previous minimum.
	type search struct {
		host, nic int // Xenic cells
		min       int // baseline cells
	}
	cells := runCells(opt, len(benches)*3, func(ci int, o Options) search {
		id := benches[ci/3]
		s := setupFor(id)
		// Constant offered load per node across thread counts, so the
		// search finds the CPU-bound point rather than the load the
		// removed threads were generating.
		const nodeWindow = 128

		if ci%3 == 0 {
			// Xenic: measure peak at generous resourcing, then shrink host
			// threads and NIC cores independently.
			measure := func(host, nic int) float64 {
				app, workers := splitHost(id, host)
				cfg := core.DefaultConfig()
				cfg.AppThreads, cfg.WorkerThreads, cfg.NICCores = app, workers, nic
				cfg.Outstanding = perThread(nodeWindow, app)
				cfg.Seed = o.Seed
				cl, err := core.New(cfg, s.gen(o.Quick))
				if err != nil {
					panic(err)
				}
				res := cl.Measure(warm, win)
				o.Stats.Snap(fmt.Sprintf("table3/%s/xenic/h%d-n%d", names[id], host, nic), cl.RegisterMetrics)
				return res.PerServerTput
			}
			maxHost, maxNIC := 24, 24
			if o.Quick {
				maxHost, maxNIC = 12, 12
			}
			peak := measure(maxHost, maxNIC)
			hostMin := shrink(maxHost, peak, func(h int) float64 { return measure(h, maxNIC) })
			nicMin := shrink(maxNIC, peak, func(n int) float64 { return measure(hostMin, n) })
			return search{host: hostMin, nic: nicMin}
		}

		// Baselines: shrink the symmetric host thread count.
		sys := baseline.DrTMH
		if ci%3 == 2 {
			sys = baseline.FaSST
		}
		measureB := func(th int) float64 {
			cfg := baseline.DefaultConfig(sys)
			cfg.Threads = th
			cfg.Outstanding = perThread(nodeWindow, th)
			cfg.Seed = o.Seed
			cl, err := baseline.New(cfg, s.gen(o.Quick))
			if err != nil {
				panic(err)
			}
			res := cl.Measure(warm, win)
			o.Stats.Snap(fmt.Sprintf("table3/%s/%s/t%d", names[id], sys, th), cl.RegisterMetrics)
			return res.PerServerTput
		}
		maxTh := 32
		if o.Quick {
			maxTh = 12
		}
		return search{min: shrink(maxTh, measureB(maxTh), measureB)}
	})

	for bi, id := range benches {
		x := cells[bi*3]
		norm := metrics.NormalizedThreads(x.host, x.nic, ratio)
		r.AddCells(Text(names[id]),
			Num(norm, fmt.Sprintf("%.1f (%d,%d)", norm, x.host, x.nic)),
			Count(cells[bi*3+1].min), Count(cells[bi*3+2].min), Text(paper[id]))
	}
	r.AddNote("NIC threads weighted by the %.2fx Coremark ratio (§5.6)", ratio)
	return r
}

// splitHost divides a host-thread budget between application and worker
// threads: TPC-C is application-heavy (B+tree work), the KV workloads are
// worker-heavy.
func splitHost(id string, total int) (app, workers int) {
	frac := 0.4
	if id == "fig8a" || id == "fig8b" {
		frac = 0.66
	}
	app = int(float64(total)*frac + 0.5)
	if app < 1 {
		app = 1
	}
	workers = total - app
	if workers < 1 {
		workers = 1
		if app > 1 {
			app = total - 1
		}
	}
	return
}

// shrink halves-then-refines the resource count, returning the smallest
// value whose throughput stays within 95% of peak.
func shrink(max int, peak float64, measure func(int) float64) int {
	if peak <= 0 {
		return max
	}
	best := max
	for c := max - 2; c >= 1; c -= 2 {
		if measure(c) >= 0.95*peak {
			best = c
		} else {
			break
		}
	}
	return best
}
