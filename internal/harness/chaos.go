package harness

import (
	"fmt"

	"xenic"
	"xenic/internal/core"
	"xenic/internal/fault"
	"xenic/internal/sim"
	"xenic/internal/workload/smallbank"
)

// chaos runs a batch of seeded random fault plans against small Xenic
// clusters and checks the correctness invariants after each: store/index
// structural invariants and replica consistency once the cluster drains.
// It is a correctness sweep, not a benchmark — fault runs do not model any
// hardware the paper measured, so their throughput is meaningless.

func init() {
	register(&Experiment{
		ID:       "chaos",
		Title:    "Seeded fault plans vs OCC and recovery invariants",
		PaperRef: "DESIGN.md §8: fault injection vs the §4 correctness invariants",
		Run:      runChaos,
	})
}

func runChaos(opt Options) *Report {
	const nodes = 4
	plans := 10
	runFor := 4 * sim.Millisecond
	if opt.Quick {
		plans = 3
	}
	r := &Report{ID: "chaos", Title: fmt.Sprintf("%d random fault plans, %d-node clusters", plans, nodes),
		Header: []string{"plan", "faults", "committed", "aborts", "drops", "drained", "result"}}

	type outcome struct {
		plan                     *fault.Plan
		committed, aborts, drops int64
		drained                  bool
		err                      error
	}
	// Cells 0..plans-1 are the sweep; the last two are the determinism
	// spot-check pair (the first plan re-run twice with the same seed).
	outcomes := runCells(opt, plans+2, func(i int, o Options) outcome {
		seed := o.Seed
		if i < plans {
			seed += int64(i)
		}
		plan := fault.RandomPlan(seed, nodes)
		var out outcome
		out.plan = plan
		out.committed, out.aborts, out.drops, out.drained, out.err =
			chaosRun(seed, plan, runFor, o.Telemetry, fmt.Sprintf("chaos/plan%d", i))
		return out
	})

	fails := 0
	for i := 0; i < plans; i++ {
		out := outcomes[i]
		verdict := "ok"
		if out.err != nil {
			fails++
			verdict = out.err.Error()
		}
		r.AddRow(fmt.Sprintf("%d", i), out.plan.String(),
			fmt.Sprintf("%d", out.committed), fmt.Sprintf("%d", out.aborts),
			fmt.Sprintf("%d", out.drops), fmt.Sprintf("%v", out.drained), verdict)
	}

	// Determinism spot check: the first plan, re-run with the same seed,
	// must reproduce identical outcome counters.
	c1, a1, d1 := outcomes[plans].committed, outcomes[plans].aborts, outcomes[plans].drops
	c2, a2, d2 := outcomes[plans+1].committed, outcomes[plans+1].aborts, outcomes[plans+1].drops
	if c1 != c2 || a1 != a2 || d1 != d2 {
		fails++
		r.AddNote("DETERMINISM VIOLATION: plan 0 re-run diverged (%d/%d/%d vs %d/%d/%d)",
			c1, a1, d1, c2, a2, d2)
	} else {
		r.AddNote("plan 0 re-run reproduced identical counters (committed/aborts/drops)")
	}

	if fails == 0 {
		r.AddNote("all %d plans drained with invariants and replica consistency intact", plans)
	} else {
		r.AddNote("FAILURES: %d plan(s) violated invariants", fails)
	}
	r.AddNote("chaos runs check correctness only; fault-mode throughput is not comparable to the paper's numbers")
	finishTelemetry(r, opt)
	return r
}

// chaosRun executes one fault plan on a fresh cluster and verifies the
// post-drain invariants. With a telemetry collector attached, the run's
// series land under label.
func chaosRun(seed int64, plan *fault.Plan, runFor sim.Time, telc *TelemetryCollector, label string) (committed, aborts, drops int64, drained bool, err error) {
	g := smallbank.New()
	g.AccountsPerServer = 2000
	cfg := core.DefaultConfig()
	cfg.Nodes = 4
	cfg.Replication = 3
	cfg.AppThreads, cfg.WorkerThreads, cfg.NICCores = 2, 2, 4
	cfg.Outstanding = 8
	cfg.Seed = seed
	cfg.Faults = plan
	tel := telc.Sampler()
	cl, err := xenic.NewCluster(cfg, g, xenic.WithTelemetry(tel))
	if err != nil {
		return 0, 0, 0, false, err
	}
	cl.Start()
	cl.Run(runFor)
	telc.Done(label, tel)
	drained = cl.Drain(50 * sim.Millisecond)
	for i := 0; i < cl.Nodes(); i++ {
		s := cl.Node(i).Stats()
		committed += s.Committed
		aborts += s.Aborts
	}
	if inj := cl.Injector(); inj != nil {
		drops = inj.Drops + inj.PartDrops
	}
	if !drained {
		return committed, aborts, drops, drained, fmt.Errorf("did not drain")
	}
	if err := cl.CheckInvariants(); err != nil {
		return committed, aborts, drops, drained, err
	}
	if err := cl.ReplicasConsistent(); err != nil {
		return committed, aborts, drops, drained, err
	}
	return committed, aborts, drops, drained, nil
}
