package harness

import (
	"fmt"

	"xenic/internal/hostrt"
	"xenic/internal/metrics"
	"xenic/internal/model"
	"xenic/internal/nicrt"
	"xenic/internal/pcie"
	"xenic/internal/rdma"
	"xenic/internal/sim"
	"xenic/internal/simnet"
	"xenic/internal/wire"
)

// This file regenerates the §3 characterization: Figure 2 (roundtrip
// latencies), Figure 3 (remote write throughput with and without batching),
// and Figure 4 (DMA engine throughput and latency).

func init() {
	register(&Experiment{
		ID:       "fig2",
		Title:    "Roundtrip latency of remote operations (256B)",
		PaperRef: "Figure 2: RDMA ~3.5us; NIC-sourced LiquidIO ops beat two-sided RDMA RPC",
		Run:      runFig2,
	})
	register(&Experiment{
		ID:       "fig3",
		Title:    "Remote write throughput vs buffer size, batched and single",
		PaperRef: "Figure 3: batching gains up to 22.2x (NIC DRAM) / 7.0x (host DRAM); CX5 13.5-15Mops",
		Run:      runFig3,
	})
	register(&Experiment{
		ID:       "fig4",
		Title:    "DMA engine throughput and latency, single vs 15-element vectors",
		PaperRef: "Figure 4: vectored submission reaches the 8.7Mops/s engine cap; completion <=1295ns",
		Run:      runFig4,
	})
}

// lioOp is a Figure 2a operation type, encoded in the request TxnID.
type lioOp uint64

const (
	opNICRPC lioOp = iota
	opDMARead
	opDMAWrite
	opHostRPC
)

// lioRTT measures the median roundtrip for one LiquidIO operation type,
// sourced from the host or the NIC.
func lioRTT(op lioOp, fromNIC bool, iters int, seed int64) sim.Time {
	eng := sim.NewEngine(seed)
	p := model.Default()
	nw := simnet.New(eng, p, 2)
	src := nicrt.New(eng, p, nw, 0, 2, seed, nicrt.AllFeatures())
	dst := nicrt.New(eng, p, nw, 1, 2, seed, nicrt.AllFeatures())
	srcHost := hostrt.New(eng, p, 0, 1, seed)
	dstHost := hostrt.New(eng, p, 1, 1, seed)

	payload := make([]byte, 256)
	req := func(seq uint64) wire.Msg {
		return &wire.Commit{Header: wire.Header{TxnID: uint64(op)<<32 | seq, Src: 0},
			Writes: []wire.KV{{Key: 1, Value: payload}}}
	}
	// Target-side handling per op type. Host-RPC replies arriving back
	// from the target host are forwarded onto the wire.
	dst.OnMessage(func(c *nicrt.Core, from int, m wire.Msg) {
		if resp, ok := m.(*wire.CommitResp); ok {
			c.Send(0, resp)
			return
		}
		cm := m.(*wire.Commit)
		reply := func() {
			resp := &wire.CommitResp{Header: wire.Header{TxnID: cm.TxnID, Src: 1}}
			c.Send(from, resp)
		}
		switch lioOp(cm.TxnID >> 32) {
		case opNICRPC:
			c.Charge(60 * sim.Nanosecond) // NOP handler
			reply()
		case opDMARead:
			c.DMARead([]int{256}, reply)
		case opDMAWrite:
			c.DMAWrite([]int{256}, reply)
		case opHostRPC:
			c.SendHost(cm)
		}
	})
	dst.OnHostDeliver(func(ms []wire.Msg) { dstHost.Deliver(1, ms) })
	dstHost.OnMessage(func(t *hostrt.Thread, from int, m wire.Msg) {
		t.Charge(p.HostRPCHandle)
		t.Send(&wire.CommitResp{Header: wire.Header{TxnID: m.(*wire.Commit).TxnID, Src: 1}})
	})
	dstHost.OnIdle(func(t *hostrt.Thread) bool { return false })
	dstHost.OnTransmit(func(t *hostrt.Thread, ms []wire.Msg) {
		t.At(p.HostToNIC, func() { dst.FromHost(ms) })
	})
	hist := metrics.NewHistogram()
	var start sim.Time
	done := 0
	var issue func()

	if fromNIC {
		srcHost.OnMessage(func(t *hostrt.Thread, from int, m wire.Msg) {})
		srcHost.OnIdle(func(t *hostrt.Thread) bool { return false })
		srcHost.OnTransmit(func(t *hostrt.Thread, ms []wire.Msg) {})
		src.OnHostDeliver(func(ms []wire.Msg) {})
		src.OnMessage(func(c *nicrt.Core, from int, m wire.Msg) {
			if _, ok := m.(*wire.CommitResp); !ok {
				return
			}
			hist.Record(c.Now() - start)
			done++
			if done < iters {
				issue()
			}
		})
		issue = func() {
			src.Inject(0, func(c *nicrt.Core) {
				start = c.Now()
				c.Send(1, req(uint64(done)))
			})
		}
	} else {
		// Host-sourced: the source NIC forwards between its host and the
		// wire.
		src.OnHostDeliver(func(ms []wire.Msg) { srcHost.Deliver(0, ms) })
		src.OnMessage(func(c *nicrt.Core, from int, m wire.Msg) {
			switch m.(type) {
			case *wire.Commit:
				c.Send(1, m) // outbound from host
			case *wire.CommitResp:
				c.SendHost(m)
			}
		})
		srcHost.OnTransmit(func(t *hostrt.Thread, ms []wire.Msg) {
			t.At(p.HostToNIC, func() { src.FromHost(ms) })
		})
		srcHost.OnMessage(func(t *hostrt.Thread, from int, m wire.Msg) {
			if _, ok := m.(*wire.CommitResp); !ok {
				return
			}
			hist.Record(t.Now() - start)
			done++
			if done < iters {
				issue()
			}
		})
		srcHost.OnIdle(func(t *hostrt.Thread) bool { return false })
		th := srcHost.Thread(0)
		issue = func() {
			start = th.Now()
			th.Send(req(uint64(done)))
			th.Wake()
		}
	}
	eng.Defer(issue)
	eng.Run(sim.Second)
	return hist.Median()
}

func runFig2(opt Options) *Report {
	iters := 200
	if opt.Quick {
		iters = 50
	}
	r := &Report{ID: "fig2", Title: "Roundtrip latency, 256B payloads",
		Header: []string{"device", "operation", "from host", "from NIC"}}

	ops := []struct {
		name string
		op   lioOp
	}{
		{"NIC RPC", opNICRPC},
		{"Read", opDMARead},
		{"Write", opDMAWrite},
		{"Host RPC", opHostRPC},
	}
	// Eight LiquidIO cells (four ops x host/NIC source) plus the three CX5
	// modes, as one flat pool.
	lats := runCells(opt, 2*len(ops)+3, func(i int, o Options) sim.Time {
		if i < 2*len(ops) {
			return lioRTT(ops[i/2].op, i%2 == 1, iters, o.Seed)
		}
		return cx5RTT(i-2*len(ops), iters, o.Seed)
	})
	for i, o := range ops {
		r.AddCells(Text("LiquidIO"), Text(o.name), Micros(lats[2*i]), Micros(lats[2*i+1]))
	}
	read, write, rpc := lats[2*len(ops)], lats[2*len(ops)+1], lats[2*len(ops)+2]
	r.AddCells(Text("CX5"), Text("READ"), Micros(read), Text("n/a"))
	r.AddCells(Text("CX5"), Text("WRITE"), Micros(write), Text("n/a"))
	r.AddCells(Text("CX5"), Text("Host RPC"), Micros(rpc), Text("n/a"))
	r.AddNote("paper: CX5 WRITE ~3.5us median; LiquidIO NIC-sourced ops beat two-sided RDMA RPCs (§3.2)")
	return r
}

// cx5RTT measures one RDMA roundtrip mode: 0 = READ, 1 = WRITE, 2 =
// two-sided RPC.
func cx5RTT(mode, iters int, seed int64) sim.Time {
	eng := sim.NewEngine(seed)
	p := model.Default()
	nw := simnet.New(eng, p, 2)
	h0 := hostrt.New(eng, p, 0, 1, seed)
	h1 := hostrt.New(eng, p, 1, 1, seed)
	n0 := rdma.New(eng, p, nw, 0, h0)
	n1 := rdma.New(eng, p, nw, 1, h1)
	hist := metrics.NewHistogram()
	var start sim.Time
	done := 0
	var issue func(t *hostrt.Thread)
	finish := func(t *hostrt.Thread) {
		hist.Record(t.Now() - start)
		done++
		if done < iters {
			issue(t)
		}
	}
	issue = func(t *hostrt.Thread) {
		start = t.Now()
		switch mode {
		case 0:
			n0.Read(t, 1, 256, nil, func() { finish(t) })
		case 1:
			n0.Write(t, 1, 256, nil, func() { finish(t) })
		case 2:
			n0.Send(t, 1, &wire.Execute{Header: wire.Header{TxnID: uint64(done), Src: 0}})
		}
	}
	h1.OnMessage(func(t *hostrt.Thread, from int, m wire.Msg) {
		if c, ok := m.(*rdma.Completion); ok {
			c.Fn()
			return
		}
		t.Charge(p.HostRPCHandle)
		n1.Send(t, 0, &wire.ExecuteResp{Header: wire.Header{TxnID: 0, Src: 1}})
	})
	h1.OnIdle(func(t *hostrt.Thread) bool { return false })
	h1.OnTransmit(func(t *hostrt.Thread, ms []wire.Msg) {})
	h0.OnMessage(func(t *hostrt.Thread, from int, m wire.Msg) {
		if c, ok := m.(*rdma.Completion); ok {
			c.Fn()
			return
		}
		if _, ok := m.(*wire.ExecuteResp); ok {
			finish(t)
		}
	})
	h0.OnTransmit(func(t *hostrt.Thread, ms []wire.Msg) {})
	started := false
	h0.OnIdle(func(t *hostrt.Thread) bool {
		if started {
			return false
		}
		started = true
		issue(t)
		return true
	})
	h0.WakeAll()
	eng.Run(sim.Second)
	return hist.Median()
}

// runFig3 sweeps remote write throughput across buffer sizes.
func runFig3(opt Options) *Report {
	sizes := []int{16, 32, 64, 128, 256}
	window := 4 * sim.Millisecond
	if opt.Quick {
		sizes = []int{16, 64, 256}
		window = 1 * sim.Millisecond
	}
	r := &Report{ID: "fig3", Title: "Remote write throughput [ops/s]",
		Header: []string{"size", "LIO batched NIC-mem", "LIO single NIC-mem",
			"LIO batched host-mem", "LIO single host-mem", "CX5 RDMA"}}
	// Five measurements per size — the four LiquidIO batched/memory
	// combinations plus CX5 — as one flat pool, size-major.
	const kinds = 5
	tputs := runCells(opt, len(sizes)*kinds, func(i int, o Options) float64 {
		sz := sizes[i/kinds]
		switch i % kinds {
		case 0:
			return lioWriteTput(sz, true, false, window, o.Seed)
		case 1:
			return lioWriteTput(sz, false, false, window, o.Seed)
		case 2:
			return lioWriteTput(sz, true, true, window, o.Seed)
		case 3:
			return lioWriteTput(sz, false, true, window, o.Seed)
		default:
			return cx5WriteTput(sz, window, o.Seed)
		}
	})
	for i, sz := range sizes {
		t := tputs[i*kinds : (i+1)*kinds]
		r.AddCells(Text(fmt.Sprintf("%dB", sz)),
			Mops(t[0]), Mops(t[1]), Mops(t[2]), Mops(t[3]), Mops(t[4]))
	}
	r.AddNote("paper: single ~9.0-10.4M flat; batched NIC-mem scales to wire bandwidth; batched host-mem DMA-bound below 64B; CX5 13.5-15M flat")
	return r
}

// lioWriteTput measures remote write throughput to node 0 from 5 sources.
func lioWriteTput(size int, batched, hostMem bool, window sim.Time, seed int64) float64 {
	eng := sim.NewEngine(seed)
	p := model.Default()
	const nodes = 6
	nw := simnet.New(eng, p, nodes)
	feat := nicrt.Features{EthAggregation: batched, AsyncDMA: batched}
	var nics []*nicrt.NIC
	for i := 0; i < nodes; i++ {
		nics = append(nics, nicrt.New(eng, p, nw, i, 16, seed, feat))
	}
	completed := 0
	payload := make([]byte, size)

	// Target: ack each write; host-memory targets DMA first.
	nics[0].OnMessage(func(c *nicrt.Core, from int, m wire.Msg) {
		cm := m.(*wire.Commit)
		reply := func() {
			c.Send(from, &wire.CommitResp{Header: wire.Header{TxnID: cm.TxnID, Src: 0}})
		}
		if hostMem {
			c.DMAWrite([]int{size}, reply)
			return
		}
		c.Charge(p.NICCacheObjCopy)
		reply()
	})
	nics[0].OnHostDeliver(func(ms []wire.Msg) {})

	// Sources: closed loop; batched mode keeps deep windows per core,
	// single mode paces each op by the host-side issue cost (the §3.4
	// unbatched bottleneck).
	perSource := 256
	if !batched {
		perSource = 8
	}
	for s := 1; s < nodes; s++ {
		s := s
		nics[s].OnHostDeliver(func(ms []wire.Msg) {})
		outstanding := 0
		seq := uint64(0)
		var pump func(c *nicrt.Core)
		pump = func(c *nicrt.Core) {
			for outstanding < perSource {
				outstanding++
				seq++
				if !batched {
					c.Charge(p.HostSendCost)
				}
				c.Send(0, &wire.Commit{
					Header: wire.Header{TxnID: uint64(s)<<32 | seq, Src: uint8(s)},
					Writes: []wire.KV{{Key: seq, Value: payload}},
				})
			}
		}
		nics[s].OnMessage(func(c *nicrt.Core, from int, m wire.Msg) {
			if _, ok := m.(*wire.CommitResp); ok {
				completed++
				outstanding--
				pump(c)
			}
		})
		nics[s].Inject(0, pump)
	}
	warm := window / 4
	eng.Run(warm)
	base := completed
	eng.Run(warm + window)
	return float64(completed-base) / window.Seconds()
}

// cx5WriteTput measures doorbell-batched RDMA WRITE throughput.
func cx5WriteTput(size int, window sim.Time, seed int64) float64 {
	eng := sim.NewEngine(seed)
	p := model.Default()
	const nodes = 6
	nw := simnet.New(eng, p, nodes)
	var hosts []*hostrt.Host
	var rnics []*rdma.NIC
	for i := 0; i < nodes; i++ {
		h := hostrt.New(eng, p, i, 8, seed)
		hosts = append(hosts, h)
		rnics = append(rnics, rdma.New(eng, p, nw, i, h))
	}
	completed := 0
	for i, h := range hosts {
		i := i
		h.OnMessage(func(t *hostrt.Thread, from int, m wire.Msg) {
			if c, ok := m.(*rdma.Completion); ok {
				c.Fn()
			}
		})
		h.OnTransmit(func(t *hostrt.Thread, ms []wire.Msg) {})
		if i == 0 {
			h.OnIdle(func(t *hostrt.Thread) bool { return false })
			continue
		}
		out := make([]int, 8)
		h.OnIdle(func(t *hostrt.Thread) bool {
			did := false
			for out[t.ID()] < 64 {
				out[t.ID()]++
				did = true
				id := t.ID()
				rnics[i].Write(t, 0, size, nil, func() { completed++; out[id]-- })
			}
			return did
		})
		h.WakeAll()
	}
	warm := window / 4
	eng.Run(warm)
	base := completed
	eng.Run(warm + window)
	return float64(completed-base) / window.Seconds()
}

// runFig4 measures the DMA engine directly.
func runFig4(opt Options) *Report {
	sizes := []int{16, 64, 256, 1024}
	window := 4 * sim.Millisecond
	if opt.Quick {
		sizes = []int{16, 256}
		window = 1 * sim.Millisecond
	}
	r := &Report{ID: "fig4", Title: "DMA engine throughput and latency",
		Header: []string{"size", "tput x1", "tput x15", "write lat", "read lat"}}
	p := model.Default()
	elems := []int{1, 15}
	tputs := runCells(opt, len(sizes)*len(elems), func(i int, o Options) float64 {
		return dmaTput(sizes[i/2], elems[i%2], window, o.Seed)
	})
	for i, sz := range sizes {
		r.AddCells(Text(fmt.Sprintf("%dB", sz)), Mops(tputs[2*i]), Mops(tputs[2*i+1]),
			Micros(p.DMAWriteLatency), Micros(p.DMAReadLatency))
	}
	r.AddNote("paper: vectored submission reaches the 8.7M submissions/s hardware max; full vectors do not lengthen completion latency (§3.5)")
	return r
}

func dmaTput(size, elems int, window sim.Time, seed int64) float64 {
	eng := sim.NewEngine(seed)
	p := model.Default()
	d := pcie.New(eng, p)
	sizes := make([]int, elems)
	for i := range sizes {
		sizes[i] = size
	}
	done := 0
	var pump func()
	pump = func() {
		if eng.Now() >= 2*window {
			return
		}
		for i := 0; i < 8; i++ {
			d.Submit(i, &pcie.Vector{Write: true, Sizes: sizes, Complete: func() { done += elems }})
		}
		eng.After(sim.Microsecond, pump)
	}
	eng.Defer(pump)
	eng.Run(window / 2)
	base := done
	eng.Run(window/2 + window)
	return float64(done-base) / window.Seconds()
}
