package harness

import (
	"bytes"
	"encoding/json"
	"sync/atomic"
	"testing"
	"time"
)

// renderReport serializes everything an experiment reports — the printed
// table, the typed cells, and the stats snapshots — into one byte string.
func renderReport(t *testing.T, id string, opt Options) []byte {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	opt.Stats = NewStatsCollector()
	r := e.Run(opt)
	var buf bytes.Buffer
	r.Print(&buf)
	for _, v := range []any{r.Cells, opt.Stats.Snaps} {
		b, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// checkSerialParallelIdentical runs one experiment serially and on eight
// workers and requires byte-identical output.
func checkSerialParallelIdentical(t *testing.T, id string, seed int64) {
	t.Helper()
	serial := renderReport(t, id, Options{Quick: true, Seed: seed, Workers: 1})
	parallel := renderReport(t, id, Options{Quick: true, Seed: seed, Workers: 8})
	if !bytes.Equal(serial, parallel) {
		t.Errorf("%s seed %d: serial and parallel runs diverge\n--- serial ---\n%s--- parallel ---\n%s",
			id, seed, serial, parallel)
	}
}

// TestSerialParallelIdentical is the harness's core guarantee: Workers
// changes wall-clock time only. Reports, typed cells, and stats snapshots
// must be byte-identical between serial and parallel runs, across seeds.
func TestSerialParallelIdentical(t *testing.T) {
	for _, id := range []string{"fig4", "ablate-k"} {
		for seed := int64(1); seed <= 3; seed++ {
			checkSerialParallelIdentical(t, id, seed)
		}
	}
}

// TestSerialParallelIdenticalStats covers an experiment whose cells record
// stats snapshots, so the "#N" duplicate-label resolution is exercised
// through the merge path.
func TestSerialParallelIdenticalStats(t *testing.T) {
	checkSerialParallelIdentical(t, "ablate-cache", 1)
}

// TestRunCellsStopsOnFirstError: a panicking cell stops further dispatch,
// and the panic with the lowest cell index wins at any worker count.
func TestRunCellsStopsOnFirstError(t *testing.T) {
	const n = 64
	for _, workers := range []int{1, 4} {
		var executed atomic.Int64
		got := func() (v any) {
			defer func() { v = recover() }()
			runCells(Options{Workers: workers}, n, func(i int, o Options) int {
				executed.Add(1)
				if i == 3 {
					panic("boom 3")
				}
				if i == 10 {
					panic("boom 10")
				}
				time.Sleep(time.Millisecond)
				return i
			})
			return nil
		}()
		if got != "boom 3" {
			t.Fatalf("workers=%d: panic %v, want lowest-index \"boom 3\"", workers, got)
		}
		if executed.Load() >= n {
			t.Errorf("workers=%d: pool dispatched all %d cells after a failure", workers, n)
		}
	}
}

// TestRunCellsNoStatsMergeOnFailure: a failed pool must not leak partial
// stats into the caller's collector.
func TestRunCellsNoStatsMergeOnFailure(t *testing.T) {
	stats := NewStatsCollector()
	func() {
		defer func() { recover() }()
		runCells(Options{Workers: 4, Stats: stats}, 8, func(i int, o Options) int {
			o.Stats.add("cell", i)
			if i == 2 {
				panic("fail")
			}
			return i
		})
	}()
	if len(stats.Snaps) != 0 {
		t.Errorf("failed pool merged %d snapshots into caller's collector", len(stats.Snaps))
	}
}

// TestRunCellsResultOrder: results land in cell order regardless of
// completion order.
func TestRunCellsResultOrder(t *testing.T) {
	got := runCells(Options{Workers: 8}, 32, func(i int, o Options) int {
		time.Sleep(time.Duration(31-i) * time.Millisecond) // finish in reverse
		return i * i
	})
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result[%d] = %d, want %d", i, v, i*i)
		}
	}
}
