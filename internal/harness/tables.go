package harness

import (
	"fmt"
	"math/rand"

	"xenic/internal/cpubench"
	"xenic/internal/store/chained"
	"xenic/internal/store/hopscotch"
	"xenic/internal/store/nicindex"
	"xenic/internal/store/robinhood"
)

func init() {
	register(&Experiment{
		ID:       "table1",
		Title:    "NIC ARM vs host Xeon core performance",
		PaperRef: "Table 1: ~3.3x multi-thread, ~2x single-thread Xeon advantage",
		Run:      runTable1,
	})
	register(&Experiment{
		ID:       "table2",
		Title:    "Remote lookup efficiency at 90% occupancy",
		PaperRef: "Table 2: objects read and roundtrips per lookup",
		Run:      runTable2,
	})
}

func runTable1(opt Options) *Report {
	r := &Report{ID: "table1", Title: "Core benchmark model (calibrated, see cpubench)",
		Header: []string{"benchmark", "cores", "ARM", "Xeon", "ratio"}}
	for _, row := range cpubench.Rows() {
		r.AddRow(row.Kernel, row.Cores,
			fm(row.ARM, "%.1f"), fm(row.Xeon, "%.1f"), fm(row.Ratio, "%.2fx"))
	}
	r.AddNote("normalization constant for §5.6 thread accounting: %.2fx", cpubench.CoremarkRatio())
	return r
}

// table2Xenic measures the Robinhood + NIC-index lookup costs.
func table2Xenic(slots, dm, n int, seed int64) (objs, rts float64) {
	cfg := robinhood.DefaultConfig(slots)
	cfg.MaxDisplacement = dm
	cfg.InlineValueSize = 16
	host := robinhood.New(cfg)
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64()
		if err := host.Insert(keys[i], []byte("0123456789ab"), 1); err != nil {
			panic(err)
		}
	}
	idx := nicindex.New(host, 0, 1) // no value cache: pure DMA lookups
	idx.SyncHints()
	for _, k := range keys {
		res := idx.Lookup(k)
		if !res.Found {
			panic("table2: lost key")
		}
		objs += float64(res.ObjectsRead)
		nrt := 0
		for _, rd := range res.Reads {
			if !rd.Large {
				nrt++
			}
		}
		rts += float64(nrt)
	}
	return objs / float64(n), rts / float64(n)
}

func table2Hopscotch(slots, h, n int, seed int64) (objs, rts float64) {
	t := hopscotch.New(slots, h)
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64()
		if err := t.Insert(keys[i], []byte("0123456789ab"), 1); err != nil {
			panic(err)
		}
	}
	for _, k := range keys {
		res := t.Lookup(k)
		if !res.Found {
			panic("table2: lost key")
		}
		objs += float64(res.ObjectsRead)
		rts += float64(res.Roundtrips)
	}
	return objs / float64(n), rts / float64(n)
}

func table2Chained(slots, b, n int, seed int64) (objs, rts float64) {
	t := chained.New(slots/b, b)
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64()
		t.Insert(keys[i], []byte("0123456789ab"), 1)
	}
	for _, k := range keys {
		res := t.Lookup(k)
		if !res.Found {
			panic("table2: lost key")
		}
		objs += float64(res.ObjectsRead)
		rts += float64(res.Roundtrips)
	}
	return objs / float64(n), rts / float64(n)
}

func runTable2(opt Options) *Report {
	slots := 1 << 23 // 8M keys at 90% of ~9.3M slots
	if opt.Quick {
		slots = 1 << 19
	}
	n := slots * 9 / 10
	r := &Report{ID: "table2", Title: fmt.Sprintf("Lookups over %d uniform keys at 90%% occupancy", n),
		Header: []string{"structure", "objects read", "roundtrips", "paper objs", "paper rts"}}

	// One pool cell per structure: four Robinhood displacement limits,
	// Hopscotch, three chained-bucket sizes.
	dms := []int{8, 16, 32, 0}
	chainedBs := []int{4, 8, 16}
	type lookup struct{ objs, rts float64 }
	res := runCells(opt, len(dms)+1+len(chainedBs), func(i int, o Options) lookup {
		var s lookup
		switch {
		case i < len(dms):
			s.objs, s.rts = table2Xenic(slots, dms[i], n, o.Seed)
		case i == len(dms):
			s.objs, s.rts = table2Hopscotch(slots, 8, n, o.Seed)
		default:
			s.objs, s.rts = table2Chained(slots, chainedBs[i-len(dms)-1], n, o.Seed)
		}
		return s
	})

	cellPair := func(s lookup) (Cell, Cell) {
		return Num(s.objs, fm(s.objs, "%.2f")), Num(s.rts, fm(s.rts, "%.3f"))
	}
	paper := [][2]string{{"3.43", "1.07"}, {"4.13", "1.04"}, {"4.84", "1.02"}, {"6.39", "1"}}
	for i, dm := range dms {
		label := fmt.Sprintf("Xenic Robinhood, Dm=%d", dm)
		if dm == 0 {
			label = "Xenic Robinhood, no limit"
		}
		objs, rts := cellPair(res[i])
		r.AddCells(Text(label), objs, rts, Text(paper[i][0]), Text(paper[i][1]))
	}
	objs, rts := cellPair(res[len(dms)])
	r.AddCells(Text("FaRM Hopscotch, H=8"), objs, rts, Text(">8"), Text("1.04"))
	paperC := [][2]string{{"4.65", "1.16"}, {"8.81", "1.10"}, {"16.96", "1.06"}}
	for i, b := range chainedBs {
		objs, rts := cellPair(res[len(dms)+1+i])
		r.AddCells(Text(fmt.Sprintf("DrTM+H Chained, B=%d", b)), objs, rts,
			Text(paperC[i][0]), Text(paperC[i][1]))
	}
	r.AddNote("Xenic rows read ~1 object more than the paper: our reads cover d_i+k+1 slots (conservative staleness slack); orderings and the <H=8 property hold")
	return r
}
