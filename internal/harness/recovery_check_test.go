package harness

import (
	"testing"

	"xenic"
	"xenic/internal/check"
	"xenic/internal/core"
	"xenic/internal/fault"
	"xenic/internal/sim"
	"xenic/internal/workload/smallbank"
)

// TestRestartExtremeSkewSerializable is the pinned regression for a
// promotion-path serializability bug found by the high-skew abort sweep:
// crash a primary at 1ms and restart it at 3ms while Smallbank hammers a
// 0.5% hot set at 99% probability. Before the fix, a backup promoted to
// primary could leave an undecided log record's write-set key unprotected
// (adoptShards' TryLock loses the key to an earlier undecided record for
// the same hot key, and handleRecoveryDecide unlocked before applying), so
// a transaction validated against the pre-commit version and committed a
// stale read — a cycle in the dependency graph. Seeds 1 and 2 both
// produced witness cycles; seed 2 needs the conflict scheduler on.
func TestRestartExtremeSkewSerializable(t *testing.T) {
	plan, err := fault.Parse("crash=2@1ms,restart=2@3ms")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		seed  int64
		sched bool
	}{{1, false}, {2, true}} {
		cfg := core.DefaultConfig()
		cfg.Nodes = 4
		cfg.Replication = 3
		cfg.AppThreads, cfg.WorkerThreads, cfg.NICCores = 2, 3, 8
		cfg.Outstanding = 32
		cfg.Seed = tc.seed
		cfg.Sched = tc.sched
		cfg.Faults = plan

		g := smallbank.New()
		g.AccountsPerServer = 24000
		g.HotFrac, g.HotProb = 0.005, 0.99

		h := check.NewHistory()
		cl, err := xenic.NewCluster(cfg, g, xenic.WithHistory(h))
		if err != nil {
			t.Fatal(err)
		}
		cl.Measure(1*sim.Millisecond, 6*sim.Millisecond)
		if !cl.Drain(500 * sim.Millisecond) {
			t.Errorf("seed %d sched=%v: did not drain", tc.seed, tc.sched)
			continue
		}
		if err := verify(h, cl.AuditHistory); err != nil {
			t.Errorf("seed %d sched=%v: %v", tc.seed, tc.sched, err)
		}
	}
}
