package harness

import (
	"fmt"

	"xenic"
	"xenic/internal/baseline"
	"xenic/internal/core"
	"xenic/internal/sim"
)

// This file regenerates Figure 9 (§5.7): sequentially enabling Xenic's
// design features against a DrTM+H-like baseline.

func init() {
	register(&Experiment{
		ID:       "fig9a",
		Title:    "Retwis throughput, enabling throughput-oriented features",
		PaperRef: "Figure 9a: baseline 0.90x DrTM+H -> +smart ops 1.47x -> +Eth agg 1.98x -> +async DMA 2.30x",
		Run:      runFig9a,
	})
	register(&Experiment{
		ID:       "fig9b",
		Title:    "Smallbank low-load median latency, enabling latency-oriented features",
		PaperRef: "Figure 9b: baseline 1.37x DrTM+H -> +smart ops -20% -> +NIC exec -32% -> +OCC opt -42%",
		Run:      runFig9b,
	})
}

func runFig9a(opt Options) *Report {
	s := setupFor("fig8c")
	warm, win := 3*sim.Millisecond, 10*sim.Millisecond
	if opt.Quick {
		warm, win = 1*sim.Millisecond, 3*sim.Millisecond
	}
	r := &Report{ID: "fig9a", Title: "Retwis per-server peak throughput by feature set",
		Header: []string{"config", "tput/server", "vs baseline", "vs DrTM+H"}}

	// Throughput-oriented ablation runs with execution at the host
	// (NICExecution and multi-hop are latency features, §5.7).
	steps := []struct {
		name string
		feat core.Features
	}{
		{"Xenic baseline", core.Features{}},
		{"+ Smart remote ops", core.Features{SmartRemoteOps: true}},
		{"+ Eth aggregation", core.Features{SmartRemoteOps: true, EthAggregation: true}},
		{"+ Async DMA", core.Features{SmartRemoteOps: true, EthAggregation: true, AsyncDMA: true}},
	}
	window := 16
	if opt.Quick {
		window = 8
	}

	// Cell 0 is the DrTM+H reference, cells 1..4 the feature steps.
	results := runCells(opt, len(steps)+1, func(i int, o Options) Result {
		if i == 0 {
			dcfg := baseline.DefaultConfig(baseline.DrTMH)
			dcfg.Threads = s.threads
			dcfg.Outstanding = window
			dcfg.Seed = o.Seed
			tel := o.Telemetry.Sampler()
			dcl, err := xenic.NewBaseline(dcfg, s.gen(o.Quick), xenic.WithTelemetry(tel))
			if err != nil {
				panic(err)
			}
			res := dcl.Measure(warm, win)
			o.Stats.Snap("fig9a/DrTM+H", dcl.RegisterMetrics)
			o.Telemetry.Done("fig9a/DrTM+H", tel)
			return res
		}
		st := steps[i-1]
		cfg := core.DefaultConfig()
		cfg.AppThreads, cfg.WorkerThreads, cfg.NICCores = s.app, s.workers, s.nic
		cfg.Outstanding = window
		cfg.Features = st.feat
		cfg.Seed = o.Seed
		tel := o.Telemetry.Sampler()
		cl, err := xenic.NewCluster(cfg, s.gen(o.Quick), xenic.WithTelemetry(tel))
		if err != nil {
			panic(err)
		}
		res := cl.Measure(warm, win)
		o.Stats.Snap("fig9a/"+st.name, cl.RegisterMetrics)
		o.Telemetry.Done("fig9a/"+st.name, tel)
		return res
	})

	dres := results[0]
	r.AddCells(Text("DrTM+H"), Tput(dres.PerServerTput), Text("-"), Text("1.00x"))
	base := results[1].PerServerTput
	for i, st := range steps {
		res := results[i+1]
		vsBase, vsD := Text("-"), Text("-")
		if base > 0 {
			v := res.PerServerTput / base
			vsBase = Num(v, fmt.Sprintf("%.2fx", v))
		}
		if dres.PerServerTput > 0 {
			v := res.PerServerTput / dres.PerServerTput
			vsD = Num(v, fmt.Sprintf("%.2fx", v))
		}
		r.AddCells(Text(st.name), Tput(res.PerServerTput), vsBase, vsD)
	}
	r.AddNote("paper: 1.00x -> 1.47x -> 1.98x -> 2.30x over baseline; final = 2.07x DrTM+H")
	finishTelemetry(r, opt)
	return r
}

func runFig9b(opt Options) *Report {
	s := setupFor("fig8d")
	warm, win := 3*sim.Millisecond, 10*sim.Millisecond
	if opt.Quick {
		warm, win = 1*sim.Millisecond, 3*sim.Millisecond
	}
	r := &Report{ID: "fig9b", Title: "Smallbank low-load median latency by feature set",
		Header: []string{"config", "median", "vs baseline", "vs DrTM+H"}}

	rt := core.Features{EthAggregation: true, AsyncDMA: true}
	steps := []struct {
		name string
		feat core.Features
	}{
		{"Xenic baseline", rt},
		{"+ Smart remote ops", with(rt, func(f *core.Features) { f.SmartRemoteOps = true })},
		{"+ NIC execution", with(rt, func(f *core.Features) { f.SmartRemoteOps = true; f.NICExecution = true })},
		{"+ OCC optimization", with(rt, func(f *core.Features) {
			f.SmartRemoteOps = true
			f.NICExecution = true
			f.MultiHopOCC = true
		})},
	}

	// Cell 0 is the DrTM+H reference, cells 1..4 the feature steps.
	results := runCells(opt, len(steps)+1, func(i int, o Options) Result {
		if i == 0 {
			dcfg := baseline.DefaultConfig(baseline.DrTMH)
			dcfg.Threads = s.threads
			dcfg.Outstanding = 1 // low load
			dcfg.Seed = o.Seed
			tel := o.Telemetry.Sampler()
			dcl, err := xenic.NewBaseline(dcfg, s.gen(o.Quick), xenic.WithTelemetry(tel))
			if err != nil {
				panic(err)
			}
			res := dcl.Measure(warm, win)
			o.Stats.Snap("fig9b/DrTM+H", dcl.RegisterMetrics)
			o.Telemetry.Done("fig9b/DrTM+H", tel)
			return res
		}
		st := steps[i-1]
		cfg := core.DefaultConfig()
		cfg.AppThreads, cfg.WorkerThreads, cfg.NICCores = s.app, s.workers, s.nic
		cfg.Outstanding = 1
		cfg.Features = st.feat
		cfg.Seed = o.Seed
		tel := o.Telemetry.Sampler()
		cl, err := xenic.NewCluster(cfg, s.gen(o.Quick), xenic.WithTelemetry(tel))
		if err != nil {
			panic(err)
		}
		res := cl.Measure(warm, win)
		o.Stats.Snap("fig9b/"+st.name, cl.RegisterMetrics)
		o.Telemetry.Done("fig9b/"+st.name, tel)
		return res
	})

	dres := results[0]
	r.AddCells(Text("DrTM+H"), Micros(dres.Median), Text("-"), Text("1.00x"))
	base := results[1].Median
	for i, st := range steps {
		res := results[i+1]
		vsBase, vsD := Text("-"), Text("-")
		if base > 0 {
			v := 100 * (1 - res.Median.Seconds()/base.Seconds())
			vsBase = Num(v, fmt.Sprintf("%.0f%%", v))
		}
		if dres.Median > 0 {
			v := res.Median.Seconds() / dres.Median.Seconds()
			vsD = Num(v, fmt.Sprintf("%.2fx", v))
		}
		r.AddCells(Text(st.name), Micros(res.Median), vsBase, vsD)
	}
	r.AddNote("paper: baseline 1.37x DrTM+H; -20%%, -32%%, -42%% vs baseline; final 0.78x DrTM+H")
	finishTelemetry(r, opt)
	return r
}

func with(f core.Features, fn func(*core.Features)) core.Features {
	fn(&f)
	return f
}
