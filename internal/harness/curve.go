package harness

import (
	"fmt"

	"xenic"
	"xenic/internal/baseline"
	"xenic/internal/core"
	"xenic/internal/sim"
)

// This file is the generic throughput/latency curve runner: every system —
// the Xenic cluster and each baseline — is measured through xenic.System,
// so a sweep is described by a builder function and a stats label, and the
// former per-system runner duplicates (runXenicCurve / runBaselineCurve and
// their one-link variants) collapse into runCurve.

// Result is the shared measurement summary every System reports.
type Result = xenic.Result

// builder constructs a configured System for one offered-load window;
// observers (telemetry samplers in particular) ride along as
// construction-time options.
type builder func(window int, opts ...xenic.Option) (xenic.System, error)

// xenicBuilder returns a builder for the Xenic cluster under setup s.
// oneLink halves the fabric to a single 50Gbps link (§5.3).
func xenicBuilder(s workloadSetup, opt Options, oneLink bool) builder {
	return func(w int, opts ...xenic.Option) (xenic.System, error) {
		cfg := core.DefaultConfig()
		if oneLink {
			cfg.Params = cfg.Params.OneLink()
		}
		cfg.AppThreads = s.app
		cfg.WorkerThreads = s.workers
		cfg.NICCores = s.nic
		cfg.Outstanding = perThread(w, s.app)
		cfg.Seed = opt.Seed
		return xenic.NewCluster(cfg, s.gen(opt.Quick), opts...)
	}
}

// baselineBuilder returns a builder for baseline system sys under setup s.
func baselineBuilder(sys baseline.System, s workloadSetup, opt Options, oneLink bool) builder {
	return func(w int, opts ...xenic.Option) (xenic.System, error) {
		cfg := baseline.DefaultConfig(sys)
		if oneLink {
			cfg.Params = cfg.Params.OneLink()
		}
		cfg.Threads = s.threads
		cfg.Outstanding = perThread(w, s.threads)
		cfg.Seed = opt.Seed
		return xenic.NewBaseline(cfg, s.gen(opt.Quick), opts...)
	}
}

// runCurve measures one system across the offered-load windows — one pool
// cell per window — and returns the (window, throughput, median) samples in
// window order. label names each window's stats snapshot.
func runCurve(opt Options, windows []int, warm, win sim.Time,
	label func(w int) string, build builder) []point {
	return runCells(opt, len(windows), func(i int, o Options) point {
		w := windows[i]
		tel := o.Telemetry.Sampler()
		sys, err := build(w, xenic.WithTelemetry(tel))
		if err != nil {
			panic(err)
		}
		res := sys.Measure(warm, win)
		o.Stats.Snap(label(w), sys.RegisterMetrics)
		o.Telemetry.Done(label(w), tel)
		return point{window: w, tput: res.PerServerTput, median: res.Median}
	})
}

// curveSpec names one system's sweep for runCurves.
type curveSpec struct {
	name  string // row/series label ("Xenic", "DrTM+H", ...)
	stats string // stats-label component ("xenic", "DrTM+H", ...)
	build builder
}

// fig8Specs are the five systems of a Figure 8 panel, Xenic first.
func fig8Specs(s workloadSetup, opt Options) []curveSpec {
	specs := []curveSpec{{name: "Xenic", stats: "xenic", build: xenicBuilder(s, opt, false)}}
	for _, sys := range []baseline.System{baseline.DrTMH, baseline.DrTMHNC, baseline.FaSST, baseline.DrTMR} {
		specs = append(specs, curveSpec{name: sys.String(), stats: sys.String(),
			build: baselineBuilder(sys, s, opt, false)})
	}
	return specs
}

// runCurves sweeps every spec over windows as one flat pool of cells
// (len(specs) x len(windows)), so a multi-system figure saturates the
// worker pool instead of parallelizing only within one system's sweep.
// Results are returned per spec, in spec order.
func runCurves(s workloadSetup, opt Options, specs []curveSpec, windows []int, warm, win sim.Time) [][]point {
	type cellID struct{ spec, win int }
	var ids []cellID
	for si := range specs {
		for wi := range windows {
			ids = append(ids, cellID{si, wi})
		}
	}
	flat := runCells(opt, len(ids), func(i int, o Options) point {
		id := ids[i]
		w := windows[id.win]
		tel := o.Telemetry.Sampler()
		sys, err := specs[id.spec].build(w, xenic.WithTelemetry(tel))
		if err != nil {
			panic(err)
		}
		res := sys.Measure(warm, win)
		label := fmt.Sprintf("%s/%s/w%d", s.name, specs[id.spec].stats, w)
		o.Stats.Snap(label, sys.RegisterMetrics)
		o.Telemetry.Done(label, tel)
		return point{window: w, tput: res.PerServerTput, median: res.Median}
	})
	out := make([][]point, len(specs))
	for i, id := range ids {
		out[id.spec] = append(out[id.spec], flat[i])
	}
	return out
}
