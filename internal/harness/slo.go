package harness

import (
	"fmt"

	"xenic"
	"xenic/internal/baseline"
	"xenic/internal/core"
	"xenic/internal/openloop"
	"xenic/internal/sim"
	"xenic/internal/txnmodel"
	"xenic/internal/workload/smallbank"
)

// slo is the open-loop methodology experiment. Closed-loop generators (the
// fig8 sweeps) self-throttle: when the system saturates, the generator slows
// with it and reported latency stays flat. Driving the same clusters with
// the open-loop front-end instead exposes the "hockey stick": p99 is flat
// while offered load is below the saturation knee, then diverges as the
// arrival rate outruns service capacity and queueing delay accumulates
// without bound. The final cell shows admission control cutting the stick
// off — a queue-depth policy bounds in-flight work, holding p99 near the
// service floor past saturation at the price of rejecting the excess.

func init() {
	register(&Experiment{
		ID:       "slo",
		Title:    "Open-loop hockey stick: offered load vs p99, admission control vs SLO",
		PaperRef: "open-loop load methodology; DESIGN.md §13 (LoadSource front-end)",
		Run:      runSLO,
	})
}

// SLOTuning carries cmd/xenic-bench's open-loop flag overrides into the slo
// experiment (Options.SLO). Zero values keep the experiment defaults.
type SLOTuning struct {
	Arrival  string // arrival process: poisson (default) | pareto
	Admit    string // admission-cell policy spec ("" or "none" = queue:64:64)
	Sessions int    // client sessions (0 = 64)
	SLOUs    int    // p99 SLO bound in microseconds (0 = 5x the low-load p99)
}

func runSLO(opt Options) *Report {
	const nodes = 4
	warm, win := 2*sim.Millisecond, 6*sim.Millisecond
	fracs := []float64{0.3, 0.6, 0.9, 1.1, 1.4}
	if opt.Quick {
		warm, win = 1*sim.Millisecond, 2*sim.Millisecond
		fracs = []float64{0.3, 0.9, 1.4}
	}
	tune := opt.SLO
	if tune == nil {
		tune = &SLOTuning{}
	}
	arrival := tune.Arrival
	if arrival == "" {
		arrival = "poisson"
	}
	sessions := tune.Sessions
	if sessions == 0 {
		sessions = 64
	}
	admitSpec := tune.Admit
	if admitSpec == "" || admitSpec == "none" {
		// Bound cluster-wide in-flight work near the calibration concurrency
		// and keep the standing queue short, so queueing delay stays small
		// even when the excess is rejected.
		admitSpec = "queue:64:64"
	}
	// Fail fast on bad flag specs; cells re-parse to get private (stateful)
	// policy instances.
	if _, err := openloop.ParseArrival(arrival); err != nil {
		panic(err)
	}
	if _, err := openloop.ParseAdmission(admitSpec); err != nil {
		panic(err)
	}

	gen := func() txnmodel.Generator {
		g := smallbank.New()
		g.AccountsPerServer = 20_000
		return g
	}
	systems := []string{"Xenic", "DrTM+H"}
	xenicCfg := func(seed int64) core.Config {
		cfg := core.DefaultConfig()
		cfg.Nodes = nodes
		cfg.Replication = 3
		cfg.AppThreads, cfg.WorkerThreads, cfg.NICCores = 2, 2, 8
		cfg.Seed = seed
		return cfg
	}
	drtmhCfg := func(seed int64) baseline.Config {
		cfg := baseline.DefaultConfig(baseline.DrTMH)
		cfg.Nodes = nodes
		cfg.Replication = 3
		cfg.Threads = 8
		cfg.Seed = seed
		return cfg
	}

	// Phase 1: closed-loop calibration. Each system's saturated closed-loop
	// throughput C anchors the sweep's offered rates, so "1.4x" means the
	// same thing run to run and system to system.
	const calWindow = 64 // outstanding txns per node
	capacity := runCells(opt, len(systems), func(i int, o Options) float64 {
		tel := o.Telemetry.Sampler()
		var sys xenic.System
		var err error
		if i == 0 {
			cfg := xenicCfg(o.Seed)
			cfg.Outstanding = perThread(calWindow, cfg.AppThreads)
			sys, err = xenic.NewCluster(cfg, gen(), xenic.WithTelemetry(tel))
		} else {
			cfg := drtmhCfg(o.Seed)
			cfg.Outstanding = perThread(calWindow, cfg.Threads)
			sys, err = xenic.NewBaseline(cfg, gen(), xenic.WithTelemetry(tel))
		}
		if err != nil {
			panic(err)
		}
		res := sys.Measure(warm, win)
		label := "slo/calibrate/" + systems[i]
		o.Stats.Snap(label, sys.RegisterMetrics)
		o.Telemetry.Done(label, tel)
		return res.PerServerTput * nodes
	})

	// Phase 2: the open-loop sweep (every system x fraction, no admission)
	// plus one admission cell — Xenic at the top fraction with the policy on.
	type cellDef struct {
		si    int
		frac  float64
		admit string
	}
	var cells []cellDef
	for si := range systems {
		for _, f := range fracs {
			cells = append(cells, cellDef{si, f, "none"})
		}
	}
	admCell := len(cells)
	cells = append(cells, cellDef{0, fracs[len(fracs)-1], admitSpec})

	type openPoint struct {
		offered, completed, rejected float64 // cluster-wide rates [1/s]
		p50, p99, qd99               sim.Time
	}
	points := runCells(opt, len(cells), func(i int, o Options) openPoint {
		c := cells[i]
		arr, err := openloop.ParseArrival(arrival)
		if err != nil {
			panic(err)
		}
		adm, err := openloop.ParseAdmission(c.admit)
		if err != nil {
			panic(err)
		}
		olc := openloop.Config{
			Rate:     capacity[c.si] * c.frac,
			Arrival:  arr,
			Sessions: sessions,
			Admit:    adm,
			Seed:     o.Seed,
		}
		tel := o.Telemetry.Sampler()
		var sys xenic.System
		if c.si == 0 {
			cfg := xenicCfg(o.Seed)
			sys, err = xenic.NewCluster(cfg, gen(), xenic.WithOpenLoop(olc), xenic.WithTelemetry(tel))
		} else {
			cfg := drtmhCfg(o.Seed)
			sys, err = xenic.NewBaseline(cfg, gen(), xenic.WithOpenLoop(olc), xenic.WithTelemetry(tel))
		}
		if err != nil {
			panic(err)
		}
		// No warmup: open-loop latency is client-observed, so the whole
		// arrival timeline from t=0 is the measurement — a warmup at an
		// overloaded rate would only pre-build the backlog the window is
		// meant to expose.
		sys.Start()
		sys.Measure(0, win)
		s := sys.OfferedLoad()
		label := fmt.Sprintf("slo/%s/%.1fx-%s", systems[c.si], c.frac, c.admit)
		o.Stats.Snap(label, sys.RegisterMetrics)
		o.Telemetry.Done(label, tel)
		sec := win.Seconds()
		return openPoint{
			offered:   float64(s.Offered) / sec,
			completed: float64(s.Completed) / sec,
			rejected:  float64(s.Rejected) / sec,
			p50:       s.LatencyP50,
			p99:       s.LatencyP99,
			qd99:      s.QueueDelayP99,
		}
	})

	slo := sim.Time(tune.SLOUs) * sim.Microsecond
	if slo == 0 {
		// Derive the bound from the measured service floor: 5x the p99 of
		// Xenic's lowest-rate cell, where queueing is negligible.
		slo = 5 * points[0].p99
	}

	r := &Report{ID: "slo",
		Title:  fmt.Sprintf("open-loop %s arrivals, %d sessions: throughput vs p99", arrival, sessions),
		Header: []string{"system", "load", "offered/s", "completed/s", "admit", "rejected/s", "p50", "p99", "p99<=slo"}}
	row := func(c cellDef, p openPoint) {
		within := "yes"
		if p.p99 > slo {
			within = "NO"
		}
		r.AddCells(Text(systems[c.si]), Text(fmt.Sprintf("%.1fxC", c.frac)),
			Tput(p.offered), Tput(p.completed), Text(c.admit), Tput(p.rejected),
			Micros(p.p50), Micros(p.p99), Text(within))
	}
	for i, c := range cells {
		row(c, points[i])
	}

	for si, name := range systems {
		r.AddNote("closed-loop calibration %s: C = %s cluster-wide (window %d/node)",
			name, ktps(capacity[si]), calWindow)
	}
	r.AddNote("SLO bound: p99 <= %s%s", us(slo), map[bool]string{true: " (5x Xenic low-load p99)", false: " (-slo-us)"}[tune.SLOUs == 0])

	// The hockey stick: below the knee p99 sits at the service floor; past
	// it, unadmitted p99 grows with the backlog.
	lowIdx, topIdx := 0, len(fracs)-1
	low, top := points[lowIdx], points[topIdx]
	if low.p99 > 0 {
		r.AddNote("hockey stick (Xenic, no admission): p99 %s at %.1fxC -> %s at %.1fxC (%.1fx)",
			us(low.p99), fracs[lowIdx], us(top.p99), fracs[topIdx],
			top.p99.Seconds()/low.p99.Seconds())
	}
	adm := points[admCell]
	switch {
	case adm.p99 <= slo && top.p99 > slo:
		r.AddNote("admission control (%s) holds p99 within the SLO at %.1fxC (%s vs %s unadmitted), rejecting %s/s",
			admitSpec, fracs[topIdx], us(adm.p99), us(top.p99), ktps(adm.rejected))
	case adm.p99 <= slo:
		r.AddNote("admission cell met the SLO (%s) but so did the unadmitted run — raise the sweep if the knee moved", us(adm.p99))
	default:
		r.AddNote("FAILURE: admission cell p99 %s exceeds the SLO %s", us(adm.p99), us(slo))
	}
	r.AddNote("open-loop latency is client-observed (arrival to completion, queue delay included); closed-loop sweeps cannot show the divergence")
	finishTelemetry(r, opt)
	return r
}
