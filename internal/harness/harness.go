// Package harness contains one driver per table and figure in the paper's
// evaluation (§3 and §5), each regenerating the corresponding rows or
// series on the simulated testbed. cmd/xenic-bench runs them by id;
// bench_test.go wraps each in a testing.B benchmark.
package harness

import (
	"fmt"
	"io"
	"sort"

	"xenic/internal/metrics"
	"xenic/internal/sim"
	"xenic/internal/telemetry"
)

// Options tunes experiment scale.
type Options struct {
	// Quick shrinks populations, sweep points, and measurement windows so
	// an experiment finishes in seconds instead of minutes. Shapes are
	// preserved; EXPERIMENTS.md records full-scale numbers.
	Quick bool
	// Seed drives all randomness.
	Seed int64
	// Workers bounds how many experiment cells run concurrently (<=1 means
	// serial). Each cell owns a private sim.Engine, so parallelism changes
	// wall-clock only, never a reported number: results and stats snapshots
	// are merged in cell order regardless of completion order.
	Workers int
	// Stats, when non-nil, collects a stats-registry snapshot from every
	// cluster the experiment measures (cmd/xenic-bench -stats).
	Stats *StatsCollector
	// Telemetry, when non-nil, attaches a time-series sampler to every
	// cluster the experiment measures and collects the exported series per
	// cell (cmd/xenic-bench -telemetry). Sampling is read-only: reported
	// numbers are identical with or without a collector attached.
	Telemetry *TelemetryCollector
	// SLO overrides the slo experiment's open-loop knobs (arrival process,
	// admission policy, sessions, p99 bound) from cmd/xenic-bench's flags.
	// Nil keeps the experiment defaults; other experiments ignore it.
	SLO *SLOTuning
	// Sched overrides the contention experiment's scheduler tuning from
	// cmd/xenic-bench's -sched-* flags. Nil keeps the nicrt defaults; other
	// experiments ignore it.
	Sched *SchedTuning
}

// SchedTuning carries the -sched-batch-us / -sched-hot-k overrides for the
// contention experiment's scheduler-on cells (0 = nicrt default).
type SchedTuning struct {
	BatchUs int
	HotK    int
}

// StatsCollector accumulates one stats-registry snapshot per cluster run.
// Attach one via Options.Stats to have every figure/table run record its
// metrics; cmd/xenic-bench -stats writes the union as one JSON document.
// A collector is not safe for concurrent use: parallel cells each record
// into a private collector that the pool merges in cell order.
type StatsCollector struct {
	Snaps map[string]any
	// labels records each snapshot's original (pre-dedup) label in insertion
	// order, so merging collectors re-runs deduplication deterministically.
	labels []string
	keys   []string
}

// NewStatsCollector returns an empty collector.
func NewStatsCollector() *StatsCollector { return &StatsCollector{Snaps: map[string]any{}} }

// add stores snap under label, suffixing "#N" on duplicates.
func (c *StatsCollector) add(label string, snap any) {
	key := label
	for i := 2; ; i++ {
		if _, dup := c.Snaps[key]; !dup {
			break
		}
		key = fmt.Sprintf("%s#%d", label, i)
	}
	c.Snaps[key] = snap
	c.labels = append(c.labels, label)
	c.keys = append(c.keys, key)
}

// Snap builds a fresh registry for a just-measured cluster via register and
// stores its snapshot under label. A nil collector ignores the call, so
// runners invoke it unconditionally after each Measure; registration is
// lazy, so attaching after the run costs nothing during it.
func (c *StatsCollector) Snap(label string, register func(*metrics.Registry)) {
	if c == nil {
		return
	}
	reg := metrics.NewRegistry()
	register(reg)
	c.add(label, reg.Snapshot())
}

// merge appends every snapshot of sub, in sub's insertion order, re-running
// duplicate-label resolution against c's contents.
func (c *StatsCollector) merge(sub *StatsCollector) {
	if c == nil || sub == nil {
		return
	}
	for i, label := range sub.labels {
		c.add(label, sub.Snaps[sub.keys[i]])
	}
}

// DefaultOptions returns full-scale settings.
func DefaultOptions() Options { return Options{Seed: 1} }

// Cell is one machine-readable table cell: the rendered text plus, when the
// cell carries a number, its typed value — so JSON consumers and tooling
// (wallbench, regression gates) read values directly instead of re-parsing
// fmt-formatted strings. Value is nil for purely textual cells; numeric
// cells carry int64 (counts), float64 (rates; durations in microseconds).
type Cell struct {
	Text  string `json:"text"`
	Value any    `json:"value,omitempty"`
}

// Typed-cell constructors mirroring the formatting helpers below, so the
// rendered table is unchanged while the value rides alongside.

// Text returns a text-only cell.
func Text(s string) Cell { return Cell{Text: s} }

// Count returns an integer cell rendered as %d.
func Count(v int) Cell { return Cell{Text: fmt.Sprintf("%d", v), Value: int64(v)} }

// Tput returns a throughput cell (txn/s) rendered like ktps.
func Tput(v float64) Cell { return Cell{Text: ktps(v), Value: v} }

// Micros returns a duration cell rendered like us, valued in microseconds.
func Micros(t sim.Time) Cell { return Cell{Text: us(t), Value: t.Micros()} }

// Mops returns a throughput cell (ops/s) rendered like mops.
func Mops(v float64) Cell { return Cell{Text: mops(v), Value: v} }

// Num returns a float cell with explicit rendering.
func Num(v float64, text string) Cell { return Cell{Text: text, Value: v} }

// Report is an experiment's output.
type Report struct {
	ID    string
	Title string
	// Header/Rows form the table printed for the experiment.
	Header []string
	Rows   [][]string
	// Cells mirrors Rows with typed values alongside the rendered text
	// (row- and column-aligned; rows appended via AddRow carry text-only
	// cells).
	Cells [][]Cell
	// Notes carry paper-vs-measured commentary.
	Notes []string
	// Stats holds the per-run stats-registry snapshots collected through
	// Options.Stats, keyed by run label.
	Stats map[string]any
	// Bottlenecks holds the analyzer's per-cell limiting-resource verdicts,
	// keyed like the telemetry collector's sets. Populated only when
	// Options.Telemetry is attached.
	Bottlenecks map[string]telemetry.Verdict
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) {
	r.Rows = append(r.Rows, cells)
	typed := make([]Cell, len(cells))
	for i, s := range cells {
		typed[i] = Cell{Text: s}
	}
	r.Cells = append(r.Cells, typed)
}

// AddCells appends a row of typed cells; the rendered texts land in Rows so
// printing is unchanged.
func (r *Report) AddCells(cells ...Cell) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = c.Text
	}
	r.Rows = append(r.Rows, row)
	r.Cells = append(r.Cells, cells)
}

// AddNote appends a commentary line.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Print renders the report.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(w, "%-*s  ", widths[i], c)
			} else {
				fmt.Fprintf(w, "%s  ", c)
			}
		}
		fmt.Fprintln(w)
	}
	if len(r.Header) > 0 {
		printRow(r.Header)
	}
	for _, row := range r.Rows {
		printRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// Experiment is one registered driver.
type Experiment struct {
	ID       string
	Title    string
	PaperRef string
	Run      func(opt Options) *Report
}

var registry = map[string]*Experiment{}

func register(e *Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("harness: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// ByID finds an experiment.
func ByID(id string) (*Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All lists experiments in id order.
func All() []*Experiment {
	out := make([]*Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// helpers

func fm(f float64, format string) string { return fmt.Sprintf(format, f) }

func us(t sim.Time) string { return fmt.Sprintf("%.1fus", t.Micros()) }

func mops(v float64) string { return fmt.Sprintf("%.2fM", v/1e6) }

func ktps(v float64) string {
	if v >= 1e6 {
		return fmt.Sprintf("%.2fM", v/1e6)
	}
	return fmt.Sprintf("%.0fk", v/1e3)
}
