package harness

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func quick() Options { return Options{Quick: true, Seed: 1} }

func runByID(t *testing.T, id string) *Report {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	r := e.Run(quick())
	if r.ID != id || len(r.Rows) == 0 {
		t.Fatalf("%s produced empty report", id)
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), id) {
		t.Fatalf("%s report did not print", id)
	}
	return r
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig2", "fig3", "fig4", "fig8a", "fig8b", "fig8c", "fig8d",
		"fig9a", "fig9b", "table1", "table2", "table3",
		"ablate-cache", "ablate-dm", "ablate-k", "availability", "chaos", "checksweep",
		"contention", "mvcc", "slo"}
	for _, id := range want {
		if _, ok := ByID(id); !ok {
			t.Errorf("missing experiment %s", id)
		}
	}
	if len(All()) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(All()), len(want))
	}
}

func TestAblateDm(t *testing.T) {
	r := runByID(t, "ablate-dm")
	// Bytes per lookup grow with Dm; overflow shrinks with Dm.
	first, last := r.Rows[0], r.Rows[len(r.Rows)-2] // Dm=4 vs Dm=64
	if cell(t, first[1]) >= cell(t, last[1]) {
		t.Errorf("bytes/lookup did not grow with Dm: %s vs %s", first[1], last[1])
	}
	ov4 := cell(t, strings.TrimSuffix(first[3], "%"))
	ov64 := cell(t, strings.TrimSuffix(last[3], "%"))
	if ov4 <= ov64 {
		t.Errorf("overflow did not shrink with Dm: %.2f vs %.2f", ov4, ov64)
	}
}

func TestAblateK(t *testing.T) {
	r := runByID(t, "ablate-k")
	// Second-read rate decreases with k; objects per lookup increase.
	r0 := cell(t, strings.TrimSuffix(r.Rows[0][1], "%"))
	r1 := cell(t, strings.TrimSuffix(r.Rows[1][1], "%"))
	r4 := cell(t, strings.TrimSuffix(r.Rows[len(r.Rows)-1][1], "%"))
	if r0 <= r4 {
		t.Errorf("second-read rate did not drop with k: k=0 %.3f vs k=4 %.3f", r0, r4)
	}
	// k=1 removes most of k=0's second reads (the paper's observation that
	// d_i rarely grows by more than one).
	if r1 > r0/2 {
		t.Errorf("k=1 second-read rate %.3f%% not well below k=0's %.3f%%", r1, r0)
	}
}

func TestAblateCacheQuick(t *testing.T) {
	r := runByID(t, "ablate-cache")
	// Larger caches hit more.
	small := cell(t, strings.TrimSuffix(r.Rows[0][3], "%"))
	big := cell(t, strings.TrimSuffix(r.Rows[len(r.Rows)-1][3], "%"))
	if big <= small {
		t.Errorf("hit rate did not grow with cache: %.1f%% vs %.1f%%", small, big)
	}
}

// TestAvailabilityQuick runs the crash→promotion→restart→re-replication
// timeline and checks the acceptance criteria: the replication factor is
// restored (with a reported time-to-restore) and throughput recovers to at
// least 90% of the pre-crash steady state.
func TestAvailabilityQuick(t *testing.T) {
	out := availabilityCell(quick(), 1)
	if out.err != nil {
		t.Fatalf("availability run failed: %v", out.err)
	}
	if !out.drained {
		t.Fatal("availability run did not drain")
	}
	if out.restoredAt == 0 {
		t.Fatal("replication factor never restored")
	}
	if out.restoredAt <= out.restartAt {
		t.Fatalf("replication restored at %v, before the restart at %v", out.restoredAt, out.restartAt)
	}
	last := out.series[len(out.series)-1]
	if last.repl != 3 {
		t.Fatalf("final min replication factor %d, want 3", last.repl)
	}
	if last.epoch == 0 {
		t.Fatal("view epoch never moved despite eviction and rejoin")
	}
	if out.preTput == 0 || out.postTput == 0 {
		t.Fatalf("steady states not measured: pre=%.0f post=%.0f", out.preTput, out.postTput)
	}
	if ratio := out.recoveryRatio(); ratio < 0.9 {
		t.Fatalf("throughput recovered to only %.0f%% of pre-crash steady state", ratio*100)
	}
	// The report renders without error.
	r := runByID(t, "availability")
	if len(r.Rows) < 10 {
		t.Fatalf("availability time series has only %d buckets", len(r.Rows))
	}
}

// cell parses a numeric prefix like "3.43" or "12.5us" or "710k".
func cell(t *testing.T, s string) float64 {
	t.Helper()
	mult := 1.0
	s = strings.TrimSpace(s)
	switch {
	case strings.HasSuffix(s, "us"):
		s = strings.TrimSuffix(s, "us")
	case strings.HasSuffix(s, "M"):
		s = strings.TrimSuffix(s, "M")
		mult = 1e6
	case strings.HasSuffix(s, "k"):
		s = strings.TrimSuffix(s, "k")
		mult = 1e3
	case strings.HasSuffix(s, "x"):
		s = strings.TrimSuffix(s, "x")
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", s, err)
	}
	return v * mult
}

func TestFig2Shapes(t *testing.T) {
	r := runByID(t, "fig2")
	vals := map[string]float64{}
	for _, row := range r.Rows {
		vals[row[0]+"/"+row[1]+"/host"] = cell(t, row[2])
		if row[3] != "n/a" {
			vals[row[0]+"/"+row[1]+"/nic"] = cell(t, row[3])
		}
	}
	// CX5 WRITE ~3.5us (§3.2).
	if w := vals["CX5/WRITE/host"]; w < 2.8 || w > 4.2 {
		t.Errorf("CX5 WRITE %vus, want ~3.5", w)
	}
	// One-sided RDMA beats host-sourced LiquidIO equivalents.
	if vals["CX5/READ/host"] >= vals["LiquidIO/Read/host"] {
		t.Errorf("RDMA READ %v !< LiquidIO Read %v", vals["CX5/READ/host"], vals["LiquidIO/Read/host"])
	}
	// NIC-sourced LiquidIO RPC beats two-sided RDMA RPC (§3.2).
	if vals["LiquidIO/NIC RPC/nic"] >= vals["CX5/Host RPC/host"] {
		t.Errorf("NIC-sourced NIC RPC %v !< two-sided RDMA RPC %v",
			vals["LiquidIO/NIC RPC/nic"], vals["CX5/Host RPC/host"])
	}
	// NIC-sourced ops beat host-sourced (PCIe crossings removed).
	if vals["LiquidIO/NIC RPC/nic"] >= vals["LiquidIO/NIC RPC/host"] {
		t.Error("NIC-sourced not faster than host-sourced")
	}
	// Host RPC is the slowest LiquidIO op (§3.2).
	if vals["LiquidIO/Host RPC/host"] <= vals["LiquidIO/Write/host"] {
		t.Error("host RPC not slower than DMA write op")
	}
}

func TestFig3Shapes(t *testing.T) {
	r := runByID(t, "fig3")
	// Columns: size, batched NIC, single NIC, batched host, single host, CX5.
	first := r.Rows[0]            // 16B
	last := r.Rows[len(r.Rows)-1] // 256B
	bn16, sn16 := cell(t, first[1]), cell(t, first[2])
	bh16, sh16 := cell(t, first[3]), cell(t, first[4])
	cx16, cx256 := cell(t, first[5]), cell(t, last[5])

	if bn16 < 4*sn16 {
		t.Errorf("batched NIC-mem gain at 16B only %.1fx", bn16/sn16)
	}
	if bh16 < 2*sh16 {
		t.Errorf("batched host-mem gain at 16B only %.1fx", bh16/sh16)
	}
	if bn16 < bh16 {
		t.Error("NIC-memory writes should outpace host-memory writes (no DMA)")
	}
	// CX5 is flat across sizes (message-rate bound, §3.4)...
	if cx256 < cx16*0.7 || cx256 > cx16*1.3 {
		t.Errorf("CX5 not flat: %.1fM vs %.1fM", cx16/1e6, cx256/1e6)
	}
	// ...and below batched LiquidIO at small sizes.
	if cx16 >= bn16 {
		t.Errorf("CX5 %.1fM >= batched LiquidIO %.1fM at 16B", cx16/1e6, bn16/1e6)
	}
}

func TestFig4Shapes(t *testing.T) {
	r := runByID(t, "fig4")
	first := r.Rows[0]
	t1, t15 := cell(t, first[1]), cell(t, first[2])
	if t15 < 4*t1 {
		t.Errorf("vectoring gain %.1fx at 16B", t15/t1)
	}
	// Single-element rate is the 8.7M submission cap.
	if t1 < 7e6 || t1 > 9.2e6 {
		t.Errorf("single-element rate %.1fM, want ~8.7M", t1/1e6)
	}
}

func TestTable1Shapes(t *testing.T) {
	r := runByID(t, "table1")
	if cell(t, r.Rows[0][4]) < 3.0 {
		t.Error("multi-thread ratio below 3x")
	}
}

func TestTable2Shapes(t *testing.T) {
	r := runByID(t, "table2")
	get := func(prefix string) (float64, float64) {
		for _, row := range r.Rows {
			if strings.HasPrefix(row[0], prefix) {
				return cell(t, row[1]), cell(t, row[2])
			}
		}
		t.Fatalf("row %q missing", prefix)
		return 0, 0
	}
	dm8Obj, dm8RT := get("Xenic Robinhood, Dm=8")
	noLimObj, noLimRT := get("Xenic Robinhood, no limit")
	hopObj, _ := get("FaRM Hopscotch")
	c4Obj, c4RT := get("DrTM+H Chained, B=4")
	c16Obj, c16RT := get("DrTM+H Chained, B=16")

	if dm8Obj >= noLimObj {
		t.Error("Dm=8 should read fewer objects than unlimited")
	}
	if dm8RT <= noLimRT {
		t.Error("Dm=8 should take more roundtrips than unlimited")
	}
	if hopObj < 8 {
		t.Errorf("Hopscotch reads %.2f objects, must be >= H=8", hopObj)
	}
	if dm8Obj >= hopObj {
		t.Error("Xenic Dm=8 should read fewer objects than Hopscotch")
	}
	// Chained rows match the paper closely.
	if c4Obj < 4.2 || c4Obj > 5.2 || c4RT < 1.1 || c4RT > 1.25 {
		t.Errorf("chained B=4: %.2f obj %.3f rt, paper 4.65/1.16", c4Obj, c4RT)
	}
	if c16Obj < 16 || c16Obj > 18 || c16RT > 1.1 {
		t.Errorf("chained B=16: %.2f obj %.3f rt, paper 16.96/1.06", c16Obj, c16RT)
	}
}

func TestFig8QuickRuns(t *testing.T) {
	for _, id := range []string{"fig8c", "fig8d"} {
		r := runByID(t, id)
		// Xenic peak should beat DrTM+H peak even at quick scale.
		best := map[string]float64{}
		for _, row := range r.Rows {
			v := cell(t, row[2])
			if v > best[row[0]] {
				best[row[0]] = v
			}
		}
		if best["Xenic"] <= best["DrTM+H"] {
			t.Errorf("%s: Xenic peak %.0f <= DrTM+H %.0f", id, best["Xenic"], best["DrTM+H"])
		}
	}
}

func TestFig8TPCCQuickRuns(t *testing.T) {
	r := runByID(t, "fig8a")
	best := map[string]float64{}
	for _, row := range r.Rows {
		v := cell(t, row[2])
		if v > best[row[0]] {
			best[row[0]] = v
		}
	}
	if best["Xenic"] <= best["DrTM+H"] {
		t.Errorf("fig8a: Xenic peak %.0f <= DrTM+H %.0f", best["Xenic"], best["DrTM+H"])
	}
	if best["FaSST"] <= 0 {
		t.Error("fig8a: FaSST produced nothing")
	}
}

func TestFig9aQuick(t *testing.T) {
	r := runByID(t, "fig9a")
	// Cumulative feature gains are monotonic.
	var tputs []float64
	for _, row := range r.Rows[1:] {
		tputs = append(tputs, cell(t, row[1]))
	}
	if len(tputs) != 4 {
		t.Fatalf("want 4 xenic rows, got %d", len(tputs))
	}
	if tputs[3] <= tputs[0] {
		t.Errorf("full feature set %.0f not above baseline %.0f", tputs[3], tputs[0])
	}
}

// TestSLOQuick checks the open-loop hockey stick's shape: Xenic's p99 at
// the top offered-load fraction exceeds its low-load p99 (queueing past the
// knee), and the admission cell — same rate, queue-depth policy — stays
// below the unadmitted p99 while rejecting the excess.
func TestSLOQuick(t *testing.T) {
	r := runByID(t, "slo")
	// Quick mode: 3 fractions x 2 systems + 1 admission cell = 7 rows.
	if len(r.Cells) != 7 {
		t.Fatalf("want 7 rows, got %d", len(r.Cells))
	}
	p99 := func(i int) float64 { return r.Cells[i][7].Value.(float64) }
	low, top, adm := p99(0), p99(2), p99(6)
	if top <= low {
		t.Errorf("no hockey stick: p99 at 1.4xC %.1fus <= p99 at 0.3xC %.1fus", top, low)
	}
	if adm >= top {
		t.Errorf("admission did not bound p99: admitted %.1fus >= unadmitted %.1fus", adm, top)
	}
	if rej := r.Cells[6][5].Value.(float64); rej <= 0 {
		t.Errorf("admission cell rejected nothing at 1.4xC")
	}
}

func TestFig9bQuick(t *testing.T) {
	r := runByID(t, "fig9b")
	var lats []float64
	for _, row := range r.Rows[1:] {
		lats = append(lats, cell(t, row[1]))
	}
	if len(lats) != 4 {
		t.Fatalf("want 4 xenic rows, got %d", len(lats))
	}
	if lats[3] >= lats[0] {
		t.Errorf("full feature set latency %.1f not below baseline %.1f", lats[3], lats[0])
	}
}
