package harness

import (
	"fmt"

	"xenic"
	"xenic/internal/core"
	"xenic/internal/fault"
	"xenic/internal/sim"
	"xenic/internal/workload/smallbank"
)

// availability drives a fixed offered load through the full failure→healing
// loop — crash, lease lapse, promotion, restart, state transfer, atomic
// re-admission — and reports the throughput/abort-rate time series plus the
// time to restore the replication factor. It is the availability story of
// §4.2.1 made measurable: the cluster keeps committing while degraded, and
// a restarted node re-replicates without pausing the primaries.

func init() {
	register(&Experiment{
		ID:       "availability",
		Title:    "Offered load through crash -> promotion -> restart -> re-replication",
		PaperRef: "§4.2.1 reconfiguration; DESIGN.md §10: rejoin and re-replication",
		Run:      runAvailability,
	})
}

// availBucket is one time-series sample of the availability run.
type availBucket struct {
	at        sim.Time // bucket end, in simulated time
	tput      float64  // committed txn/s during the bucket
	aborts    int64    // abort events during the bucket
	abortFrac float64  // aborts / (commits + aborts), 0 when idle
	epoch     int      // membership view epoch at the bucket end
	repl      int      // min live replicas over shards at the bucket end
}

// availOutcome is one availability run, summarized.
type availOutcome struct {
	series     []availBucket
	preTput    float64  // steady-state throughput before the crash
	postTput   float64  // steady-state throughput after replication restored
	crashAt    sim.Time // when the node dies
	restartAt  sim.Time // when it restarts
	restoredAt sim.Time // first bucket end at full replication after the dip (0: never)
	drained    bool
	err        error
}

// recoveryRatio is postTput/preTput — how much of the pre-crash steady
// state the healed cluster sustains.
func (o *availOutcome) recoveryRatio() float64 {
	if o.preTput == 0 {
		return 0
	}
	return o.postTput / o.preTput
}

// availabilityCell runs one crash→restart timeline under constant offered
// load, sampling throughput, abort rate, view epoch, and the minimum live
// replication factor every bucket.
func availabilityCell(opt Options, seed int64) availOutcome {
	const (
		nodes     = 4
		victim    = 2
		bucket    = 500 * sim.Microsecond
		crashAt   = 5 * sim.Millisecond
		restartAt = 12 * sim.Millisecond
	)
	total := 40 * sim.Millisecond
	accounts := 10000
	if opt.Quick {
		total = 30 * sim.Millisecond
		accounts = 2000
	}

	out := availOutcome{crashAt: crashAt, restartAt: restartAt}
	g := smallbank.New()
	g.AccountsPerServer = accounts
	plan, err := fault.Parse(fmt.Sprintf("crash=%d@%dus,restart=%d@%dus",
		victim, crashAt/sim.Microsecond, victim, restartAt/sim.Microsecond))
	if err != nil {
		out.err = err
		return out
	}
	cfg := core.DefaultConfig()
	cfg.Nodes = nodes
	cfg.Replication = 3
	cfg.AppThreads, cfg.WorkerThreads, cfg.NICCores = 2, 2, 4
	cfg.Outstanding = 8
	cfg.Seed = seed
	cfg.Faults = plan
	// The sampler sees the whole crash→restore arc; it is stopped before the
	// drain so the series end with the measured timeline.
	tel := opt.Telemetry.Sampler()
	cl, err := xenic.NewCluster(cfg, g, xenic.WithTelemetry(tel))
	if err != nil {
		out.err = err
		return out
	}

	minRepl := func() int {
		v := cl.View()
		min := cfg.Replication
		for s := 0; s < nodes; s++ {
			// Count replicas on nodes that are actually up: the view lags a
			// crash by the lease lapse, and a dead backup replicates nothing.
			r := 0
			if cl.Node(v.PrimaryOf[s]).Alive() {
				r++
			}
			for _, b := range v.BackupsOf[s] {
				if cl.Node(b).Alive() {
					r++
				}
			}
			if r < min {
				min = r
			}
		}
		return min
	}
	snap := func() (int64, int64) {
		var committed, aborts int64
		for i := 0; i < cl.Nodes(); i++ {
			s := cl.Node(i).Stats()
			committed += s.Committed
			aborts += s.Aborts
		}
		return committed, aborts
	}

	cl.Start()
	dipped := false
	lastC, lastA := int64(0), int64(0)
	for at := bucket; at <= total; at += bucket {
		cl.Run(bucket)
		c, a := snap()
		dc, da := c-lastC, a-lastA
		lastC, lastA = c, a
		b := availBucket{
			at:     cl.Engine().Now(),
			tput:   float64(dc) / bucket.Seconds(),
			aborts: da,
			epoch:  cl.View().Epoch,
			repl:   minRepl(),
		}
		if dc+da > 0 {
			b.abortFrac = float64(da) / float64(dc+da)
		}
		if b.repl < cfg.Replication {
			dipped = true
		} else if dipped && out.restoredAt == 0 {
			out.restoredAt = b.at
		}
		out.series = append(out.series, b)
	}

	// Steady states: before the crash (skipping the first millisecond of
	// closed-loop ramp-up) and after replication is restored (skipping one
	// bucket of admission transient).
	var preSum, postSum float64
	var preN, postN int
	for _, b := range out.series {
		switch {
		case b.at > 1*sim.Millisecond && b.at <= crashAt:
			preSum += b.tput
			preN++
		case out.restoredAt != 0 && b.at > out.restoredAt+bucket:
			postSum += b.tput
			postN++
		}
	}
	if preN > 0 {
		out.preTput = preSum / float64(preN)
	}
	if postN > 0 {
		out.postTput = postSum / float64(postN)
	}

	opt.Telemetry.Done("availability", tel)
	out.drained = cl.Drain(800 * sim.Millisecond)
	if !out.drained {
		out.err = fmt.Errorf("did not drain")
		return out
	}
	if err := cl.CheckInvariants(); err != nil {
		out.err = err
		return out
	}
	if err := cl.ReplicasConsistent(); err != nil {
		out.err = err
		return out
	}
	opt.Stats.Snap("availability", cl.RegisterMetrics)
	return out
}

func runAvailability(opt Options) *Report {
	outs := runCells(opt, 1, func(i int, o Options) availOutcome {
		return availabilityCell(o, o.Seed)
	})
	out := outs[0]

	r := &Report{ID: "availability",
		Title:  "Fixed offered load through crash, promotion, restart, re-replication",
		Header: []string{"t", "tput", "aborts", "abort%", "epoch", "repl"}}
	for _, b := range out.series {
		r.AddCells(Micros(b.at), Tput(b.tput), Count(int(b.aborts)),
			Num(b.abortFrac*100, fmt.Sprintf("%.1f%%", b.abortFrac*100)),
			Count(b.epoch), Count(b.repl))
	}

	r.AddNote("node crashes at %v, restarts at %v; lease lapse evicts it and promotes a backup in between", us(out.crashAt), us(out.restartAt))
	if out.restoredAt != 0 {
		r.AddNote("replication factor restored at %s: %s after the crash, %s after the restart",
			us(out.restoredAt), us(out.restoredAt-out.crashAt), us(out.restoredAt-out.restartAt))
	} else {
		r.AddNote("FAILURE: replication factor never restored")
	}
	r.AddNote("steady-state throughput: %s pre-crash, %s post-rejoin (%.0f%% recovered)",
		ktps(out.preTput), ktps(out.postTput), out.recoveryRatio()*100)
	if out.err != nil {
		r.AddNote("FAILURE: %v", out.err)
	} else {
		r.AddNote("drained; store invariants and replica consistency (including the rebuilt replicas) verified")
	}
	r.AddNote("fault-mode throughput is sim-relative: the series shape is the result, not the absolute rate")
	finishTelemetry(r, opt)
	if len(r.Bottlenecks) > 0 {
		r.AddNote("telemetry: crash -> restore arc recorded (cluster.alive / cluster.epoch series); see the dashboard")
	}
	return r
}
