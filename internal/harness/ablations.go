package harness

import (
	"fmt"
	"math/rand"

	"xenic/internal/core"
	"xenic/internal/sim"
	"xenic/internal/store/nicindex"
	"xenic/internal/store/robinhood"
	"xenic/internal/workload/retwis"
)

// Ablations beyond the paper's figures, for the design choices §4.1 and
// §4.3.3 discuss qualitatively:
//
//   - ablate-cache: SmartNIC index cache capacity vs Retwis throughput and
//     latency ("Xenic uses SmartNIC memory to cache objects, adapting to
//     available capacity... misses incur PCIe bandwidth overhead").
//   - ablate-dm: the displacement limit's effect on per-lookup PCIe bytes
//     and overflow rate (extends Table 2 with the bandwidth dimension).
//   - ablate-k: the d_i hint slack k under concurrent insertions ("we set
//     k = 1 based on experimentation", §4.1.3).

func init() {
	register(&Experiment{
		ID:       "ablate-cache",
		Title:    "SmartNIC cache capacity vs Retwis performance",
		PaperRef: "§4.3.3: cache misses turn into DMA lookups and PCIe bandwidth",
		Run:      runAblateCache,
	})
	register(&Experiment{
		ID:       "ablate-dm",
		Title:    "Displacement limit Dm vs lookup PCIe bytes and overflow",
		PaperRef: "§4.1.2/§4.1.4: Dm bounds probe-read size at the cost of overflow roundtrips",
		Run:      runAblateDm,
	})
	register(&Experiment{
		ID:       "ablate-k",
		Title:    "Hint slack k vs second-read rate under insertions",
		PaperRef: "§4.1.3: d_i is rarely invalidated by more than one, so k=1",
		Run:      runAblateK,
	})
}

func runAblateCache(opt Options) *Report {
	warm, win := 3*sim.Millisecond, 8*sim.Millisecond
	keys := 250_000
	fracs := []float64{0.02, 0.05, 0.125, 0.25, 0.5}
	if opt.Quick {
		warm, win = 1*sim.Millisecond, 3*sim.Millisecond
		keys = 40_000
		fracs = []float64{0.02, 0.25}
	}
	r := &Report{ID: "ablate-cache", Title: "Retwis vs NIC cache capacity",
		Header: []string{"cache/keys", "tput/server", "median", "cache hit rate"}}
	type sample struct {
		res Result
		hr  float64
	}
	samples := runCells(opt, len(fracs), func(i int, o Options) sample {
		f := fracs[i]
		g := retwis.New()
		g.KeysPerServer = keys
		g.CacheObjects = int(float64(keys) * f)

		cfg := core.DefaultConfig()
		cfg.AppThreads, cfg.WorkerThreads, cfg.NICCores = 2, 3, 16
		cfg.Outstanding = 32
		cfg.Seed = o.Seed
		cl, err := core.New(cfg, g)
		if err != nil {
			panic(err)
		}
		res := cl.Measure(warm, win)
		o.Stats.Snap(fmt.Sprintf("ablate-cache/%.3f", f), cl.RegisterMetrics)
		var hits, lookups int64
		for i := 0; i < cl.Nodes(); i++ {
			s := cl.Node(i).Index().Stats()
			hits += s.CacheHits
			lookups += s.Lookups
		}
		hr := 0.0
		if lookups > 0 {
			hr = float64(hits) / float64(lookups)
		}
		return sample{res: res, hr: hr}
	})
	for i, f := range fracs {
		s := samples[i]
		r.AddCells(Num(f, fmt.Sprintf("%.3f", f)), Tput(s.res.PerServerTput),
			Micros(s.res.Median), Num(100*s.hr, fmt.Sprintf("%.1f%%", 100*s.hr)))
	}
	r.AddNote("smaller caches push lookups onto the DMA path; the async pipeline hides the misses until PCIe bandwidth saturates (§4.3.2-4.3.3)")
	return r
}

func runAblateDm(opt Options) *Report {
	slots := 1 << 21
	if opt.Quick {
		slots = 1 << 18
	}
	n := slots * 9 / 10
	r := &Report{ID: "ablate-dm", Title: fmt.Sprintf("Robinhood Dm sweep, %d keys at 90%%", n),
		Header: []string{"Dm", "bytes/lookup (PCIe)", "roundtrips", "overflow %"}}
	dms := []int{4, 8, 16, 32, 64, 0}
	type sample struct {
		bytesPer, rtsPer, overflow float64
	}
	samples := runCells(opt, len(dms), func(i int, o Options) sample {
		dm := dms[i]
		cfg := robinhood.DefaultConfig(slots)
		cfg.MaxDisplacement = dm
		cfg.InlineValueSize = 64
		host := robinhood.New(cfg)
		rng := rand.New(rand.NewSource(o.Seed))
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = rng.Uint64()
			if err := host.Insert(keys[i], make([]byte, 64), 1); err != nil {
				panic(err)
			}
		}
		idx := nicindex.New(host, 0, 1)
		idx.SyncHints()
		var bytes, rts int64
		for _, k := range keys {
			res := idx.Lookup(k)
			for _, rd := range res.Reads {
				bytes += int64(rd.Bytes)
				if !rd.Large {
					rts++
				}
			}
		}
		return sample{
			bytesPer: float64(bytes) / float64(n),
			rtsPer:   float64(rts) / float64(n),
			overflow: 100 * float64(host.Stats().Overflows) / float64(n),
		}
	})
	for i, dm := range dms {
		s := samples[i]
		label := fmt.Sprintf("%d", dm)
		if dm == 0 {
			label = "none"
		}
		r.AddCells(Text(label),
			Num(s.bytesPer, fmt.Sprintf("%.0f", s.bytesPer)),
			Num(s.rtsPer, fmt.Sprintf("%.3f", s.rtsPer)),
			Num(s.overflow, fmt.Sprintf("%.2f%%", s.overflow)))
	}
	r.AddNote("small Dm trades probe bytes for overflow roundtrips; the paper picks Dm in the 8-32 range (Table 2)")
	return r
}

func runAblateK(opt Options) *Report {
	slots := 1 << 20
	if opt.Quick {
		slots = 1 << 17
	}
	r := &Report{ID: "ablate-k", Title: "Hint slack under concurrent insertions",
		Header: []string{"k", "second-read rate", "objects/lookup"}}
	ks := []int{0, 1, 2, 4}
	type sample struct {
		rate, objsPer float64
	}
	samples := runCells(opt, len(ks), func(i int, o Options) sample {
		k := ks[i]
		cfg := robinhood.DefaultConfig(slots)
		cfg.MaxDisplacement = 32
		host := robinhood.New(cfg)
		rng := rand.New(rand.NewSource(o.Seed))
		// Load to 85%, sync hints, then interleave inserts (which go
		// stale-ify hints) with lookups.
		base := slots * 85 / 100
		keys := make([]uint64, 0, base)
		for i := 0; i < base; i++ {
			kk := rng.Uint64()
			if err := host.Insert(kk, make([]byte, 16), 1); err != nil {
				panic(err)
			}
			keys = append(keys, kk)
		}
		idx := nicindex.New(host, 0, k)
		idx.SyncHints()
		extra := slots * 5 / 100
		var lookups, objs int64
		for i := 0; i < extra; i++ {
			kk := rng.Uint64()
			if err := host.Insert(kk, make([]byte, 16), 1); err != nil {
				panic(err)
			}
			keys = append(keys, kk)
			// A handful of lookups per insertion, as a running workload
			// would issue.
			for j := 0; j < 4; j++ {
				res := idx.Lookup(keys[rng.Intn(len(keys))])
				if !res.Found {
					panic("ablate-k: lost key")
				}
				if !res.CacheHit {
					lookups++
					objs += int64(res.ObjectsRead)
				}
			}
		}
		st := idx.Stats()
		rate := 0.0
		if st.DMALookups > 0 {
			rate = float64(st.SecondReads) / float64(st.DMALookups)
		}
		return sample{rate: 100 * rate, objsPer: float64(objs) / float64(lookups)}
	})
	for i, k := range ks {
		s := samples[i]
		r.AddCells(Count(k),
			Num(s.rate, fmt.Sprintf("%.3f%%", s.rate)),
			Num(s.objsPer, fmt.Sprintf("%.2f", s.objsPer)))
	}
	r.AddNote("k=0 pays frequent second reads when insertions raise displacements; k>=2 reads extra objects on every lookup — k=1 balances (§4.1.3)")
	return r
}
