package harness

import (
	"fmt"

	"xenic/internal/baseline"
	"xenic/internal/sim"
	"xenic/internal/txnmodel"
	"xenic/internal/workload/retwis"
	"xenic/internal/workload/smallbank"
	"xenic/internal/workload/tpcc"
)

// This file regenerates Figure 8: per-server throughput and median latency
// for TPC-C new-order (a), full TPC-C (b), Retwis (c), and Smallbank (d),
// comparing Xenic against DrTM+H, DrTM+H NC, FaSST, and DrTM+R.

func init() {
	register(&Experiment{
		ID:       "fig8a",
		Title:    "TPC-C new-order: throughput vs median latency",
		PaperRef: "Figure 8a: Xenic 1.19M txn/s/server, 2.42x DrTM+H, 3.81x NC; FaSST 232k",
		Run:      func(o Options) *Report { return runFig8(o, "fig8a") },
	})
	register(&Experiment{
		ID:       "fig8b",
		Title:    "Full TPC-C: new-order throughput vs median latency",
		PaperRef: "Figure 8b: Xenic 541k NO/s/server, ~25us median at low load; one-link vs DrTM+R 2.1x",
		Run:      func(o Options) *Report { return runFig8(o, "fig8b") },
	})
	register(&Experiment{
		ID:       "fig8c",
		Title:    "Retwis: throughput vs median latency",
		PaperRef: "Figure 8c: Xenic 2.07x DrTM+H, 42% lower latency; FaSST median 2.12x Xenic",
		Run:      func(o Options) *Report { return runFig8(o, "fig8c") },
	})
	register(&Experiment{
		ID:       "fig8d",
		Title:    "Smallbank: throughput vs median latency",
		PaperRef: "Figure 8d: Xenic 12.0M txn/s/server, 2.21x DrTM+H, 21.5% lower min median",
		Run:      func(o Options) *Report { return runFig8(o, "fig8d") },
	})
}

// workloadSetup describes one benchmark's cluster sizing.
type workloadSetup struct {
	name    string
	gen     func(quick bool) txnmodel.Generator
	app     int // Xenic host application threads
	workers int // Xenic host worker threads
	nic     int // Xenic NIC cores
	threads int // baseline host threads
	// windows are per-node outstanding-transaction targets (offered load
	// sweep); each system divides by its thread count.
	windows []int
	oneLink bool
}

func tpccGen(newOrderOnly, quick bool) txnmodel.Generator {
	var g *tpcc.Gen
	if newOrderOnly {
		g = tpcc.NewOrderVariant()
	} else {
		g = tpcc.New()
	}
	if quick {
		g.WarehousesPerServer = 12
		g.ItemsPerWarehouse = 500
		g.CustomersPerDistrict = 30
	}
	return g
}

func retwisGen(quick bool) txnmodel.Generator {
	g := retwis.New()
	g.KeysPerServer = 250_000
	if quick {
		g.KeysPerServer = 40_000
	}
	return g
}

func smallbankGen(quick bool) txnmodel.Generator {
	g := smallbank.New()
	g.AccountsPerServer = 250_000
	if quick {
		g.AccountsPerServer = 40_000
	}
	return g
}

func setupFor(id string) workloadSetup {
	switch id {
	case "fig8a":
		return workloadSetup{name: "tpcc-neworder",
			gen: func(q bool) txnmodel.Generator { return tpccGen(true, q) },
			app: 12, workers: 6, nic: 12, threads: 16,
			windows: []int{12, 24, 48, 96, 192}}
	case "fig8b":
		return workloadSetup{name: "tpcc",
			gen: func(q bool) txnmodel.Generator { return tpccGen(false, q) },
			app: 12, workers: 6, nic: 12, threads: 16,
			windows: []int{12, 24, 48, 96, 192}, oneLink: true}
	case "fig8c":
		return workloadSetup{name: "retwis",
			gen: func(q bool) txnmodel.Generator { return retwisGen(q) },
			app: 2, workers: 3, nic: 16, threads: 16,
			windows: []int{16, 32, 64, 128, 256, 512}}
	case "fig8d":
		return workloadSetup{name: "smallbank",
			gen: func(q bool) txnmodel.Generator { return smallbankGen(q) },
			app: 2, workers: 3, nic: 16, threads: 16,
			windows: []int{16, 32, 64, 128, 256, 512}}
	}
	panic("harness: unknown fig8 id " + id)
}

// point is one measured (throughput, latency) sample.
type point struct {
	window int
	tput   float64
	median sim.Time
}

func peak(ps []point) float64 {
	best := 0.0
	for _, p := range ps {
		if p.tput > best {
			best = p.tput
		}
	}
	return best
}

func lowLat(ps []point) sim.Time {
	if len(ps) == 0 {
		return 0
	}
	best := ps[0].median
	for _, p := range ps {
		if p.median > 0 && (best == 0 || p.median < best) {
			best = p.median
		}
	}
	return best
}

func runFig8(opt Options, id string) *Report {
	s := setupFor(id)
	warm, win := 3*sim.Millisecond, 10*sim.Millisecond
	windows := s.windows
	if opt.Quick {
		warm, win = 1*sim.Millisecond, 3*sim.Millisecond
		windows = []int{s.windows[0], s.windows[len(s.windows)/2], s.windows[len(s.windows)-2]}
	}
	r := &Report{ID: id, Title: s.name + ": per-server throughput vs median latency",
		Header: []string{"system", "window", "tput/server", "median"}}

	specs := fig8Specs(s, opt)
	series := runCurves(s, opt, specs, windows, warm, win)
	curves := map[string][]point{}
	for i, spec := range specs {
		curves[spec.name] = series[i]
		for _, p := range series[i] {
			r.AddCells(Text(spec.name), Count(p.window), Tput(p.tput), Micros(p.median))
		}
	}

	xPeak := peak(curves["Xenic"])
	if d := curves["DrTM+H"]; len(d) > 0 && peak(d) > 0 {
		r.AddNote("peak throughput: Xenic %s vs DrTM+H %s -> %.2fx (paper: %s)",
			ktps(xPeak), ktps(peak(d)), xPeak/peak(d), paperPeakRatio(id))
		xl, dl := lowLat(curves["Xenic"]), lowLat(d)
		if dl > 0 {
			r.AddNote("low-load median: Xenic %s vs DrTM+H %s -> %.0f%% lower (paper: %s)",
				us(xl), us(dl), 100*(1-xl.Seconds()/dl.Seconds()), paperLatGain(id))
		}
	}
	if f := curves["FaSST"]; len(f) > 0 && peak(f) > 0 {
		r.AddNote("FaSST peak %s (paper fig8a: 232k)", ktps(peak(f)))
	}

	if s.oneLink {
		// §5.3: one 50Gbps link, compare Xenic against DrTM+R.
		xe := runCurve(opt, []int{96}, warm, win,
			func(int) string { return s.name + "/xenic/one-link" },
			xenicBuilder(s, opt, true))[0].tput
		dr := runCurve(opt, []int{96}, warm, win,
			func(int) string { return s.name + "/DrTM+R/one-link" },
			baselineBuilder(baseline.DrTMR, s, opt, true))[0].tput
		ratio := 0.0
		if dr > 0 {
			ratio = xe / dr
		}
		r.AddNote("one-link (50Gbps): Xenic %s vs DrTM+R %s -> %.2fx (paper: 322k vs 150k, 2.1x)",
			ktps(xe), ktps(dr), ratio)
	}
	finishTelemetry(r, opt)
	if r.Bottlenecks != nil {
		// Name the limiting resource at the most contended point of the sweep:
		// the Xenic cell with the largest offered-load window.
		label := fmt.Sprintf("%s/xenic/w%d", s.name, windows[len(windows)-1])
		if v, ok := r.Bottlenecks[label]; ok {
			r.AddNote("bottleneck at window %d: %s", windows[len(windows)-1], v)
		}
	}
	return r
}

func paperPeakRatio(id string) string {
	switch id {
	case "fig8a":
		return "2.42x"
	case "fig8b":
		return "n/a (paper compares one-link vs DrTM+R)"
	case "fig8c":
		return "2.07x"
	case "fig8d":
		return "2.21x"
	}
	return "?"
}

func paperLatGain(id string) string {
	switch id {
	case "fig8a":
		return "59%"
	case "fig8b":
		return "~25us median at low load"
	case "fig8c":
		return "42%"
	case "fig8d":
		return "21.5%"
	}
	return "?"
}

func perThread(total, threads int) int {
	v := total / threads
	if v < 1 {
		v = 1
	}
	return v
}
