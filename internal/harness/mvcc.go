package harness

import (
	"fmt"

	"xenic"
	"xenic/internal/core"
	"xenic/internal/sim"
	"xenic/internal/txnmodel"
	"xenic/internal/workload/retwis"
	"xenic/internal/workload/smallbank"
)

// The mvcc experiment measures the DESIGN.md §12 claim: under a read-heavy,
// high-skew mix, routing read-only transactions through the lock-free MVCC
// snapshot path removes their aborts entirely (they never enter the lock
// table or validate) and lifts goodput, while the OCC path pays validation
// aborts that grow with contention. Each cell pair runs the identical
// workload and seed with MVCC off then on.

func init() {
	register(&Experiment{
		ID:       "mvcc",
		Title:    "MVCC snapshot reads: read-heavy high-skew sweep, OCC vs snapshot path",
		PaperRef: "DESIGN.md §12: lock-free read-only transactions at a consistent timestamp",
		Run:      runMVCCSweep,
	})
}

func runMVCCSweep(opt Options) *Report {
	warm, win := 2*sim.Millisecond, 8*sim.Millisecond
	if opt.Quick {
		warm, win = 1*sim.Millisecond, 3*sim.Millisecond
	}

	// Small populations and hard skew (Retwis Zipf alpha 0.9; Smallbank's
	// hot set shrunk to 1% taking 95% of traffic) keep the hot keys hot
	// enough that the OCC read path pays real validation aborts.
	type cellDef struct {
		workload string
		roFrac   float64
		gen      func() txnmodel.Generator
	}
	var defs []cellDef
	for _, ro := range []float64{0.8, 0.95} {
		ro := ro
		defs = append(defs, cellDef{"retwis", ro, func() txnmodel.Generator {
			g := retwis.New()
			// Large enough that the multi-write Retwis transactions do not
			// gridlock the lock table outright (which would gate throughput
			// on update latency for both paths), small and skewed enough
			// that the hot read set is update-contended.
			g.KeysPerServer = 4000
			g.Alpha = 0.9
			g.ReadOnlyFrac = ro
			return g
		}})
		defs = append(defs, cellDef{"smallbank", ro, func() txnmodel.Generator {
			g := smallbank.New()
			g.AccountsPerServer = 1000
			g.HotFrac, g.HotProb = 0.01, 0.95
			g.ReadOnlyFrac = ro
			return g
		}})
	}

	// Cells interleave off/on per definition: cell 2i is MVCC off, 2i+1 on.
	results := runCells(opt, 2*len(defs), func(i int, o Options) Result {
		d := defs[i/2]
		cfg := core.DefaultConfig()
		cfg.Nodes = 4
		cfg.Replication = 3
		cfg.AppThreads, cfg.WorkerThreads, cfg.NICCores = 2, 3, 8
		cfg.Outstanding = 16
		cfg.Seed = o.Seed
		cfg.MVCC = i%2 == 1
		tel := o.Telemetry.Sampler()
		cl, err := xenic.NewCluster(cfg, d.gen(), xenic.WithTelemetry(tel))
		if err != nil {
			panic(err)
		}
		res := cl.Measure(warm, win)
		label := fmt.Sprintf("mvcc/%s-ro%.0f-%s", d.workload, 100*d.roFrac, onOff(cfg.MVCC))
		o.Stats.Snap(label, cl.RegisterMetrics)
		o.Telemetry.Done(label, tel)
		return res
	})

	r := &Report{ID: "mvcc",
		Title:  "read-heavy high-skew sweep: OCC read path vs MVCC snapshot path",
		Header: []string{"workload", "ro-mix", "mvcc", "tput/server", "aborts", "ro-aborts", "snap-txns", "ro-p50", "ro-p99", "goodput"}}

	roAbortFree, goodputUp := true, true
	for i, d := range defs {
		off, on := results[2*i], results[2*i+1]
		gain := 0.0
		if off.PerServerTput > 0 {
			gain = on.PerServerTput / off.PerServerTput
		}
		r.AddCells(Text(d.workload), Text(fmt.Sprintf("%.0f%%", 100*d.roFrac)), Text("off"),
			Tput(off.PerServerTput), Count(int(off.Aborts)), Count(int(off.ROAborts)),
			Count(int(off.SnapCommitted)), Text("-"), Text("-"), Text("1.00x"))
		r.AddCells(Text(d.workload), Text(fmt.Sprintf("%.0f%%", 100*d.roFrac)), Text("on"),
			Tput(on.PerServerTput), Count(int(on.Aborts)), Count(int(on.ROAborts)),
			Count(int(on.SnapCommitted)), Micros(on.ROMedian), Micros(on.ROP99),
			Num(gain, fmt.Sprintf("%.2fx", gain)))
		if on.ROAborts != 0 {
			roAbortFree = false
		}
		if gain <= 1.0 {
			goodputUp = false
		}
	}
	if roAbortFree {
		r.AddNote("read-only aborts with MVCC on: 0 in every cell (snapshot reads never lock or validate)")
	} else {
		r.AddNote("FAILURE: read-only transactions aborted with MVCC on")
	}
	if goodputUp {
		r.AddNote("goodput improved in every off->on pair at this contention level")
	} else {
		r.AddNote("goodput did not improve in every pair; see the goodput column")
	}
	r.AddNote("MVCC-off cells leave the Result's read-only breakdown zero by design (byte-identical seed discipline); their RO traffic rides the OCC path inside the aborts column")
	finishTelemetry(r, opt)
	return r
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}
