package harness

import (
	"sync"
	"sync/atomic"
)

// cellsRun counts experiment cells executed process-wide, for wallbench's
// cells/sec metric.
var cellsRun atomic.Int64

// CellsRun returns the number of experiment cells executed so far in this
// process.
func CellsRun() int64 { return cellsRun.Load() }

// runCells runs n independent experiment cells on a bounded worker pool and
// returns their results in cell order. A cell is one (cluster build,
// measure) unit — a sweep point, an ablation row, a chaos plan — owning a
// private sim.Engine, so cells never share mutable state and running them
// concurrently cannot change any reported number.
//
// Determinism: results land in a slice indexed by cell, and each cell
// records stats into a private collector that is merged into opt.Stats in
// cell order after all cells finish. The only thing opt.Workers changes is
// wall-clock time.
//
// Error handling: a panicking cell stops the pool from dispatching further
// cells; in-flight cells finish, then the panic with the lowest cell index
// is re-raised on the caller's goroutine (so a deterministic failure
// surfaces identically at every worker count). Stats are not merged on
// failure.
func runCells[T any](opt Options, n int, run func(idx int, opt Options) T) []T {
	results := make([]T, n)
	if n == 0 {
		return results
	}
	subs := make([]*StatsCollector, n)
	tsubs := make([]*TelemetryCollector, n)
	cell := func(i int, o Options) {
		if o.Stats != nil {
			subs[i] = NewStatsCollector()
			o.Stats = subs[i]
		}
		if o.Telemetry != nil {
			tsubs[i] = NewTelemetryCollector(o.Telemetry.Interval)
			o.Telemetry = tsubs[i]
		}
		results[i] = run(i, o)
		cellsRun.Add(1)
	}

	workers := opt.Workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			cell(i, opt)
		}
	} else {
		var (
			mu       sync.Mutex
			next     int
			failIdx  = -1
			failWith any
			wg       sync.WaitGroup
		)
		worker := func() {
			defer wg.Done()
			for {
				mu.Lock()
				if failIdx >= 0 || next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if failIdx < 0 || i < failIdx {
								failIdx, failWith = i, r
							}
							mu.Unlock()
						}
					}()
					cell(i, opt)
				}()
			}
		}
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go worker()
		}
		wg.Wait()
		if failIdx >= 0 {
			panic(failWith)
		}
	}

	if opt.Stats != nil {
		for _, sub := range subs {
			opt.Stats.merge(sub)
		}
	}
	if opt.Telemetry != nil {
		for _, sub := range tsubs {
			opt.Telemetry.merge(sub)
		}
	}
	return results
}
