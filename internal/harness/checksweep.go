package harness

import (
	"fmt"

	"xenic"
	"xenic/internal/baseline"
	"xenic/internal/check"
	"xenic/internal/core"
	"xenic/internal/fault"
	"xenic/internal/sim"
	"xenic/internal/txnmodel"
	"xenic/internal/workload/retwis"
	"xenic/internal/workload/smallbank"
	"xenic/internal/workload/tpcc"
)

// checksweep drives Xenic and all four baselines over a grid of seeds,
// read-write workloads, and fault plans, recording every transaction into
// a check.History. Each cell must produce a serializable dependency graph
// (no cycles, no anomalies) and pass the system's drain-time state audit
// (no orphan locks, store versions matching the last committed writer).
// It is the paper's correctness claim — "Xenic preserves serializability"
// (§4) — as an executable sweep, not a benchmark.

func init() {
	register(&Experiment{
		ID:       "checksweep",
		Title:    "Serializability checker + state audit across systems, workloads, faults",
		PaperRef: "DESIGN.md §9: history checking vs the §4 serializability claim",
		Run:      runChecksweep,
	})
}

func runChecksweep(opt Options) *Report {
	const nodes = 4
	seeds := 3
	runFor := 3 * sim.Millisecond
	if opt.Quick {
		seeds = 1
	}

	workloads := []string{"tpcc", "smallbank", "retwis"}
	// Baselines only model network faults, so the faulty column injects a
	// lossy, duplicating network everywhere and adds NIC/DMA chaos (random
	// plan: crashes, stalls, partitions) on the Xenic cells only. The
	// restart column audits the rejoin path: a Xenic node crashes, is
	// evicted and replaced, then restarts and re-replicates under load —
	// every transaction before, during, and after the state transfer must
	// still serialize. Baselines cannot crash, so their restart cells rerun
	// the network plan.
	netPlan, err := fault.Parse("drop=0.02,dup=0.01")
	if err != nil {
		panic(err)
	}
	restartPlan, err := fault.Parse("crash=2@500us,restart=2@3ms")
	if err != nil {
		panic(err)
	}
	plans := []string{"none", "faulty", "restart"}
	systems := []string{"xenic", baseline.DrTMH.String(), baseline.DrTMHNC.String(),
		baseline.FaSST.String(), baseline.DrTMR.String()}

	type outcome struct {
		txns int
		err  error
	}
	perSeed := len(workloads) * len(plans) * len(systems)
	cellAt := func(seed, w, p, s int) int {
		return ((seed*len(workloads)+w)*len(plans)+p)*len(systems) + s
	}
	outcomes := runCells(opt, seeds*perSeed, func(i int, o Options) outcome {
		s := i % len(systems)
		p := i / len(systems) % len(plans)
		w := i / (len(systems) * len(plans)) % len(workloads)
		seed := o.Seed + int64(i/perSeed)

		var gen txnmodel.Generator
		switch workloads[w] {
		case "tpcc":
			g := tpcc.New()
			g.WarehousesPerServer = 2
			gen = g
		case "smallbank":
			g := smallbank.New()
			g.AccountsPerServer = 2000
			gen = g
		default:
			g := retwis.New()
			g.KeysPerServer = 2000
			gen = g
		}

		var out outcome
		if systems[s] == "xenic" {
			var plan *fault.Plan
			cellFor := runFor
			switch plans[p] {
			case "faulty":
				plan = fault.RandomPlan(seed, nodes)
			case "restart":
				// Run past the rejoin so load flows while the restarted node
				// pulls state and after it is re-admitted.
				plan = restartPlan
				cellFor = 6 * sim.Millisecond
			}
			out.txns, out.err = checkXenic(seed, plan, gen, cellFor)
		} else {
			var plan *fault.Plan
			if plans[p] != "none" {
				plan = netPlan
			}
			out.txns, out.err = checkBaseline(s-1, seed, plan, gen, runFor)
		}
		return out
	})

	r := &Report{ID: "checksweep",
		Title: fmt.Sprintf("%d seeds x %d workloads x %d fault plans x %d systems",
			seeds, len(workloads), len(plans), len(systems)),
		Header: []string{"system", "workload", "faults", "txns", "result"}}
	fails := 0
	for s := range systems {
		for w := range workloads {
			for p := range plans {
				txns, verdict := 0, "serializable, audits clean"
				for seed := 0; seed < seeds; seed++ {
					out := outcomes[cellAt(seed, w, p, s)]
					txns += out.txns
					if out.err != nil && verdict == "serializable, audits clean" {
						fails++
						verdict = fmt.Sprintf("seed %d: %v", opt.Seed+int64(seed), out.err)
					}
				}
				r.AddRow(systems[s], workloads[w], plans[p], fmt.Sprintf("%d", txns), verdict)
			}
		}
	}
	if fails == 0 {
		r.AddNote("every cell produced an acyclic dependency graph, clean SI snapshot visibility, and a clean drain-time audit")
	} else {
		r.AddNote("FAILURES: %d cell group(s) violated serializability or the state audit", fails)
	}
	r.AddNote("restart cells crash, evict, restart, and re-replicate a Xenic node mid-history; baselines cannot crash, so theirs rerun the network plan")
	r.AddNote("sweep checks correctness only; cell throughput is not comparable to the paper's numbers")
	return r
}

// checkXenic runs one Xenic cell with a history attached and returns the
// committed-transaction count plus any checker/audit failure.
func checkXenic(seed int64, plan *fault.Plan, gen txnmodel.Generator, runFor sim.Time) (int, error) {
	cfg := core.DefaultConfig()
	cfg.Nodes = 4
	cfg.Replication = 3
	cfg.AppThreads, cfg.WorkerThreads, cfg.NICCores = 2, 2, 4
	cfg.Outstanding = 4
	cfg.Seed = seed
	cfg.Faults = plan
	// Snapshot reads on: pure-read transactions (Retwis get-timeline,
	// Smallbank Balance) take the lock-free MVCC path, so the checker's SI
	// visibility pass sweeps alongside the serialization graph.
	cfg.MVCC = true
	h := check.NewHistory()
	cl, err := xenic.NewCluster(cfg, gen, xenic.WithHistory(h))
	if err != nil {
		return 0, err
	}
	cl.Start()
	cl.Run(runFor)
	if !cl.Drain(100 * sim.Millisecond) {
		return h.Len(), fmt.Errorf("did not drain")
	}
	return h.Len(), verify(h, cl.AuditHistory)
}

// checkBaseline runs one baseline cell (sys indexes DrTMH..DrTMR) the same
// way.
func checkBaseline(sys int, seed int64, plan *fault.Plan, gen txnmodel.Generator, runFor sim.Time) (int, error) {
	order := []baseline.System{baseline.DrTMH, baseline.DrTMHNC, baseline.FaSST, baseline.DrTMR}
	cfg := baseline.DefaultConfig(order[sys])
	cfg.Nodes = 4
	cfg.Replication = 3
	cfg.Threads = 4
	cfg.Outstanding = 4
	cfg.Seed = seed
	cfg.Faults = plan
	h := check.NewHistory()
	cl, err := xenic.NewBaseline(cfg, gen, xenic.WithHistory(h))
	if err != nil {
		return 0, err
	}
	cl.Start()
	cl.Run(runFor)
	if !cl.Drain(100 * sim.Millisecond) {
		return h.Len(), fmt.Errorf("did not drain")
	}
	return h.Len(), verify(h, cl.AuditHistory)
}

// verify runs the serializability checker and the drain-time audit,
// requiring a non-vacuous history.
func verify(h *check.History, audit func() error) error {
	if h.Len() == 0 {
		return fmt.Errorf("history recorded nothing")
	}
	if err := h.Check().Err(); err != nil {
		return err
	}
	return audit()
}
