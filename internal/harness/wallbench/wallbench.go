// Package wallbench measures the harness itself rather than the simulated
// hardware: wall-clock time and cell throughput of a quick experiment
// sweep, peak RSS, and the per-op cost and allocation counts of the engine
// hot paths (event scheduling, frame delivery, DMA completion).
// cmd/xenic-bench -wallbench writes the result as BENCH_harness.json; CI
// compares a fresh run against the committed baseline and fails on
// regression.
package wallbench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"xenic/internal/harness"
	"xenic/internal/model"
	"xenic/internal/pcie"
	"xenic/internal/sim"
	"xenic/internal/simnet"
)

// EngineBench is one engine hot-path benchmark result.
type EngineBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Result is the BENCH_harness.json document.
type Result struct {
	Experiments []string `json:"experiments"`
	Workers     int      `json:"workers"`
	Seed        int64    `json:"seed"`
	Quick       bool     `json:"quick"`
	Telemetry   bool     `json:"telemetry"`
	GoMaxProcs  int      `json:"gomaxprocs"`

	WallSeconds  float64 `json:"wall_seconds"`
	Cells        int64   `json:"cells"`
	CellsPerSec  float64 `json:"cells_per_sec"`
	PeakRSSBytes int64   `json:"peak_rss_bytes"`

	Engine []EngineBench `json:"engine"`
}

// DefaultSweep is the experiment set timed by default: small enough for CI,
// broad enough to exercise the cluster, microbench, and store paths.
func DefaultSweep() []string { return []string{"fig2", "fig4", "table2"} }

// Run times a sweep of the named experiments under opt and collects the
// engine hot-path benchmarks. When opt.Telemetry is set, every experiment
// runs with a fresh telemetry collector at the same interval — the point is
// to time the sampling overhead (CI gates telemetry-on cells/sec against a
// telemetry-off baseline), so the collected series are discarded.
func Run(opt harness.Options, ids []string) (*Result, error) {
	res := &Result{
		Experiments: ids,
		Workers:     opt.Workers,
		Seed:        opt.Seed,
		Quick:       opt.Quick,
		Telemetry:   opt.Telemetry != nil,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}
	exps := make([]*harness.Experiment, 0, len(ids))
	for _, id := range ids {
		e, ok := harness.ByID(id)
		if !ok {
			return nil, fmt.Errorf("wallbench: unknown experiment %q", id)
		}
		exps = append(exps, e)
	}
	cells0 := harness.CellsRun()
	start := time.Now()
	for _, e := range exps {
		o := opt
		if opt.Telemetry != nil {
			o.Telemetry = harness.NewTelemetryCollector(opt.Telemetry.Interval)
		}
		e.Run(o)
	}
	res.WallSeconds = time.Since(start).Seconds()
	res.Cells = harness.CellsRun() - cells0
	if res.WallSeconds > 0 {
		res.CellsPerSec = float64(res.Cells) / res.WallSeconds
	}
	res.PeakRSSBytes = peakRSS()
	res.Engine = engineBenches()
	return res, nil
}

// Check compares a fresh result against the committed baseline at path.
// It returns an error when cells/sec fell more than frac below the
// baseline, or when an engine hot path allocates more per op than the
// baseline recorded (the alloc gate is exact: the hot paths are
// allocation-free and must stay that way).
func Check(res *Result, path string, frac float64) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Result
	if err := json.Unmarshal(b, &base); err != nil {
		return fmt.Errorf("wallbench: parse baseline %s: %w", path, err)
	}
	if base.CellsPerSec > 0 {
		floor := base.CellsPerSec * (1 - frac)
		if res.CellsPerSec < floor {
			return fmt.Errorf("wallbench: cells/sec regressed: %.2f < floor %.2f (baseline %.2f - %.0f%%)",
				res.CellsPerSec, floor, base.CellsPerSec, 100*frac)
		}
	}
	baseAllocs := map[string]int64{}
	for _, e := range base.Engine {
		baseAllocs[e.Name] = e.AllocsPerOp
	}
	for _, e := range res.Engine {
		if want, ok := baseAllocs[e.Name]; ok && e.AllocsPerOp > want {
			return fmt.Errorf("wallbench: %s allocates %d/op, baseline %d/op", e.Name, e.AllocsPerOp, want)
		}
	}
	return nil
}

// engineBenches runs the hot-path microbenchmarks. They mirror the
// Benchmark* functions in the sim, simnet, and pcie packages' test files,
// so the committed BENCH_harness.json tracks the same numbers `go test
// -bench` reports.
func engineBenches() []EngineBench {
	return []EngineBench{
		runBench("sim/schedule", benchSchedule),
		runBench("simnet/frame-delivery", benchFrameDelivery),
		runBench("pcie/dma-completion", benchDMACompletion),
	}
}

func runBench(name string, fn func(b *testing.B)) EngineBench {
	r := testing.Benchmark(fn)
	out := EngineBench{Name: name, AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp()}
	if r.N > 0 {
		out.NsPerOp = float64(r.T.Nanoseconds()) / float64(r.N)
	}
	return out
}

// benchSchedule: one event scheduled and dispatched per op.
func benchSchedule(b *testing.B) {
	e := sim.NewEngine(1)
	fn := func() {}
	for i := 0; i < b.N; i++ {
		e.At(e.Now()+1, fn)
		e.Step()
	}
}

// benchFrameDelivery: one frame's full life cycle per op — NewFrame, Send,
// delivery, Recycle.
func benchFrameDelivery(b *testing.B) {
	eng := sim.NewEngine(1)
	nw := simnet.New(eng, model.Default(), 2)
	nw.Attach(0, func(f *simnet.Frame) {})
	nw.Attach(1, func(f *simnet.Frame) { nw.Recycle(f) })
	msg := struct{ x int }{42}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := nw.NewFrame()
		f.Src, f.Dst, f.PayloadBytes, f.Flow = 0, 1, 256, 7
		f.Msgs = append(f.Msgs, &msg)
		nw.Send(f)
		eng.RunAll()
	}
}

// benchDMACompletion: one vector submission plus completion dispatch per
// op, with the vector reused as the NIC runtime's freelists do.
func benchDMACompletion(b *testing.B) {
	eng := sim.NewEngine(1)
	d := pcie.New(eng, model.Default())
	v := &pcie.Vector{Write: true, Sizes: []int{64, 128, 256, 512}, Complete: func() {}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Submit(0, v)
		eng.RunAll()
	}
}
