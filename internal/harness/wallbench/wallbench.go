// Package wallbench measures the harness itself rather than the simulated
// hardware: wall-clock time and cell throughput of a quick experiment
// sweep, peak RSS, and the per-op cost and allocation counts of the engine
// hot paths (event scheduling, frame delivery, DMA completion).
// cmd/xenic-bench -wallbench writes the result as BENCH_harness.json; CI
// compares a fresh run against the committed baseline and fails on
// regression.
package wallbench

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"xenic/internal/core"
	"xenic/internal/harness"
	"xenic/internal/model"
	"xenic/internal/pcie"
	"xenic/internal/sim"
	"xenic/internal/simnet"
	"xenic/internal/txnmodel"
	"xenic/internal/wire"
	"xenic/internal/workload/smallbank"
)

// EngineBench is one engine hot-path benchmark result.
type EngineBench struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// MVCCBench is the version-chain overhead A/B: one update-only cell (no
// read-only transactions, so every commit drives the ApplyTS chain hold)
// run on the same runner with MVCC off and then on. Two ratios come out:
//
//   - EventsOverhead: the on/off ratio of simulator events processed. For a
//     fixed seed this is exactly reproducible on any machine, so it is the
//     gated number — it measures the simulated work version chains add to
//     the update path (extra DMA charges, messages, wakeups).
//   - Overhead: the on/off wall-time ratio, reported for humans. Shared
//     1-vCPU CI runners jitter wall time by ±15% run to run, so this only
//     gets the same loose variance allowance as the cells/sec gate.
type MVCCBench struct {
	OffSeconds     float64 `json:"off_seconds"`
	OnSeconds      float64 `json:"on_seconds"`
	Overhead       float64 `json:"overhead"`
	OffEvents      uint64  `json:"off_events"`
	OnEvents       uint64  `json:"on_events"`
	EventsOverhead float64 `json:"events_overhead"`
}

// Result is the BENCH_harness.json document.
type Result struct {
	Experiments []string `json:"experiments"`
	Workers     int      `json:"workers"`
	Seed        int64    `json:"seed"`
	Quick       bool     `json:"quick"`
	Telemetry   bool     `json:"telemetry"`
	GoMaxProcs  int      `json:"gomaxprocs"`

	WallSeconds  float64 `json:"wall_seconds"`
	Cells        int64   `json:"cells"`
	CellsPerSec  float64 `json:"cells_per_sec"`
	PeakRSSBytes int64   `json:"peak_rss_bytes"`

	Engine []EngineBench `json:"engine"`
	MVCC   MVCCBench     `json:"mvcc"`
}

// mvccOverheadBudget caps the deterministic simulated-work overhead of the
// update-only A/B cell at 5%: MVCC-on may process at most 5% more simulator
// events than MVCC-off. Event counts are reproducible for a fixed seed, so
// no hardware variance allowance applies to this gate.
const mvccOverheadBudget = 0.05

// DefaultSweep is the experiment set timed by default: small enough for CI,
// broad enough to exercise the cluster, microbench, and store paths.
func DefaultSweep() []string { return []string{"fig2", "fig4", "table2"} }

// Run times a sweep of the named experiments under opt and collects the
// engine hot-path benchmarks. When opt.Telemetry is set, every experiment
// runs with a fresh telemetry collector at the same interval — the point is
// to time the sampling overhead (CI gates telemetry-on cells/sec against a
// telemetry-off baseline), so the collected series are discarded.
func Run(opt harness.Options, ids []string) (*Result, error) {
	res := &Result{
		Experiments: ids,
		Workers:     opt.Workers,
		Seed:        opt.Seed,
		Quick:       opt.Quick,
		Telemetry:   opt.Telemetry != nil,
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}
	exps := make([]*harness.Experiment, 0, len(ids))
	for _, id := range ids {
		e, ok := harness.ByID(id)
		if !ok {
			return nil, fmt.Errorf("wallbench: unknown experiment %q", id)
		}
		exps = append(exps, e)
	}
	cells0 := harness.CellsRun()
	start := time.Now()
	for _, e := range exps {
		o := opt
		if opt.Telemetry != nil {
			o.Telemetry = harness.NewTelemetryCollector(opt.Telemetry.Interval)
		}
		e.Run(o)
	}
	res.WallSeconds = time.Since(start).Seconds()
	res.Cells = harness.CellsRun() - cells0
	if res.WallSeconds > 0 {
		res.CellsPerSec = float64(res.Cells) / res.WallSeconds
	}
	res.PeakRSSBytes = peakRSS()
	res.Engine = engineBenches()
	res.MVCC = mvccAB(opt.Seed)
	return res, nil
}

// mvccAB times the version-chain A/B cell: an update-only Smallbank cluster
// (ReadOnlyFrac < 0 strips the Balance transactions, so every commit walks
// the ApplyTS chain hold) measured with MVCC off, then on. Single-run wall
// times on shared CI runners are noisy at this scale, so the arms interleave
// over several rounds and each keeps its best time — the floor is the run
// least disturbed by scheduler and GC transients, and both arms' floors are
// comparable.
func mvccAB(seed int64) MVCCBench {
	runArm := func(mvcc bool) (float64, uint64) {
		g := smallbank.New()
		g.AccountsPerServer = 5000
		g.ReadOnlyFrac = -1
		cfg := core.DefaultConfig()
		cfg.Nodes = 4
		cfg.Replication = 3
		cfg.AppThreads, cfg.WorkerThreads, cfg.NICCores = 2, 2, 4
		cfg.Outstanding = 8
		cfg.Seed = seed
		cfg.MVCC = mvcc
		cl, err := core.New(cfg, g)
		if err != nil {
			panic(fmt.Sprintf("wallbench: mvcc A/B cell: %v", err))
		}
		// Collect the previous arm's garbage outside the timed window so
		// neither arm pays GC debt the other one ran up.
		runtime.GC()
		start := time.Now()
		cl.Measure(500*sim.Microsecond, 4*sim.Millisecond)
		return time.Since(start).Seconds(), cl.Engine().Events()
	}
	out := MVCCBench{OffSeconds: -1, OnSeconds: -1}
	for round := 0; round < 3; round++ {
		off, offEv := runArm(false)
		if out.OffSeconds < 0 || off < out.OffSeconds {
			out.OffSeconds = off
		}
		out.OffEvents = offEv
		on, onEv := runArm(true)
		if out.OnSeconds < 0 || on < out.OnSeconds {
			out.OnSeconds = on
		}
		out.OnEvents = onEv
	}
	if out.OffSeconds > 0 {
		out.Overhead = out.OnSeconds / out.OffSeconds
	}
	if out.OffEvents > 0 {
		out.EventsOverhead = float64(out.OnEvents) / float64(out.OffEvents)
	}
	return out
}

// Check compares a fresh result against the committed baseline at path.
// It returns an error when cells/sec fell more than frac below the
// baseline, or when an engine hot path allocates more per op than the
// baseline recorded (the alloc gate is exact: the hot paths are
// allocation-free and must stay that way).
func Check(res *Result, path string, frac float64) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Result
	if err := json.Unmarshal(b, &base); err != nil {
		return fmt.Errorf("wallbench: parse baseline %s: %w", path, err)
	}
	if base.CellsPerSec > 0 {
		floor := base.CellsPerSec * (1 - frac)
		if res.CellsPerSec < floor {
			return fmt.Errorf("wallbench: cells/sec regressed: %.2f < floor %.2f (baseline %.2f - %.0f%%)",
				res.CellsPerSec, floor, base.CellsPerSec, 100*frac)
		}
	}
	baseAllocs := map[string]int64{}
	for _, e := range base.Engine {
		baseAllocs[e.Name] = e.AllocsPerOp
	}
	allocs := map[string]int64{}
	for _, e := range res.Engine {
		allocs[e.Name] = e.AllocsPerOp
		if want, ok := baseAllocs[e.Name]; ok && e.AllocsPerOp > want {
			return fmt.Errorf("wallbench: %s allocates %d/op, baseline %d/op", e.Name, e.AllocsPerOp, want)
		}
	}
	// Version-chain gates. The 0-alloc hold: maintaining the chain must add
	// no allocations over the plain apply path (the one fresh-buffer insert
	// in the hash table is the pre-MVCC cost; the chain packs displaced
	// values into a per-key buffer). The work gate: the update-only A/B's
	// deterministic event-count overhead must stay within the fixed budget.
	// The A/B's wall-time ratio is reported but not gated — shared runners
	// jitter wall time far more than any real chain cost, and a CPU-side
	// regression surfaces in the gated cells/sec and alloc numbers anyway.
	if mv, pl, ok := allocsOf(allocs, "store/mvcc-apply", "store/apply"); ok && mv > pl {
		return fmt.Errorf("wallbench: version-chain hold allocates: store/mvcc-apply %d/op > store/apply %d/op", mv, pl)
	}
	if o := res.MVCC.EventsOverhead; o > 1+mvccOverheadBudget {
		return fmt.Errorf("wallbench: MVCC update-path overhead %.1f%% of simulated work exceeds the %.0f%% budget (events off %d, on %d)",
			100*(o-1), 100*mvccOverheadBudget, res.MVCC.OffEvents, res.MVCC.OnEvents)
	}
	return nil
}

// allocsOf fetches two engine benches' allocs/op, reporting whether both ran.
func allocsOf(m map[string]int64, a, b string) (int64, int64, bool) {
	av, aok := m[a]
	bv, bok := m[b]
	return av, bv, aok && bok
}

// engineBenches runs the hot-path microbenchmarks. They mirror the
// Benchmark* functions in the sim, simnet, and pcie packages' test files,
// so the committed BENCH_harness.json tracks the same numbers `go test
// -bench` reports.
func engineBenches() []EngineBench {
	return []EngineBench{
		runBench("sim/schedule", benchSchedule),
		runBench("simnet/frame-delivery", benchFrameDelivery),
		runBench("pcie/dma-completion", benchDMACompletion),
		runBench("store/apply", benchStoreApply),
		runBench("store/mvcc-apply", benchMVCCApply),
	}
}

func runBench(name string, fn func(b *testing.B)) EngineBench {
	r := testing.Benchmark(fn)
	out := EngineBench{Name: name, AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp()}
	if r.N > 0 {
		out.NsPerOp = float64(r.T.Nanoseconds()) / float64(r.N)
	}
	return out
}

// benchSchedule: one event scheduled and dispatched per op.
func benchSchedule(b *testing.B) {
	e := sim.NewEngine(1)
	fn := func() {}
	for i := 0; i < b.N; i++ {
		e.At(e.Now()+1, fn)
		e.Step()
	}
}

// benchFrameDelivery: one frame's full life cycle per op — NewFrame, Send,
// delivery, Recycle.
func benchFrameDelivery(b *testing.B) {
	eng := sim.NewEngine(1)
	nw := simnet.New(eng, model.Default(), 2)
	nw.Attach(0, func(f *simnet.Frame) {})
	nw.Attach(1, func(f *simnet.Frame) { nw.Recycle(f) })
	msg := struct{ x int }{42}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := nw.NewFrame()
		f.Src, f.Dst, f.PayloadBytes, f.Flow = 0, 1, 256, 7
		f.Msgs = append(f.Msgs, &msg)
		nw.Send(f)
		eng.RunAll()
	}
}

// benchPlace is the trivial single-shard hash placement for the store
// benchmarks.
type benchPlace struct{}

func (benchPlace) ShardOf(key uint64) int  { return 0 }
func (benchPlace) IsBTree(key uint64) bool { return false }

func benchShard() *core.ShardData {
	spec := txnmodel.StoreSpec{HashSlots: 4096, InlineValueSize: 16, MaxDisplacement: 16}
	return core.NewShardData(spec, benchPlace{})
}

// benchStoreApply: one committed-write install per op on the plain (MVCC-off)
// path — the baseline the version-chain hold is gated against.
func benchStoreApply(b *testing.B) {
	sd := benchShard()
	val := make([]byte, 8)
	sd.Apply(wire.KV{Key: 1, Value: val, Version: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := uint64(2 + i)
		binary.LittleEndian.PutUint64(val, v)
		sd.Apply(wire.KV{Key: 1, Value: val, Version: v})
	}
}

// benchMVCCApply: one committed-write install per op with the key's version
// chain held at its retention cap, so every op displaces the row into the
// chain and recycles the tail entry's buffer. Mirrors core's
// BenchmarkMVCCApplyTS; CI gates its allocs/op to equal store/apply's — the
// chain hold itself must be allocation-free.
func benchMVCCApply(b *testing.B) {
	sd := benchShard()
	const keep = 8
	val := make([]byte, 8)
	for i := uint64(0); i <= keep; i++ {
		binary.LittleEndian.PutUint64(val, i)
		sd.ApplyTS(wire.KV{Key: 1, Value: val, Version: i + 1}, i+1, keep, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := uint64(keep + 2 + i)
		binary.LittleEndian.PutUint64(val, v)
		sd.ApplyTS(wire.KV{Key: 1, Value: val, Version: v}, v, keep, 1)
	}
}

// benchDMACompletion: one vector submission plus completion dispatch per
// op, with the vector reused as the NIC runtime's freelists do.
func benchDMACompletion(b *testing.B) {
	eng := sim.NewEngine(1)
	d := pcie.New(eng, model.Default())
	v := &pcie.Vector{Write: true, Sizes: []int{64, 128, 256, 512}, Complete: func() {}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Submit(0, v)
		eng.RunAll()
	}
}
