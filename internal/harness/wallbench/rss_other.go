//go:build !linux

package wallbench

// peakRSS is only implemented on Linux; elsewhere the field stays zero.
func peakRSS() int64 { return 0 }
