//go:build linux

package wallbench

import "syscall"

// peakRSS returns the process's maximum resident set size in bytes.
func peakRSS() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Maxrss * 1024 // the kernel reports kilobytes
}
