// Package cpubench models the CPU comparison of Table 1: Coremark and
// DPDK-test-suite kernels on the LiquidIO's 24-thread 2.2GHz ARM CPU versus
// the host's 32-thread 2.3GHz Xeon Gold 5218.
//
// The hardware substitution here is explicit: we cannot run Coremark on an
// ARM SoC inside a simulator, so each kernel is a fixed number of abstract
// work units, and a core model supplies per-unit execution time. The model
// has two calibrated constants from the paper's measurements: the
// single-thread speed ratio (~2.0x, Xeon:ARM) and the all-cores per-thread
// ratio (~3.3x, reflecting the ARM's shared-resource contention). Table 1
// regenerated from this model is the consistency check that those constants
// — which the rest of the simulation relies on via model.Params.NICCoreSpeed
// — reproduce the paper's measurements.
package cpubench

import "fmt"

// CPU describes one processor for the model.
type CPU struct {
	Name    string
	Threads int
	// UnitsPerSec is single-thread throughput in abstract work units/sec.
	UnitsPerSec float64
	// MultiEff is per-thread efficiency with all threads active (1.0 =
	// perfect scaling; the LiquidIO's ARM loses ~39% per thread).
	MultiEff float64
}

// LiquidIO returns the modeled 24-core ARM SoC, calibrated so the Coremark
// scores land at the paper's 4530 (multi, per thread) and 14294 (single).
func LiquidIO() CPU {
	return CPU{Name: "ARM (LiquidIO 3)", Threads: 24, UnitsPerSec: 14294, MultiEff: 0.317}
}

// Xeon returns the modeled host CPU: Coremark 29193 single-thread, 14771
// per thread with all 32 hyperthreads active.
func Xeon() CPU {
	return CPU{Name: "Xeon Gold 5218", Threads: 32, UnitsPerSec: 29193, MultiEff: 0.506}
}

// Kernel is one Table 1 row's workload in abstract units.
type Kernel struct {
	Name string
	// Multi selects all-cores mode (per-thread throughput with contention).
	Multi bool
	// Units is per-thread work; Seconds-style kernels (DPDK perf tests
	// report completion time) set Time=true.
	Units float64
	Time  bool
	// Skew multiplies the ARM's per-unit cost relative to pure compute
	// (memory-bound kernels deviate from the Coremark ratio; calibrated
	// per row from the paper's reported times).
	Skew float64
}

// Kernels returns the Table 1 rows (same order as the paper).
func Kernels() []Kernel {
	return []Kernel{
		{Name: "Coremark", Multi: true, Units: 1, Skew: 1.0},
		{Name: "DPDK hash_perf", Multi: true, Units: 1.597e6, Time: true, Skew: 0.992},
		{Name: "DPDK readwrite_lf_perf", Multi: true, Units: 0.775e6, Time: true, Skew: 1.050},
		{Name: "Coremark", Units: 1, Skew: 1.0},
		{Name: "DPDK memcpy_perf", Units: 5.091e6, Time: true, Skew: 0.915},
		{Name: "DPDK rand_perf", Units: 0.0847e6, Time: true, Skew: 1.266},
		{Name: "DPDK hash_perf", Units: 2.452e6, Time: true, Skew: 1.087},
	}
}

// Result is one benchmark row.
type Result struct {
	Kernel string
	Cores  string // "single" or "multi"
	ARM    float64
	Xeon   float64
	Ratio  float64 // Xeon per-thread advantage
}

// throughput is per-thread units/sec for the given mode.
func throughput(c CPU, multi bool) float64 {
	if multi {
		return c.UnitsPerSec * c.MultiEff
	}
	return c.UnitsPerSec
}

// Run evaluates kernel k on both CPUs.
func Run(k Kernel) Result {
	arm, xeon := LiquidIO(), Xeon()
	armTput := throughput(arm, k.Multi) / k.Skew
	xeonTput := throughput(xeon, k.Multi)
	r := Result{Kernel: k.Name, Cores: "single"}
	if k.Multi {
		r.Cores = "multi"
	}
	if k.Time {
		// DPDK tests report seconds to complete fixed per-thread work:
		// lower is better; the ratio is still Xeon-per-thread advantage.
		r.ARM = k.Units / armTput
		r.Xeon = k.Units / xeonTput
		r.Ratio = r.ARM / r.Xeon
		return r
	}
	// Score-style (Coremark): higher is better.
	r.ARM = armTput * k.Units
	r.Xeon = xeonTput * k.Units
	r.Ratio = r.Xeon / r.ARM
	return r
}

// CoremarkRatio returns the multi-thread per-thread normalization constant
// used by §5.6 (the paper reports 0.31x ARM:Xeon).
func CoremarkRatio() float64 {
	r := Run(Kernels()[0])
	return 1 / r.Ratio
}

// Rows evaluates the Table 1 rows in the paper's order.
func Rows() []Result {
	ks := Kernels()
	out := make([]Result, len(ks))
	for i, k := range ks {
		out[i] = Run(k)
	}
	return out
}

func (r Result) String() string {
	return fmt.Sprintf("%-24s %-6s ARM=%.1f Xeon=%.1f ratio=%.2fx", r.Kernel, r.Cores, r.ARM, r.Xeon, r.Ratio)
}
