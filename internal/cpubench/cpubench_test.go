package cpubench

import "testing"

func TestCoremarkScoresMatchPaper(t *testing.T) {
	rows := Rows()
	multi := rows[0]
	if multi.ARM < 4400 || multi.ARM > 4700 {
		t.Fatalf("ARM multi Coremark %f, paper: 4530", multi.ARM)
	}
	if multi.Xeon < 14500 || multi.Xeon > 15100 {
		t.Fatalf("Xeon multi Coremark %f, paper: 14771", multi.Xeon)
	}
	if multi.Ratio < 3.1 || multi.Ratio > 3.4 {
		t.Fatalf("multi ratio %.2f, paper: 3.3", multi.Ratio)
	}
	single := rows[3]
	if single.Ratio < 1.9 || single.Ratio > 2.2 {
		t.Fatalf("single ratio %.2f, paper: 2.0", single.Ratio)
	}
}

func TestCoremarkRatioMatchesModelParams(t *testing.T) {
	// §5.6 uses 0.31; the simulation's NICCoreSpeed must agree with the
	// cpubench model it is justified by.
	r := CoremarkRatio()
	if r < 0.29 || r < 0.0 || r > 0.33 {
		t.Fatalf("Coremark normalization %.3f, paper: 0.31", r)
	}
}

func TestDPDKRatiosInPaperRange(t *testing.T) {
	rows := Rows()
	// Multi-threaded DPDK tests: 3.2-3.4x; single: 2.0-2.6x.
	for _, r := range rows[1:3] {
		if r.Ratio < 3.1 || r.Ratio > 3.5 {
			t.Errorf("%s multi ratio %.2f outside 3.2-3.4", r.Kernel, r.Ratio)
		}
	}
	for _, r := range rows[4:] {
		if r.Ratio < 1.8 || r.Ratio > 2.7 {
			t.Errorf("%s single ratio %.2f outside ~2.0-2.6", r.Kernel, r.Ratio)
		}
	}
}

func TestTimeKernelsReportSeconds(t *testing.T) {
	// hash_perf multi: paper reports 349.8s ARM vs 108.1s Xeon.
	r := Rows()[1]
	if r.ARM < 300 || r.ARM > 400 {
		t.Fatalf("hash_perf ARM %.1fs, paper: 349.8s", r.ARM)
	}
	if r.Xeon < 90 || r.Xeon > 130 {
		t.Fatalf("hash_perf Xeon %.1fs, paper: 108.1s", r.Xeon)
	}
}

func TestStringer(t *testing.T) {
	if Rows()[0].String() == "" {
		t.Fatal("empty string")
	}
}
