package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"xenic/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files")

// jsonEvent mirrors the wire shape of one emitted trace event.
type jsonEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   *float64       `json:"ts"`
	Dur  *float64       `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id"`
	S    string         `json:"s"`
	Args map[string]any `json:"args"`
}

type jsonDoc struct {
	DisplayTimeUnit string      `json:"displayTimeUnit"`
	TraceEvents     []jsonEvent `json:"traceEvents"`
}

// buildSample emits the event shapes core produces: a two-node committed
// transaction and an aborted one.
func buildSample() *Tracer {
	tr := New()
	tr.MetaProcess(0, "node0")
	tr.MetaThread(0, 0, "nic-core0")
	tr.MetaProcess(1, "node1")
	tr.MetaThread(1, 0, "nic-core0")

	us := func(n int64) sim.Time { return sim.Time(n) * sim.Microsecond }
	// Txn 0x10: coordinated by node 0, one remote hop to node 1, commits.
	tr.BeginAsync("txn", "txn", 0x10, 0, us(1), nil)
	tr.BeginAsync("phase", "execute", 0x10, 0, us(1), nil)
	tr.Instant("net", "frame-tx", 0, 0, us(2), Args{"dst": 1, "bytes": 128, "msgs": 1})
	tr.Instant("net", "frame-rx", 1, 0, us(3), Args{"src": 0, "bytes": 128, "msgs": 1})
	tr.Instant("lock", "lock", 1, 0, us(3), Args{"key": uint64(7), "shard": 1, "txn": uint64(0x10)})
	tr.EndAsync("phase", "execute", 0x10, 0, us(4), nil)
	tr.BeginAsync("phase", "validate", 0x10, 0, us(4), nil)
	tr.EndAsync("phase", "validate", 0x10, 0, us(5), nil)
	tr.BeginAsync("phase", "commit", 0x10, 0, us(5), nil)
	tr.Instant("lock", "unlock", 1, 0, us(6), Args{"key": uint64(7), "shard": 1, "txn": uint64(0x10)})
	tr.EndAsync("phase", "commit", 0x10, 0, us(6), nil)
	tr.EndAsync("txn", "txn", 0x10, 0, us(6), Args{"status": "ok"})
	// Txn 0x11: lock conflict at node 1, aborts.
	tr.BeginAsync("txn", "txn", 0x11, 1, us(7), nil)
	tr.BeginAsync("phase", "execute", 0x11, 1, us(7), nil)
	tr.Instant("lock", "lock-fail", 1, 0, us(8), Args{"key": uint64(7), "shard": 1, "txn": uint64(0x11)})
	tr.Instant("txn", "abort", 1, 0, us(8), Args{"reason": "abort-locked", "txn": uint64(0x11)})
	tr.EndAsync("phase", "execute", 0x11, 1, us(8), nil)
	tr.EndAsync("txn", "txn", 0x11, 1, us(8), Args{"status": "abort-locked"})
	tr.Complete("dma", "dma-flush", 0, 0, us(9), us(1), Args{"n": 3})
	return tr
}

func TestWriteJSONGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildSample().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "sample.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace output differs from %s (run with -update to regenerate)\ngot:\n%s", golden, buf.String())
	}

	var doc jsonDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// Metadata first (ph "M", no ts), then events with non-decreasing ts.
	inMeta := true
	last := -1.0
	for i, e := range doc.TraceEvents {
		if e.Ph == "M" {
			if !inMeta {
				t.Fatalf("event %d: metadata after non-metadata", i)
			}
			if e.TS != nil {
				t.Fatalf("event %d: metadata has ts", i)
			}
			continue
		}
		inMeta = false
		if e.TS == nil {
			t.Fatalf("event %d (%s): missing ts", i, e.Name)
		}
		if *e.TS < last {
			t.Fatalf("event %d (%s): ts %v < previous %v", i, e.Name, *e.TS, last)
		}
		last = *e.TS
		switch e.Ph {
		case "b", "e":
			if e.ID == "" {
				t.Fatalf("event %d (%s): async event without id", i, e.Name)
			}
		case "i":
			if e.S != "t" {
				t.Fatalf("event %d (%s): instant scope = %q", i, e.Name, e.S)
			}
		case "X":
			if e.Dur == nil {
				t.Fatalf("event %d (%s): complete event without dur", i, e.Name)
			}
		}
	}
}

func TestWriteJSONDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := buildSample().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildSample().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("identical traces serialized differently")
	}
}

func TestNilTracer(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	// Every method must be a safe no-op on a nil receiver.
	tr.MetaProcess(0, "x")
	tr.MetaThread(0, 0, "x")
	tr.BeginAsync("c", "n", 1, 0, 0, nil)
	tr.EndAsync("c", "n", 1, 0, 0, nil)
	tr.Instant("c", "n", 0, 0, 0, nil)
	tr.Complete("c", "n", 0, 0, 0, 0, nil)
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer recorded events")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc jsonDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil tracer output not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("nil tracer emitted %d events", len(doc.TraceEvents))
	}
}
