// Package trace emits per-transaction distributed traces of a simulated
// cluster in the Chrome trace-event JSON format (loadable in Perfetto or
// chrome://tracing). Timestamps are *simulated* microseconds taken from
// sim.Time, so a trace shows exactly where simulated time goes: transaction
// phase transitions, message hops between NICs, NIC-core dispatch, DMA
// vector flushes, lock acquire/release, and aborts with their reason.
//
// A nil *Tracer is a valid disabled tracer: every method nil-checks its
// receiver and returns immediately, so instrumented hot paths cost one
// branch and zero allocations when tracing is off. Call sites that build
// argument maps must still guard with Enabled() to keep the disabled path
// allocation-free.
//
// Determinism: events are appended in emission order, which under the
// deterministic simulation engine is non-decreasing simulated time, so the
// same seed produces a byte-identical trace file.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"

	"xenic/internal/sim"
)

// Args is the free-form argument payload of an event. Keys are serialized
// in sorted order so traces are byte-stable.
type Args map[string]any

// Event is one Chrome trace event.
type Event struct {
	Name string // event name ("execute", "frame-tx", ...)
	Cat  string // category ("txn", "net", "dma", "lock", ...)
	Ph   string // phase code: "b"/"e" async, "i" instant, "X" complete, "M" metadata, "C" counter
	TS   sim.Time
	Dur  sim.Time // "X" events only
	Pid  int      // node id
	Tid  int      // thread lane within the node (NIC core, host thread, ...)
	ID   uint64   // async event correlation id (transaction id)
	Args Args
}

// Tracer accumulates events for one run.
type Tracer struct {
	meta   []Event // "M" metadata events, emitted first
	events []Event
}

// New returns an enabled tracer.
func New() *Tracer { return &Tracer{} }

// Enabled reports whether the tracer records events. Instrumentation that
// allocates (argument maps, formatted names) must be guarded by it.
func (t *Tracer) Enabled() bool { return t != nil }

// Len reports the number of recorded (non-metadata) events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// MetaLen reports the number of recorded metadata events.
func (t *Tracer) MetaLen() int {
	if t == nil {
		return 0
	}
	return len(t.meta)
}

// Events returns the recorded events (metadata excluded) for inspection.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// MetaProcess names a process (node) lane in the trace viewer.
func (t *Tracer) MetaProcess(pid int, name string) {
	if t == nil {
		return
	}
	t.meta = append(t.meta, Event{Name: "process_name", Ph: "M", Pid: pid,
		Args: Args{"name": name}})
}

// MetaThread names a thread lane (NIC core, host thread) within a node.
func (t *Tracer) MetaThread(pid, tid int, name string) {
	if t == nil {
		return
	}
	t.meta = append(t.meta, Event{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
		Args: Args{"name": name}})
}

// BeginAsync opens an async span (nestable start, ph "b") correlated by id.
// Transaction phases use async spans because one transaction migrates
// between NIC cores and hosts.
func (t *Tracer) BeginAsync(cat, name string, id uint64, pid int, ts sim.Time, args Args) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{Name: name, Cat: cat, Ph: "b", TS: ts,
		Pid: pid, ID: id, Args: args})
}

// EndAsync closes an async span (nestable end, ph "e").
func (t *Tracer) EndAsync(cat, name string, id uint64, pid int, ts sim.Time, args Args) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{Name: name, Cat: cat, Ph: "e", TS: ts,
		Pid: pid, ID: id, Args: args})
}

// Instant records a point event (ph "i", thread scope).
func (t *Tracer) Instant(cat, name string, pid, tid int, ts sim.Time, args Args) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{Name: name, Cat: cat, Ph: "i", TS: ts,
		Pid: pid, Tid: tid, Args: args})
}

// Complete records a duration event (ph "X") that starts at ts.
func (t *Tracer) Complete(cat, name string, pid, tid int, ts, dur sim.Time, args Args) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{Name: name, Cat: cat, Ph: "X", TS: ts, Dur: dur,
		Pid: pid, Tid: tid, Args: args})
}

// micros renders a simulated instant as microseconds with nanosecond
// resolution, the unit Chrome traces expect. Fixed-point formatting keeps
// output byte-stable (no float shortest-round-trip surprises).
func micros(ts sim.Time) string {
	ns := int64(ts) / int64(sim.Nanosecond)
	sign := ""
	if ns < 0 {
		sign, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%03d", sign, ns/1000, ns%1000)
}

// appendJSONValue appends a JSON encoding of v. Supported argument types
// cover what instrumentation emits; everything else is stringified.
func appendJSONValue(b []byte, v any) []byte {
	switch x := v.(type) {
	case string:
		return strconv.AppendQuote(b, x)
	case int:
		return strconv.AppendInt(b, int64(x), 10)
	case int64:
		return strconv.AppendInt(b, x, 10)
	case uint64:
		return strconv.AppendUint(b, x, 10)
	case uint8:
		return strconv.AppendUint(b, uint64(x), 10)
	case bool:
		return strconv.AppendBool(b, x)
	case sim.Time:
		return strconv.AppendQuote(b, x.String())
	case float64:
		return strconv.AppendFloat(b, x, 'g', -1, 64)
	default:
		return strconv.AppendQuote(b, fmt.Sprint(x))
	}
}

// appendEvent appends one trace-event JSON object.
func appendEvent(b []byte, e Event) []byte {
	b = append(b, `{"name":`...)
	b = strconv.AppendQuote(b, e.Name)
	if e.Cat != "" {
		b = append(b, `,"cat":`...)
		b = strconv.AppendQuote(b, e.Cat)
	}
	b = append(b, `,"ph":`...)
	b = strconv.AppendQuote(b, e.Ph)
	if e.Ph != "M" {
		b = append(b, `,"ts":`...)
		b = append(b, micros(e.TS)...)
	}
	if e.Ph == "X" {
		b = append(b, `,"dur":`...)
		b = append(b, micros(e.Dur)...)
	}
	b = append(b, `,"pid":`...)
	b = strconv.AppendInt(b, int64(e.Pid), 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, int64(e.Tid), 10)
	if e.Ph == "b" || e.Ph == "e" {
		b = append(b, `,"id":`...)
		b = strconv.AppendQuote(b, fmt.Sprintf("%#x", e.ID))
	}
	if e.Ph == "i" {
		b = append(b, `,"s":"t"`...)
	}
	if len(e.Args) > 0 {
		b = append(b, `,"args":{`...)
		keys := make([]string, 0, len(e.Args))
		for k := range e.Args {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, k := range keys {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendQuote(b, k)
			b = append(b, ':')
			b = appendJSONValue(b, e.Args[k])
		}
		b = append(b, '}')
	}
	return append(b, '}')
}

// WriteJSON writes the trace as a Chrome trace-event JSON object
// ({"traceEvents": [...]}), metadata events first, then recorded events in
// emission order.
func (t *Tracer) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	var scratch []byte
	first := true
	emit := func(e Event) error {
		scratch = scratch[:0]
		if !first {
			scratch = append(scratch, ',', '\n')
		}
		first = false
		scratch = appendEvent(scratch, e)
		_, err := bw.Write(scratch)
		return err
	}
	if t != nil {
		for _, e := range t.meta {
			if err := emit(e); err != nil {
				return err
			}
		}
		for _, e := range t.events {
			if err := emit(e); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
