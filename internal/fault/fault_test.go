package fault

import (
	"strings"
	"testing"

	"xenic/internal/sim"
)

func TestParseFullSpec(t *testing.T) {
	p, err := Parse("drop=0.01,dup=0.005,delay=0.05,maxdelay=50us,dmaerr=0.01," +
		"crash=2@4ms,part=1:2@2ms+1ms,stall=0/3@1ms+200us,dmastall=1@2ms+100us," +
		"txntimeout=500us,verbtimeout=100us")
	if err != nil {
		t.Fatal(err)
	}
	if p.DropProb != 0.01 || p.DupProb != 0.005 || p.DelayProb != 0.05 {
		t.Fatalf("frame probs: %+v", p)
	}
	if p.MaxDelay != 50*sim.Microsecond || p.DMAErrProb != 0.01 {
		t.Fatalf("maxdelay/dmaerr: %+v", p)
	}
	if len(p.Crashes) != 1 || p.Crashes[0] != (Crash{Node: 2, At: 4 * sim.Millisecond}) {
		t.Fatalf("crashes: %+v", p.Crashes)
	}
	if len(p.Partitions) != 1 {
		t.Fatalf("partitions: %+v", p.Partitions)
	}
	pt := p.Partitions[0]
	if len(pt.Nodes) != 2 || pt.Nodes[0] != 1 || pt.Nodes[1] != 2 ||
		pt.Start != 2*sim.Millisecond || pt.End != 3*sim.Millisecond {
		t.Fatalf("partition: %+v", pt)
	}
	if len(p.CoreStalls) != 1 || p.CoreStalls[0] != (CoreStall{Node: 0, Core: 3, At: sim.Millisecond, Dur: 200 * sim.Microsecond}) {
		t.Fatalf("core stalls: %+v", p.CoreStalls)
	}
	if len(p.DMAStalls) != 1 || p.DMAStalls[0] != (DMAStall{Node: 1, At: 2 * sim.Millisecond, Dur: 100 * sim.Microsecond}) {
		t.Fatalf("dma stalls: %+v", p.DMAStalls)
	}
	if p.TxnTimeout != 500*sim.Microsecond || p.VerbTimeout != 100*sim.Microsecond {
		t.Fatalf("timeouts: %+v", p)
	}
	if err := p.Validate(4); err != nil {
		t.Fatal(err)
	}
}

func TestParseDefaultsAndErrors(t *testing.T) {
	// delay without maxdelay gets the default bound.
	p, err := Parse("delay=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxDelay != 50*sim.Microsecond {
		t.Fatalf("default maxdelay: %v", p.MaxDelay)
	}
	// Timeout defaults resolve when unset.
	if p.TxnTimeoutOrDefault() != DefaultTxnTimeout || p.VerbTimeoutOrDefault() != DefaultVerbTimeout {
		t.Fatal("timeout defaults")
	}
	for _, bad := range []string{
		"bogus=1",          // unknown key
		"drop",             // not key=value
		"drop=x",           // bad float
		"crash=2",          // missing @TIME
		"crash=2@4",        // missing duration suffix
		"part=1:2@2ms",     // missing +DUR
		"stall=0@1ms+1us",  // missing /CORE
		"dmastall=1@2ms+x", // bad duration
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestParseRestart(t *testing.T) {
	p, err := Parse("crash=2@500us,restart=2@3ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Restarts) != 1 || p.Restarts[0] != (Restart{Node: 2, At: 3 * sim.Millisecond}) {
		t.Fatalf("restarts: %+v", p.Restarts)
	}
	if err := p.Validate(4); err != nil {
		t.Fatal(err)
	}
	if got := p.String(); !strings.Contains(got, "restart=2@3.000ms") {
		t.Fatalf("String() lost the restart: %s", got)
	}
	// Round-trip: crash-restart-crash-restart of the same node is legal.
	p, err = Parse("crash=1@1ms,restart=1@3ms,crash=1@5ms,restart=1@7ms")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(4); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{
		"restart=2",        // missing @TIME
		"restart=2@",       // empty time
		"restart=x@3ms",    // bad node
		"restart=2@3bogus", // bad duration
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestValidateRejectsRestartPlans(t *testing.T) {
	for name, spec := range map[string]string{
		"no-failure":   "restart=2@3ms",                           // nothing to restart from
		"before-crash": "crash=2@5ms,restart=2@3ms",               // restart precedes the crash
		"double":       "crash=2@1ms,restart=2@3ms,restart=2@4ms", // no intervening failure
		"duplicate":    "crash=2@1ms,restart=2@3ms,restart=2@3ms", // same instant twice
		"node-oob":     "crash=2@1ms,restart=9@3ms",               // node outside cluster
	} {
		p, err := Parse(spec)
		if err != nil {
			// Rejected at parse time is fine too.
			continue
		}
		if err := p.Validate(4); err == nil {
			t.Errorf("%s (%s) validated", name, spec)
		}
	}
}

func TestValidateRejectsBadPlans(t *testing.T) {
	for name, p := range map[string]*Plan{
		"prob>1":         {DropProb: 1.5},
		"delay-no-bound": {DelayProb: 0.1},
		"crash-oob":      {Crashes: []Crash{{Node: 9, At: sim.Millisecond}}},
		"part-empty":     {Partitions: []Partition{{Start: 1, End: 2}}},
		"part-inverted":  {Partitions: []Partition{{Nodes: []int{0}, Start: 2, End: 1}}},
		"stall-zero-dur": {CoreStalls: []CoreStall{{Node: 0, Core: 1, At: 1}}},
	} {
		if err := p.Validate(4); err == nil {
			t.Errorf("%s validated", name)
		}
	}
}

func TestRandomPlanValidAndDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		a := RandomPlan(seed, 4)
		if err := a.Validate(4); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		b := RandomPlan(seed, 4)
		if a.String() != b.String() {
			t.Fatalf("seed %d: plans diverge:\n%s\n%s", seed, a, b)
		}
		// At most two nodes may die (crash or eviction-length partition) so
		// 3-way replication always keeps a replica per shard.
		deaths := len(a.Crashes)
		for _, pt := range a.Partitions {
			if pt.End-pt.Start >= 2*sim.Millisecond {
				deaths += len(pt.Nodes)
			}
		}
		if deaths > 2 {
			t.Fatalf("seed %d: %d deaths: %s", seed, deaths, a)
		}
	}
	if RandomPlan(1, 4).String() == RandomPlan(2, 4).String() {
		t.Fatal("different seeds produced identical plans")
	}
}

func TestInjectorDeterministicStream(t *testing.T) {
	plan := &Plan{DropProb: 0.1, DupProb: 0.1, DelayProb: 0.2, MaxDelay: 10 * sim.Microsecond}
	run := func() []string {
		eng := sim.NewEngine(1)
		in := NewInjector(eng, plan, 7)
		var out []string
		for i := 0; i < 500; i++ {
			drop, dup, delay := in.FrameFate(i%4, (i+1)%4)
			out = append(out, strings.Join([]string{
				map[bool]string{true: "D", false: "-"}[drop],
				map[bool]string{true: "2", false: "-"}[dup],
				delay.String(),
			}, "/"))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fate %d diverges: %s vs %s", i, a[i], b[i])
		}
	}
}
