// Package wire defines the binary formats of every protocol message in the
// system: the Xenic commit protocol messages exchanged between SmartNICs
// (§4.2), the host<->NIC PCIe messages, and the RPC messages the FaSST- and
// DrTM+H-style baselines exchange between hosts. Exact encoded sizes matter:
// the network and PCIe simulators charge for them, so protocol message
// counts and read amplification translate into bandwidth exactly as on the
// testbed.
package wire

import (
	"encoding/binary"
	"fmt"
)

// Type identifies a message.
type Type uint8

// Message type codes. Xenic and the RPC baselines share the commit-protocol
// messages; they differ in where the handler runs (NIC cores vs host cores).
const (
	TInvalid Type = iota
	// Host <-> coordinator-NIC (PCIe).
	TTxnRequest  // host -> NIC: start a transaction
	TReadReturn  // NIC -> host: read-set values for host-side execution
	TWriteSet    // host -> NIC: computed write set, resume commit
	TTxnDone     // NIC -> host: final outcome
	TLogApplyAck // host -> NIC: log records applied, unpin/reclaim
	// NIC <-> NIC (or host <-> host for RPC baselines).
	TExecute      // read read-set, lock write-set at primary
	TExecuteResp  //
	TValidate     // version check read-set at primary
	TValidateResp //
	TLog          // append write-set record at backup
	TLogResp      //
	TCommit       // apply + unlock at primary
	TCommitResp   //
	TAbort        // release locks at primary
	TShipExec     // function-shipped execution at remote primary (§4.2.3)
	TShipResult   //
	// Replication bookkeeping and recovery (§4.2.1).
	TLogCommit      // coordinator -> backup: logged record reached commit point
	TRecoveryQuery  // new/sweeping primary -> backup: do you hold txn's record?
	TRecoveryResp   //
	TRecoveryDecide // primary -> backups: commit or drop a recovering record
	// Rejoin state transfer: a restarted node re-fetches its shards from the
	// current primaries while they keep serving.
	TStatePull    // rejoiner -> primary: request the next snapshot chunk
	TStateChunk   // primary -> rejoiner: sorted key range of the shard
	TStateForward // primary -> rejoiner: a commit applied during catch-up
	// MVCC snapshot reads (read-only fast path): lock-free, validation-free
	// version-chain lookups at a snapshot timestamp.
	TSnapshotRead // coordinator NIC -> primary NIC: read keys visible at TS
	TSnapshotResp //
)

func (t Type) String() string {
	names := [...]string{"invalid", "txn-request", "read-return", "write-set",
		"txn-done", "log-apply-ack", "execute", "execute-resp", "validate",
		"validate-resp", "log", "log-resp", "commit", "commit-resp", "abort",
		"ship-exec", "ship-result", "log-commit", "recovery-query",
		"recovery-resp", "recovery-decide", "state-pull", "state-chunk",
		"state-forward", "snapshot-read", "snapshot-resp"}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Status codes carried by responses.
type Status uint8

const (
	StatusOK Status = iota
	StatusAbortLocked
	StatusAbortVersion
	StatusAbortMissing
	// StatusAbortView aborts an in-flight transaction because a view change
	// invalidated its coordinator or a participant shard (§4.2.1).
	StatusAbortView
	// StatusAbortTimeout aborts a transaction whose coordinator watchdog
	// expired while waiting on remote responses (fault-injection runs only):
	// the coordinator releases its locks and retries instead of stranding.
	StatusAbortTimeout
	// StatusAbortSnapshot aborts a snapshot read whose timestamp fell below
	// a primary's version-chain GC horizon (or raced a promotion); the
	// coordinator retries at a fresher snapshot. Never contention-induced.
	StatusAbortSnapshot
	// StatusAbortSched aborts a transaction that the NIC-side conflict
	// scheduler shed: it was parked behind a hot-key owner longer than the
	// shed deadline. The host retries it like any other abort. Only emitted
	// with the scheduler enabled, so scheduler-off runs never see it.
	StatusAbortSched

	NumStatuses = int(StatusAbortSched) + 1
)

func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusAbortLocked:
		return "abort-locked"
	case StatusAbortVersion:
		return "abort-version"
	case StatusAbortMissing:
		return "abort-missing"
	case StatusAbortView:
		return "abort-view"
	case StatusAbortTimeout:
		return "abort-timeout"
	case StatusAbortSnapshot:
		return "abort-snapshot"
	case StatusAbortSched:
		return "abort-sched"
	}
	return fmt.Sprintf("status(%d)", uint8(s))
}

// KV is a keyed value with its version.
type KV struct {
	Key     uint64
	Version uint64
	Value   []byte
}

// KeyVer is a key with an expected version (validation).
type KeyVer struct {
	Key     uint64
	Version uint64
}

// Msg is any protocol message.
type Msg interface {
	Type() Type
	// WireSize is the exact encoded byte size; simulators charge for it.
	WireSize() int
	// Marshal appends the encoding to b.
	Marshal(b []byte) []byte
}

// Sizes of fixed encoding elements.
const (
	hdrSize  = 1 + 8 + 1 // type + txn id + src node
	countLen = 2
)

func kvSize(kvs []KV) int {
	n := countLen
	for _, kv := range kvs {
		n += 8 + 8 + 2 + len(kv.Value)
	}
	return n
}

func keysSize(keys []uint64) int { return countLen + 8*len(keys) }

func keyVerSize(kvs []KeyVer) int { return countLen + 16*len(kvs) }

func bytesSize(b []byte) int { return countLen + len(b) }

// --- encoding helpers ---

type writer struct{ b []byte }

func (w *writer) u8(v uint8)   { w.b = append(w.b, v) }
func (w *writer) u16(v uint16) { w.b = binary.LittleEndian.AppendUint16(w.b, v) }
func (w *writer) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *writer) bytes(p []byte) {
	w.u16(uint16(len(p)))
	w.b = append(w.b, p...)
}
func (w *writer) keys(ks []uint64) {
	w.u16(uint16(len(ks)))
	for _, k := range ks {
		w.u64(k)
	}
}
func (w *writer) kvs(kvs []KV) {
	w.u16(uint16(len(kvs)))
	for _, kv := range kvs {
		w.u64(kv.Key)
		w.u64(kv.Version)
		w.bytes(kv.Value)
	}
}
func (w *writer) keyVers(kvs []KeyVer) {
	w.u16(uint16(len(kvs)))
	for _, kv := range kvs {
		w.u64(kv.Key)
		w.u64(kv.Version)
	}
}

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated message at offset %d", r.off)
	}
}
func (r *reader) u8() uint8 {
	if r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}
func (r *reader) u16() uint16 {
	if r.off+2 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}
func (r *reader) u64() uint64 {
	if r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}
func (r *reader) bytes() []byte {
	n := int(r.u16())
	if r.off+n > len(r.b) {
		r.fail()
		return nil
	}
	v := append([]byte(nil), r.b[r.off:r.off+n]...)
	r.off += n
	return v
}
func (r *reader) keys() []uint64 {
	n := int(r.u16())
	if r.err != nil || r.off+8*n > len(r.b) {
		r.fail()
		return nil
	}
	ks := make([]uint64, n)
	for i := range ks {
		ks[i] = r.u64()
	}
	return ks
}
func (r *reader) kvs() []KV {
	n := int(r.u16())
	if r.err != nil || n > (len(r.b)-r.off)/18 {
		r.fail()
		return nil
	}
	kvs := make([]KV, n)
	for i := range kvs {
		kvs[i].Key = r.u64()
		kvs[i].Version = r.u64()
		kvs[i].Value = r.bytes()
	}
	return kvs
}
func (r *reader) keyVers() []KeyVer {
	n := int(r.u16())
	if r.err != nil || n > (len(r.b)-r.off)/16 {
		r.fail()
		return nil
	}
	kvs := make([]KeyVer, n)
	for i := range kvs {
		kvs[i].Key = r.u64()
		kvs[i].Version = r.u64()
	}
	return kvs
}

// Header is the common prefix of every message.
type Header struct {
	TxnID uint64
	Src   uint8
}

// GetTxnID returns the transaction id; runtimes use it for flow steering.
func (h Header) GetTxnID() uint64 { return h.TxnID }

func (h Header) marshal(w *writer, t Type) {
	w.u8(uint8(t))
	w.u64(h.TxnID)
	w.u8(h.Src)
}

// --- messages ---

// TxnRequest starts a transaction (host -> coordinator NIC over PCIe). The
// initial read and write sets, the registered execution function, and any
// external application state travel together (§4.2.2).
type TxnRequest struct {
	Header
	FnID      uint16 // registered execution function; 0 = none (host executes)
	ReadKeys  []uint64
	WriteSet  []KV // blind writes; for local transactions, the full computed write set
	WriteKeys []uint64
	ExecState []byte // external application state shipped to the NIC
	Flags     uint8  // feature bits (NIC execution, local fast path)
	// LocalReadVers carries the read versions a local transaction observed
	// during optimistic host-side execution (§4.2.4); the NIC validates
	// them against its index before replicating.
	LocalReadVers []KeyVer
}

// TxnRequest flag bits.
const (
	FlagNICExec = 1 << 0 // execute on the coordinator NIC (user annotation, §4.3.3)
	FlagLocal   = 1 << 1 // host-executed local transaction (§4.2.4)
)

// ReadHints appends the keys this transaction declared it will read to dst
// and returns the extended slice. Local fast-path transactions declare their
// observed read versions instead of ReadKeys.
func (m *TxnRequest) ReadHints(dst []uint64) []uint64 {
	dst = append(dst, m.ReadKeys...)
	for i := range m.LocalReadVers {
		dst = append(dst, m.LocalReadVers[i].Key)
	}
	return dst
}

// WriteHints appends the keys this transaction declared it will write
// (blind writes plus read-modify-write keys) to dst and returns the
// extended slice.
func (m *TxnRequest) WriteHints(dst []uint64) []uint64 {
	for i := range m.WriteSet {
		dst = append(dst, m.WriteSet[i].Key)
	}
	return append(dst, m.WriteKeys...)
}

func (m *TxnRequest) Type() Type { return TTxnRequest }
func (m *TxnRequest) WireSize() int {
	return hdrSize + 2 + keysSize(m.ReadKeys) + kvSize(m.WriteSet) +
		keysSize(m.WriteKeys) + bytesSize(m.ExecState) + 1 + keyVerSize(m.LocalReadVers)
}
func (m *TxnRequest) Marshal(b []byte) []byte {
	w := &writer{b}
	m.Header.marshal(w, TTxnRequest)
	w.u16(m.FnID)
	w.keys(m.ReadKeys)
	w.kvs(m.WriteSet)
	w.keys(m.WriteKeys)
	w.bytes(m.ExecState)
	w.u8(m.Flags)
	w.keyVers(m.LocalReadVers)
	return w.b
}

// ReadReturn delivers read-set values to the host for host-side execution
// (NIC -> host, PCIe).
type ReadReturn struct {
	Header
	Items []KV
}

func (m *ReadReturn) Type() Type    { return TReadReturn }
func (m *ReadReturn) WireSize() int { return hdrSize + kvSize(m.Items) }
func (m *ReadReturn) Marshal(b []byte) []byte {
	w := &writer{b}
	m.Header.marshal(w, TReadReturn)
	w.kvs(m.Items)
	return w.b
}

// WriteSet resumes a transaction with host-computed writes (host -> NIC).
type WriteSet struct {
	Header
	Writes []KV
	// MoreReads requests another execution round (multi-shot, §4.2 step 3).
	MoreReads []uint64
	// Abort reports an application-level abort decided during host-side
	// execution; the NIC releases the transaction's locks.
	Abort bool
}

func (m *WriteSet) Type() Type { return TWriteSet }
func (m *WriteSet) WireSize() int {
	return hdrSize + kvSize(m.Writes) + keysSize(m.MoreReads) + 1
}
func (m *WriteSet) Marshal(b []byte) []byte {
	w := &writer{b}
	m.Header.marshal(w, TWriteSet)
	w.kvs(m.Writes)
	w.keys(m.MoreReads)
	if m.Abort {
		w.u8(1)
	} else {
		w.u8(0)
	}
	return w.b
}

// TxnDone reports the transaction outcome to the host (NIC -> host).
type TxnDone struct {
	Header
	Status Status
	// ReadSet carries the read values for NIC-executed transactions whose
	// application wants results.
	ReadSet []KV
}

func (m *TxnDone) Type() Type    { return TTxnDone }
func (m *TxnDone) WireSize() int { return hdrSize + 1 + kvSize(m.ReadSet) }
func (m *TxnDone) Marshal(b []byte) []byte {
	w := &writer{b}
	m.Header.marshal(w, TTxnDone)
	w.u8(uint8(m.Status))
	w.kvs(m.ReadSet)
	return w.b
}

// LogApplyAck tells the NIC which log records the host has applied so it can
// reclaim log space and unpin cache entries (§4.2 step 7). It rides on
// existing host->NIC traffic.
type LogApplyAck struct {
	Header
	Seq uint64 // log record sequence number that has been applied
}

func (m *LogApplyAck) Type() Type    { return TLogApplyAck }
func (m *LogApplyAck) WireSize() int { return hdrSize + 8 }
func (m *LogApplyAck) Marshal(b []byte) []byte {
	w := &writer{b}
	m.Header.marshal(w, TLogApplyAck)
	w.u64(m.Seq)
	return w.b
}

// Execute asks a primary to read the read-set keys and lock (and read) the
// write-set keys in one operation — Xenic's combined remote op (§4.2 step
// 2); the baselines send narrower versions of the same message. LockOnly
// marks DrTM+H's lock RPCs, whose values were already fetched by one-sided
// READs: the response omits them.
type Execute struct {
	Header
	ReadKeys []uint64
	LockKeys []uint64
	LockOnly bool
	// LockVers carries the versions observed by the preceding one-sided
	// READs; a LockOnly request fails if a key's version moved (DrTM+H's
	// lock-and-verify).
	LockVers []KeyVer
}

func (m *Execute) Type() Type { return TExecute }
func (m *Execute) WireSize() int {
	return hdrSize + keysSize(m.ReadKeys) + keysSize(m.LockKeys) + 1 + keyVerSize(m.LockVers)
}
func (m *Execute) Marshal(b []byte) []byte {
	w := &writer{b}
	m.Header.marshal(w, TExecute)
	w.keys(m.ReadKeys)
	w.keys(m.LockKeys)
	if m.LockOnly {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.keyVers(m.LockVers)
	return w.b
}

// ExecuteResp returns read values and versions, or an abort status. Locked
// echoes the keys this operation locked so the coordinator can track its
// lock set precisely across concurrent per-shard operations.
type ExecuteResp struct {
	Header
	Status Status
	Items  []KV
	Locked []uint64
}

func (m *ExecuteResp) Type() Type { return TExecuteResp }
func (m *ExecuteResp) WireSize() int {
	return hdrSize + 1 + kvSize(m.Items) + keysSize(m.Locked)
}
func (m *ExecuteResp) Marshal(b []byte) []byte {
	w := &writer{b}
	m.Header.marshal(w, TExecuteResp)
	w.u8(uint8(m.Status))
	w.kvs(m.Items)
	w.keys(m.Locked)
	return w.b
}

// Validate checks that read-set versions are unchanged and unlocked.
type Validate struct {
	Header
	Items []KeyVer
}

func (m *Validate) Type() Type    { return TValidate }
func (m *Validate) WireSize() int { return hdrSize + keyVerSize(m.Items) }
func (m *Validate) Marshal(b []byte) []byte {
	w := &writer{b}
	m.Header.marshal(w, TValidate)
	w.keyVers(m.Items)
	return w.b
}

// ValidateResp reports the validation outcome.
type ValidateResp struct {
	Header
	Status Status
}

func (m *ValidateResp) Type() Type    { return TValidateResp }
func (m *ValidateResp) WireSize() int { return hdrSize + 1 }
func (m *ValidateResp) Marshal(b []byte) []byte {
	w := &writer{b}
	m.Header.marshal(w, TValidateResp)
	w.u8(uint8(m.Status))
	return w.b
}

// Log replicates a write-set record to a backup. RespondTo names the node
// whose NIC should receive the LogResp — the coordinator in the standard
// pattern, but multi-hop commits direct backup acks straight to the
// coordinator NIC after remote-primary execution (§4.2.3, Figure 7b).
type Log struct {
	Header
	RespondTo uint8
	Writes    []KV
}

func (m *Log) Type() Type    { return TLog }
func (m *Log) WireSize() int { return hdrSize + 1 + kvSize(m.Writes) }
func (m *Log) Marshal(b []byte) []byte {
	w := &writer{b}
	m.Header.marshal(w, TLog)
	w.u8(m.RespondTo)
	w.kvs(m.Writes)
	return w.b
}

// LogResp acknowledges a durable log append.
type LogResp struct {
	Header
	Status Status
}

func (m *LogResp) Type() Type    { return TLogResp }
func (m *LogResp) WireSize() int { return hdrSize + 1 }
func (m *LogResp) Marshal(b []byte) []byte {
	w := &writer{b}
	m.Header.marshal(w, TLogResp)
	w.u8(uint8(m.Status))
	return w.b
}

// Commit applies the write set at a primary, bumps versions, and unlocks.
// CTS is the transaction's commit timestamp under MVCC (0 when MVCC is off);
// it is a trailing optional field so MVCC-off encodings are unchanged.
type Commit struct {
	Header
	Writes []KV
	CTS    uint64
}

func (m *Commit) Type() Type { return TCommit }
func (m *Commit) WireSize() int {
	n := hdrSize + kvSize(m.Writes)
	if m.CTS != 0 {
		n += 8
	}
	return n
}
func (m *Commit) Marshal(b []byte) []byte {
	w := &writer{b}
	m.Header.marshal(w, TCommit)
	w.kvs(m.Writes)
	if m.CTS != 0 {
		w.u64(m.CTS)
	}
	return w.b
}

// CommitResp acknowledges a commit apply.
type CommitResp struct {
	Header
	Status Status
}

func (m *CommitResp) Type() Type    { return TCommitResp }
func (m *CommitResp) WireSize() int { return hdrSize + 1 }
func (m *CommitResp) Marshal(b []byte) []byte {
	w := &writer{b}
	m.Header.marshal(w, TCommitResp)
	w.u8(uint8(m.Status))
	return w.b
}

// Abort releases locks held by an aborting transaction at a primary.
type Abort struct {
	Header
	LockedKeys []uint64
}

func (m *Abort) Type() Type    { return TAbort }
func (m *Abort) WireSize() int { return hdrSize + keysSize(m.LockedKeys) }
func (m *Abort) Marshal(b []byte) []byte {
	w := &writer{b}
	m.Header.marshal(w, TAbort)
	w.keys(m.LockedKeys)
	return w.b
}

// ShipExec ships a whole single-round transaction to a remote primary NIC
// for execution there (§4.2.3): the remote NIC executes, logs to backups,
// and commits locally; backups ack to the coordinator.
type ShipExec struct {
	Header
	FnID      uint16
	Coord     uint8 // coordinator node: receives backup acks and the result
	ReadKeys  []uint64
	WriteKeys []uint64
	WriteSet  []KV // blind writes with known values
	ExecState []byte
	// LocalReads are the values (and versions) of the coordinator-shard
	// keys, read and locked at the coordinator NIC before shipping; the
	// remote primary's execution consumes them (§4.2.3).
	LocalReads []KV
}

func (m *ShipExec) Type() Type { return TShipExec }
func (m *ShipExec) WireSize() int {
	return hdrSize + 2 + 1 + keysSize(m.ReadKeys) + keysSize(m.WriteKeys) +
		kvSize(m.WriteSet) + bytesSize(m.ExecState) + kvSize(m.LocalReads)
}
func (m *ShipExec) Marshal(b []byte) []byte {
	w := &writer{b}
	m.Header.marshal(w, TShipExec)
	w.u16(m.FnID)
	w.u8(m.Coord)
	w.keys(m.ReadKeys)
	w.keys(m.WriteKeys)
	w.kvs(m.WriteSet)
	w.bytes(m.ExecState)
	w.kvs(m.LocalReads)
	return w.b
}

// ShipResult returns a shipped transaction's outcome (and read set, for the
// application) from the remote primary to the coordinator NIC.
type ShipResult struct {
	Header
	Status  Status
	NumLogs uint8 // backup acks the coordinator must additionally collect
	ReadSet []KV
	// Writes is the full committed write set with new versions; the
	// coordinator applies its local-shard part and sends the rest back in
	// the Commit to the remote primary.
	Writes []KV
}

func (m *ShipResult) Type() Type { return TShipResult }
func (m *ShipResult) WireSize() int {
	return hdrSize + 2 + kvSize(m.ReadSet) + kvSize(m.Writes)
}
func (m *ShipResult) Marshal(b []byte) []byte {
	w := &writer{b}
	m.Header.marshal(w, TShipResult)
	w.u8(uint8(m.Status))
	w.u8(m.NumLogs)
	w.kvs(m.ReadSet)
	w.kvs(m.Writes)
	return w.b
}

// LogCommit tells a backup that a logged record reached its commit point,
// making it safe to apply to the backup replica (FaRM applies backup
// records only once the transaction's outcome is decided; recovery relies
// on undecided records staying unapplied).
// CTS carries the commit timestamp under MVCC (0 when off) so the backup
// can stamp its log record and keep version chains on its replica; it is a
// trailing optional field so MVCC-off encodings are unchanged.
type LogCommit struct {
	Header
	Shard uint8
	CTS   uint64
}

func (m *LogCommit) Type() Type { return TLogCommit }
func (m *LogCommit) WireSize() int {
	n := hdrSize + 1
	if m.CTS != 0 {
		n += 8
	}
	return n
}
func (m *LogCommit) Marshal(b []byte) []byte {
	w := &writer{b}
	m.Header.marshal(w, TLogCommit)
	w.u8(m.Shard)
	if m.CTS != 0 {
		w.u64(m.CTS)
	}
	return w.b
}

// RecoveryQuery asks a replica whether it holds a log record for the
// transaction on the given shard (§4.2.1: recovering transactions are
// committed iff every surviving replica logged them). Round distinguishes
// re-votes: when a second view change lands while a recovery is still
// collecting responses, the recovering primary re-queries the new replica
// set with a higher round and ignores stale-round answers.
type RecoveryQuery struct {
	Header
	Shard uint8
	Round uint8
}

func (m *RecoveryQuery) Type() Type    { return TRecoveryQuery }
func (m *RecoveryQuery) WireSize() int { return hdrSize + 2 }
func (m *RecoveryQuery) Marshal(b []byte) []byte {
	w := &writer{b}
	m.Header.marshal(w, TRecoveryQuery)
	w.u8(m.Shard)
	w.u8(m.Round)
	return w.b
}

// RecoveryResp answers a RecoveryQuery, carrying the record's writes when
// present so the recovering primary can apply them.
type RecoveryResp struct {
	Header
	Shard  uint8
	Round  uint8
	Has    bool
	Writes []KV
}

func (m *RecoveryResp) Type() Type { return TRecoveryResp }
func (m *RecoveryResp) WireSize() int {
	return hdrSize + 3 + kvSize(m.Writes)
}
func (m *RecoveryResp) Marshal(b []byte) []byte {
	w := &writer{b}
	m.Header.marshal(w, TRecoveryResp)
	w.u8(m.Shard)
	w.u8(m.Round)
	if m.Has {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.kvs(m.Writes)
	return w.b
}

// RecoveryDecide broadcasts a recovering transaction's fate to the shard's
// surviving replicas: commit (apply the record) or drop it.
type RecoveryDecide struct {
	Header
	Shard  uint8
	Commit bool
	// CTS is the MVCC timestamp a commit decision installs at (the
	// coordinator's original assignment when it survives, else a fresh
	// one); 0 (omitted from the frame) under MVCC-off or for aborts.
	CTS uint64
}

func (m *RecoveryDecide) Type() Type { return TRecoveryDecide }
func (m *RecoveryDecide) WireSize() int {
	n := hdrSize + 2
	if m.CTS != 0 {
		n += 8
	}
	return n
}
func (m *RecoveryDecide) Marshal(b []byte) []byte {
	w := &writer{b}
	m.Header.marshal(w, TRecoveryDecide)
	w.u8(m.Shard)
	if m.Commit {
		w.u8(1)
	} else {
		w.u8(0)
	}
	if m.CTS != 0 {
		w.u64(m.CTS)
	}
	return w.b
}

// StatePull asks the current primary of a shard for snapshot chunk Index of
// its sorted key range (rejoiner -> primary; TxnID 0). Index 0 opens a
// transfer session: the primary snapshots the shard's key set and starts
// forwarding every commit it applies from then on, so the union of chunks
// and forwards is complete — no cutover gap.
type StatePull struct {
	Header
	Shard uint8
	Index uint32
}

func (m *StatePull) Type() Type    { return TStatePull }
func (m *StatePull) WireSize() int { return hdrSize + 5 }
func (m *StatePull) Marshal(b []byte) []byte {
	w := &writer{b}
	m.Header.marshal(w, TStatePull)
	w.u8(m.Shard)
	w.u16(uint16(m.Index >> 16))
	w.u16(uint16(m.Index))
	return w.b
}

// StateChunk returns one snapshot chunk; Done marks the last one. Under
// MVCC, TSs carries each KV's head commit timestamp (parallel to KVs) so a
// later-promoted rejoiner serves correct snapshot visibility; it is a
// trailing optional field so MVCC-off encodings are unchanged.
type StateChunk struct {
	Header
	Shard uint8
	Index uint32
	Done  bool
	KVs   []KV
	TSs   []uint64
}

func (m *StateChunk) Type() Type { return TStateChunk }
func (m *StateChunk) WireSize() int {
	n := hdrSize + 6 + kvSize(m.KVs)
	if len(m.TSs) > 0 {
		n += keysSize(m.TSs)
	}
	return n
}
func (m *StateChunk) Marshal(b []byte) []byte {
	w := &writer{b}
	m.Header.marshal(w, TStateChunk)
	w.u8(m.Shard)
	w.u16(uint16(m.Index >> 16))
	w.u16(uint16(m.Index))
	if m.Done {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.kvs(m.KVs)
	if len(m.TSs) > 0 {
		w.keys(m.TSs)
	}
	return w.b
}

// StateForward relays a commit the primary applied while a rejoiner was
// still catching up (the cutover stream of the state transfer).
type StateForward struct {
	Header
	Shard  uint8
	Writes []KV
	// CTS is the forwarded commit's MVCC timestamp; 0 (omitted from the
	// frame) under MVCC-off.
	CTS uint64
}

func (m *StateForward) Type() Type { return TStateForward }
func (m *StateForward) WireSize() int {
	n := hdrSize + 1 + kvSize(m.Writes)
	if m.CTS != 0 {
		n += 8
	}
	return n
}
func (m *StateForward) Marshal(b []byte) []byte {
	w := &writer{b}
	m.Header.marshal(w, TStateForward)
	w.u8(m.Shard)
	w.kvs(m.Writes)
	if m.CTS != 0 {
		w.u64(m.CTS)
	}
	return w.b
}

// SnapshotRead asks a primary for the versions of Keys visible at snapshot
// timestamp TS (the MVCC read-only fast path): no locks are taken and
// nothing is validated — the primary resolves each key against its NIC
// index version chain and, on a chain miss, a DMA row-header walk of the
// host store.
type SnapshotRead struct {
	Header
	Shard uint8
	TS    uint64
	Keys  []uint64
}

func (m *SnapshotRead) Type() Type    { return TSnapshotRead }
func (m *SnapshotRead) WireSize() int { return hdrSize + 1 + 8 + keysSize(m.Keys) }
func (m *SnapshotRead) Marshal(b []byte) []byte {
	w := &writer{b}
	m.Header.marshal(w, TSnapshotRead)
	w.u8(m.Shard)
	w.u64(m.TS)
	w.keys(m.Keys)
	return w.b
}

// SnapshotResp returns the version of every requested key visible at the
// snapshot timestamp (Version 0 = key absent at TS). StatusAbortSnapshot
// means at least one key's chain was GC'd past TS and the coordinator must
// retry at a fresher snapshot.
type SnapshotResp struct {
	Header
	Shard  uint8
	Status Status
	Items  []KV
}

func (m *SnapshotResp) Type() Type    { return TSnapshotResp }
func (m *SnapshotResp) WireSize() int { return hdrSize + 2 + kvSize(m.Items) }
func (m *SnapshotResp) Marshal(b []byte) []byte {
	w := &writer{b}
	m.Header.marshal(w, TSnapshotResp)
	w.u8(m.Shard)
	w.u8(uint8(m.Status))
	w.kvs(m.Items)
	return w.b
}

// Unmarshal decodes one message from b.
func Unmarshal(b []byte) (Msg, error) {
	r := &reader{b: b}
	t := Type(r.u8())
	h := Header{TxnID: r.u64(), Src: r.u8()}
	var m Msg
	switch t {
	case TTxnRequest:
		m = &TxnRequest{Header: h, FnID: r.u16(), ReadKeys: r.keys(),
			WriteSet: r.kvs(), WriteKeys: r.keys(), ExecState: r.bytes(),
			Flags: r.u8(), LocalReadVers: r.keyVers()}
	case TReadReturn:
		m = &ReadReturn{Header: h, Items: r.kvs()}
	case TWriteSet:
		m = &WriteSet{Header: h, Writes: r.kvs(), MoreReads: r.keys(), Abort: r.u8() != 0}
	case TTxnDone:
		m = &TxnDone{Header: h, Status: Status(r.u8()), ReadSet: r.kvs()}
	case TLogApplyAck:
		m = &LogApplyAck{Header: h, Seq: r.u64()}
	case TExecute:
		m = &Execute{Header: h, ReadKeys: r.keys(), LockKeys: r.keys(),
			LockOnly: r.u8() != 0, LockVers: r.keyVers()}
	case TExecuteResp:
		m = &ExecuteResp{Header: h, Status: Status(r.u8()), Items: r.kvs(), Locked: r.keys()}
	case TValidate:
		m = &Validate{Header: h, Items: r.keyVers()}
	case TValidateResp:
		m = &ValidateResp{Header: h, Status: Status(r.u8())}
	case TLog:
		m = &Log{Header: h, RespondTo: r.u8(), Writes: r.kvs()}
	case TLogResp:
		m = &LogResp{Header: h, Status: Status(r.u8())}
	case TCommit:
		c := &Commit{Header: h, Writes: r.kvs()}
		if r.err == nil && r.off < len(b) {
			c.CTS = r.u64()
		}
		m = c
	case TCommitResp:
		m = &CommitResp{Header: h, Status: Status(r.u8())}
	case TAbort:
		m = &Abort{Header: h, LockedKeys: r.keys()}
	case TShipExec:
		m = &ShipExec{Header: h, FnID: r.u16(), Coord: r.u8(), ReadKeys: r.keys(),
			WriteKeys: r.keys(), WriteSet: r.kvs(), ExecState: r.bytes(),
			LocalReads: r.kvs()}
	case TShipResult:
		m = &ShipResult{Header: h, Status: Status(r.u8()), NumLogs: r.u8(),
			ReadSet: r.kvs(), Writes: r.kvs()}
	case TLogCommit:
		lc := &LogCommit{Header: h, Shard: r.u8()}
		if r.err == nil && r.off < len(b) {
			lc.CTS = r.u64()
		}
		m = lc
	case TRecoveryQuery:
		m = &RecoveryQuery{Header: h, Shard: r.u8(), Round: r.u8()}
	case TRecoveryResp:
		m = &RecoveryResp{Header: h, Shard: r.u8(), Round: r.u8(), Has: r.u8() != 0, Writes: r.kvs()}
	case TRecoveryDecide:
		rd := &RecoveryDecide{Header: h, Shard: r.u8(), Commit: r.u8() != 0}
		if r.err == nil && r.off < len(b) {
			rd.CTS = r.u64()
		}
		m = rd
	case TStatePull:
		m = &StatePull{Header: h, Shard: r.u8(),
			Index: uint32(r.u16())<<16 | uint32(r.u16())}
	case TStateChunk:
		sc := &StateChunk{Header: h, Shard: r.u8(),
			Index: uint32(r.u16())<<16 | uint32(r.u16()),
			Done:  r.u8() != 0, KVs: r.kvs()}
		if r.err == nil && r.off < len(b) {
			sc.TSs = r.keys()
		}
		m = sc
	case TStateForward:
		sf := &StateForward{Header: h, Shard: r.u8(), Writes: r.kvs()}
		if r.err == nil && r.off < len(b) {
			sf.CTS = r.u64()
		}
		m = sf
	case TSnapshotRead:
		m = &SnapshotRead{Header: h, Shard: r.u8(), TS: r.u64(), Keys: r.keys()}
	case TSnapshotResp:
		m = &SnapshotResp{Header: h, Shard: r.u8(), Status: Status(r.u8()), Items: r.kvs()}
	default:
		return nil, fmt.Errorf("wire: unknown message type %d", t)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(b) {
		return nil, fmt.Errorf("wire: %d trailing bytes after %v", len(b)-r.off, t)
	}
	return m, nil
}
