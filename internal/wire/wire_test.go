package wire

import (
	"math/rand"
	"reflect"
	"testing"
)

func randBytes(rng *rand.Rand, n int) []byte {
	if n == 0 {
		return nil // decoder yields nil for empty payloads
	}
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func randKeys(rng *rand.Rand) []uint64 {
	ks := make([]uint64, rng.Intn(6))
	for i := range ks {
		ks[i] = rng.Uint64()
	}
	return ks
}

func randKVs(rng *rand.Rand) []KV {
	kvs := make([]KV, rng.Intn(5))
	for i := range kvs {
		kvs[i] = KV{Key: rng.Uint64(), Version: rng.Uint64(), Value: randBytes(rng, rng.Intn(80))}
	}
	return kvs
}

func randKeyVers(rng *rand.Rand) []KeyVer {
	kvs := make([]KeyVer, rng.Intn(5))
	for i := range kvs {
		kvs[i] = KeyVer{Key: rng.Uint64(), Version: rng.Uint64()}
	}
	return kvs
}

func randHeader(rng *rand.Rand) Header {
	return Header{TxnID: rng.Uint64(), Src: uint8(rng.Intn(6))}
}

// allMessages generates one random instance of every message type.
func allMessages(rng *rand.Rand) []Msg {
	return []Msg{
		&TxnRequest{Header: randHeader(rng), FnID: uint16(rng.Intn(100)),
			ReadKeys: randKeys(rng), WriteSet: randKVs(rng), WriteKeys: randKeys(rng),
			ExecState: randBytes(rng, rng.Intn(40)), Flags: uint8(rng.Intn(4)),
			LocalReadVers: randKeyVers(rng)},
		&ReadReturn{Header: randHeader(rng), Items: randKVs(rng)},
		&WriteSet{Header: randHeader(rng), Writes: randKVs(rng), MoreReads: randKeys(rng)},
		&TxnDone{Header: randHeader(rng), Status: Status(rng.Intn(4)), ReadSet: randKVs(rng)},
		&LogApplyAck{Header: randHeader(rng), Seq: rng.Uint64()},
		&Execute{Header: randHeader(rng), ReadKeys: randKeys(rng), LockKeys: randKeys(rng),
			LockOnly: rng.Intn(2) == 0, LockVers: randKeyVers(rng)},
		&ExecuteResp{Header: randHeader(rng), Status: Status(rng.Intn(4)),
			Items: randKVs(rng), Locked: randKeys(rng)},
		&Validate{Header: randHeader(rng), Items: randKeyVers(rng)},
		&ValidateResp{Header: randHeader(rng), Status: Status(rng.Intn(4))},
		&Log{Header: randHeader(rng), RespondTo: uint8(rng.Intn(6)), Writes: randKVs(rng)},
		&LogResp{Header: randHeader(rng), Status: Status(rng.Intn(4))},
		&Commit{Header: randHeader(rng), Writes: randKVs(rng)},
		&CommitResp{Header: randHeader(rng), Status: Status(rng.Intn(4))},
		&Abort{Header: randHeader(rng), LockedKeys: randKeys(rng)},
		&ShipExec{Header: randHeader(rng), FnID: uint16(rng.Intn(9)), Coord: uint8(rng.Intn(6)),
			ReadKeys: randKeys(rng), WriteKeys: randKeys(rng), WriteSet: randKVs(rng),
			ExecState: randBytes(rng, rng.Intn(30)), LocalReads: randKVs(rng)},
		&ShipResult{Header: randHeader(rng), Status: Status(rng.Intn(4)),
			NumLogs: uint8(rng.Intn(3)), ReadSet: randKVs(rng), Writes: randKVs(rng)},
		&LogCommit{Header: randHeader(rng), Shard: uint8(rng.Intn(6))},
		&RecoveryQuery{Header: randHeader(rng), Shard: uint8(rng.Intn(6))},
		&RecoveryResp{Header: randHeader(rng), Shard: uint8(rng.Intn(6)),
			Has: rng.Intn(2) == 0, Writes: randKVs(rng)},
		&RecoveryDecide{Header: randHeader(rng), Shard: uint8(rng.Intn(6)),
			Commit: rng.Intn(2) == 0},
	}
}

// normalize maps empty slices to nil so reflect.DeepEqual treats an encoded
// empty list and a decoded nil list as equal.
func normalize(m Msg) Msg {
	v := reflect.ValueOf(m).Elem()
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		if f.Kind() == reflect.Slice && f.Len() == 0 && !f.IsNil() {
			f.Set(reflect.Zero(f.Type()))
		}
	}
	return m
}

func TestRoundTripAllTypes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 200; iter++ {
		for _, m := range allMessages(rng) {
			enc := m.Marshal(nil)
			if len(enc) != m.WireSize() {
				t.Fatalf("%v: WireSize()=%d but encoded %d bytes", m.Type(), m.WireSize(), len(enc))
			}
			dec, err := Unmarshal(enc)
			if err != nil {
				t.Fatalf("%v: %v", m.Type(), err)
			}
			if !reflect.DeepEqual(normalize(m), normalize(dec)) {
				t.Fatalf("%v round trip:\n in: %#v\nout: %#v", m.Type(), m, dec)
			}
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, m := range allMessages(rng) {
		enc := m.Marshal(nil)
		// Truncations at every length must error, never panic.
		for cut := 0; cut < len(enc); cut++ {
			if _, err := Unmarshal(enc[:cut]); err == nil {
				t.Fatalf("%v: truncation to %d bytes decoded successfully", m.Type(), cut)
			}
		}
		// Trailing garbage must be rejected.
		if _, err := Unmarshal(append(append([]byte{}, enc...), 0xff)); err == nil {
			t.Fatalf("%v: trailing byte accepted", m.Type())
		}
	}
	if _, err := Unmarshal([]byte{200, 0, 0, 0, 0, 0, 0, 0, 0, 1}); err == nil {
		t.Fatal("unknown type accepted")
	}
}

func TestTypeAndStatusStrings(t *testing.T) {
	if TExecute.String() != "execute" || TLog.String() != "log" {
		t.Fatalf("%v %v", TExecute, TLog)
	}
	if Type(200).String() == "" {
		t.Fatal("unknown type empty string")
	}
	if StatusOK.String() != "ok" || StatusAbortLocked.String() != "abort-locked" {
		t.Fatal("status strings")
	}
	if Status(99).String() == "" {
		t.Fatal("unknown status empty string")
	}
}

func TestWireSizeScalesWithPayload(t *testing.T) {
	small := &Commit{Writes: []KV{{Key: 1, Version: 1, Value: make([]byte, 12)}}}
	big := &Commit{Writes: []KV{{Key: 1, Version: 1, Value: make([]byte, 256)}}}
	if big.WireSize()-small.WireSize() != 244 {
		t.Fatalf("size delta %d, want 244", big.WireSize()-small.WireSize())
	}
	// Smallbank-scale sanity: a 12B-value commit message stays compact.
	if small.WireSize() > 48 {
		t.Fatalf("small commit is %dB", small.WireSize())
	}
}

func TestMarshalAppends(t *testing.T) {
	m := &ValidateResp{Header: Header{TxnID: 7, Src: 2}, Status: StatusOK}
	prefix := []byte{1, 2, 3}
	out := m.Marshal(prefix)
	if len(out) != 3+m.WireSize() || out[0] != 1 {
		t.Fatalf("marshal did not append: %v", out)
	}
	dec, err := Unmarshal(out[3:])
	if err != nil || dec.(*ValidateResp).TxnID != 7 {
		t.Fatalf("decode appended: %v %v", dec, err)
	}
}

func BenchmarkMarshalExecute(b *testing.B) {
	m := &Execute{Header: Header{TxnID: 1, Src: 0},
		ReadKeys: []uint64{1, 2, 3, 4}, LockKeys: []uint64{5, 6}}
	buf := make([]byte, 0, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = m.Marshal(buf[:0])
	}
}
