package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Microsecond != 1000*Nanosecond {
		t.Fatalf("Microsecond = %d ns", Microsecond/Nanosecond)
	}
	if Second != 1e12*Picosecond {
		t.Fatalf("Second = %d ps", int64(Second))
	}
	if got := (2500 * Nanosecond).Micros(); got != 2.5 {
		t.Errorf("Micros() = %v, want 2.5", got)
	}
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v", got)
	}
	if got := FromNanos(2.5); got != 2500*Picosecond {
		t.Errorf("FromNanos(2.5) = %v", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{1500 * Picosecond, "1.500ns"},
		{2 * Microsecond, "2.000us"},
		{3 * Millisecond, "3.000ms"},
		{4 * Second, "4.000s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(30*Nanosecond, func() { order = append(order, 3) })
	e.At(10*Nanosecond, func() { order = append(order, 1) })
	e.At(20*Nanosecond, func() { order = append(order, 2) })
	e.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30*Nanosecond {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5*Nanosecond, func() { order = append(order, i) })
	}
	e.RunAll()
	if !sort.IntsAreSorted(order) {
		t.Fatalf("same-time events ran out of scheduling order: %v", order)
	}
}

func TestEngineDeferRunsAfterCurrentInstant(t *testing.T) {
	e := NewEngine(1)
	var order []string
	e.At(time10(), func() {
		e.Defer(func() { order = append(order, "deferred") })
		order = append(order, "direct")
	})
	e.At(time10(), func() { order = append(order, "second") })
	e.RunAll()
	want := []string{"direct", "second", "deferred"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func time10() Time { return 10 * Nanosecond }

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i)*Microsecond, func() { ran++ })
	}
	e.Run(5 * Microsecond)
	if ran != 5 {
		t.Fatalf("ran = %d, want 5", ran)
	}
	if e.Now() != 5*Microsecond {
		t.Fatalf("Now = %v, want 5us", e.Now())
	}
	if e.Pending() != 5 {
		t.Fatalf("Pending = %d, want 5", e.Pending())
	}
	// Clock advances to `until` even with no events at that time.
	e.Run(7500 * Nanosecond)
	if e.Now() != 7500*Nanosecond || ran != 7 {
		t.Fatalf("Now = %v ran = %d", e.Now(), ran)
	}
}

func TestEngineRunClockAdvancesWhenIdle(t *testing.T) {
	e := NewEngine(1)
	e.Run(3 * Second)
	if e.Now() != 3*Second {
		t.Fatalf("Now = %v, want 3s", e.Now())
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(10*Nanosecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5*Nanosecond, func() {})
	})
	e.RunAll()
}

func TestEngineHaltResume(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	e.At(1*Microsecond, func() { ran++; e.Halt() })
	e.At(2*Microsecond, func() { ran++ })
	e.RunAll()
	if ran != 1 || !e.Halted() {
		t.Fatalf("ran = %d halted = %v", ran, e.Halted())
	}
	e.Resume()
	e.RunAll()
	if ran != 2 {
		t.Fatalf("after resume ran = %d", ran)
	}
}

func TestEngineTicker(t *testing.T) {
	e := NewEngine(1)
	var at []Time
	e.Ticker(10*Nanosecond, func() bool {
		at = append(at, e.Now())
		return len(at) < 3
	})
	e.RunAll()
	if len(at) != 3 || at[0] != 10*Nanosecond || at[2] != 30*Nanosecond {
		t.Fatalf("ticks at %v", at)
	}
}

func TestEngineTickerBadPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero period did not panic")
		}
	}()
	NewEngine(1).Ticker(0, func() bool { return false })
}

func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		e := NewEngine(seed)
		var trace []int64
		var step func()
		step = func() {
			trace = append(trace, int64(e.Now()))
			if len(trace) < 200 {
				e.After(Time(1+e.Rand().Intn(1000))*Nanosecond, step)
			}
		}
		e.After(1*Nanosecond, step)
		e.RunAll()
		return trace
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

// Property: for any batch of events at random times, execution order is by
// time with FIFO tie-breaking, and the clock ends at the max time.
func TestEngineOrderProperty(t *testing.T) {
	f := func(times []uint16) bool {
		if len(times) == 0 {
			return true
		}
		e := NewEngine(7)
		type rec struct {
			at  Time
			seq int
		}
		var got []rec
		for i, raw := range times {
			at := Time(raw) * Nanosecond
			i := i
			e.At(at, func() { got = append(got, rec{e.Now(), i}) })
		}
		e.RunAll()
		if len(got) != len(times) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	var next func()
	n := 0
	next = func() {
		n++
		if n < b.N {
			e.After(1*Nanosecond, next)
		}
	}
	e.After(1*Nanosecond, next)
	e.RunAll()
}
