package sim

import "testing"

// BenchmarkSchedule measures the per-event scheduling + dispatch overhead of
// the engine: one event scheduled and executed per op.
func BenchmarkSchedule(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	fn := func() {}
	for i := 0; i < b.N; i++ {
		e.At(e.Now()+1, fn)
		e.Step()
	}
}

// BenchmarkScheduleDepth64 keeps a 64-deep pending queue, the typical shape
// of a loaded cluster run.
func BenchmarkScheduleDepth64(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.At(Time(i), fn)
	}
	for i := 0; i < b.N; i++ {
		e.At(e.Now()+64, fn)
		e.Step()
	}
}
