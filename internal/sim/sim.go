// Package sim provides a deterministic discrete-event simulation engine.
//
// All Xenic experiments run on this engine: hosts, SmartNIC cores, PCIe DMA
// engines, RDMA NICs and Ethernet links are modeled as components that
// schedule callbacks at future points of simulated time. The clock has
// picosecond resolution so that serialization delays of small frames on
// 100Gbps links (a 64B frame lasts ~5.1ns) accumulate without rounding bias.
//
// Determinism: events firing at the same instant run in scheduling order
// (a strictly increasing sequence number breaks ties), and all randomness
// used by simulations must come from PRNGs seeded through Engine.Rand.
package sim

import (
	"fmt"
	"math/rand"
)

// Time is a point in simulated time, in picoseconds since the start of the
// run. It is also used for durations.
type Time int64

// Duration units, expressed in Time (picoseconds).
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds converts t to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros converts t to floating-point microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Nanos converts t to floating-point nanoseconds.
func (t Time) Nanos() float64 { return float64(t) / float64(Nanosecond) }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", t.Micros())
	case t >= Nanosecond:
		return fmt.Sprintf("%.3fns", t.Nanos())
	default:
		return fmt.Sprintf("%dps", int64(t))
	}
}

// FromSeconds converts floating-point seconds to Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// FromNanos converts floating-point nanoseconds to Time.
func FromNanos(ns float64) Time { return Time(ns * float64(Nanosecond)) }

// event is a scheduled callback. It carries either a plain closure (fn) or a
// monomorphic callback with its argument (fn1, arg); the latter lets hot
// paths schedule without allocating a closure per event: a package-level
// function or a method value stored once, plus a pointer-shaped argument,
// costs nothing to box.
type event struct {
	at  Time
	seq uint64
	fn  func()
	fn1 func(any)
	arg any
}

// eventHeap is a min-heap ordered by (at, seq). It is monomorphic on
// purpose: container/heap's interface{}-based Push/Pop box every event
// record (two allocations per scheduled event); here event records live in
// the heap's backing array and scheduling allocates only on growth.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(ev event) {
	*h = append(*h, ev)
	// Sift up.
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release callback/arg references
	s = s[:n]
	*h = s
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		child := l
		if r < n && s.less(r, l) {
			child = r
		}
		if !s.less(child, i) {
			break
		}
		s[i], s[child] = s[child], s[i]
		i = child
	}
	return top
}

// Engine is a discrete-event simulation engine. The zero value is not usable;
// create engines with NewEngine.
type Engine struct {
	now    Time
	seq    uint64
	pq     eventHeap
	rng    *rand.Rand
	nRun   uint64 // events executed
	halted bool
}

// NewEngine returns an engine whose clock starts at zero and whose PRNG is
// seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's PRNG. Components must derive all randomness from
// it (or from PRNGs seeded by it) to keep runs reproducible.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Events reports the number of events executed so far.
func (e *Engine) Events() uint64 { return e.nRun }

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// Now()) panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.pq.push(event{at: t, seq: e.seq, fn: fn})
}

// At1 schedules fn(arg) to run at absolute time t. It is the allocation-free
// variant of At for hot schedule sites: fn should be a function value that
// outlives the call (a package-level function or a method value stored once
// at construction) and arg should be pointer-shaped, so neither boxing nor a
// closure allocates. Semantics otherwise match At.
func (e *Engine) At1(t Time, fn func(any), arg any) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	e.pq.push(event{at: t, seq: e.seq, fn1: fn, arg: arg})
}

// After schedules fn to run d after the current time. Negative d panics.
func (e *Engine) After(d Time, fn func()) { e.At(e.now+d, fn) }

// Defer schedules fn to run at the current time, after all callbacks already
// scheduled for this instant.
func (e *Engine) Defer(fn func()) { e.At(e.now, fn) }

// Step executes the next pending event, advancing the clock to its time.
// It returns false if no events remain or the engine is halted.
func (e *Engine) Step() bool {
	if e.halted || len(e.pq) == 0 {
		return false
	}
	ev := e.pq.pop()
	e.now = ev.at
	e.nRun++
	if ev.fn1 != nil {
		ev.fn1(ev.arg)
	} else {
		ev.fn()
	}
	return true
}

// Run executes events until the clock would pass `until`, no events remain,
// or Halt is called. Events scheduled exactly at `until` do run. The clock is
// left at min(until, time of last event).
func (e *Engine) Run(until Time) {
	for !e.halted && len(e.pq) > 0 && e.pq[0].at <= until {
		ev := e.pq.pop()
		e.now = ev.at
		e.nRun++
		if ev.fn1 != nil {
			ev.fn1(ev.arg)
		} else {
			ev.fn()
		}
	}
	if !e.halted && e.now < until {
		e.now = until
	}
}

// RunAll executes events until none remain or Halt is called.
func (e *Engine) RunAll() {
	for e.Step() {
	}
}

// Halt stops the engine: Run/RunAll/Step return immediately afterwards.
// Pending events remain queued; Resume allows stepping again.
func (e *Engine) Halt() { e.halted = true }

// Resume clears a previous Halt.
func (e *Engine) Resume() { e.halted = false }

// Halted reports whether Halt has been called without a matching Resume.
func (e *Engine) Halted() bool { return e.halted }

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.pq) }

// Ticker invokes fn every period until fn returns false. The first
// invocation happens one period from now.
func (e *Engine) Ticker(period Time, fn func() bool) {
	if period <= 0 {
		panic("sim: non-positive ticker period")
	}
	var tick func()
	tick = func() {
		if fn() {
			e.After(period, tick)
		}
	}
	e.After(period, tick)
}
