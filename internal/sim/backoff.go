package sim

import "math/rand"

// Backoff returns a randomized capped-exponential delay for the given retry
// attempt (0-based): the window doubles with each attempt from base up to
// max, and the returned delay is drawn uniformly from the upper half of the
// window so consecutive retries always make progress but still decorrelate.
// All callers that retry — transaction retries, retransmissions, DMA
// resubmission — share this shape so hot-key livelock decays instead of
// re-colliding at a fixed cadence.
func Backoff(rng *rand.Rand, base, max Time, attempt int) Time {
	if base <= 0 {
		base = Microsecond
	}
	if max < base {
		max = base
	}
	window := base
	for i := 0; i < attempt && window < max; i++ {
		window *= 2
	}
	if window > max {
		window = max
	}
	// Upper-half jitter: [window/2, window).
	half := window / 2
	if half <= 0 {
		return window
	}
	return half + Time(rng.Int63n(int64(half)))
}
