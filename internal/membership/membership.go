// Package membership implements the cluster manager Xenic relies on for
// reconfiguration (§4.2.1): "Xenic uses a typical Zookeeper-based cluster
// manager to determine membership. Each node holds a lease with the cluster
// manager, and lease expiration triggers reconfiguration." The manager runs
// off the critical path: nodes renew leases periodically, a checker expires
// stale leases, and each reconfiguration produces a new view with an
// incremented epoch in which every failed primary is replaced by its first
// surviving backup.
package membership

import (
	"fmt"

	"xenic/internal/sim"
)

// Config tunes lease behavior.
type Config struct {
	// LeaseDuration is how long a node's lease lasts without renewal.
	LeaseDuration sim.Time
	// RenewPeriod is how often healthy nodes renew.
	RenewPeriod sim.Time
	// CheckPeriod is how often the manager scans for expired leases.
	CheckPeriod sim.Time
	// NotifyDelay is the propagation delay from the manager deciding a new
	// view to a node learning about it.
	NotifyDelay sim.Time
}

// DefaultConfig returns lease settings suited to the simulated testbed.
func DefaultConfig() Config {
	return Config{
		LeaseDuration: 2 * sim.Millisecond,
		RenewPeriod:   500 * sim.Microsecond,
		CheckPeriod:   250 * sim.Microsecond,
		NotifyDelay:   100 * sim.Microsecond,
	}
}

// View is one configuration epoch.
type View struct {
	Epoch int
	// Alive[i] reports node i's membership.
	Alive []bool
	// Joining[i] marks a restarted node that has re-registered (messages
	// flow, its lease renews) but is still catching up via state transfer;
	// it serves no replicas until admitted.
	Joining []bool
	// JoinedEpoch[i] is the epoch of node i's most recent (re)join — 0 for
	// nodes alive since boot. Fencing drops frames stamped with an older
	// epoch than the endpoint's join.
	JoinedEpoch []int
	// PrimaryOf[s] is the node currently serving shard s.
	PrimaryOf []int
	// BackupsOf[s] lists the surviving backups of shard s.
	BackupsOf [][]int
}

// clone deep-copies a view.
func (v View) clone() View {
	out := View{Epoch: v.Epoch,
		Alive:       append([]bool(nil), v.Alive...),
		Joining:     append([]bool(nil), v.Joining...),
		JoinedEpoch: append([]int(nil), v.JoinedEpoch...),
		PrimaryOf:   append([]int(nil), v.PrimaryOf...)}
	for _, b := range v.BackupsOf {
		out.BackupsOf = append(out.BackupsOf, append([]int(nil), b...))
	}
	return out
}

// Manager is the lease service.
type Manager struct {
	eng      *sim.Engine
	cfg      Config
	nodes    int
	repl     int
	deadline []sim.Time
	view     View
	onChange []func(View)
	started  bool
}

// New creates a manager for nodes servers with the given replication
// factor (shard s is initially primary at node s with backups s+1..).
func New(eng *sim.Engine, nodes, replication int, cfg Config) *Manager {
	if nodes < 2 || replication < 1 || replication > nodes {
		panic(fmt.Sprintf("membership: bad cluster %d/%d", nodes, replication))
	}
	m := &Manager{eng: eng, cfg: cfg, nodes: nodes, repl: replication,
		deadline: make([]sim.Time, nodes)}
	v := View{Epoch: 0, Alive: make([]bool, nodes), Joining: make([]bool, nodes),
		JoinedEpoch: make([]int, nodes), PrimaryOf: make([]int, nodes)}
	for i := 0; i < nodes; i++ {
		v.Alive[i] = true
		v.PrimaryOf[i] = i
		var backups []int
		for r := 1; r < replication; r++ {
			backups = append(backups, (i+r)%nodes)
		}
		v.BackupsOf = append(v.BackupsOf, backups)
	}
	m.view = v
	for i := range m.deadline {
		m.deadline[i] = eng.Now() + cfg.LeaseDuration
	}
	return m
}

// View returns a copy of the current view.
func (m *Manager) View() View { return m.view.clone() }

// OnChange registers a view-change callback; it fires NotifyDelay after
// each reconfiguration (modeling manager-to-node propagation).
func (m *Manager) OnChange(fn func(View)) { m.onChange = append(m.onChange, fn) }

// Renew extends node's lease. Dead nodes cannot renew their way back in —
// rejoining goes through the explicit Rejoin/Admit path below.
func (m *Manager) Renew(node int) {
	if !m.view.Alive[node] {
		return
	}
	m.deadline[node] = m.eng.Now() + m.cfg.LeaseDuration
}

// Rejoin re-registers a restarted node: it gets a fresh lease and is
// admitted to the next view as a joining member (messages flow, the lease
// renews, but it serves no replicas until Admit). No-op if already alive.
func (m *Manager) Rejoin(node int) {
	if m.view.Alive[node] {
		return
	}
	m.deadline[node] = m.eng.Now() + m.cfg.LeaseDuration
	m.view.Alive[node] = true
	m.view.Joining[node] = true
	m.reconfigure()
	m.view.JoinedEpoch[node] = m.view.Epoch
	// Re-publish so the join epoch is part of the announced view.
	m.notify()
}

// Admit completes a join: once the node has caught up via state transfer it
// re-enters every replica chain as a live backup, restoring the replication
// factor. No-op unless the node is alive and joining.
func (m *Manager) Admit(node int) {
	if !m.view.Alive[node] || !m.view.Joining[node] {
		return
	}
	m.view.Joining[node] = false
	m.reconfigure()
	m.notify()
}

// Start begins the expiry checker.
func (m *Manager) Start() {
	if m.started {
		return
	}
	m.started = true
	m.eng.Ticker(m.cfg.CheckPeriod, func() bool {
		m.check()
		return true
	})
}

// check expires stale leases and reconfigures. A joining node whose lease
// lapses mid-catch-up is evicted like any other member.
func (m *Manager) check() {
	changed := false
	for i := range m.deadline {
		if m.view.Alive[i] && m.eng.Now() > m.deadline[i] {
			m.view.Alive[i] = false
			m.view.Joining[i] = false
			changed = true
		}
	}
	if !changed {
		return
	}
	m.reconfigure()
	m.notify()
}

// reconfigure bumps the epoch and rebuilds every shard's replica chain from
// the nodes that are alive and fully admitted (joining members serve
// nothing yet). The serving primary is stable: it only changes when it
// leaves the view, so an admitted rejoiner re-enters its old chain
// positions as a backup while the promoted primary keeps serving.
func (m *Manager) reconfigure() {
	m.view.Epoch++
	for s := 0; s < m.nodes; s++ {
		// Candidate chain: original primary, then original backups.
		chain := []int{s}
		for r := 1; r < m.repl; r++ {
			chain = append(chain, (s+r)%m.nodes)
		}
		eligible := func(n int) bool { return m.view.Alive[n] && !m.view.Joining[n] }
		primary := -1
		if cur := m.view.PrimaryOf[s]; eligible(cur) {
			primary = cur
		}
		var backups []int
		for _, n := range chain {
			if !eligible(n) || n == primary {
				continue
			}
			if primary == -1 {
				primary = n
			} else {
				backups = append(backups, n)
			}
		}
		if primary == -1 {
			// All replicas lost: the shard is unavailable; keep the last
			// primary for deterministic routing, callers must check Alive.
			continue
		}
		m.view.PrimaryOf[s] = primary
		m.view.BackupsOf[s] = backups
	}
}

// notify publishes the current view to every registered callback after the
// manager-to-node propagation delay.
func (m *Manager) notify() {
	v := m.View()
	for _, fn := range m.onChange {
		fn := fn
		m.eng.After(m.cfg.NotifyDelay, func() { fn(v) })
	}
}
