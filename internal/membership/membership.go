// Package membership implements the cluster manager Xenic relies on for
// reconfiguration (§4.2.1): "Xenic uses a typical Zookeeper-based cluster
// manager to determine membership. Each node holds a lease with the cluster
// manager, and lease expiration triggers reconfiguration." The manager runs
// off the critical path: nodes renew leases periodically, a checker expires
// stale leases, and each reconfiguration produces a new view with an
// incremented epoch in which every failed primary is replaced by its first
// surviving backup.
package membership

import (
	"fmt"

	"xenic/internal/sim"
)

// Config tunes lease behavior.
type Config struct {
	// LeaseDuration is how long a node's lease lasts without renewal.
	LeaseDuration sim.Time
	// RenewPeriod is how often healthy nodes renew.
	RenewPeriod sim.Time
	// CheckPeriod is how often the manager scans for expired leases.
	CheckPeriod sim.Time
	// NotifyDelay is the propagation delay from the manager deciding a new
	// view to a node learning about it.
	NotifyDelay sim.Time
}

// DefaultConfig returns lease settings suited to the simulated testbed.
func DefaultConfig() Config {
	return Config{
		LeaseDuration: 2 * sim.Millisecond,
		RenewPeriod:   500 * sim.Microsecond,
		CheckPeriod:   250 * sim.Microsecond,
		NotifyDelay:   100 * sim.Microsecond,
	}
}

// View is one configuration epoch.
type View struct {
	Epoch int
	// Alive[i] reports node i's membership.
	Alive []bool
	// PrimaryOf[s] is the node currently serving shard s.
	PrimaryOf []int
	// BackupsOf[s] lists the surviving backups of shard s.
	BackupsOf [][]int
}

// clone deep-copies a view.
func (v View) clone() View {
	out := View{Epoch: v.Epoch,
		Alive:     append([]bool(nil), v.Alive...),
		PrimaryOf: append([]int(nil), v.PrimaryOf...)}
	for _, b := range v.BackupsOf {
		out.BackupsOf = append(out.BackupsOf, append([]int(nil), b...))
	}
	return out
}

// Manager is the lease service.
type Manager struct {
	eng      *sim.Engine
	cfg      Config
	nodes    int
	repl     int
	deadline []sim.Time
	view     View
	onChange []func(View)
	started  bool
}

// New creates a manager for nodes servers with the given replication
// factor (shard s is initially primary at node s with backups s+1..).
func New(eng *sim.Engine, nodes, replication int, cfg Config) *Manager {
	if nodes < 2 || replication < 1 || replication > nodes {
		panic(fmt.Sprintf("membership: bad cluster %d/%d", nodes, replication))
	}
	m := &Manager{eng: eng, cfg: cfg, nodes: nodes, repl: replication,
		deadline: make([]sim.Time, nodes)}
	v := View{Epoch: 0, Alive: make([]bool, nodes), PrimaryOf: make([]int, nodes)}
	for i := 0; i < nodes; i++ {
		v.Alive[i] = true
		v.PrimaryOf[i] = i
		var backups []int
		for r := 1; r < replication; r++ {
			backups = append(backups, (i+r)%nodes)
		}
		v.BackupsOf = append(v.BackupsOf, backups)
	}
	m.view = v
	for i := range m.deadline {
		m.deadline[i] = eng.Now() + cfg.LeaseDuration
	}
	return m
}

// View returns a copy of the current view.
func (m *Manager) View() View { return m.view.clone() }

// OnChange registers a view-change callback; it fires NotifyDelay after
// each reconfiguration (modeling manager-to-node propagation).
func (m *Manager) OnChange(fn func(View)) { m.onChange = append(m.onChange, fn) }

// Renew extends node's lease. Dead nodes cannot rejoin (rejoin/again is a
// separate reconfiguration path the paper also leaves to the manager).
func (m *Manager) Renew(node int) {
	if !m.view.Alive[node] {
		return
	}
	m.deadline[node] = m.eng.Now() + m.cfg.LeaseDuration
}

// Start begins the expiry checker.
func (m *Manager) Start() {
	if m.started {
		return
	}
	m.started = true
	m.eng.Ticker(m.cfg.CheckPeriod, func() bool {
		m.check()
		return true
	})
}

// check expires stale leases and reconfigures.
func (m *Manager) check() {
	changed := false
	for i := range m.deadline {
		if m.view.Alive[i] && m.eng.Now() > m.deadline[i] {
			m.view.Alive[i] = false
			changed = true
		}
	}
	if !changed {
		return
	}
	m.reconfigure()
}

// reconfigure promotes the first surviving backup of every shard whose
// primary died and prunes dead backups.
func (m *Manager) reconfigure() {
	m.view.Epoch++
	for s := 0; s < m.nodes; s++ {
		// Candidate chain: original primary, then original backups.
		chain := []int{s}
		for r := 1; r < m.repl; r++ {
			chain = append(chain, (s+r)%m.nodes)
		}
		primary := -1
		var backups []int
		for _, n := range chain {
			if !m.view.Alive[n] {
				continue
			}
			if primary == -1 {
				primary = n
			} else {
				backups = append(backups, n)
			}
		}
		if primary == -1 {
			// All replicas lost: the shard is unavailable; keep the last
			// primary for deterministic routing, callers must check Alive.
			continue
		}
		m.view.PrimaryOf[s] = primary
		m.view.BackupsOf[s] = backups
	}
	v := m.View()
	for _, fn := range m.onChange {
		fn := fn
		m.eng.After(m.cfg.NotifyDelay, func() { fn(v) })
	}
}
