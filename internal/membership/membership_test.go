package membership

import (
	"testing"

	"xenic/internal/sim"
)

func setup(t *testing.T) (*sim.Engine, *Manager) {
	t.Helper()
	eng := sim.NewEngine(1)
	m := New(eng, 6, 3, DefaultConfig())
	return eng, m
}

// renewAllExcept keeps every node but the listed ones renewing.
func renewAllExcept(eng *sim.Engine, m *Manager, dead map[int]bool) {
	cfg := DefaultConfig()
	for i := 0; i < 6; i++ {
		i := i
		eng.Ticker(cfg.RenewPeriod, func() bool {
			if !dead[i] {
				m.Renew(i)
			}
			return true
		})
	}
}

func TestInitialView(t *testing.T) {
	_, m := setup(t)
	v := m.View()
	if v.Epoch != 0 {
		t.Fatalf("epoch %d", v.Epoch)
	}
	for s := 0; s < 6; s++ {
		if v.PrimaryOf[s] != s {
			t.Fatalf("shard %d primary %d", s, v.PrimaryOf[s])
		}
		if len(v.BackupsOf[s]) != 2 || v.BackupsOf[s][0] != (s+1)%6 {
			t.Fatalf("shard %d backups %v", s, v.BackupsOf[s])
		}
	}
}

func TestNoChangeWhileRenewing(t *testing.T) {
	eng, m := setup(t)
	m.Start()
	changes := 0
	m.OnChange(func(View) { changes++ })
	renewAllExcept(eng, m, map[int]bool{})
	eng.Run(20 * sim.Millisecond)
	if changes != 0 {
		t.Fatalf("%d spurious view changes", changes)
	}
}

func TestPrimaryFailover(t *testing.T) {
	eng, m := setup(t)
	m.Start()
	var views []View
	m.OnChange(func(v View) { views = append(views, v) })
	dead := map[int]bool{}
	renewAllExcept(eng, m, dead)
	eng.Run(3 * sim.Millisecond)
	dead[2] = true // node 2 stops renewing
	eng.Run(20 * sim.Millisecond)

	if len(views) == 0 {
		t.Fatal("no view change after lease expiry")
	}
	v := views[len(views)-1]
	if v.Alive[2] {
		t.Fatal("node 2 still alive")
	}
	// Shard 2's primary fails over to node 3 (first backup).
	if v.PrimaryOf[2] != 3 {
		t.Fatalf("shard 2 primary %d, want 3", v.PrimaryOf[2])
	}
	if len(v.BackupsOf[2]) != 1 || v.BackupsOf[2][0] != 4 {
		t.Fatalf("shard 2 backups %v, want [4]", v.BackupsOf[2])
	}
	// Shards 0 and 1 lose node 2 as a backup.
	if len(v.BackupsOf[0]) != 1 || v.BackupsOf[0][0] != 1 {
		t.Fatalf("shard 0 backups %v", v.BackupsOf[0])
	}
	if len(v.BackupsOf[1]) != 1 || v.BackupsOf[1][0] != 3 {
		t.Fatalf("shard 1 backups %v", v.BackupsOf[1])
	}
	// Unrelated shard untouched.
	if v.PrimaryOf[5] != 5 || len(v.BackupsOf[5]) != 2 {
		t.Fatalf("shard 5 disturbed: %d %v", v.PrimaryOf[5], v.BackupsOf[5])
	}
	if v.Epoch < 1 {
		t.Fatalf("epoch %d", v.Epoch)
	}
}

func TestDeadNodeCannotRenew(t *testing.T) {
	eng, m := setup(t)
	m.Start()
	dead := map[int]bool{}
	renewAllExcept(eng, m, dead)
	eng.Run(3 * sim.Millisecond)
	dead[0] = true
	eng.Run(10 * sim.Millisecond)
	if m.View().Alive[0] {
		t.Fatal("node 0 alive")
	}
	m.Renew(0) // zombie renewal must be ignored
	eng.Run(10 * sim.Millisecond)
	if m.View().Alive[0] {
		t.Fatal("dead node resurrected by renewal")
	}
}

func TestDoubleFailure(t *testing.T) {
	eng, m := setup(t)
	m.Start()
	dead := map[int]bool{}
	renewAllExcept(eng, m, dead)
	eng.Run(3 * sim.Millisecond)
	dead[2] = true
	dead[3] = true
	eng.Run(20 * sim.Millisecond)
	v := m.View()
	// Shard 2: chain 2,3,4 -> primary 4, no backups left.
	if v.PrimaryOf[2] != 4 || len(v.BackupsOf[2]) != 0 {
		t.Fatalf("shard 2: primary %d backups %v", v.PrimaryOf[2], v.BackupsOf[2])
	}
	// Shard 1: chain 1,2,3 -> primary 1, no backups.
	if v.PrimaryOf[1] != 1 || len(v.BackupsOf[1]) != 0 {
		t.Fatalf("shard 1: primary %d backups %v", v.PrimaryOf[1], v.BackupsOf[1])
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(sim.NewEngine(1), 1, 1, DefaultConfig())
}
