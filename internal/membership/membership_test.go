package membership

import (
	"testing"

	"xenic/internal/sim"
)

func setup(t *testing.T) (*sim.Engine, *Manager) {
	t.Helper()
	eng := sim.NewEngine(1)
	m := New(eng, 6, 3, DefaultConfig())
	return eng, m
}

// renewAllExcept keeps every node but the listed ones renewing.
func renewAllExcept(eng *sim.Engine, m *Manager, dead map[int]bool) {
	cfg := DefaultConfig()
	for i := 0; i < 6; i++ {
		i := i
		eng.Ticker(cfg.RenewPeriod, func() bool {
			if !dead[i] {
				m.Renew(i)
			}
			return true
		})
	}
}

func TestInitialView(t *testing.T) {
	_, m := setup(t)
	v := m.View()
	if v.Epoch != 0 {
		t.Fatalf("epoch %d", v.Epoch)
	}
	for s := 0; s < 6; s++ {
		if v.PrimaryOf[s] != s {
			t.Fatalf("shard %d primary %d", s, v.PrimaryOf[s])
		}
		if len(v.BackupsOf[s]) != 2 || v.BackupsOf[s][0] != (s+1)%6 {
			t.Fatalf("shard %d backups %v", s, v.BackupsOf[s])
		}
	}
}

func TestNoChangeWhileRenewing(t *testing.T) {
	eng, m := setup(t)
	m.Start()
	changes := 0
	m.OnChange(func(View) { changes++ })
	renewAllExcept(eng, m, map[int]bool{})
	eng.Run(20 * sim.Millisecond)
	if changes != 0 {
		t.Fatalf("%d spurious view changes", changes)
	}
}

func TestPrimaryFailover(t *testing.T) {
	eng, m := setup(t)
	m.Start()
	var views []View
	m.OnChange(func(v View) { views = append(views, v) })
	dead := map[int]bool{}
	renewAllExcept(eng, m, dead)
	eng.Run(3 * sim.Millisecond)
	dead[2] = true // node 2 stops renewing
	eng.Run(20 * sim.Millisecond)

	if len(views) == 0 {
		t.Fatal("no view change after lease expiry")
	}
	v := views[len(views)-1]
	if v.Alive[2] {
		t.Fatal("node 2 still alive")
	}
	// Shard 2's primary fails over to node 3 (first backup).
	if v.PrimaryOf[2] != 3 {
		t.Fatalf("shard 2 primary %d, want 3", v.PrimaryOf[2])
	}
	if len(v.BackupsOf[2]) != 1 || v.BackupsOf[2][0] != 4 {
		t.Fatalf("shard 2 backups %v, want [4]", v.BackupsOf[2])
	}
	// Shards 0 and 1 lose node 2 as a backup.
	if len(v.BackupsOf[0]) != 1 || v.BackupsOf[0][0] != 1 {
		t.Fatalf("shard 0 backups %v", v.BackupsOf[0])
	}
	if len(v.BackupsOf[1]) != 1 || v.BackupsOf[1][0] != 3 {
		t.Fatalf("shard 1 backups %v", v.BackupsOf[1])
	}
	// Unrelated shard untouched.
	if v.PrimaryOf[5] != 5 || len(v.BackupsOf[5]) != 2 {
		t.Fatalf("shard 5 disturbed: %d %v", v.PrimaryOf[5], v.BackupsOf[5])
	}
	if v.Epoch < 1 {
		t.Fatalf("epoch %d", v.Epoch)
	}
}

func TestDeadNodeCannotRenew(t *testing.T) {
	eng, m := setup(t)
	m.Start()
	dead := map[int]bool{}
	renewAllExcept(eng, m, dead)
	eng.Run(3 * sim.Millisecond)
	dead[0] = true
	eng.Run(10 * sim.Millisecond)
	if m.View().Alive[0] {
		t.Fatal("node 0 alive")
	}
	m.Renew(0) // zombie renewal must be ignored
	eng.Run(10 * sim.Millisecond)
	if m.View().Alive[0] {
		t.Fatal("dead node resurrected by renewal")
	}
}

func TestDoubleFailure(t *testing.T) {
	eng, m := setup(t)
	m.Start()
	dead := map[int]bool{}
	renewAllExcept(eng, m, dead)
	eng.Run(3 * sim.Millisecond)
	dead[2] = true
	dead[3] = true
	eng.Run(20 * sim.Millisecond)
	v := m.View()
	// Shard 2: chain 2,3,4 -> primary 4, no backups left.
	if v.PrimaryOf[2] != 4 || len(v.BackupsOf[2]) != 0 {
		t.Fatalf("shard 2: primary %d backups %v", v.PrimaryOf[2], v.BackupsOf[2])
	}
	// Shard 1: chain 1,2,3 -> primary 1, no backups.
	if v.PrimaryOf[1] != 1 || len(v.BackupsOf[1]) != 0 {
		t.Fatalf("shard 1: primary %d backups %v", v.PrimaryOf[1], v.BackupsOf[1])
	}
}

func TestRejoinAdmit(t *testing.T) {
	eng, m := setup(t)
	m.Start()
	var views []View
	m.OnChange(func(v View) { views = append(views, v) })
	dead := map[int]bool{}
	renewAllExcept(eng, m, dead)
	eng.Run(3 * sim.Millisecond)
	dead[2] = true
	eng.Run(20 * sim.Millisecond)
	failEpoch := m.View().Epoch

	// Phase 1: re-register. The node is alive and joining — its lease
	// renews, but it serves no replicas yet.
	m.Rejoin(2)
	dead[2] = false
	eng.Run(21 * sim.Millisecond)
	v := m.View()
	if !v.Alive[2] || !v.Joining[2] {
		t.Fatalf("after Rejoin: alive=%v joining=%v", v.Alive[2], v.Joining[2])
	}
	if v.Epoch <= failEpoch {
		t.Fatalf("join did not bump epoch: %d <= %d", v.Epoch, failEpoch)
	}
	joinEpoch := v.Epoch
	if v.JoinedEpoch[2] != joinEpoch {
		t.Fatalf("JoinedEpoch %d, want %d", v.JoinedEpoch[2], joinEpoch)
	}
	for s := 0; s < 6; s++ {
		if v.PrimaryOf[s] == 2 {
			t.Fatalf("joining node serves shard %d as primary", s)
		}
		for _, b := range v.BackupsOf[s] {
			if b == 2 {
				t.Fatalf("joining node serves shard %d as backup", s)
			}
		}
	}

	// Joining is not a lease: without Admit the node stays joining.
	eng.Run(26 * sim.Millisecond)
	if v := m.View(); !v.Joining[2] {
		t.Fatal("node admitted without Admit")
	}

	// Phase 2: admit. The node re-enters its old chain positions as a
	// backup; the promoted primary keeps serving (stable-primary rule).
	m.Admit(2)
	eng.Run(27 * sim.Millisecond)
	v = m.View()
	if v.Joining[2] {
		t.Fatal("still joining after Admit")
	}
	if v.PrimaryOf[2] != 3 {
		t.Fatalf("rejoiner reclaimed primaryship: shard 2 primary %d, want 3", v.PrimaryOf[2])
	}
	if len(v.BackupsOf[2]) != 2 || v.BackupsOf[2][0] != 2 || v.BackupsOf[2][1] != 4 {
		t.Fatalf("shard 2 backups %v, want [2 4]", v.BackupsOf[2])
	}
	// Shards 0 and 1 regain node 2 as a backup: replication restored.
	if len(v.BackupsOf[0]) != 2 || len(v.BackupsOf[1]) != 2 {
		t.Fatalf("replication not restored: %v %v", v.BackupsOf[0], v.BackupsOf[1])
	}
	// The join epoch is sticky until the next rejoin.
	if v.JoinedEpoch[2] != joinEpoch {
		t.Fatalf("JoinedEpoch moved to %d after Admit", v.JoinedEpoch[2])
	}
	// Epochs observed by subscribers are strictly monotonic.
	for i := 1; i < len(views); i++ {
		if views[i].Epoch <= views[i-1].Epoch {
			t.Fatalf("epoch regressed: %d after %d", views[i].Epoch, views[i-1].Epoch)
		}
	}
}

func TestRejoinAdmitNoOps(t *testing.T) {
	eng, m := setup(t)
	m.Start()
	renewAllExcept(eng, m, map[int]bool{})
	eng.Run(3 * sim.Millisecond)
	before := m.View().Epoch
	m.Rejoin(1) // already alive
	m.Admit(1)  // not joining
	eng.Run(4 * sim.Millisecond)
	if got := m.View().Epoch; got != before {
		t.Fatalf("no-op join changed epoch %d -> %d", before, got)
	}
}

func TestJoiningNodeEvictedOnLeaseLapse(t *testing.T) {
	eng, m := setup(t)
	m.Start()
	dead := map[int]bool{}
	renewAllExcept(eng, m, dead)
	eng.Run(3 * sim.Millisecond)
	dead[2] = true
	eng.Run(20 * sim.Millisecond)

	// Rejoin but never renew: the fresh lease lapses mid-catch-up and the
	// joining node is evicted like any other member.
	m.Rejoin(2)
	eng.Run(30 * sim.Millisecond)
	v := m.View()
	if v.Alive[2] || v.Joining[2] {
		t.Fatalf("lapsed joiner not evicted: alive=%v joining=%v", v.Alive[2], v.Joining[2])
	}
	// A later Admit of the evicted node must be a no-op.
	before := v.Epoch
	m.Admit(2)
	eng.Run(31 * sim.Millisecond)
	if got := m.View().Epoch; got != before {
		t.Fatalf("Admit of evicted node changed epoch %d -> %d", before, got)
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	New(sim.NewEngine(1), 1, 1, DefaultConfig())
}
