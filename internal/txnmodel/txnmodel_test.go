package txnmodel

import (
	"testing"

	"xenic/internal/wire"
)

func TestTxnDescHelpers(t *testing.T) {
	d := &TxnDesc{
		ReadKeys:   []uint64{1, 2},
		UpdateKeys: []uint64{3},
		BlindWrites: []wire.KV{
			{Key: 4, Value: []byte("v")},
			{Key: 5, Value: []byte("w")},
		},
	}
	if d.ReadOnly() {
		t.Fatal("write transaction reported read-only")
	}
	wk := d.WriteKeys()
	if len(wk) != 3 || wk[0] != 3 || wk[1] != 4 || wk[2] != 5 {
		t.Fatalf("WriteKeys = %v", wk)
	}
	ro := &TxnDesc{ReadKeys: []uint64{1}}
	if !ro.ReadOnly() {
		t.Fatal("read transaction not read-only")
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	fn := &ExecFunc{ID: 7, Run: func(state []byte, reads []wire.KV) ExecResult {
		return ExecResult{}
	}}
	r.Register(fn)
	got, ok := r.Get(7)
	if !ok || got != fn {
		t.Fatal("registered function not found")
	}
	if _, ok := r.Get(8); ok {
		t.Fatal("unknown id found")
	}
}

func TestRegistryRejectsReservedID(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("id 0 accepted")
		}
	}()
	NewRegistry().Register(&ExecFunc{ID: 0})
}

func TestRegistryRejectsDuplicate(t *testing.T) {
	r := NewRegistry()
	r.Register(&ExecFunc{ID: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate id accepted")
		}
	}()
	r.Register(&ExecFunc{ID: 1})
}
