// Package txnmodel defines the workload-facing transaction model shared by
// the Xenic system (internal/core) and the RDMA/RPC baselines
// (internal/baseline): transaction descriptors, registered execution
// functions (the function-shipping interface of §4.2.2), key placement, and
// store sizing. Workload packages (TPC-C, Retwis, Smallbank) produce these;
// systems consume them.
package txnmodel

import (
	"math/rand"

	"xenic/internal/sim"
	"xenic/internal/wire"
)

// TxnDesc describes one transaction to run.
type TxnDesc struct {
	// ReadKeys are read-only keys (validated at commit).
	ReadKeys []uint64
	// UpdateKeys are read-modify-write keys: locked and read at execution;
	// the execution function computes their new values.
	UpdateKeys []uint64
	// BlindWrites are writes whose values are known up front (inserts,
	// overwrites); their keys are locked at execution but their old values
	// are not needed.
	BlindWrites []wire.KV
	// FnID names the registered execution function that computes write
	// values from the read values; 0 means none (pure reads/blind writes).
	FnID uint16
	// State is external application state the function needs (shipped to
	// the NIC under function shipping, §4.2.2).
	State []byte
	// NICExec requests NIC-side execution for this transaction (the
	// per-transaction user annotation of §4.3.3).
	NICExec bool
	// GenCost is host compute charged to build this transaction's inputs
	// (e.g. TPC-C's B+tree manipulations happen inside Fn instead).
	GenCost sim.Time
}

// ReadOnly reports whether the transaction writes nothing.
func (d *TxnDesc) ReadOnly() bool {
	return len(d.UpdateKeys) == 0 && len(d.BlindWrites) == 0
}

// WriteKeys returns all keys that will be locked and written.
func (d *TxnDesc) WriteKeys() []uint64 {
	ks := append([]uint64(nil), d.UpdateKeys...)
	for _, kv := range d.BlindWrites {
		ks = append(ks, kv.Key)
	}
	return ks
}

// ExecResult is what an execution function produces.
type ExecResult struct {
	// Writes are the new values for UpdateKeys (and any additional keys,
	// which must already be locked or local).
	Writes []wire.KV
	// MoreReads requests another execution round with additional read keys
	// (multi-shot transactions, §4.2 step 3). Only host execution supports
	// additional rounds; shipped executions must be single-round (§4.2.3).
	MoreReads []uint64
	// Abort lets application logic abort (e.g. TPC-C payment on a missing
	// customer); the transaction releases its locks and reports the status.
	Abort bool
}

// ExecFunc is a registered execution function. Run must be deterministic
// given (state, reads): it may run on a host thread, the coordinator NIC,
// or a remote primary NIC.
type ExecFunc struct {
	ID uint16
	// HostCost is the compute cost of one invocation on a host core; NIC
	// cores charge HostCost scaled by the core-speed ratio.
	HostCost sim.Time
	Run      func(state []byte, reads []wire.KV) ExecResult
}

// Registry maps function ids to execution functions.
type Registry struct {
	fns map[uint16]*ExecFunc
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fns: map[uint16]*ExecFunc{}} }

// Register adds fn; id 0 is reserved and panics.
func (r *Registry) Register(fn *ExecFunc) {
	if fn.ID == 0 {
		panic("txnmodel: function id 0 is reserved")
	}
	if _, dup := r.fns[fn.ID]; dup {
		panic("txnmodel: duplicate function id")
	}
	r.fns[fn.ID] = fn
}

// Get returns the function registered under id.
func (r *Registry) Get(id uint16) (*ExecFunc, bool) {
	fn, ok := r.fns[id]
	return fn, ok
}

// Placement maps keys to shards and classifies storage kind. Each node
// hosts exactly one primary shard (shard i lives on node i).
type Placement interface {
	// ShardOf returns the primary shard (== node index) for key.
	ShardOf(key uint64) int
	// IsBTree reports whether key belongs to a coordinator-local B+tree
	// table rather than the partitioned hash store.
	IsBTree(key uint64) bool
}

// StoreSpec sizes each node's store.
type StoreSpec struct {
	// HashSlots is the host hash-table slot count per shard replica.
	HashSlots int
	// InlineValueSize is the per-slot inline value capacity (bytes).
	InlineValueSize int
	// MaxDisplacement is the Robin Hood displacement limit Dm.
	MaxDisplacement int
	// NICCacheObjects is the SmartNIC index cache capacity (objects).
	NICCacheObjects int
}

// Generator produces transactions for a workload.
type Generator interface {
	Name() string
	// Spec returns store sizing for this workload.
	Spec() StoreSpec
	// Placement returns the key placement for a cluster of n nodes with
	// the given replication factor.
	Placement(nodes, replication int) Placement
	// Register adds the workload's execution functions to r.
	Register(r *Registry)
	// Populate returns the initial records for shard (loaded on its
	// primary and backups). Called once per shard.
	Populate(shard, nodes int, emit func(key uint64, value []byte))
	// Next produces the next transaction for a coordinator thread.
	Next(node, thread int, rng *rand.Rand) *TxnDesc
	// Measure reports whether this transaction counts toward reported
	// throughput (TPC-C reports only new-order rate, §5.3).
	Measure(d *TxnDesc) bool
}
