package txnmodel

import (
	"fmt"

	"xenic/internal/sim"
)

// Result summarizes one measurement window. It is shared by the Xenic
// cluster (internal/core) and the baseline systems (internal/baseline), so
// harness code can measure any system through one interface and compare the
// numbers field for field.
type Result struct {
	Duration      sim.Time
	Committed     int64 // all committed transactions
	Measured      int64 // workload-counted transactions (e.g. new orders)
	Aborts        int64
	Failed        int64
	PerServerTput float64 // measured transactions /s /server
	Median        sim.Time
	P99           sim.Time
	Mean          sim.Time
	// Abort breakdown by reason. Together with AbortSnapshot below these
	// cover every abort status, so on any run the per-reason fields sum to
	// Aborts (pinned by the accounting cross-check test in core).
	AbortLocked  int64
	AbortVersion int64
	AbortMissing int64
	AbortView    int64
	// AbortTimeout counts coordinator-watchdog expiries (fault runs only;
	// always zero on fault-free runs).
	AbortTimeout int64
	// AbortSched counts transactions shed by the NIC conflict scheduler
	// after parking past the shed deadline (scheduler runs only).
	AbortSched int64
	// Read-only breakdown, populated only when the system runs with MVCC
	// snapshot reads enabled (all-zero otherwise, so String() and recorded
	// fingerprints are unchanged for MVCC-off runs).
	ROCommitted   int64
	ROAborts      int64
	AbortSnapshot int64
	ROMedian      sim.Time
	ROP99         sim.Time
	SnapCommitted int64 // read-only txns served by the snapshot path
}

func (r Result) String() string {
	s := fmt.Sprintf("tput=%.0f txn/s/server p50=%v p99=%v aborts=%d",
		r.PerServerTput, r.Median, r.P99, r.Aborts)
	if r.Aborts > 0 {
		s += fmt.Sprintf("(lk=%d ver=%d miss=%d vc=%d",
			r.AbortLocked, r.AbortVersion, r.AbortMissing, r.AbortView)
		// Reasons that only occur on fault/scheduler runs print only when
		// present, keeping fault-free output byte-identical to old builds.
		if r.AbortTimeout > 0 {
			s += fmt.Sprintf(" to=%d", r.AbortTimeout)
		}
		if r.AbortSched > 0 {
			s += fmt.Sprintf(" sched=%d", r.AbortSched)
		}
		s += ")"
	}
	s += fmt.Sprintf(" failed=%d", r.Failed)
	if r.ROCommitted > 0 || r.SnapCommitted > 0 {
		s += fmt.Sprintf(" ro=%d(snap=%d ab=%d snapab=%d p50=%v p99=%v)",
			r.ROCommitted, r.SnapCommitted, r.ROAborts, r.AbortSnapshot,
			r.ROMedian, r.ROP99)
	}
	return s
}
