package cliflags

import (
	"flag"
	"testing"

	"xenic/internal/sim"
)

func TestOpenLoopFlagsRoundTrip(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	o := AddOpenLoop(fs)
	if err := fs.Parse([]string{
		"-openloop", "2e6", "-arrival", "pareto", "-sessions", "128",
		"-tenants", "4", "-session-life-us", "500", "-admit", "queue:64:256",
		"-slo-us", "100",
	}); err != nil {
		t.Fatal(err)
	}
	if !o.Enabled() {
		t.Fatal("openloop not enabled")
	}
	cfg, err := o.Config(7)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Rate != 2e6 || cfg.Sessions != 128 || cfg.Tenants != 4 ||
		cfg.SessionLife != 500*sim.Microsecond || cfg.Seed != 7 {
		t.Fatalf("config mismatch: %+v", cfg)
	}
	if cfg.Arrival.Name() != "pareto" || cfg.Admit.Name() != "queue" {
		t.Fatalf("spec parsing mismatch: %s/%s", cfg.Arrival.Name(), cfg.Admit.Name())
	}
	if o.SLO() != 100*sim.Microsecond {
		t.Fatalf("SLO mismatch: %v", o.SLO())
	}
	src, err := o.Source(7)
	if err != nil || src == nil {
		t.Fatalf("Source: %v %v", src, err)
	}
}

func TestOpenLoopDisabledByDefault(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	o := AddOpenLoop(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if o.Enabled() {
		t.Fatal("openloop enabled with no flags")
	}
	if src, err := o.Source(1); src != nil || err != nil {
		t.Fatalf("disabled Source should be nil,nil: %v %v", src, err)
	}
}

func TestOpenLoopBadSpecs(t *testing.T) {
	for _, args := range [][]string{
		{"-openloop", "1e6", "-arrival", "uniform"},
		{"-openloop", "1e6", "-admit", "bogus:3"},
	} {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		o := AddOpenLoop(fs)
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		if _, err := o.Source(1); err == nil {
			t.Fatalf("bad spec %v accepted", args)
		}
	}
}
