// Package cliflags defines the command-line flag groups shared by
// cmd/xenic-sim and cmd/xenic-bench in one place, so the two binaries
// cannot drift in flag names, defaults, or parsing (the -faults grammar,
// the -admit policy specs, the open-loop knobs).
package cliflags

import (
	"flag"

	"xenic/internal/load"
	"xenic/internal/openloop"
	"xenic/internal/sim"
)

// Seed adds the shared -seed flag.
func Seed(fs *flag.FlagSet) *int64 {
	return fs.Int64("seed", 1, "simulation seed")
}

// Telemetry groups the time-resolved telemetry flags.
type Telemetry struct {
	Out        string
	IntervalUs int
}

// AddTelemetry adds -telemetry and -telemetry-interval-us.
func AddTelemetry(fs *flag.FlagSet, usage string) *Telemetry {
	t := &Telemetry{}
	fs.StringVar(&t.Out, "telemetry", "", usage)
	fs.IntVar(&t.IntervalUs, "telemetry-interval-us", 100,
		"telemetry sampling interval in simulated microseconds")
	return t
}

// Interval returns the sampling interval as simulated time.
func (t *Telemetry) Interval() sim.Time {
	return sim.Time(t.IntervalUs) * sim.Microsecond
}

// Enabled reports whether -telemetry was set.
func (t *Telemetry) Enabled() bool { return t.Out != "" }

// Stats adds the shared -stats flag (a stats JSON output path).
func Stats(fs *flag.FlagSet, usage string) *string {
	return fs.String("stats", "", usage)
}

// SimObserve groups the single-run observability and feature flags of
// xenic-sim: tracing, fault injection, history checking, and MVCC.
type SimObserve struct {
	Trace    string
	Faults   string
	Check    bool
	MVCC     bool
	MVCCKeep int
}

// AddSimObserve adds -trace, -faults, -check, -mvcc, and -mvcc-keep.
func AddSimObserve(fs *flag.FlagSet) *SimObserve {
	s := &SimObserve{}
	fs.StringVar(&s.Trace, "trace", "", "write a Chrome trace-event JSON of the run (xenic only)")
	fs.StringVar(&s.Faults, "faults", "", "fault plan, e.g. drop=0.01,dup=0.005,crash=2@4ms,part=1:2@2ms+1ms")
	fs.BoolVar(&s.Check, "check", false, "record the transaction history and check serializability + state audits after the run")
	fs.BoolVar(&s.MVCC, "mvcc", false, "enable MVCC snapshot reads: read-only transactions run lock- and validation-free at a consistent timestamp (xenic only)")
	fs.IntVar(&s.MVCCKeep, "mvcc-keep", 0, "retained versions per key chain (0 = default 8; with -mvcc)")
	return s
}

// Sched groups the conflict-aware NIC scheduler flags (DESIGN.md §14).
type Sched struct {
	Enabled bool
	BatchUs int
	HotK    int
}

// AddSched adds -sched, -sched-batch-us, and -sched-hot-k.
func AddSched(fs *flag.FlagSet) *Sched {
	s := &Sched{}
	fs.BoolVar(&s.Enabled, "sched", false, "enable the conflict-aware NIC-core transaction scheduler (xenic only)")
	fs.IntVar(&s.BatchUs, "sched-batch-us", 0, "scheduler batch-accumulation window in simulated microseconds (0 = default 2; with -sched)")
	fs.IntVar(&s.HotK, "sched-hot-k", 0, "decayed touch count at which a key counts as hot (0 = default 8; with -sched)")
	return s
}

// OpenLoop groups the open-loop traffic front-end flags. A zero Rate means
// the flags were not used and the built-in closed loop drives the run.
type OpenLoop struct {
	Rate          float64
	Arrival       string
	Sessions      int
	Tenants       int
	SessionLifeUs int
	Admit         string
	SLOUs         int
}

// AddOpenLoop adds -openloop, -arrival, -sessions, -tenants,
// -session-life-us, -admit, and -slo-us.
func AddOpenLoop(fs *flag.FlagSet) *OpenLoop {
	o := &OpenLoop{}
	fs.Float64Var(&o.Rate, "openloop", 0, "open-loop offered load in txns/sec cluster-wide (0 = closed loop)")
	fs.StringVar(&o.Arrival, "arrival", "poisson", "open-loop arrival process: poisson | pareto")
	fs.IntVar(&o.Sessions, "sessions", openloop.DefaultSessions, "open-loop client sessions")
	fs.IntVar(&o.Tenants, "tenants", 1, "independent open-loop arrival streams")
	fs.IntVar(&o.SessionLifeUs, "session-life-us", 0, "mean session lifetime in simulated microseconds (0 = no churn)")
	fs.StringVar(&o.Admit, "admit", "none", "admission policy: none | token:RATE[:BURST] | queue:DEPTH[:QLEN]")
	fs.IntVar(&o.SLOUs, "slo-us", 0, "p99 client-latency SLO in microseconds, reported against open-loop runs (0 = off)")
	return o
}

// Enabled reports whether -openloop requested an open-loop run.
func (o *OpenLoop) Enabled() bool { return o.Rate > 0 }

// SLO returns the -slo-us bound as simulated time (0 = unset).
func (o *OpenLoop) SLO() sim.Time { return sim.Time(o.SLOUs) * sim.Microsecond }

// Config translates the parsed flags into an open-loop source
// configuration, validating the -arrival and -admit specs.
func (o *OpenLoop) Config(seed int64) (openloop.Config, error) {
	arr, err := openloop.ParseArrival(o.Arrival)
	if err != nil {
		return openloop.Config{}, err
	}
	adm, err := openloop.ParseAdmission(o.Admit)
	if err != nil {
		return openloop.Config{}, err
	}
	return openloop.Config{
		Rate:        o.Rate,
		Arrival:     arr,
		Sessions:    o.Sessions,
		Tenants:     o.Tenants,
		SessionLife: sim.Time(o.SessionLifeUs) * sim.Microsecond,
		Admit:       adm,
		Seed:        seed,
	}, nil
}

// Source builds the open-loop load source the flags describe, or nil when
// -openloop was not set.
func (o *OpenLoop) Source(seed int64) (load.Source, error) {
	if !o.Enabled() {
		return nil, nil
	}
	cfg, err := o.Config(seed)
	if err != nil {
		return nil, err
	}
	return openloop.New(cfg), nil
}
