package core

import (
	"testing"

	"xenic/internal/check"
	"xenic/internal/fault"
	"xenic/internal/sim"
	"xenic/internal/wire"
	"xenic/internal/workload/retwis"
)

// rejoinConfig is testConfig plus a fault plan (restart mechanics — epoch
// stamping, fencing, duplicate suppression — are fault-run features).
func rejoinConfig(t *testing.T, nodes int, plan string) Config {
	t.Helper()
	cfg := testConfig(nodes, AllFeatures())
	p, err := fault.Parse(plan)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = p
	return cfg
}

// TestRestartRejoin closes the loop: crash a node mid-run, restart it, and
// require that it re-replicates its shards and re-enters every replica
// chain — the replication factor is restored and the rebuilt replicas match
// the primaries byte for byte.
func TestRestartRejoin(t *testing.T) {
	g := &kvGen{keys: 600, keysPer: 3, readFrac: 0.3, nicExec: true}
	cfg := rejoinConfig(t, 4, "crash=2@5ms,restart=2@12ms")
	cl, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	cl.Run(30 * sim.Millisecond)
	if !cl.Drain(800 * sim.Millisecond) {
		t.Fatal("cluster did not quiesce after restart")
	}
	n := cl.Node(2)
	if !n.alive {
		t.Fatal("restarted node is not alive")
	}
	if n.rejoin != nil {
		t.Fatal("rejoin never completed")
	}
	v := cl.View()
	if !v.Alive[2] || v.Joining[2] {
		t.Fatalf("view did not admit node 2: alive=%v joining=%v", v.Alive[2], v.Joining[2])
	}
	if v.JoinedEpoch[2] == 0 {
		t.Fatal("rejoined node has no join epoch")
	}
	for s := 0; s < cfg.Nodes; s++ {
		if got := 1 + len(v.BackupsOf[s]); got != cfg.Replication {
			t.Fatalf("shard %d has %d replicas after rejoin, want %d", s, got, cfg.Replication)
		}
	}
	// The crashed primary's shard stays with the promoted node; the
	// rejoiner re-enters as a backup (stable-primary rule).
	if v.PrimaryOf[2] == 2 {
		t.Fatal("rejoiner took its old shard back as primary")
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := cl.ReplicasConsistent(); err != nil {
		t.Fatal(err)
	}
}

// TestViewChangeReleasesInFlightLocalExecLocks pins a lock leak in the
// EXECUTE round: when a view change (here, the rejoin at restart) aborts an
// in-flight transaction, abortInFlight sweeps t.locked — but a local EXECUTE
// unit still in flight at the coordinator's own shard acquires its locks
// *after* the sweep, and coordExecPart's dead-transaction guard used to drop
// them on the floor (remote stragglers get a cleanup Abort; the local path
// had no analogue). The drain-time audit catches the orphan. The cell is the
// checksweep configuration that first witnessed the leak.
func TestViewChangeReleasesInFlightLocalExecLocks(t *testing.T) {
	g := retwis.New()
	g.KeysPerServer = 2000
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.Replication = 3
	cfg.AppThreads, cfg.WorkerThreads, cfg.NICCores = 2, 2, 4
	cfg.Outstanding = 4
	cfg.Seed = 1
	cfg.MVCC = true
	plan, err := fault.Parse("crash=2@500us,restart=2@3ms")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = plan
	cl, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	h := check.NewHistory()
	cl.SetHistory(h)
	cl.Start()
	cl.Run(6 * sim.Millisecond)
	if !cl.Drain(500 * sim.Millisecond) {
		t.Fatal("cluster did not drain")
	}
	viewAborts := 0
	for _, r := range h.Records() {
		if r.Status == wire.StatusAbortView {
			viewAborts++
		}
	}
	if viewAborts == 0 {
		t.Fatal("no view-change aborts recorded; the scenario never raced an in-flight EXECUTE against a view change")
	}
	if rep := h.Check(); !rep.Ok() {
		t.Fatalf("history not serializable:\n%s", rep.String())
	}
	if err := cl.AuditHistory(); err != nil {
		t.Fatalf("drain-time audit failed (leaked in-flight EXECUTE locks): %v", err)
	}
}

// TestRestartDeterminism: two same-seed runs with a restart plan must agree
// exactly — the whole failure→healing loop is deterministic.
func TestRestartDeterminism(t *testing.T) {
	run := func() (int64, int64, sim.Time) {
		g := &kvGen{keys: 400, keysPer: 3, readFrac: 0.3, nicExec: true}
		cfg := rejoinConfig(t, 4, "crash=1@4ms,restart=1@11ms,drop=0.01")
		cl, err := New(cfg, g)
		if err != nil {
			t.Fatal(err)
		}
		cl.Start()
		cl.Run(25 * sim.Millisecond)
		cl.Drain(800 * sim.Millisecond)
		var committed, aborts int64
		for _, n := range cl.nodes {
			committed += n.stats.Committed
			aborts += n.stats.Aborts
		}
		return committed, aborts, cl.eng.Now()
	}
	c1, a1, t1 := run()
	c2, a2, t2 := run()
	if c1 != c2 || a1 != a2 || t1 != t2 {
		t.Fatalf("same-seed restart runs diverged: (%d,%d,%v) vs (%d,%d,%v)",
			c1, a1, t1, c2, a2, t2)
	}
}

// TestEpochFencingDropsStaleFrames is the fencing regression test: a node
// evicted during a partition that later heals and rejoins must drop
// in-flight verbs stamped with its pre-eviction epoch — a healed evictee
// cannot serve stale reads or acquire locks with them.
func TestEpochFencingDropsStaleFrames(t *testing.T) {
	g := &kvGen{keys: 400, keysPer: 3, readFrac: 0.3, nicExec: true}
	// Partition node 1 long enough for its lease to lapse (it is evicted and
	// self-fences); the partition heals, then the node restarts and rejoins.
	cfg := rejoinConfig(t, 4, "part=1@3ms+4ms,restart=1@9ms")
	cl, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	cl.Run(22 * sim.Millisecond)
	// Quiesce so lock-table observations below are not perturbed by load.
	if !cl.Drain(800 * sim.Millisecond) {
		t.Fatal("cluster did not quiesce")
	}

	n := cl.Node(1)
	if n.rejoin != nil {
		t.Fatal("node 1 still rejoining at 22ms")
	}
	if n.joined == nil || n.joined[1] == 0 {
		t.Fatal("node 1 has no join epoch recorded")
	}

	// Craft a delayed Execute from the old incarnation: a frame stamped with
	// an epoch before node 1's rejoin, carrying a lock-acquiring verb. The
	// fence must drop it without touching the index.
	key := uint64(7)
	tshard := cl.place.ShardOf(key)
	target := cl.nodes[cl.primaryNode(tshard)]
	staleEpoch := n.joined[1] - 1
	drops := target.stats.StaleDrops
	locked := countLocked(target, tshard)
	target.nic.InjectRx(staleEpoch, 1, &wire.Execute{
		Header:   wire.Header{TxnID: txnID(1, 0, 0xfffe), Src: 1},
		LockKeys: []uint64{key},
	})
	cl.Run(1 * sim.Millisecond)
	if target.stats.StaleDrops <= drops {
		t.Fatal("stale-epoch Execute was not dropped")
	}
	if got := countLocked(target, tshard); got != locked {
		t.Fatalf("stale Execute acquired locks: %d -> %d", locked, got)
	}

	// And the rejoiner itself must drop traffic addressed to its previous
	// incarnation (stamped before its own join).
	drops1 := n.stats.StaleDrops
	n.nic.InjectRx(staleEpoch, 0, &wire.RecoveryDecide{
		Header: wire.Header{TxnID: txnID(0, 0, 0xfffd), Src: 0},
		Shard:  uint8(1), Commit: true,
	})
	cl.Run(1 * sim.Millisecond)
	if n.stats.StaleDrops <= drops1 {
		t.Fatal("rejoiner accepted a frame addressed to its previous incarnation")
	}

	if err := cl.ReplicasConsistent(); err != nil {
		t.Fatal(err)
	}
}

// countLocked counts locked keys in a node's serving index for a shard.
func countLocked(n *Node, shard int) int {
	p := n.prim(shard)
	if p == nil {
		return 0
	}
	count := 0
	p.index.ForEachLocked(func(_, _ uint64) { count++ })
	return count
}

// TestRecoveryRevoteOnSecondViewChange covers sweepOrphanLocks/adoptShards
// racing a second view change: two back-to-back crashes, the second landing
// while the first promotion's recovery votes are still outstanding. The
// re-vote against the shrunken replica set must decide every transaction
// and open the shard.
func TestRecoveryRevoteOnSecondViewChange(t *testing.T) {
	g := &kvGen{keys: 600, keysPer: 3, readFrac: 0.3, nicExec: true}
	// Node 2 crashes; its lease lapses at ~7ms and node 3 is promoted for
	// shard 2, querying the remaining backup (node 0). Node 0 is partitioned
	// just before that view lands, so promotion-scan query responses are
	// stalled until node 0 is itself evicted — a second view change while
	// recoveries are in flight.
	cfg := rejoinConfig(t, 4, "crash=2@5ms,part=0@6900us+4ms")
	cl, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	cl.Run(30 * sim.Millisecond)
	if !cl.Drain(800 * sim.Millisecond) {
		t.Fatal("cluster did not quiesce after back-to-back failures")
	}
	var refreshes int64
	for _, n := range cl.nodes {
		refreshes += n.stats.RecoveryRefreshes
	}
	if refreshes == 0 {
		t.Fatal("no recovery re-votes despite a view change racing the promotion scan")
	}
	for s := 0; s < cfg.Nodes; s++ {
		pn := cl.nodes[cl.primaryNode(s)]
		if !pn.alive {
			continue
		}
		if p := pn.prim(s); p == nil || !p.ready {
			t.Fatalf("shard %d never reopened after re-vote", s)
		}
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
