package core

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"xenic/internal/sim"
	"xenic/internal/txnmodel"
	"xenic/internal/wire"
)

// condGen exercises application-level aborts and multi-round execution:
// fnGuard aborts when the guard key's counter is odd; fnChain reads one key
// in round one and requests its "pointer" in round two.
type condGen struct {
	keys int
	mode int // 0 = guard aborts, 1 = chained reads
}

const (
	fnGuard = 1
	fnChain = 2
)

func (g *condGen) Name() string { return "cond" }
func (g *condGen) Spec() txnmodel.StoreSpec {
	return txnmodel.StoreSpec{HashSlots: 4096, InlineValueSize: 16, MaxDisplacement: 16, NICCacheObjects: 2048}
}
func (g *condGen) Placement(nodes, replication int) txnmodel.Placement {
	return modPlace{nodes: nodes}
}
func (g *condGen) Register(r *txnmodel.Registry) {
	r.Register(&txnmodel.ExecFunc{
		ID: fnGuard, HostCost: 100 * sim.Nanosecond,
		Run: func(state []byte, reads []wire.KV) txnmodel.ExecResult {
			v := binary.LittleEndian.Uint64(reads[0].Value)
			if v%2 == 1 {
				return txnmodel.ExecResult{Abort: true}
			}
			nv := make([]byte, 8)
			binary.LittleEndian.PutUint64(nv, v+2)
			return txnmodel.ExecResult{Writes: []wire.KV{{Key: reads[0].Key, Value: nv}}}
		},
	})
	r.Register(&txnmodel.ExecFunc{
		ID: fnChain, HostCost: 100 * sim.Nanosecond,
		Run: func(state []byte, reads []wire.KV) txnmodel.ExecResult {
			if len(reads) == 1 {
				// Round 1: follow the "pointer" stored in the value.
				next := binary.LittleEndian.Uint64(reads[0].Value) % 97
				if next == reads[0].Key {
					next = (next + 1) % 97
				}
				return txnmodel.ExecResult{MoreReads: []uint64{next}}
			}
			// Round 2: write a tombstone-ish marker to the first key.
			v := binary.LittleEndian.Uint64(reads[0].Value)
			nv := make([]byte, 8)
			binary.LittleEndian.PutUint64(nv, v+2)
			return txnmodel.ExecResult{Writes: []wire.KV{{Key: reads[0].Key, Value: nv}}}
		},
	})
}
func (g *condGen) Populate(shard, nodes int, emit func(uint64, []byte)) {
	for k := shard; k < g.keys; k += nodes {
		v := make([]byte, 8)
		if k%3 == 0 {
			binary.LittleEndian.PutUint64(v, 1) // odd: guard transactions abort
		}
		emit(uint64(k), v)
	}
}
func (g *condGen) Measure(d *txnmodel.TxnDesc) bool { return true }
func (g *condGen) Next(node, thread int, rng *rand.Rand) *txnmodel.TxnDesc {
	k := uint64(rng.Intn(g.keys))
	if g.mode == 0 {
		return &txnmodel.TxnDesc{
			UpdateKeys: []uint64{k},
			FnID:       fnGuard,
			NICExec:    rng.Intn(2) == 0, // mix NIC and host execution
		}
	}
	return &txnmodel.TxnDesc{
		UpdateKeys: []uint64{k % 97}, // chain within a small space
		FnID:       fnChain,
		// Multi-round requires host execution (§4.2.3 restricts shipping).
		NICExec: false,
	}
}

func TestApplicationAborts(t *testing.T) {
	g := &condGen{keys: 300, mode: 0}
	cfg := testConfig(4, AllFeatures())
	cfg.MaxRetries = 2 // guard aborts are deterministic: don't spin
	cl, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	cl.Run(5 * sim.Millisecond)
	if !cl.Drain(500 * sim.Millisecond) {
		t.Fatal("no quiesce")
	}
	var committed, failed int64
	for _, n := range cl.nodes {
		committed += n.stats.Committed
		failed += n.stats.Failed
	}
	if committed == 0 {
		t.Fatal("even-guard transactions never committed")
	}
	if failed == 0 {
		t.Fatal("odd-guard transactions never reported failure (app aborts lost)")
	}
	// Odd counters must never have been written (their value stays 1).
	for k := 0; k < g.keys; k += 3 {
		v, _, _ := cl.nodes[cl.place.ShardOf(uint64(k))].Primary().Read(uint64(k))
		if binary.LittleEndian.Uint64(v)%2 != 1 {
			t.Fatalf("aborting transaction wrote key %d", k)
		}
	}
	if err := cl.ReplicasConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiRoundExecution(t *testing.T) {
	g := &condGen{keys: 300, mode: 1}
	cfg := testConfig(4, AllFeatures())
	cl, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	cl.Run(5 * sim.Millisecond)
	if !cl.Drain(500 * sim.Millisecond) {
		t.Fatal("no quiesce")
	}
	var committed int64
	for _, n := range cl.nodes {
		committed += n.stats.Committed
	}
	if committed == 0 {
		t.Fatal("no multi-round transaction committed")
	}
	if err := cl.ReplicasConsistent(); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsBadConfig(t *testing.T) {
	g := &condGen{keys: 100}
	bad := []Config{
		func() Config { c := DefaultConfig(); c.Nodes = 1; return c }(),
		func() Config { c := DefaultConfig(); c.Replication = 9; return c }(),
		func() Config { c := DefaultConfig(); c.AppThreads = 0; return c }(),
		func() Config { c := DefaultConfig(); c.Outstanding = 0; return c }(),
	}
	for i, cfg := range bad {
		if _, err := New(cfg, g); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}
