// Package core implements the Xenic transaction system (§4): the
// coordinator-side NIC state machine with function shipping and multi-hop
// OCC, the server-side NIC handlers over the co-designed data store, the
// host-side application threads with the local-transaction fast path, and
// the Robinhood worker threads that apply logged write sets.
package core

import (
	"fmt"

	"xenic/internal/fault"
	"xenic/internal/membership"
	"xenic/internal/model"
	"xenic/internal/nicrt"
)

// Features are the protocol-level toggles evaluated in §5.7 (Figure 9),
// plus the runtime toggles forwarded to the NIC runtime.
type Features struct {
	// SmartRemoteOps combines read+lock into one EXECUTE per shard and
	// validates per shard. Off: DrTM+H-style separate per-key read, lock,
	// and validate requests (the "Xenic baseline" of §5.7).
	SmartRemoteOps bool
	// NICExecution runs annotated transactions' execution functions on the
	// coordinator-side NIC (§4.2.2). Off: every round trips to the host.
	NICExecution bool
	// MultiHopOCC ships eligible transactions to a remote primary NIC and
	// routes backup acks straight to the coordinator (§4.2.3).
	MultiHopOCC bool
	// EthAggregation / AsyncDMA are the runtime optimizations (§4.3).
	EthAggregation bool
	AsyncDMA       bool
}

// AllFeatures enables the full Xenic design.
func AllFeatures() Features {
	return Features{
		SmartRemoteOps: true, NICExecution: true, MultiHopOCC: true,
		EthAggregation: true, AsyncDMA: true,
	}
}

// BaselineFeatures disables every optimization (the §5.7 starting point).
func BaselineFeatures() Features { return Features{} }

func (f Features) runtime() nicrt.Features {
	return nicrt.Features{EthAggregation: f.EthAggregation, AsyncDMA: f.AsyncDMA}
}

// Config assembles a Xenic cluster.
type Config struct {
	// Nodes is the server count (one primary shard per node).
	Nodes int
	// Replication is the total replicas per shard (primary + backups);
	// the evaluation uses 3 (§5.2).
	Replication int
	// AppThreads / WorkerThreads are host coordinator-application and
	// Robinhood-worker thread counts per node (§5.6).
	AppThreads    int
	WorkerThreads int
	// NICCores is the number of active SmartNIC cores per node.
	NICCores int
	// Outstanding is the closed-loop transaction window per app thread.
	Outstanding int
	// MaxRetries bounds OCC retries per transaction before reporting
	// failure to the application (it then counts as aborted).
	MaxRetries int
	Features   Features
	Params     model.Params
	// Membership tunes the lease-based cluster manager (§4.2.1).
	Membership membership.Config
	Seed       int64
	// Faults, when non-nil, enables deterministic fault injection: frame
	// drop/duplication/delay at the link layer, DMA errors and stalls, NIC
	// core stalls, scheduled crashes and partitions — plus the hardening
	// paths that survive them (coordinator watchdog timeouts, duplicate
	// suppression, dead-peer gating). nil runs are byte-identical to builds
	// without the fault subsystem.
	Faults *fault.Plan
	// MVCC enables bounded per-key version chains and the lock-free,
	// validation-free snapshot path for read-only transactions (DESIGN.md
	// §12). Off (the default), runs are byte-identical to builds without
	// the MVCC subsystem.
	MVCC bool
	// MVCCKeep is the bounded chain depth K (old versions retained per
	// key); 0 means the default of 8.
	MVCCKeep int
	// Sched enables the conflict-aware NIC-core transaction scheduler
	// (DESIGN.md §14): start frames are batched, per-key hotness is tracked
	// with a decayed counter, and transactions that would race on a hot key
	// are serialized behind its current owner instead of aborting under
	// OCC. Off (the default), dispatch is the legacy hash and runs are
	// byte-identical to builds without the scheduler.
	Sched bool
	// SchedBatchUs is the scheduler's batch-accumulation window in
	// microseconds; 0 uses the nicrt default (2us). Ignored unless Sched.
	SchedBatchUs int
	// SchedHotK is the decayed touch count at which a key counts as hot;
	// 0 uses the nicrt default (8). Ignored unless Sched.
	SchedHotK int
}

// DefaultConfig mirrors the paper's testbed: 6 servers, 3-way replication.
func DefaultConfig() Config {
	return Config{
		Nodes:         6,
		Replication:   3,
		AppThreads:    4,
		WorkerThreads: 3,
		NICCores:      16,
		Outstanding:   8,
		MaxRetries:    64,
		Features:      AllFeatures(),
		Params:        model.Default(),
		Membership:    membership.DefaultConfig(),
		Seed:          1,
	}
}

func (c Config) validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("core: need >=2 nodes, have %d", c.Nodes)
	}
	if c.Replication < 1 || c.Replication > c.Nodes {
		return fmt.Errorf("core: replication %d outside 1..%d", c.Replication, c.Nodes)
	}
	if c.AppThreads < 1 || c.WorkerThreads < 1 || c.NICCores < 1 {
		return fmt.Errorf("core: thread counts must be positive")
	}
	if c.Outstanding < 1 {
		return fmt.Errorf("core: outstanding window must be positive")
	}
	if c.MVCC && c.Nodes > 64 {
		// The commit-timestamp oracle tracks each commit's pending write
		// shards as a 64-bit set (one shard per node).
		return fmt.Errorf("core: MVCC supports at most 64 nodes, have %d", c.Nodes)
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(c.Nodes); err != nil {
			return fmt.Errorf("core: %w", err)
		}
	}
	return nil
}

// backupsOf lists the backup nodes of shard s: the next Replication-1
// nodes in ring order.
func (c Config) backupsOf(s int) []int {
	out := make([]int, 0, c.Replication-1)
	for i := 1; i < c.Replication; i++ {
		out = append(out, (s+i)%c.Nodes)
	}
	return out
}
