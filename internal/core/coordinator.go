package core

import (
	"fmt"

	"xenic/internal/nicrt"
	"xenic/internal/sim"
	"xenic/internal/store/nicindex"
	"xenic/internal/trace"
	"xenic/internal/txnmodel"
	"xenic/internal/wire"
)

// This file implements the coordinator-side NIC state machine (§4.2): the
// EXECUTE fan-out with combined read+lock operations, NIC-side execution
// (function shipping from host to NIC, §4.2.2), the multi-hop shipped path
// (§4.2.3), validation, logging, and commit. Shards are routed through the
// current membership view, so a promoted primary is addressed transparently
// after recovery.

type phase uint8

const (
	phExecute phase = iota
	phHostExec
	phValidate
	phLog
	phCommit
	phShipped

	numPhases = int(phShipped) + 1
)

// ctxn is one in-flight transaction's coordinator state, resident in
// SmartNIC memory.
type ctxn struct {
	id       uint64
	desc     *txnmodel.TxnDesc
	phase    phase
	phaseAt  sim.Time // when the current phase began (latency accounting)
	openedAt sim.Time // when the transaction opened (history recording)
	epoch    int      // bumped on every phase change; watchdog progress marker
	failed   wire.Status
	dead     bool // view change aborted this transaction; drop stragglers

	reads     map[uint64]wire.KV // accumulated read values (all shards)
	readOrder []uint64           // fn-input key order across execution rounds
	writes    []wire.KV          // final write set with new versions
	locked    map[int][]uint64   // locked keys per shard
	pending   int
	rounds    int
	nicExec   bool
	// cts is the MVCC commit timestamp assigned at the commit point
	// (0 = MVCC off or not yet committed).
	cts uint64
	// snapTS marks a read-only transaction on the lock-free snapshot path
	// (MVCC): every read resolves at this timestamp, no locks or validation.
	snapTS     uint64
	snapshot   bool
	snapClosed bool // GC-protection refcount released
	// relockStash holds execution output while an extra EXECUTE round
	// locks write keys the execution introduced.
	relockStash []wire.KV
	hasStash    bool

	// Shipped-path state.
	shipTo     int
	gotResult  bool
	expectLogs int
	logAcks    int
	shipped    *wire.ShipResult
	localLocks []uint64
}

func (n *Node) newCtxn(m *wire.TxnRequest) *ctxn {
	d := &txnmodel.TxnDesc{
		ReadKeys:    m.ReadKeys,
		UpdateKeys:  m.WriteKeys,
		BlindWrites: m.WriteSet,
		FnID:        m.FnID,
		State:       m.ExecState,
		NICExec:     m.Flags&wire.FlagNICExec != 0,
	}
	t := &ctxn{
		id:     m.TxnID,
		desc:   d,
		reads:  map[uint64]wire.KV{},
		locked: map[int][]uint64{},
	}
	seen := map[uint64]bool{}
	for _, k := range append(append([]uint64{}, d.ReadKeys...), d.WriteKeys()...) {
		if !seen[k] {
			seen[k] = true
			t.readOrder = append(t.readOrder, k)
		}
	}
	return t
}

// primaryNode routes a shard through the current view.
func (n *Node) primaryNode(shard int) int { return n.cl.primaryNode(shard) }

// coordStart handles a TxnRequest arriving from the local host.
func (n *Node) coordStart(c *nicrt.Core, m *wire.TxnRequest) {
	if m.Flags&wire.FlagLocal != 0 {
		n.coordLocalCommit(c, m)
		return
	}
	t := n.newCtxn(m)
	if t.desc.FnID == 0 && t.desc.ReadOnly() && n.cl.snapReady() {
		// MVCC read-only fast path: resolve every key at one snapshot
		// timestamp, lock-free and validation-free (DESIGN.md §12). During
		// fence episodes (recovery, promotion, rejoin) snapReady is false
		// and read-only transactions fall through to the OCC path.
		n.ctxns[t.id] = t
		n.openTxn(t)
		n.snapStart(c, t)
		return
	}
	t.nicExec = t.desc.NICExec && n.cl.cfg.Features.NICExecution && t.desc.FnID != 0
	n.ctxns[t.id] = t
	n.openTxn(t)

	// Coordinator-local B+tree blind writes (TPC-C order/order-line
	// inserts, district updates) are locked and version-checked in the NIC
	// index here; their values never need a NIC lookup.
	n.lockBlindBTree(c, t, func() {
		if t.failed != wire.StatusOK {
			n.abortTxn(c, t)
			return
		}
		if n.cl.cfg.Features.MultiHopOCC && t.desc.NICExec && t.desc.FnID != 0 {
			if dst, ok := n.shipTarget(t.desc); ok {
				n.shipTxn(c, t, dst)
				return
			}
		}
		n.execRound(c, t, t.desc.ReadKeys, n.execLockKeys(t.desc))
	})
}

// btreeVerifyBytes is the DMA payload for re-reading a B+tree row header
// (key + version) from host memory when the NIC index no longer tracks the
// key.
const btreeVerifyBytes = 32

// lockBlindBTree locks t's coordinator-local B+tree blind-write keys in the
// NIC index and validates the versions the host observed at generation
// time. The index is authoritative only while a lock or a commit pin keeps
// the entry resident; once the host applies the logged write the entry is
// dropped, so for untracked keys the NIC must DMA-read the row header from
// the host B+tree. Trusting the generation-time observation there loses
// updates: a concurrent writer may have committed and been applied since
// the host read the row. Calls then once every key is locked and verified
// (t.failed holds the first failure).
func (n *Node) lockBlindBTree(c *nicrt.Core, t *ctxn, then func()) {
	pending := 1
	finish := func() {
		pending--
		if pending == 0 && !t.dead {
			then()
		}
	}
	for _, kv := range t.desc.BlindWrites {
		if !n.place().IsBTree(kv.Key) {
			continue
		}
		shard := n.place().ShardOf(kv.Key)
		if n.primaryNode(shard) != n.id {
			// The shard moved (stable primary after this node rejoined): the
			// key locks at the serving primary through the EXECUTE round
			// like any hash write (see execLockKeys).
			continue
		}
		p := n.prim(shard)
		n.chargeIndexOps(c, 1)
		if !p.index.TryLock(kv.Key, t.id) {
			t.failed = wire.StatusAbortLocked
		} else {
			t.locked[shard] = append(t.locked[shard], kv.Key)
		}
		t.reads[kv.Key] = wire.KV{Key: kv.Key, Version: kv.Version}
		if t.failed != wire.StatusOK {
			continue
		}
		if v, known := p.index.VersionOf(kv.Key); known {
			if v != kv.Version {
				t.failed = wire.StatusAbortVersion
			}
			continue
		}
		kv := kv
		pending++
		c.DMARead([]int{btreeVerifyBytes}, func() {
			if t.dead {
				return
			}
			_, ver, ok := p.data.Read(kv.Key)
			if stale := ok && ver != kv.Version || !ok && kv.Version != 0; stale &&
				t.failed == wire.StatusOK {
				t.failed = wire.StatusAbortVersion
			}
			finish()
		})
	}
	finish()
}

// execLockKeys lists the write keys locked through EXECUTE rounds: all
// partitioned-hash keys, plus B+tree keys whose shard this node no longer
// serves as primary — after a rejoin the stable-primary rule leaves the
// old shard with the promoted node, so the rejoiner's B+tree writes lock
// remotely like any other key. (Coordinator-local B+tree blind writes are
// still locked directly in lockBlindBTree.)
func (n *Node) execLockKeys(d *txnmodel.TxnDesc) []uint64 {
	var out []uint64
	for _, k := range d.WriteKeys() {
		if !n.place().IsBTree(k) || n.primaryNode(n.place().ShardOf(k)) != n.id {
			out = append(out, k)
		}
	}
	return out
}

// shipTarget reports the single remote primary node a transaction can be
// shipped to: all keys must live on this node and exactly one remote node
// (§4.2.3).
func (n *Node) shipTarget(d *txnmodel.TxnDesc) (int, bool) {
	remote := -1
	for _, k := range append(append([]uint64{}, d.ReadKeys...), d.WriteKeys()...) {
		dst := n.primaryNode(n.place().ShardOf(k))
		if dst == n.id {
			continue
		}
		if remote == -1 {
			remote = dst
		} else if remote != dst {
			return 0, false
		}
	}
	if remote == -1 {
		return 0, false // fully local: the host fast path covers it
	}
	return remote, true
}

// execRound fans out combined read+lock EXECUTE operations for the given
// keys, one per shard — or per key when SmartRemoteOps is disabled,
// mirroring one-sided RDMA's separate read/lock operations (§5.7).
func (n *Node) execRound(c *nicrt.Core, t *ctxn, readKeys, lockKeys []uint64) {
	n.setPhase(t, phExecute)
	type part struct{ reads, locks []uint64 }
	parts := map[int]*part{}
	shardPart := func(s int) *part {
		p, ok := parts[s]
		if !ok {
			p = &part{}
			parts[s] = p
		}
		return p
	}
	for _, k := range readKeys {
		p := shardPart(n.place().ShardOf(k))
		p.reads = append(p.reads, k)
	}
	for _, k := range lockKeys {
		p := shardPart(n.place().ShardOf(k))
		p.locks = append(p.locks, k)
	}

	smart := n.cl.cfg.Features.SmartRemoteOps
	var shards []int
	for s := range parts {
		shards = append(shards, s)
	}
	sortInts(shards)
	type op struct {
		shard        int
		reads, locks []uint64
	}
	var ops []op
	for _, s := range shards {
		p := parts[s]
		if smart {
			ops = append(ops, op{s, p.reads, p.locks})
			continue
		}
		for _, k := range p.reads {
			ops = append(ops, op{s, []uint64{k}, nil})
		}
		for _, k := range p.locks {
			ops = append(ops, op{s, nil, []uint64{k}})
		}
	}
	t.pending = len(ops)
	if t.pending == 0 {
		n.afterExec(c, t)
		return
	}
	for _, o := range ops {
		o := o
		dst := n.primaryNode(o.shard)
		if dst == n.id {
			n.serverExecute(c, o.shard, t.id, o.reads, o.locks, func(st wire.Status, items []wire.KV) {
				var locks []uint64
				if st == wire.StatusOK {
					locks = o.locks
				}
				n.coordExecPart(c, t, o.shard, locks, st, items)
			})
			continue
		}
		c.Send(dst, &wire.Execute{
			Header:   wire.Header{TxnID: t.id, Src: uint8(n.id)},
			ReadKeys: o.reads, LockKeys: o.locks,
		})
	}
}

// coordExecuteResp routes a remote EXECUTE response into the state machine.
// The response echoes the keys it locked (nothing stays locked on abort).
func (n *Node) coordExecuteResp(c *nicrt.Core, m *wire.ExecuteResp) {
	t, ok := n.ctxns[m.TxnID]
	if !ok || t.phase != phExecute {
		if !ok && m.Status == wire.StatusOK && len(m.Locked) > 0 {
			// Straggler from a view-change abort: release its locks.
			c.Send(int(m.Src), &wire.Abort{
				Header:     wire.Header{TxnID: m.TxnID, Src: uint8(n.id)},
				LockedKeys: m.Locked,
			})
		}
		return
	}
	shard := -1
	if len(m.Locked) > 0 {
		shard = n.place().ShardOf(m.Locked[0])
	}
	n.coordExecPart(c, t, shard, m.Locked, m.Status, m.Items)
}

// coordExecPart accumulates one EXECUTE unit's outcome.
func (n *Node) coordExecPart(c *nicrt.Core, t *ctxn, shard int, locks []uint64,
	st wire.Status, items []wire.KV) {

	if t.dead {
		// A view-change abort swept t.locked while this local EXECUTE unit
		// was still in flight, so the locks it just acquired have no owner
		// left to release them. Unlock here — the local analogue of the
		// straggler Abort coordExecuteResp sends for remote responses.
		if st == wire.StatusOK && len(locks) > 0 {
			n.chargeIndexOps(c, len(locks))
			for _, k := range locks {
				if p := n.prim(n.place().ShardOf(k)); p != nil {
					p.index.UnlockIf(k, t.id)
				}
			}
		}
		return
	}
	if st == wire.StatusOK {
		if len(locks) > 0 {
			t.locked[shard] = append(t.locked[shard], locks...)
		}
		for _, kv := range items {
			t.reads[kv.Key] = kv
		}
	} else if t.failed == wire.StatusOK {
		t.failed = st
	}
	t.pending--
	if t.pending > 0 {
		return
	}
	if t.failed != wire.StatusOK {
		n.abortTxn(c, t)
		return
	}
	n.afterExec(c, t)
}

// afterExec runs once all EXECUTE responses are in: execute on the NIC
// (§4.2.2) or round-trip to the host.
func (n *Node) afterExec(c *nicrt.Core, t *ctxn) {
	if t.hasStash {
		// This round existed only to lock execution-introduced write keys.
		writes := t.relockStash
		t.relockStash, t.hasStash = nil, false
		n.prepareCommit(c, t, writes)
		return
	}
	t.rounds++
	if t.nicExec {
		fn, ok := n.cl.reg.Get(t.desc.FnID)
		if !ok {
			panic(fmt.Sprintf("core: unknown fn %d", t.desc.FnID))
		}
		reads := n.readsInOrder(t)
		c.Charge(n.cl.cfg.Params.HostScaled(fn.HostCost))
		res := fn.Run(t.desc.State, reads)
		if res.Abort {
			t.failed = wire.StatusAbortMissing
			n.abortTxn(c, t)
			return
		}
		if len(res.MoreReads) > 0 {
			t.addReadOrder(res.MoreReads)
			n.execRound(c, t, res.MoreReads, nil)
			return
		}
		n.prepareCommit(c, t, res.Writes)
		return
	}
	n.setPhase(t, phHostExec)
	c.SendHost(&wire.ReadReturn{
		Header: wire.Header{TxnID: t.id, Src: uint8(n.id)},
		Items:  n.readsInOrder(t),
	})
}

// readsInOrder assembles execution input in (ReadKeys ++ UpdateKeys ++
// later rounds) order.
func (n *Node) readsInOrder(t *ctxn) []wire.KV {
	out := make([]wire.KV, len(t.readOrder))
	for i, k := range t.readOrder {
		if kv, ok := t.reads[k]; ok {
			out[i] = kv
		} else {
			out[i] = wire.KV{Key: k}
		}
	}
	return out
}

// addReadOrder appends newly requested read keys for later rounds.
func (t *ctxn) addReadOrder(keys []uint64) {
	have := map[uint64]bool{}
	for _, k := range t.readOrder {
		have[k] = true
	}
	for _, k := range keys {
		if !have[k] {
			have[k] = true
			t.readOrder = append(t.readOrder, k)
		}
	}
}

// coordWriteSet resumes with host-computed writes (§4.2 step 3).
func (n *Node) coordWriteSet(c *nicrt.Core, m *wire.WriteSet) {
	t, ok := n.ctxns[m.TxnID]
	if !ok || t.phase != phHostExec {
		return
	}
	if m.Abort {
		t.failed = wire.StatusAbortMissing
		n.abortTxn(c, t)
		return
	}
	if len(m.MoreReads) > 0 {
		t.writes = append(t.writes, m.Writes...)
		t.addReadOrder(m.MoreReads)
		n.execRound(c, t, m.MoreReads, nil)
		return
	}
	n.prepareCommit(c, t, append(t.writes, m.Writes...))
}

// prepareCommit assigns versions, locks any write keys the execution
// introduced, and moves to validation.
func (n *Node) prepareCommit(c *nicrt.Core, t *ctxn, fnWrites []wire.KV) {
	writes := append(fnWrites, t.desc.BlindWrites...)
	// Lock any write keys not yet locked (execution-introduced writes).
	var missing []uint64
	seen := map[uint64]bool{}
	for _, kv := range writes {
		if seen[kv.Key] {
			continue
		}
		seen[kv.Key] = true
		if !n.keyLocked(t, kv.Key) {
			missing = append(missing, kv.Key)
		}
	}
	if len(missing) > 0 {
		// Lock execution-introduced write keys via one more EXECUTE round
		// before validating; afterExec re-enters prepareCommit with the
		// stashed output. Locking the keys also reads their current
		// versions, which versionWrites needs.
		t.relockStash = fnWrites
		t.hasStash = true
		n.execRound(c, t, nil, missing)
		return
	}
	versionWrites(writes, versionBasis(t))
	t.writes = writes
	n.validate(c, t)
}

// versionBasis lists every (key, observed version) the transaction read or
// locked, as the basis for successor version assignment.
func versionBasis(t *ctxn) []wire.KV {
	out := make([]wire.KV, 0, len(t.reads))
	for _, kv := range t.reads {
		out = append(out, kv)
	}
	return out
}

func (n *Node) keyLocked(t *ctxn, key uint64) bool {
	s := n.place().ShardOf(key)
	for _, k := range t.locked[s] {
		if k == key {
			return true
		}
	}
	return false
}

// validate issues VALIDATE operations for read-set keys not covered by
// write locks (§4.2 step 4). Read-only single-key transactions skip it:
// their single read is already atomic.
func (n *Node) validate(c *nicrt.Core, t *ctxn) {
	n.setPhase(t, phValidate)
	if mutSkipValidation {
		n.afterValidate(c, t)
		return
	}
	writeKeys := map[uint64]bool{}
	for _, kv := range t.writes {
		writeKeys[kv.Key] = true
	}
	byShard := map[int][]wire.KeyVer{}
	var shards []int
	total := 0
	for _, kv := range n.readsInOrder(t) { // deterministic order
		if writeKeys[kv.Key] {
			continue
		}
		s := n.place().ShardOf(kv.Key)
		if _, ok := byShard[s]; !ok {
			shards = append(shards, s)
		}
		byShard[s] = append(byShard[s], wire.KeyVer{Key: kv.Key, Version: kv.Version})
		total++
	}
	if total == 0 || (t.desc.ReadOnly() && total == 1 && len(t.writes) == 0) {
		n.afterValidate(c, t)
		return
	}
	sortInts(shards)
	smart := n.cl.cfg.Features.SmartRemoteOps
	type vop struct {
		shard int
		items []wire.KeyVer
	}
	var ops []vop
	for _, s := range shards {
		items := byShard[s]
		if smart {
			ops = append(ops, vop{s, items})
			continue
		}
		for _, it := range items {
			ops = append(ops, vop{s, []wire.KeyVer{it}})
		}
	}
	t.pending = len(ops)
	for _, o := range ops {
		dst := n.primaryNode(o.shard)
		if dst == n.id {
			n.serverValidate(c, o.shard, t.id, o.items, func(st wire.Status) {
				n.coordValidatePart(c, t, st)
			})
			continue
		}
		c.Send(dst, &wire.Validate{
			Header: wire.Header{TxnID: t.id, Src: uint8(n.id)},
			Items:  o.items,
		})
	}
}

func (n *Node) coordValidateResp(c *nicrt.Core, m *wire.ValidateResp) {
	t, ok := n.ctxns[m.TxnID]
	if !ok || t.phase != phValidate {
		return
	}
	n.coordValidatePart(c, t, m.Status)
}

func (n *Node) coordValidatePart(c *nicrt.Core, t *ctxn, st wire.Status) {
	if t.dead {
		return
	}
	if st != wire.StatusOK && t.failed == wire.StatusOK {
		t.failed = st
	}
	t.pending--
	if t.pending > 0 {
		return
	}
	if t.failed != wire.StatusOK {
		n.abortTxn(c, t)
		return
	}
	n.afterValidate(c, t)
}

func (n *Node) afterValidate(c *nicrt.Core, t *ctxn) {
	if len(t.writes) == 0 {
		// Read-only transaction completes after validation (§4.2 step 5).
		n.recordCommit(t, nil)
		n.finishTxn(c, t, wire.StatusOK)
		n.closeTxn(t, wire.StatusOK)
		delete(n.ctxns, t.id)
		return
	}
	n.logPhase(c, t)
}

// logPhase replicates the write set to every surviving backup of every
// write shard (§4.2 step 5).
func (n *Node) logPhase(c *nicrt.Core, t *ctxn) {
	// Validation succeeded: this transaction's outcome is decided, so its
	// hot-key claims can release now instead of at close. A waiter admitted
	// here overlaps its read round with this transaction's log/commit tail
	// (by the time it reaches validation the writes are applied), restoring
	// the phase overlap OCC gets for free while still keeping conflicters
	// out of the owner's execute/validate window. closeTxn's release is a
	// no-op after this one.
	n.nic.SchedDone(t.id)
	n.setPhase(t, phLog)
	if mutUnlockBeforeLog {
		n.mutReleaseLocks(c, t)
	}
	byShard := groupByShard(n.place(), t.writes)
	t.pending = 0
	for _, sw := range byShard {
		t.pending += len(n.cl.viewBackups(sw.shard))
	}
	if t.pending == 0 {
		// Replication factor 1 (or all backups lost): commit directly.
		n.committed(c, t)
		return
	}
	for _, sw := range byShard {
		for _, b := range n.cl.viewBackups(sw.shard) {
			if b == n.id {
				sw := sw
				n.appendLog(c, recBackup, t.id, sw.shard, sw.writes, func(uint64) {
					n.coordLogPart(c, t)
				})
				continue
			}
			c.Send(b, &wire.Log{
				Header:    wire.Header{TxnID: t.id, Src: uint8(n.id)},
				RespondTo: uint8(n.id),
				Writes:    sw.writes,
			})
		}
	}
}

func (n *Node) coordLogResp(c *nicrt.Core, m *wire.LogResp) {
	t, ok := n.ctxns[m.TxnID]
	if !ok {
		return
	}
	if t.phase == phShipped {
		t.logAcks++
		n.maybeFinishShipped(c, t)
		return
	}
	if t.phase != phLog {
		return
	}
	n.coordLogPart(c, t)
}

func (n *Node) coordLogPart(c *nicrt.Core, t *ctxn) {
	if t.dead {
		return
	}
	t.pending--
	if t.pending > 0 {
		return
	}
	n.committed(c, t)
}

// notifyLogCommits tells every backup that logged this transaction's
// records that the commit point was reached, so they apply the records
// (and recovery can tell decided records from undecided ones).
func (n *Node) notifyLogCommits(c *nicrt.Core, txn uint64, writes []wire.KV, cts uint64) {
	for _, sw := range groupByShard(n.place(), writes) {
		for _, b := range n.cl.viewBackups(sw.shard) {
			if b == n.id {
				n.log.markCommitted(txn, sw.shard, cts)
				n.wakeWorkers()
				continue
			}
			c.Send(b, &wire.LogCommit{
				Header: wire.Header{TxnID: txn, Src: uint8(n.id)},
				Shard:  uint8(sw.shard), CTS: cts,
			})
		}
	}
}

// assignCTS allocates the transaction's MVCC commit timestamp at its commit
// point (0 under MVCC-off), charging one pending host-apply per write shard
// toward the snapshot watermark.
func (n *Node) assignCTS(txn uint64, writes []wire.KV) uint64 {
	if !n.cl.mv.enabled || len(writes) == 0 {
		return 0
	}
	var mask uint64
	place := n.place()
	for _, kv := range writes {
		mask |= 1 << uint(place.ShardOf(kv.Key))
	}
	return n.cl.mv.assign(txn, mask)
}

// committed reports the outcome to the host, then applies the write set at
// each primary (§4.2 step 6). The commit phase is off the latency path.
func (n *Node) committed(c *nicrt.Core, t *ctxn) {
	t.cts = n.assignCTS(t.id, t.writes)
	n.recordCommit(t, t.writes)
	n.finishTxn(c, t, wire.StatusOK)
	n.notifyLogCommits(c, t.id, t.writes, t.cts)
	n.setPhase(t, phCommit)
	byShard := groupByShard(n.place(), t.writes)
	t.pending = len(byShard)
	for _, sw := range byShard {
		dst := n.primaryNode(sw.shard)
		if dst == n.id {
			unlock := t.locked[sw.shard]
			n.commitShard(c, sw.shard, t.id, sw.writes, unlock, t.cts, func() {
				n.coordCommitPart(c, t)
			})
			continue
		}
		c.Send(dst, &wire.Commit{
			Header: wire.Header{TxnID: t.id, Src: uint8(n.id)},
			Writes: sw.writes, CTS: t.cts,
		})
	}
}

func (n *Node) coordCommitResp(c *nicrt.Core, m *wire.CommitResp) {
	t, ok := n.ctxns[m.TxnID]
	if !ok || t.phase != phCommit {
		return
	}
	n.coordCommitPart(c, t)
}

func (n *Node) coordCommitPart(c *nicrt.Core, t *ctxn) {
	if t.dead {
		return
	}
	t.pending--
	if t.pending > 0 {
		return
	}
	n.closeTxn(t, wire.StatusOK)
	delete(n.ctxns, t.id)
}

// abortTxn releases all locks and reports the abort to the host.
func (n *Node) abortTxn(c *nicrt.Core, t *ctxn) {
	n.snapClose(t) // snapshot reads hold no locks, only the GC refcount
	var shards []int
	for s := range t.locked {
		shards = append(shards, s)
	}
	sortInts(shards)
	for _, s := range shards {
		keys := t.locked[s]
		if len(keys) == 0 {
			continue
		}
		dst := n.primaryNode(s)
		if dst == n.id {
			n.chargeIndexOps(c, len(keys))
			idx := n.prim(s).index
			for _, k := range keys {
				idx.Unlock(k, t.id)
			}
			continue
		}
		c.Send(dst, &wire.Abort{
			Header:     wire.Header{TxnID: t.id, Src: uint8(n.id)},
			LockedKeys: keys,
		})
	}
	if t.phase == phLog {
		// The abort interrupted log replication (only a view change can do
		// that), so backups may hold undecided records. Announce the abort
		// like notifyLogCommits announces commits: without it a backup
		// promoted to primary parks the record in pendingDecide and keeps
		// the write set locked waiting for a decision that never comes.
		for _, sw := range groupByShard(n.place(), t.writes) {
			for _, b := range n.cl.replicasOf(sw.shard) {
				if b == n.id {
					n.log.drop(t.id, sw.shard)
					continue
				}
				c.Send(b, &wire.RecoveryDecide{
					Header: wire.Header{TxnID: t.id, Src: uint8(n.id)},
					Shard:  uint8(sw.shard), Commit: false,
				})
			}
		}
	}
	n.recordAbort(t, t.failed)
	n.traceAbort(t)
	n.finishTxn(c, t, t.failed)
	n.closeTxn(t, t.failed)
	delete(n.ctxns, t.id)
}

// --- coordinator watchdog (fault runs) ---
//
// Drops, partitions, and stalls can leave a coordinated transaction parked
// in a fan-out phase holding remote locks. The reliable transport eventually
// delivers every frame between live nodes, so the watchdog is a lock-hold
// bound, not a correctness mechanism: when a transaction sits in EXECUTE or
// VALIDATE past the plan's TxnTimeout without a phase change, it is aborted
// (StatusAbortTimeout) and retried by the application with backoff. Later
// phases are excluded — host execution always progresses locally, and past
// the commit point the outcome must stand (delivery to live nodes is
// guaranteed; dead nodes are handled by view-change recovery).

// armWatchdog schedules the first expiry check for t (fault runs only).
func (n *Node) armWatchdog(t *ctxn) {
	if !n.faulty() {
		return
	}
	d := n.cl.cfg.Faults.TxnTimeoutOrDefault()
	id, epoch := t.id, t.epoch
	n.cl.eng.After(d, func() { n.checkWatchdog(id, epoch, d) })
}

// checkWatchdog fires d after the epoch it observed was current: if the
// transaction progressed, re-arm from the new epoch; if it is still parked
// in a timeout-eligible phase, abort it on a NIC core.
func (n *Node) checkWatchdog(id uint64, epoch int, d sim.Time) {
	if !n.alive {
		return
	}
	t, ok := n.ctxns[id]
	if !ok || t.dead {
		return
	}
	if t.epoch != epoch || (t.phase != phExecute && t.phase != phValidate) {
		epoch := t.epoch
		n.cl.eng.After(d, func() { n.checkWatchdog(id, epoch, d) })
		return
	}
	n.nic.Inject(n.nic.CoreFor(id), func(c *nicrt.Core) {
		t, ok := n.ctxns[id]
		if !ok || t.dead {
			return
		}
		if t.epoch != epoch || (t.phase != phExecute && t.phase != phValidate) {
			// The transaction progressed between the expiry check and this
			// core injection (e.g. a shipped result or validate ack landed
			// first). Progress must re-arm, not kill, the watchdog chain: a
			// later execution round can park in EXECUTE/VALIDATE again.
			epoch := t.epoch
			n.cl.eng.After(d, func() { n.checkWatchdog(id, epoch, d) })
			return
		}
		n.stats.Timeouts[t.phase]++
		if tr := n.tr(); tr.Enabled() {
			tr.Instant("fault", "txn-timeout", n.id, 0, n.cl.eng.Now(),
				trace.Args{"txn": t.id, "phase": t.phase.String()})
		}
		t.failed = wire.StatusAbortTimeout
		// Anything still pending (local async lookups, remote responses)
		// must land as a straggler, exactly as after a view-change abort.
		t.dead = true
		n.abortTxn(c, t)
	})
}

// finishTxn reports a transaction outcome to the host application.
func (n *Node) finishTxn(c *nicrt.Core, t *ctxn, st wire.Status) {
	done := &wire.TxnDone{
		Header: wire.Header{TxnID: t.id, Src: uint8(n.id)},
		Status: st,
	}
	if t.nicExec && st == wire.StatusOK {
		done.ReadSet = n.readsInOrder(t)
	}
	c.SendHost(done)
}

// shedTxn reports a scheduler-shed transaction back to the host as an
// abort. The transaction never started — the scheduler parked it past its
// shed deadline, so there is no ctxn and no locks to release; the host
// retries it with backoff like any other abort.
func (n *Node) shedTxn(c *nicrt.Core, req *wire.TxnRequest) {
	n.dbgEvt(req.TxnID, "shedTxn (scheduler shed)")
	c.SendHost(&wire.TxnDone{
		Header: wire.Header{TxnID: req.TxnID, Src: uint8(n.id)},
		Status: wire.StatusAbortSched,
	})
}

// --- shipped path (§4.2.3) ---

// shipTxn locks and reads the local part at this coordinator NIC, then
// ships execution to the remote primary node.
func (n *Node) shipTxn(c *nicrt.Core, t *ctxn, dst int) {
	n.setPhase(t, phShipped)
	t.shipTo = dst

	// Lock-all on local keys (reads too: the shipped path skips
	// validation). B+tree blind keys were already locked in coordStart.
	already := map[uint64]bool{}
	for _, ks := range t.locked {
		for _, k := range ks {
			already[k] = true
		}
	}
	var localKeys []uint64
	seen := map[uint64]bool{}
	for _, k := range append(append([]uint64{}, t.desc.ReadKeys...), t.desc.WriteKeys()...) {
		s := n.place().ShardOf(k)
		if n.primaryNode(s) == n.id && !seen[k] {
			seen[k] = true
			localKeys = append(localKeys, k)
		}
	}
	n.chargeIndexOps(c, len(localKeys))
	for _, k := range localKeys {
		if already[k] {
			continue
		}
		s := n.place().ShardOf(k)
		if !n.serving(s) {
			t.failed = wire.StatusAbortLocked
			n.abortTxn(c, t)
			return
		}
		if !n.prim(s).index.TryLock(k, t.id) {
			t.failed = wire.StatusAbortLocked
			n.abortTxn(c, t)
			return
		}
		t.locked[s] = append(t.locked[s], k)
	}
	t.localLocks = localKeys

	// Read local values, then ship. B+tree keys' versions are already in
	// t.reads (observed at the host); hash keys resolve via the index.
	localReads := make([]wire.KV, len(localKeys))
	pending := 0
	send := func() {
		c.Send(dst, &wire.ShipExec{
			Header:     wire.Header{TxnID: t.id, Src: uint8(n.id)},
			FnID:       t.desc.FnID,
			Coord:      uint8(n.id),
			ReadKeys:   t.desc.ReadKeys,
			WriteKeys:  t.desc.WriteKeys(),
			WriteSet:   t.desc.BlindWrites,
			ExecState:  t.desc.State,
			LocalReads: localReads,
		})
	}
	var hashIdx []int
	for i, k := range localKeys {
		if n.place().IsBTree(k) {
			localReads[i] = t.reads[k]
		} else {
			hashIdx = append(hashIdx, i)
		}
	}
	pending = len(hashIdx)
	if pending == 0 {
		send()
		return
	}
	for _, i := range hashIdx {
		i, k := i, localKeys[i]
		s := n.place().ShardOf(k)
		n.lookupAsync(c, s, k, func(res nicindex.Result) {
			localReads[i] = wire.KV{Key: k, Version: res.Version, Value: res.Value}
			t.reads[k] = localReads[i]
			pending--
			if pending == 0 && !t.dead {
				send()
			}
		})
	}
}

func (n *Node) coordShipResult(c *nicrt.Core, m *wire.ShipResult) {
	t, ok := n.ctxns[m.TxnID]
	if !ok || t.phase != phShipped {
		if ok || m.Status != wire.StatusOK {
			return
		}
		// Straggler: the transaction was aborted by a view change while
		// the shipped execution was in flight. Release the remote lock-all
		// state and drop the backup records it fanned out.
		c.Send(int(m.Src), &wire.Abort{Header: wire.Header{TxnID: m.TxnID, Src: uint8(n.id)}})
		for _, sw := range groupByShard(n.place(), m.Writes) {
			for _, b := range n.cl.replicasOf(sw.shard) {
				if b == n.id {
					n.log.drop(m.TxnID, sw.shard)
					continue
				}
				c.Send(b, &wire.RecoveryDecide{
					Header: wire.Header{TxnID: m.TxnID, Src: uint8(n.id)},
					Shard:  uint8(sw.shard), Commit: false,
				})
			}
		}
		return
	}
	if m.Status != wire.StatusOK {
		n.unlockLocalSet(c, t, nil)
		t.failed = m.Status
		n.recordAbort(t, m.Status)
		n.traceAbort(t)
		n.finishTxn(c, t, m.Status)
		n.closeTxn(t, m.Status)
		delete(n.ctxns, t.id)
		return
	}
	t.gotResult = true
	t.shipped = m
	t.expectLogs = int(m.NumLogs)
	n.maybeFinishShipped(c, t)
}

// unlockLocalSet releases every locally-held lock of t, except on shards in
// skip (whose locks a pending commitShard releases after durability).
func (n *Node) unlockLocalSet(c *nicrt.Core, t *ctxn, skip map[int]bool) {
	var shards []int
	for s := range t.locked {
		shards = append(shards, s)
	}
	sortInts(shards)
	for _, s := range shards {
		if skip[s] || n.primaryNode(s) != n.id {
			continue
		}
		idx := n.prim(s).index
		n.chargeIndexOps(c, len(t.locked[s]))
		for _, k := range t.locked[s] {
			idx.Unlock(k, t.id)
		}
	}
}

// maybeFinishShipped completes a shipped transaction once the result and
// every backup ack have arrived: report to the host, commit the local
// part, and send the COMMIT to the remote primary.
func (n *Node) maybeFinishShipped(c *nicrt.Core, t *ctxn) {
	if t.dead || !t.gotResult || t.logAcks < t.expectLogs {
		return
	}
	for _, kv := range t.shipped.ReadSet {
		t.reads[kv.Key] = kv
	}
	t.nicExec = true // results return with TxnDone
	t.cts = n.assignCTS(t.id, t.shipped.Writes)
	n.recordCommit(t, t.shipped.Writes)
	n.finishTxn(c, t, wire.StatusOK)
	n.notifyLogCommits(c, t.id, t.shipped.Writes, t.cts)

	byShard := groupByShard(n.place(), t.shipped.Writes)
	n.setPhase(t, phCommit)
	t.pending = 0
	localWriteShards := map[int]bool{}
	remoteCovered := false
	for _, sw := range byShard {
		dst := n.primaryNode(sw.shard)
		t.pending++
		if dst == n.id {
			localWriteShards[sw.shard] = true
			n.commitShard(c, sw.shard, t.id, sw.writes, t.locked[sw.shard], t.cts, func() {
				n.coordCommitPart(c, t)
			})
			continue
		}
		if dst == t.shipTo {
			remoteCovered = true
		}
		c.Send(dst, &wire.Commit{
			Header: wire.Header{TxnID: t.id, Src: uint8(n.id)},
			Writes: sw.writes, CTS: t.cts,
		})
	}
	// Release local read locks on shards with no local writes. The shipped
	// path locks read keys too, and after a promotion this coordinator may
	// serve several shards: writes can land on one local shard while another
	// holds only read locks, so a single "did any local commit run" bit
	// would leak the latter. Shards in localWriteShards release inside
	// commitShard once their record is durable.
	if len(t.localLocks) > 0 {
		n.unlockLocalSet(c, t, localWriteShards)
	}
	if !remoteCovered {
		// The remote primary holds read locks but has no writes to commit:
		// release them explicitly.
		c.Send(t.shipTo, &wire.Abort{Header: wire.Header{TxnID: t.id, Src: uint8(n.id)}})
	}
	if t.pending == 0 {
		n.closeTxn(t, wire.StatusOK)
		delete(n.ctxns, t.id)
	}
}

// --- local-transaction fast path (§4.2.4) ---

// coordLocalCommit finishes a host-executed local transaction: lock the
// write set in the NIC index, validate the host-observed versions, then
// replicate and commit without any further host round trips.
func (n *Node) coordLocalCommit(c *nicrt.Core, m *wire.TxnRequest) {
	t := &ctxn{
		id:     m.TxnID,
		desc:   &txnmodel.TxnDesc{},
		reads:  map[uint64]wire.KV{},
		locked: map[int][]uint64{},
	}
	n.ctxns[t.id] = t
	n.openTxn(t)
	if n.cl.hist != nil {
		// The request carries the versions the host fast path observed; stash
		// them as the transaction's read set so its history record is
		// complete. Recording only — versionBasis is never consulted on this
		// path, so behavior is unchanged.
		for _, rv := range m.LocalReadVers {
			t.reads[rv.Key] = wire.KV{Key: rv.Key, Version: rv.Version}
		}
		for _, kv := range m.WriteSet {
			t.reads[kv.Key] = wire.KV{Key: kv.Key, Version: kv.Version}
		}
	}

	abort := func(st wire.Status) {
		t.failed = st
		n.abortTxn(c, t)
	}

	// Lock write keys.
	n.chargeIndexOps(c, len(m.WriteSet))
	for _, kv := range m.WriteSet {
		s := n.place().ShardOf(kv.Key)
		if !n.serving(s) {
			abort(wire.StatusAbortLocked)
			return
		}
		if !n.prim(s).index.TryLock(kv.Key, t.id) {
			abort(wire.StatusAbortLocked)
			return
		}
		t.locked[s] = append(t.locked[s], kv.Key)
	}

	// Validate: the NIC index is authoritative for versions it knows
	// (committed-but-unapplied writes are pinned there); keys it no longer
	// tracks are re-read from the authoritative host store. The versions
	// the host observed are from submit time and may predate a commit that
	// has been applied since — trusting them unchecked loses updates.
	failed := wire.StatusOK
	fail := func(st wire.Status) {
		if failed == wire.StatusOK {
			failed = st
		}
	}
	pending := 1
	finish := func() {
		pending--
		if pending != 0 || t.dead {
			return
		}
		if failed != wire.StatusOK {
			abort(failed)
			return
		}
		writes := make([]wire.KV, len(m.WriteSet))
		for i, kv := range m.WriteSet {
			writes[i] = wire.KV{Key: kv.Key, Version: kv.Version + 1, Value: kv.Value}
		}
		t.writes = writes
		n.logPhase(c, t)
	}
	check := func(key uint64, ver uint64) {
		s := n.place().ShardOf(key)
		idx := n.prim(s).index
		if idx.IsLocked(key, t.id) {
			fail(wire.StatusAbortVersion)
			return
		}
		if v, known := idx.VersionOf(key); known {
			if v != ver {
				fail(wire.StatusAbortVersion)
			}
			return
		}
		pending++
		if n.place().IsBTree(key) {
			c.DMARead([]int{btreeVerifyBytes}, func() {
				if t.dead {
					return
				}
				_, v, ok := n.prim(s).data.Read(key)
				if ok && v != ver || !ok && ver != 0 {
					fail(wire.StatusAbortVersion)
				}
				finish()
			})
			return
		}
		n.lookupAsync(c, s, key, func(res nicindex.Result) {
			if t.dead {
				return
			}
			if res.Version != ver {
				fail(wire.StatusAbortVersion)
			}
			finish()
		})
	}
	n.chargeIndexOps(c, len(m.LocalReadVers)+len(m.WriteSet))
	for _, rv := range m.LocalReadVers {
		check(rv.Key, rv.Version)
	}
	for _, kv := range m.WriteSet {
		check(kv.Key, kv.Version)
	}
	finish()
}
