package core

import "xenic/internal/wire"

// recordKind distinguishes backup log records from primary commit records.
type recordKind uint8

const (
	recBackup recordKind = iota // replicated write set at a backup (§4.2 step 5)
	recCommit                   // committed write set at the primary (§4.2 step 6)
)

// logRecord is one entry in a node's host-memory log, written by the NIC
// via DMA and applied by host worker threads off the critical path.
//
// Backup records are applied only after the transaction's commit point: the
// coordinator piggybacks LogCommit notifications once every backup ack is
// in (FaRM applies at log truncation for the same reason). Undecided
// records stay unapplied so recovery (§4.2.1) can commit or drop them.
type logRecord struct {
	seq   uint64
	kind  recordKind
	txn   uint64
	shard int // shard the writes belong to
	// epoch is the membership view epoch the record was logged under (the
	// Log frame's epoch, or the node's own at append time). The promotion
	// fence drops only records from epochs older than its own: a record a
	// new-view coordinator logs can race the fence frame and must survive it.
	epoch  int
	writes []wire.KV
	// cts is the MVCC commit timestamp the record's writes install at
	// (0 = MVCC off or pre-MVCC record). Stamped at append for commit
	// records; for backup records, stamped by the LogCommit / recovery
	// decision that decides them.
	cts uint64
	// kvTS carries per-KV snapshot-base timestamps for state-transfer chunk
	// records (rejoin re-replication); empty for ordinary records.
	kvTS      []uint64
	committed bool
	dropped   bool
	applied   bool
}

// recordBytes is the DMA-write size of a record: 8B seq + 1B kind + 8B txn
// + 1B shard plus the encoded write set.
func recordBytes(writes []wire.KV) int {
	n := 18
	for _, kv := range writes {
		n += 8 + 8 + 2 + len(kv.Value)
	}
	return n
}

// hostLog is a node's log region in host memory. Records become visible to
// host pollers when the NIC's DMA write completes; worker threads claim
// decided records in order.
type hostLog struct {
	records []logRecord
	nextSeq uint64
	// byTxn indexes undecided backup records: (txn, shard) -> record index.
	byTxn map[txnShard][]int
	// ready queues indices of decided, unapplied records.
	ready []int
	rhead int
}

type txnShard struct {
	txn   uint64
	shard int
}

func newHostLog() *hostLog {
	return &hostLog{byTxn: map[txnShard][]int{}}
}

// append makes a completed record visible and returns its sequence number.
// Commit records are decided by definition; backup records await their
// LogCommit (or a recovery decision).
func (l *hostLog) append(kind recordKind, txn uint64, shard int, writes []wire.KV, epoch int, cts uint64, kvTS []uint64) uint64 {
	l.nextSeq++
	rec := logRecord{seq: l.nextSeq, kind: kind, txn: txn, shard: shard, writes: writes, epoch: epoch, cts: cts, kvTS: kvTS}
	idx := len(l.records)
	if kind == recCommit {
		rec.committed = true
		l.records = append(l.records, rec)
		l.ready = append(l.ready, idx)
		return l.nextSeq
	}
	l.records = append(l.records, rec)
	k := txnShard{txn: txn, shard: shard}
	l.byTxn[k] = append(l.byTxn[k], idx)
	return l.nextSeq
}

// markCommitted moves a transaction's backup records for shard to the
// ready queue, stamping them with the decision's MVCC commit timestamp
// (cts 0 = MVCC off). Idempotent; unknown (txn, shard) is a no-op (the
// LogCommit may arrive before the record's DMA completes — the coordinator
// only sends it after the ack, so in practice the record exists).
func (l *hostLog) markCommitted(txn uint64, shard int, cts uint64) {
	k := txnShard{txn: txn, shard: shard}
	for _, idx := range l.byTxn[k] {
		r := &l.records[idx]
		if !r.committed && !r.dropped {
			r.committed = true
			if cts != 0 {
				r.cts = cts
			}
			l.ready = append(l.ready, idx)
		}
	}
	delete(l.byTxn, k)
}

// drop discards a transaction's undecided backup records for shard
// (recovery decided abort).
func (l *hostLog) drop(txn uint64, shard int) {
	k := txnShard{txn: txn, shard: shard}
	for _, idx := range l.byTxn[k] {
		l.records[idx].dropped = true
	}
	delete(l.byTxn, k)
}

// dropBefore discards a transaction's undecided backup records for shard
// stamped with an epoch older than fence (the promotion fence). Records a
// new-view coordinator logged concurrently with the fence keep their epoch
// and survive; their own LogCommit or abort decision resolves them.
func (l *hostLog) dropBefore(txn uint64, shard, fence int) {
	k := txnShard{txn: txn, shard: shard}
	kept := l.byTxn[k][:0]
	for _, idx := range l.byTxn[k] {
		if l.records[idx].epoch < fence {
			l.records[idx].dropped = true
			continue
		}
		kept = append(kept, idx)
	}
	if len(kept) == 0 {
		delete(l.byTxn, k)
		return
	}
	l.byTxn[k] = kept
}

// has reports whether the log holds a backup record for (txn, shard) —
// decided or not — and returns its writes (recovery queries).
func (l *hostLog) has(txn uint64, shard int) ([]wire.KV, bool) {
	if idxs, ok := l.byTxn[txnShard{txn: txn, shard: shard}]; ok && len(idxs) > 0 {
		return l.records[idxs[0]].writes, true
	}
	// Already decided records still count as held.
	for i := range l.records {
		r := &l.records[i]
		if r.kind == recBackup && r.txn == txn && r.shard == shard && !r.dropped {
			return r.writes, true
		}
	}
	return nil, false
}

// undecided lists (txn, writes) of undecided backup records for shard.
func (l *hostLog) undecided(shard int) []txnShard {
	var out []txnShard
	for k := range l.byTxn {
		if k.shard == shard {
			out = append(out, k)
		}
	}
	// Deterministic order.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].txn < out[j-1].txn; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// claim hands the next decided, unapplied record to a worker, or nil.
func (l *hostLog) claim() *logRecord {
	for l.rhead < len(l.ready) {
		r := &l.records[l.ready[l.rhead]]
		l.rhead++
		if r.dropped || r.applied {
			continue
		}
		r.applied = true
		return r
	}
	return nil
}

// pending reports decided records awaiting application.
func (l *hostLog) pending() int { return len(l.ready) - l.rhead }
