package core

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"testing"

	"xenic/internal/fault"
	"xenic/internal/sim"
	"xenic/internal/trace"
)

// faultyRun executes the counter workload under a fault plan and returns
// the cluster plus the serialized trace.
func faultyRun(t *testing.T, plan *fault.Plan, seed int64, dur sim.Time) (*Cluster, []byte) {
	t.Helper()
	g := &kvGen{keys: 200, keysPer: 2, readFrac: 0.2, nicExec: true}
	cfg := testConfig(4, AllFeatures())
	cfg.Seed = seed
	cfg.Faults = plan
	cl, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New()
	cl.SetTracer(tr)
	cl.Start()
	cl.Run(dur)
	if !cl.Drain(500 * sim.Millisecond) {
		t.Fatalf("cluster did not quiesce under plan %s", plan)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return cl, buf.Bytes()
}

// planDeaths counts nodes a plan removes from the cluster: crashes plus
// partitions long enough to outlast the lease (eviction).
func planDeaths(p *fault.Plan) int {
	deaths := len(p.Crashes)
	for _, pt := range p.Partitions {
		if pt.End-pt.Start >= 2*sim.Millisecond {
			deaths += len(pt.Nodes)
		}
	}
	return deaths
}

// TestChaosPlansInvariants is the chaos acceptance gate: ten seeded random
// fault plans must each drain with store/index invariants and replica
// consistency intact. Plans that kill no node must additionally preserve
// the exact OCC counter equality (no lost or duplicated updates).
func TestChaosPlansInvariants(t *testing.T) {
	injected := false
	for i := int64(0); i < 10; i++ {
		plan := fault.RandomPlan(100+i, 4)
		cl, _ := faultyRun(t, plan, 100+i, 4*sim.Millisecond)
		if err := cl.CheckInvariants(); err != nil {
			t.Fatalf("plan %d (%s): %v", i, plan, err)
		}
		if err := cl.ReplicasConsistent(); err != nil {
			t.Fatalf("plan %d (%s): %v", i, plan, err)
		}
		var committed int64
		for _, n := range cl.nodes {
			committed += n.stats.Committed
		}
		if committed == 0 {
			t.Fatalf("plan %d (%s): nothing committed", i, plan)
		}
		inj := cl.Injector()
		if inj.Drops+inj.PartDrops+inj.Dups+inj.Delayed > 0 {
			injected = true
		}
		if planDeaths(plan) == 0 {
			// Full cluster survived: every committed increment must be
			// visible exactly once.
			g := &kvGen{keys: 200}
			var sum uint64
			for k := 0; k < g.keys; k++ {
				shard := cl.place.ShardOf(uint64(k))
				v, _, ok := cl.nodes[cl.primaryNode(shard)].prim(shard).data.Read(uint64(k))
				if !ok {
					t.Fatalf("plan %d: key %d missing", i, k)
				}
				sum += binary.LittleEndian.Uint64(v)
			}
			var expected uint64
			for _, n := range cl.nodes {
				expected += uint64(n.stats.UpdateKeysCommitted)
			}
			if sum != expected {
				t.Fatalf("plan %d (%s): counter sum %d != committed increments %d", i, plan, sum, expected)
			}
		}
	}
	if !injected {
		t.Fatal("no plan injected any frame fault")
	}
}

// TestFaultyTraceDeterministic locks in the reproducibility guarantee: the
// same seed and plan produce byte-identical traces, faults included.
func TestFaultyTraceDeterministic(t *testing.T) {
	plan, err := fault.Parse("drop=0.01,dup=0.005,delay=0.05,maxdelay=40us,dmaerr=0.005," +
		"crash=2@2ms,part=1@1ms+600us,stall=0/1@1ms+100us,dmastall=3@1.5ms+50us")
	if err != nil {
		t.Fatal(err)
	}
	_, a := faultyRun(t, plan, 7, 3*sim.Millisecond)
	_, b := faultyRun(t, plan, 7, 3*sim.Millisecond)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed and fault plan produced different trace bytes")
	}
	// The trace must carry the injected faults as "fault" instants.
	var doc struct {
		TraceEvents []struct {
			Cat string `json:"cat"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatal(err)
	}
	faults := 0
	for _, e := range doc.TraceEvents {
		if e.Cat == "fault" {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("no fault instants in trace")
	}
}

// TestPartitionTimeoutAborts verifies the coordinator watchdog: a transient
// partition (shorter than the lease, so no eviction) strands in-flight
// transactions, which must time out, abort with the timeout status, and
// still leave a consistent cluster after the partition heals.
func TestPartitionTimeoutAborts(t *testing.T) {
	plan, err := fault.Parse("part=1@1ms+1ms")
	if err != nil {
		t.Fatal(err)
	}
	cl, _ := faultyRun(t, plan, 11, 3*sim.Millisecond)
	var timeouts int64
	for _, n := range cl.nodes {
		for _, v := range n.stats.Timeouts {
			timeouts += v
		}
	}
	if timeouts == 0 {
		t.Fatal("partition produced no watchdog timeouts")
	}
	// All four nodes survived the transient partition.
	for _, n := range cl.nodes {
		if !n.alive {
			t.Fatalf("node %d was evicted by a sub-lease partition", n.id)
		}
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := cl.ReplicasConsistent(); err != nil {
		t.Fatal(err)
	}
}

// TestFaultFreePathUnchanged pins the gating: a nil fault plan must leave
// the fault machinery fully disabled (no seq stamping, no watchdogs).
func TestFaultFreePathUnchanged(t *testing.T) {
	g := &kvGen{keys: 100, keysPer: 2, readFrac: 0.2, nicExec: true}
	cfg := testConfig(4, AllFeatures())
	cl, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	cl.Run(2 * sim.Millisecond)
	if !cl.Drain(500 * sim.Millisecond) {
		t.Fatal("cluster did not quiesce")
	}
	if cl.Injector() != nil {
		t.Fatal("injector present without a plan")
	}
	for _, n := range cl.nodes {
		for ph, v := range n.stats.Timeouts {
			if v != 0 {
				t.Fatalf("node %d counted %d timeouts in phase %d without faults", n.id, v, ph)
			}
		}
		if n.stats.StaleDrops != 0 {
			t.Fatalf("node %d counted stale drops without faults", n.id)
		}
	}
}
