package core

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"xenic/internal/check"
	"xenic/internal/fault"
	"xenic/internal/sim"
	"xenic/internal/txnmodel"
	"xenic/internal/wire"
)

// shipGen generates only single-remote-node update transactions, so every
// coordinated transaction is eligible for function shipping (§4.2.3).
// Built for 4-node clusters, like kvGen's locality mode.
type shipGen struct{ kvGen }

func (g *shipGen) Next(node, thread int, rng *rand.Rand) *txnmodel.TxnDesc {
	nodes := g.keysNodes()
	k := uint64(rng.Intn(g.keys))
	k = k - k%uint64(nodes) + uint64((node+1)%nodes)
	if k >= uint64(g.keys) {
		k = uint64((node + 1) % nodes)
	}
	st := make([]byte, 2)
	binary.LittleEndian.PutUint16(st, 1)
	return &txnmodel.TxnDesc{
		NICExec:    true,
		UpdateKeys: []uint64{k},
		FnID:       fnIncr,
		State:      st,
	}
}

// shipSplitGen generates transactions with a read on the issuing node's own
// shard and updates on shard 2 plus shard (node+1)%4. Before any crash these
// span two remote nodes and take the normal OCC path; once node 2 crashes and
// a survivor is promoted to primary of shard 2, that survivor's transactions
// see exactly one remote node and ship — holding a local read lock on its
// original shard while the write commits on the adopted shard.
type shipSplitGen struct{ kvGen }

func (g *shipSplitGen) Next(node, thread int, rng *rand.Rand) *txnmodel.TxnDesc {
	pick := func(shard int) uint64 {
		k := uint64(rng.Intn(g.keys))
		k = k - k%4 + uint64(shard)
		if k >= uint64(g.keys) {
			k = uint64(shard)
		}
		return k
	}
	r := pick(node)
	u := pick(2)
	w := pick((node + 1) % 4)
	for w == u {
		w = pick((node + 1) % 4)
	}
	st := make([]byte, 2)
	binary.LittleEndian.PutUint16(st, 2)
	return &txnmodel.TxnDesc{
		NICExec:    true,
		ReadKeys:   []uint64{r},
		UpdateKeys: []uint64{u, w},
		FnID:       fnIncr,
		State:      st,
	}
}

// TestShippedCommitReleasesAdoptedShardReadLocks pins a lock leak in the
// shipped commit path: the coordinator's lock-all covers read keys too, and
// after a promotion the coordinator can serve two shards. When the shipped
// write set lands on one local shard (committed via commitShard, which
// releases only that shard's locks) the read locks held on the *other* local
// shard must still be released — a single "did any local commit run" bit
// suppressed that release and left orphan locks behind, caught by the
// drain-time audit.
func TestShippedCommitReleasesAdoptedShardReadLocks(t *testing.T) {
	g := &shipSplitGen{kvGen{keys: 64, keysPer: 1}}
	cfg := testConfig(4, AllFeatures())
	cfg.Seed = 7
	crashAt := 500 * sim.Microsecond
	cfg.Faults = &fault.Plan{Crashes: []fault.Crash{{Node: 2, At: crashAt}}}
	cl, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	h := check.NewHistory()
	cl.SetHistory(h)
	cl.Start()
	cl.Run(3 * sim.Millisecond)
	if !cl.Drain(500 * sim.Millisecond) {
		t.Fatal("cluster did not drain")
	}

	// Non-vacuity: at least one post-crash shipped commit must have written
	// the adopted shard 2 while reading the coordinator's own shard.
	bugShape := 0
	for _, r := range h.Records() {
		if !r.Shipped || r.Status != wire.StatusOK || r.End <= crashAt || r.Node == 2 {
			continue
		}
		wroteAdopted, readOwn := false, false
		for _, kv := range r.Writes {
			if kv.Key%4 == 2 {
				wroteAdopted = true
			}
		}
		for _, kv := range r.Reads {
			if kv.Key%4 == uint64(r.Node) {
				readOwn = true
			}
		}
		if wroteAdopted && readOwn {
			bugShape++
		}
	}
	if bugShape == 0 {
		t.Fatal("no post-crash shipped commit wrote the adopted shard while holding a local read lock; the scenario did not exercise the leak path")
	}
	if rep := h.Check(); !rep.Ok() {
		t.Fatalf("history not serializable:\n%s", rep.String())
	}
	if err := cl.AuditHistory(); err != nil {
		t.Fatalf("drain-time audit failed (leaked shipped read locks): %v", err)
	}
}

// TestDelayedShipDoesNotTimeoutAbort pins the watchdog's shipped-phase
// contract: a slow ship target (all its NIC cores stalled well past the
// transaction timeout) must never cause a timeout abort of a transaction
// whose execution already committed remotely — the watchdog re-arms across
// shipTxn/coordShipResult instead of firing. The recorded history must
// stay serializable and ship-consistent throughout.
func TestDelayedShipDoesNotTimeoutAbort(t *testing.T) {
	g := &shipGen{kvGen{keys: 400, keysPer: 1}}
	cfg := testConfig(4, AllFeatures())
	cfg.Seed = 31
	plan := &fault.Plan{TxnTimeout: 100 * sim.Microsecond}
	for core := 0; core < cfg.NICCores; core++ {
		plan.CoreStalls = append(plan.CoreStalls, fault.CoreStall{
			Node: 1, Core: core, At: 1 * sim.Millisecond, Dur: 600 * sim.Microsecond,
		})
	}
	cfg.Faults = plan
	cl, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	h := check.NewHistory()
	cl.SetHistory(h)
	cl.Start()
	cl.Run(3 * sim.Millisecond)
	if !cl.Drain(500 * sim.Millisecond) {
		t.Fatal("cluster did not drain")
	}

	shipped, outlived := 0, false
	for _, r := range h.Records() {
		if !r.Shipped || r.Status != wire.StatusOK {
			continue
		}
		shipped++
		if r.End-r.Start > plan.TxnTimeoutOrDefault() {
			outlived = true
		}
	}
	if shipped == 0 {
		t.Fatal("no transaction committed via shipping")
	}
	if !outlived {
		t.Fatal("stall ineffective: no shipped commit outlived the watchdog deadline")
	}
	for _, n := range cl.nodes {
		if n.stats.Timeouts[phShipped] != 0 {
			t.Fatalf("node %d: watchdog fired %d timeout aborts in the shipped phase",
				n.id, n.stats.Timeouts[phShipped])
		}
	}
	if rep := h.Check(); !rep.Ok() {
		t.Fatalf("delayed ship broke serializability:\n%s", rep.String())
	}
	if err := cl.AuditHistory(); err != nil {
		t.Fatal(err)
	}
}
