package core

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"xenic/internal/check"
	"xenic/internal/fault"
	"xenic/internal/sim"
	"xenic/internal/txnmodel"
	"xenic/internal/wire"
)

// shipGen generates only single-remote-node update transactions, so every
// coordinated transaction is eligible for function shipping (§4.2.3).
// Built for 4-node clusters, like kvGen's locality mode.
type shipGen struct{ kvGen }

func (g *shipGen) Next(node, thread int, rng *rand.Rand) *txnmodel.TxnDesc {
	nodes := g.keysNodes()
	k := uint64(rng.Intn(g.keys))
	k = k - k%uint64(nodes) + uint64((node+1)%nodes)
	if k >= uint64(g.keys) {
		k = uint64((node + 1) % nodes)
	}
	st := make([]byte, 2)
	binary.LittleEndian.PutUint16(st, 1)
	return &txnmodel.TxnDesc{
		NICExec:    true,
		UpdateKeys: []uint64{k},
		FnID:       fnIncr,
		State:      st,
	}
}

// TestDelayedShipDoesNotTimeoutAbort pins the watchdog's shipped-phase
// contract: a slow ship target (all its NIC cores stalled well past the
// transaction timeout) must never cause a timeout abort of a transaction
// whose execution already committed remotely — the watchdog re-arms across
// shipTxn/coordShipResult instead of firing. The recorded history must
// stay serializable and ship-consistent throughout.
func TestDelayedShipDoesNotTimeoutAbort(t *testing.T) {
	g := &shipGen{kvGen{keys: 400, keysPer: 1}}
	cfg := testConfig(4, AllFeatures())
	cfg.Seed = 31
	plan := &fault.Plan{TxnTimeout: 100 * sim.Microsecond}
	for core := 0; core < cfg.NICCores; core++ {
		plan.CoreStalls = append(plan.CoreStalls, fault.CoreStall{
			Node: 1, Core: core, At: 1 * sim.Millisecond, Dur: 600 * sim.Microsecond,
		})
	}
	cfg.Faults = plan
	cl, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	h := check.NewHistory()
	cl.SetHistory(h)
	cl.Start()
	cl.Run(3 * sim.Millisecond)
	if !cl.Drain(500 * sim.Millisecond) {
		t.Fatal("cluster did not drain")
	}

	shipped, outlived := 0, false
	for _, r := range h.Records() {
		if !r.Shipped || r.Status != wire.StatusOK {
			continue
		}
		shipped++
		if r.End-r.Start > plan.TxnTimeoutOrDefault() {
			outlived = true
		}
	}
	if shipped == 0 {
		t.Fatal("no transaction committed via shipping")
	}
	if !outlived {
		t.Fatal("stall ineffective: no shipped commit outlived the watchdog deadline")
	}
	for _, n := range cl.nodes {
		if n.stats.Timeouts[phShipped] != 0 {
			t.Fatalf("node %d: watchdog fired %d timeout aborts in the shipped phase",
				n.id, n.stats.Timeouts[phShipped])
		}
	}
	if rep := h.Check(); !rep.Ok() {
		t.Fatalf("delayed ship broke serializability:\n%s", rep.String())
	}
	if err := cl.AuditHistory(); err != nil {
		t.Fatal(err)
	}
}
