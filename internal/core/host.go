package core

import (
	"fmt"
	"sort"

	"xenic/internal/hostrt"
	"xenic/internal/sim"
	"xenic/internal/txnmodel"
	"xenic/internal/wire"
)

// This file implements the host side of a Xenic node: coordinator
// application threads that generate transactions, run host-side execution
// rounds, and handle completions (including the local-transaction fast path
// of §4.2.4), and Robinhood worker threads that apply logged write sets to
// the primary and backup stores (§4.2 step 7).

// appThread is the per-application-thread coordinator state.
type appThread struct {
	node        *Node
	id          int
	seq         uint32
	inflight    map[uint64]*appTxn
	outstanding int
	retryq      []*appTxn
	injectq     []injected // open-loop arrivals awaiting launch
}

// appTxn tracks one application transaction across retries.
type appTxn struct {
	id        uint64
	desc      *txnmodel.TxnDesc
	start     sim.Time
	retries   int
	notBefore sim.Time
	done      func(ok bool) // open-loop completion callback; nil when closed-loop
}

// injected is one open-loop arrival handed to InjectTxn, queued until the
// owning application thread's next idle pass launches it.
type injected struct {
	desc *txnmodel.TxnDesc
	done func(ok bool)
}

// failInjected fires done(false) for every injected transaction this thread
// still holds — in-flight first (in txn-id order, so the callback sequence
// is deterministic despite map iteration), then the un-launched queue. Used
// by Restart: a coordinator crash loses this state, and open-loop sources
// must see the in-flight slots released.
func (at *appThread) failInjected() {
	ids := make([]uint64, 0, len(at.inflight))
	for id, tx := range at.inflight {
		if tx.done != nil {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		at.inflight[id].done(false)
	}
	for _, in := range at.injectq {
		if in.done != nil {
			in.done(false)
		}
	}
}

// workerBatch bounds log records applied per worker iteration.
const workerBatch = 16

// hostHandler dispatches messages delivered to host threads.
func (n *Node) hostHandler(t *hostrt.Thread, src int, m wire.Msg) {
	if !n.alive {
		return
	}
	switch m := m.(type) {
	case *wire.ReadReturn:
		n.hostExec(t, m)
	case *wire.TxnDone:
		n.hostDone(t, m)
	default:
		panic(fmt.Sprintf("core: host %d: unexpected message %T", n.id, m))
	}
}

// hostRouter steers NIC->host messages to the owning application thread.
func (n *Node) hostRouter(m wire.Msg) int {
	return txnThread(m.(interface{ GetTxnID() uint64 }).GetTxnID())
}

// hostIdle is the per-iteration hook: application threads submit load and
// retries; worker threads drain the log.
func (n *Node) hostIdle(t *hostrt.Thread) bool {
	if !n.alive {
		return false
	}
	if n.rejoin != nil && !n.rejoin.viewSeen {
		return false // restarting: park until the join view arrives
	}
	if t.ID() < n.cl.cfg.AppThreads {
		return n.appIdle(t, n.app[t.ID()])
	}
	return n.workerIdle(t)
}

// appIdle retries backed-off transactions and tops up the closed-loop
// window.
func (n *Node) appIdle(t *hostrt.Thread, at *appThread) bool {
	did := false
	// Retries whose backoff expired. Snapshot the queue first: submitting
	// can synchronously abort and re-append to at.retryq.
	q := at.retryq
	at.retryq = nil
	ready, keep := splitRetryQueue(q, t.Now())
	at.retryq = keep
	for _, tx := range ready {
		did = true
		n.submit(t, at, tx)
	}
	if earliest, ok := nextRetryWake(at.retryq); ok {
		// Ensure a wake-up when the earliest backoff expires — computed over
		// the post-submission queue so retries re-appended by synchronous
		// aborts keep their wake-up too.
		t.At(earliest-t.Now(), t.Wake)
	}
	// Open-loop arrivals queued by InjectTxn. Snapshot first: submitting can
	// synchronously complete, and the completion callback can inject again.
	if len(at.injectq) > 0 {
		inj := at.injectq
		at.injectq = nil
		for _, in := range inj {
			did = true
			tx := &appTxn{
				id:    txnID(n.id, at.id, at.nextSeq()),
				desc:  in.desc,
				start: t.Now(),
				done:  in.done,
			}
			at.inflight[tx.id] = tx
			at.outstanding++
			if in.desc.GenCost > 0 {
				t.Charge(in.desc.GenCost)
			}
			n.submit(t, at, tx)
		}
	}
	if !n.cl.loadOn {
		return did
	}
	for at.outstanding < n.cl.cfg.Outstanding {
		did = true
		desc := n.cl.gen.Next(n.id, at.id, t.Rand())
		tx := &appTxn{
			id:    txnID(n.id, at.id, at.nextSeq()),
			desc:  desc,
			start: t.Now(),
		}
		at.inflight[tx.id] = tx
		at.outstanding++
		if desc.GenCost > 0 {
			t.Charge(desc.GenCost)
		}
		n.submit(t, at, tx)
	}
	return did
}

func (at *appThread) nextSeq() uint32 {
	at.seq++
	return at.seq
}

// splitRetryQueue partitions q into transactions whose backoff has expired
// at now (ready to resubmit) and those that must keep waiting, preserving
// queue order within each group.
func splitRetryQueue(q []*appTxn, now sim.Time) (ready, keep []*appTxn) {
	for _, tx := range q {
		if tx.notBefore <= now {
			ready = append(ready, tx)
		} else {
			keep = append(keep, tx)
		}
	}
	return ready, keep
}

// nextRetryWake returns the earliest notBefore among q, and whether q holds
// any entries at all. Scheduling exactly one wake-up at this instant is
// sufficient: the drain pass recomputes the next one.
func nextRetryWake(q []*appTxn) (sim.Time, bool) {
	if len(q) == 0 {
		return 0, false
	}
	earliest := q[0].notBefore
	for _, tx := range q[1:] {
		if tx.notBefore < earliest {
			earliest = tx.notBefore
		}
	}
	return earliest, true
}

// allLocal reports whether every key of d is served by this node in the
// current view.
func (n *Node) allLocal(d *txnmodel.TxnDesc) bool {
	for _, k := range d.ReadKeys {
		if n.primaryNode(n.place().ShardOf(k)) != n.id {
			return false
		}
	}
	for _, k := range d.WriteKeys() {
		if n.primaryNode(n.place().ShardOf(k)) != n.id {
			return false
		}
	}
	return true
}

// submit launches (or relaunches) a transaction.
func (n *Node) submit(t *hostrt.Thread, at *appThread, tx *appTxn) {
	if n.allLocal(tx.desc) {
		n.submitLocal(t, at, tx)
		return
	}
	n.submitRemote(t, tx)
}

// submitRemote hands the transaction to the coordinator NIC.
func (n *Node) submitRemote(t *hostrt.Thread, tx *appTxn) {
	d := tx.desc
	req := &wire.TxnRequest{
		Header:    wire.Header{TxnID: tx.id, Src: uint8(n.id)},
		FnID:      d.FnID,
		ReadKeys:  d.ReadKeys,
		WriteKeys: d.UpdateKeys,
		WriteSet:  n.observeBlind(t, d),
		ExecState: d.State,
	}
	if d.NICExec {
		req.Flags |= wire.FlagNICExec
	}
	t.Send(req)
}

// observeBlind stamps blind writes with their currently observed versions.
// B+tree blind writes (coordinator-local) are read at the host here; hash
// blind writes keep version 0 — their primaries report versions at lock
// time.
func (n *Node) observeBlind(t *hostrt.Thread, d *txnmodel.TxnDesc) []wire.KV {
	if len(d.BlindWrites) == 0 {
		return nil
	}
	out := make([]wire.KV, len(d.BlindWrites))
	copy(out, d.BlindWrites)
	for i := range out {
		if !n.place().IsBTree(out[i].Key) {
			continue
		}
		p := n.prim(n.place().ShardOf(out[i].Key))
		if p == nil {
			// Not the primary (the shard moved after this node rejoined):
			// the serving primary reports the version at lock time instead,
			// like a hash blind write.
			continue
		}
		t.Charge(n.cl.cfg.Params.HostBTreeOp)
		_, ver, _ := p.data.Read(out[i].Key)
		out[i].Version = ver
	}
	return out
}

// submitLocal runs the local-transaction fast path (§4.2.4): optimistic
// host-side execution against the host store; read-only transactions
// complete entirely at the host, write transactions send their validated
// state to the NIC for replication.
func (n *Node) submitLocal(t *hostrt.Thread, at *appThread, tx *appTxn) {
	d := tx.desc
	if d.FnID == 0 && d.ReadOnly() && n.cl.snapReady() {
		// MVCC read-only fast path (DESIGN.md §12): read the host version
		// chains at one snapshot timestamp, no validation.
		n.snapLocal(t, at, tx)
		return
	}
	reads := make([]wire.KV, 0, len(d.ReadKeys)+len(d.UpdateKeys)+len(d.BlindWrites))
	readVers := make([]wire.KeyVer, 0, len(d.ReadKeys))
	for _, k := range d.ReadKeys {
		v, ver, _ := n.readLocal(t, k)
		reads = append(reads, wire.KV{Key: k, Version: ver, Value: v})
		readVers = append(readVers, wire.KeyVer{Key: k, Version: ver})
	}
	updateVers := map[uint64]uint64{}
	for _, k := range d.UpdateKeys {
		v, ver, _ := n.readLocal(t, k)
		reads = append(reads, wire.KV{Key: k, Version: ver, Value: v})
		updateVers[k] = ver
	}
	for _, kv := range d.BlindWrites {
		_, ver, _ := n.readLocal(t, kv.Key)
		reads = append(reads, wire.KV{Key: kv.Key, Version: ver})
		updateVers[kv.Key] = ver
	}

	var writes []wire.KV
	if d.FnID != 0 {
		fn, ok := n.cl.reg.Get(d.FnID)
		if !ok {
			panic(fmt.Sprintf("core: unknown fn %d", d.FnID))
		}
		for round := 0; ; round++ {
			t.Charge(fn.HostCost)
			res := fn.Run(d.State, reads)
			if res.Abort {
				n.recordHostLocal(tx, wire.StatusAbortMissing, nil, t.Now())
				n.completeTxn(t, at, tx, wire.StatusAbortMissing, nil)
				return
			}
			if len(res.MoreReads) == 0 {
				writes = res.Writes
				break
			}
			for _, k := range res.MoreReads {
				if n.primaryNode(n.place().ShardOf(k)) != n.id {
					// The execution chased a pointer off this node: the
					// transaction is not local after all. Restart it on
					// the distributed path (nothing is locked yet).
					n.submitRemote(t, tx)
					return
				}
			}
			for _, k := range res.MoreReads {
				v, ver, _ := n.readLocal(t, k)
				reads = append(reads, wire.KV{Key: k, Version: ver, Value: v})
				readVers = append(readVers, wire.KeyVer{Key: k, Version: ver})
			}
		}
	}

	if d.ReadOnly() && len(writes) == 0 {
		// Validate at the host table and finish with no PCIe traffic.
		for _, rv := range readVers {
			t.Charge(n.cl.cfg.Params.HostStoreOp)
			p := n.prim(n.place().ShardOf(rv.Key))
			// §4.2 step 4 applies to this path too: each key must be
			// unlocked AND at its expected version, exactly like
			// serverValidate and coordLocalCommit. A version-only check
			// reads a validated-but-unapplied writer's pre-commit value
			// during its lock window — normally a few microseconds, but
			// crash/restart state transfer congests log replication and
			// stretches it past 50us, where the high-skew sweep caught
			// read-only transactions committing non-serializable reads.
			if p.index.IsLocked(rv.Key, tx.id) {
				n.recordHostLocal(tx, wire.StatusAbortLocked, readVers, t.Now())
				n.retryTxn(t, at, tx, wire.StatusAbortLocked)
				return
			}
			_, ver, _ := p.data.Read(rv.Key)
			if ver != rv.Version {
				n.recordHostLocal(tx, wire.StatusAbortVersion, readVers, t.Now())
				n.retryTxn(t, at, tx, wire.StatusAbortVersion)
				return
			}
		}
		n.recordHostLocal(tx, wire.StatusOK, readVers, t.Now())
		n.completeTxn(t, at, tx, wire.StatusOK, reads)
		return
	}

	// Assemble the full write set with observed versions; the NIC locks,
	// validates, and replicates.
	full := append(writes, d.BlindWrites...)
	out := make([]wire.KV, len(full))
	for i, kv := range full {
		ver, ok := updateVers[kv.Key]
		if !ok {
			t.Charge(n.cl.cfg.Params.HostStoreOp)
			_, ver, _ = n.readLocal(t, kv.Key)
		}
		out[i] = wire.KV{Key: kv.Key, Version: ver, Value: kv.Value}
	}
	t.Send(&wire.TxnRequest{
		Header:        wire.Header{TxnID: tx.id, Src: uint8(n.id)},
		Flags:         wire.FlagLocal,
		WriteSet:      out,
		LocalReadVers: readVers,
	})
}

// snapLocal runs a read-only transaction on the MVCC snapshot path without
// leaving the host (the §4.2.4 local fast path crossed with DESIGN.md §12):
// every key resolves from the host version chains at one snapshot
// timestamp, with no validation pass. Host callbacks run atomically at one
// simulated instant, so no commit can interleave — the reads are still
// served at S rather than "latest" to keep the recorded history uniform
// with the distributed snapshot path.
func (n *Node) snapLocal(t *hostrt.Thread, at *appThread, tx *appTxn) {
	S := n.cl.snapTS()
	d := tx.desc
	reads := make([]wire.KV, 0, len(d.ReadKeys))
	for _, k := range d.ReadKeys {
		p := n.prim(n.place().ShardOf(k))
		if n.place().IsBTree(k) {
			t.Charge(n.cl.cfg.Params.HostBTreeOp)
		} else {
			t.Charge(n.cl.cfg.Params.HostStoreOp)
		}
		if p.mvFloor > S {
			// Shard promoted after S was picked; retry at a fresher S.
			n.retryTxn(t, at, tx, wire.StatusAbortSnapshot)
			return
		}
		v, ver, exists, ok := p.data.ReadAt(k, S)
		if !ok {
			// Chain GC'd past S (long-lagging watermark); never contention.
			n.retryTxn(t, at, tx, wire.StatusAbortSnapshot)
			return
		}
		kv := wire.KV{Key: k}
		if exists {
			kv.Version, kv.Value = ver, v
		}
		reads = append(reads, kv)
	}
	n.stats.SnapCommitted++
	n.recordSnapLocal(tx, S, reads, t.Now())
	n.completeTxn(t, at, tx, wire.StatusOK, reads)
}

// readLocal reads a key from one of this node's primary replicas, charging
// the appropriate host cost.
func (n *Node) readLocal(t *hostrt.Thread, key uint64) ([]byte, uint64, bool) {
	shard := n.place().ShardOf(key)
	p := n.prim(shard)
	if p == nil {
		panic(fmt.Sprintf("core: node %d: local read of remote key %d", n.id, key))
	}
	if n.place().IsBTree(key) {
		t.Charge(n.cl.cfg.Params.HostBTreeOp)
	} else {
		t.Charge(n.cl.cfg.Params.HostStoreOp)
	}
	return p.data.Read(key)
}

// hostExec runs one host-side execution round (§4.2 step 3).
func (n *Node) hostExec(t *hostrt.Thread, m *wire.ReadReturn) {
	at := n.app[txnThread(m.TxnID)]
	tx, ok := at.inflight[m.TxnID]
	if !ok {
		return
	}
	d := tx.desc
	fn, ok := n.cl.reg.Get(d.FnID)
	if d.FnID == 0 || !ok {
		// No function: blind writes only.
		t.Send(&wire.WriteSet{Header: wire.Header{TxnID: m.TxnID, Src: uint8(n.id)}})
		return
	}
	t.Charge(fn.HostCost)
	res := fn.Run(d.State, m.Items)
	t.Send(&wire.WriteSet{
		Header:    wire.Header{TxnID: m.TxnID, Src: uint8(n.id)},
		Writes:    res.Writes,
		MoreReads: res.MoreReads,
		Abort:     res.Abort,
	})
}

// hostDone handles a transaction outcome.
func (n *Node) hostDone(t *hostrt.Thread, m *wire.TxnDone) {
	at := n.app[txnThread(m.TxnID)]
	tx, ok := at.inflight[m.TxnID]
	if !ok {
		return
	}
	if m.Status == wire.StatusOK {
		n.completeTxn(t, at, tx, wire.StatusOK, m.ReadSet)
		return
	}
	n.retryTxn(t, at, tx, m.Status)
}

// completeTxn records a final outcome and frees the window slot.
func (n *Node) completeTxn(t *hostrt.Thread, at *appThread, tx *appTxn,
	st wire.Status, reads []wire.KV) {

	delete(at.inflight, tx.id)
	at.outstanding--
	if st == wire.StatusOK {
		n.stats.Committed++
		n.stats.UpdateKeysCommitted += int64(len(tx.desc.UpdateKeys))
		if tx.desc.ReadOnly() {
			n.stats.ROCommitted++
		}
		if n.cl.gen.Measure(tx.desc) {
			n.stats.Measured++
			n.stats.Latency.Record(t.Now() - tx.start)
			if tx.desc.ReadOnly() {
				n.stats.ROLatency.Record(t.Now() - tx.start)
			}
		}
	} else {
		n.stats.Failed++
	}
	_ = reads
	if tx.done != nil {
		tx.done(st == wire.StatusOK)
	}
}

// Retry backoff bounds: the window starts at retryBackoffBase and doubles
// per attempt up to retryBackoffMax, so repeated conflicts on a hot key
// decay instead of re-colliding at a fixed cadence.
const (
	retryBackoffBase = 2 * sim.Microsecond
	retryBackoffMax  = 64 * sim.Microsecond
)

// retryTxn re-queues an aborted transaction with capped-exponential
// randomized backoff, up to the retry cap.
func (n *Node) retryTxn(t *hostrt.Thread, at *appThread, tx *appTxn, st wire.Status) {
	n.stats.Aborts++
	if tx.desc.ReadOnly() {
		n.stats.ROAborts++
	}
	if int(st) < len(n.stats.AbortReasons) {
		n.stats.AbortReasons[st]++
	}
	tx.retries++
	if tx.retries > n.cl.cfg.MaxRetries {
		n.completeTxn(t, at, tx, st, nil)
		return
	}
	delete(at.inflight, tx.id)
	// A retry is a fresh transaction attempt with a new id.
	tx.id = txnID(n.id, at.id, at.nextSeq())
	at.inflight[tx.id] = tx
	backoff := sim.Backoff(t.Rand(), retryBackoffBase, retryBackoffMax, tx.retries-1)
	tx.notBefore = t.Now() + backoff
	at.retryq = append(at.retryq, tx)
	t.At(backoff, t.Wake)
}

// workerIdle applies visible log records: backup records to backup
// replicas, commit records to the primary (acking so the NIC can unpin).
// Under MVCC, applies maintain version chains, and a commit record applied
// at the shard's current primary discharges its pending entry so the
// snapshot watermark can advance.
func (n *Node) workerIdle(t *hostrt.Thread) bool {
	did := false
	for i := 0; i < workerBatch; i++ {
		r := n.log.claim()
		if r == nil {
			break
		}
		did = true
		for ki, kv := range r.writes {
			if n.place().IsBTree(kv.Key) {
				t.Charge(n.cl.cfg.Params.HostBTreeOp)
			} else {
				t.Charge(n.cl.cfg.Params.HostStoreOp)
			}
			var store *ShardData
			switch r.kind {
			case recBackup:
				b, ok := n.backups[r.shard]
				if !ok {
					panic(fmt.Sprintf("core: node %d applying backup record for shard %d", n.id, r.shard))
				}
				store = b
			case recCommit:
				p := n.prim(r.shard)
				if p == nil {
					panic(fmt.Sprintf("core: node %d applying commit record for shard %d", n.id, r.shard))
				}
				store = p.data
			}
			n.applyKV(store, r, ki, kv)
		}
		if r.kind == recCommit {
			if r.cts != 0 {
				n.cl.mv.applied(r.cts, r.shard)
			}
			t.Send(&wire.LogApplyAck{
				Header: wire.Header{TxnID: r.txn, Src: uint8(n.id)},
				Seq:    r.seq,
			})
		}
	}
	return did
}

// applyKV installs one write of a log record, maintaining version chains
// when the record carries MVCC timestamps. State-transfer chunk records
// (per-KV kvTS) install as snapshot bases without history.
//
// Only commit records — primary applies — maintain chains. Backup replicas
// never serve snapshot reads, and a backup promoted to primary is safe with
// missing or understated chain head timestamps: the promotion fence parks
// the snapshot path until stable passes every timestamp assigned before the
// episode, so every post-resume snapshot reads at an S at or above the cts
// of any row the backup applied chain-less. An understated headTS can then
// only re-serve exactly the row such a snapshot would see anyway. Skipping
// backup chains removes two thirds of the MVCC bookkeeping on the update
// hot path at Replication=3.
func (n *Node) applyKV(store *ShardData, r *logRecord, ki int, kv wire.KV) {
	if len(r.kvTS) > 0 {
		var ts uint64
		if ki < len(r.kvTS) {
			ts = r.kvTS[ki]
		}
		store.ApplyBase(kv, ts)
		return
	}
	if r.cts != 0 && r.kind == recCommit {
		store.ApplyTS(kv, r.cts, n.cl.mv.keep, n.cl.mv.lwm())
		return
	}
	store.Apply(kv)
}

// wakeWorkers nudges the worker threads when the NIC appends log records.
func (n *Node) wakeWorkers() {
	for i := n.cl.cfg.AppThreads; i < n.host.Threads(); i++ {
		n.host.Thread(i).Wake()
	}
}
