package core

import (
	"fmt"

	"xenic/internal/metrics"
	"xenic/internal/store/nicindex"
	"xenic/internal/trace"
	"xenic/internal/wire"
)

// This file wires the cluster into the observability layer: the
// per-transaction tracer (phase spans, abort instants, lock transitions)
// and the stats registry (per-node transaction outcomes, phase latencies,
// NIC index and runtime counters). Everything here is nil-safe: with no
// tracer and no registry attached, the instrumented paths cost one branch.

func (p phase) String() string {
	switch p {
	case phExecute:
		return "execute"
	case phHostExec:
		return "host-exec"
	case phValidate:
		return "validate"
	case phLog:
		return "log"
	case phCommit:
		return "commit"
	case phShipped:
		return "shipped"
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// SetTracer attaches tr to the cluster (nil disables tracing). Call after
// New and before Start, so instrumentation sees all traffic. Host threads
// appear as trace tids hostTidBase+i, NIC cores as tids 0..NICCores-1.
func (cl *Cluster) SetTracer(tr *trace.Tracer) {
	cl.tracer = tr
	if cl.inj != nil {
		cl.inj.SetTracer(tr)
	}
	for _, n := range cl.nodes {
		n.nic.SetTracer(tr)
		n.installLockTrace()
	}
	if !tr.Enabled() {
		return
	}
	for _, n := range cl.nodes {
		tr.MetaProcess(n.id, fmt.Sprintf("node%d", n.id))
		for c := 0; c < cl.cfg.NICCores; c++ {
			tr.MetaThread(n.id, c, fmt.Sprintf("nic-core%d", c))
		}
		for h := 0; h < cl.cfg.AppThreads+cl.cfg.WorkerThreads; h++ {
			name := fmt.Sprintf("host-app%d", h)
			if h >= cl.cfg.AppThreads {
				name = fmt.Sprintf("host-worker%d", h-cl.cfg.AppThreads)
			}
			tr.MetaThread(n.id, hostTidBase+h, name)
		}
	}
}

// hostTidBase offsets host-thread trace tids past the NIC-core tids.
const hostTidBase = 64

// Tracer returns the attached tracer (nil when tracing is off).
func (cl *Cluster) Tracer() *trace.Tracer { return cl.tracer }

// tr returns the cluster tracer for node-side instrumentation.
func (n *Node) tr() *trace.Tracer { return n.cl.tracer }

// installLockTrace hooks every primary index this node serves so lock
// transitions land in the trace. Installed only when tracing: the hook
// closure allocates argument maps.
func (n *Node) installLockTrace() {
	for s, p := range n.prims {
		n.hookIndex(s, p.index)
	}
}

// hookIndex installs the lock-transition hook on one shard's index (also
// called when recovery builds an index for an adopted shard).
func (n *Node) hookIndex(shard int, idx *nicindex.Index) {
	tr := n.tr()
	if !tr.Enabled() {
		idx.SetLockTrace(nil)
		return
	}
	eng := n.cl.eng
	idx.SetLockTrace(func(op string, key, owner uint64, ok bool) {
		name := op
		if !ok {
			name = op + "-fail"
		}
		tr.Instant("lock", name, n.id, 0, eng.Now(),
			trace.Args{"key": key, "shard": shard, "txn": owner})
	})
}

// openTxn starts phase accounting and the transaction's trace span. The
// span opens at the coordinator NIC (coordStart), where the ctxn is born.
func (n *Node) openTxn(t *ctxn) {
	now := n.cl.eng.Now()
	t.phaseAt = now
	t.openedAt = now
	if tr := n.tr(); tr.Enabled() {
		tr.BeginAsync("txn", "txn", t.id, n.id, now, nil)
		tr.BeginAsync("phase", t.phase.String(), t.id, n.id, now, nil)
	}
	n.armWatchdog(t)
}

// setPhase moves t to ph, recording the closing phase's simulated duration.
func (n *Node) setPhase(t *ctxn, ph phase) {
	now := n.cl.eng.Now()
	if h := n.stats.PhaseLat[t.phase]; h != nil {
		h.Record(now - t.phaseAt)
	}
	if tr := n.tr(); tr.Enabled() {
		tr.EndAsync("phase", t.phase.String(), t.id, n.id, now, nil)
		tr.BeginAsync("phase", ph.String(), t.id, n.id, now, nil)
	}
	t.phase = ph
	t.phaseAt = now
	t.epoch++ // phase changes are the watchdog's progress signal
	n.dbgEvt(t.id, "phase -> %v", ph)
}

// closeTxn finishes accounting when the coordinator drops t's state. Call
// exactly once per ctxn, immediately before deleting it from n.ctxns.
func (n *Node) closeTxn(t *ctxn, st wire.Status) {
	n.dbgEvt(t.id, "closeTxn status=%v phase=%v", st, t.phase)
	// Release any hot-key claims the conflict scheduler holds for this
	// transaction and re-admit its waiters. closeTxn is the single funnel
	// every coordinated transaction passes through exactly once (commit,
	// abort, recovery sweep, snapshot), so claims cannot leak.
	n.nic.SchedDone(t.id)
	now := n.cl.eng.Now()
	if h := n.stats.PhaseLat[t.phase]; h != nil {
		h.Record(now - t.phaseAt)
	}
	if tr := n.tr(); tr.Enabled() {
		tr.EndAsync("phase", t.phase.String(), t.id, n.id, now, nil)
		tr.EndAsync("txn", "txn", t.id, n.id, now, trace.Args{"status": st.String()})
	}
}

// traceAbort emits the abort instant with its reason.
func (n *Node) traceAbort(t *ctxn) {
	if tr := n.tr(); tr.Enabled() {
		tr.Instant("txn", "abort", n.id, 0, n.cl.eng.Now(),
			trace.Args{"reason": t.failed.String(), "txn": t.id})
	}
}

// RegisterMetrics registers the cluster's counters into reg: per-node
// transaction outcomes, abort reasons, phase and end-to-end latency
// histograms, NIC index counters, and the NIC runtime's batching and PCIe
// counters — plus cluster-wide aggregates under "cluster.".
func (cl *Cluster) RegisterMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	for _, n := range cl.nodes {
		n := n
		sub := reg.Sub(fmt.Sprintf("node%d", n.id))
		sub.RegisterFunc("txn", func() any { return n.stats.txnSnapshot() })
		sub.RegisterFunc("aborts_by_reason", func() any { return abortReasonMap(n.stats.AbortReasons) })
		sub.RegisterHistogram("latency", n.stats.Latency)
		for ph := 0; ph < numPhases; ph++ {
			sub.RegisterHistogram("phase."+phase(ph).String(), n.stats.PhaseLat[ph])
		}
		sub.RegisterFunc("nicindex", func() any {
			var agg nicindex.Stats
			for _, p := range n.prims {
				agg.Merge(p.index.Stats())
			}
			return agg.Snapshot()
		})
		n.nic.RegisterMetrics(sub.Sub("nic"))
		if cl.cfg.Faults != nil {
			sub.RegisterFunc("timeouts_by_phase", func() any { return timeoutMap(n.stats.Timeouts) })
			sub.RegisterFunc("stale_drops", func() any { return n.stats.StaleDrops })
		}
	}
	if cl.inj != nil {
		f := reg.Sub("fault")
		cl.inj.RegisterMetrics(f)
		f.RegisterFunc("net", func() any {
			retx, lost := cl.nw.FaultCounters()
			return map[string]any{"retx": retx, "lost": lost}
		})
	}
	agg := reg.Sub("cluster")
	agg.RegisterFunc("txn", func() any {
		var s Stats
		for _, n := range cl.nodes {
			s.Committed += n.stats.Committed
			s.Measured += n.stats.Measured
			s.Aborts += n.stats.Aborts
			s.Failed += n.stats.Failed
			s.SnapCommitted += n.stats.SnapCommitted
			s.SnapInline += n.stats.SnapInline
			s.SnapWalks += n.stats.SnapWalks
		}
		return s.txnSnapshot()
	})
	agg.RegisterFunc("aborts_by_reason", func() any {
		var reasons [wire.NumStatuses]int64
		for _, n := range cl.nodes {
			for i, v := range n.stats.AbortReasons {
				reasons[i] += v
			}
		}
		return abortReasonMap(reasons)
	})
	for ph := 0; ph < numPhases; ph++ {
		ph := ph
		agg.RegisterFunc("phase."+phase(ph).String(), func() any {
			m := metrics.NewHistogram()
			for _, n := range cl.nodes {
				m.Merge(n.stats.PhaseLat[ph])
			}
			return m.Snapshot()
		})
	}
	agg.RegisterFunc("latency", func() any {
		m := metrics.NewHistogram()
		for _, n := range cl.nodes {
			m.Merge(n.stats.Latency)
		}
		return m.Snapshot()
	})
}

func (s *Stats) txnSnapshot() map[string]any {
	out := map[string]any{
		"committed": s.Committed,
		"measured":  s.Measured,
		"aborts":    s.Aborts,
		"failed":    s.Failed,
	}
	// Snapshot-path counters appear only once the MVCC path has served
	// work, keeping MVCC-off stats byte-identical to the pre-MVCC seed.
	if s.SnapCommitted|s.SnapInline|s.SnapWalks != 0 {
		out["snap_committed"] = s.SnapCommitted
		out["snap_inline"] = s.SnapInline
		out["snap_walks"] = s.SnapWalks
	}
	return out
}

// timeoutMap keys non-zero watchdog expirations by phase name.
func timeoutMap(timeouts [numPhases]int64) map[string]int64 {
	out := map[string]int64{}
	for i, v := range timeouts {
		if v == 0 {
			continue
		}
		out[phase(i).String()] = v
	}
	return out
}

// abortReasonMap keys non-zero abort counts by status name, skipping the
// StatusOK slot.
func abortReasonMap(reasons [wire.NumStatuses]int64) map[string]int64 {
	out := map[string]int64{}
	for i, v := range reasons {
		if wire.Status(i) == wire.StatusOK || v == 0 {
			continue
		}
		out[wire.Status(i).String()] = v
	}
	return out
}
