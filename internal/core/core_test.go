package core

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"xenic/internal/sim"
	"xenic/internal/txnmodel"
	"xenic/internal/wire"
)

// kvGen is a scripted micro-workload over counters: fnIncr adds 1 to each
// update key; read-only transactions read a few keys. Keys 0..keys-1 map to
// shard key%nodes; none are B+tree keys.
type kvGen struct {
	keys      int
	keysPer   int
	readFrac  float64 // fraction of read-only transactions
	localFrac float64 // fraction of fully-local transactions
	nicExec   bool
	spec      txnmodel.StoreSpec
}

type modPlace struct{ nodes int }

func (p modPlace) ShardOf(key uint64) int  { return int(key % uint64(p.nodes)) }
func (p modPlace) IsBTree(key uint64) bool { return false }

const fnIncr = 1

func (g *kvGen) Name() string { return "kv" }
func (g *kvGen) Spec() txnmodel.StoreSpec {
	if g.spec.HashSlots == 0 {
		g.spec = txnmodel.StoreSpec{HashSlots: 4096, InlineValueSize: 16, MaxDisplacement: 16, NICCacheObjects: 2048}
	}
	return g.spec
}
func (g *kvGen) Placement(nodes, replication int) txnmodel.Placement {
	return modPlace{nodes: nodes}
}
func (g *kvGen) Register(r *txnmodel.Registry) {
	r.Register(&txnmodel.ExecFunc{
		ID:       fnIncr,
		HostCost: 200 * sim.Nanosecond,
		Run: func(state []byte, reads []wire.KV) txnmodel.ExecResult {
			var res txnmodel.ExecResult
			nUpd := int(binary.LittleEndian.Uint16(state))
			// The last nUpd entries are update keys; increment each.
			for _, kv := range reads[len(reads)-nUpd:] {
				old := uint64(0)
				if len(kv.Value) >= 8 {
					old = binary.LittleEndian.Uint64(kv.Value)
				}
				nv := make([]byte, 8)
				binary.LittleEndian.PutUint64(nv, old+1)
				res.Writes = append(res.Writes, wire.KV{Key: kv.Key, Value: nv})
			}
			return res
		},
	})
}
func (g *kvGen) Populate(shard, nodes int, emit func(uint64, []byte)) {
	zero := make([]byte, 8)
	for k := shard; k < g.keys; k += nodes {
		emit(uint64(k), zero)
	}
}
func (g *kvGen) Measure(d *txnmodel.TxnDesc) bool { return true }

func (g *kvGen) Next(node, thread int, rng *rand.Rand) *txnmodel.TxnDesc {
	d := &txnmodel.TxnDesc{NICExec: g.nicExec}
	local := rng.Float64() < g.localFrac
	pick := func() uint64 {
		k := uint64(rng.Intn(g.keys))
		if local {
			// Force local keys: congruent to this node (tests with
			// localFrac use 4-node clusters).
			k = k - k%uint64(g.keysNodes()) + uint64(node)
			if k >= uint64(g.keys) {
				k = uint64(node)
			}
		}
		return k
	}
	seen := map[uint64]bool{}
	n := 1 + rng.Intn(g.keysPer)
	if rng.Float64() < g.readFrac {
		for i := 0; i < n; i++ {
			k := pick()
			if !seen[k] {
				seen[k] = true
				d.ReadKeys = append(d.ReadKeys, k)
			}
		}
		return d
	}
	for i := 0; i < n; i++ {
		k := pick()
		if !seen[k] {
			seen[k] = true
			d.UpdateKeys = append(d.UpdateKeys, k)
		}
	}
	d.FnID = fnIncr
	st := make([]byte, 2)
	binary.LittleEndian.PutUint16(st, uint16(len(d.UpdateKeys)))
	d.State = st
	return d
}

// keysNodes is the modulus used by pick() for locality; set by tests via
// cluster size. Tests only use localFrac with 4-node clusters.
func (g *kvGen) keysNodes() int { return 4 }

func testConfig(nodes int, feat Features) Config {
	cfg := DefaultConfig()
	cfg.Nodes = nodes
	cfg.Replication = 3
	cfg.AppThreads = 2
	cfg.WorkerThreads = 2
	cfg.NICCores = 4
	cfg.Outstanding = 4
	cfg.Features = feat
	return cfg
}

// runCounters builds a cluster on the counter workload, runs it, drains,
// and checks the fundamental OCC property: the sum of all counters equals
// the number of committed increments (no lost updates, no phantom
// commits), and replicas converge.
func runCounters(t *testing.T, g *kvGen, cfg Config, dur sim.Time) *Cluster {
	t.Helper()
	cl, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	cl.Run(dur)
	if !cl.Drain(500 * sim.Millisecond) {
		t.Fatal("cluster did not quiesce")
	}
	// Each committed update transaction incremented each of its update keys
	// exactly once, so the counter totals must equal the committed update
	// key count — lost updates or phantom commits break this equality.
	var sum uint64
	for k := 0; k < g.keys; k++ {
		shard := cl.place.ShardOf(uint64(k))
		v, _, ok := cl.nodes[shard].Primary().Read(uint64(k))
		if !ok {
			t.Fatalf("key %d missing", k)
		}
		sum += binary.LittleEndian.Uint64(v)
	}
	var expected uint64
	for _, n := range cl.nodes {
		expected += uint64(n.stats.UpdateKeysCommitted)
	}
	if sum != expected {
		t.Fatalf("counter sum %d != committed increments %d (lost/duplicated updates)", sum, expected)
	}
	if expected == 0 && g.readFrac < 1 {
		t.Fatal("no increments committed")
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := cl.ReplicasConsistent(); err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestCountersAllFeatures(t *testing.T) {
	g := &kvGen{keys: 600, keysPer: 3, readFrac: 0.3, nicExec: true}
	runCounters(t, g, testConfig(4, AllFeatures()), 20*sim.Millisecond)
}

func TestCountersNoFeatures(t *testing.T) {
	g := &kvGen{keys: 600, keysPer: 3, readFrac: 0.3}
	feat := Features{EthAggregation: true, AsyncDMA: true} // protocol off, runtime on
	runCounters(t, g, testConfig(4, feat), 20*sim.Millisecond)
}

func TestCountersBaselineRuntime(t *testing.T) {
	g := &kvGen{keys: 400, keysPer: 2, readFrac: 0.2}
	runCounters(t, g, testConfig(4, BaselineFeatures()), 10*sim.Millisecond)
}

func TestCountersHostExecution(t *testing.T) {
	g := &kvGen{keys: 600, keysPer: 3, readFrac: 0.3, nicExec: false}
	runCounters(t, g, testConfig(4, AllFeatures()), 20*sim.Millisecond)
}

func TestCountersHighContention(t *testing.T) {
	// 12 hot keys, heavy conflicts: correctness must hold under aborts.
	g := &kvGen{keys: 12, keysPer: 2, readFrac: 0, nicExec: true}
	cl := runCounters(t, g, testConfig(4, AllFeatures()), 10*sim.Millisecond)
	var aborts int64
	for _, n := range cl.nodes {
		aborts += n.stats.Aborts
	}
	if aborts == 0 {
		t.Fatal("no aborts under heavy contention — lock conflicts not detected?")
	}
}

func TestCountersLocalTransactions(t *testing.T) {
	g := &kvGen{keys: 600, keysPer: 3, readFrac: 0.3, localFrac: 1.0}
	runCounters(t, g, testConfig(4, AllFeatures()), 10*sim.Millisecond)
}

func TestCountersMixedLocality(t *testing.T) {
	g := &kvGen{keys: 600, keysPer: 3, readFrac: 0.3, localFrac: 0.5, nicExec: true}
	runCounters(t, g, testConfig(4, AllFeatures()), 15*sim.Millisecond)
}

func TestDeterminism(t *testing.T) {
	run := func() (int64, uint64) {
		g := &kvGen{keys: 300, keysPer: 3, readFrac: 0.3, nicExec: true}
		cfg := testConfig(4, AllFeatures())
		cl, err := New(cfg, g)
		if err != nil {
			t.Fatal(err)
		}
		cl.Start()
		cl.Run(5 * sim.Millisecond)
		cl.Drain(200 * sim.Millisecond)
		var committed int64
		for _, n := range cl.nodes {
			committed += n.stats.Committed
		}
		var sum uint64
		for k := 0; k < g.keys; k++ {
			v, _, _ := cl.nodes[cl.place.ShardOf(uint64(k))].Primary().Read(uint64(k))
			sum += binary.LittleEndian.Uint64(v)
		}
		return committed, sum
	}
	c1, s1 := run()
	c2, s2 := run()
	if c1 != c2 || s1 != s2 {
		t.Fatalf("nondeterministic: run1=(%d,%d) run2=(%d,%d)", c1, s1, c2, s2)
	}
}

func TestThroughputReasonable(t *testing.T) {
	g := &kvGen{keys: 6000, keysPer: 3, readFrac: 0.5, nicExec: true}
	cfg := testConfig(6, AllFeatures())
	cfg.Outstanding = 8
	cl, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	res := cl.Measure(5*sim.Millisecond, 20*sim.Millisecond)
	if res.PerServerTput < 50000 {
		t.Fatalf("throughput %.0f txn/s/server is implausibly low", res.PerServerTput)
	}
	if res.Median <= 0 || res.Median > 200*sim.Microsecond {
		t.Fatalf("median latency %v out of range", res.Median)
	}
}

func TestVersionsMonotonic(t *testing.T) {
	// After a run, every key's version equals its counter value + 1
	// (population wrote version 1; each increment bumps by exactly 1).
	g := &kvGen{keys: 200, keysPer: 2, readFrac: 0, nicExec: true}
	cfg := testConfig(4, AllFeatures())
	cl, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	cl.Run(5 * sim.Millisecond)
	if !cl.Drain(500 * sim.Millisecond) {
		t.Fatal("no quiesce")
	}
	for k := 0; k < g.keys; k++ {
		v, ver, ok := cl.nodes[cl.place.ShardOf(uint64(k))].Primary().Read(uint64(k))
		if !ok {
			t.Fatalf("key %d missing", k)
		}
		if ver != binary.LittleEndian.Uint64(v)+1 {
			t.Fatalf("key %d: version %d != count+1 (%d)", k, ver, binary.LittleEndian.Uint64(v)+1)
		}
	}
}
