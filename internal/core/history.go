package core

import (
	"slices"

	"fmt"

	"xenic/internal/check"
	"xenic/internal/sim"
	"xenic/internal/store/btree"
	"xenic/internal/wire"
)

// This file wires the transaction-history recorder (internal/check,
// DESIGN.md §9) into the Xenic cluster. Recording is pure Go-side
// bookkeeping at the protocol decision points — the commit point, the abort
// decision, the recovery decision, and the ship target's write-set
// computation. It schedules no events, charges no simulated time, and sends
// no messages, so a run with a History attached is byte-identical to one
// without.

// SetHistory attaches a transaction-history recorder (nil disables
// recording). Call after New and before Start so every transaction outcome
// is captured. Prefer xenic.WithHistory at construction.
func (cl *Cluster) SetHistory(h *check.History) { cl.hist = h }

// History returns the attached recorder (nil when recording is off).
func (cl *Cluster) History() *check.History { return cl.hist }

// recordCommit appends t's committed outcome: the observed read set and the
// write set with the versions the commit installs. Called exactly once per
// committed coordinated transaction, at its commit point.
func (n *Node) recordCommit(t *ctxn, writes []wire.KV) {
	h := n.cl.hist
	if h == nil {
		return
	}
	h.Add(check.TxnRecord{
		ID:         t.id,
		Node:       n.id,
		Status:     wire.StatusOK,
		Start:      t.openedAt,
		End:        n.cl.eng.Now(),
		Reads:      check.Reads(t.reads),
		Writes:     check.Writes(writes),
		Shipped:    t.phase == phShipped,
		ShipTo:     t.shipTo,
		Snapshot:   t.snapshot,
		SnapshotTS: t.snapTS,
		CommitTS:   t.cts,
	})
}

// recordSnapLocal appends a snapshot read-only transaction decided entirely
// at the host (snapLocal). Absent-at-S keys record version 0.
func (n *Node) recordSnapLocal(tx *appTxn, S uint64, reads []wire.KV, now sim.Time) {
	h := n.cl.hist
	if h == nil {
		return
	}
	kvs := make([]wire.KeyVer, 0, len(reads))
	for _, kv := range reads {
		kvs = append(kvs, wire.KeyVer{Key: kv.Key, Version: kv.Version})
	}
	h.Add(check.TxnRecord{
		ID:         tx.id,
		Node:       n.id,
		Status:     wire.StatusOK,
		Start:      tx.start,
		End:        now,
		Reads:      check.KeyVers(kvs),
		Snapshot:   true,
		SnapshotTS: S,
	})
}

// recordAbort appends t's aborted outcome (reads kept for diagnostics).
func (n *Node) recordAbort(t *ctxn, st wire.Status) {
	h := n.cl.hist
	if h == nil {
		return
	}
	h.Add(check.TxnRecord{
		ID:     t.id,
		Node:   n.id,
		Status: st,
		Start:  t.openedAt,
		End:    n.cl.eng.Now(),
		Reads:  check.Reads(t.reads),
	})
}

// recordHostLocal appends an outcome decided entirely at the host (the
// read-only fast path of §4.2.4, which never creates a ctxn).
func (n *Node) recordHostLocal(tx *appTxn, st wire.Status, reads []wire.KeyVer, now sim.Time) {
	h := n.cl.hist
	if h == nil {
		return
	}
	h.Add(check.TxnRecord{
		ID:     tx.id,
		Node:   n.id,
		Status: st,
		Start:  tx.start,
		End:    now,
		Reads:  check.KeyVers(reads),
	})
}

// recordRecovered appends the synthetic record emitted when recovery commits
// a dead coordinator's transaction from its replicated log records; the
// checker merges it with any other record of the same id.
func (n *Node) recordRecovered(txn uint64, writes []wire.KV, cts uint64) {
	h := n.cl.hist
	if h == nil {
		return
	}
	h.Add(check.TxnRecord{
		ID:        txn,
		Node:      n.id,
		Status:    wire.StatusOK,
		End:       n.cl.eng.Now(),
		Recovered: true,
		Writes:    check.Writes(writes),
		CommitTS:  cts,
	})
}

// recordShip appends the ship target's shadow of a shipped execution.
func (n *Node) recordShip(txn uint64, coord int, writes []wire.KV) {
	h := n.cl.hist
	if h == nil {
		return
	}
	h.AddShip(check.ShipRecord{
		Txn:    txn,
		Origin: coord,
		Target: n.id,
		Writes: check.Writes(writes),
	})
}

// AuditHistory cross-checks the drained cluster's final state against the
// recorded history: no orphan locks, every store version matches the last
// committed writer, log records consistent with the committed set, and
// shipped results consistent between origin and ship target. Call only
// after a successful Drain; returns nil when no history is attached.
func (cl *Cluster) AuditHistory() error {
	h := cl.hist
	if h == nil {
		return nil
	}
	if err := h.ShipConsistent(); err != nil {
		return err
	}
	committed := h.CommittedIDs()
	last := h.LastVersions()
	for _, n := range cl.nodes {
		if !n.alive {
			continue
		}
		var shards []int
		for s := range n.prims {
			shards = append(shards, s)
		}
		sortInts(shards)
		for _, s := range shards {
			p := n.prims[s]
			var lockErr error
			p.index.ForEachLocked(func(key, owner uint64) {
				if lockErr == nil {
					lockErr = fmt.Errorf("audit: node %d shard %d: orphan lock on key %d held by txn %#x after drain",
						n.id, s, key, owner)
				}
			})
			if lockErr != nil {
				return lockErr
			}
			if err := auditStore(fmt.Sprintf("node %d primary of shard %d", n.id, s), p.data, last); err != nil {
				return err
			}
		}
		var bshards []int
		for s := range n.backups {
			bshards = append(bshards, s)
		}
		sortInts(bshards)
		for _, s := range bshards {
			// Only audit backups of shards whose serving primary survived:
			// a shard that lost every replica may legitimately lag.
			if !cl.nodes[cl.primaryNode(s)].alive {
				continue
			}
			if err := auditStore(fmt.Sprintf("node %d backup of shard %d", n.id, s), n.backups[s], last); err != nil {
				return err
			}
		}
		for i := range n.log.records {
			r := &n.log.records[i]
			if r.txn == 0 {
				// State-transfer snapshot chunks ride the backup-log path
				// under sentinel txn 0 (handleStateChunk); they carry already
				// committed rows, not a transaction of their own.
				continue
			}
			if r.committed && r.dropped {
				return fmt.Errorf("audit: node %d log seq %d: record for txn %#x both committed and dropped",
					n.id, r.seq, r.txn)
			}
			if r.committed && !committed[r.txn] {
				return fmt.Errorf("audit: node %d log seq %d: commit-marked record for txn %#x absent from committed history",
					n.id, r.seq, r.txn)
			}
			if r.dropped && committed[r.txn] {
				return fmt.Errorf("audit: node %d log seq %d: dropped record for committed txn %#x",
					n.id, r.seq, r.txn)
			}
		}
	}
	// Reverse direction: every committed write must be present at its
	// shard's serving primary, at exactly the installed version.
	keys := make([]uint64, 0, len(last))
	for k := range last {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, key := range keys {
		s := cl.place.ShardOf(key)
		pn := cl.nodes[cl.primaryNode(s)]
		if !pn.alive {
			continue // shard lost every replica
		}
		p := pn.prim(s)
		if p == nil {
			return fmt.Errorf("audit: shard %d: view primary %d does not serve it", s, pn.id)
		}
		_, ver, okRead := p.data.Read(key)
		if !okRead || ver != last[key] {
			return fmt.Errorf("audit: shard %d at node %d: committed key %d should be at version %d, store has %d (present=%v)",
				s, pn.id, key, last[key], ver, okRead)
		}
	}
	return nil
}

// auditStore checks one replica: every stored version either matches the
// last committed writer of its key or predates any committed write (the
// populate version is 1).
func auditStore(where string, d *ShardData, last map[uint64]uint64) error {
	var err error
	bad := func(key, version uint64) error {
		return fmt.Errorf("audit: %s: key %d at version %d, last committed writer installed %d",
			where, key, version, last[key])
	}
	d.Hash.ForEach(func(key uint64, version uint64, value []byte) bool {
		if want, ok := last[key]; ok && version != want || !ok && version > 1 {
			err = bad(key, version)
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	d.BTree.AscendRange(0, ^uint64(0), func(it btree.Item) bool {
		if want, ok := last[it.Key]; ok && it.Version != want || !ok && it.Version > 1 {
			err = bad(it.Key, it.Version)
			return false
		}
		return true
	})
	return err
}
