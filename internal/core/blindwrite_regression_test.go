package core

import (
	"testing"

	"xenic/internal/check"
	"xenic/internal/sim"
	"xenic/internal/workload/tpcc"
)

// TestTPCCBlindWriteSerializable pins the blind-write validation bug the
// checksweep surfaced: B+tree blind writes (TPC-C district updates and
// order inserts) used to validate their generation-time host-observed
// versions only against the NIC index, which forgets a key's version once
// the host applies the logged write. Two transactions observing the same
// stale version then both committed, installing duplicate versions — lost
// updates visible as mutual ww cycles on district rows. The fix DMA-reads
// the authoritative row header when the index no longer tracks the key.
// Seed 1 with 2 warehouses/server reproduced the cycle before the fix.
func TestTPCCBlindWriteSerializable(t *testing.T) {
	g := tpcc.New()
	g.WarehousesPerServer = 2
	cfg := DefaultConfig()
	cfg.Nodes = 4
	cfg.Replication = 3
	cfg.AppThreads, cfg.WorkerThreads, cfg.NICCores = 2, 2, 4
	cfg.Outstanding = 4
	cfg.Seed = 1
	cl, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	h := check.NewHistory()
	cl.SetHistory(h)
	cl.Start()
	cl.Run(3 * sim.Millisecond)
	if !cl.Drain(100 * sim.Millisecond) {
		t.Fatal("cluster did not drain")
	}
	if h.Len() == 0 {
		t.Fatal("history recorded nothing")
	}
	if rep := h.Check(); !rep.Ok() {
		t.Fatalf("TPC-C blind writes broke serializability:\n%s", rep.String())
	}
	if err := cl.AuditHistory(); err != nil {
		t.Fatal(err)
	}
}
