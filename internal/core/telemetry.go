package core

import (
	"fmt"

	"xenic/internal/sim"
	"xenic/internal/telemetry"
	"xenic/internal/wire"
)

// SetTelemetry registers the cluster's time-series probes on s and starts
// its sampling ticker. Call after New and before Start so the first window
// covers the whole run. Probes are read-only views over counters the
// cluster maintains anyway, so an attached sampler never perturbs the
// simulation: the transaction schedule is identical with or without it.
//
// Per-node scope "node<i>" registers transaction rates and outcomes
// (commit/abort rates, lock-conflict fraction, in-flight count), windowed
// latency quantiles and per-phase latency lanes, and the resource gauges
// the bottleneck analyzer ranks: NIC-core / host-thread / DMA-engine / NIC
// egress-link occupancy, queue depths and backlogs, lock-table size, and
// NIC-index cache hit rate. Cluster scope adds the aggregate commit rate
// and the membership epoch / alive count (so availability arcs are visible
// in the series).
func (cl *Cluster) SetTelemetry(s *telemetry.Sampler) {
	if s == nil {
		return
	}
	for _, n := range cl.nodes {
		n := n
		sub := s.Sub(fmt.Sprintf("node%d", n.id))
		st := &n.stats
		sub.Rate("txn.commit_rate", func() int64 { return st.Committed })
		sub.Rate("txn.abort_rate", func() int64 { return st.Aborts })
		sub.Ratio("txn.lock_conflict_frac",
			func() int64 { return st.AbortReasons[wire.StatusAbortLocked] },
			func() int64 { return st.Committed + st.Aborts })
		sub.Gauge("txn.inflight", func() float64 {
			v := 0
			for _, at := range n.app {
				v += at.outstanding
			}
			return float64(v)
		})
		sub.Quantiles("latency", st.Latency)
		for ph := 0; ph < numPhases; ph++ {
			sub.Window("phase."+phase(ph).String(), st.PhaseLat[ph])
		}

		nic := n.nic
		sub.Occupancy("nic.occupancy", func() sim.Time { return nic.Utilization().TotalBusy() }, nic.Cores())
		sub.Gauge("nic.queue_depth", func() float64 { return float64(nic.QueueDepth()) })
		if sched := nic.Scheduler(); sched != nil {
			// Conflict-scheduler series, only when it is attached: the names
			// are absent on scheduler-off runs, keeping their telemetry
			// exports byte-identical to pre-scheduler output. Alongside the
			// queue/serialization view, per-reason abort rates expose how the
			// scheduler shifts the abort mix (lock/version down, shed up).
			sub.Gauge("sched.queue_depth", func() float64 { return float64(sched.QueueDepth()) })
			sub.Gauge("sched.parked", func() float64 { return float64(sched.ParkedNow()) })
			sub.Gauge("sched.tracked_keys", func() float64 { return float64(sched.TrackedKeys()) })
			sub.Rate("sched.park_rate", func() int64 { return sched.Stats().Parked })
			sub.Rate("sched.shed_rate", func() int64 { return sched.Stats().Shed })
			sub.Ratio("sched.hot_frac",
				func() int64 { return sched.Stats().HotRouted },
				func() int64 { return sched.Stats().Dispatched })
			for _, rs := range []wire.Status{wire.StatusAbortLocked,
				wire.StatusAbortVersion, wire.StatusAbortMissing,
				wire.StatusAbortTimeout, wire.StatusAbortSched} {
				rs := rs
				sub.Rate("txn.abort_rate."+rs.String(),
					func() int64 { return st.AbortReasons[rs] })
			}
		}
		host := n.host
		sub.Occupancy("host.occupancy", func() sim.Time { return host.Utilization().TotalBusy() }, host.Threads())
		sub.Gauge("host.queue_depth", func() float64 { return float64(host.QueueDepth()) })
		dma := nic.DMA()
		sub.Occupancy("dma.occupancy", dma.Busy, 1)
		sub.Gauge("dma.backlog_us", func() float64 { return dma.Backlog(cl.eng.Now()).Micros() })
		sub.Occupancy("net.tx_occupancy", func() sim.Time { return cl.nw.TxBusy(n.id) }, cl.nw.Lanes())
		sub.Gauge("net.egress_backlog_us", func() float64 { return cl.nw.EgressBacklog(n.id).Micros() })

		sub.Gauge("lock.held", func() float64 {
			v := 0
			for _, p := range n.prims {
				v += p.index.Locked()
			}
			return float64(v)
		})
		sub.Ratio("nicindex.hit_rate",
			func() int64 {
				var v int64
				for _, p := range n.prims {
					v += p.index.Stats().CacheHits
				}
				return v
			},
			func() int64 {
				var v int64
				for _, p := range n.prims {
					v += p.index.Stats().Lookups
				}
				return v
			})
	}

	// Open-loop front-end series, only when a source is attached: the scope
	// is absent on closed-loop runs, keeping their telemetry exports
	// byte-identical to pre-LoadSource output.
	if cl.loadSrc != nil {
		src := cl.loadSrc
		ls := s.Sub("load")
		ls.Rate("offered_rate", func() int64 { return src.Stats().Offered })
		ls.Rate("admitted_rate", func() int64 { return src.Stats().Admitted })
		ls.Rate("completed_rate", func() int64 { return src.Stats().Completed })
		ls.Rate("rejected_rate", func() int64 { return src.Stats().Rejected })
		ls.Gauge("sessions", func() float64 { return float64(src.Stats().ActiveSessions) })
		ls.Gauge("inflight", func() float64 { return float64(src.Stats().InFlight) })
		ls.Gauge("queue_len", func() float64 { return float64(src.Stats().QueueLen) })
		ls.Gauge("queue_delay_p99_us", func() float64 { return src.Stats().QueueDelayP99.Micros() })
	}

	cs := s.Sub("cluster")
	cs.Rate("commit_rate", func() int64 {
		var v int64
		for _, n := range cl.nodes {
			v += n.stats.Committed
		}
		return v
	})
	cs.Gauge("epoch", func() float64 { return float64(cl.view.Epoch) })
	cs.Gauge("alive", func() float64 {
		v := 0
		for _, n := range cl.nodes {
			if n.alive {
				v++
			}
		}
		return float64(v)
	})
	s.Attach(cl.eng)
}
