package core

import (
	"fmt"

	"xenic/internal/nicrt"
	"xenic/internal/store/nicindex"
	"xenic/internal/txnmodel"
	"xenic/internal/wire"
)

// This file implements the server-side NIC operations of §4.2: EXECUTE
// (combined read + lock), VALIDATE, LOG, COMMIT, ABORT, and shipped
// execution. Each operation is asynchronous: index lookups that miss the
// NIC cache issue DMA reads through the continuation framework, and
// responses go out only when all reads have landed. Operations name the
// shard they target; a node may serve several shards after recovery
// promotions, and a freshly adopted shard rejects work until its log scan
// completes (§4.2.1).

// lookupAsync resolves key through shard's NIC index; cache hits complete
// inline, misses chain the lookup's (dependent) DMA reads and call done
// from a later polling-loop iteration.
func (n *Node) lookupAsync(c *nicrt.Core, shard int, key uint64, done func(res nicindex.Result)) {
	p := n.prim(shard)
	n.chargeIndexOps(c, 1)
	if n.place().IsBTree(key) {
		// B+tree keys are normally resolved at their coordinator's host, but
		// after a rejoin the stable-primary rule leaves the restarted node
		// coordinating against a B+tree shard served here; its operations
		// resolve like any other key. The NIC does not cache B+tree values,
		// so DMA-read the row from the host tree — and if the index carries
		// a newer committed version than the host has applied (the commit
		// record is still pinned), no consistent pair exists: report a
		// conflict so the caller aborts and the coordinator retries.
		c.DMARead([]int{btreeVerifyBytes}, func() {
			v, ver, ok := p.data.Read(key)
			if iv, known := p.index.VersionOf(key); known && iv != ver {
				done(nicindex.Result{Conflict: true})
				return
			}
			done(nicindex.Result{Found: ok, Version: ver, Value: v})
		})
		return
	}
	res := p.index.Lookup(key)
	if len(res.Reads) == 0 {
		done(res)
		return
	}
	i := 0
	var step func()
	step = func() {
		if i == len(res.Reads) {
			done(res)
			return
		}
		op := res.Reads[i]
		i++
		c.DMARead([]int{op.Bytes}, step)
	}
	step()
}

// serving reports whether this node can serve shard right now.
func (n *Node) serving(shard int) bool {
	p := n.prim(shard)
	return p != nil && p.ready
}

// serverExecute performs the combined read+lock operation (§4.2 step 2) on
// one of this node's primary shards, invoking done with the outcome. The
// coordinator calls it directly for local shards; remote requests arrive
// via handleExecute.
func (n *Node) serverExecute(c *nicrt.Core, shard int, txn uint64, readKeys, lockKeys []uint64,
	done func(st wire.Status, items []wire.KV)) {

	if !n.serving(shard) {
		done(wire.StatusAbortLocked, nil) // recovering shard: caller retries
		return
	}
	idx := n.prim(shard).index
	// Reading a locked key or failing to lock aborts immediately (§4.2):
	// release this request's own locks on failure.
	locked := make([]uint64, 0, len(lockKeys))
	fail := func(st wire.Status) {
		for _, k := range locked {
			idx.Unlock(k, txn)
		}
		done(st, nil)
	}
	n.chargeIndexOps(c, len(lockKeys))
	for _, k := range lockKeys {
		if !idx.TryLock(k, txn) {
			fail(wire.StatusAbortLocked)
			return
		}
		locked = append(locked, k)
	}
	n.chargeIndexOps(c, len(readKeys))
	for _, k := range readKeys {
		if idx.IsLocked(k, txn) {
			fail(wire.StatusAbortLocked)
			return
		}
	}

	// Resolve values and versions for every key (locked keys too: their
	// current values feed read-modify-write execution).
	all := make([]uint64, 0, len(readKeys)+len(lockKeys))
	all = append(all, readKeys...)
	all = append(all, lockKeys...)
	items := make([]wire.KV, len(all))
	pending := len(all)
	if pending == 0 {
		done(wire.StatusOK, nil)
		return
	}
	conflict := false
	for i, k := range all {
		i, k := i, k
		n.lookupAsync(c, shard, k, func(res nicindex.Result) {
			if res.Conflict {
				conflict = true
			}
			items[i] = wire.KV{Key: k, Version: res.Version, Value: res.Value}
			pending--
			if pending == 0 {
				if conflict {
					fail(wire.StatusAbortLocked)
					return
				}
				done(wire.StatusOK, items)
			}
		})
	}
}

// handleExecute serves a remote EXECUTE. All keys of one request belong to
// one shard.
func (n *Node) handleExecute(c *nicrt.Core, src int, m *wire.Execute) {
	shard := n.shardOfOp(m.ReadKeys, m.LockKeys)
	n.serverExecute(c, shard, m.TxnID, m.ReadKeys, m.LockKeys, func(st wire.Status, items []wire.KV) {
		resp := &wire.ExecuteResp{
			Header: wire.Header{TxnID: m.TxnID, Src: uint8(n.id)},
			Status: st, Items: items,
		}
		if st == wire.StatusOK {
			resp.Locked = m.LockKeys
		}
		c.Send(src, resp)
	})
}

func (n *Node) shardOfOp(keyLists ...[]uint64) int {
	for _, ks := range keyLists {
		if len(ks) > 0 {
			return n.place().ShardOf(ks[0])
		}
	}
	panic("core: operation with no keys")
}

// serverValidate checks that each key is unlocked (by others) and at its
// expected version (§4.2 step 4).
func (n *Node) serverValidate(c *nicrt.Core, shard int, txn uint64, items []wire.KeyVer,
	done func(st wire.Status)) {

	if !n.serving(shard) {
		done(wire.StatusAbortLocked)
		return
	}
	idx := n.prim(shard).index
	n.chargeIndexOps(c, len(items))
	pending := len(items)
	if pending == 0 {
		done(wire.StatusOK)
		return
	}
	failed := wire.StatusOK
	finish := func() {
		pending--
		if pending == 0 {
			done(failed)
		}
	}
	for _, it := range items {
		it := it
		if idx.IsLocked(it.Key, txn) {
			failed = wire.StatusAbortLocked
			finish()
			continue
		}
		if v, known := idx.VersionOf(it.Key); known {
			if v != it.Version {
				failed = wire.StatusAbortVersion
			}
			finish()
			continue
		}
		n.lookupAsync(c, shard, it.Key, func(res nicindex.Result) {
			if res.Version != it.Version {
				failed = wire.StatusAbortVersion
			}
			finish()
		})
	}
}

// handleValidate serves a remote VALIDATE.
func (n *Node) handleValidate(c *nicrt.Core, src int, m *wire.Validate) {
	shard := n.place().ShardOf(m.Items[0].Key)
	n.serverValidate(c, shard, m.TxnID, m.Items, func(st wire.Status) {
		c.Send(src, &wire.ValidateResp{
			Header: wire.Header{TxnID: m.TxnID, Src: uint8(n.id)},
			Status: st,
		})
	})
}

// appendLog DMA-writes a log record into this node's host-memory log and
// calls done once the record is durable (§4.2 step 5).
func (n *Node) appendLog(c *nicrt.Core, kind recordKind, txn uint64, shard int,
	writes []wire.KV, done func(seq uint64)) {
	n.appendLogTS(c, kind, txn, shard, writes, 0, nil, done)
}

// appendLogTS is appendLog with MVCC metadata: cts stamps commit records
// with their commit timestamp; kvTS carries per-KV snapshot bases for
// state-transfer chunk records. Both zero-valued under MVCC-off.
func (n *Node) appendLogTS(c *nicrt.Core, kind recordKind, txn uint64, shard int,
	writes []wire.KV, cts uint64, kvTS []uint64, done func(seq uint64)) {

	// Stamp the record with its origin epoch — the frame's when handling a
	// remote Log, else this node's own — before the DMA completes (the
	// callback runs outside the frame context). The promotion fence uses it
	// to spare records logged under the new view.
	epoch := c.RxEpoch()
	if epoch == 0 {
		epoch = n.nic.Epoch()
	}
	c.DMAWrite([]int{recordBytes(writes)}, func() {
		seq := n.log.append(kind, txn, shard, writes, epoch, cts, kvTS)
		n.wakeWorkers()
		done(seq)
	})
}

// handleLog serves a backup LOG request, acknowledging to RespondTo (the
// coordinator — directly, even when the request came from a shipped
// execution at another node, §4.2.3).
func (n *Node) handleLog(c *nicrt.Core, src int, m *wire.Log) {
	shard := n.place().ShardOf(m.Writes[0].Key)
	if _, ok := n.backups[shard]; !ok {
		panic(fmt.Sprintf("core: node %d got LOG for shard %d it does not back up", n.id, shard))
	}
	n.appendLog(c, recBackup, m.TxnID, shard, m.Writes, func(uint64) {
		n.sendOrLoop(c, int(m.RespondTo), &wire.LogResp{
			Header: wire.Header{TxnID: m.TxnID, Src: uint8(n.id)},
			Status: wire.StatusOK,
		})
	})
}

// commitShard applies a committed write set at this (primary) node: the
// commit record is logged, cached entries are updated and pinned, and the
// locks release once the record is durable (§4.2 step 6). cts is the MVCC
// commit timestamp of the deciding commit (0 = MVCC off).
func (n *Node) commitShard(c *nicrt.Core, shard int, txn uint64, writes []wire.KV,
	unlockKeys []uint64, cts uint64, done func()) {

	p := n.prim(shard)
	if p == nil {
		panic(fmt.Sprintf("core: node %d committing shard %d it does not serve", n.id, shard))
	}
	if sess, ok := n.fwd[shard]; ok && (sess.fence == 0 || c.RxEpoch() < sess.fence) {
		// A rejoiner is re-replicating this shard: relay the commit so its
		// copy stays current. Once the rejoiner is a listed backup (fence
		// set), coordinators on the new view log to it directly and only
		// pre-fence commits still need relaying.
		n.cl.fwdInFlight[sess.node]++
		c.Send(sess.node, &wire.StateForward{
			Header: wire.Header{TxnID: txn, Src: uint8(n.id)},
			Shard:  uint8(shard), Writes: writes, CTS: cts,
		})
	}
	n.chargeIndexOps(c, len(writes))
	pinned := make([]uint64, 0, len(writes))
	if !mutStaleIndexRead {
		for _, kv := range writes {
			if n.place().IsBTree(kv.Key) {
				p.index.ApplyCommitMeta(kv.Key, kv.Version)
			} else {
				p.index.ApplyCommitTS(kv.Key, kv.Value, kv.Version, cts)
			}
			pinned = append(pinned, kv.Key)
		}
	}
	n.appendLogTS(c, recCommit, txn, shard, writes, cts, nil, func(seq uint64) {
		n.pins[seq] = pinned
		n.pinIdx[seq] = p.index
		n.chargeIndexOps(c, len(unlockKeys))
		for _, k := range unlockKeys {
			// Tolerant, per-key-shard release: a shipped lock set may span
			// several shards this node serves after a promotion, and its
			// keys arrive through multiple COMMITs.
			if kp := n.prim(n.place().ShardOf(k)); kp != nil {
				kp.index.UnlockIf(k, txn)
			}
		}
		done()
	})
}

// handleCommit serves a remote COMMIT at the primary.
func (n *Node) handleCommit(c *nicrt.Core, src int, m *wire.Commit) {
	shard := n.place().ShardOf(m.Writes[0].Key)
	unlock := n.takeLockSet(m.TxnID, m.Writes)
	n.commitShard(c, shard, m.TxnID, m.Writes, unlock, m.CTS, func() {
		c.Send(src, &wire.CommitResp{
			Header: wire.Header{TxnID: m.TxnID, Src: uint8(n.id)},
			Status: wire.StatusOK,
		})
	})
}

// takeLockSet returns the keys to unlock for txn at this node: the shipped
// execution's full lock set if one exists (it locked read keys too), else
// the write keys.
func (n *Node) takeLockSet(txn uint64, writes []wire.KV) []uint64 {
	if ks, ok := n.remoteLocks[txn]; ok {
		delete(n.remoteLocks, txn)
		return ks
	}
	ks := make([]uint64, len(writes))
	for i, kv := range writes {
		ks[i] = kv.Key
	}
	return ks
}

// handleAbort releases a transaction's locks at this primary.
func (n *Node) handleAbort(c *nicrt.Core, m *wire.Abort) {
	keys := m.LockedKeys
	if ks, ok := n.remoteLocks[m.TxnID]; ok {
		delete(n.remoteLocks, m.TxnID)
		keys = ks
	}
	n.chargeIndexOps(c, len(keys))
	for _, k := range keys {
		shard := n.place().ShardOf(k)
		if p := n.prim(shard); p != nil {
			// Tolerant: an abort can land after a view change replaced the
			// index (promotion) or a sweep already released the lock.
			p.index.UnlockIf(k, m.TxnID)
		}
	}
}

// handleShipExec runs a whole transaction at this remote primary (§4.2.3):
// lock every key of this shard (reads included — shipped transactions use
// lock-all concurrency control, so no validation round is needed), resolve
// values, run the execution function, fan out LOG requests for all write
// shards with acks directed at the coordinator, and return the result.
func (n *Node) handleShipExec(c *nicrt.Core, src int, m *wire.ShipExec) {
	coord := int(m.Coord)
	fn, ok := n.cl.reg.Get(m.FnID)
	if !ok {
		panic(fmt.Sprintf("core: node %d: shipped unknown fn %d", n.id, m.FnID))
	}

	// Partition keys: this node's shards are resolved here; the rest
	// arrived pre-read in LocalReads. After a promotion this node may
	// serve several shards, so each key locks in its own shard's index.
	local := map[uint64]wire.KV{}
	for _, kv := range m.LocalReads {
		local[kv.Key] = kv
	}
	var mine []uint64
	seen := map[uint64]bool{}
	for _, k := range append(append([]uint64{}, m.ReadKeys...), m.WriteKeys...) {
		if _, pre := local[k]; !pre && !seen[k] {
			seen[k] = true
			mine = append(mine, k)
		}
	}

	failResp := func(st wire.Status, locked []uint64) {
		n.chargeIndexOps(c, len(locked))
		for _, k := range locked {
			if p := n.prim(n.place().ShardOf(k)); p != nil {
				p.index.UnlockIf(k, m.TxnID)
			}
		}
		c.Send(coord, &wire.ShipResult{
			Header: wire.Header{TxnID: m.TxnID, Src: uint8(n.id)},
			Status: st,
		})
	}

	for _, k := range mine {
		if !n.serving(n.place().ShardOf(k)) {
			failResp(wire.StatusAbortLocked, nil)
			return
		}
	}

	// Lock-all on this node's keys.
	n.chargeIndexOps(c, len(mine))
	var locked []uint64
	for _, k := range mine {
		if !n.prim(n.place().ShardOf(k)).index.TryLock(k, m.TxnID) {
			failResp(wire.StatusAbortLocked, locked)
			return
		}
		locked = append(locked, k)
	}

	// Resolve this shard's values, then execute.
	vals := map[uint64]wire.KV{}
	pending := len(mine)
	conflict := false
	finish := func() {
		if conflict {
			failResp(wire.StatusAbortLocked, locked)
			return
		}
		reads := assembleReads(m.ReadKeys, m.WriteKeys, func(k uint64) (wire.KV, bool) {
			if kv, ok := local[k]; ok {
				return kv, true
			}
			kv, ok := vals[k]
			return kv, ok
		})
		c.Charge(n.cl.cfg.Params.HostScaled(fn.HostCost))
		res := fn.Run(m.ExecState, reads)
		if res.Abort {
			failResp(wire.StatusAbortMissing, locked)
			return
		}
		if len(res.MoreReads) > 0 {
			panic("core: shipped execution requested another round (§4.2.3 requires single-round)")
		}
		writes := append(res.Writes, m.WriteSet...)
		versionWrites(writes, reads)
		n.recordShip(m.TxnID, coord, writes)
		n.remoteLocks[m.TxnID] = locked

		// Fan out LOG requests for every write shard's backups; acks flow
		// to the coordinator (Figure 7b).
		numLogs := 0
		for _, sw := range groupByShard(n.place(), writes) {
			shard, ws := sw.shard, sw.writes
			for _, b := range n.cl.viewBackups(shard) {
				numLogs++
				if b == n.id {
					ws := ws
					n.appendLog(c, recBackup, m.TxnID, shard, ws, func(uint64) {
						n.sendOrLoop(c, coord, &wire.LogResp{
							Header: wire.Header{TxnID: m.TxnID, Src: uint8(n.id)},
							Status: wire.StatusOK,
						})
					})
					continue
				}
				n.sendOrLoop(c, b, &wire.Log{
					Header:    wire.Header{TxnID: m.TxnID, Src: uint8(n.id)},
					RespondTo: uint8(coord),
					Writes:    ws,
				})
			}
		}
		c.Send(coord, &wire.ShipResult{
			Header:  wire.Header{TxnID: m.TxnID, Src: uint8(n.id)},
			Status:  wire.StatusOK,
			NumLogs: uint8(numLogs),
			ReadSet: reads,
			Writes:  writes,
		})
	}
	if pending == 0 {
		finish()
		return
	}
	for _, k := range mine {
		k := k
		n.lookupAsync(c, n.place().ShardOf(k), k, func(res nicindex.Result) {
			if res.Conflict {
				conflict = true
			}
			vals[k] = wire.KV{Key: k, Version: res.Version, Value: res.Value}
			pending--
			if pending == 0 {
				finish()
			}
		})
	}
}

// assembleReads builds the execution-function input: one KV per key in
// (readKeys ++ writeKeys) order, deduplicated, missing keys zero-valued.
func assembleReads(readKeys, writeKeys []uint64, get func(uint64) (wire.KV, bool)) []wire.KV {
	seen := map[uint64]bool{}
	var out []wire.KV
	for _, k := range append(append([]uint64{}, readKeys...), writeKeys...) {
		if seen[k] {
			continue
		}
		seen[k] = true
		if kv, ok := get(k); ok {
			out = append(out, kv)
		} else {
			out = append(out, wire.KV{Key: k})
		}
	}
	return out
}

// versionWrites assigns each write its successor version based on the
// version observed at execution (missing keys start at version 1).
func versionWrites(writes []wire.KV, reads []wire.KV) {
	vers := map[uint64]uint64{}
	for _, kv := range reads {
		vers[kv.Key] = kv.Version
	}
	for i := range writes {
		writes[i].Version = vers[writes[i].Key] + 1
	}
}

// shardWrites is one shard's slice of a write set.
type shardWrites struct {
	shard  int
	writes []wire.KV
}

// groupByShard splits a write set by primary shard, in ascending shard
// order (deterministic fan-out order keeps runs reproducible).
func groupByShard(place txnmodel.Placement, writes []wire.KV) []shardWrites {
	m := map[int][]wire.KV{}
	var order []int
	for _, kv := range writes {
		s := place.ShardOf(kv.Key)
		if _, ok := m[s]; !ok {
			order = append(order, s)
		}
		m[s] = append(m[s], kv)
	}
	sortInts(order)
	out := make([]shardWrites, 0, len(order))
	for _, s := range order {
		out = append(out, shardWrites{shard: s, writes: m[s]})
	}
	return out
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
