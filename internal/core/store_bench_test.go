package core

import (
	"encoding/binary"
	"testing"

	"xenic/internal/wire"
)

// BenchmarkMVCCApplyTS measures the update hot path with a version chain
// held at its retention cap: every ApplyTS moves the displaced row's buffer
// into the chain history and drops the tail entry. The chain hold itself
// must stay allocation-free (the store's one fresh-buffer insert is the
// pre-MVCC cost) — wallbench mirrors this benchmark as store/mvcc-apply and
// CI gates its allocs/op to equal store/apply's.
func BenchmarkMVCCApplyTS(b *testing.B) {
	g := &kvGen{keys: 16}
	sd := newShardData(g.Spec(), modPlace{nodes: 1})
	const keep = 8
	val := make([]byte, 8)
	for i := uint64(0); i <= keep; i++ {
		binary.LittleEndian.PutUint64(val, i)
		sd.ApplyTS(wire.KV{Key: 1, Value: val, Version: i + 1}, i+1, keep, 1)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := uint64(keep + 2 + i)
		binary.LittleEndian.PutUint64(val, v)
		sd.ApplyTS(wire.KV{Key: 1, Value: val, Version: v}, v, keep, 1)
	}
}
