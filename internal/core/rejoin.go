package core

import (
	"slices"

	"xenic/internal/membership"
	"xenic/internal/nicrt"
	"xenic/internal/sim"
	"xenic/internal/store/btree"
	"xenic/internal/wire"
)

// This file implements the healing half of reconfiguration (§4.2.1): a
// crashed node restarts with wiped NIC and host state, re-registers with the
// cluster manager (fault.Plan restart events), and re-replicates each of its
// shards from the current primary while that primary keeps serving. The
// transfer has no cutover gap: opening a shard's transfer session snapshots
// the primary's key set AND starts forwarding every commit the primary
// applies from then on, so the union of snapshot chunks and forwards covers
// everything; both apply paths are idempotent (version-guarded Apply). Once
// every shard is caught up the node asks the manager for admission and
// re-enters the replica chains as a live backup, restoring the replication
// factor. Epoch fencing (nicHandler) keeps the old incarnation's delayed
// frames from acting on the new one and vice versa.

// chunkKeys bounds the keys served per snapshot chunk.
const chunkKeys = 64

// pullRetry is the resend interval for an unanswered StatePull. A pull can
// race the serving node's own view notification and die on a fence at either
// end (the receiver's previous view still lists the rejoiner as evicted, or
// the reply carries the pre-join epoch), so the rejoiner re-pulls until a
// chunk advances the transfer. Duplicate pulls are harmless: index 0 just
// re-snapshots, later indexes re-serve a chunk the version-guarded apply
// deduplicates.
const pullRetry = 250 * sim.Microsecond

// fwdLinger is how long a primary keeps forwarding commits after the
// rejoiner is first listed as a live backup: commits from coordinators still
// on the pre-admission view (and local host-path commits, which carry no
// frame epoch) overlap direct replication until every pre-admission
// transaction has resolved; past the coordinator watchdog plus retries they
// all have, and the session retires.
const fwdLinger = 2 * sim.Millisecond

// rejoinState tracks a restarted node's catch-up.
type rejoinState struct {
	// viewSeen flips when the join view arrives; until then the node is
	// booting and drops all traffic (it knows no epoch to speak in).
	viewSeen bool
	// admitted flips once every shard transfer finished and the manager was
	// asked to admit this node into the replica chains.
	admitted bool
	shards   map[int]*pullState
}

// pullState is one shard's transfer progress at the rejoiner.
type pullState struct {
	primary int
	index   uint32
	done    bool
}

// xferSession is one shard's transfer state at the serving primary: the
// snapshot key set served in chunks, the rejoiner receiving them, and the
// forwarding fence (0 = forward every commit; otherwise forward only
// commits whose origin predates the fence epoch).
type xferSession struct {
	node  int
	fence int
	keys  []uint64
}

// replicaOfOrig reports whether this node holds shard s in the original
// (configured) replica chain — the shards a restarted node re-replicates.
func (n *Node) replicaOfOrig(s int) bool {
	if s == n.id {
		return true
	}
	for _, b := range n.cl.cfg.backupsOf(s) {
		if b == n.id {
			return true
		}
	}
	return false
}

// rejoinOnView advances the rejoin state machine on each membership view.
func (n *Node) rejoinOnView(c *nicrt.Core, v membership.View) {
	rj := n.rejoin
	if !rj.viewSeen {
		// The join view: the node is a member again (messages flow, the
		// lease renews) but serves nothing. Create empty replicas for its
		// original chain positions and start pulling each from the current
		// primary. Load generation resumes now — the node coordinates
		// transactions against the survivors while it catches up.
		rj.viewSeen = true
		for s := 0; s < n.cl.cfg.Nodes; s++ {
			if !n.replicaOfOrig(s) {
				continue
			}
			n.backups[s] = newShardData(n.cl.spec, n.cl.place)
			ps := &pullState{primary: v.PrimaryOf[s]}
			rj.shards[s] = ps
			if !v.Alive[ps.primary] || ps.primary == n.id {
				ps.done = true // shard lost every replica; nothing to copy
				continue
			}
			n.sendPull(c, s, ps)
		}
		n.host.WakeAll()
		n.maybeAdmit()
		return
	}
	// A later view while still catching up: a second failure may have moved
	// a shard's primary mid-transfer; restart that shard's pull against the
	// new primary (a fresh session re-snapshots, so nothing is missed).
	for s := 0; s < n.cl.cfg.Nodes; s++ {
		ps := rj.shards[s]
		if ps == nil {
			continue
		}
		np := v.PrimaryOf[s]
		if np == ps.primary && v.Alive[np] {
			continue
		}
		ps.primary, ps.index = np, 0
		if !v.Alive[np] || np == n.id {
			ps.done = true
			continue
		}
		ps.done = false
		n.sendPull(c, s, ps)
	}
	n.maybeAdmit()
	if rj.admitted && !v.Joining[n.id] {
		// The admission view lists this node as a live backup everywhere it
		// belongs: the rejoin is complete.
		n.rejoin = nil
	}
}

// sendPull requests the next chunk of a shard transfer and arms the retry:
// if the transfer has not advanced past this index by pullRetry, the pull
// (or its chunk) was lost to a fence race and is re-sent.
func (n *Node) sendPull(c *nicrt.Core, shard int, ps *pullState) {
	idx := ps.index
	c.Send(ps.primary, &wire.StatePull{
		Header: wire.Header{TxnID: 0, Src: uint8(n.id)},
		Shard:  uint8(shard), Index: idx,
	})
	n.cl.eng.After(pullRetry, func() {
		if !n.alive || n.rejoin == nil || n.rejoin.shards[shard] != ps ||
			ps.done || ps.index != idx {
			return
		}
		n.nic.Inject(n.nic.LiveCore(), func(c *nicrt.Core) {
			if n.alive && n.rejoin != nil && n.rejoin.shards[shard] == ps &&
				!ps.done && ps.index == idx {
				n.sendPull(c, shard, ps)
			}
		})
	})
}

// maybeAdmit asks the manager for admission once every shard transfer is
// done. The manager's next view re-enters this node into the replica
// chains atomically.
func (n *Node) maybeAdmit() {
	rj := n.rejoin
	if rj == nil || rj.admitted || !rj.viewSeen {
		return
	}
	for _, ps := range rj.shards {
		if !ps.done {
			return
		}
	}
	rj.admitted = true
	n.cl.mgr.Admit(n.id)
}

// snapshotKeys collects a shard replica's full key set in sorted order.
func snapshotKeys(d *ShardData) []uint64 {
	var keys []uint64
	d.Hash.ForEach(func(k, _ uint64, _ []byte) bool {
		keys = append(keys, k)
		return true
	})
	d.BTree.AscendRange(0, ^uint64(0), func(it btree.Item) bool {
		keys = append(keys, it.Key)
		return true
	})
	slices.Sort(keys)
	return keys
}

// handleStatePull serves one snapshot chunk of a shard this node is primary
// for. Index 0 (re)opens the transfer session: the key set is snapshotted
// and commit forwarding starts, so everything the snapshot misses is
// forwarded and everything forwarded twice is deduplicated by version.
func (n *Node) handleStatePull(c *nicrt.Core, src int, m *wire.StatePull) {
	shard := int(m.Shard)
	p := n.prim(shard)
	if p == nil {
		return // the view moved on; the rejoiner re-pulls from the new primary
	}
	if !p.ready {
		// Promotion scan still deciding: serve the pull once the shard opens.
		n.cl.eng.After(50*sim.Microsecond, func() {
			n.nic.Inject(n.nic.LiveCore(), func(c *nicrt.Core) {
				if n.alive && n.cl.view.Alive[src] {
					n.handleStatePull(c, src, m)
				}
			})
		})
		return
	}
	sess := n.fwd[shard]
	if m.Index == 0 {
		sess = &xferSession{node: src, keys: snapshotKeys(p.data)}
		if n.fwd == nil {
			n.fwd = map[int]*xferSession{}
		}
		n.fwd[shard] = sess
	}
	if sess == nil || sess.node != src {
		return // stale pull from a superseded session
	}
	start := int(m.Index) * chunkKeys
	if start > len(sess.keys) {
		start = len(sess.keys)
	}
	end := start + chunkKeys
	if end > len(sess.keys) {
		end = len(sess.keys)
	}
	resp := &wire.StateChunk{
		Header: wire.Header{TxnID: 0, Src: uint8(n.id)},
		Shard:  m.Shard, Index: m.Index, Done: end == len(sess.keys),
	}
	bytes := 0
	for _, k := range sess.keys[start:end] {
		v, ver, ok := p.data.Read(k)
		if !ok {
			continue // deleted since the snapshot; a forward covered it
		}
		resp.KVs = append(resp.KVs, wire.KV{Key: k, Version: ver, Value: v})
		if n.cl.mv.enabled {
			// Ship the chain head timestamp so the rejoined replica's chains
			// restart from a coherent base (history below it is not
			// transferred; reads below the base fall back to abort+retry).
			resp.TSs = append(resp.TSs, p.data.HeadTS(k))
		}
		bytes += 16 + len(v)
	}
	if bytes == 0 {
		c.Send(src, resp)
		return
	}
	// One gathered DMA read pulls the chunk's rows from host memory before
	// the NIC ships them.
	c.DMARead([]int{bytes}, func() { c.Send(src, resp) })
}

// handleStateChunk applies one snapshot chunk at the rejoiner and pulls the
// next (or finishes the shard). Chunks ride the normal backup-log path so
// host workers apply them with the usual charges.
func (n *Node) handleStateChunk(c *nicrt.Core, src int, m *wire.StateChunk) {
	rj := n.rejoin
	if rj == nil {
		return
	}
	shard := int(m.Shard)
	ps := rj.shards[shard]
	if ps == nil || ps.done || src != ps.primary || m.Index != ps.index {
		return // stale chunk from a superseded pull
	}
	advance := func() {
		if m.Done {
			ps.done = true
			n.maybeAdmit()
			return
		}
		ps.index++
		n.sendPull(c, shard, ps)
	}
	if len(m.KVs) == 0 {
		advance()
		return
	}
	n.appendLogTS(c, recBackup, 0, shard, m.KVs, 0, m.TSs, func(uint64) {
		n.log.markCommitted(0, shard, 0)
		n.wakeWorkers()
		advance()
	})
}

// handleStateForward applies a commit the primary relayed during catch-up.
// Forwards may overlap direct Log replication after admission; the
// version-guarded apply makes the duplicate harmless.
func (n *Node) handleStateForward(c *nicrt.Core, m *wire.StateForward) {
	shard := int(m.Shard)
	if _, ok := n.backups[shard]; !ok {
		return // restarted again since the session opened; a fresh pull recopies
	}
	n.appendLogTS(c, recBackup, m.TxnID, shard, m.Writes, m.CTS, nil, func(uint64) {
		n.log.markCommitted(m.TxnID, shard, m.CTS)
		n.wakeWorkers()
	})
}

// updateForwards maintains this primary's transfer sessions on a view
// change: drop sessions whose rejoiner died, and once the rejoiner is
// listed as a live backup set the forwarding fence to that epoch —
// coordinators on the new view already replicate to it directly, so only
// pre-admission commits still need forwarding, and after fwdLinger none
// remain and the session retires.
func (n *Node) updateForwards(v membership.View) {
	if len(n.fwd) == 0 {
		return
	}
	shards := make([]int, 0, len(n.fwd))
	for s := range n.fwd {
		shards = append(shards, s)
	}
	slices.Sort(shards)
	for _, s := range shards {
		sess := n.fwd[s]
		if !v.Alive[sess.node] {
			delete(n.fwd, s)
			continue
		}
		if sess.fence != 0 {
			continue
		}
		listed := false
		for _, b := range v.BackupsOf[s] {
			if b == sess.node {
				listed = true
			}
		}
		if !listed {
			continue
		}
		sess.fence = v.Epoch
		s, sess := s, sess
		n.cl.eng.After(fwdLinger, func() {
			if n.fwd[s] == sess {
				delete(n.fwd, s)
			}
		})
	}
}
