package core

import (
	"fmt"
	"testing"

	"xenic/internal/fault"
	"xenic/internal/sim"
)

// hotGen returns a counter workload squeezed onto few keys so hot-key
// contention (and the scheduler's park/serialize machinery) engages hard.
func hotGen() *kvGen {
	return &kvGen{keys: 48, keysPer: 2, readFrac: 0.1, nicExec: true}
}

func schedConfig(seed int64) Config {
	cfg := testConfig(4, AllFeatures())
	cfg.Seed = seed
	cfg.Sched = true
	return cfg
}

// TestSchedOnDeterminism: with the conflict scheduler enabled, the same seed
// must reproduce the exact same run — results and scheduler counters both.
// Batching, hotness decay, parking, and release ordering are all engine-
// driven, so any hidden map-iteration or wall-clock dependence shows up here.
func TestSchedOnDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		var results []string
		for rep := 0; rep < 2; rep++ {
			cl, err := New(schedConfig(seed), hotGen())
			if err != nil {
				t.Fatal(err)
			}
			res := cl.Measure(500*sim.Microsecond, 2*sim.Millisecond)
			results = append(results, fmt.Sprintf("%+v sched=%+v", res, cl.SchedStats()))
		}
		if results[0] != results[1] {
			t.Errorf("seed %d: runs differ:\n  %s\n  %s", seed, results[0], results[1])
		}
	}
}

// TestSchedEngagesUnderContention: the scheduler actually schedules on a
// hot-key workload — transactions flow through it, some are serialized — and
// the cluster still drains to quiescence (no parked transaction is leaked).
func TestSchedEngagesUnderContention(t *testing.T) {
	cl, err := New(schedConfig(7), hotGen())
	if err != nil {
		t.Fatal(err)
	}
	res := cl.Measure(500*sim.Microsecond, 2*sim.Millisecond)
	if res.Committed == 0 {
		t.Fatal("nothing committed")
	}
	ss := cl.SchedStats()
	if ss.Submitted == 0 || ss.Dispatched == 0 {
		t.Fatalf("scheduler bypassed: %+v", ss)
	}
	if ss.HotRouted == 0 {
		t.Fatalf("no hot-key routing on a 48-key counter workload: %+v", ss)
	}
	if !cl.Drain(500 * sim.Millisecond) {
		t.Fatal("did not drain with scheduler on (parked txn leaked?)")
	}
}

// abortSum adds up every per-reason abort field of a Result.
func abortSum(res Result) int64 {
	return res.AbortLocked + res.AbortVersion + res.AbortMissing +
		res.AbortView + res.AbortTimeout + res.AbortSched + res.AbortSnapshot
}

// TestSchedAbortAccountingCrossCheck pins the accounting invariant on a
// contended scheduler run: every abort increments exactly one per-reason
// counter, so the per-reason fields sum to Aborts. This is the regression
// test for the Measure aggregation bug where AbortTimeout (and then
// AbortSched) were counted in Aborts but missing from the breakdown.
func TestSchedAbortAccountingCrossCheck(t *testing.T) {
	cl, err := New(schedConfig(11), hotGen())
	if err != nil {
		t.Fatal(err)
	}
	res := cl.Measure(500*sim.Microsecond, 3*sim.Millisecond)
	if res.Aborts == 0 {
		t.Fatal("contended run produced no aborts; cross-check is vacuous")
	}
	if got := abortSum(res); got != res.Aborts {
		t.Errorf("per-reason sum %d != aborts %d (%+v)", got, res.Aborts, res)
	}
}

// TestAbortAccountingCrossCheckFaulty runs the same invariant on a faulty
// high-contention run, where the timeout reason (the historically dropped
// one) actually fires.
func TestAbortAccountingCrossCheckFaulty(t *testing.T) {
	plan, err := fault.Parse("drop=0.02,delay=0.05,maxdelay=60us")
	if err != nil {
		t.Fatal(err)
	}
	for _, sched := range []bool{false, true} {
		cfg := testConfig(4, AllFeatures())
		cfg.Seed = 5
		cfg.Sched = sched
		cfg.Faults = plan
		cl, err := New(cfg, hotGen())
		if err != nil {
			t.Fatal(err)
		}
		res := cl.Measure(500*sim.Microsecond, 4*sim.Millisecond)
		if res.Aborts == 0 {
			t.Fatalf("sched=%v: faulty run produced no aborts", sched)
		}
		if got := abortSum(res); got != res.Aborts {
			t.Errorf("sched=%v: per-reason sum %d != aborts %d (%+v)", sched, got, res.Aborts, res)
		}
	}
}
