package core

import (
	"fmt"

	"xenic/internal/check"
	"xenic/internal/fault"
	"xenic/internal/hostrt"
	"xenic/internal/load"
	"xenic/internal/membership"
	"xenic/internal/metrics"
	"xenic/internal/nicrt"
	"xenic/internal/sim"
	"xenic/internal/simnet"
	"xenic/internal/store/btree"
	"xenic/internal/store/nicindex"
	"xenic/internal/trace"
	"xenic/internal/txnmodel"
	"xenic/internal/wire"
)

// Cluster is a simulated Xenic deployment: Config.Nodes servers, each a
// coordinator, the primary of one shard, and a backup for Replication-1
// others (§4).
type Cluster struct {
	cfg    Config
	eng    *sim.Engine
	nw     *simnet.Network
	nodes  []*Node
	gen    txnmodel.Generator
	place  txnmodel.Placement
	reg    *txnmodel.Registry
	spec   txnmodel.StoreSpec
	loadOn bool

	loadSrc load.Source // nil: built-in closed loop drives the cluster
	srcOn   bool        // the attached source has been started

	mgr  *membership.Manager
	view membership.View

	// fwdInFlight[n] counts state-transfer commit forwards sent to rejoiner
	// n that have not yet arrived; Quiesced waits for them so a drained
	// cluster's replicas are byte-comparable. Reset when n restarts.
	fwdInFlight []int64

	inj    *fault.Injector // nil unless Config.Faults is set
	tracer *trace.Tracer   // nil unless SetTracer attached one
	hist   *check.History  // nil unless SetHistory attached one
	mv     *mvState        // MVCC timestamp machinery (disabled unless Config.MVCC)
}

// primaryNode is the node currently serving shard s.
func (cl *Cluster) primaryNode(s int) int { return cl.view.PrimaryOf[s] }

// viewBackups lists shard s's surviving backups in the current view.
func (cl *Cluster) viewBackups(s int) []int { return cl.view.BackupsOf[s] }

// replicasOf lists every surviving replica of shard s: the serving primary
// followed by the backups.
func (cl *Cluster) replicasOf(s int) []int {
	out := []int{cl.view.PrimaryOf[s]}
	return append(out, cl.view.BackupsOf[s]...)
}

// View returns the current membership view.
func (cl *Cluster) View() membership.View { return cl.view }

// New builds and populates a cluster running workload gen.
func New(cfg Config, gen txnmodel.Generator) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cl := &Cluster{
		cfg: cfg,
		eng: sim.NewEngine(cfg.Seed),
		gen: gen,
		reg: txnmodel.NewRegistry(),
	}
	cl.nw = simnet.New(cl.eng, cfg.Params, cfg.Nodes)
	cl.fwdInFlight = make([]int64, cfg.Nodes)
	cl.mv = newMVState(cfg.MVCC, cfg.MVCCKeep)
	if cfg.Faults != nil {
		// The injector decides every frame's fate; the liveness oracle lets
		// the reliable transport abandon frames to or from dead nodes.
		cl.inj = fault.NewInjector(cl.eng, cfg.Faults, cfg.Seed)
		cl.nw.SetFault(cl.inj.FrameFate, func(node int) bool { return cl.nodes[node].alive })
	}
	cl.place = gen.Placement(cfg.Nodes, cfg.Replication)
	gen.Register(cl.reg)
	spec := gen.Spec()
	cl.spec = spec

	for id := 0; id < cfg.Nodes; id++ {
		own := newShardData(spec, cl.place)
		n := &Node{
			cl:            cl,
			id:            id,
			prims:         map[int]*primaryShard{},
			backups:       map[int]*ShardData{},
			log:           newHostLog(),
			pins:          map[uint64][]uint64{},
			pinIdx:        map[uint64]*nicindex.Index{},
			ctxns:         map[uint64]*ctxn{},
			remoteLocks:   map[uint64][]uint64{},
			recov:         map[txnShard]*recovering{},
			pendingDecide: map[txnShard][]uint64{},
			alive:         true,
		}
		n.stats.Latency = metrics.NewHistogram()
		n.stats.ROLatency = metrics.NewHistogram()
		for i := range n.stats.PhaseLat {
			n.stats.PhaseLat[i] = metrics.NewHistogram()
		}
		for s := 0; s < cfg.Nodes; s++ {
			for _, b := range cfg.backupsOf(s) {
				if b == id {
					n.backups[s] = newShardData(spec, cl.place)
				}
			}
		}
		n.prims[id] = &primaryShard{
			data:  own,
			index: nicindex.New(own.Hash, cl.cacheCap(), 1),
			ready: true,
		}
		if cl.mv.enabled {
			// The NIC index mirrors the host chain head timestamps (modeled
			// as extra row-header metadata carried by the existing DMA fills)
			// and caches a bounded version history per entry.
			n.prims[id].index.SetTSFunc(own.HeadTS)
			n.prims[id].index.SetChainDepth(cl.mv.keep)
		}

		n.host = hostrt.New(cl.eng, cfg.Params, id, cfg.AppThreads+cfg.WorkerThreads, cfg.Seed)
		n.nic = nicrt.New(cl.eng, cfg.Params, cl.nw, id, cfg.NICCores, cfg.Seed, cfg.Features.runtime())
		if cl.inj != nil {
			n.nic.SetDMAFault(cl.inj.DMAErr)
		}

		n.nic.OnMessage(n.nicHandler)
		if cfg.Sched {
			sc := nicrt.DefaultSchedConfig()
			if cfg.SchedBatchUs > 0 {
				sc.BatchWindow = sim.Time(cfg.SchedBatchUs) * sim.Microsecond
			}
			if cfg.SchedHotK > 0 {
				sc.HotThreshold = cfg.SchedHotK
			}
			sched := nicrt.NewScheduler(cl.eng, sc)
			n.nic.SetScheduler(sched)
			node, snic := n, n.nic
			sched.OnShed(func(req *wire.TxnRequest) {
				snic.Inject(snic.LiveCore(), func(c *nicrt.Core) { node.shedTxn(c, req) })
			})
		}
		nic, host := n.nic, n.host
		n.nic.OnHostDeliver(func(ms []wire.Msg) { host.Deliver(id, ms) })
		n.host.OnMessage(n.hostHandler)
		n.host.OnIdle(n.hostIdle)
		n.host.SetRouter(n.hostRouter)
		p := cfg.Params
		n.host.OnTransmit(func(t *hostrt.Thread, ms []wire.Msg) {
			t.At(p.HostToNIC, func() { nic.FromHost(ms) })
		})

		for a := 0; a < cfg.AppThreads; a++ {
			n.app = append(n.app, &appThread{node: n, id: a, inflight: map[uint64]*appTxn{}})
		}
		cl.nodes = append(cl.nodes, n)
	}

	cl.populate()

	// Membership: leases renewed by live nodes, reconfiguration on expiry
	// (§4.2.1). The manager runs off the critical path.
	cl.mgr = membership.New(cl.eng, cfg.Nodes, cfg.Replication, cfg.Membership)
	cl.view = cl.mgr.View()
	cl.mgr.OnChange(cl.onViewChange)
	for _, n := range cl.nodes {
		n := n
		cl.eng.Ticker(cfg.Membership.RenewPeriod, func() bool {
			// A partitioned node cannot reach the manager: its lease lapses
			// and it is evicted (then self-fences on the view change).
			if n.alive && (cl.inj == nil || !cl.inj.Isolated(n.id)) {
				cl.mgr.Renew(n.id)
			}
			return true
		})
	}
	cl.mgr.Start()
	cl.scheduleFaults()
	return cl, nil
}

// scheduleFaults arms the plan's scheduled events: crashes, NIC core stalls,
// and DMA engine stalls. Partitions and per-frame faults are decided inline
// by the injector.
func (cl *Cluster) scheduleFaults() {
	if cl.inj == nil {
		return
	}
	plan := cl.inj.Plan()
	for _, c := range plan.Crashes {
		c := c
		cl.eng.At(c.At, func() { cl.Kill(c.Node) })
	}
	for _, s := range plan.CoreStalls {
		s := s
		cl.eng.At(s.At, func() {
			cl.nodes[s.Node].nic.StallCore(s.Core%cl.cfg.NICCores, s.Dur)
		})
	}
	for _, s := range plan.DMAStalls {
		s := s
		cl.eng.At(s.At, func() { cl.nodes[s.Node].nic.StallDMA(s.Dur) })
	}
	for _, r := range plan.Restarts {
		r := r
		cl.eng.At(r.At, func() { cl.Restart(r.Node) })
	}
}

// Injector exposes the fault injector (nil on fault-free runs).
func (cl *Cluster) Injector() *fault.Injector { return cl.inj }

// cacheCap is the SmartNIC index cache capacity from the workload spec.
func (cl *Cluster) cacheCap() int {
	cache := cl.spec.NICCacheObjects
	if cache <= 0 {
		cache = cl.spec.HashSlots / 4
	}
	return cache
}

// Kill crashes node id: it stops processing and renewing its lease; the
// manager reconfigures once the lease expires.
func (cl *Cluster) Kill(id int) {
	cl.nodes[id].alive = false
}

// Restart brings a crashed (and evicted) node back with wiped NIC and host
// state. The node re-registers with the cluster manager, is fenced behind
// its fresh join epoch, and re-replicates its shards from the surviving
// primaries before re-entering the replica chains (rejoin.go). A restart
// before the manager has evicted the node is retried after the eviction
// view lands — a node cannot rejoin a view it never left.
func (cl *Cluster) Restart(id int) {
	n := cl.nodes[id]
	if n.alive {
		return
	}
	if cl.mgr.View().Alive[id] {
		cl.eng.After(cl.cfg.Membership.CheckPeriod, func() { cl.Restart(id) })
		return
	}
	// Wipe: host memory (replicas, log, coordinator and recovery state) and
	// NIC state (dedup tables, epoch) are gone; only durable identity — the
	// node id and its app threads' sequence counters (so retried ids stay
	// globally unique) — survives. Stats accumulate across the restart so
	// Measure windows keep working.
	n.prims = map[int]*primaryShard{}
	n.backups = map[int]*ShardData{}
	n.log = newHostLog()
	n.pins = map[uint64][]uint64{}
	n.pinIdx = map[uint64]*nicindex.Index{}
	n.ctxns = map[uint64]*ctxn{}
	n.remoteLocks = map[uint64][]uint64{}
	n.recov = map[txnShard]*recovering{}
	n.pendingDecide = map[txnShard][]uint64{}
	n.fwd = nil
	for _, at := range n.app {
		at.failInjected()
		at.inflight = map[uint64]*appTxn{}
		at.outstanding = 0
		at.retryq = nil
		at.injectq = nil
	}
	n.nic.Reset()
	cl.fwdInFlight[id] = 0
	n.alive = true
	n.rejoin = &rejoinState{shards: map[int]*pullState{}}
	cl.mgr.Rejoin(id)
}

// populate loads initial records into every shard's primary and backups,
// then syncs the NIC index hints (the NIC learns the layout at setup).
func (cl *Cluster) populate() {
	for s := 0; s < cl.cfg.Nodes; s++ {
		primary := cl.nodes[s]
		backups := cl.cfg.backupsOf(s)
		cl.gen.Populate(s, cl.cfg.Nodes, func(key uint64, value []byte) {
			if got := cl.place.ShardOf(key); got != s {
				panic(fmt.Sprintf("core: populate: key %d belongs to shard %d, emitted for %d", key, got, s))
			}
			kv := wire.KV{Key: key, Version: 1, Value: value}
			primary.prims[s].data.Apply(kv)
			for _, b := range backups {
				cl.nodes[b].backups[s].Apply(kv)
			}
		})
	}
	for _, n := range cl.nodes {
		for _, p := range n.prims {
			p.index.SyncHints()
		}
	}
}

// Engine exposes the simulation engine.
func (cl *Cluster) Engine() *sim.Engine { return cl.eng }

// Node returns node i.
func (cl *Cluster) Node(i int) *Node { return cl.nodes[i] }

// Nodes returns the node count.
func (cl *Cluster) Nodes() int { return cl.cfg.Nodes }

// Config returns the cluster configuration.
func (cl *Cluster) Config() Config { return cl.cfg }

// Start begins load generation: the attached LoadSource if one was set
// (xenic.WithLoad), otherwise the built-in closed loop on every application
// thread.
func (cl *Cluster) Start() {
	if cl.loadSrc != nil {
		cl.srcOn = true
		cl.loadSrc.Start()
		return
	}
	cl.StartClosedLoop()
}

// StopLoad stops generating new transactions; in-flight ones drain.
func (cl *Cluster) StopLoad() {
	if cl.loadSrc != nil {
		cl.srcOn = false
		cl.loadSrc.Stop()
		return
	}
	cl.StopClosedLoop()
}

// SetLoad attaches a load source, replacing the built-in closed loop as
// what Start/StopLoad control. Attach errors (bad source configuration)
// surface here. Call before any load has been started.
func (cl *Cluster) SetLoad(src load.Source) error {
	if src == nil {
		return fmt.Errorf("core: SetLoad: nil source")
	}
	if cl.loadSrc != nil {
		return fmt.Errorf("core: SetLoad: a load source is already attached")
	}
	if err := src.Attach(cl); err != nil {
		return err
	}
	cl.loadSrc = src
	return nil
}

// OfferedLoad snapshots the attached load source's admission and session
// counters; all-zero when the built-in closed loop is driving.
func (cl *Cluster) OfferedLoad() load.Stats {
	if cl.loadSrc == nil {
		return load.Stats{}
	}
	return cl.loadSrc.Stats()
}

// loadRunning reports whether some load generator has been started and not
// stopped since.
func (cl *Cluster) loadRunning() bool {
	if cl.loadSrc != nil {
		return cl.srcOn
	}
	return cl.loadOn
}

// StartClosedLoop begins closed-loop generation on every application thread
// (the load.Driver surface; Start delegates here when no source is set).
func (cl *Cluster) StartClosedLoop() {
	cl.loadOn = true
	for _, n := range cl.nodes {
		n.host.WakeAll()
	}
}

// StopClosedLoop halts closed-loop generation.
func (cl *Cluster) StopClosedLoop() { cl.loadOn = false }

// AppThreadsPerNode reports the coordinator application threads per node
// (the load.Driver injection grid).
func (cl *Cluster) AppThreadsPerNode() int { return cl.cfg.AppThreads }

// Workload returns the generator this cluster was built with.
func (cl *Cluster) Workload() txnmodel.Generator { return cl.gen }

// InjectTxn submits one transaction on the given node's application thread
// at the current instant (the load.Driver surface). done, if non-nil, fires
// exactly once at the transaction's final outcome. Injecting into a crashed
// node fails immediately; a crash after injection fails the in-flight
// transactions when the node restarts.
func (cl *Cluster) InjectTxn(node, thread int, d *txnmodel.TxnDesc, done func(ok bool)) {
	n := cl.nodes[node]
	if !n.alive {
		if done != nil {
			done(false)
		}
		return
	}
	at := n.app[thread]
	at.injectq = append(at.injectq, injected{desc: d, done: done})
	n.host.Thread(thread).Wake()
}

// Run advances simulated time by d.
func (cl *Cluster) Run(d sim.Time) { cl.eng.Run(cl.eng.Now() + d) }

// Result summarizes a measurement window. It is the shared measurement type
// in txnmodel, so Xenic and baseline results are directly comparable.
type Result = txnmodel.Result

// Measure runs warmup, resets statistics, runs the measurement window, and
// aggregates cluster-wide results.
func (cl *Cluster) Measure(warmup, window sim.Time) Result {
	// Whatever generator is attached — closed loop or a LoadSource — is the
	// one started here; Measure never falls back to the closed loop when an
	// open-loop source is driving (pinned by TestMeasureStartsAttachedSource).
	if !cl.loadRunning() {
		cl.Start()
	}
	cl.Run(warmup)
	type snap struct {
		committed, measured, aborts, failed int64
		roCommitted, roAborts, snapDone     int64
		reasons                             [wire.NumStatuses]int64
	}
	snaps := make([]snap, len(cl.nodes))
	for i, n := range cl.nodes {
		snaps[i] = snap{n.stats.Committed, n.stats.Measured, n.stats.Aborts,
			n.stats.Failed, n.stats.ROCommitted, n.stats.ROAborts,
			n.stats.SnapCommitted, n.stats.AbortReasons}
		n.stats.Latency.Reset()
		n.stats.ROLatency.Reset()
		for _, h := range n.stats.PhaseLat {
			h.Reset()
		}
	}
	cl.Run(window)
	res := Result{Duration: window}
	lat := metrics.NewHistogram()
	roLat := metrics.NewHistogram()
	for i, n := range cl.nodes {
		res.Committed += n.stats.Committed - snaps[i].committed
		res.Measured += n.stats.Measured - snaps[i].measured
		res.Aborts += n.stats.Aborts - snaps[i].aborts
		res.Failed += n.stats.Failed - snaps[i].failed
		res.AbortLocked += n.stats.AbortReasons[wire.StatusAbortLocked] - snaps[i].reasons[wire.StatusAbortLocked]
		res.AbortVersion += n.stats.AbortReasons[wire.StatusAbortVersion] - snaps[i].reasons[wire.StatusAbortVersion]
		res.AbortMissing += n.stats.AbortReasons[wire.StatusAbortMissing] - snaps[i].reasons[wire.StatusAbortMissing]
		res.AbortView += n.stats.AbortReasons[wire.StatusAbortView] - snaps[i].reasons[wire.StatusAbortView]
		res.AbortTimeout += n.stats.AbortReasons[wire.StatusAbortTimeout] - snaps[i].reasons[wire.StatusAbortTimeout]
		res.AbortSched += n.stats.AbortReasons[wire.StatusAbortSched] - snaps[i].reasons[wire.StatusAbortSched]
		lat.Merge(n.stats.Latency)
		if cl.mv.enabled {
			res.ROCommitted += n.stats.ROCommitted - snaps[i].roCommitted
			res.ROAborts += n.stats.ROAborts - snaps[i].roAborts
			res.SnapCommitted += n.stats.SnapCommitted - snaps[i].snapDone
			res.AbortSnapshot += n.stats.AbortReasons[wire.StatusAbortSnapshot] - snaps[i].reasons[wire.StatusAbortSnapshot]
			roLat.Merge(n.stats.ROLatency)
		}
	}
	res.PerServerTput = float64(res.Measured) / window.Seconds() / float64(len(cl.nodes))
	res.Median = lat.Median()
	res.P99 = lat.Quantile(0.99)
	res.Mean = lat.Mean()
	if cl.mv.enabled {
		res.ROMedian = roLat.Median()
		res.ROP99 = roLat.Quantile(0.99)
	}
	return res
}

// SchedStats is the conflict scheduler's counter block, re-exported so
// callers aggregating cluster results need not import nicrt.
type SchedStats = nicrt.SchedStats

// SchedStats sums the per-node conflict-scheduler counters. Zero-valued
// when the scheduler is disabled.
func (cl *Cluster) SchedStats() nicrt.SchedStats {
	var s nicrt.SchedStats
	for _, n := range cl.nodes {
		sched := n.nic.Scheduler()
		if sched == nil {
			continue
		}
		st := sched.Stats()
		s.Submitted += st.Submitted
		s.Batches += st.Batches
		s.Dispatched += st.Dispatched
		s.HotRouted += st.HotRouted
		s.Parked += st.Parked
		s.Shed += st.Shed
	}
	return s
}

// Quiesced reports whether the cluster has fully drained: no in-flight
// transactions, no coordinator state, decided log records applied, and no
// recovery in progress. Crashed nodes are excluded.
func (cl *Cluster) Quiesced() bool {
	for _, n := range cl.nodes {
		if !n.alive {
			continue
		}
		for _, at := range n.app {
			if at.outstanding > 0 || len(at.retryq) > 0 || len(at.injectq) > 0 {
				return false
			}
		}
		if len(n.ctxns) > 0 || len(n.remoteLocks) > 0 || n.log.pending() > 0 ||
			len(n.pins) > 0 || len(n.recov) > 0 || len(n.pendingDecide) > 0 {
			return false
		}
		if n.rejoin != nil {
			return false // restarting node still catching up
		}
		for _, p := range n.prims {
			if !p.ready {
				return false
			}
		}
	}
	for dst, cnt := range cl.fwdInFlight {
		if cnt > 0 && cl.nodes[dst].alive {
			return false // state-transfer forwards still in flight
		}
	}
	return true
}

// Drain stops load and runs until quiesced (or the deadline elapses),
// reporting success.
func (cl *Cluster) Drain(deadline sim.Time) bool {
	cl.StopLoad()
	end := cl.eng.Now() + deadline
	for cl.eng.Now() < end {
		if cl.Quiesced() {
			return true
		}
		cl.Run(100 * sim.Microsecond)
	}
	return cl.Quiesced()
}

// CheckInvariants validates every node's store and index structures plus
// cross-replica consistency for quiesced clusters (call after StopLoad and
// a drain period).
func (cl *Cluster) CheckInvariants() error {
	for _, n := range cl.nodes {
		if !n.alive {
			continue
		}
		for s, p := range n.prims {
			if err := p.data.Hash.CheckInvariants(); err != nil {
				return fmt.Errorf("node %d primary of %d: %w", n.id, s, err)
			}
			if err := p.data.BTree.CheckInvariants(); err != nil {
				return fmt.Errorf("node %d primary btree of %d: %w", n.id, s, err)
			}
			if err := p.index.CheckInvariants(); err != nil {
				return fmt.Errorf("node %d index of %d: %w", n.id, s, err)
			}
		}
		for s, b := range n.backups {
			if err := b.Hash.CheckInvariants(); err != nil {
				return fmt.Errorf("node %d backup of %d: %w", n.id, s, err)
			}
		}
	}
	return nil
}

// ReplicasConsistent verifies (for a fully drained cluster) that every
// backup replica holds exactly the primary's data at the same versions.
// Core correctness tests rely on it.
func (cl *Cluster) ReplicasConsistent() error {
	for s := 0; s < cl.cfg.Nodes; s++ {
		pn := cl.nodes[cl.primaryNode(s)]
		if !pn.alive {
			continue // shard lost every replica
		}
		prim := pn.prim(s)
		if prim == nil {
			return fmt.Errorf("shard %d: view primary %d does not serve it", s, pn.id)
		}
		for _, b := range cl.viewBackups(s) {
			bk := cl.nodes[b].backups[s]
			if err := storesEqual(prim.data, bk); err != nil {
				return fmt.Errorf("shard %d backup at node %d: %w", s, b, err)
			}
		}
	}
	return nil
}

func storesEqual(a, b *ShardData) error {
	if a.Hash.Len() != b.Hash.Len() {
		return fmt.Errorf("hash sizes differ: %d vs %d", a.Hash.Len(), b.Hash.Len())
	}
	if a.BTree.Len() != b.BTree.Len() {
		return fmt.Errorf("btree sizes differ: %d vs %d", a.BTree.Len(), b.BTree.Len())
	}
	var err error
	a.Hash.ForEach(func(key uint64, version uint64, value []byte) bool {
		r := b.Hash.Lookup(key)
		if !r.Found || r.Version != version || string(r.Value) != string(value) {
			err = fmt.Errorf("hash key %d diverges (found=%v v=%d vs %d)", key, r.Found, r.Version, version)
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	a.BTree.AscendRange(0, ^uint64(0), func(it btree.Item) bool {
		got, ok := b.BTree.Get(it.Key)
		if !ok || got.Version != it.Version || string(got.Value) != string(it.Value) {
			err = fmt.Errorf("btree key %d diverges", it.Key)
			return false
		}
		return true
	})
	return err
}
