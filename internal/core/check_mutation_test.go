package core

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"xenic/internal/check"
	"xenic/internal/sim"
	"xenic/internal/txnmodel"
)

// mutGen issues read-modify-write transactions with two plain (unlocked)
// read keys next to one update key: the shape whose correctness hangs on
// validation, unlike kvGen's update transactions whose whole read set is
// lock-protected from the first EXECUTE round.
type mutGen struct{ kvGen }

func (g *mutGen) Next(node, thread int, rng *rand.Rand) *txnmodel.TxnDesc {
	seen := map[uint64]bool{}
	pick := func() uint64 {
		for {
			k := uint64(rng.Intn(g.keys))
			if !seen[k] {
				seen[k] = true
				return k
			}
		}
	}
	st := make([]byte, 2)
	binary.LittleEndian.PutUint16(st, 1)
	return &txnmodel.TxnDesc{
		NICExec:    g.nicExec,
		ReadKeys:   []uint64{pick(), pick()},
		UpdateKeys: []uint64{pick()},
		FnID:       fnIncr,
		State:      st,
	}
}

// mutantRun drives the contended read-modify-write workload with a history
// attached and returns the checker's report. The caller sets one of the
// mutation knobs (mutation.go) before calling.
func mutantRun(t *testing.T, seed int64) *check.Report {
	t.Helper()
	g := &mutGen{kvGen{keys: 60, nicExec: true}}
	cfg := testConfig(4, AllFeatures())
	cfg.Seed = seed
	cl, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	h := check.NewHistory()
	cl.SetHistory(h)
	cl.Start()
	cl.Run(4 * sim.Millisecond)
	if !cl.Drain(500 * sim.Millisecond) {
		t.Fatal("mutant cluster did not drain")
	}
	return h.Check()
}

// requireWitnessCycle asserts the checker produced at least one concrete,
// well-formed witness cycle — the proof the checker is not vacuously green.
func requireWitnessCycle(t *testing.T, rep *check.Report) {
	t.Helper()
	if rep.Ok() {
		t.Fatalf("mutant produced a clean report: %s", rep.String())
	}
	if len(rep.Cycles) == 0 {
		t.Fatalf("mutant detected only anomalies, no witness cycle:\n%s", rep.String())
	}
	c := rep.Cycles[0]
	if len(c.Edges) < 2 && c.Edges[0].From != c.Edges[0].To {
		t.Fatalf("degenerate witness cycle: %s", c.String())
	}
	for i := 1; i < len(c.Edges); i++ {
		if c.Edges[i].From != c.Edges[i-1].To {
			t.Fatalf("witness cycle does not chain: %s", c.String())
		}
	}
	if c.Edges[len(c.Edges)-1].To != c.Edges[0].From {
		t.Fatalf("witness cycle does not close: %s", c.String())
	}
	t.Logf("witness: %s", c.String())
}

const mutantSeed = 44

// TestCheckerCleanWithoutMutation is the control: the exact workload and
// seed the mutants run is serializable when the protocol is intact.
func TestCheckerCleanWithoutMutation(t *testing.T) {
	rep := mutantRun(t, mutantSeed)
	if !rep.Ok() {
		t.Fatalf("unmutated run not clean:\n%s", rep.String())
	}
	if rep.Txns == 0 || rep.Edges == 0 {
		t.Fatalf("control run vacuous: %s", rep.String())
	}
}

// TestCheckerCatchesSkipValidation mutates the coordinator to commit
// without re-checking read-set versions; stale reads must surface as a
// dependency cycle.
func TestCheckerCatchesSkipValidation(t *testing.T) {
	mutSkipValidation = true
	defer func() { mutSkipValidation = false }()
	requireWitnessCycle(t, mutantRun(t, mutantSeed))
}

// TestCheckerCatchesUnlockBeforeLog mutates the coordinator to release all
// locks on entering the log phase, before the writes are durable or
// applied: the classic lost update, visible as mutual ww edges.
func TestCheckerCatchesUnlockBeforeLog(t *testing.T) {
	mutUnlockBeforeLog = true
	defer func() { mutUnlockBeforeLog = false }()
	requireWitnessCycle(t, mutantRun(t, mutantSeed))
}

// TestCheckerCatchesStaleIndexRead mutates commit to skip the NIC-index
// update, leaving cached entries serving pre-commit versions to later
// reads and validations.
func TestCheckerCatchesStaleIndexRead(t *testing.T) {
	mutStaleIndexRead = true
	defer func() { mutStaleIndexRead = false }()
	requireWitnessCycle(t, mutantRun(t, mutantSeed))
}
