package core

import (
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"

	"xenic/internal/check"
	"xenic/internal/fault"
	"xenic/internal/sim"
	"xenic/internal/txnmodel"
)

// mutGen issues read-modify-write transactions with two plain (unlocked)
// read keys next to one update key: the shape whose correctness hangs on
// validation, unlike kvGen's update transactions whose whole read set is
// lock-protected from the first EXECUTE round.
type mutGen struct{ kvGen }

func (g *mutGen) Next(node, thread int, rng *rand.Rand) *txnmodel.TxnDesc {
	seen := map[uint64]bool{}
	pick := func() uint64 {
		for {
			k := uint64(rng.Intn(g.keys))
			if !seen[k] {
				seen[k] = true
				return k
			}
		}
	}
	st := make([]byte, 2)
	binary.LittleEndian.PutUint16(st, 1)
	return &txnmodel.TxnDesc{
		NICExec:    g.nicExec,
		ReadKeys:   []uint64{pick(), pick()},
		UpdateKeys: []uint64{pick()},
		FnID:       fnIncr,
		State:      st,
	}
}

// mutantRun drives the contended read-modify-write workload with a history
// attached and returns the checker's report. The caller sets one of the
// mutation knobs (mutation.go) before calling.
func mutantRun(t *testing.T, seed int64) *check.Report {
	t.Helper()
	g := &mutGen{kvGen{keys: 60, nicExec: true}}
	cfg := testConfig(4, AllFeatures())
	cfg.Seed = seed
	cl, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	h := check.NewHistory()
	cl.SetHistory(h)
	cl.Start()
	cl.Run(4 * sim.Millisecond)
	if !cl.Drain(500 * sim.Millisecond) {
		t.Fatal("mutant cluster did not drain")
	}
	return h.Check()
}

// requireWitnessCycle asserts the checker produced at least one concrete,
// well-formed witness cycle — the proof the checker is not vacuously green.
func requireWitnessCycle(t *testing.T, rep *check.Report) {
	t.Helper()
	if rep.Ok() {
		t.Fatalf("mutant produced a clean report: %s", rep.String())
	}
	if len(rep.Cycles) == 0 {
		t.Fatalf("mutant detected only anomalies, no witness cycle:\n%s", rep.String())
	}
	c := rep.Cycles[0]
	if len(c.Edges) < 2 && c.Edges[0].From != c.Edges[0].To {
		t.Fatalf("degenerate witness cycle: %s", c.String())
	}
	for i := 1; i < len(c.Edges); i++ {
		if c.Edges[i].From != c.Edges[i-1].To {
			t.Fatalf("witness cycle does not chain: %s", c.String())
		}
	}
	if c.Edges[len(c.Edges)-1].To != c.Edges[0].From {
		t.Fatalf("witness cycle does not close: %s", c.String())
	}
	t.Logf("witness: %s", c.String())
}

const mutantSeed = 44

// TestCheckerCleanWithoutMutation is the control: the exact workload and
// seed the mutants run is serializable when the protocol is intact.
func TestCheckerCleanWithoutMutation(t *testing.T) {
	rep := mutantRun(t, mutantSeed)
	if !rep.Ok() {
		t.Fatalf("unmutated run not clean:\n%s", rep.String())
	}
	if rep.Txns == 0 || rep.Edges == 0 {
		t.Fatalf("control run vacuous: %s", rep.String())
	}
}

// TestCheckerCatchesSkipValidation mutates the coordinator to commit
// without re-checking read-set versions; stale reads must surface as a
// dependency cycle.
func TestCheckerCatchesSkipValidation(t *testing.T) {
	mutSkipValidation = true
	defer func() { mutSkipValidation = false }()
	requireWitnessCycle(t, mutantRun(t, mutantSeed))
}

// TestCheckerCatchesUnlockBeforeLog mutates the coordinator to release all
// locks on entering the log phase, before the writes are durable or
// applied: the classic lost update, visible as mutual ww edges.
func TestCheckerCatchesUnlockBeforeLog(t *testing.T) {
	mutUnlockBeforeLog = true
	defer func() { mutUnlockBeforeLog = false }()
	requireWitnessCycle(t, mutantRun(t, mutantSeed))
}

// TestCheckerCatchesStaleIndexRead mutates commit to skip the NIC-index
// update, leaving cached entries serving pre-commit versions to later
// reads and validations.
func TestCheckerCatchesStaleIndexRead(t *testing.T) {
	mutStaleIndexRead = true
	defer func() { mutStaleIndexRead = false }()
	requireWitnessCycle(t, mutantRun(t, mutantSeed))
}

// snapGen drives the SI-mutant scenario: single-key update transactions (so
// a stalled commit gridlocks only its own key while every other chain keeps
// advancing) mixed with multi-key read-only snapshot transactions.
type snapGen struct{ kvGen }

func (g *snapGen) Next(node, thread int, rng *rand.Rand) *txnmodel.TxnDesc {
	d := &txnmodel.TxnDesc{NICExec: true}
	if rng.Float64() < g.readFrac {
		seen := map[uint64]bool{}
		for len(d.ReadKeys) < 3 {
			k := uint64(rng.Intn(g.keys))
			if !seen[k] {
				seen[k] = true
				d.ReadKeys = append(d.ReadKeys, k)
			}
		}
		return d
	}
	d.UpdateKeys = []uint64{uint64(rng.Intn(g.keys))}
	d.FnID = fnIncr
	st := make([]byte, 2)
	binary.LittleEndian.PutUint16(st, 1)
	d.State = st
	return d
}

// snapMutantRun drives a hot-key single-key-update firehose mixed with
// multi-key read-only transactions over the MVCC snapshot path, with the
// shortest chain depth (so two installs suffice to GC a chain past an open
// snapshot) and staggered NIC core stalls. A stall delays the snapshot reads
// queued at that core while commits flowing through the node's other cores
// keep installing versions ahead of the reads' timestamps: exactly the
// chain-GC race the SI mutants corrupt. The intact protocol aborts such
// reads (StatusAbortSnapshot) and retries them at a fresher timestamp, so
// the control run stays clean.
func snapMutantRun(t *testing.T, seed int64) *check.Report {
	t.Helper()
	g := &snapGen{kvGen{keys: 8, readFrac: 0.25}}
	cfg := testConfig(4, AllFeatures())
	cfg.Seed = seed
	cfg.MVCC = true
	cfg.MVCCKeep = 1
	cfg.Outstanding = 8
	var stalls []fault.CoreStall
	for i := 0; i < 12; i++ {
		stalls = append(stalls, fault.CoreStall{
			Node: i % 4, Core: (i / 4) % 4,
			At:  sim.Time(i+1) * 700 * sim.Microsecond,
			Dur: 200 * sim.Microsecond,
		})
	}
	cfg.Faults = &fault.Plan{CoreStalls: stalls}
	cl, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	h := check.NewHistory()
	cl.SetHistory(h)
	cl.Start()
	cl.Run(10 * sim.Millisecond)
	if !cl.Drain(500 * sim.Millisecond) {
		t.Fatal("snapshot mutant cluster did not drain")
	}
	return h.Check()
}

// requireSIViolation asserts the checker flagged at least one concrete
// snapshot-visibility violation (naming a transaction, key, and the
// version it should have seen) — the witness the SI pass owes us.
func requireSIViolation(t *testing.T, rep *check.Report) {
	t.Helper()
	if rep.Ok() {
		t.Fatalf("mutant produced a clean report: %s", rep.String())
	}
	for _, a := range rep.Anomalies {
		if strings.HasPrefix(a, "SI violation:") {
			t.Logf("witness: %s", a)
			return
		}
	}
	t.Fatalf("mutant flagged no SI violation:\n%s", rep.String())
}

// TestSnapshotCheckerCleanWithoutMutation is the control: the exact
// workload and seed the SI mutants run is clean when the snapshot protocol
// is intact, and actually exercised the snapshot path (non-vacuous).
func TestSnapshotCheckerCleanWithoutMutation(t *testing.T) {
	rep := snapMutantRun(t, mutantSeed)
	if !rep.Ok() {
		t.Fatalf("unmutated snapshot run not clean:\n%s", rep.String())
	}
	if rep.Txns == 0 || rep.Edges == 0 {
		t.Fatalf("control run vacuous: %s", rep.String())
	}
}

// TestCheckerCatchesSnapshotTSAfterRead mutates the snapshot servers to
// re-pick the timestamp as the fan-out proceeds instead of honoring the
// coordinator's choice: commits landing between two shards' reads fracture
// the snapshot, and the SI visibility pass must name the torn read.
func TestCheckerCatchesSnapshotTSAfterRead(t *testing.T) {
	mutSnapshotTSAfterRead = true
	defer func() { mutSnapshotTSAfterRead = false }()
	requireSIViolation(t, snapMutantRun(t, mutantSeed))
}

// TestCheckerCatchesGCIgnoringSnapshots mutates chain GC to ignore open
// snapshots when computing the low-water mark (and chain-miss reads to
// serve the oldest retained version instead of aborting): a long snapshot
// read racing committing updaters observes a version newer than its
// timestamp.
func TestCheckerCatchesGCIgnoringSnapshots(t *testing.T) {
	mutGCIgnoreSnapshots = true
	defer func() { mutGCIgnoreSnapshots = false }()
	requireSIViolation(t, snapMutantRun(t, mutantSeed))
}
