package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"xenic/internal/metrics"
	"xenic/internal/sim"
	"xenic/internal/trace"
)

// tracedRun runs the high-contention counter workload with a tracer and a
// stats registry attached and returns the serialized trace plus the
// registry snapshot. Hot keys guarantee both commits and aborts appear.
func tracedRun(t *testing.T) ([]byte, map[string]any) {
	t.Helper()
	g := &kvGen{keys: 12, keysPer: 2, readFrac: 0, nicExec: true}
	cl, err := New(testConfig(4, AllFeatures()), g)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New()
	cl.SetTracer(tr)
	reg := metrics.NewRegistry()
	cl.RegisterMetrics(reg)
	cl.Start()
	cl.Run(3 * sim.Millisecond)
	if !cl.Drain(500 * sim.Millisecond) {
		t.Fatal("cluster did not quiesce")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), reg.Snapshot()
}

type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   *float64       `json:"ts"`
	Pid  int            `json:"pid"`
	ID   string         `json:"id"`
	Args map[string]any `json:"args"`
}

func TestClusterTraceWellFormed(t *testing.T) {
	raw, _ := tracedRun(t)
	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}

	last := -1.0
	phases := map[string]int{}
	spans := map[string]int{} // open txn spans by id
	var commits, aborts, frames, locks int
	for i, e := range doc.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		// Engine callbacks run in time order, so the whole file must be
		// globally non-decreasing — the property Perfetto relies on.
		if e.TS == nil {
			t.Fatalf("event %d (%s): missing ts", i, e.Name)
		}
		if *e.TS < last {
			t.Fatalf("event %d (%s): ts %v < previous %v — trace not monotonic", i, e.Name, *e.TS, last)
		}
		last = *e.TS
		switch {
		case e.Cat == "phase" && e.Ph == "b":
			phases[e.Name]++
		case e.Cat == "txn" && e.Name == "txn" && e.Ph == "b":
			spans[e.ID]++
		case e.Cat == "txn" && e.Name == "txn" && e.Ph == "e":
			spans[e.ID]--
			st, _ := e.Args["status"].(string)
			if st == "ok" {
				commits++
			}
		case e.Cat == "txn" && e.Name == "abort":
			aborts++
			if _, ok := e.Args["reason"].(string); !ok {
				t.Fatalf("abort instant without reason: %+v", e)
			}
		case e.Cat == "net":
			frames++
		case e.Cat == "lock":
			locks++
		}
	}
	for _, name := range []string{"execute", "validate", "commit"} {
		if phases[name] == 0 {
			t.Errorf("no %q phase spans in trace", name)
		}
	}
	if commits == 0 {
		t.Error("no committed transaction spans")
	}
	if aborts == 0 {
		t.Error("no abort instants despite hot-key contention")
	}
	if frames == 0 || locks == 0 {
		t.Errorf("missing hop/lock events: frames=%d locks=%d", frames, locks)
	}
	// After drain every transaction span must be balanced.
	for id, open := range spans {
		if open != 0 {
			t.Errorf("txn span %s left %+d unbalanced begin/end events", id, open)
		}
	}
}

func TestClusterTraceDeterministic(t *testing.T) {
	a, _ := tracedRun(t)
	b, _ := tracedRun(t)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different trace bytes")
	}
}

func TestClusterStatsSnapshot(t *testing.T) {
	_, snap := tracedRun(t)
	for _, key := range []string{
		"cluster.txn",
		"cluster.aborts_by_reason",
		"cluster.latency",
		"cluster.phase.execute",
		"node0.txn",
		"node0.latency",
		"node0.phase.commit",
		"node0.nicindex",
		"node0.nic.frames",
		"node0.nic.batch_msgs_per_frame",
		"node0.nic.pcie",
	} {
		if _, ok := snap[key]; !ok {
			t.Errorf("snapshot missing %q", key)
		}
	}
	txn := snap["cluster.txn"].(map[string]any)
	if txn["committed"].(int64) == 0 {
		t.Error("no committed transactions in stats")
	}
	if txn["aborts"].(int64) == 0 {
		t.Error("no aborts in stats despite contention")
	}
	reasons := snap["cluster.aborts_by_reason"].(map[string]int64)
	if len(reasons) == 0 {
		t.Error("abort reason breakdown empty")
	}
	var total int64
	for _, v := range reasons {
		total += v
	}
	if total != txn["aborts"].(int64) {
		t.Errorf("abort reasons sum %d != aborts %d", total, txn["aborts"])
	}
	frames := snap["node0.nic.frames"].(map[string]any)
	if frames["tx_frames"].(int64) == 0 {
		t.Error("NIC transmitted no frames")
	}
	pcie := snap["node0.nic.pcie"].(map[string]any)
	if pcie["bytes"].(int64) == 0 {
		t.Error("no PCIe bytes counted")
	}
	// The snapshot must render as one valid JSON document.
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not JSON-marshalable: %v", err)
	}
}
