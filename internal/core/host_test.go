package core

import (
	"testing"

	"xenic/internal/sim"
)

// TestSplitRetryQueue covers the appIdle retry-drain helper: expired
// entries come back ready, pending ones are kept, and order is preserved
// within each group.
func TestSplitRetryQueue(t *testing.T) {
	mk := func(id uint64, nb sim.Time) *appTxn { return &appTxn{id: id, notBefore: nb} }
	q := []*appTxn{
		mk(1, 100), mk(2, 500), mk(3, 200), mk(4, 900), mk(5, 200),
	}
	ready, keep := splitRetryQueue(q, 200)
	ids := func(xs []*appTxn) []uint64 {
		var out []uint64
		for _, tx := range xs {
			out = append(out, tx.id)
		}
		return out
	}
	if got := ids(ready); len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("ready = %v, want [1 3 5]", got)
	}
	if got := ids(keep); len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("keep = %v, want [2 4]", got)
	}

	// Boundary: notBefore == now counts as expired.
	ready, keep = splitRetryQueue([]*appTxn{mk(7, 300)}, 300)
	if len(ready) != 1 || len(keep) != 0 {
		t.Fatalf("boundary split: ready=%d keep=%d", len(ready), len(keep))
	}

	// Empty and all-pending queues.
	ready, keep = splitRetryQueue(nil, 100)
	if len(ready) != 0 || len(keep) != 0 {
		t.Fatal("nil queue split non-empty")
	}
	ready, keep = splitRetryQueue([]*appTxn{mk(8, 400)}, 100)
	if len(ready) != 0 || len(keep) != 1 {
		t.Fatalf("all-pending split: ready=%d keep=%d", len(ready), len(keep))
	}
}

// TestNextRetryWake covers the wake-up scheduler helper: the earliest
// notBefore wins regardless of queue position, and an empty queue schedules
// nothing.
func TestNextRetryWake(t *testing.T) {
	if _, ok := nextRetryWake(nil); ok {
		t.Fatal("empty queue reported a wake time")
	}
	q := []*appTxn{{notBefore: 700}, {notBefore: 300}, {notBefore: 900}}
	at, ok := nextRetryWake(q)
	if !ok || at != 300 {
		t.Fatalf("wake = %v, %v; want 300, true", at, ok)
	}
	// Single entry.
	at, ok = nextRetryWake(q[:1])
	if !ok || at != 700 {
		t.Fatalf("wake = %v, %v; want 700, true", at, ok)
	}
}
