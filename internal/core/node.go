package core

import (
	"fmt"

	"xenic/internal/hostrt"
	"xenic/internal/metrics"
	"xenic/internal/nicrt"
	"xenic/internal/sim"
	"xenic/internal/store/nicindex"
	"xenic/internal/txnmodel"
	"xenic/internal/wire"
)

// txnID packs (node, thread, sequence) so ids are globally unique and the
// host router can find the owning application thread.
func txnID(node, thread int, seq uint32) uint64 {
	return uint64(node)<<40 | uint64(thread)<<32 | uint64(seq)
}

func txnThread(id uint64) int { return int(id>>32) & 0xff }
func txnNode(id uint64) int   { return int(id >> 40) }

// Stats aggregates one node's transaction outcomes.
type Stats struct {
	Committed int64 // committed transactions
	Measured  int64 // committed transactions the workload counts (e.g. new orders)
	Failed    int64 // transactions abandoned after MaxRetries
	Aborts    int64 // abort events (each triggers a retry until the cap)
	// UpdateKeysCommitted counts update keys across committed transactions;
	// correctness tests compare it against observable state (e.g. counter
	// sums) to detect lost or duplicated updates.
	UpdateKeysCommitted int64
	Latency             *metrics.Histogram
	// AbortReasons breaks Aborts down by wire.Status.
	AbortReasons [wire.NumStatuses]int64
	// PhaseLat records simulated time spent in each coordinator phase.
	PhaseLat [numPhases]*metrics.Histogram
	// Timeouts counts coordinator watchdog expirations by phase (fault runs).
	Timeouts [numPhases]int64
	// StaleDrops counts NIC messages discarded because their source was
	// evicted from the membership view or because their frame carried a
	// pre-(re)join epoch stamp (fault runs).
	StaleDrops int64
	// RecoveryRefreshes counts in-flight recovery votes restarted because a
	// view change shrank or reshaped the surviving replica set.
	RecoveryRefreshes int64

	// Read-only transaction breakdown (populated whether or not MVCC is on,
	// but only aggregated into results when non-zero so MVCC-off output is
	// unchanged).
	ROCommitted int64 // committed read-only transactions
	ROAborts    int64 // abort events of read-only transactions
	ROLatency   *metrics.Histogram
	// Snapshot-path counters (MVCC, DESIGN.md §12).
	SnapCommitted int64 // read-only commits served by the lock-free snapshot path
	SnapInline    int64 // snapshot keys resolved from the NIC version cache
	SnapWalks     int64 // snapshot keys resolved by a DMA chain walk
}

// primaryShard is one shard this node currently serves as primary: its data
// replica and the SmartNIC index over it. Nodes start with one (their own
// shard) and may adopt more through recovery promotion (§4.2.1). An
// adopted shard is gated (!ready) until its log scan completes.
type primaryShard struct {
	data  *ShardData
	index *nicindex.Index
	ready bool
	// mvFloor fences MVCC snapshot reads after a promotion: the cluster
	// timestamp when this node adopted the shard. A snapshot read below it
	// was picked against the pre-failure primary and aborts (retrying at a
	// fresher timestamp once the fence episode ends).
	mvFloor uint64
}

// Node is one Xenic server: host threads, the on-path SmartNIC, the
// co-designed store, and the host-memory log.
type Node struct {
	cl   *Cluster
	id   int
	host *hostrt.Host
	nic  *nicrt.NIC

	prims   map[int]*primaryShard
	backups map[int]*ShardData
	log     *hostLog
	pins    map[uint64][]uint64 // commit-record seq -> (shard, pinned keys)
	pinIdx  map[uint64]*nicindex.Index

	ctxns       map[uint64]*ctxn    // coordinator-side NIC transaction state
	remoteLocks map[uint64][]uint64 // shipped txns' lock sets held here as remote primary
	app         []*appThread

	recov map[txnShard]*recovering // in-flight recovery decisions
	// pendingDecide holds promoted-shard records whose (alive) coordinator
	// has yet to announce the outcome; their write keys stay locked.
	pendingDecide map[txnShard][]uint64

	alive bool // false after failure injection
	// viewAlive mirrors the latest membership view's liveness on fault runs
	// (nil otherwise); nicHandler drops messages from evicted nodes so
	// delayed frames cannot re-acquire state that recovery already swept.
	viewAlive []bool
	// joined mirrors the latest view's JoinedEpoch on fault runs: the epoch
	// of each node's most recent (re)join, 0 for nodes alive since boot.
	// nicHandler fences frames stamped before either endpoint's join, so a
	// restarted node's old incarnation cannot act on the new one.
	joined []int
	// rejoin is non-nil while this node is restarting: booting, pulling
	// state, or awaiting admission (see rejoin.go).
	rejoin *rejoinState
	// fwd holds per-shard state-transfer sessions this node serves as
	// primary: snapshot chunks plus live commit forwarding to the rejoiner.
	fwd   map[int]*xferSession
	stats Stats
}

// faulty reports whether this cluster runs with fault injection; hardening
// paths (watchdogs, duplicate suppression, dead-peer gating) gate on it so
// fault-free runs are untouched.
func (n *Node) faulty() bool { return n.cl.cfg.Faults != nil }

// ID returns the node index.
func (n *Node) ID() int { return n.id }

// Alive reports whether the node is up — false between an injected crash
// and its restart.
func (n *Node) Alive() bool { return n.alive }

// Stats returns a pointer to the node's counters (live).
func (n *Node) Stats() *Stats { return &n.stats }

// NIC returns the node's SmartNIC.
func (n *Node) NIC() *nicrt.NIC { return n.nic }

// Host returns the node's host runtime.
func (n *Node) Host() *hostrt.Host { return n.host }

// Index returns the SmartNIC caching index over the node's own shard.
func (n *Node) Index() *nicindex.Index { return n.prims[n.id].index }

// Primary returns the node's replica of its own shard.
func (n *Node) Primary() *ShardData { return n.prims[n.id].data }

// PrimaryOf returns the node's replica of shard s if it currently serves
// it as primary (its own shard, or an adopted one).
func (n *Node) PrimaryOf(s int) (*ShardData, bool) {
	p, ok := n.prims[s]
	if !ok {
		return nil, false
	}
	return p.data, true
}

// Backup returns this node's replica of shard s, or nil.
func (n *Node) Backup(s int) *ShardData { return n.backups[s] }

// prim returns the serving state for shard s, or nil.
func (n *Node) prim(s int) *primaryShard { return n.prims[s] }

// place is the cluster key placement.
func (n *Node) place() txnmodel.Placement { return n.cl.place }

// nicHandler dispatches protocol messages arriving at NIC cores.
func (n *Node) nicHandler(c *nicrt.Core, src int, m wire.Msg) {
	if !n.alive {
		return // crashed node drops everything
	}
	if _, ok := m.(*wire.StateForward); ok && src != n.id {
		// Forward accounting happens before any fence: the sender counted the
		// forward in flight and the arrival must balance it even if dropped.
		if n.cl.fwdInFlight[n.id] > 0 {
			n.cl.fwdInFlight[n.id]--
		}
	}
	if n.rejoin != nil && !n.rejoin.viewSeen {
		// Booting after a restart: until the join view arrives this node has
		// no epoch to speak in and drops all traffic.
		n.stats.StaleDrops++
		n.dbgMsg(src, m, "DROP boot-fence")
		return
	}
	if n.viewAlive != nil && src != n.id && !n.viewAlive[src] {
		// Delayed frame from a node the view evicted: recovery already swept
		// its state; processing it now would strand locks or resurrect
		// transactions the survivors decided.
		n.stats.StaleDrops++
		n.dbgMsg(src, m, "DROP evicted-src-fence")
		return
	}
	if n.joined != nil && src != n.id {
		// Epoch fence: frames stamped before either endpoint's latest
		// (re)join belong to a previous incarnation — a healed evictee must
		// not serve stale reads or acquire locks with them.
		if e := c.RxEpoch(); e < n.joined[src] || e < n.joined[n.id] {
			n.stats.StaleDrops++
			n.dbgMsg(src, m, "DROP epoch-fence")
			return
		}
	}
	n.dbgMsg(src, m, "recv")
	switch m := m.(type) {
	// Coordinator side.
	case *wire.TxnRequest:
		n.coordStart(c, m)
	case *wire.WriteSet:
		n.coordWriteSet(c, m)
	case *wire.ExecuteResp:
		n.coordExecuteResp(c, m)
	case *wire.ValidateResp:
		n.coordValidateResp(c, m)
	case *wire.LogResp:
		n.coordLogResp(c, m)
	case *wire.CommitResp:
		n.coordCommitResp(c, m)
	case *wire.ShipResult:
		n.coordShipResult(c, m)
	case *wire.LogApplyAck:
		n.handleLogAck(c, m)
	// Server side.
	case *wire.Execute:
		n.handleExecute(c, src, m)
	case *wire.Validate:
		n.handleValidate(c, src, m)
	case *wire.Log:
		n.handleLog(c, src, m)
	case *wire.Commit:
		n.handleCommit(c, src, m)
	case *wire.Abort:
		n.handleAbort(c, m)
	case *wire.ShipExec:
		n.handleShipExec(c, src, m)
	// Replication bookkeeping / recovery.
	case *wire.LogCommit:
		n.handleLogCommit(c, m)
	case *wire.RecoveryQuery:
		n.handleRecoveryQuery(c, src, m)
	case *wire.RecoveryResp:
		n.handleRecoveryResp(c, m)
	case *wire.RecoveryDecide:
		n.handleRecoveryDecide(c, m)
	// MVCC snapshot reads.
	case *wire.SnapshotRead:
		n.handleSnapshotRead(c, src, m)
	case *wire.SnapshotResp:
		n.coordSnapResp(c, m)
	// State transfer (rejoin after restart).
	case *wire.StatePull:
		n.handleStatePull(c, src, m)
	case *wire.StateChunk:
		n.handleStateChunk(c, src, m)
	case *wire.StateForward:
		n.handleStateForward(c, m)
	default:
		panic(fmt.Sprintf("core: node %d: unexpected message %T", n.id, m))
	}
}

// debugTxn enables message tracing for one transaction id; ^0 traces every
// fence drop instead (tests only).
var debugTxn uint64

// dbgMsg traces a protocol message arriving for the traced transaction, or —
// in trace-all mode — any fence drop.
func (n *Node) dbgMsg(src int, m wire.Msg, what string) {
	if debugTxn == 0 {
		return
	}
	if debugTxn != ^uint64(0) {
		if g, ok := m.(interface{ GetTxnID() uint64 }); !ok || g.GetTxnID() != debugTxn {
			return
		}
	} else if what == "recv" {
		return // trace-all mode: drops only
	}
	fmt.Printf("DBG t=%v node=%d src=%d msg=%v %s\n", n.cl.eng.Now(), n.id, src, m.Type(), what)
}

// dbgEvt traces a lifecycle event (phase change, abort, pending decision) of
// the traced transaction.
func (n *Node) dbgEvt(txn uint64, format string, args ...any) {
	if debugTxn == 0 || txn != debugTxn {
		return
	}
	fmt.Printf("DBG t=%v node=%d %s\n", n.cl.eng.Now(), n.id, fmt.Sprintf(format, args...))
}

// sendOrLoop sends m to node dst, or re-dispatches locally when dst is this
// node (e.g. a shipped transaction's Log whose RespondTo is a backup that
// is also the coordinator).
func (n *Node) sendOrLoop(c *nicrt.Core, dst int, m wire.Msg) {
	if dst == n.id {
		c.Charge(n.cl.cfg.Params.NICMsgHandle)
		n.nicHandler(c, n.id, m)
		return
	}
	c.Send(dst, m)
}

// handleLogAck unpins the cache entries of an applied commit record.
func (n *Node) handleLogAck(c *nicrt.Core, m *wire.LogApplyAck) {
	keys, ok := n.pins[m.Seq]
	if !ok {
		return // backup record or already processed
	}
	idx := n.pinIdx[m.Seq]
	delete(n.pins, m.Seq)
	delete(n.pinIdx, m.Seq)
	c.Charge(n.cl.cfg.Params.NICIndexOp)
	for _, k := range keys {
		idx.Unpin(k)
	}
}

// handleLogCommit marks a backup record decided so host workers apply it.
// If this node was promoted to primary for the shard while the decision was
// in flight, the record's recovery locks release through a full commit.
func (n *Node) handleLogCommit(c *nicrt.Core, m *wire.LogCommit) {
	c.Charge(n.cl.cfg.Params.NICIndexOp)
	shard := int(m.Shard)
	ts := txnShard{txn: m.TxnID, shard: shard}
	if keys, ok := n.pendingDecide[ts]; ok {
		delete(n.pendingDecide, ts)
		writes, has := n.log.has(m.TxnID, shard)
		n.log.markCommitted(m.TxnID, shard, m.CTS)
		if has {
			if m.CTS != 0 {
				// The promotion drain bulk-discharged this shard; the commit
				// now resolving is not host-applied here yet, so the snapshot
				// watermark must wait for it again (the snapshot fence is up
				// throughout, so no read observes the rollback).
				n.cl.mv.hold(m.CTS, shard)
			}
			n.commitShard(c, shard, m.TxnID, writes, keys, m.CTS, func() {})
		}
		n.wakeWorkers()
		return
	}
	n.log.markCommitted(m.TxnID, shard, m.CTS)
	n.wakeWorkers()
}

// chargeIndexOps charges k NIC index operations to the core.
func (n *Node) chargeIndexOps(c *nicrt.Core, k int) {
	c.Charge(sim.Time(k) * n.cl.cfg.Params.NICIndexOp)
}
