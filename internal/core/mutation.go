package core

import (
	"xenic/internal/nicrt"
	"xenic/internal/wire"
)

// Deliberately broken protocol variants for mutation-testing the
// serializability checker (internal/check): each flips one protocol rule
// whose violation the checker must catch with a witness cycle. Like
// debugTxn, these are package-level knobs toggled only from same-package
// tests; every production path sees them false.
var (
	// mutSkipValidation commits without re-checking read-set versions
	// (§4.2 step 4 removed): concurrent writers between read and commit go
	// unnoticed.
	mutSkipValidation bool
	// mutUnlockBeforeLog releases every lock when entering the log phase,
	// before the write set is durable or applied: a concurrent transaction
	// can read the pre-commit version, validate successfully, and install
	// the same successor version (a classic lost update).
	mutUnlockBeforeLog bool
	// mutStaleIndexRead skips the NIC-index update on commit, leaving
	// cached entries serving pre-commit versions and values to later reads
	// and validations.
	mutStaleIndexRead bool
	// mutSnapshotTSAfterRead re-picks the snapshot timestamp per shard as
	// the read fan-out proceeds instead of fixing it once up front: a
	// commit landing between two shard reads fractures the snapshot (the
	// SI checker must flag the torn read).
	mutSnapshotTSAfterRead bool
	// mutGCIgnoreSnapshots makes chain GC ignore open snapshots when
	// computing the low-water mark AND makes a chain-miss read serve the
	// oldest retained version instead of aborting: a long snapshot read
	// racing committing updaters observes a version newer than its
	// timestamp (the SI visibility check must flag it).
	mutGCIgnoreSnapshots bool
)

// mutReleaseLocks force-releases every lock t holds (the unlock-before-log
// mutant): local locks through the index, remote ones via ABORT messages
// (whose handler uses the tolerant UnlockIf, as does the later COMMIT).
// t.locked is cleared so the commit fan-out does not unlock again.
func (n *Node) mutReleaseLocks(c *nicrt.Core, t *ctxn) {
	var shards []int
	for s := range t.locked {
		shards = append(shards, s)
	}
	sortInts(shards)
	for _, s := range shards {
		keys := t.locked[s]
		if len(keys) == 0 {
			continue
		}
		dst := n.primaryNode(s)
		if dst == n.id {
			idx := n.prim(s).index
			for _, k := range keys {
				idx.Unlock(k, t.id)
			}
			continue
		}
		c.Send(dst, &wire.Abort{
			Header:     wire.Header{TxnID: t.id, Src: uint8(n.id)},
			LockedKeys: keys,
		})
	}
	t.locked = map[int][]uint64{}
}
