package core

// MVCC snapshot reads (DESIGN.md §12). Update transactions are assigned a
// cluster-wide commit timestamp (cts) at their commit point; every replica
// keeps a bounded per-key version chain stamped with these timestamps.
// Read-only transactions read at a snapshot timestamp S = stable, where
// stable is the host-applied watermark: the largest cts such that every
// commit at or below it has been applied to the host store of its write
// shards' current primaries. Reads at S therefore never need locks or
// validation — everything visible at S is immutably in place.
//
// The watermark is tracked with per-cts pending shard sets: assign() seeds
// the set with the transaction's write shards, and each shard is discharged
// when the shard's *current* primary host-applies the commit record
// (workerIdle / the promotion drain). Discharge is idempotent per
// (cts, shard), so a backup promoted after the dead primary already applied
// does not double-count. hold() re-arms a shard when a promoted primary
// discovers an undecided record that later resolves to commit — the
// watermark rolls back below that cts until the apply lands (safe: the
// snapshot fence is up for the whole episode, so no snapshot is in flight
// above the rolled-back watermark).
//
// GC: chains keep at most Keep old versions and drop everything older than
// the newest version at or below lwm = min(stable, open snapshots). A read
// that misses its chain (GC'd past S, or a promotion raced the snapshot)
// aborts with StatusAbortSnapshot and retries at a fresher S — a
// correctness-preserving abort that contention cannot induce.

// mvState is the cluster's MVCC commit-timestamp machinery. It models the
// timestamp oracle co-located with the membership manager; all accesses
// happen at simulated commit/apply instants, so a plain struct suffices.
type mvState struct {
	enabled bool
	keep    int    // bounded chain depth K
	next    uint64 // last assigned commit timestamp
	stable  uint64 // host-applied watermark
	// pending maps an assigned cts to the set of write shards whose current
	// primary has not yet host-applied it, as a bitmask (config.validate
	// caps MVCC clusters at 64 nodes). A bitmask instead of a per-cts map
	// keeps the commit hot path allocation-free.
	pending map[uint64]uint64
	// open holds refcounts of snapshot timestamps currently being read
	// (GC protection for long-running snapshot reads).
	open map[uint64]int
	// ctsOf records every timestamp assignment by transaction id so
	// recovery re-decisions reuse the original cts (modeling the cts
	// riding in surviving log records) and multi-shard recoveries of one
	// transaction agree on a single timestamp.
	ctsOf map[uint64]uint64
	// resume re-arms the snapshot path after a fence episode: snapshots
	// stay disabled until stable catches up past every cts that existed
	// while the fence was up.
	resume uint64
}

func newMVState(enabled bool, keep int) *mvState {
	if keep <= 0 {
		keep = 8
	}
	return &mvState{
		enabled: enabled,
		keep:    keep,
		pending: map[uint64]uint64{},
		open:    map[uint64]int{},
		ctsOf:   map[uint64]uint64{},
	}
}

// assign allocates the next commit timestamp for txn, charging one pending
// apply per write shard in the mask. Idempotent per transaction id.
func (m *mvState) assign(txn uint64, shardMask uint64) uint64 {
	if cts, ok := m.ctsOf[txn]; ok {
		return cts
	}
	m.next++
	cts := m.next
	m.ctsOf[txn] = cts
	m.pending[cts] = shardMask
	return cts
}

// ctsFor returns txn's previously assigned timestamp, or assigns a fresh
// one charged to the given shards (recovery of a pre-commit-point txn).
func (m *mvState) ctsFor(txn uint64, shardMask uint64) uint64 {
	return m.assign(txn, shardMask)
}

// applied discharges shard's pending apply for cts; idempotent.
func (m *mvState) applied(cts uint64, shard int) {
	set, ok := m.pending[cts]
	if !ok {
		return
	}
	set &^= 1 << uint(shard)
	if set == 0 {
		delete(m.pending, cts)
		m.advance()
	} else {
		m.pending[cts] = set
	}
}

// hold re-arms shard's pending apply for cts and rolls the watermark back
// below it: a promoted primary holds a just-decided record it has not yet
// applied. Only called while the snapshot fence is up.
func (m *mvState) hold(cts uint64, shard int) {
	if cts == 0 {
		return
	}
	m.pending[cts] |= 1 << uint(shard)
	if m.stable >= cts {
		m.stable = cts - 1
	}
}

// shardRecovered discharges shard from every pending entry: a promotion
// drain has synchronously applied every decided record, making the new
// primary the authority for the shard. Undecided records are re-held when
// they resolve (hold).
func (m *mvState) shardRecovered(shard int) {
	bit := uint64(1) << uint(shard)
	for cts, set := range m.pending {
		if set&bit != 0 {
			set &^= bit
			if set == 0 {
				delete(m.pending, cts)
			} else {
				m.pending[cts] = set
			}
		}
	}
	m.advance()
}

func (m *mvState) advance() {
	for m.stable < m.next {
		if _, busy := m.pending[m.stable+1]; busy {
			break
		}
		m.stable++
	}
}

// snapOpen registers an in-flight snapshot at S (GC protection).
func (m *mvState) snapOpen(S uint64) { m.open[S]++ }

// snapClose deregisters an in-flight snapshot.
func (m *mvState) snapClose(S uint64) {
	if m.open[S]--; m.open[S] <= 0 {
		delete(m.open, S)
	}
}

// lwm is the GC low-water mark: no chain entry visible at or above it may
// be dropped (bounded depth K excepted). Called once per applied KV, so it
// only walks the open-snapshot map when snapshots are actually in flight.
func (m *mvState) lwm() uint64 {
	low := m.stable
	if !mutGCIgnoreSnapshots && len(m.open) > 0 {
		for s := range m.open {
			if s < low {
				low = s
			}
		}
	}
	return low
}

// snapReady reports whether the lock-free snapshot path may serve new
// read-only transactions, continuously re-arming the resume floor while
// any recovery, promotion, or rejoin activity is in flight.
func (cl *Cluster) snapReady() bool {
	m := cl.mv
	if m == nil || !m.enabled {
		return false
	}
	for _, n := range cl.nodes {
		if !n.alive {
			continue
		}
		if len(n.recov) != 0 || len(n.pendingDecide) != 0 || n.rejoin != nil {
			m.resume = m.next
			return false
		}
		for _, p := range n.prims {
			if !p.ready {
				m.resume = m.next
				return false
			}
		}
	}
	return m.stable >= m.resume
}

// snapTS picks the snapshot timestamp for a new read-only transaction.
func (cl *Cluster) snapTS() uint64 { return cl.mv.stable }
