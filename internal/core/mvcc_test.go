package core

import (
	"encoding/binary"
	"testing"

	"xenic/internal/check"
	"xenic/internal/sim"
)

// mvccConfig is the shared cluster shape for MVCC tests: 4 nodes with the
// snapshot path enabled.
func mvccConfig(nodes int) Config {
	cfg := testConfig(nodes, AllFeatures())
	cfg.MVCC = true
	return cfg
}

// runMVCC drives a workload with MVCC on and a history attached, drains,
// and returns the cluster and history for assertions.
func runMVCC(t *testing.T, g *kvGen, cfg Config, dur sim.Time) (*Cluster, *check.History) {
	t.Helper()
	cl, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	h := check.NewHistory()
	cl.SetHistory(h)
	cl.Start()
	cl.Run(dur)
	if !cl.Drain(500 * sim.Millisecond) {
		t.Fatal("MVCC cluster did not quiesce")
	}
	return cl, h
}

// TestMVCCSnapshotReads: read-only transactions ride the lock-free snapshot
// path (both the distributed fan-out and the host-local variant), the
// counter invariant holds, and the history is serializable with clean SI
// visibility.
func TestMVCCSnapshotReads(t *testing.T) {
	g := &kvGen{keys: 300, keysPer: 3, readFrac: 0.5, localFrac: 0.3, nicExec: true}
	cl, h := runMVCC(t, g, mvccConfig(4), 8*sim.Millisecond)

	var snap, inline, walks, committed int64
	for _, n := range cl.nodes {
		snap += n.stats.SnapCommitted
		inline += n.stats.SnapInline
		walks += n.stats.SnapWalks
		committed += n.stats.Committed
	}
	if snap == 0 {
		t.Fatal("no read-only transaction took the snapshot path")
	}
	if inline == 0 && walks == 0 {
		t.Fatal("snapshot path resolved no keys (neither NIC-inline nor chain walks)")
	}
	var sum uint64
	var updates int64
	for k := 0; k < g.keys; k++ {
		v, _, _ := cl.nodes[cl.place.ShardOf(uint64(k))].Primary().Read(uint64(k))
		sum += binary.LittleEndian.Uint64(v)
	}
	for _, n := range cl.nodes {
		updates += n.stats.UpdateKeysCommitted
	}
	if sum != uint64(updates) {
		t.Fatalf("counter sum %d != committed update keys %d", sum, updates)
	}
	if rep := h.Check(); !rep.Ok() {
		t.Fatalf("history not clean:\n%s", rep.String())
	}
	if err := cl.AuditHistory(); err != nil {
		t.Fatal(err)
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The snapshot records themselves must carry their timestamps so the SI
	// pass was not vacuous.
	snapRecs := 0
	for _, r := range h.Records() {
		if r.Snapshot {
			snapRecs++
			if len(r.Writes) != 0 {
				t.Fatalf("snapshot txn %#x recorded writes", r.ID)
			}
		}
	}
	if snapRecs == 0 {
		t.Fatal("no snapshot records in history")
	}
}

// TestMVCCSnapshotAbortsOnlyCorrectness: snapshot-path aborts can only be
// StatusAbortSnapshot (chain GC / promotion races) — never lock or version
// conflicts. With a fault-free run and default chain depth, read-only
// transactions must see (near-)zero aborts even under extreme contention.
func TestMVCCSnapshotReadOnlyAbortFree(t *testing.T) {
	// 8 hot keys, heavy update traffic: the OCC read-only path would abort
	// constantly on validation; the snapshot path must not.
	g := &kvGen{keys: 8, keysPer: 2, readFrac: 0.5, nicExec: true}
	cl, h := runMVCC(t, g, mvccConfig(4), 8*sim.Millisecond)

	var roAborts, roCommitted int64
	for _, n := range cl.nodes {
		roAborts += n.stats.ROAborts
		roCommitted += n.stats.ROCommitted
	}
	if roCommitted == 0 {
		t.Fatal("no read-only transactions committed")
	}
	if roAborts != 0 {
		t.Fatalf("read-only aborts under fault-free MVCC: %d (of %d committed)", roAborts, roCommitted)
	}
	if rep := h.Check(); !rep.Ok() {
		t.Fatalf("history not clean:\n%s", rep.String())
	}
}

// Captured from the pre-MVCC tree (commit bd075d9) with the exact workload
// and config of TestMVCCOffGolden, then re-captured once when the host-local
// read-only validation gained its lock check (a serializability fix that
// changes the abort schedule with MVCC on or off alike).
const (
	mvccOffGoldenCommitted = 10215
	mvccOffGoldenSum       = 14355
)

// TestMVCCOffGolden pins the MVCC-off behavior of a fixed seed: the values
// below were captured from the pre-MVCC tree, so any drift means the
// feature leaked simulated work (an extra charge, message byte, or event)
// into runs that have it disabled.
func TestMVCCOffGolden(t *testing.T) {
	g := &kvGen{keys: 300, keysPer: 3, readFrac: 0.3, nicExec: true}
	cfg := testConfig(4, AllFeatures())
	if cfg.MVCC {
		t.Fatal("test requires MVCC off")
	}
	cl, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	cl.Run(5 * sim.Millisecond)
	if !cl.Drain(200 * sim.Millisecond) {
		t.Fatal("no quiesce")
	}
	var committed int64
	var snap int64
	for _, n := range cl.nodes {
		committed += n.stats.Committed
		snap += n.stats.SnapCommitted + n.stats.SnapInline + n.stats.SnapWalks
	}
	var sum uint64
	for k := 0; k < g.keys; k++ {
		v, _, _ := cl.nodes[cl.place.ShardOf(uint64(k))].Primary().Read(uint64(k))
		sum += binary.LittleEndian.Uint64(v)
	}
	if snap != 0 {
		t.Fatalf("MVCC-off run touched snapshot machinery (%d)", snap)
	}
	if committed != mvccOffGoldenCommitted || sum != mvccOffGoldenSum {
		t.Fatalf("MVCC-off run drifted from the pre-MVCC seed: committed=%d sum=%d, want %d/%d",
			committed, sum, mvccOffGoldenCommitted, mvccOffGoldenSum)
	}
}

// TestLongSnapshotRacingUpdaters is the recorder-misclassification
// regression: long-running (multi-shard, cross-node) snapshot reads race a
// firehose of committing updaters on a tiny keyspace. The history must
// stay clean — in particular the snapshot transactions' old-version reads
// must not be flagged as stale, their empty write sets must not trip the
// drained-state audits, and reads below the watermark must not look like
// phantoms.
func TestLongSnapshotRacingUpdaters(t *testing.T) {
	g := &kvGen{keys: 12, keysPer: 4, readFrac: 0.3, nicExec: true}
	cfg := mvccConfig(4)
	cfg.Outstanding = 6
	cl, h := runMVCC(t, g, cfg, 10*sim.Millisecond)

	// The interesting interleaving must actually have happened: at least one
	// snapshot transaction observed a version strictly below the key's final
	// (drained) version AND below another committed read of the same key —
	// i.e. it read history, not the head.
	final := map[uint64]uint64{}
	for k := 0; k < g.keys; k++ {
		_, ver, _ := cl.nodes[cl.place.ShardOf(uint64(k))].Primary().Read(uint64(k))
		final[uint64(k)] = ver
	}
	oldReads := 0
	for _, r := range h.Records() {
		if !r.Snapshot {
			continue
		}
		for _, kv := range r.Reads {
			if kv.Version > 0 && kv.Version < final[kv.Key] {
				oldReads++
			}
		}
	}
	if oldReads == 0 {
		t.Fatal("no snapshot read observed an old version; the race never happened")
	}
	if rep := h.Check(); !rep.Ok() {
		t.Fatalf("snapshot reads misclassified:\n%s", rep.String())
	}
	if err := cl.AuditHistory(); err != nil {
		t.Fatalf("drained-state audit rejected snapshot history: %v", err)
	}
}

// TestMVCCChainsBounded: version chains never exceed the configured depth,
// and GC leaves every key readable at the current watermark.
func TestMVCCChainsBounded(t *testing.T) {
	g := &kvGen{keys: 16, keysPer: 2, readFrac: 0.2, nicExec: true}
	cfg := mvccConfig(4)
	cfg.MVCCKeep = 3
	cl, _ := runMVCC(t, g, cfg, 6*sim.Millisecond)
	for _, n := range cl.nodes {
		for s, p := range n.prims {
			for k := 0; k < g.keys; k++ {
				if cl.place.ShardOf(uint64(k)) != s {
					continue
				}
				if l := p.data.ChainLen(uint64(k)); l > cfg.MVCCKeep {
					t.Fatalf("node %d shard %d key %d: chain depth %d > keep %d", n.id, s, k, l, cfg.MVCCKeep)
				}
				if _, _, _, ok := p.data.ReadAt(uint64(k), cl.mv.stable); !ok {
					t.Fatalf("key %d unreadable at the stable watermark after GC", k)
				}
			}
		}
	}
}
