package core

import (
	"xenic/internal/nicrt"
	"xenic/internal/wire"
)

// This file implements the MVCC read-only fast path (DESIGN.md §12): a
// read-only transaction picks a snapshot timestamp S = the host-applied
// watermark and resolves every key at S — NIC version-chain cache hits
// inline, misses by a DMA row-header walk of the host chain — then commits
// without locks, validation, or any log traffic. Aborts happen only when a
// chain was GC'd past S or a promotion fenced the shard
// (StatusAbortSnapshot); contention cannot induce them.

// chainWalkBytes is the DMA payload for walking a host row's version
// chain on a NIC cache miss: the row header plus the chain entry headers
// and one value.
const chainWalkBytes = 64

// snapStart fans out SnapshotRead operations for a read-only transaction,
// one per shard, all at the same snapshot timestamp. Caller has verified
// snapReady().
func (n *Node) snapStart(c *nicrt.Core, t *ctxn) {
	t.snapshot = true
	t.snapTS = n.cl.snapTS()
	n.cl.mv.snapOpen(t.snapTS)
	byShard := map[int][]uint64{}
	var shards []int
	for _, k := range t.desc.ReadKeys {
		s := n.place().ShardOf(k)
		if _, ok := byShard[s]; !ok {
			shards = append(shards, s)
		}
		byShard[s] = append(byShard[s], k)
	}
	sortInts(shards)
	t.pending = len(shards)
	if t.pending == 0 {
		n.snapFinish(c, t)
		return
	}
	for _, s := range shards {
		dst := n.primaryNode(s)
		if dst == n.id {
			n.serveSnapshotRead(c, s, t.snapTS, byShard[s], func(st wire.Status, items []wire.KV) {
				n.snapPart(c, t, st, items)
			})
			continue
		}
		c.Send(dst, &wire.SnapshotRead{
			Header: wire.Header{TxnID: t.id, Src: uint8(n.id)},
			Shard:  uint8(s), TS: t.snapTS, Keys: byShard[s],
		})
	}
}

// coordSnapResp routes a remote SnapshotResp into the transaction.
func (n *Node) coordSnapResp(c *nicrt.Core, m *wire.SnapshotResp) {
	t, ok := n.ctxns[m.TxnID]
	if !ok || !t.snapshot {
		return // straggler: snapshot reads hold no remote state to release
	}
	n.snapPart(c, t, m.Status, m.Items)
}

// snapPart accumulates one shard's snapshot read.
func (n *Node) snapPart(c *nicrt.Core, t *ctxn, st wire.Status, items []wire.KV) {
	if t.dead {
		return
	}
	if st == wire.StatusOK {
		for _, kv := range items {
			t.reads[kv.Key] = kv
		}
	} else if t.failed == wire.StatusOK {
		t.failed = st
	}
	t.pending--
	if t.pending > 0 {
		return
	}
	if t.failed != wire.StatusOK {
		n.abortTxn(c, t)
		return
	}
	n.snapFinish(c, t)
}

// snapFinish commits a snapshot read: no validation, no locks to release,
// no log traffic — the commit point is the completion of the last read.
func (n *Node) snapFinish(c *nicrt.Core, t *ctxn) {
	n.snapClose(t)
	n.stats.SnapCommitted++
	n.recordCommit(t, nil)
	n.finishTxn(c, t, wire.StatusOK)
	n.closeTxn(t, wire.StatusOK)
	delete(n.ctxns, t.id)
}

// snapClose releases the transaction's GC protection refcount exactly once
// (abort paths route here too).
func (n *Node) snapClose(t *ctxn) {
	if t.snapshot && !t.snapClosed {
		t.snapClosed = true
		n.cl.mv.snapClose(t.snapTS)
	}
}

// serveSnapshotRead resolves keys of one of this node's primary shards at
// snapshot timestamp S: lock state is never consulted. Cached multi-version
// entries complete inline; a cache miss DMA-walks the host row's chain. A
// chain GC'd past S, or a shard promoted after S was picked, reports
// StatusAbortSnapshot so the coordinator retries at a fresher timestamp.
func (n *Node) serveSnapshotRead(c *nicrt.Core, shard int, S uint64, keys []uint64,
	done func(st wire.Status, items []wire.KV)) {

	p := n.prim(shard)
	if p == nil || !p.ready || p.mvFloor > S {
		done(wire.StatusAbortSnapshot, nil)
		return
	}
	if mutSnapshotTSAfterRead {
		// Mutant: re-pick the timestamp as the fan-out proceeds instead of
		// honoring the coordinator's choice — commits landing between two
		// shards' reads fracture the snapshot.
		S = n.cl.mv.stable
	}
	if len(keys) == 0 {
		done(wire.StatusOK, nil)
		return
	}
	items := make([]wire.KV, len(keys))
	pending := len(keys)
	failed := wire.StatusOK
	finish := func() {
		pending--
		if pending > 0 {
			return
		}
		if failed != wire.StatusOK {
			done(failed, nil)
			return
		}
		done(wire.StatusOK, items)
	}
	n.chargeIndexOps(c, len(keys))
	for i, k := range keys {
		i, k := i, k
		if !n.place().IsBTree(k) {
			if v, ver, ok := p.index.LookupAt(k, S); ok {
				n.stats.SnapInline++
				items[i] = wire.KV{Key: k, Version: ver, Value: v}
				finish()
				continue
			}
		}
		// NIC chain miss (or a host-resolved B+tree key): walk the host
		// row's version chain via DMA.
		c.DMARead([]int{chainWalkBytes}, func() {
			v, ver, exists, ok := p.data.ReadAt(k, S)
			switch {
			case !ok:
				if failed == wire.StatusOK {
					failed = wire.StatusAbortSnapshot
				}
			case exists:
				n.stats.SnapWalks++
				items[i] = wire.KV{Key: k, Version: ver, Value: v}
			default:
				n.stats.SnapWalks++
				items[i] = wire.KV{Key: k} // Version 0: absent at S
			}
			finish()
		})
	}
}

// handleSnapshotRead serves a remote snapshot read.
func (n *Node) handleSnapshotRead(c *nicrt.Core, src int, m *wire.SnapshotRead) {
	n.serveSnapshotRead(c, int(m.Shard), m.TS, m.Keys, func(st wire.Status, items []wire.KV) {
		c.Send(src, &wire.SnapshotResp{
			Header: wire.Header{TxnID: m.TxnID, Src: uint8(n.id)},
			Shard:  m.Shard, Status: st, Items: items,
		})
	})
}
