package core

import (
	"encoding/binary"
	"testing"

	"xenic/internal/sim"
)

// recoverySetup runs the counter workload, kills a node mid-run, and lets
// the cluster reconfigure and continue.
func recoverySetup(t *testing.T, victim int, runBefore, runAfter sim.Time) (*Cluster, *kvGen) {
	t.Helper()
	g := &kvGen{keys: 600, keysPer: 3, readFrac: 0.3, nicExec: true}
	cfg := testConfig(4, AllFeatures())
	cl, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	cl.Run(runBefore)
	cl.Kill(victim)
	cl.Run(runAfter)
	if !cl.Drain(800 * sim.Millisecond) {
		t.Fatal("cluster did not quiesce after failure")
	}
	return cl, g
}

// aliveSum reads every counter from its current (possibly promoted)
// primary.
func aliveSum(t *testing.T, cl *Cluster, g *kvGen) uint64 {
	t.Helper()
	var sum uint64
	for k := 0; k < g.keys; k++ {
		shard := cl.place.ShardOf(uint64(k))
		pn := cl.nodes[cl.primaryNode(shard)]
		if !pn.alive {
			t.Fatalf("shard %d has no live primary", shard)
		}
		data, ok := pn.PrimaryOf(shard)
		if !ok {
			t.Fatalf("node %d does not serve shard %d", pn.id, shard)
		}
		v, _, found := data.Read(uint64(k))
		if !found {
			t.Fatalf("key %d missing after recovery", k)
		}
		sum += binary.LittleEndian.Uint64(v)
	}
	return sum
}

func TestPrimaryFailover(t *testing.T) {
	victim := 2
	cl, _ := recoverySetup(t, victim, 5*sim.Millisecond, 30*sim.Millisecond)

	// The view promoted node 3 (first backup) for shard 2.
	if got := cl.primaryNode(victim); got != 3 {
		t.Fatalf("shard %d primary is %d, want 3", victim, got)
	}
	p, ok := cl.nodes[3].PrimaryOf(victim)
	if !ok || p == nil {
		t.Fatal("promoted node does not serve the shard")
	}
	if !cl.nodes[3].prim(victim).ready {
		t.Fatal("promoted shard never became ready")
	}

	// Progress continued after the failure: survivors committed
	// transactions in the new configuration (including writes to the
	// recovered shard, since keys are uniform).
	var afterCommits int64
	for _, n := range cl.nodes {
		if n.alive {
			afterCommits += n.stats.Committed
		}
	}
	if afterCommits == 0 {
		t.Fatal("no commits after failure")
	}
}

// TestRecoveryNoLostCommits is the headline durability property: every
// increment whose transaction was counted committed survives the crash —
// the counter total over live primaries is at least the committed count
// (it may exceed it by transactions that reached their commit point just
// as the coordinator died, which recovery must also apply; §4.2.1).
func TestRecoveryNoLostCommits(t *testing.T) {
	cl, g := recoverySetup(t, 1, 5*sim.Millisecond, 30*sim.Millisecond)

	var counted uint64
	for _, n := range cl.nodes {
		counted += uint64(n.stats.UpdateKeysCommitted) // includes the dead node's
	}
	sum := aliveSum(t, cl, g)
	if sum < counted {
		t.Fatalf("counter sum %d < committed increments %d: committed writes lost", sum, counted)
	}
	// The overshoot is bounded by what was in flight at the crash.
	maxInflight := uint64(cl.cfg.AppThreads*cl.cfg.Outstanding) * uint64(g.keysPer)
	if sum > counted+maxInflight {
		t.Fatalf("counter sum %d exceeds committed %d by more than in-flight bound %d",
			sum, counted, maxInflight)
	}
}

func TestRecoveryNoStuckLocks(t *testing.T) {
	cl, _ := recoverySetup(t, 0, 5*sim.Millisecond, 30*sim.Millisecond)
	for _, n := range cl.nodes {
		if !n.alive {
			continue
		}
		for s, p := range n.prims {
			stuck := 0
			p.index.ForEachLocked(func(key, owner uint64) { stuck++ })
			if stuck > 0 {
				t.Fatalf("node %d shard %d has %d locks after drain", n.id, s, stuck)
			}
		}
	}
}

func TestRecoveryReplicasConsistent(t *testing.T) {
	cl, _ := recoverySetup(t, 3, 5*sim.Millisecond, 30*sim.Millisecond)
	if err := cl.ReplicasConsistent(); err != nil {
		t.Fatal(err)
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoveredShardServesWrites(t *testing.T) {
	cl, g := recoverySetup(t, 2, 5*sim.Millisecond, 40*sim.Millisecond)
	// Keys of shard 2 must have received new increments after failover:
	// their versions advance beyond what they had... simply check some key
	// on the recovered shard has version > 1 (written at least once) and
	// that the promoted index serves lookups.
	promoted := cl.nodes[cl.primaryNode(2)]
	data, _ := promoted.PrimaryOf(2)
	written := false
	for k := 2; k < g.keys; k += 4 {
		if _, ver, ok := data.Read(uint64(k)); ok && ver > 1 {
			written = true
			break
		}
	}
	if !written {
		t.Fatal("no key on the recovered shard was ever written")
	}
}

func TestKillBackupOnlyStillConsistent(t *testing.T) {
	// Node 3 is never a primary for shards 0..2's chains... every node is a
	// primary of its own shard, so any kill exercises promotion; this case
	// checks the lighter path too: backups pruned from other shards' views.
	cl, g := recoverySetup(t, 3, 5*sim.Millisecond, 30*sim.Millisecond)
	v := cl.View()
	for s := 0; s < 4; s++ {
		for _, b := range v.BackupsOf[s] {
			if b == 3 {
				t.Fatalf("dead node still a backup of shard %d", s)
			}
		}
	}
	_ = g
}

func TestDoubleFailure(t *testing.T) {
	// Kill two of four nodes (RF=3 leaves one survivor per shard).
	g := &kvGen{keys: 400, keysPer: 2, readFrac: 0.3, nicExec: true}
	cfg := testConfig(4, AllFeatures())
	cl, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	cl.Run(4 * sim.Millisecond)
	cl.Kill(1)
	cl.Run(15 * sim.Millisecond)
	cl.Kill(2)
	cl.Run(25 * sim.Millisecond)
	if !cl.Drain(800 * sim.Millisecond) {
		t.Fatal("no quiesce after double failure")
	}
	// Every shard still has a live primary and all data survives.
	var counted uint64
	for _, n := range cl.nodes {
		counted += uint64(n.stats.UpdateKeysCommitted)
	}
	sum := aliveSum(t, cl, g)
	if sum < counted {
		t.Fatalf("sum %d < committed %d after double failure", sum, counted)
	}
	// No stuck locks anywhere.
	for _, n := range cl.nodes {
		if !n.alive {
			continue
		}
		for s, p := range n.prims {
			stuck := 0
			p.index.ForEachLocked(func(key, owner uint64) { stuck++ })
			if stuck > 0 {
				t.Fatalf("node %d shard %d: %d stuck locks", n.id, s, stuck)
			}
		}
	}
}

// TestRepeatedCrashSameShard crashes a shard's primary, waits just long
// enough for the first backup to be promoted, then crashes the promoted
// primary too while the recovered shard is still draining its replayed log.
// The chain's last replica must take over and the data must stay intact.
func TestRepeatedCrashSameShard(t *testing.T) {
	g := &kvGen{keys: 400, keysPer: 2, readFrac: 0.3, nicExec: true}
	cfg := testConfig(4, AllFeatures())
	cl, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	cl.Run(4 * sim.Millisecond)
	cl.Kill(2)
	// Lease expiry is 2ms; at +4ms node 3 holds shard 2 but may still be
	// replaying and re-serving it.
	cl.Run(4 * sim.Millisecond)
	if got := cl.primaryNode(2); got != 3 {
		t.Fatalf("shard 2 primary is %d after first crash, want 3", got)
	}
	cl.Kill(3)
	cl.Run(25 * sim.Millisecond)
	if !cl.Drain(800 * sim.Millisecond) {
		t.Fatal("no quiesce after repeated crash")
	}
	if got := cl.primaryNode(2); got != 0 {
		t.Fatalf("shard 2 primary is %d after second crash, want 0", got)
	}
	if !cl.nodes[0].prim(2).ready {
		t.Fatal("twice-recovered shard never became ready")
	}
	// Durability across both crashes.
	var counted uint64
	for _, n := range cl.nodes {
		counted += uint64(n.stats.UpdateKeysCommitted)
	}
	sum := aliveSum(t, cl, g)
	if sum < counted {
		t.Fatalf("sum %d < committed %d after repeated crash", sum, counted)
	}
	if err := cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := cl.ReplicasConsistent(); err != nil {
		t.Fatal(err)
	}
	// No stuck locks on the survivors.
	for _, n := range cl.nodes {
		if !n.alive {
			continue
		}
		for s, p := range n.prims {
			stuck := 0
			p.index.ForEachLocked(func(key, owner uint64) { stuck++ })
			if stuck > 0 {
				t.Fatalf("node %d shard %d: %d stuck locks", n.id, s, stuck)
			}
		}
	}
}

func TestDeterministicRecovery(t *testing.T) {
	run := func() uint64 {
		g := &kvGen{keys: 300, keysPer: 2, readFrac: 0.3, nicExec: true}
		cfg := testConfig(4, AllFeatures())
		cl, err := New(cfg, g)
		if err != nil {
			t.Fatal(err)
		}
		cl.Start()
		cl.Run(3 * sim.Millisecond)
		cl.Kill(1)
		cl.Run(20 * sim.Millisecond)
		cl.Drain(500 * sim.Millisecond)
		return aliveSum(t, cl, g)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("recovery nondeterministic: %d vs %d", a, b)
	}
}
