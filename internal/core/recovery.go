package core

import (
	"fmt"
	"slices"

	"xenic/internal/membership"
	"xenic/internal/nicrt"
	"xenic/internal/store/nicindex"
	"xenic/internal/wire"
)

// This file implements Xenic's reconfiguration and recovery (§4.2.1),
// following FaRM's design: lock state lives only in SmartNIC memory and is
// rebuilt on recovery; a failed primary's first surviving backup is
// promoted; the promoted node scans its log for transactions not yet known
// committed and, for each, asks the shard's other surviving replicas —
// a transaction whose record every surviving replica holds reached its
// commit point and is committed, any other is aborted. The shard serves new
// transactions only after every recovering transaction is decided.
//
// Surviving coordinators additionally sweep locks held by transactions
// whose coordinator died, deciding each by the same rule (an
// acked-committed transaction has records at every backup, so its writes
// are recovered even if the coordinator crashed before the COMMIT phase).

// recovering tracks one undecided transaction during a log scan or lock
// sweep.
type recovering struct {
	txn      uint64
	shard    int
	expected int // outstanding RecoveryResp count
	allHave  bool
	// round numbers the vote; a view change mid-recovery re-votes against
	// the new replica set with round+1 and stale responses are ignored.
	round  uint8
	writes []wire.KV // from a replica that holds the record
	// lockedKeys are this primary's locks held by the transaction (lock
	// sweep); nil during promotion scans.
	lockedKeys []uint64
	// promotion marks records recovered during shard adoption.
	promotion bool
}

// onViewChange is the cluster-manager callback: update routing, then let
// every surviving node react (abort in-flight work, adopt shards, sweep
// orphaned locks).
func (cl *Cluster) onViewChange(v membership.View) {
	cl.view = v
	for _, n := range cl.nodes {
		if !n.alive {
			continue
		}
		n := n
		// React on a NIC core so the work is charged and can send messages
		// (a live one: fault plans may have stopped individual cores).
		n.nic.Inject(n.nic.LiveCore(), func(c *nicrt.Core) { n.handleViewChange(c, v) })
	}
}

// handleViewChange runs on a NIC core of every surviving node.
func (n *Node) handleViewChange(c *nicrt.Core, v membership.View) {
	if !v.Alive[n.id] {
		// The view evicted this node (its lease lapsed during a partition)
		// even though it is locally up: self-fence. The survivors have
		// already promoted its shard and swept its locks; continuing to
		// serve would split the brain.
		n.alive = false
		return
	}
	if n.faulty() {
		n.nic.SetEpoch(v.Epoch)
		n.viewAlive = append(n.viewAlive[:0], v.Alive...)
		n.joined = append(n.joined[:0], v.JoinedEpoch...)
	}
	if n.rejoin != nil {
		n.rejoinOnView(c, v)
	}
	n.abortInFlight(c, v)
	n.adoptShards(c, v)
	n.convertPendingDecides(c, v)
	n.sweepOrphanLocks(c, v)
	n.refreshRecoveries(c, v)
	n.updateForwards(v)
}

// convertPendingDecides re-decides promoted-shard records whose coordinator
// has died since the promotion left them pending: the decision will never
// arrive, so the recovery vote takes over (their keys stay locked until it
// resolves).
func (n *Node) convertPendingDecides(c *nicrt.Core, v membership.View) {
	if len(n.pendingDecide) == 0 {
		return
	}
	pending := make([]txnShard, 0, len(n.pendingDecide))
	for ts := range n.pendingDecide {
		pending = append(pending, ts)
	}
	slices.SortFunc(pending, func(a, b txnShard) int {
		if a.txn != b.txn {
			if a.txn < b.txn {
				return -1
			}
			return 1
		}
		return a.shard - b.shard
	})
	for _, ts := range pending {
		if v.Alive[txnNode(ts.txn)] {
			continue
		}
		keys := n.pendingDecide[ts]
		delete(n.pendingDecide, ts)
		n.startRecovery(c, &recovering{
			txn: ts.txn, shard: ts.shard, lockedKeys: keys,
		}, v)
	}
}

// refreshRecoveries re-votes every in-flight recovery against the new
// view's replica set: a queried backup may have died (its answer will never
// come) or the survivor set may have shrunk, changing what "present at
// every surviving replica" means. Responses from the superseded round are
// ignored.
func (n *Node) refreshRecoveries(c *nicrt.Core, v membership.View) {
	if len(n.recov) == 0 {
		return
	}
	keys := make([]txnShard, 0, len(n.recov))
	for ts := range n.recov {
		keys = append(keys, ts)
	}
	slices.SortFunc(keys, func(a, b txnShard) int {
		if a.txn != b.txn {
			if a.txn < b.txn {
				return -1
			}
			return 1
		}
		return a.shard - b.shard
	})
	for _, ts := range keys {
		r := n.recov[ts]
		r.round++
		r.allHave = true
		r.expected = 0
		n.stats.RecoveryRefreshes++
		for _, b := range n.cl.viewBackups(r.shard) {
			if b == n.id {
				continue
			}
			r.expected++
			c.Send(b, &wire.RecoveryQuery{
				Header: wire.Header{TxnID: r.txn, Src: uint8(n.id)},
				Shard:  uint8(r.shard), Round: r.round,
			})
		}
		if r.expected == 0 {
			n.decideRecovery(c, r)
		}
	}
}

// abortInFlight aborts every in-flight coordinated transaction: the view
// changed under them (a replica or primary they depend on may be gone), so
// they release their locks and retry in the new configuration. Liveness
// decisions use the view, not the global alive flags: a partition-evicted
// node self-fences asynchronously, so its flag may still read alive here.
func (n *Node) abortInFlight(c *nicrt.Core, v membership.View) {
	var ids []uint64
	for id := range n.ctxns {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		t := n.ctxns[id]
		n.dbgEvt(id, "abortInFlight phase=%v epoch=%d", t.phase, v.Epoch)
		t.dead = true
		if t.phase == phCommit {
			// Already reported committed: in-flight COMMITs to surviving
			// primaries complete on their own (they need no coordinator
			// state); commits destined for the dead node are recovered
			// from the backups' logs. Just drop the state.
			n.closeTxn(t, wire.StatusOK)
			delete(n.ctxns, t.id)
			continue
		}
		if t.failed == wire.StatusOK {
			t.failed = wire.StatusAbortView
		}
		if t.phase == phShipped && v.Alive[t.shipTo] {
			// Release any lock-all state at the remote primary.
			c.Send(t.shipTo, &wire.Abort{Header: wire.Header{TxnID: t.id, Src: uint8(n.id)}})
		}
		var shards []int
		for s := range t.locked {
			shards = append(shards, s)
		}
		sortInts(shards)
		for _, s := range shards {
			keys := t.locked[s]
			if len(keys) == 0 {
				continue
			}
			dst := n.primaryNode(s)
			if dst == n.id {
				if p := n.prim(s); p != nil {
					for _, k := range keys {
						p.index.UnlockIf(k, t.id)
					}
				}
				continue
			}
			if v.Alive[dst] {
				c.Send(dst, &wire.Abort{
					Header:     wire.Header{TxnID: t.id, Src: uint8(n.id)},
					LockedKeys: keys,
				})
			}
		}
		dropWrites := t.writes
		if t.phase == phShipped && t.shipped != nil {
			// The remote execution already fanned out its records.
			dropWrites = t.shipped.Writes
		}
		if t.phase == phShipped && t.shipped == nil && !v.Alive[t.shipTo] {
			// The remote executor died mid-transaction: it may have fanned
			// out log records before crashing, and the ShipResult that would
			// normally name them (and trigger the straggler cleanup in
			// coordShipResult) will never arrive. The descriptor still knows
			// the write set — shipped transactions touch only this node and
			// shipTo — so drop from it. The transaction cannot have reached
			// its commit point: only this coordinator commits it, and it is
			// aborting instead.
			for _, k := range t.desc.WriteKeys() {
				dropWrites = append(dropWrites, wire.KV{Key: k})
			}
		}
		if t.phase == phLog || (t.phase == phShipped && len(dropWrites) > 0) {
			// Replicas already hold this transaction's undecided records;
			// tell every surviving replica — including a freshly promoted
			// primary that held them as a backup — to drop (the
			// transaction never reached its commit point).
			for _, sw := range groupByShard(n.place(), dropWrites) {
				for _, b := range n.cl.replicasOf(sw.shard) {
					if b == n.id {
						n.log.drop(t.id, sw.shard)
						continue
					}
					c.Send(b, &wire.RecoveryDecide{
						Header: wire.Header{TxnID: t.id, Src: uint8(n.id)},
						Shard:  uint8(sw.shard), Commit: false,
					})
				}
			}
		}
		n.recordAbort(t, t.failed)
		n.traceAbort(t)
		n.finishTxn(c, t, t.failed)
		n.closeTxn(t, t.failed)
		delete(n.ctxns, t.id)
	}
	// Shipped transactions from dead coordinators may hold lock-all state
	// here; their owners are swept below via the orphan-lock path, so also
	// release remoteLocks owned by dead nodes.
	var orphaned []uint64
	for txn := range n.remoteLocks {
		if !v.Alive[txnNode(txn)] {
			orphaned = append(orphaned, txn)
		}
	}
	slices.Sort(orphaned)
	for _, txn := range orphaned {
		delete(n.remoteLocks, txn)
		// The individual key locks are still in the index and will be
		// swept by sweepOrphanLocks.
	}
}

// adoptShards promotes this node to primary for shards the view assigns it
// (§4.2.1): the backup replica becomes the serving copy, a fresh SmartNIC
// index is built over it, and the shard is gated until the log scan
// decides every recovering transaction.
func (n *Node) adoptShards(c *nicrt.Core, v membership.View) {
	for s := 0; s < len(v.PrimaryOf); s++ {
		if v.PrimaryOf[s] != n.id || n.prims[s] != nil {
			continue
		}
		data, ok := n.backups[s]
		if !ok {
			panic(fmt.Sprintf("core: node %d promoted for shard %d without a replica", n.id, s))
		}
		// Drain this replica's decided-but-unapplied records synchronously:
		// promotion happens off the critical path (§4.2.1), and the serving
		// copy must reflect every decided write before lookups begin.
		for {
			r := n.log.claim()
			if r == nil {
				break
			}
			n.applyRecord(c, r)
		}
		idx := nicindex.New(data.Hash, n.cl.cacheCap(), 1)
		idx.SyncHints()
		n.hookIndex(s, idx)
		if n.cl.mv.enabled {
			idx.SetTSFunc(data.HeadTS)
			idx.SetChainDepth(n.cl.mv.keep)
		}
		n.prims[s] = &primaryShard{data: data, index: idx, ready: false}
		if n.cl.mv.enabled {
			// The drain above bypassed the worker ack path, so discharge the
			// shard from every pending watermark entry — this copy is now the
			// authority. Snapshot reads at timestamps picked before the
			// promotion are fenced off: their resolution raced the failover.
			n.cl.mv.shardRecovered(s)
			n.prims[s].mvFloor = n.cl.mv.next
		}

		// Decide every undecided record for the shard. Records from DEAD
		// coordinators are decided by querying the surviving replicas;
		// records from coordinators that are still alive are left to their
		// coordinator's in-flight LogCommit/drop — until it arrives, their
		// write-set keys are locked in the new index so no transaction can
		// observe their pre-commit values (§4.2.1: "the lock state is
		// reconstructed... Once all locks are set, the shard can serve new
		// transactions").
		started := false
		for _, ts := range n.log.undecided(s) {
			writes, _ := n.log.has(ts.txn, s)
			if !v.Alive[txnNode(ts.txn)] {
				started = true
				n.startRecovery(c, &recovering{
					txn: ts.txn, shard: s, writes: writes, promotion: true,
				}, v)
				continue
			}
			var keys []uint64
			for _, kv := range writes {
				if idx.TryLock(kv.Key, ts.txn) {
					keys = append(keys, kv.Key)
				}
			}
			n.dbgEvt(ts.txn, "adoptShards pendingDecide shard=%d keys=%d", s, len(keys))
			n.pendingDecide[ts] = keys
		}
		if !started {
			n.finishPromotion(c, s)
		}
	}
}

// applyRecord applies one decided log record (promotion drain) through the
// same per-kind path the worker uses: commit records maintain version
// chains, backup records apply chain-less (see applyKV — the promotion
// fence makes understated chain state on an adopted replica safe).
func (n *Node) applyRecord(c *nicrt.Core, r *logRecord) {
	for ki, kv := range r.writes {
		switch r.kind {
		case recBackup:
			if b, ok := n.backups[r.shard]; ok {
				n.applyKV(b, r, ki, kv)
			}
		case recCommit:
			if p := n.prim(r.shard); p != nil {
				n.applyKV(p.data, r, ki, kv)
			}
		}
	}
	if r.kind == recCommit {
		// Unpin directly: the host-worker ack path is being bypassed.
		if keys, ok := n.pins[r.seq]; ok {
			idx := n.pinIdx[r.seq]
			delete(n.pins, r.seq)
			delete(n.pinIdx, r.seq)
			for _, k := range keys {
				idx.Unpin(k)
			}
		}
	}
}

// finishPromotion opens a recovered shard for service once no recovering
// transactions remain.
func (n *Node) finishPromotion(c *nicrt.Core, shard int) {
	for _, r := range n.recov {
		if r.shard == shard && r.promotion {
			return // still deciding
		}
	}
	p := n.prim(shard)
	p.index.SyncHints()
	p.ready = true
	// Fence: surviving backups drop any undecided records this primary
	// does not hold (those transactions cannot have committed).
	n.broadcastDecide(c, 0, shard, false, 0)
}

// sweepOrphanLocks finds locks held by transactions whose coordinator died
// and decides each by the recovery rule.
func (n *Node) sweepOrphanLocks(c *nicrt.Core, v membership.View) {
	var shards []int
	for s := range n.prims {
		shards = append(shards, s)
	}
	sortInts(shards)
	for _, s := range shards {
		p := n.prims[s]
		orphans := map[uint64][]uint64{} // txn -> locked keys
		var order []uint64
		p.index.ForEachLocked(func(key, owner uint64) {
			if v.Alive[txnNode(owner)] {
				return
			}
			if _, seen := orphans[owner]; !seen {
				order = append(order, owner)
			}
			orphans[owner] = append(orphans[owner], key)
		})
		slices.Sort(order)
		for _, txn := range order {
			n.startRecovery(c, &recovering{
				txn: txn, shard: s, lockedKeys: orphans[txn],
			}, v)
		}
	}
}

// startRecovery queries the shard's other surviving replicas about a
// dead coordinator's transaction. If this node is the only surviving
// replica, its own record is the complete surviving evidence: a record
// present at every surviving replica is committed (the FaRM rule —
// transactions past validation with fully replicated records commit
// during recovery); with no record anywhere, abort.
func (n *Node) startRecovery(c *nicrt.Core, r *recovering, v membership.View) {
	key := txnShard{txn: r.txn, shard: r.shard}
	if _, dup := n.recov[key]; dup {
		return
	}
	if r.writes == nil {
		if w, ok := n.log.has(r.txn, r.shard); ok {
			r.writes = w
		}
	}
	r.allHave = true
	for _, b := range n.cl.viewBackups(r.shard) {
		if b == n.id {
			continue
		}
		r.expected++
		c.Send(b, &wire.RecoveryQuery{
			Header: wire.Header{TxnID: r.txn, Src: uint8(n.id)},
			Shard:  uint8(r.shard), Round: r.round,
		})
	}
	n.recov[key] = r
	if r.expected == 0 {
		n.decideRecovery(c, r)
	}
}

// handleRecoveryQuery answers from this node's log.
func (n *Node) handleRecoveryQuery(c *nicrt.Core, src int, m *wire.RecoveryQuery) {
	writes, has := n.log.has(m.TxnID, int(m.Shard))
	c.Send(src, &wire.RecoveryResp{
		Header: wire.Header{TxnID: m.TxnID, Src: uint8(n.id)},
		Shard:  m.Shard, Round: m.Round, Has: has, Writes: writes,
	})
}

// handleRecoveryResp accumulates replica answers.
func (n *Node) handleRecoveryResp(c *nicrt.Core, m *wire.RecoveryResp) {
	r, ok := n.recov[txnShard{txn: m.TxnID, shard: int(m.Shard)}]
	if !ok {
		return
	}
	if m.Round != r.round {
		return // answer to a vote a view change superseded
	}
	if m.Has {
		if r.writes == nil {
			r.writes = m.Writes
		}
	} else {
		r.allHave = false
	}
	r.expected--
	if r.expected == 0 {
		n.decideRecovery(c, r)
	}
}

// decideRecovery commits or aborts a recovering transaction (§4.2.1: "each
// recovering transaction is either aborted or fully applied to all
// replicas before its associated locks are finally released").
func (n *Node) decideRecovery(c *nicrt.Core, r *recovering) {
	delete(n.recov, txnShard{txn: r.txn, shard: r.shard})
	commit := r.allHave && r.writes != nil
	p := n.prim(r.shard)

	var cts uint64
	if commit {
		unlock := r.lockedKeys
		if unlock == nil {
			// Promotion scan: the fresh index holds no locks for it.
			unlock = []uint64{}
		}
		if n.cl.mv.enabled {
			// Reuse the original commit timestamp when the dead coordinator
			// assigned one (it rides in the surviving records), else mint a
			// fresh one; hold() re-arms this shard's pending apply so the
			// snapshot watermark waits for the recovered write to land. Safe:
			// the fence is up for the whole recovery episode.
			cts = n.cl.mv.ctsFor(r.txn, 0)
			n.cl.mv.hold(cts, r.shard)
		}
		n.recordRecovered(r.txn, r.writes, cts)
		n.log.markCommitted(r.txn, r.shard, cts)
		n.commitShard(c, r.shard, r.txn, r.writes, unlock, cts, func() {})
		n.wakeWorkers()
	} else {
		n.log.drop(r.txn, r.shard)
		for _, k := range r.lockedKeys {
			p.index.Unlock(k, r.txn)
		}
	}
	// Tell surviving backups the fate of their records.
	n.broadcastDecide(c, r.txn, r.shard, commit, cts)
	if r.promotion {
		n.finishPromotion(c, r.shard)
	}
}

// broadcastDecide announces a recovery outcome (or, with txn 0, the
// promotion fence) to the shard's surviving backups.
func (n *Node) broadcastDecide(c *nicrt.Core, txn uint64, shard int, commit bool, cts uint64) {
	for _, b := range n.cl.viewBackups(shard) {
		if b == n.id {
			continue
		}
		c.Send(b, &wire.RecoveryDecide{
			Header: wire.Header{TxnID: txn, Src: uint8(n.id)},
			Shard:  uint8(shard), Commit: commit, CTS: cts,
		})
	}
}

// resolveRecord applies a recovery decision to this node's log: commit
// (mark decided, wake workers to apply) or drop.
func (n *Node) resolveRecord(txn uint64, shard int, commit bool, cts uint64) {
	if commit {
		n.log.markCommitted(txn, shard, cts)
		n.wakeWorkers()
		return
	}
	n.log.drop(txn, shard)
}

// handleRecoveryDecide applies a primary's decision at a backup — or, when
// this node was itself promoted and is awaiting an alive coordinator's
// decision, resolves the pending record. TxnID 0 is the promotion fence:
// drop every remaining undecided record for the shard.
func (n *Node) handleRecoveryDecide(c *nicrt.Core, m *wire.RecoveryDecide) {
	shard := int(m.Shard)
	if m.TxnID == 0 {
		fence := c.RxEpoch()
		for _, ts := range n.log.undecided(shard) {
			if _, pending := n.pendingDecide[ts]; pending {
				continue // our own promoted shard's pending records
			}
			n.log.dropBefore(ts.txn, shard, fence)
		}
		return
	}
	ts := txnShard{txn: m.TxnID, shard: shard}
	n.dbgEvt(m.TxnID, "handleRecoveryDecide shard=%d commit=%v", shard, m.Commit)
	if keys, ok := n.pendingDecide[ts]; ok {
		delete(n.pendingDecide, ts)
		if p := n.prim(shard); p != nil {
			for _, k := range keys {
				p.index.UnlockIf(k, m.TxnID)
			}
		}
		// fall through to record the decision below
	}
	n.resolveRecord(m.TxnID, shard, m.Commit, m.CTS)
}
