package core

import (
	"fmt"

	"xenic/internal/store/btree"
	"xenic/internal/store/robinhood"
	"xenic/internal/txnmodel"
	"xenic/internal/wire"
)

// ShardData is one replica of one shard: the partitioned hash table plus
// the coordinator-local B+tree tables (TPC-C), both versioned.
type ShardData struct {
	Hash  *robinhood.Table
	BTree *btree.Tree
	place txnmodel.Placement
}

// newShardData builds an empty replica sized by spec.
func newShardData(spec txnmodel.StoreSpec, place txnmodel.Placement) *ShardData {
	cfg := robinhood.DefaultConfig(spec.HashSlots)
	if spec.InlineValueSize > 0 {
		cfg.InlineValueSize = spec.InlineValueSize
	}
	cfg.MaxDisplacement = spec.MaxDisplacement
	return &ShardData{
		Hash:  robinhood.New(cfg),
		BTree: btree.New(),
		place: place,
	}
}

// Read fetches a key's value and version via local memory access.
func (s *ShardData) Read(key uint64) (value []byte, version uint64, ok bool) {
	if s.place.IsBTree(key) {
		it, found := s.BTree.Get(key)
		if !found {
			return nil, 0, false
		}
		return it.Value, it.Version, true
	}
	r := s.Hash.Lookup(key)
	if !r.Found {
		return nil, 0, false
	}
	return r.Value, r.Version, true
}

// Apply installs a committed write (insert or update) with its version.
// Applies are version-guarded: per-key versions are monotonic under write
// locks, so a stale (lower-versioned) record arriving late is a no-op and
// records may safely apply out of order across coordinators.
func (s *ShardData) Apply(kv wire.KV) {
	if s.place.IsBTree(kv.Key) {
		if it, ok := s.BTree.Get(kv.Key); ok && it.Version >= kv.Version {
			return
		}
		s.BTree.Insert(kv.Key, kv.Value, kv.Version)
		return
	}
	if r := s.Hash.Lookup(kv.Key); r.Found && r.Version >= kv.Version {
		return
	}
	if err := s.Hash.Insert(kv.Key, kv.Value, kv.Version); err != nil {
		panic(fmt.Sprintf("core: shard apply: %v", err))
	}
}
