package core

import (
	"fmt"

	"xenic/internal/store/btree"
	"xenic/internal/store/robinhood"
	"xenic/internal/txnmodel"
	"xenic/internal/wire"
)

// ShardData is one replica of one shard: the partitioned hash table plus
// the coordinator-local B+tree tables (TPC-C), both versioned. Under MVCC
// the mv sidecar keeps each key's bounded version chain: the row itself is
// the chain head and hist holds displaced older versions, newest first.
// Chains are lazy — keys never written under MVCC carry no chain and have
// an implicit head commit timestamp of 0 (visible to every snapshot).
type ShardData struct {
	Hash  *robinhood.Table
	BTree *btree.Tree
	place txnmodel.Placement
	mv    map[uint64]*mvChain
}

// mvVer is one retained old version of a key. Value bytes live packed in
// the owning chain's vals buffer (addressed by off/vlen) so hist stays
// pointer-free: the garbage collector skips it entirely instead of scanning
// one heap object per retained version, which measurably slows the whole
// simulator once chains number in the tens of thousands.
type mvVer struct {
	ts      uint64 // commit timestamp that installed it
	version uint64 // OCC version number
	off     uint32 // value offset into mvChain.vals
	vlen    uint32 // value length
}

// mvChain is a key's version-chain sidecar.
type mvChain struct {
	headTS uint64  // commit timestamp of the row (chain head)
	born   uint64  // cts of the key's first version; 0 = predates tracking
	hist   []mvVer // displaced older versions, newest first
	vals   []byte  // packed value bytes of hist entries
	waste  int     // bytes in vals no longer referenced by any hist entry
}

// value returns entry i's bytes. The full slice expression pins capacity so
// no caller append can reach a neighbor's bytes.
func (c *mvChain) value(i int) []byte {
	e := &c.hist[i]
	return c.vals[e.off : e.off+e.vlen : e.off+e.vlen]
}

// drop truncates hist to its first n entries, retiring the tail's bytes.
func (c *mvChain) drop(n int) {
	for _, e := range c.hist[n:] {
		c.waste += int(e.vlen)
	}
	c.hist = c.hist[:n]
}

// compact rewrites vals without the retired bytes. The fresh allocation is
// required for correctness, not tidiness: in-flight snapshot responses may
// alias the old buffer, which must stay immutable once handed out.
func (c *mvChain) compact() {
	nv := make([]byte, 0, len(c.vals)-c.waste)
	for i := range c.hist {
		e := &c.hist[i]
		nv = append(nv, c.vals[e.off:e.off+e.vlen]...)
		e.off = uint32(len(nv)) - e.vlen
	}
	c.vals = nv
	c.waste = 0
}

// gc drops history entries invisible to every admissible snapshot: anything
// older than the newest entry at or below the low-water mark, then caps the
// chain at keep entries (deeper reads miss and retry at a fresher snapshot).
func (c *mvChain) gc(keep int, lwm uint64) {
	if c.headTS <= lwm {
		c.drop(0)
		return
	}
	for i := range c.hist {
		if c.hist[i].ts <= lwm {
			c.drop(i + 1)
			break
		}
	}
	if keep > 0 && len(c.hist) > keep {
		c.drop(keep)
	}
}

// NewShardData builds an empty replica sized by spec. Exported for the
// wallbench version-chain benchmark; the cluster builds its replicas through
// the internal constructor.
func NewShardData(spec txnmodel.StoreSpec, place txnmodel.Placement) *ShardData {
	return newShardData(spec, place)
}

// newShardData builds an empty replica sized by spec.
func newShardData(spec txnmodel.StoreSpec, place txnmodel.Placement) *ShardData {
	cfg := robinhood.DefaultConfig(spec.HashSlots)
	if spec.InlineValueSize > 0 {
		cfg.InlineValueSize = spec.InlineValueSize
	}
	cfg.MaxDisplacement = spec.MaxDisplacement
	return &ShardData{
		Hash:  robinhood.New(cfg),
		BTree: btree.New(),
		place: place,
	}
}

// Read fetches a key's value and version via local memory access.
func (s *ShardData) Read(key uint64) (value []byte, version uint64, ok bool) {
	if s.place.IsBTree(key) {
		it, found := s.BTree.Get(key)
		if !found {
			return nil, 0, false
		}
		return it.Value, it.Version, true
	}
	r := s.Hash.Lookup(key)
	if !r.Found {
		return nil, 0, false
	}
	return r.Value, r.Version, true
}

// Apply installs a committed write (insert or update) with its version.
// Applies are version-guarded: per-key versions are monotonic under write
// locks, so a stale (lower-versioned) record arriving late is a no-op and
// records may safely apply out of order across coordinators.
func (s *ShardData) Apply(kv wire.KV) {
	if s.place.IsBTree(kv.Key) {
		if it, ok := s.BTree.Get(kv.Key); ok && it.Version >= kv.Version {
			return
		}
		s.BTree.Insert(kv.Key, kv.Value, kv.Version)
		return
	}
	if r := s.Hash.Lookup(kv.Key); r.Found && r.Version >= kv.Version {
		return
	}
	if err := s.Hash.Insert(kv.Key, kv.Value, kv.Version); err != nil {
		panic(fmt.Sprintf("core: shard apply: %v", err))
	}
}

// ApplyTS installs a committed write like Apply, additionally maintaining
// the key's bounded version chain: the displaced row is pushed onto the
// chain history stamped with the old head's commit timestamp.
func (s *ShardData) ApplyTS(kv wire.KV, cts uint64, keep int, lwm uint64) {
	old, oldVer, found := s.Read(kv.Key)
	if found && oldVer >= kv.Version {
		return // stale out-of-order record; chain untouched
	}
	if s.mv == nil {
		s.mv = make(map[uint64]*mvChain)
	}
	ch := s.mv[kv.Key]
	if ch == nil {
		ch = &mvChain{}
		if !found {
			ch.born = cts
		}
		s.mv[kv.Key] = ch
	}
	if found {
		// Pack the displaced head's bytes onto the chain's value buffer.
		// Appends only ever write at or past len(vals), and compaction below
		// swaps in a fresh buffer, so bytes already handed out to in-flight
		// snapshot responses are never overwritten.
		off := uint32(len(ch.vals))
		ch.vals = append(ch.vals, old...)
		ch.hist = append(ch.hist, mvVer{})
		copy(ch.hist[1:], ch.hist)
		ch.hist[0] = mvVer{ts: ch.headTS, version: oldVer, off: off, vlen: uint32(len(old))}
	}
	ch.headTS = cts
	ch.gc(keep, lwm)
	if ch.waste > 256 && ch.waste*2 > len(ch.vals) {
		ch.compact()
	}
	s.applyChecked(kv)
}

// applyChecked installs a write whose version guard the caller has already
// checked against the current row, skipping Apply's redundant lookup.
func (s *ShardData) applyChecked(kv wire.KV) {
	if s.place.IsBTree(kv.Key) {
		s.BTree.Insert(kv.Key, kv.Value, kv.Version)
		return
	}
	if err := s.Hash.Insert(kv.Key, kv.Value, kv.Version); err != nil {
		panic(fmt.Sprintf("core: shard apply: %v", err))
	}
}

// ApplyBase installs a state-transfer KV with its head commit timestamp but
// no history (the chunk is a snapshot base; depth rebuilds from subsequent
// commits). Version-guarded like Apply.
func (s *ShardData) ApplyBase(kv wire.KV, ts uint64) {
	if _, oldVer, found := s.Read(kv.Key); found && oldVer >= kv.Version {
		return
	}
	s.Apply(kv)
	if ts == 0 {
		return
	}
	if s.mv == nil {
		s.mv = make(map[uint64]*mvChain)
	}
	ch := s.mv[kv.Key]
	if ch == nil {
		ch = &mvChain{}
		s.mv[kv.Key] = ch
	}
	if ch.headTS < ts {
		// The transferred base invalidates older history. Drop the value
		// buffer rather than truncating it: in-flight responses may alias
		// its bytes, so it must never be rewritten from offset zero.
		ch.headTS = ts
		ch.hist = ch.hist[:0]
		ch.vals = nil
		ch.waste = 0
	}
}

// HeadTS returns the commit timestamp of the key's current row (0 when the
// key has never been written under MVCC).
func (s *ShardData) HeadTS(key uint64) uint64 {
	if ch := s.mv[key]; ch != nil {
		return ch.headTS
	}
	return 0
}

// ReadAt resolves the version of key visible at snapshot timestamp S.
// exists=false with ok=true means the key was absent at S; ok=false means
// the chain has been GC'd past S and the caller must retry at a fresher
// snapshot.
func (s *ShardData) ReadAt(key, S uint64) (value []byte, version uint64, exists, ok bool) {
	value, version, found := s.Read(key)
	ch := s.mv[key]
	var headTS uint64
	if ch != nil {
		headTS = ch.headTS
	}
	if headTS <= S {
		if !found {
			return nil, 0, false, true
		}
		return value, version, true, true
	}
	for i := range ch.hist {
		if ch.hist[i].ts <= S {
			return ch.value(i), ch.hist[i].version, true, true
		}
	}
	if ch.born > S {
		return nil, 0, false, true // key did not exist yet at S
	}
	if mutGCIgnoreSnapshots && len(ch.hist) > 0 {
		// Mutant: serve the oldest retained version instead of admitting
		// the chain miss.
		last := len(ch.hist) - 1
		return ch.value(last), ch.hist[last].version, true, true
	}
	return nil, 0, false, false
}

// ChainLen reports the retained history depth for key (tests/diagnostics).
func (s *ShardData) ChainLen(key uint64) int {
	if ch := s.mv[key]; ch != nil {
		return len(ch.hist)
	}
	return 0
}
