// Package simnet models the Ethernet fabric connecting the testbed servers:
// per-node full-duplex ports with one or two ganged links (2x50GbE LiquidIO,
// §5), cut-through switching with a fixed propagation delay, per-frame wire
// overhead, and serialization on both the sender's egress and the receiver's
// ingress so that incast workloads (e.g. the §3.4 write microbenchmark with
// 5 sources and 1 target) are bottlenecked at the receiver as on hardware.
package simnet

import (
	"fmt"

	"xenic/internal/model"
	"xenic/internal/sim"
)

// Frame is one Ethernet frame in flight. A frame carries one or more
// application messages (aggregated transmission packs many, §4.3.2);
// PayloadBytes is their total encoded size, which together with the
// per-frame overhead determines wire occupancy.
type Frame struct {
	Src, Dst     int
	PayloadBytes int
	// Flow is an opaque flow label (e.g. source core); receivers' hardware
	// flow engines steer frames to cores by it (§4.3.2).
	Flow int
	// Seq is a per-(src,dst) sequence number stamped on fault-injection
	// runs; receivers use it to discard duplicated deliveries.
	Seq uint64
	// Epoch is the sender's membership view epoch at emission time
	// (fault-injection runs only). Receivers fence: frames stamped before an
	// endpoint's latest (re)join are stale and dropped, so a healed evictee
	// cannot serve stale reads or acquire locks. Retransmissions keep the
	// original stamp — exactly the fencing semantics we want.
	Epoch int
	Msgs  []any
}

// Handler receives frames delivered to a node, at the simulated instant the
// last bit arrives.
type Handler func(f *Frame)

// port is one node's attachment: N egress and N ingress lanes.
type port struct {
	egressBusy  []sim.Time
	ingressBusy []sim.Time
	handler     Handler
	txBytes     int64
	rxBytes     int64
	txFrames    int64
	txBusy      sim.Time // cumulative egress serialization time (occupancy gauge)
}

// Network is the fabric. It is not safe for concurrent use; all access must
// happen from simulation callbacks.
type Network struct {
	eng   *sim.Engine
	p     model.Params
	ports []port

	// deliverFn is the delivery callback bound once at construction so frame
	// delivery schedules without allocating a closure per frame.
	deliverFn func(any)

	// free is the frame freelist. Frames delivered exactly once (fault-free
	// runs) are recycled by receivers via Recycle; with a fault hook
	// installed, duplicate deliveries and retransmissions alias frames, so
	// recycling is disabled.
	free []*Frame

	// Fault injection (nil on fault-free runs; see SetFault).
	fate func(src, dst int) (drop, dup bool, delay sim.Time)
	live func(node int) bool
	seq  [][]uint64 // per-(src,dst) frame sequence numbers
	retx int64      // transport retransmissions of dropped frames
	lost int64      // frames abandoned because an endpoint died
}

// Retransmission backoff for frames the fault hook drops. The model is a
// reliable transport (RoCE RC-style ARQ): the simulator knows the frame was
// lost and re-runs the transmission after a deterministic capped-exponential
// delay, re-consulting the fault hook each attempt — so a partition blocks
// frames until it heals (or an endpoint dies) rather than losing them.
const (
	retxBase = 8 * sim.Microsecond
	retxMax  = 100 * sim.Microsecond
)

func retxBackoff(attempt int) sim.Time {
	d := retxBase
	for i := 0; i < attempt && d < retxMax; i++ {
		d *= 2
	}
	if d > retxMax {
		d = retxMax
	}
	return d
}

// SetFault installs the frame-fault hook (and a liveness oracle used to
// abandon retransmissions to or from dead nodes). Must be called before any
// traffic; enables per-frame Seq stamping.
func (n *Network) SetFault(fate func(src, dst int) (drop, dup bool, delay sim.Time), live func(node int) bool) {
	n.fate = fate
	n.live = live
	n.seq = make([][]uint64, len(n.ports))
	for i := range n.seq {
		n.seq[i] = make([]uint64, len(n.ports))
	}
}

// Faulty reports whether a fault hook is installed (receivers enable
// duplicate-frame suppression when it is).
func (n *Network) Faulty() bool { return n.fate != nil }

// FaultCounters reports transport-level retransmissions and abandoned
// frames on fault-injection runs.
func (n *Network) FaultCounters() (retx, lost int64) { return n.retx, n.lost }

// New creates a fabric with n node ports using parameters p.
func New(eng *sim.Engine, p model.Params, n int) *Network {
	nw := &Network{eng: eng, p: p, ports: make([]port, n)}
	for i := range nw.ports {
		nw.ports[i].egressBusy = make([]sim.Time, p.LinksPerNode)
		nw.ports[i].ingressBusy = make([]sim.Time, p.LinksPerNode)
	}
	nw.deliverFn = nw.deliver
	return nw
}

// deliver hands an arrived frame to its destination handler (the At1 target
// for frame-arrival events).
func (n *Network) deliver(arg any) {
	f := arg.(*Frame)
	h := n.ports[f.Dst].handler
	if h == nil {
		panic(fmt.Sprintf("simnet: no handler attached at node %d", f.Dst))
	}
	h(f)
}

// NewFrame returns a zeroed frame, reusing a recycled one when available.
// The returned frame's Msgs slice keeps its capacity so senders can append
// into it without reallocating.
func (n *Network) NewFrame() *Frame {
	if len(n.free) == 0 {
		return &Frame{}
	}
	f := n.free[len(n.free)-1]
	n.free = n.free[:len(n.free)-1]
	return f
}

// Recycle returns a delivered frame to the freelist. Receivers call it after
// consuming the frame's messages; the frame must not be referenced
// afterwards. On fault runs this is a no-op: retransmission and duplicate
// delivery keep frames alive past their first arrival.
func (n *Network) Recycle(f *Frame) {
	if n.fate != nil {
		return
	}
	for i := range f.Msgs {
		f.Msgs[i] = nil
	}
	*f = Frame{Msgs: f.Msgs[:0]}
	n.free = append(n.free, f)
}

// Nodes returns the number of attached ports.
func (n *Network) Nodes() int { return len(n.ports) }

// Attach installs the frame handler for node id. It must be called before
// any frame is sent to that node.
func (n *Network) Attach(id int, h Handler) { n.ports[id].handler = h }

// pickLane returns the index of the earliest-free lane.
func pickLane(busy []sim.Time) int {
	best := 0
	for i := 1; i < len(busy); i++ {
		if busy[i] < busy[best] {
			best = i
		}
	}
	return best
}

// Send transmits f from f.Src to f.Dst. The frame is serialized on the
// sender's least-busy egress lane, propagates, is serialized on the
// receiver's least-busy ingress lane, and is delivered to the destination
// handler when its last bit arrives. Send panics on malformed frames so
// protocol bugs surface immediately.
func (n *Network) Send(f *Frame) {
	if f.Src == f.Dst {
		panic(fmt.Sprintf("simnet: self-send at node %d", f.Src))
	}
	if f.Dst < 0 || f.Dst >= len(n.ports) {
		panic(fmt.Sprintf("simnet: bad destination %d", f.Dst))
	}
	if f.PayloadBytes <= 0 {
		panic("simnet: frame with non-positive payload")
	}
	if f.PayloadBytes > n.p.MTU {
		panic(fmt.Sprintf("simnet: frame payload %dB exceeds MTU %dB", f.PayloadBytes, n.p.MTU))
	}
	if n.fate != nil {
		n.seq[f.Src][f.Dst]++
		f.Seq = n.seq[f.Src][f.Dst]
	}
	n.transmit(f, 0)
}

// transmit runs one transmission attempt of f (attempt > 0 marks transport
// retransmissions of frames the fault hook dropped). Each attempt charges
// the sender's egress lane — retransmitted frames occupy the wire again.
func (n *Network) transmit(f *Frame, attempt int) {
	src, dst := &n.ports[f.Src], &n.ports[f.Dst]
	now := n.eng.Now()
	if n.fate != nil && n.live != nil && (!n.live(f.Src) || !n.live(f.Dst)) {
		// A dead endpoint stops retransmitting (or acking); the transport
		// abandons the frame.
		n.lost++
		return
	}
	ser := n.p.SerializationDelay(n.p.WireBytes(f.PayloadBytes))

	lane := pickLane(src.egressBusy)
	start := now
	if src.egressBusy[lane] > start {
		start = src.egressBusy[lane]
	}
	egressDone := start + ser
	src.egressBusy[lane] = egressDone
	src.txBytes += int64(n.p.WireBytes(f.PayloadBytes))
	src.txFrames++
	src.txBusy += ser

	var dupFrame bool
	var extraDelay sim.Time
	if n.fate != nil {
		var drop bool
		drop, dupFrame, extraDelay = n.fate(f.Src, f.Dst)
		if drop {
			n.retx++
			n.eng.At(egressDone+retxBackoff(attempt), func() { n.transmit(f, attempt+1) })
			return
		}
	}

	inLane := pickLane(dst.ingressBusy)
	arrive := egressDone + n.p.PropDelay + extraDelay
	if b := dst.ingressBusy[inLane] + ser; b > arrive {
		arrive = b
	}
	dst.ingressBusy[inLane] = arrive
	dst.rxBytes += int64(n.p.WireBytes(f.PayloadBytes))

	if dst.handler == nil {
		panic(fmt.Sprintf("simnet: no handler attached at node %d", f.Dst))
	}
	n.eng.At1(arrive, n.deliverFn, f)
	if dupFrame {
		// Duplicate delivery of the same frame; receivers suppress it by Seq.
		n.eng.At1(arrive, n.deliverFn, f)
	}
}

// TxBytes reports total wire bytes transmitted by node id.
func (n *Network) TxBytes(id int) int64 { return n.ports[id].txBytes }

// RxBytes reports total wire bytes received by node id.
func (n *Network) RxBytes(id int) int64 { return n.ports[id].rxBytes }

// TxFrames reports total frames transmitted by node id.
func (n *Network) TxFrames(id int) int64 { return n.ports[id].txFrames }

// TxBusy reports node id's cumulative egress serialization time across its
// lanes (retransmitted frames occupy the wire again and count again);
// telemetry samplers diff successive values to derive windowed link
// utilization.
func (n *Network) TxBusy(id int) sim.Time { return n.ports[id].txBusy }

// Lanes reports the number of egress lanes per port.
func (n *Network) Lanes() int { return n.p.LinksPerNode }

// EgressBacklog reports how far beyond now the node's least-busy egress lane
// is committed; runtimes use it for backpressure.
func (n *Network) EgressBacklog(id int) sim.Time {
	lane := pickLane(n.ports[id].egressBusy)
	b := n.ports[id].egressBusy[lane] - n.eng.Now()
	if b < 0 {
		return 0
	}
	return b
}
