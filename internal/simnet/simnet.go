// Package simnet models the Ethernet fabric connecting the testbed servers:
// per-node full-duplex ports with one or two ganged links (2x50GbE LiquidIO,
// §5), cut-through switching with a fixed propagation delay, per-frame wire
// overhead, and serialization on both the sender's egress and the receiver's
// ingress so that incast workloads (e.g. the §3.4 write microbenchmark with
// 5 sources and 1 target) are bottlenecked at the receiver as on hardware.
package simnet

import (
	"fmt"

	"xenic/internal/model"
	"xenic/internal/sim"
)

// Frame is one Ethernet frame in flight. A frame carries one or more
// application messages (aggregated transmission packs many, §4.3.2);
// PayloadBytes is their total encoded size, which together with the
// per-frame overhead determines wire occupancy.
type Frame struct {
	Src, Dst     int
	PayloadBytes int
	// Flow is an opaque flow label (e.g. source core); receivers' hardware
	// flow engines steer frames to cores by it (§4.3.2).
	Flow int
	Msgs []any
}

// Handler receives frames delivered to a node, at the simulated instant the
// last bit arrives.
type Handler func(f *Frame)

// port is one node's attachment: N egress and N ingress lanes.
type port struct {
	egressBusy  []sim.Time
	ingressBusy []sim.Time
	handler     Handler
	txBytes     int64
	rxBytes     int64
	txFrames    int64
}

// Network is the fabric. It is not safe for concurrent use; all access must
// happen from simulation callbacks.
type Network struct {
	eng   *sim.Engine
	p     model.Params
	ports []port
}

// New creates a fabric with n node ports using parameters p.
func New(eng *sim.Engine, p model.Params, n int) *Network {
	nw := &Network{eng: eng, p: p, ports: make([]port, n)}
	for i := range nw.ports {
		nw.ports[i].egressBusy = make([]sim.Time, p.LinksPerNode)
		nw.ports[i].ingressBusy = make([]sim.Time, p.LinksPerNode)
	}
	return nw
}

// Nodes returns the number of attached ports.
func (n *Network) Nodes() int { return len(n.ports) }

// Attach installs the frame handler for node id. It must be called before
// any frame is sent to that node.
func (n *Network) Attach(id int, h Handler) { n.ports[id].handler = h }

// pickLane returns the index of the earliest-free lane.
func pickLane(busy []sim.Time) int {
	best := 0
	for i := 1; i < len(busy); i++ {
		if busy[i] < busy[best] {
			best = i
		}
	}
	return best
}

// Send transmits f from f.Src to f.Dst. The frame is serialized on the
// sender's least-busy egress lane, propagates, is serialized on the
// receiver's least-busy ingress lane, and is delivered to the destination
// handler when its last bit arrives. Send panics on malformed frames so
// protocol bugs surface immediately.
func (n *Network) Send(f *Frame) {
	if f.Src == f.Dst {
		panic(fmt.Sprintf("simnet: self-send at node %d", f.Src))
	}
	if f.Dst < 0 || f.Dst >= len(n.ports) {
		panic(fmt.Sprintf("simnet: bad destination %d", f.Dst))
	}
	if f.PayloadBytes <= 0 {
		panic("simnet: frame with non-positive payload")
	}
	if f.PayloadBytes > n.p.MTU {
		panic(fmt.Sprintf("simnet: frame payload %dB exceeds MTU %dB", f.PayloadBytes, n.p.MTU))
	}
	src, dst := &n.ports[f.Src], &n.ports[f.Dst]
	now := n.eng.Now()
	ser := n.p.SerializationDelay(n.p.WireBytes(f.PayloadBytes))

	lane := pickLane(src.egressBusy)
	start := now
	if src.egressBusy[lane] > start {
		start = src.egressBusy[lane]
	}
	egressDone := start + ser
	src.egressBusy[lane] = egressDone
	src.txBytes += int64(n.p.WireBytes(f.PayloadBytes))
	src.txFrames++

	inLane := pickLane(dst.ingressBusy)
	arrive := egressDone + n.p.PropDelay
	if b := dst.ingressBusy[inLane] + ser; b > arrive {
		arrive = b
	}
	dst.ingressBusy[inLane] = arrive
	dst.rxBytes += int64(n.p.WireBytes(f.PayloadBytes))

	h := dst.handler
	if h == nil {
		panic(fmt.Sprintf("simnet: no handler attached at node %d", f.Dst))
	}
	n.eng.At(arrive, func() { h(f) })
}

// TxBytes reports total wire bytes transmitted by node id.
func (n *Network) TxBytes(id int) int64 { return n.ports[id].txBytes }

// RxBytes reports total wire bytes received by node id.
func (n *Network) RxBytes(id int) int64 { return n.ports[id].rxBytes }

// TxFrames reports total frames transmitted by node id.
func (n *Network) TxFrames(id int) int64 { return n.ports[id].txFrames }

// EgressBacklog reports how far beyond now the node's least-busy egress lane
// is committed; runtimes use it for backpressure.
func (n *Network) EgressBacklog(id int) sim.Time {
	lane := pickLane(n.ports[id].egressBusy)
	b := n.ports[id].egressBusy[lane] - n.eng.Now()
	if b < 0 {
		return 0
	}
	return b
}
