package simnet

import (
	"testing"

	"xenic/internal/model"
	"xenic/internal/sim"
)

// BenchmarkFrameDelivery measures the steady-state cost of one frame's full
// life cycle — NewFrame, Send (egress + ingress serialization bookkeeping,
// delivery scheduling), delivery, Recycle. With the frame freelist and the
// closure-free delivery path this allocates nothing once warm.
func BenchmarkFrameDelivery(b *testing.B) {
	eng := sim.NewEngine(1)
	nw := New(eng, model.Default(), 2)
	delivered := 0
	nw.Attach(0, func(f *Frame) {})
	nw.Attach(1, func(f *Frame) {
		delivered++
		nw.Recycle(f)
	})
	msg := struct{ x int }{42}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := nw.NewFrame()
		f.Src, f.Dst, f.PayloadBytes, f.Flow = 0, 1, 256, 7
		f.Msgs = append(f.Msgs, &msg)
		nw.Send(f)
		eng.RunAll()
	}
	if delivered != b.N {
		b.Fatalf("delivered %d frames, want %d", delivered, b.N)
	}
}
