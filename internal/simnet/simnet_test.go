package simnet

import (
	"testing"

	"xenic/internal/model"
	"xenic/internal/sim"
)

func testParams() model.Params {
	p := model.Default()
	return p
}

func TestSendLatency(t *testing.T) {
	eng := sim.NewEngine(1)
	p := testParams()
	nw := New(eng, p, 2)
	var deliveredAt sim.Time
	nw.Attach(1, func(f *Frame) { deliveredAt = eng.Now() })
	nw.Attach(0, func(f *Frame) {})
	nw.Send(&Frame{Src: 0, Dst: 1, PayloadBytes: 256})
	eng.RunAll()
	want := p.SerializationDelay(p.WireBytes(256)) + p.PropDelay
	if deliveredAt != want {
		t.Fatalf("delivered at %v, want %v", deliveredAt, want)
	}
}

func TestEgressSerialization(t *testing.T) {
	eng := sim.NewEngine(1)
	p := testParams()
	p.LinksPerNode = 1
	nw := New(eng, p, 2)
	var times []sim.Time
	nw.Attach(1, func(f *Frame) { times = append(times, eng.Now()) })
	// Two frames at t=0 on one link must serialize back to back.
	nw.Send(&Frame{Src: 0, Dst: 1, PayloadBytes: 1000})
	nw.Send(&Frame{Src: 0, Dst: 1, PayloadBytes: 1000})
	eng.RunAll()
	if len(times) != 2 {
		t.Fatalf("delivered %d frames", len(times))
	}
	ser := p.SerializationDelay(p.WireBytes(1000))
	if got := times[1] - times[0]; got != ser {
		t.Fatalf("frame spacing %v, want serialization %v", got, ser)
	}
}

func TestTwoLinksDoubleThroughput(t *testing.T) {
	eng := sim.NewEngine(1)
	p := testParams()
	p.LinksPerNode = 2
	nw := New(eng, p, 2)
	var last sim.Time
	n := 0
	nw.Attach(1, func(f *Frame) { last = eng.Now(); n++ })
	for i := 0; i < 100; i++ {
		nw.Send(&Frame{Src: 0, Dst: 1, PayloadBytes: 1400})
	}
	eng.RunAll()
	ser := p.SerializationDelay(p.WireBytes(1400))
	// 100 frames over 2 lanes: 50 serializations per lane.
	want := 50*ser + p.PropDelay
	if n != 100 || last != want {
		t.Fatalf("n=%d last=%v, want 100 frames finishing at %v", n, last, want)
	}
}

func TestIncastIngressBottleneck(t *testing.T) {
	eng := sim.NewEngine(1)
	p := testParams()
	p.LinksPerNode = 1
	nw := New(eng, p, 6)
	n := 0
	var last sim.Time
	nw.Attach(0, func(f *Frame) { n++; last = eng.Now() })
	// 5 sources each send 20 frames at t=0: receiver ingress must serialize
	// all 100 even though each source's egress is uncontended.
	for src := 1; src <= 5; src++ {
		for i := 0; i < 20; i++ {
			nw.Send(&Frame{Src: src, Dst: 0, PayloadBytes: 1000})
		}
	}
	eng.RunAll()
	ser := p.SerializationDelay(p.WireBytes(1000))
	minFinish := 100 * ser // ingress-serialized lower bound
	if n != 100 {
		t.Fatalf("delivered %d", n)
	}
	if last < minFinish {
		t.Fatalf("incast finished at %v, faster than ingress bound %v", last, minFinish)
	}
}

func TestByteAccounting(t *testing.T) {
	eng := sim.NewEngine(1)
	p := testParams()
	nw := New(eng, p, 2)
	nw.Attach(1, func(f *Frame) {})
	nw.Send(&Frame{Src: 0, Dst: 1, PayloadBytes: 100})
	nw.Send(&Frame{Src: 0, Dst: 1, PayloadBytes: 200})
	eng.RunAll()
	want := int64(p.WireBytes(100) + p.WireBytes(200))
	if nw.TxBytes(0) != want || nw.RxBytes(1) != want || nw.TxFrames(0) != 2 {
		t.Fatalf("tx=%d rx=%d frames=%d, want %d bytes 2 frames",
			nw.TxBytes(0), nw.RxBytes(1), nw.TxFrames(0), want)
	}
}

func TestEgressBacklog(t *testing.T) {
	eng := sim.NewEngine(1)
	p := testParams()
	p.LinksPerNode = 1
	nw := New(eng, p, 2)
	nw.Attach(1, func(f *Frame) {})
	if nw.EgressBacklog(0) != 0 {
		t.Fatal("idle port has backlog")
	}
	nw.Send(&Frame{Src: 0, Dst: 1, PayloadBytes: 1400})
	if nw.EgressBacklog(0) != p.SerializationDelay(p.WireBytes(1400)) {
		t.Fatalf("backlog %v", nw.EgressBacklog(0))
	}
}

func TestMessagesRideFrames(t *testing.T) {
	eng := sim.NewEngine(1)
	nw := New(eng, testParams(), 2)
	var got []any
	nw.Attach(1, func(f *Frame) { got = f.Msgs })
	nw.Send(&Frame{Src: 0, Dst: 1, PayloadBytes: 64, Msgs: []any{"a", "b"}})
	eng.RunAll()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("msgs = %v", got)
	}
}

func TestSendPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	p := testParams()
	nw := New(eng, p, 2)
	nw.Attach(1, func(f *Frame) {})
	cases := []*Frame{
		{Src: 0, Dst: 0, PayloadBytes: 10},        // self send
		{Src: 0, Dst: 5, PayloadBytes: 10},        // bad dst
		{Src: 0, Dst: 1, PayloadBytes: 0},         // empty
		{Src: 0, Dst: 1, PayloadBytes: p.MTU + 1}, // oversized
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			nw.Send(f)
		}()
	}
}

func TestBandwidthSaturation(t *testing.T) {
	// Blast a 100Gbps (2x50) port for a simulated millisecond and check
	// achieved goodput is close to nominal.
	eng := sim.NewEngine(1)
	p := testParams()
	nw := New(eng, p, 2)
	delivered := 0
	nw.Attach(1, func(f *Frame) { delivered += f.PayloadBytes })
	payload := 1434 // full MTU wire frame
	var pump func()
	pump = func() {
		if eng.Now() >= sim.Millisecond {
			return
		}
		// Keep ~ 2 frames of backlog.
		for nw.EgressBacklog(0) < 2*p.SerializationDelay(p.WireBytes(payload)) {
			nw.Send(&Frame{Src: 0, Dst: 1, PayloadBytes: payload})
		}
		eng.After(100*sim.Nanosecond, pump)
	}
	eng.Defer(pump)
	eng.Run(2 * sim.Millisecond)
	goodput := float64(delivered) / sim.Millisecond.Seconds() // B/s over 1ms
	nominal := p.TotalBandwidth() * float64(payload) / float64(p.WireBytes(payload))
	if goodput < 0.95*nominal || goodput > 1.01*nominal {
		t.Fatalf("goodput %.2f GB/s, nominal %.2f GB/s", goodput/1e9, nominal/1e9)
	}
}
