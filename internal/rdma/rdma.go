// Package rdma models the Mellanox CX5 RDMA NIC used by the baseline
// systems (DrTM+H, DrTM+H-NC, FaSST, DrTM+R): one-sided READ / WRITE /
// ATOMIC verbs handled entirely by NIC hardware, and two-sided SEND/RECV
// message passing whose receive path consumes host CPU (§2.1).
//
// Timing follows the §3 characterization: one-sided verbs complete in
// ~3.5us for 256B payloads (§3.2), and small-verb throughput is capped at
// 13.5-15Mops/s per NIC even with doorbell batching (§3.4). Because the
// simulation is single-address-space, one-sided verbs take a closure that
// runs at the simulated instant the target NIC touches host memory — this
// is how baseline protocols read objects and CAS lock words "without
// involving the remote CPU".
package rdma

import (
	"fmt"

	"xenic/internal/hostrt"
	"xenic/internal/model"
	"xenic/internal/sim"
	"xenic/internal/simnet"
	"xenic/internal/wire"
)

// verbHeader approximates RoCE/IB transport headers beyond the Ethernet
// frame overhead already charged by the fabric.
const verbHeader = 30

// Completion is delivered into a host thread's inbox when a verb finishes;
// the thread runs Fn during its polling loop, charging completion-handling
// cost like any other message. It implements wire.Msg but is never
// marshaled.
type Completion struct {
	wire.Header
	Fn func()
}

// Type implements wire.Msg.
func (c *Completion) Type() wire.Type { return wire.TInvalid }

// WireSize implements wire.Msg; completions never cross the wire.
func (c *Completion) WireSize() int { return 0 }

// Marshal implements wire.Msg; completions never cross the wire.
func (c *Completion) Marshal(b []byte) []byte {
	panic("rdma: completion marshaled")
}

// kind distinguishes verb requests on the wire.
type kind uint8

const (
	kRead kind = iota
	kWrite
	kAtomic
	kSend
)

// request rides the fabric from initiator NIC to target NIC.
type request struct {
	kind    kind
	payload int // write payload or read length
	// sample runs at the target-NIC host-memory access instant for READ
	// (returns the response payload size) and ATOMIC (its bool result is
	// passed to done).
	sample      func() int
	apply       func() bool
	msg         wire.Msg // two-sided SEND payload
	src         int
	donePayload func(ok bool)
	respTo      *NIC
	thread      *hostrt.Thread

	// id is a per-initiator sequence number; under fault injection the
	// target suppresses re-executions and the initiator matches responses
	// to outstanding requests by it.
	id        uint64
	dst       int
	wireBytes int
}

// response rides back to the initiator NIC.
type response struct {
	payload int
	ok      bool
	req     *request
}

// Stats counts verbs by type, plus fault-mode transport events.
type Stats struct {
	Reads, Writes, Atomics, Sends int64
	BytesOut                      int64
	// Fault-mode counters: RC-transport timeouts that retransmitted a verb,
	// and duplicate requests/responses suppressed by sequence matching.
	VerbTimeouts, DupRequests, DupResponses int64
}

// NIC is one server's RDMA NIC.
type NIC struct {
	eng  *sim.Engine
	p    model.Params
	node int
	nw   *simnet.Network
	host *hostrt.Host

	issueBusy sim.Time // initiator-side verb pacing (doorbell-batched cap)
	procBusy  sim.Time // target-side verb pacing

	// Fault-mode state (nil/zero unless SetFaultTimeout was called): the
	// verbs' RC transport times out one-sided requests and retransmits them
	// with capped exponential backoff; the target deduplicates executions
	// by request id and the initiator matches responses to outstanding
	// requests so no verb side effect runs twice.
	verbTimeout sim.Time
	nextID      uint64
	outstanding map[uint64]*request
	seen        []map[uint64]struct{} // executed request ids, per source
	maxID       []uint64

	stats Stats
}

// New attaches an RDMA NIC for node to the fabric. host receives two-sided
// SENDs and verb completions.
func New(eng *sim.Engine, p model.Params, nw *simnet.Network, node int, host *hostrt.Host) *NIC {
	n := &NIC{eng: eng, p: p, node: node, nw: nw, host: host}
	nw.Attach(node, n.onFrame)
	return n
}

// Node returns the NIC's node id.
func (n *NIC) Node() int { return n.node }

// SetFaultTimeout enables fault-mode operation with verb timeout d: the NIC
// deduplicates requests and responses and retransmits timed-out one-sided
// verbs with capped exponential backoff (doubling from d, capped at 8d).
// Two-sided SENDs are never retransmitted — the fabric's reliable transport
// delivers them exactly once.
func (n *NIC) SetFaultTimeout(d sim.Time) {
	n.verbTimeout = d
	n.outstanding = map[uint64]*request{}
	n.seen = make([]map[uint64]struct{}, n.nw.Nodes())
	n.maxID = make([]uint64, n.nw.Nodes())
}

// Stats returns a copy of the verb counters.
func (n *NIC) Stats() Stats { return n.stats }

// gap is the minimum inter-verb spacing from the small-verb rate cap.
func (n *NIC) gap() sim.Time { return sim.Time(1e12 / n.p.RDMAMsgRate) }

// pace reserves an issue slot at or after t, returning the start instant.
func pace(busy *sim.Time, t, gap sim.Time) sim.Time {
	start := t
	if *busy > start {
		start = *busy
	}
	*busy = start + gap
	return start
}

// Read issues a one-sided READ of bytes from dst's host memory. sample runs
// at the target access instant (so the caller snapshots remote state);
// done is delivered to the issuing thread's inbox afterwards.
func (n *NIC) Read(t *hostrt.Thread, dst, bytes int, sample func(), done func()) {
	n.stats.Reads++
	n.verb(t, dst, &request{kind: kRead, payload: bytes,
		sample: func() int {
			if sample != nil {
				sample()
			}
			return bytes
		},
		donePayload: func(bool) { done() }})
}

// ReadDyn issues a one-sided READ whose response size is determined at the
// target access instant (sample returns the byte count — e.g. the object
// found in a hash bucket). done is delivered to the issuing thread.
func (n *NIC) ReadDyn(t *hostrt.Thread, dst int, sample func() int, done func()) {
	n.stats.Reads++
	n.verb(t, dst, &request{kind: kRead,
		sample:      sample,
		donePayload: func(bool) { done() }})
}

// Write issues a one-sided WRITE of bytes into dst's host memory. apply
// runs at the target access instant; done is delivered after the ack.
func (n *NIC) Write(t *hostrt.Thread, dst, bytes int, apply func(), done func()) {
	n.stats.Writes++
	n.verb(t, dst, &request{kind: kWrite, payload: bytes,
		apply: func() bool {
			if apply != nil {
				apply()
			}
			return true
		},
		donePayload: func(bool) { done() }})
}

// Atomic issues a one-sided compare-and-swap style verb; apply runs at the
// target access instant and its result reaches done. DrTM+R uses this for
// remote locking.
func (n *NIC) Atomic(t *hostrt.Thread, dst int, apply func() bool, done func(ok bool)) {
	n.stats.Atomics++
	n.verb(t, dst, &request{kind: kAtomic, payload: 8, apply: apply, donePayload: done})
}

// Send issues a two-sided SEND delivering m into dst's host inbox (FaSST
// RPCs). No completion is delivered to the sender; RPC responses are
// application-level Sends in the other direction.
func (n *NIC) Send(t *hostrt.Thread, dst int, m wire.Msg) {
	n.stats.Sends++
	n.verb(t, dst, &request{kind: kSend, payload: m.WireSize(), msg: m})
}

func (n *NIC) verb(t *hostrt.Thread, dst int, r *request) {
	if dst == n.node {
		panic("rdma: verb to self")
	}
	p := n.p
	t.Charge(p.RDMAIssue)
	r.src = n.node
	r.respTo = n
	r.thread = t
	n.nextID++
	r.id = n.nextID
	r.dst = dst
	now := t.Now()
	start := pace(&n.issueBusy, now, n.gap())
	wireBytes := verbHeader
	if r.kind == kWrite || r.kind == kSend {
		wireBytes += r.payload
	}
	r.wireBytes = wireBytes
	n.stats.BytesOut += int64(wireBytes)
	n.eng.At(start+p.RDMANICProc, func() {
		n.sendFrames(dst, wireBytes, r)
		if n.verbTimeout > 0 && r.kind != kSend {
			n.outstanding[r.id] = r
			n.armVerbTimer(r, n.verbTimeout)
		}
	})
}

// armVerbTimer retransmits r if no response arrived within d, re-arming
// with the delay doubled up to 8x the base timeout. The fabric's reliable
// transport guarantees eventual delivery between live endpoints, so the
// timer only fires on long tails (fault delays, transport backoff); the
// target suppresses duplicate executions by request id.
func (n *NIC) armVerbTimer(r *request, d sim.Time) {
	n.eng.After(d, func() {
		if _, ok := n.outstanding[r.id]; !ok {
			return
		}
		n.stats.VerbTimeouts++
		n.stats.BytesOut += int64(r.wireBytes)
		n.sendFrames(r.dst, r.wireBytes, r)
		next := 2 * d
		if ceil := 8 * n.verbTimeout; next > ceil {
			next = ceil
		}
		n.armVerbTimer(r, next)
	})
}

// sendFrames transmits bytes to dst, fragmenting at the MTU; the payload
// object rides the final fragment (last-bit delivery).
func (n *NIC) sendFrames(dst, bytes int, payload any) {
	for bytes > n.p.MTU {
		frag := n.nw.NewFrame()
		frag.Src, frag.Dst, frag.PayloadBytes, frag.Flow = n.node, dst, n.p.MTU, n.node
		n.nw.Send(frag)
		bytes -= n.p.MTU
	}
	f := n.nw.NewFrame()
	f.Src, f.Dst, f.PayloadBytes, f.Flow = n.node, dst, bytes, n.node
	if payload != nil {
		f.Msgs = append(f.Msgs, payload)
	}
	n.nw.Send(f)
}

// onFrame handles arriving verb requests and responses at NIC hardware.
func (n *NIC) onFrame(f *simnet.Frame) {
	for _, raw := range f.Msgs {
		switch v := raw.(type) {
		case *request:
			n.handleRequest(v)
		case *response:
			n.handleResponse(v)
		default:
			panic(fmt.Sprintf("rdma: unexpected frame content %T", raw))
		}
	}
	n.nw.Recycle(f)
}

func (n *NIC) handleRequest(r *request) {
	if n.seen != nil && n.dupRequest(r) {
		n.stats.DupRequests++
		return
	}
	p := n.p
	start := pace(&n.procBusy, n.eng.Now(), n.gap())
	switch r.kind {
	case kSend:
		// Two-sided: the NIC DMA-writes the message into a receive buffer
		// in host memory; the host polls it out.
		n.eng.At(start+p.RDMANICProc+p.RDMAHostWrite, func() {
			n.host.Deliver(r.src, []wire.Msg{r.msg})
		})
		return
	case kRead:
		n.eng.At(start+p.RDMANICProc+p.RDMAHostRead, func() {
			bytes := r.sample()
			n.respond(r, &response{payload: bytes, ok: true, req: r}, verbHeader+bytes)
		})
	case kWrite:
		n.eng.At(start+p.RDMANICProc+p.RDMAHostWrite, func() {
			ok := r.apply()
			n.respond(r, &response{ok: ok, req: r}, verbHeader)
		})
	case kAtomic:
		n.eng.At(start+p.RDMANICProc+p.RDMAHostRead+p.RDMAAtomicExtra, func() {
			ok := r.apply()
			n.respond(r, &response{payload: 8, ok: ok, req: r}, verbHeader+8)
		})
	}
}

func (n *NIC) respond(r *request, resp *response, wireBytes int) {
	n.stats.BytesOut += int64(wireBytes)
	n.sendFrames(r.src, wireBytes, resp)
}

// dupRequest records r as executed, reporting whether it already was. The
// per-source seen set is pruned by id window once it grows large.
func (n *NIC) dupRequest(r *request) bool {
	s := n.seen[r.src]
	if s == nil {
		s = map[uint64]struct{}{}
		n.seen[r.src] = s
	}
	if _, ok := s[r.id]; ok {
		return true
	}
	s[r.id] = struct{}{}
	if r.id > n.maxID[r.src] {
		n.maxID[r.src] = r.id
	}
	if len(s) > 8192 {
		floor := n.maxID[r.src] - 4096
		for id := range s {
			if id < floor {
				delete(s, id)
			}
		}
	}
	return false
}

func (n *NIC) handleResponse(resp *response) {
	p := n.p
	r := resp.req
	if n.outstanding != nil {
		if _, ok := n.outstanding[r.id]; !ok {
			n.stats.DupResponses++
			return
		}
		delete(n.outstanding, r.id)
	}
	n.eng.After(p.RDMANICProc+p.RDMACompletion, func() {
		if r.donePayload != nil {
			r.thread.Deliver(n.node, &Completion{
				Fn: func() { r.donePayload(resp.ok) },
			})
		}
	})
}
