package rdma

import (
	"testing"

	"xenic/internal/hostrt"
	"xenic/internal/model"
	"xenic/internal/sim"
	"xenic/internal/simnet"
	"xenic/internal/wire"
)

// pair builds two hosts with RDMA NICs. The returned handler slot receives
// two-sided messages at node 1.
func pair(t *testing.T) (*sim.Engine, *hostrt.Host, *hostrt.Host, *NIC, *NIC, model.Params) {
	t.Helper()
	eng := sim.NewEngine(1)
	p := model.Default()
	nw := simnet.New(eng, p, 2)
	h0 := hostrt.New(eng, p, 0, 2, 1)
	h1 := hostrt.New(eng, p, 1, 2, 1)
	n0 := New(eng, p, nw, 0, h0)
	n1 := New(eng, p, nw, 1, h1)
	for _, h := range []*hostrt.Host{h0, h1} {
		h.OnTransmit(func(tt *hostrt.Thread, ms []wire.Msg) {})
		h.OnMessage(func(tt *hostrt.Thread, src int, m wire.Msg) {
			if c, ok := m.(*Completion); ok {
				c.Fn()
			}
		})
	}
	return eng, h0, h1, n0, n1, p
}

func TestWriteRTTMatchesPaper(t *testing.T) {
	eng, h0, _, n0, _, _ := pair(t)
	var start, end sim.Time
	th := h0.Thread(0)
	h0.OnIdle(func(tt *hostrt.Thread) bool {
		if tt != th || start != 0 {
			return false
		}
		start = tt.Now()
		n0.Write(tt, 1, 256, nil, func() { end = eng.Now() })
		return true
	})
	h0.WakeAll()
	eng.Run(sim.Millisecond)
	if end == 0 {
		t.Fatal("write never completed")
	}
	rtt := end - start
	// §3.2: RDMA WRITE median ~3.5us for 256B. Accept 2.8-4.2us.
	if rtt < 2800*sim.Nanosecond || rtt > 4200*sim.Nanosecond {
		t.Fatalf("WRITE RTT = %v, want ~3.5us", rtt)
	}
}

func TestReadSamplesAtTarget(t *testing.T) {
	eng, h0, _, n0, _, _ := pair(t)
	remote := 100
	var sampled int
	done := false
	issued := false
	h0.OnIdle(func(tt *hostrt.Thread) bool {
		if tt.ID() != 0 || issued {
			return false
		}
		issued = true
		n0.Read(tt, 1, 64, func() { sampled = remote }, func() { done = true })
		return true
	})
	// Remote value changes after the verb will have touched memory.
	eng.At(10*sim.Microsecond, func() { remote = 999 })
	h0.WakeAll()
	eng.Run(sim.Millisecond)
	if !done {
		t.Fatal("read never completed")
	}
	if sampled != 100 {
		t.Fatalf("sampled %d, want the value at access time (100)", sampled)
	}
}

func TestAtomicResult(t *testing.T) {
	eng, h0, _, n0, _, _ := pair(t)
	locked := false
	results := []bool{}
	issued := 0
	h0.OnIdle(func(tt *hostrt.Thread) bool {
		if tt.ID() != 0 || issued >= 2 {
			return false
		}
		issued++
		n0.Atomic(tt, 1, func() bool {
			if locked {
				return false
			}
			locked = true
			return true
		}, func(ok bool) { results = append(results, ok) })
		return true
	})
	h0.WakeAll()
	eng.Run(sim.Millisecond)
	if len(results) != 2 || !results[0] || results[1] {
		t.Fatalf("CAS results = %v, want [true false]", results)
	}
}

func TestTwoSidedSendDeliversToHost(t *testing.T) {
	eng, h0, h1, n0, n1, _ := pair(t)
	var got wire.Msg
	var replied wire.Msg
	h1.OnMessage(func(tt *hostrt.Thread, src int, m wire.Msg) {
		if c, ok := m.(*Completion); ok {
			c.Fn()
			return
		}
		got = m
		tt.Charge(400 * sim.Nanosecond) // RPC handler work
		n1.Send(tt, src, &wire.ExecuteResp{Header: wire.Header{TxnID: 9, Src: 1}})
	})
	h0.OnMessage(func(tt *hostrt.Thread, src int, m wire.Msg) {
		if c, ok := m.(*Completion); ok {
			c.Fn()
			return
		}
		replied = m
	})
	sent := false
	var start, end sim.Time
	h0.OnIdle(func(tt *hostrt.Thread) bool {
		if tt.ID() != 0 || sent {
			return false
		}
		sent = true
		start = tt.Now()
		n0.Send(tt, 1, &wire.Execute{Header: wire.Header{TxnID: 9, Src: 0}, ReadKeys: []uint64{1}})
		return true
	})
	h0.WakeAll()
	var doneAt sim.Time
	eng.Ticker(sim.Microsecond, func() bool {
		if replied != nil && doneAt == 0 {
			doneAt = eng.Now()
		}
		return eng.Now() < 100*sim.Microsecond
	})
	eng.Run(sim.Millisecond)
	if got == nil || replied == nil {
		t.Fatal("RPC did not complete")
	}
	end = doneAt
	rtt := end - start
	// Two-sided RPC involves host CPU both ends: slower than one-sided
	// (§3.2) — expect >4us but well under 15us.
	if rtt < 4*sim.Microsecond || rtt > 15*sim.Microsecond {
		t.Fatalf("two-sided RPC RTT = %v", rtt)
	}
}

func TestRateCapBindsUnderLoad(t *testing.T) {
	// Enough issuing threads that the NIC cap, not host CPU, binds —
	// matching the §3.4 doorbell-batched measurement methodology.
	eng := sim.NewEngine(1)
	p := model.Default()
	nw := simnet.New(eng, p, 2)
	h0 := hostrt.New(eng, p, 0, 12, 1)
	h1 := hostrt.New(eng, p, 1, 2, 1)
	n0 := New(eng, p, nw, 0, h0)
	New(eng, p, nw, 1, h1)
	for _, h := range []*hostrt.Host{h0, h1} {
		h.OnTransmit(func(tt *hostrt.Thread, ms []wire.Msg) {})
		h.OnMessage(func(tt *hostrt.Thread, src int, m wire.Msg) {
			if c, ok := m.(*Completion); ok {
				c.Fn()
			}
		})
	}
	completed := 0
	outstanding := make([]int, 12)
	h0.OnIdle(func(tt *hostrt.Thread) bool {
		did := false
		for outstanding[tt.ID()] < 64 {
			outstanding[tt.ID()]++
			did = true
			id := tt.ID()
			n0.Write(tt, 1, 16, nil, func() { completed++; outstanding[id]-- })
		}
		return did
	})
	h0.WakeAll()
	dur := 5 * sim.Millisecond
	eng.Run(dur)
	rate := float64(completed) / dur.Seconds()
	if rate > p.RDMAMsgRate*1.05 {
		t.Fatalf("achieved %.1fM verbs/s, above the %.1fM cap", rate/1e6, p.RDMAMsgRate/1e6)
	}
	if rate < p.RDMAMsgRate*0.5 {
		t.Fatalf("achieved only %.1fM verbs/s", rate/1e6)
	}
}

func TestSelfVerbPanics(t *testing.T) {
	_, h0, _, n0, _, _ := pair(t)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	n0.Write(h0.Thread(0), 0, 16, nil, func() {})
}

func TestStats(t *testing.T) {
	eng, h0, _, n0, _, _ := pair(t)
	issued := false
	h0.OnIdle(func(tt *hostrt.Thread) bool {
		if tt.ID() != 0 || issued {
			return false
		}
		issued = true
		n0.Read(tt, 1, 64, nil, func() {})
		n0.Write(tt, 1, 64, nil, func() {})
		n0.Atomic(tt, 1, func() bool { return true }, func(bool) {})
		return true
	})
	h0.WakeAll()
	eng.Run(sim.Millisecond)
	s := n0.Stats()
	if s.Reads != 1 || s.Writes != 1 || s.Atomics != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.BytesOut == 0 {
		t.Fatal("no bytes accounted")
	}
}
