// Package baseline implements the four comparison systems of §5.1 over the
// simulated CX5 RDMA NIC, sharing the OCC commit protocol structure of
// §2.2.1 but differing in how remote operations are performed:
//
//   - DrTM+H: the hybrid design — one-sided READs for execution and
//     validation reads (with a coordinator-side remote address cache),
//     one-sided WRITEs for backup logging, two-sided RPCs for locking and
//     commit writes.
//   - DrTM+H NC: DrTM+H without the address cache; execution reads walk
//     the chained-bucket hash structure with one-sided READs, paying read
//     amplification and extra roundtrips (Table 2).
//   - FaSST: two-sided RPCs for every remote operation, consolidating each
//     shard's reads and locks into one RPC; remote CPU handles all work.
//   - DrTM+R: one-sided-only — ATOMIC compare-and-swap locks on every key
//     (read keys too; it locks instead of validating), READs for values,
//     WRITEs for logging and commit.
//
// All four store objects in DrTM+H's chained-bucket hash table and keep
// lock words in host memory, accessed either by the RDMA NIC (one-sided)
// or by host RPC handlers (two-sided).
package baseline

import (
	"fmt"

	"xenic/internal/fault"
	"xenic/internal/membership"
	"xenic/internal/metrics"
	"xenic/internal/model"
	"xenic/internal/sim"
	"xenic/internal/store/btree"
	"xenic/internal/store/chained"
	"xenic/internal/txnmodel"
	"xenic/internal/wire"
)

// System selects which baseline to run.
type System int

const (
	DrTMH System = iota
	DrTMHNC
	FaSST
	DrTMR
)

func (s System) String() string {
	switch s {
	case DrTMH:
		return "DrTM+H"
	case DrTMHNC:
		return "DrTM+H NC"
	case FaSST:
		return "FaSST"
	case DrTMR:
		return "DrTM+R"
	}
	return fmt.Sprintf("system(%d)", int(s))
}

// objHeader is the per-object header read alongside values by one-sided
// operations: key, version, lock word.
const objHeader = 24

// bucketB is the chained-bucket size (DrTM+H's structure).
const bucketB = 8

// Config assembles a baseline cluster.
type Config struct {
	Nodes       int
	Replication int
	// Threads is the number of symmetric host threads per node; each
	// coordinates transactions, serves RPCs, and applies logs (FaSST's
	// symmetric model, also used by DrTM+H's evaluation).
	Threads     int
	Outstanding int
	MaxRetries  int
	System      System
	Params      model.Params
	Seed        int64
	// Faults optionally attaches a deterministic fault plan: frame
	// drop/duplication/delay and transient partitions at the fabric, plus
	// RDMA verb timeouts. Crash and stall faults are rejected — the
	// baselines track membership epochs but have no recovery path to heal
	// a dead replica with.
	Faults *fault.Plan
	// Membership tunes the lease service. Baselines run the same cluster
	// manager as Xenic — leases, epochs, views — so epoch-stamped
	// comparisons in the harness stay apples-to-apples; with no crash
	// faults the epoch stays 0 unless a partition lapses a lease.
	Membership membership.Config
}

// DefaultConfig mirrors the testbed.
func DefaultConfig(sys System) Config {
	return Config{
		Nodes:       6,
		Replication: 3,
		Threads:     16,
		Outstanding: 8,
		MaxRetries:  64,
		System:      sys,
		Params:      model.Default(),
		Seed:        1,
		Membership:  membership.DefaultConfig(),
	}
}

func (c Config) validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("baseline: need >=2 nodes")
	}
	if c.Replication < 1 || c.Replication > c.Nodes {
		return fmt.Errorf("baseline: bad replication %d", c.Replication)
	}
	if c.Threads < 1 || c.Outstanding < 1 {
		return fmt.Errorf("baseline: bad thread/window config")
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(c.Nodes); err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
		if len(c.Faults.Crashes) > 0 || len(c.Faults.CoreStalls) > 0 || len(c.Faults.DMAStalls) > 0 {
			return fmt.Errorf("baseline: fault plan includes crash/stall faults; baselines support only network faults")
		}
	}
	return nil
}

func (c Config) backupsOf(s int) []int {
	out := make([]int, 0, c.Replication-1)
	for i := 1; i < c.Replication; i++ {
		out = append(out, (s+i)%c.Nodes)
	}
	return out
}

// shardData is one replica of one shard in the baseline layout.
type shardData struct {
	hash  *chained.Table
	btree *btree.Tree
	place txnmodel.Placement
}

func newShardData(spec txnmodel.StoreSpec, place txnmodel.Placement) *shardData {
	roots := spec.HashSlots / bucketB
	if roots < 1 {
		roots = 1
	}
	return &shardData{
		hash:  chained.New(roots, bucketB),
		btree: btree.New(),
		place: place,
	}
}

func (s *shardData) read(key uint64) ([]byte, uint64, bool) {
	if s.place.IsBTree(key) {
		it, ok := s.btree.Get(key)
		if !ok {
			return nil, 0, false
		}
		return it.Value, it.Version, true
	}
	r := s.hash.Lookup(key)
	if !r.Found {
		return nil, 0, false
	}
	return r.Value, r.Version, true
}

// lookupCost reports the remote-read cost of key in this replica: number
// of sequential one-sided READs and the bytes of each.
func (s *shardData) lookupCost(key uint64) (roundtrips, bytesPer int) {
	r := s.hash.Lookup(key)
	return r.Roundtrips, bucketB * (objHeader + valueSizeHint(r.Value))
}

// valueSizeHint sizes unread slots in a bucket by the found value (the
// table stores fixed-size objects per workload).
func valueSizeHint(v []byte) int {
	if len(v) == 0 {
		return 16
	}
	return len(v)
}

// apply is version-guarded so records may land out of order: per-key
// versions are monotonic under write locks.
func (s *shardData) apply(key uint64, value []byte, version uint64) {
	if s.place.IsBTree(key) {
		if it, ok := s.btree.Get(key); ok && it.Version >= version {
			return
		}
		s.btree.Insert(key, value, version)
		return
	}
	if r := s.hash.Lookup(key); r.Found && r.Version >= version {
		return
	}
	s.hash.Insert(key, value, version)
}

// Stats aggregates one node's outcomes (same shape as core's).
type Stats struct {
	Committed           int64
	Measured            int64
	Failed              int64
	Aborts              int64
	UpdateKeysCommitted int64
	Latency             *metrics.Histogram
	// AbortReasons breaks Aborts down by wire.Status.
	AbortReasons [wire.NumStatuses]int64
}

// logRecord is a backup log entry.
type logRecord struct {
	txn    uint64
	shard  int
	writes []kvw
}

type kvw struct {
	key     uint64
	version uint64
	value   []byte
}

func recordBytes(writes []kvw) int {
	n := 18
	for _, w := range writes {
		n += objHeader + len(w.value)
	}
	return n
}

// Retry backoff: capped exponential, drawn from a window that doubles from
// backoffBase up to backoffMax (see sim.Backoff).
const (
	backoffBase = 1 * sim.Microsecond
	backoffMax  = 16 * sim.Microsecond
)
