package baseline

import (
	"encoding/binary"
	"math/rand"
	"testing"

	"xenic/internal/sim"
	"xenic/internal/txnmodel"
	"xenic/internal/wire"
)

// counterGen mirrors the core package's micro-workload: increment counters
// via RMW transactions, plus read-only transactions.
type counterGen struct {
	keys     int
	keysPer  int
	readFrac float64
}

type modPlace struct{ nodes int }

func (p modPlace) ShardOf(key uint64) int  { return int(key % uint64(p.nodes)) }
func (p modPlace) IsBTree(key uint64) bool { return false }

const fnIncr = 1

func (g *counterGen) Name() string { return "counter" }
func (g *counterGen) Spec() txnmodel.StoreSpec {
	return txnmodel.StoreSpec{HashSlots: 4096, InlineValueSize: 16, MaxDisplacement: 16, NICCacheObjects: 2048}
}
func (g *counterGen) Placement(nodes, replication int) txnmodel.Placement {
	return modPlace{nodes: nodes}
}
func (g *counterGen) Register(r *txnmodel.Registry) {
	r.Register(&txnmodel.ExecFunc{
		ID:       fnIncr,
		HostCost: 200 * sim.Nanosecond,
		Run: func(state []byte, reads []wire.KV) txnmodel.ExecResult {
			var res txnmodel.ExecResult
			nUpd := int(binary.LittleEndian.Uint16(state))
			for _, kv := range reads[len(reads)-nUpd:] {
				old := uint64(0)
				if len(kv.Value) >= 8 {
					old = binary.LittleEndian.Uint64(kv.Value)
				}
				nv := make([]byte, 8)
				binary.LittleEndian.PutUint64(nv, old+1)
				res.Writes = append(res.Writes, wire.KV{Key: kv.Key, Value: nv})
			}
			return res
		},
	})
}
func (g *counterGen) Populate(shard, nodes int, emit func(uint64, []byte)) {
	zero := make([]byte, 8)
	for k := shard; k < g.keys; k += nodes {
		emit(uint64(k), zero)
	}
}
func (g *counterGen) Measure(d *txnmodel.TxnDesc) bool { return true }

func (g *counterGen) Next(node, thread int, rng *rand.Rand) *txnmodel.TxnDesc {
	d := &txnmodel.TxnDesc{}
	seen := map[uint64]bool{}
	n := 1 + rng.Intn(g.keysPer)
	readOnly := rng.Float64() < g.readFrac
	for i := 0; i < n; i++ {
		k := uint64(rng.Intn(g.keys))
		if seen[k] {
			continue
		}
		seen[k] = true
		if readOnly {
			d.ReadKeys = append(d.ReadKeys, k)
		} else {
			d.UpdateKeys = append(d.UpdateKeys, k)
		}
	}
	if !readOnly {
		d.FnID = fnIncr
		st := make([]byte, 2)
		binary.LittleEndian.PutUint16(st, uint16(len(d.UpdateKeys)))
		d.State = st
	}
	return d
}

func runSystem(t *testing.T, sys System, dur sim.Time) *Cluster {
	t.Helper()
	g := &counterGen{keys: 600, keysPer: 3, readFrac: 0.3}
	cfg := DefaultConfig(sys)
	cfg.Nodes = 4
	cfg.Threads = 4
	cfg.Outstanding = 4
	cl, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	cl.Start()
	cl.Run(dur)
	if !cl.Drain(500 * sim.Millisecond) {
		t.Fatalf("%v did not quiesce", sys)
	}
	var sum, expected uint64
	for k := 0; k < g.keys; k++ {
		v, _, ok := cl.ReadKey(uint64(k))
		if !ok {
			t.Fatalf("key %d missing", k)
		}
		sum += binary.LittleEndian.Uint64(v)
	}
	var committed int64
	for _, n := range cl.nodes {
		expected += uint64(n.stats.UpdateKeysCommitted)
		committed += n.stats.Committed
	}
	if sum != expected {
		t.Fatalf("%v: counter sum %d != committed increments %d", sys, sum, expected)
	}
	if committed == 0 {
		t.Fatalf("%v committed nothing", sys)
	}
	if err := cl.ReplicasConsistent(); err != nil {
		t.Fatalf("%v: %v", sys, err)
	}
	return cl
}

func TestDrTMHCounters(t *testing.T)   { runSystem(t, DrTMH, 10*sim.Millisecond) }
func TestDrTMHNCCounters(t *testing.T) { runSystem(t, DrTMHNC, 10*sim.Millisecond) }
func TestFaSSTCounters(t *testing.T)   { runSystem(t, FaSST, 10*sim.Millisecond) }
func TestDrTMRCounters(t *testing.T)   { runSystem(t, DrTMR, 10*sim.Millisecond) }

func TestSystemStrings(t *testing.T) {
	if DrTMH.String() != "DrTM+H" || FaSST.String() != "FaSST" ||
		DrTMHNC.String() != "DrTM+H NC" || DrTMR.String() != "DrTM+R" {
		t.Fatal("bad system names")
	}
	if System(9).String() == "" {
		t.Fatal("unknown system empty")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() int64 {
		g := &counterGen{keys: 300, keysPer: 3, readFrac: 0.3}
		cfg := DefaultConfig(DrTMH)
		cfg.Nodes = 4
		cfg.Threads = 4
		cl, err := New(cfg, g)
		if err != nil {
			t.Fatal(err)
		}
		cl.Start()
		cl.Run(3 * sim.Millisecond)
		cl.Drain(100 * sim.Millisecond)
		var committed int64
		for _, n := range cl.nodes {
			committed += n.stats.Committed
		}
		return committed
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
}

func TestMeasureProducesResults(t *testing.T) {
	g := &counterGen{keys: 2000, keysPer: 3, readFrac: 0.5}
	cfg := DefaultConfig(FaSST)
	cfg.Nodes = 4
	cfg.Threads = 6
	cl, err := New(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	res := cl.Measure(2*sim.Millisecond, 10*sim.Millisecond)
	if res.PerServerTput <= 0 || res.Median <= 0 {
		t.Fatalf("empty result: %+v", res)
	}
}

func TestConfigValidation(t *testing.T) {
	g := &counterGen{keys: 100, keysPer: 2}
	bad := []Config{
		{Nodes: 1, Replication: 1, Threads: 1, Outstanding: 1},
		{Nodes: 4, Replication: 5, Threads: 1, Outstanding: 1},
		{Nodes: 4, Replication: 2, Threads: 0, Outstanding: 1},
	}
	for i, cfg := range bad {
		cfg.Params = DefaultConfig(DrTMH).Params
		if _, err := New(cfg, g); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}
