package baseline

import (
	"fmt"

	"xenic/internal/hostrt"
	"xenic/internal/sim"
	"xenic/internal/txnmodel"
	"xenic/internal/wire"
)

// btxn is one in-flight transaction on a baseline coordinator thread.
type btxn struct {
	id        uint64
	desc      *txnmodel.TxnDesc
	node      *Node
	start     sim.Time
	retries   int
	notBefore sim.Time
	done      func(ok bool) // open-loop completion callback; nil when closed-loop

	phase     bphase
	reads     map[uint64]wire.KV
	readOrder []uint64
	writes    []wire.KV
	locked    map[int][]uint64
	pending   int
	failed    wire.Status
	stash     []wire.KV // fn output awaiting a relock round
	hasStash  bool
	rounds    int
	// lockWave holds DrTM+H's deferred per-shard lock RPCs, issued once
	// the one-sided value reads complete ("retrieve the value, then
	// lock", §5.2).
	lockWave map[int][]uint64
}

type bphase uint8

const (
	bExecute bphase = iota
	bValidate
	bLog
	bCommit
)

func (tx *btxn) reset() {
	tx.phase = bExecute
	tx.reads = nil
	tx.readOrder = nil
	tx.writes = nil
	tx.locked = nil
	tx.pending = 0
	tx.failed = wire.StatusOK
	tx.stash = nil
	tx.hasStash = false
	tx.rounds = 0
	tx.lockWave = nil
}

// launch starts (or restarts) a transaction attempt.
func (n *Node) launch(t *hostrt.Thread, at *appThread, tx *btxn) {
	d := tx.desc
	tx.reads = map[uint64]wire.KV{}
	tx.locked = map[int][]uint64{}
	seen := map[uint64]bool{}
	for _, k := range append(append([]uint64{}, d.ReadKeys...), d.WriteKeys()...) {
		if !seen[k] {
			seen[k] = true
			tx.readOrder = append(tx.readOrder, k)
		}
	}
	n.execPhase(t, tx, d.ReadKeys, d.WriteKeys())
}

// execPhase performs the execution-phase remote operations for the given
// keys, per the selected system's operation repertoire.
func (n *Node) execPhase(t *hostrt.Thread, tx *btxn, readKeys, lockKeys []uint64) {
	tx.phase = bExecute
	sys := n.cl.cfg.System

	type part struct{ reads, locks []uint64 }
	parts := map[int]*part{}
	var order []int
	seen := map[uint64]bool{}
	add := func(k uint64, lock bool) {
		if seen[k] {
			return // duplicate key in the descriptor (lock wins below)
		}
		seen[k] = true
		s := n.shardOf(k)
		p, ok := parts[s]
		if !ok {
			p = &part{}
			parts[s] = p
			order = append(order, s)
		}
		if lock {
			p.locks = append(p.locks, k)
		} else {
			p.reads = append(p.reads, k)
		}
	}
	// Locks first so a key both read and written is locked, not just read.
	for _, k := range lockKeys {
		add(k, true)
	}
	for _, k := range readKeys {
		add(k, false)
	}
	sortInts(order)

	// Count pending completion units first so inline local completion
	// cannot finish the phase before all ops are issued.
	units := 0
	for _, s := range order {
		p := parts[s]
		if s == n.id {
			units++
			continue
		}
		switch sys {
		case FaSST:
			units++
		case DrTMH, DrTMHNC:
			// One-sided READ per key; the lock RPCs form a second wave
			// once the values (and versions) are in.
			units += len(p.reads) + len(p.locks)
		case DrTMR:
			units += len(p.reads) + len(p.locks)
		}
	}
	tx.pending = units
	if units == 0 {
		n.afterExec(t, tx)
		return
	}

	for _, s := range order {
		p := parts[s]
		if s == n.id {
			n.localExec(t, tx, p.reads, p.locks)
			continue
		}
		switch sys {
		case FaSST:
			n.rnic.Send(t, s, &wire.Execute{
				Header:   wire.Header{TxnID: tx.id, Src: uint8(n.id)},
				ReadKeys: p.reads, LockKeys: p.locks,
			})
		case DrTMH, DrTMHNC:
			if len(p.locks) > 0 {
				if tx.lockWave == nil {
					tx.lockWave = map[int][]uint64{}
				}
				tx.lockWave[s] = p.locks
			}
			for _, k := range append(append([]uint64{}, p.reads...), p.locks...) {
				n.oneSidedLookup(t, tx, s, k)
			}
		case DrTMR:
			// Lock-all: ATOMIC every key, then READ it.
			for _, k := range append(append([]uint64{}, p.reads...), p.locks...) {
				n.atomicLockRead(t, tx, s, k)
			}
		}
	}
}

// localExec performs the coordinator's local-shard portion directly.
func (n *Node) localExec(t *hostrt.Thread, tx *btxn, readKeys, lockKeys []uint64) {
	lockAll := n.cl.cfg.System == DrTMR
	var toLock []uint64
	toLock = append(toLock, lockKeys...)
	if lockAll {
		toLock = append(toLock, readKeys...)
	}
	for _, k := range toLock {
		n.chargeLocal(t, k)
		if !n.tryLock(k, tx.id) {
			tx.failed = wire.StatusAbortLocked
			n.execUnit(t, tx, 0, nil, nil)
			return
		}
		tx.locked[n.id] = append(tx.locked[n.id], k)
	}
	var items []wire.KV
	for _, k := range append(append([]uint64{}, readKeys...), lockKeys...) {
		n.chargeLocal(t, k)
		if !lockAll && n.isLocked(k, tx.id) {
			tx.failed = wire.StatusAbortLocked
			n.execUnit(t, tx, 0, nil, nil)
			return
		}
		v, ver, _ := n.primary.read(k)
		items = append(items, wire.KV{Key: k, Version: ver, Value: v})
	}
	n.execUnit(t, tx, 0, nil, items)
}

// oneSidedLookup reads key at shard s with one-sided READs: one exact read
// with the address cache (DrTM+H), or a chained-bucket walk without it
// (DrTM+H NC, §5.1).
func (n *Node) oneSidedLookup(t *hostrt.Thread, tx *btxn, s int, key uint64) {
	target := n.cl.nodes[s]
	var kv wire.KV
	var lockedByOther bool
	if n.cl.cfg.System == DrTMH {
		n.rnic.ReadDyn(t, s, func() int {
			v, ver, _ := target.primary.read(key)
			kv = wire.KV{Key: key, Version: ver, Value: v}
			lockedByOther = target.isLocked(key, tx.id)
			return objHeader + len(v)
		}, func() {
			st := wire.StatusOK
			if lockedByOther {
				st = wire.StatusAbortLocked
			}
			n.execUnit(t, tx, st, nil, []wire.KV{kv})
		})
		return
	}
	// NC: walk the chain, one roundtrip per bucket.
	hops := 0
	var rts int
	var step func()
	step = func() {
		n.rnic.ReadDyn(t, s, func() int {
			var per int
			rts, per = target.primary.lookupCost(key)
			if hops == 0 {
				v, ver, _ := target.primary.read(key)
				kv = wire.KV{Key: key, Version: ver, Value: v}
				lockedByOther = target.isLocked(key, tx.id)
			}
			return per
		}, func() {
			hops++
			if hops < rts {
				step()
				return
			}
			st := wire.StatusOK
			if lockedByOther {
				st = wire.StatusAbortLocked
			}
			n.execUnit(t, tx, st, nil, []wire.KV{kv})
		})
	}
	step()
}

// atomicLockRead is DrTM+R's per-key lock-then-read.
func (n *Node) atomicLockRead(t *hostrt.Thread, tx *btxn, s int, key uint64) {
	target := n.cl.nodes[s]
	n.rnic.Atomic(t, s, func() bool {
		return target.tryLock(key, tx.id)
	}, func(ok bool) {
		if !ok {
			n.execUnit(t, tx, wire.StatusAbortLocked, nil, nil)
			return
		}
		var kv wire.KV
		n.rnic.ReadDyn(t, s, func() int {
			v, ver, _ := target.primary.read(key)
			kv = wire.KV{Key: key, Version: ver, Value: v}
			return objHeader + len(v)
		}, func() {
			n.execUnit(t, tx, wire.StatusOK, []uint64{key}, []wire.KV{kv})
		})
	})
}

// onExecuteResp feeds an RPC execute response into the state machine.
func (n *Node) onExecuteResp(t *hostrt.Thread, m *wire.ExecuteResp) {
	tx := n.findTxn(m.TxnID, bExecute)
	if tx == nil {
		return
	}
	n.execUnit(t, tx, m.Status, m.Locked, m.Items)
}

func (n *Node) findTxn(id uint64, ph bphase) *btxn {
	at := n.app[txnThread(id)]
	tx, ok := at.inflight[id]
	if !ok || tx.phase != ph {
		return nil
	}
	return tx
}

// execUnit accumulates one execution-phase completion.
func (n *Node) execUnit(t *hostrt.Thread, tx *btxn, st wire.Status, locked []uint64, items []wire.KV) {
	if st != wire.StatusOK && tx.failed == wire.StatusOK {
		tx.failed = st
	}
	if len(locked) > 0 {
		// Remote locks acquired: attribute them to their shard.
		s := n.shardOf(locked[0])
		tx.locked[s] = append(tx.locked[s], locked...)
	}
	for _, kv := range items {
		tx.reads[kv.Key] = kv
	}
	tx.pending--
	if tx.pending > 0 {
		return
	}
	if tx.failed != wire.StatusOK {
		tx.lockWave = nil
		n.abortTxn(t, tx)
		return
	}
	if len(tx.lockWave) > 0 {
		// Second wave (DrTM+H): lock-and-verify the write set now that the
		// one-sided reads supplied values and versions.
		wave := tx.lockWave
		tx.lockWave = nil
		var shards []int
		for s := range wave {
			shards = append(shards, s)
		}
		sortInts(shards)
		tx.pending = len(shards)
		for _, s := range shards {
			keys := wave[s]
			vers := make([]wire.KeyVer, len(keys))
			for i, k := range keys {
				vers[i] = wire.KeyVer{Key: k, Version: tx.reads[k].Version}
			}
			n.rnic.Send(t, s, &wire.Execute{
				Header:   wire.Header{TxnID: tx.id, Src: uint8(n.id)},
				LockKeys: keys, LockOnly: true, LockVers: vers,
			})
		}
		return
	}
	n.afterExec(t, tx)
}

// afterExec runs the application logic at the host coordinator.
func (n *Node) afterExec(t *hostrt.Thread, tx *btxn) {
	if tx.hasStash {
		writes := tx.stash
		tx.stash, tx.hasStash = nil, false
		n.prepareCommit(t, tx, writes)
		return
	}
	tx.rounds++
	d := tx.desc
	if d.FnID == 0 {
		n.prepareCommit(t, tx, nil)
		return
	}
	fn, ok := n.cl.reg.Get(d.FnID)
	if !ok {
		panic(fmt.Sprintf("baseline: unknown fn %d", d.FnID))
	}
	t.Charge(fn.HostCost)
	res := fn.Run(d.State, tx.readsInOrder())
	if res.Abort {
		tx.failed = wire.StatusAbortMissing
		n.abortTxn(t, tx)
		return
	}
	if len(res.MoreReads) > 0 {
		tx.addReadOrder(res.MoreReads)
		tx.stashWrites(res.Writes)
		n.execPhase(t, tx, res.MoreReads, nil)
		return
	}
	n.prepareCommit(t, tx, append(tx.stash, res.Writes...))
}

func (tx *btxn) stashWrites(w []wire.KV) { tx.stash = append(tx.stash, w...) }

func (tx *btxn) readsInOrder() []wire.KV {
	out := make([]wire.KV, len(tx.readOrder))
	for i, k := range tx.readOrder {
		if kv, ok := tx.reads[k]; ok {
			out[i] = kv
		} else {
			out[i] = wire.KV{Key: k}
		}
	}
	return out
}

func (tx *btxn) addReadOrder(keys []uint64) {
	have := map[uint64]bool{}
	for _, k := range tx.readOrder {
		have[k] = true
	}
	for _, k := range keys {
		if !have[k] {
			have[k] = true
			tx.readOrder = append(tx.readOrder, k)
		}
	}
}

// prepareCommit assigns versions and locks execution-introduced writes.
func (n *Node) prepareCommit(t *hostrt.Thread, tx *btxn, fnWrites []wire.KV) {
	writes := append(fnWrites, tx.desc.BlindWrites...)
	var missing []uint64
	seen := map[uint64]bool{}
	for _, kv := range writes {
		if seen[kv.Key] {
			continue
		}
		seen[kv.Key] = true
		if !tx.keyLocked(n, kv.Key) {
			missing = append(missing, kv.Key)
		}
	}
	if len(missing) > 0 {
		tx.stash = fnWrites
		tx.hasStash = true
		n.execPhase(t, tx, nil, missing)
		return
	}
	vers := map[uint64]uint64{}
	for _, kv := range tx.reads {
		vers[kv.Key] = kv.Version
	}
	out := make([]wire.KV, len(writes))
	for i, kv := range writes {
		out[i] = wire.KV{Key: kv.Key, Version: vers[kv.Key] + 1, Value: kv.Value}
	}
	tx.writes = out
	n.validatePhase(t, tx)
}

func (tx *btxn) keyLocked(n *Node, key uint64) bool {
	s := n.shardOf(key)
	for _, k := range tx.locked[s] {
		if k == key {
			return true
		}
	}
	return false
}

// validatePhase re-checks read-set versions (§2.2.1 step 2). DrTM+R locked
// everything and skips it.
func (n *Node) validatePhase(t *hostrt.Thread, tx *btxn) {
	tx.phase = bValidate
	if n.cl.cfg.System == DrTMR {
		n.afterValidate(t, tx)
		return
	}
	writeKeys := map[uint64]bool{}
	for _, kv := range tx.writes {
		writeKeys[kv.Key] = true
	}
	byShard := map[int][]wire.KeyVer{}
	var order []int
	total := 0
	for _, kv := range tx.readsInOrder() {
		if writeKeys[kv.Key] {
			continue
		}
		s := n.shardOf(kv.Key)
		if _, ok := byShard[s]; !ok {
			order = append(order, s)
		}
		byShard[s] = append(byShard[s], wire.KeyVer{Key: kv.Key, Version: kv.Version})
		total++
	}
	if total == 0 || (tx.desc.ReadOnly() && total == 1 && len(tx.writes) == 0) {
		n.afterValidate(t, tx)
		return
	}
	sortInts(order)

	units := 0
	for _, s := range order {
		if s == n.id || n.cl.cfg.System == FaSST {
			units++
		} else {
			units += len(byShard[s]) // one-sided READ per key
		}
	}
	tx.pending = units
	for _, s := range order {
		items := byShard[s]
		if s == n.id {
			st := wire.StatusOK
			for _, it := range items {
				n.chargeLocal(t, it.Key)
				if n.isLocked(it.Key, tx.id) {
					st = wire.StatusAbortLocked
					break
				}
				_, ver, _ := n.primary.read(it.Key)
				if ver != it.Version {
					st = wire.StatusAbortVersion
					break
				}
			}
			n.validateUnit(t, tx, st)
			continue
		}
		if n.cl.cfg.System == FaSST {
			n.rnic.Send(t, s, &wire.Validate{
				Header: wire.Header{TxnID: tx.id, Src: uint8(n.id)},
				Items:  items,
			})
			continue
		}
		// One-sided validation READ per key (version + lock word).
		target := n.cl.nodes[s]
		for _, it := range items {
			it := it
			var ok bool
			n.rnic.ReadDyn(t, s, func() int {
				_, ver, _ := target.primary.read(it.Key)
				ok = ver == it.Version && !target.isLocked(it.Key, tx.id)
				return objHeader
			}, func() {
				st := wire.StatusOK
				if !ok {
					st = wire.StatusAbortVersion
				}
				n.validateUnit(t, tx, st)
			})
		}
	}
}

func (n *Node) onValidateResp(t *hostrt.Thread, m *wire.ValidateResp) {
	tx := n.findTxn(m.TxnID, bValidate)
	if tx == nil {
		return
	}
	n.validateUnit(t, tx, m.Status)
}

func (n *Node) validateUnit(t *hostrt.Thread, tx *btxn, st wire.Status) {
	if st != wire.StatusOK && tx.failed == wire.StatusOK {
		tx.failed = st
	}
	tx.pending--
	if tx.pending > 0 {
		return
	}
	if tx.failed != wire.StatusOK {
		n.abortTxn(t, tx)
		return
	}
	n.afterValidate(t, tx)
}

func (n *Node) afterValidate(t *hostrt.Thread, tx *btxn) {
	if len(tx.writes) == 0 {
		// Read-only: DrTM+R locked every key (lock-all) and must release
		// them; the validating systems hold no locks here.
		if n.cl.cfg.System == DrTMR {
			n.releaseAllLocks(t, tx)
		}
		n.completeTxn(t, tx, wire.StatusOK)
		return
	}
	n.logPhase(t, tx)
}

// releaseAllLocks unlocks every key tx holds, locally and via one-sided
// unlock WRITEs.
func (n *Node) releaseAllLocks(t *hostrt.Thread, tx *btxn) {
	var shards []int
	for s := range tx.locked {
		shards = append(shards, s)
	}
	sortInts(shards)
	owner := tx.id
	for _, s := range shards {
		keys := tx.locked[s]
		if s == n.id {
			for _, k := range keys {
				n.chargeLocal(t, k)
				n.unlock(k, owner)
			}
			continue
		}
		target := n.cl.nodes[s]
		for _, k := range keys {
			k := k
			n.rnic.Write(t, s, 8, func() {
				target.unlockIf(k, owner)
			}, func() {})
		}
	}
}

// logPhase replicates write sets to backups: one-sided WRITEs (DrTM+H,
// DrTM+R) or RPCs (FaSST).
func (n *Node) logPhase(t *hostrt.Thread, tx *btxn) {
	tx.phase = bLog
	groups := groupWrites(n, tx.writes)
	tx.pending = 0
	for _, g := range groups {
		tx.pending += len(n.cl.cfg.backupsOf(g.shard))
	}
	if tx.pending == 0 {
		n.committed(t, tx)
		return
	}
	for _, g := range groups {
		for _, b := range n.cl.cfg.backupsOf(g.shard) {
			if b == n.id {
				// Coordinator is a backup: append directly.
				for _, kv := range g.writes {
					n.chargeLocal(t, kv.Key)
				}
				n.appendBackupRecord(tx.id, g.writes)
				n.logUnit(t, tx)
				continue
			}
			if n.cl.cfg.System == FaSST {
				n.rnic.Send(t, b, &wire.Log{
					Header: wire.Header{TxnID: tx.id, Src: uint8(n.id)},
					Writes: g.writes, RespondTo: uint8(n.id),
				})
				continue
			}
			g := g
			backup := n.cl.nodes[b]
			var ws []kvw
			for _, kv := range g.writes {
				ws = append(ws, kvw{key: kv.Key, version: kv.Version, value: kv.Value})
			}
			n.rnic.Write(t, b, recordBytes(ws), func() {
				backup.appendBackupRecord(tx.id, g.writes)
			}, func() {
				n.logUnit(t, tx)
			})
		}
	}
}

func (n *Node) onLogResp(t *hostrt.Thread, m *wire.LogResp) {
	tx := n.findTxn(m.TxnID, bLog)
	if tx == nil {
		return
	}
	n.logUnit(t, tx)
}

func (n *Node) logUnit(t *hostrt.Thread, tx *btxn) {
	tx.pending--
	if tx.pending > 0 {
		return
	}
	n.committed(t, tx)
}

// committed reports the outcome, then applies at primaries.
func (n *Node) committed(t *hostrt.Thread, tx *btxn) {
	n.completeTxn(t, tx, wire.StatusOK)
	tx.phase = bCommit
	groups := groupWrites(n, tx.writes)
	for _, g := range groups {
		if g.shard == n.id {
			n.applyCommit(t, tx.id, g.writes)
			// Release any extra local locks (DrTM+R locked reads too).
			n.releaseExtraLocks(t, tx, n.id, g.writes)
			continue
		}
		if n.cl.cfg.System == DrTMR {
			// One-sided commit: one WRITE per object (value + version +
			// lock word share a cache line).
			target := n.cl.nodes[g.shard]
			for _, kv := range g.writes {
				kv := kv
				n.rnic.Write(t, g.shard, objHeader+len(kv.Value), func() {
					target.primary.apply(kv.Key, kv.Value, kv.Version)
					target.unlockIf(kv.Key, tx.id)
				}, func() {})
			}
			// Unlock read-only keys locked by lock-all.
			n.unlockReadLocks(t, tx, g.shard)
			continue
		}
		n.rnic.Send(t, g.shard, &wire.Commit{
			Header: wire.Header{TxnID: tx.id, Src: uint8(n.id)},
			Writes: g.writes,
		})
	}
	// Shards with read locks but no writes (DrTM+R) must be released too.
	if n.cl.cfg.System == DrTMR {
		written := map[int]bool{}
		for _, g := range groups {
			written[g.shard] = true
		}
		var shards []int
		for s := range tx.locked {
			shards = append(shards, s)
		}
		sortInts(shards)
		for _, s := range shards {
			if written[s] {
				continue
			}
			if s == n.id {
				n.releaseExtraLocks(t, tx, s, nil)
				continue
			}
			n.unlockReadLocks(t, tx, s)
		}
	}
}

// releaseExtraLocks unlocks locally-held locks not covered by applyCommit.
func (n *Node) releaseExtraLocks(t *hostrt.Thread, tx *btxn, s int, writes []wire.KV) {
	written := map[uint64]bool{}
	for _, kv := range writes {
		written[kv.Key] = true
	}
	for _, k := range tx.locked[s] {
		if !written[k] {
			n.chargeLocal(t, k)
			n.unlock(k, tx.id)
		}
	}
}

// unlockReadLocks releases DrTM+R read locks at a remote shard that the
// commit WRITEs did not cover.
func (n *Node) unlockReadLocks(t *hostrt.Thread, tx *btxn, s int) {
	written := map[uint64]bool{}
	for _, kv := range tx.writes {
		written[kv.Key] = true
	}
	target := n.cl.nodes[s]
	owner := tx.id // capture: tx.id is reassigned if the txn is retried
	for _, k := range tx.locked[s] {
		if written[k] {
			continue
		}
		k := k
		n.rnic.Write(t, s, 8, func() {
			target.unlockIf(k, owner)
		}, func() {})
	}
}

func (n *Node) onCommitResp(t *hostrt.Thread, m *wire.CommitResp) {
	// Commit acks carry no further protocol action (outcome was reported
	// at log completion); state was already freed.
}

// abortTxn releases locks everywhere and retries.
func (n *Node) abortTxn(t *hostrt.Thread, tx *btxn) {
	var shards []int
	for s := range tx.locked {
		shards = append(shards, s)
	}
	sortInts(shards)
	for _, s := range shards {
		keys := tx.locked[s]
		if len(keys) == 0 {
			continue
		}
		if s == n.id {
			for _, k := range keys {
				n.chargeLocal(t, k)
				n.unlock(k, tx.id)
			}
			continue
		}
		if n.cl.cfg.System == DrTMR {
			target := n.cl.nodes[s]
			owner := tx.id // capture: retryTxn reassigns tx.id immediately
			for _, k := range keys {
				k := k
				n.rnic.Write(t, s, 8, func() {
					target.unlockIf(k, owner)
				}, func() {})
			}
			continue
		}
		n.rnic.Send(t, s, &wire.Abort{
			Header:     wire.Header{TxnID: tx.id, Src: uint8(n.id)},
			LockedKeys: keys,
		})
	}
	st := tx.failed
	if st == wire.StatusOK {
		st = wire.StatusAbortLocked
	}
	n.retryTxn(t, tx, st)
}

type writeGroup struct {
	shard  int
	writes []wire.KV
}

func groupWrites(n *Node, writes []wire.KV) []writeGroup {
	m := map[int][]wire.KV{}
	var order []int
	for _, kv := range writes {
		s := n.shardOf(kv.Key)
		if _, ok := m[s]; !ok {
			order = append(order, s)
		}
		m[s] = append(m[s], kv)
	}
	sortInts(order)
	out := make([]writeGroup, 0, len(order))
	for _, s := range order {
		out = append(out, writeGroup{shard: s, writes: m[s]})
	}
	return out
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
