package baseline

import (
	"fmt"

	"xenic/internal/check"
	"xenic/internal/fault"
	"xenic/internal/hostrt"
	"xenic/internal/load"
	"xenic/internal/membership"
	"xenic/internal/metrics"
	"xenic/internal/rdma"
	"xenic/internal/sim"
	"xenic/internal/simnet"
	"xenic/internal/store/btree"
	"xenic/internal/trace"
	"xenic/internal/txnmodel"
	"xenic/internal/wire"
)

// Cluster is a simulated baseline deployment.
type Cluster struct {
	cfg    Config
	eng    *sim.Engine
	nw     *simnet.Network
	inj    *fault.Injector
	nodes  []*Node
	gen    txnmodel.Generator
	place  txnmodel.Placement
	reg    *txnmodel.Registry
	tracer *trace.Tracer
	hist   *check.History // nil unless SetHistory attached one
	loadOn bool

	loadSrc load.Source // nil: built-in closed loop drives the cluster
	srcOn   bool        // the attached source has been started

	// mgr is the same lease-based cluster manager Xenic runs; baselines
	// renew leases and observe epoch-stamped views so harness comparisons
	// share membership semantics, but they never act on view changes (no
	// promotion, no re-replication — validate rejects crash faults).
	mgr  *membership.Manager
	view membership.View
}

// SetTracer attaches tr to the cluster (nil disables tracing). Call after
// New and before Start. The baseline data path is RDMA verbs, so the trace
// carries process/thread metadata and fault-injection events rather than
// per-phase spans; it exists mainly so any System can be traced uniformly.
func (cl *Cluster) SetTracer(tr *trace.Tracer) {
	cl.tracer = tr
	if cl.inj != nil {
		cl.inj.SetTracer(tr)
	}
	if !tr.Enabled() {
		return
	}
	for _, n := range cl.nodes {
		tr.MetaProcess(n.id, fmt.Sprintf("node%d", n.id))
		for h := 0; h < cl.cfg.Threads; h++ {
			tr.MetaThread(n.id, h, fmt.Sprintf("host-app%d", h))
		}
	}
}

// Tracer returns the attached tracer (nil when tracing is off).
func (cl *Cluster) Tracer() *trace.Tracer { return cl.tracer }

// New builds and populates a baseline cluster running workload gen.
func New(cfg Config, gen txnmodel.Generator) (*Cluster, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cl := &Cluster{
		cfg: cfg,
		eng: sim.NewEngine(cfg.Seed),
		gen: gen,
		reg: txnmodel.NewRegistry(),
	}
	cl.nw = simnet.New(cl.eng, cfg.Params, cfg.Nodes)
	if cfg.Faults != nil {
		cl.inj = fault.NewInjector(cl.eng, cfg.Faults, cfg.Seed)
		// Baselines never crash, so every endpoint is permanently live and
		// the fabric's reliable transport retransmits through any fault.
		cl.nw.SetFault(cl.inj.FrameFate, func(int) bool { return true })
	}
	cl.place = gen.Placement(cfg.Nodes, cfg.Replication)
	gen.Register(cl.reg)
	spec := gen.Spec()

	for id := 0; id < cfg.Nodes; id++ {
		n := &Node{
			cl:      cl,
			id:      id,
			primary: newShardData(spec, cl.place),
			backups: map[int]*shardData{},
			locks:   map[uint64]uint64{},
		}
		n.stats.Latency = metrics.NewHistogram()
		for s := 0; s < cfg.Nodes; s++ {
			for _, b := range cfg.backupsOf(s) {
				if b == id {
					n.backups[s] = newShardData(spec, cl.place)
				}
			}
		}
		n.host = hostrt.New(cl.eng, cfg.Params, id, cfg.Threads, cfg.Seed)
		n.rnic = rdma.New(cl.eng, cfg.Params, cl.nw, id, n.host)
		if cfg.Faults != nil {
			n.rnic.SetFaultTimeout(cfg.Faults.VerbTimeoutOrDefault())
		}
		n.host.OnMessage(n.hostHandler)
		n.host.OnIdle(n.hostIdle)
		n.host.SetRouter(func(m wire.Msg) int {
			// RPC requests spread across threads; completions and
			// responses go to the owning thread.
			switch m.(type) {
			case *wire.Execute, *wire.Validate, *wire.Log, *wire.Commit, *wire.Abort:
				return int(m.(interface{ GetTxnID() uint64 }).GetTxnID() % uint64(cfg.Threads))
			}
			return txnThread(m.(interface{ GetTxnID() uint64 }).GetTxnID())
		})
		n.host.OnTransmit(func(t *hostrt.Thread, ms []wire.Msg) {
			panic("baseline: thread outbox unused; all sends go through the RDMA NIC")
		})
		for a := 0; a < cfg.Threads; a++ {
			n.app = append(n.app, &appThread{id: a, inflight: map[uint64]*btxn{}})
		}
		cl.nodes = append(cl.nodes, n)
	}

	for s := 0; s < cfg.Nodes; s++ {
		primary := cl.nodes[s]
		backups := cfg.backupsOf(s)
		cl.gen.Populate(s, cfg.Nodes, func(key uint64, value []byte) {
			if got := cl.place.ShardOf(key); got != s {
				panic(fmt.Sprintf("baseline: populate: key %d in shard %d emitted for %d", key, got, s))
			}
			primary.primary.apply(key, value, 1)
			for _, b := range backups {
				cl.nodes[b].backups[s].apply(key, value, 1)
			}
		})
	}

	// Membership: the same lease service Xenic runs, so view epochs mean
	// the same thing across systems. A partitioned node cannot reach the
	// manager and its lease lapses; otherwise the epoch never moves.
	if cfg.Membership == (membership.Config{}) {
		cfg.Membership = membership.DefaultConfig()
		cl.cfg.Membership = cfg.Membership
	}
	cl.mgr = membership.New(cl.eng, cfg.Nodes, cfg.Replication, cfg.Membership)
	cl.view = cl.mgr.View()
	cl.mgr.OnChange(func(v membership.View) { cl.view = v })
	for id := 0; id < cfg.Nodes; id++ {
		id := id
		cl.eng.Ticker(cfg.Membership.RenewPeriod, func() bool {
			if cl.inj == nil || !cl.inj.Isolated(id) {
				cl.mgr.Renew(id)
			}
			return true
		})
	}
	cl.mgr.Start()
	return cl, nil
}

// Engine exposes the simulation engine.
func (cl *Cluster) Engine() *sim.Engine { return cl.eng }

// View returns the current membership view. Baselines share Xenic's lease
// service and epoch numbering but never react to view changes.
func (cl *Cluster) View() membership.View { return cl.view }

// Node returns node i.
func (cl *Cluster) Node(i int) *Node { return cl.nodes[i] }

// Stats returns node i's counters.
func (n *Node) Stats() *Stats { return &n.stats }

// Start begins load generation: the attached LoadSource if one was set
// (xenic.WithLoad), otherwise the built-in closed loop.
func (cl *Cluster) Start() {
	if cl.loadSrc != nil {
		cl.srcOn = true
		cl.loadSrc.Start()
		return
	}
	cl.StartClosedLoop()
}

// StopLoad stops generating new transactions.
func (cl *Cluster) StopLoad() {
	if cl.loadSrc != nil {
		cl.srcOn = false
		cl.loadSrc.Stop()
		return
	}
	cl.StopClosedLoop()
}

// SetLoad attaches a load source, replacing the built-in closed loop as
// what Start/StopLoad control. Call before any load has been started.
func (cl *Cluster) SetLoad(src load.Source) error {
	if src == nil {
		return fmt.Errorf("baseline: SetLoad: nil source")
	}
	if cl.loadSrc != nil {
		return fmt.Errorf("baseline: SetLoad: a load source is already attached")
	}
	if err := src.Attach(cl); err != nil {
		return err
	}
	cl.loadSrc = src
	return nil
}

// OfferedLoad snapshots the attached load source's admission and session
// counters; all-zero when the built-in closed loop is driving.
func (cl *Cluster) OfferedLoad() load.Stats {
	if cl.loadSrc == nil {
		return load.Stats{}
	}
	return cl.loadSrc.Stats()
}

// loadRunning reports whether some load generator has been started and not
// stopped since.
func (cl *Cluster) loadRunning() bool {
	if cl.loadSrc != nil {
		return cl.srcOn
	}
	return cl.loadOn
}

// StartClosedLoop begins closed-loop generation on every thread (the
// load.Driver surface; Start delegates here when no source is set).
func (cl *Cluster) StartClosedLoop() {
	cl.loadOn = true
	for _, n := range cl.nodes {
		n.host.WakeAll()
	}
}

// StopClosedLoop halts closed-loop generation.
func (cl *Cluster) StopClosedLoop() { cl.loadOn = false }

// Nodes returns the node count.
func (cl *Cluster) Nodes() int { return cl.cfg.Nodes }

// AppThreadsPerNode reports the coordinator threads per node (every
// baseline host thread is a coordinator).
func (cl *Cluster) AppThreadsPerNode() int { return cl.cfg.Threads }

// Workload returns the generator this cluster was built with.
func (cl *Cluster) Workload() txnmodel.Generator { return cl.gen }

// InjectTxn submits one transaction on the given node's thread at the
// current instant (the load.Driver surface). done, if non-nil, fires
// exactly once at the transaction's final outcome. Baselines never crash,
// so injections cannot be lost.
func (cl *Cluster) InjectTxn(node, thread int, d *txnmodel.TxnDesc, done func(ok bool)) {
	n := cl.nodes[node]
	at := n.app[thread]
	at.injectq = append(at.injectq, injected{desc: d, done: done})
	n.host.Thread(thread).Wake()
}

// Run advances simulated time by d.
func (cl *Cluster) Run(d sim.Time) { cl.eng.Run(cl.eng.Now() + d) }

// Quiesced reports whether all transactions have drained.
func (cl *Cluster) Quiesced() bool {
	for _, n := range cl.nodes {
		for _, at := range n.app {
			if at.outstanding > 0 || len(at.retryq) > 0 || len(at.injectq) > 0 {
				return false
			}
		}
		if n.apHead < len(n.applyq) || len(n.locks) > 0 {
			return false
		}
	}
	return true
}

// Drain stops load and runs until quiesced or the deadline passes.
func (cl *Cluster) Drain(deadline sim.Time) bool {
	cl.StopLoad()
	end := cl.eng.Now() + deadline
	for cl.eng.Now() < end {
		if cl.Quiesced() {
			return true
		}
		cl.Run(100 * sim.Microsecond)
	}
	return cl.Quiesced()
}

// Result is the shared measurement summary in txnmodel; Xenic and baseline
// windows report through the same type.
type Result = txnmodel.Result

// Measure runs warmup, resets statistics, runs the window, aggregates.
func (cl *Cluster) Measure(warmup, window sim.Time) Result {
	// Whatever generator is attached — closed loop or a LoadSource — is the
	// one started here; Measure never falls back to the closed loop when an
	// open-loop source is driving.
	if !cl.loadRunning() {
		cl.Start()
	}
	cl.Run(warmup)
	type snap struct {
		committed, measured, aborts, failed int64
		reasons                             [wire.NumStatuses]int64
	}
	snaps := make([]snap, len(cl.nodes))
	for i, n := range cl.nodes {
		snaps[i] = snap{n.stats.Committed, n.stats.Measured, n.stats.Aborts,
			n.stats.Failed, n.stats.AbortReasons}
		n.stats.Latency.Reset()
	}
	cl.Run(window)
	res := Result{Duration: window}
	lat := metrics.NewHistogram()
	for i, n := range cl.nodes {
		res.Committed += n.stats.Committed - snaps[i].committed
		res.Measured += n.stats.Measured - snaps[i].measured
		res.Aborts += n.stats.Aborts - snaps[i].aborts
		res.Failed += n.stats.Failed - snaps[i].failed
		res.AbortLocked += n.stats.AbortReasons[wire.StatusAbortLocked] - snaps[i].reasons[wire.StatusAbortLocked]
		res.AbortVersion += n.stats.AbortReasons[wire.StatusAbortVersion] - snaps[i].reasons[wire.StatusAbortVersion]
		res.AbortMissing += n.stats.AbortReasons[wire.StatusAbortMissing] - snaps[i].reasons[wire.StatusAbortMissing]
		res.AbortView += n.stats.AbortReasons[wire.StatusAbortView] - snaps[i].reasons[wire.StatusAbortView]
		// Verb timeouts on fault runs must land in the breakdown too, so
		// the per-reason fields always sum to Aborts.
		res.AbortTimeout += n.stats.AbortReasons[wire.StatusAbortTimeout] - snaps[i].reasons[wire.StatusAbortTimeout]
		lat.Merge(n.stats.Latency)
	}
	res.PerServerTput = float64(res.Measured) / window.Seconds() / float64(len(cl.nodes))
	res.Median = lat.Median()
	res.P99 = lat.Quantile(0.99)
	res.Mean = lat.Mean()
	return res
}

// RegisterMetrics registers the cluster's counters into reg: per-node
// transaction outcomes, abort reasons, latency, and RDMA verb/byte
// counters, plus cluster-wide aggregates under "cluster.".
func (cl *Cluster) RegisterMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	rdmaSnap := func(s rdma.Stats) map[string]any {
		out := map[string]any{
			"reads":     s.Reads,
			"writes":    s.Writes,
			"atomics":   s.Atomics,
			"sends":     s.Sends,
			"bytes_out": s.BytesOut,
		}
		if cl.cfg.Faults != nil {
			out["verb_timeouts"] = s.VerbTimeouts
			out["dup_requests"] = s.DupRequests
			out["dup_responses"] = s.DupResponses
		}
		return out
	}
	for _, n := range cl.nodes {
		n := n
		sub := reg.Sub(fmt.Sprintf("node%d", n.id))
		sub.RegisterFunc("txn", func() any { return n.stats.txnSnapshot() })
		sub.RegisterFunc("aborts_by_reason", func() any { return abortReasonMap(n.stats.AbortReasons) })
		sub.RegisterHistogram("latency", n.stats.Latency)
		sub.RegisterFunc("rdma", func() any { return rdmaSnap(n.rnic.Stats()) })
	}
	agg := reg.Sub("cluster")
	agg.RegisterFunc("membership", func() any {
		v := cl.view
		alive := 0
		for _, a := range v.Alive {
			if a {
				alive++
			}
		}
		return map[string]any{"epoch": v.Epoch, "alive": alive}
	})
	agg.RegisterFunc("txn", func() any {
		var s Stats
		for _, n := range cl.nodes {
			s.Committed += n.stats.Committed
			s.Measured += n.stats.Measured
			s.Aborts += n.stats.Aborts
			s.Failed += n.stats.Failed
		}
		return s.txnSnapshot()
	})
	agg.RegisterFunc("aborts_by_reason", func() any {
		var reasons [wire.NumStatuses]int64
		for _, n := range cl.nodes {
			for i, v := range n.stats.AbortReasons {
				reasons[i] += v
			}
		}
		return abortReasonMap(reasons)
	})
	agg.RegisterFunc("rdma", func() any {
		var s rdma.Stats
		for _, n := range cl.nodes {
			ns := n.rnic.Stats()
			s.Reads += ns.Reads
			s.Writes += ns.Writes
			s.Atomics += ns.Atomics
			s.Sends += ns.Sends
			s.BytesOut += ns.BytesOut
			s.VerbTimeouts += ns.VerbTimeouts
			s.DupRequests += ns.DupRequests
			s.DupResponses += ns.DupResponses
		}
		return rdmaSnap(s)
	})
	if cl.inj != nil {
		f := reg.Sub("fault")
		cl.inj.RegisterMetrics(f)
		f.RegisterFunc("net", func() any {
			retx, lost := cl.nw.FaultCounters()
			return map[string]any{"retx": retx, "lost": lost}
		})
	}
	agg.RegisterFunc("latency", func() any {
		m := metrics.NewHistogram()
		for _, n := range cl.nodes {
			m.Merge(n.stats.Latency)
		}
		return m.Snapshot()
	})
}

func (s *Stats) txnSnapshot() map[string]any {
	return map[string]any{
		"committed": s.Committed,
		"measured":  s.Measured,
		"aborts":    s.Aborts,
		"failed":    s.Failed,
	}
}

// abortReasonMap keys non-zero abort counts by status name, skipping the
// StatusOK slot.
func abortReasonMap(reasons [wire.NumStatuses]int64) map[string]int64 {
	out := map[string]int64{}
	for i, v := range reasons {
		if wire.Status(i) == wire.StatusOK || v == 0 {
			continue
		}
		out[wire.Status(i).String()] = v
	}
	return out
}

// ReadKey reads a key from its primary (for tests).
func (cl *Cluster) ReadKey(key uint64) ([]byte, uint64, bool) {
	return cl.nodes[cl.place.ShardOf(key)].primary.read(key)
}

// ReplicasConsistent verifies backup replicas converged to the primary.
func (cl *Cluster) ReplicasConsistent() error {
	for s := 0; s < cl.cfg.Nodes; s++ {
		p := cl.nodes[s].primary
		for _, b := range cl.cfg.backupsOf(s) {
			bk := cl.nodes[b].backups[s]
			if p.hash.Len() != bk.hash.Len() {
				return fmt.Errorf("shard %d at node %d: hash size %d vs %d", s, b, p.hash.Len(), bk.hash.Len())
			}
			if p.btree.Len() != bk.btree.Len() {
				return fmt.Errorf("shard %d at node %d: btree size %d vs %d", s, b, p.btree.Len(), bk.btree.Len())
			}
			var err error
			p.hash.ForEach(func(key uint64, version uint64, value []byte) bool {
				r := bk.hash.Lookup(key)
				if !r.Found || r.Version != version || string(r.Value) != string(value) {
					err = fmt.Errorf("shard %d at node %d: key %d diverges", s, b, key)
					return false
				}
				return true
			})
			if err != nil {
				return err
			}
			p.btree.AscendRange(0, ^uint64(0), func(it btree.Item) bool {
				got, ok := bk.btree.Get(it.Key)
				if !ok || got.Version != it.Version || string(got.Value) != string(it.Value) {
					err = fmt.Errorf("shard %d at node %d: btree key %d diverges", s, b, it.Key)
					return false
				}
				return true
			})
			if err != nil {
				return err
			}
		}
	}
	return nil
}
