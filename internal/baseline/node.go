package baseline

import (
	"fmt"

	"xenic/internal/hostrt"
	"xenic/internal/rdma"
	"xenic/internal/sim"
	"xenic/internal/txnmodel"
	"xenic/internal/wire"
)

// Node is one baseline server: symmetric host threads over an RDMA NIC.
type Node struct {
	cl   *Cluster
	id   int
	host *hostrt.Host
	rnic *rdma.NIC

	primary *shardData
	backups map[int]*shardData
	locks   map[uint64]uint64 // primary-shard lock words in host memory

	applyq []logRecord // backup records awaiting host application
	apHead int

	app   []*appThread
	stats Stats
}

type appThread struct {
	id          int
	seq         uint32
	inflight    map[uint64]*btxn
	outstanding int
	retryq      []*btxn
	injectq     []injected // open-loop arrivals awaiting launch
}

// injected is one open-loop arrival handed to InjectTxn, queued until the
// owning thread's next idle pass launches it.
type injected struct {
	desc *txnmodel.TxnDesc
	done func(ok bool)
}

func txnID(node, thread int, seq uint32) uint64 {
	return uint64(node)<<40 | uint64(thread)<<32 | uint64(seq)
}

func txnThread(id uint64) int { return int(id>>32) & 0xff }

// tryLock acquires key's host-memory lock word for owner.
func (n *Node) tryLock(key, owner uint64) bool {
	if cur, ok := n.locks[key]; ok && cur != owner {
		return false
	}
	n.locks[key] = owner
	return true
}

func (n *Node) unlock(key, owner uint64) {
	if cur, ok := n.locks[key]; !ok || cur != owner {
		panic(fmt.Sprintf("baseline: node %d unlock of key %d not held by %x", n.id, key, owner))
	}
	delete(n.locks, key)
}

// unlockIf releases key only if owner still holds it — the semantics of a
// compare-and-swap unlock, needed for one-sided unlock WRITEs that may land
// after the lock has already been recycled by a retry.
func (n *Node) unlockIf(key, owner uint64) {
	if cur, ok := n.locks[key]; ok && cur == owner {
		delete(n.locks, key)
	}
}

func (n *Node) isLocked(key, owner uint64) bool {
	cur, ok := n.locks[key]
	return ok && cur != owner
}

// hostHandler processes RPCs and verb completions on host threads.
func (n *Node) hostHandler(t *hostrt.Thread, src int, m wire.Msg) {
	switch m := m.(type) {
	case *rdma.Completion:
		m.Fn()
	case *wire.Execute:
		n.rpcExecute(t, src, m)
	case *wire.Validate:
		n.rpcValidate(t, src, m)
	case *wire.Log:
		n.rpcLog(t, src, m)
	case *wire.Commit:
		n.rpcCommit(t, src, m)
	case *wire.Abort:
		n.rpcAbort(t, m)
	case *wire.ExecuteResp:
		n.onExecuteResp(t, m)
	case *wire.ValidateResp:
		n.onValidateResp(t, m)
	case *wire.LogResp:
		n.onLogResp(t, m)
	case *wire.CommitResp:
		n.onCommitResp(t, m)
	default:
		panic(fmt.Sprintf("baseline: node %d: unexpected message %T", n.id, m))
	}
}

// rpcCost charges the RPC-handling premium beyond the generic message cost.
func (n *Node) rpcCost(t *hostrt.Thread) {
	p := n.cl.cfg.Params
	if p.HostRPCHandle > p.HostMsgProc {
		t.Charge(p.HostRPCHandle - p.HostMsgProc)
	}
}

// rpcExecute is the FaSST-style consolidated read+lock handler (§2.2.2);
// DrTM+H uses it for its lock RPCs.
func (n *Node) rpcExecute(t *hostrt.Thread, src int, m *wire.Execute) {
	n.rpcCost(t)
	p := n.cl.cfg.Params
	resp := &wire.ExecuteResp{Header: wire.Header{TxnID: m.TxnID, Src: uint8(n.id)}}
	var locked []uint64
	fail := func(st wire.Status) {
		for _, k := range locked {
			n.unlock(k, m.TxnID)
		}
		resp.Status = st
		resp.Items = nil
		resp.Locked = nil
		n.rnic.Send(t, src, resp)
	}
	for _, k := range m.LockKeys {
		t.Charge(p.HostStoreOp)
		if !n.tryLock(k, m.TxnID) {
			fail(wire.StatusAbortLocked)
			return
		}
		locked = append(locked, k)
	}
	for _, k := range m.ReadKeys {
		t.Charge(p.HostStoreOp)
		if n.isLocked(k, m.TxnID) {
			fail(wire.StatusAbortLocked)
			return
		}
	}
	if m.LockOnly {
		// Lock-and-verify: the values came from one-sided READs; abort if
		// any moved since.
		for _, lv := range m.LockVers {
			t.Charge(p.HostStoreOp)
			if _, ver, _ := n.primary.read(lv.Key); ver != lv.Version {
				fail(wire.StatusAbortVersion)
				return
			}
		}
	} else {
		for _, k := range append(append([]uint64{}, m.ReadKeys...), m.LockKeys...) {
			t.Charge(p.HostStoreOp)
			v, ver, _ := n.primary.read(k)
			resp.Items = append(resp.Items, wire.KV{Key: k, Version: ver, Value: v})
		}
	}
	resp.Status = wire.StatusOK
	resp.Locked = m.LockKeys
	n.rnic.Send(t, src, resp)
}

func (n *Node) rpcValidate(t *hostrt.Thread, src int, m *wire.Validate) {
	n.rpcCost(t)
	p := n.cl.cfg.Params
	st := wire.StatusOK
	for _, it := range m.Items {
		t.Charge(p.HostStoreOp)
		if n.isLocked(it.Key, m.TxnID) {
			st = wire.StatusAbortLocked
			break
		}
		_, ver, _ := n.primary.read(it.Key)
		if ver != it.Version {
			st = wire.StatusAbortVersion
			break
		}
	}
	n.rnic.Send(t, src, &wire.ValidateResp{
		Header: wire.Header{TxnID: m.TxnID, Src: uint8(n.id)}, Status: st,
	})
}

func (n *Node) rpcLog(t *hostrt.Thread, src int, m *wire.Log) {
	n.rpcCost(t)
	n.appendBackupRecord(m.TxnID, m.Writes)
	n.rnic.Send(t, src, &wire.LogResp{
		Header: wire.Header{TxnID: m.TxnID, Src: uint8(n.id)}, Status: wire.StatusOK,
	})
}

// appendBackupRecord queues a replicated write set for host application.
func (n *Node) appendBackupRecord(txn uint64, writes []wire.KV) {
	shard := n.cl.place.ShardOf(writes[0].Key)
	ws := make([]kvw, len(writes))
	for i, kv := range writes {
		ws[i] = kvw{key: kv.Key, version: kv.Version, value: kv.Value}
	}
	n.applyq = append(n.applyq, logRecord{txn: txn, shard: shard, writes: ws})
	n.host.WakeAll()
}

func (n *Node) rpcCommit(t *hostrt.Thread, src int, m *wire.Commit) {
	n.rpcCost(t)
	n.applyCommit(t, m.TxnID, m.Writes)
	n.rnic.Send(t, src, &wire.CommitResp{
		Header: wire.Header{TxnID: m.TxnID, Src: uint8(n.id)}, Status: wire.StatusOK,
	})
}

// applyCommit installs committed writes at the primary and unlocks.
func (n *Node) applyCommit(t *hostrt.Thread, txn uint64, writes []wire.KV) {
	p := n.cl.cfg.Params
	for _, kv := range writes {
		if n.cl.place.IsBTree(kv.Key) {
			t.Charge(p.HostBTreeOp)
		} else {
			t.Charge(p.HostStoreOp)
		}
		n.primary.apply(kv.Key, kv.Value, kv.Version)
		n.unlock(kv.Key, txn)
	}
}

func (n *Node) rpcAbort(t *hostrt.Thread, m *wire.Abort) {
	n.rpcCost(t)
	for _, k := range m.LockedKeys {
		n.unlock(k, m.TxnID)
	}
}

// hostIdle submits load, retries, and applies pending backup records.
func (n *Node) hostIdle(t *hostrt.Thread) bool {
	did := n.applyBackupRecords(t)
	at := n.app[t.ID()]
	// Snapshot the queue first: launching can synchronously abort and
	// re-append to at.retryq.
	q := at.retryq
	at.retryq = nil
	for _, tx := range q {
		if tx.notBefore <= t.Now() {
			did = true
			n.launch(t, at, tx)
		} else {
			at.retryq = append(at.retryq, tx)
		}
	}
	if len(at.retryq) > 0 {
		earliest := at.retryq[0].notBefore
		for _, tx := range at.retryq[1:] {
			if tx.notBefore < earliest {
				earliest = tx.notBefore
			}
		}
		t.At(earliest-t.Now(), t.Wake)
	}
	// Open-loop arrivals queued by InjectTxn. Snapshot first: launching can
	// synchronously complete, and the completion callback can inject again.
	if len(at.injectq) > 0 {
		inj := at.injectq
		at.injectq = nil
		for _, in := range inj {
			did = true
			tx := &btxn{
				id:    txnID(n.id, at.id, at.nextSeq()),
				desc:  in.desc,
				start: t.Now(),
				node:  n,
				done:  in.done,
			}
			at.inflight[tx.id] = tx
			at.outstanding++
			if in.desc.GenCost > 0 {
				t.Charge(in.desc.GenCost)
			}
			n.launch(t, at, tx)
		}
	}
	if !n.cl.loadOn {
		return did
	}
	for at.outstanding < n.cl.cfg.Outstanding {
		did = true
		desc := n.cl.gen.Next(n.id, at.id, t.Rand())
		tx := &btxn{
			id:    txnID(n.id, at.id, at.nextSeq()),
			desc:  desc,
			start: t.Now(),
			node:  n,
		}
		at.inflight[tx.id] = tx
		at.outstanding++
		if desc.GenCost > 0 {
			t.Charge(desc.GenCost)
		}
		n.launch(t, at, tx)
	}
	return did
}

func (at *appThread) nextSeq() uint32 {
	at.seq++
	return at.seq
}

// applyBackupRecords drains a bounded batch of replicated write sets.
func (n *Node) applyBackupRecords(t *hostrt.Thread) bool {
	p := n.cl.cfg.Params
	did := false
	for i := 0; i < 16 && n.apHead < len(n.applyq); i++ {
		r := n.applyq[n.apHead]
		n.apHead++
		did = true
		b, ok := n.backups[r.shard]
		if !ok {
			panic(fmt.Sprintf("baseline: node %d applying record for shard %d", n.id, r.shard))
		}
		for _, w := range r.writes {
			if n.cl.place.IsBTree(w.key) {
				t.Charge(p.HostBTreeOp)
			} else {
				t.Charge(p.HostStoreOp)
			}
			b.apply(w.key, w.value, w.version)
		}
	}
	return did
}

// completeTxn finalizes an outcome.
func (n *Node) completeTxn(t *hostrt.Thread, tx *btxn, st wire.Status) {
	if st == wire.StatusOK {
		// Retries-exhausted failures were already recorded by retryTxn.
		n.recordCommit(t, tx)
	}
	at := n.app[txnThread(tx.id)]
	delete(at.inflight, tx.id)
	at.outstanding--
	if st == wire.StatusOK {
		n.stats.Committed++
		n.stats.UpdateKeysCommitted += int64(len(tx.desc.UpdateKeys))
		if n.cl.gen.Measure(tx.desc) {
			n.stats.Measured++
			n.stats.Latency.Record(t.Now() - tx.start)
		}
	} else {
		n.stats.Failed++
	}
	if tx.done != nil {
		tx.done(st == wire.StatusOK)
	}
}

// retryTxn re-queues with backoff.
func (n *Node) retryTxn(t *hostrt.Thread, tx *btxn, st wire.Status) {
	n.recordAbort(t, tx, st)
	n.stats.Aborts++
	if int(st) < len(n.stats.AbortReasons) {
		n.stats.AbortReasons[st]++
	}
	tx.retries++
	at := n.app[txnThread(tx.id)]
	if tx.retries > n.cl.cfg.MaxRetries {
		n.completeTxn(t, tx, st)
		return
	}
	delete(at.inflight, tx.id)
	tx.reset()
	tx.id = txnID(n.id, at.id, at.nextSeq())
	at.inflight[tx.id] = tx
	backoff := sim.Backoff(t.Rand(), backoffBase, backoffMax, tx.retries-1)
	tx.notBefore = t.Now() + backoff
	at.retryq = append(at.retryq, tx)
	t.At(backoff, t.Wake)
}

// shardOf is shorthand for the cluster placement.
func (n *Node) shardOf(key uint64) int { return n.cl.place.ShardOf(key) }

// chargeLocal charges the host cost of touching a local key.
func (n *Node) chargeLocal(t *hostrt.Thread, key uint64) {
	if n.cl.place.IsBTree(key) {
		t.Charge(n.cl.cfg.Params.HostBTreeOp)
	} else {
		t.Charge(n.cl.cfg.Params.HostStoreOp)
	}
}

var _ = txnmodel.TxnDesc{}
