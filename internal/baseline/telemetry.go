package baseline

import (
	"fmt"

	"xenic/internal/sim"
	"xenic/internal/telemetry"
	"xenic/internal/wire"
)

// SetTelemetry registers the baseline cluster's time-series probes on s and
// starts its sampling ticker. Call after New and before Start. The series
// mirror the Xenic cluster's naming where the resources correspond —
// transaction rates, windowed latency quantiles, host-thread occupancy and
// queue depth, lock-table size, egress-link occupancy — so the dashboard
// and bottleneck analyzer read both systems identically. Probes are
// read-only; an attached sampler never perturbs the run.
func (cl *Cluster) SetTelemetry(s *telemetry.Sampler) {
	if s == nil {
		return
	}
	for _, n := range cl.nodes {
		n := n
		sub := s.Sub(fmt.Sprintf("node%d", n.id))
		st := &n.stats
		sub.Rate("txn.commit_rate", func() int64 { return st.Committed })
		sub.Rate("txn.abort_rate", func() int64 { return st.Aborts })
		sub.Ratio("txn.lock_conflict_frac",
			func() int64 { return st.AbortReasons[wire.StatusAbortLocked] },
			func() int64 { return st.Committed + st.Aborts })
		sub.Gauge("txn.inflight", func() float64 {
			v := 0
			for _, at := range n.app {
				v += at.outstanding
			}
			return float64(v)
		})
		sub.Quantiles("latency", st.Latency)

		host := n.host
		sub.Occupancy("host.occupancy", func() sim.Time { return host.Utilization().TotalBusy() }, host.Threads())
		sub.Gauge("host.queue_depth", func() float64 { return float64(host.QueueDepth()) })
		sub.Gauge("lock.held", func() float64 { return float64(len(n.locks)) })
		sub.Occupancy("net.tx_occupancy", func() sim.Time { return cl.nw.TxBusy(n.id) }, cl.nw.Lanes())
		sub.Gauge("net.egress_backlog_us", func() float64 { return cl.nw.EgressBacklog(n.id).Micros() })
	}

	// Open-loop front-end series, only when a source is attached: the scope
	// is absent on closed-loop runs, keeping their telemetry exports
	// byte-identical to pre-LoadSource output.
	if cl.loadSrc != nil {
		src := cl.loadSrc
		ls := s.Sub("load")
		ls.Rate("offered_rate", func() int64 { return src.Stats().Offered })
		ls.Rate("admitted_rate", func() int64 { return src.Stats().Admitted })
		ls.Rate("completed_rate", func() int64 { return src.Stats().Completed })
		ls.Rate("rejected_rate", func() int64 { return src.Stats().Rejected })
		ls.Gauge("sessions", func() float64 { return float64(src.Stats().ActiveSessions) })
		ls.Gauge("inflight", func() float64 { return float64(src.Stats().InFlight) })
		ls.Gauge("queue_len", func() float64 { return float64(src.Stats().QueueLen) })
		ls.Gauge("queue_delay_p99_us", func() float64 { return src.Stats().QueueDelayP99.Micros() })
	}

	cs := s.Sub("cluster")
	cs.Rate("commit_rate", func() int64 {
		var v int64
		for _, n := range cl.nodes {
			v += n.stats.Committed
		}
		return v
	})
	s.Attach(cl.eng)
}
