package baseline

import (
	"fmt"

	"xenic/internal/check"
	"xenic/internal/hostrt"
	"xenic/internal/store/btree"
	"xenic/internal/wire"
)

// This file wires the transaction-history recorder (internal/check,
// DESIGN.md §9) into the baseline clusters. As in core, recording is pure
// Go-side bookkeeping at the protocol decision points and never perturbs
// the simulation.

// SetHistory attaches a transaction-history recorder (nil disables
// recording). Call after New and before Start. Prefer xenic.WithHistory at
// construction.
func (cl *Cluster) SetHistory(h *check.History) { cl.hist = h }

// History returns the attached recorder (nil when recording is off).
func (cl *Cluster) History() *check.History { return cl.hist }

// recordCommit appends tx's committed outcome at its commit point (log
// completion, or validation for read-only transactions).
func (n *Node) recordCommit(t *hostrt.Thread, tx *btxn) {
	h := n.cl.hist
	if h == nil {
		return
	}
	h.Add(check.TxnRecord{
		ID:     tx.id,
		Node:   n.id,
		Status: wire.StatusOK,
		Start:  tx.start,
		End:    t.Now(),
		Reads:  check.Reads(tx.reads),
		Writes: check.Writes(tx.writes),
	})
}

// recordAbort appends the aborted outcome of one attempt (retries record
// again under their fresh id).
func (n *Node) recordAbort(t *hostrt.Thread, tx *btxn, st wire.Status) {
	h := n.cl.hist
	if h == nil {
		return
	}
	h.Add(check.TxnRecord{
		ID:     tx.id,
		Node:   n.id,
		Status: st,
		Start:  tx.start,
		End:    t.Now(),
		Reads:  check.Reads(tx.reads),
	})
}

// AuditHistory cross-checks the drained cluster's final state against the
// recorded history: no orphan locks and every replica's versions matching
// the last committed writer. Call only after a successful Drain; returns
// nil when no history is attached.
func (cl *Cluster) AuditHistory() error {
	h := cl.hist
	if h == nil {
		return nil
	}
	last := h.LastVersions()
	for _, n := range cl.nodes {
		if len(n.locks) > 0 {
			key, owner := lowestLock(n.locks)
			return fmt.Errorf("audit: node %d: %d orphan locks after drain (key %d held by txn %#x)",
				n.id, len(n.locks), key, owner)
		}
		if err := auditShard(fmt.Sprintf("node %d primary", n.id), n.primary, last); err != nil {
			return err
		}
		var shards []int
		for s := range n.backups {
			shards = append(shards, s)
		}
		sortInts(shards)
		for _, s := range shards {
			if err := auditShard(fmt.Sprintf("node %d backup of shard %d", n.id, s), n.backups[s], last); err != nil {
				return err
			}
		}
	}
	// Reverse direction: every committed write present at its primary.
	keys := make([]uint64, 0, len(last))
	for k := range last {
		keys = append(keys, k)
	}
	sortKeys(keys)
	for _, key := range keys {
		s := cl.place.ShardOf(key)
		_, ver, ok := cl.nodes[s].primary.read(key)
		if !ok || ver != last[key] {
			return fmt.Errorf("audit: shard %d: committed key %d should be at version %d, store has %d (present=%v)",
				s, key, last[key], ver, ok)
		}
	}
	return nil
}

// auditShard checks one replica's versions against the last committed
// writer of each key (populate installs version 1).
func auditShard(where string, d *shardData, last map[uint64]uint64) error {
	var err error
	bad := func(key, version uint64) error {
		return fmt.Errorf("audit: %s: key %d at version %d, last committed writer installed %d",
			where, key, version, last[key])
	}
	d.hash.ForEach(func(key uint64, version uint64, value []byte) bool {
		if want, ok := last[key]; ok && version != want || !ok && version > 1 {
			err = bad(key, version)
			return false
		}
		return true
	})
	if err != nil {
		return err
	}
	d.btree.AscendRange(0, ^uint64(0), func(it btree.Item) bool {
		if want, ok := last[it.Key]; ok && it.Version != want || !ok && it.Version > 1 {
			err = bad(it.Key, it.Version)
			return false
		}
		return true
	})
	return err
}

// lowestLock picks the deterministic representative of a lock map.
func lowestLock(locks map[uint64]uint64) (key, owner uint64) {
	first := true
	for k, o := range locks {
		if first || k < key {
			key, owner = k, o
			first = false
		}
	}
	return key, owner
}

// sortKeys is insertion sort on uint64 keys (small audit sets).
func sortKeys(a []uint64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}
