package nicrt

import (
	"fmt"
	"math/rand"

	"xenic/internal/metrics"
	"xenic/internal/model"
	"xenic/internal/pcie"
	"xenic/internal/sim"
	"xenic/internal/simnet"
	"xenic/internal/trace"
	"xenic/internal/wire"
)

// Features toggles the runtime-level optimizations evaluated in §5.7
// (Figure 9). Protocol-level toggles live in the core package.
type Features struct {
	// EthAggregation packs many messages per Ethernet frame / PCIe packet
	// via per-destination gather lists (§4.3.2). Off: one frame per message.
	EthAggregation bool
	// AsyncDMA accumulates DMAs in per-core vectors with continuation
	// callbacks (§4.3.1). Off: every DMA is a blocking single-element
	// submission.
	AsyncDMA bool
}

// AllFeatures enables the full Xenic runtime.
func AllFeatures() Features { return Features{EthAggregation: true, AsyncDMA: true} }

// Handler processes one protocol message on a NIC core. src is the sending
// node (the local node for messages from the host).
type Handler func(c *Core, src int, m wire.Msg)

// Stats counts NIC-level events.
type Stats struct {
	RxFrames, RxMsgs    int64
	TxFrames, TxMsgs    int64
	HostRxMsgs          int64 // messages received from the local host
	HostTxMsgs          int64 // messages sent to the local host
	DMAReads, DMAWrites int64
	DupFrames           int64 // duplicate frames suppressed by Seq (fault runs)
	DeadDrops           int64 // frames dropped because no core is alive
	DMARetries          int64 // DMA vectors resubmitted after injected errors
}

// NIC is one server's on-path SmartNIC: a set of polling cores over the
// fabric port, the DMA engine, and the host packet interface.
type NIC struct {
	eng   *sim.Engine
	p     model.Params
	node  int
	nw    *simnet.Network
	dma   *pcie.Engine
	feat  Features
	cores []*Core
	rng   *rand.Rand

	// Duplicate-frame suppression state, allocated lazily on fault-injection
	// runs (the network stamps Frame.Seq per source).
	seen   []map[uint64]struct{}
	maxSeq []uint64

	// epoch is the membership view epoch stamped on every emitted frame;
	// receivers use it to fence traffic from before a node's (re)join.
	epoch int

	handler     Handler
	hostDeliver func(ms []wire.Msg)

	// sched, when non-nil, routes host transaction-start frames through the
	// conflict-aware batch scheduler instead of the static hash dispatch.
	sched *Scheduler

	// sendFn hands a frame to the fabric (the At1 target for frame
	// transmission, bound once so flushes schedule without closures).
	sendFn func(any)

	util  *metrics.Utilization
	stats Stats
	tr    *trace.Tracer

	// Always-on batching distributions (§4.3): recording is two array
	// increments, cheap enough for the NIC hot paths.
	batchSizes metrics.IntHist // messages per transmitted frame
	gatherLens metrics.IntHist // gather-list length per destination flush
	dmaVecOcc  metrics.IntHist // elements per submitted DMA vector
}

// New creates a NIC with ncores active cores attached to nw at node. seed is
// the cluster seed; each NIC derives its PRNG from (seed, node) so distinct
// cluster seeds explore distinct random streams on every node.
func New(eng *sim.Engine, p model.Params, nw *simnet.Network, node, ncores int, seed int64, feat Features) *NIC {
	if ncores <= 0 || ncores > p.NICCores {
		panic(fmt.Sprintf("nicrt: %d cores outside 1..%d", ncores, p.NICCores))
	}
	n := &NIC{
		eng: eng, p: p, node: node, nw: nw,
		dma:  pcie.New(eng, p),
		feat: feat,
		rng:  rand.New(rand.NewSource(seed*1000003 + int64(node)*7919 + 1)),
		util: metrics.NewUtilization(ncores),
	}
	for i := 0; i < ncores; i++ {
		c := &Core{nic: n, id: i, outNet: map[int]*[]wire.Msg{}}
		c.poller = NewPoller(eng, p.NICLoopIdle)
		c.poller.SetWork(c.iteration)
		i := i
		c.poller.SetOnBusy(func(d sim.Time) { n.util.Add(i, d) })
		n.cores = append(n.cores, c)
	}
	n.sendFn = n.sendFrame
	nw.Attach(node, n.dispatchFrame)
	return n
}

// sendFrame transmits a flushed frame at its scheduled handoff instant.
func (n *NIC) sendFrame(arg any) { n.nw.Send(arg.(*simnet.Frame)) }

// Node returns this NIC's node id.
func (n *NIC) Node() int { return n.node }

// Cores returns the number of active cores.
func (n *NIC) Cores() int { return len(n.cores) }

// DMA exposes the NIC's DMA engine (for stats).
func (n *NIC) DMA() *pcie.Engine { return n.dma }

// Stats returns a copy of the counters.
func (n *NIC) Stats() Stats { return n.stats }

// Utilization returns the per-core busy accounting.
func (n *NIC) Utilization() *metrics.Utilization { return n.util }

// QueueDepth reports the total work queued at the NIC's cores right now:
// undelivered frames, host packets, DMA completion batches, and injected
// jobs. A telemetry gauge; O(cores) and read-only.
func (n *NIC) QueueDepth() int {
	d := 0
	for _, c := range n.cores {
		d += len(c.inFrames) + len(c.inHost) + len(c.dmaDone) + len(c.jobs)
	}
	return d
}

// BatchSizes returns the messages-per-frame distribution.
func (n *NIC) BatchSizes() *metrics.IntHist { return &n.batchSizes }

// GatherLens returns the per-destination gather-list length distribution.
func (n *NIC) GatherLens() *metrics.IntHist { return &n.gatherLens }

// DMAVecOcc returns the DMA vector occupancy distribution.
func (n *NIC) DMAVecOcc() *metrics.IntHist { return &n.dmaVecOcc }

// SetTracer attaches tr (nil disables tracing).
func (n *NIC) SetTracer(tr *trace.Tracer) { n.tr = tr }

// RegisterMetrics registers the NIC's counters, batching distributions, and
// DMA-engine byte counters under reg's scope.
func (n *NIC) RegisterMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	reg.RegisterFunc("frames", func() any {
		s := n.stats
		return map[string]any{
			"rx_frames":    s.RxFrames,
			"rx_msgs":      s.RxMsgs,
			"tx_frames":    s.TxFrames,
			"tx_msgs":      s.TxMsgs,
			"host_rx_msgs": s.HostRxMsgs,
			"host_tx_msgs": s.HostTxMsgs,
			"dma_reads":    s.DMAReads,
			"dma_writes":   s.DMAWrites,
			"dup_frames":   s.DupFrames,
			"dead_drops":   s.DeadDrops,
			"dma_retries":  s.DMARetries,
		}
	})
	if n.sched != nil {
		// Only present with the scheduler attached, keeping scheduler-off
		// stats snapshots byte-identical to the goldens.
		reg.RegisterFunc("sched", func() any { return n.sched.Snapshot() })
	}
	reg.RegisterIntHist("batch_msgs_per_frame", &n.batchSizes)
	reg.RegisterIntHist("gather_list_len", &n.gatherLens)
	reg.RegisterIntHist("dma_vector_occupancy", &n.dmaVecOcc)
	reg.RegisterFunc("pcie", func() any { return n.dma.Snapshot() })
}

// SetEpoch updates the view epoch stamped on emitted frames; the protocol
// layer calls it when a new membership view lands.
func (n *NIC) SetEpoch(e int) { n.epoch = e }

// Epoch returns the view epoch currently stamped on emitted frames.
func (n *NIC) Epoch() int { return n.epoch }

// Reset wipes the NIC's soft state for a node restart: the duplicate-frame
// suppression window and the frame epoch. Forgetting seen sequence numbers
// is safe because every pre-restart frame carries a stale epoch and is
// fenced by the protocol layer before it can act.
func (n *NIC) Reset() {
	n.seen = nil
	n.maxSeq = nil
	n.epoch = 0
	if n.sched != nil {
		n.sched.Reset()
	}
}

// OnMessage installs the protocol handler; must be set before traffic flows.
func (n *NIC) OnMessage(h Handler) { n.handler = h }

// OnHostDeliver installs the host-side receive function for NIC->host
// messages (the host runtime's dispatcher).
func (n *NIC) OnHostDeliver(fn func(ms []wire.Msg)) { n.hostDeliver = fn }

// dispatchFrame steers an arriving frame to a core by its flow label. Frames
// whose hashed core is stopped fall through to the next live core (the
// hardware flow engine is reprogrammed around dead cores); when no core is
// alive the frame is counted and dropped. On fault runs, duplicate deliveries
// of the same frame (Frame.Seq already seen from that source) are suppressed.
func (n *NIC) dispatchFrame(f *simnet.Frame) {
	if f.Seq != 0 && n.dupFrame(f) {
		n.stats.DupFrames++
		return
	}
	c := n.liveCoreFrom(int(hash64(uint64(f.Flow)) % uint64(len(n.cores))))
	if c == nil {
		n.stats.DeadDrops++
		return
	}
	c.inFrames = append(c.inFrames, f)
	c.poller.Wake()
}

// dupFrame records f's sequence number and reports whether it was already
// delivered from this source. The seen-set is pruned by window: delayed
// frames arrive out of order, so a bounded set of recent seqs is kept.
func (n *NIC) dupFrame(f *simnet.Frame) bool {
	if n.seen == nil {
		n.seen = make([]map[uint64]struct{}, n.nw.Nodes())
		n.maxSeq = make([]uint64, n.nw.Nodes())
	}
	m := n.seen[f.Src]
	if m == nil {
		m = map[uint64]struct{}{}
		n.seen[f.Src] = m
	}
	if _, dup := m[f.Seq]; dup {
		return true
	}
	m[f.Seq] = struct{}{}
	if f.Seq > n.maxSeq[f.Src] {
		n.maxSeq[f.Src] = f.Seq
	}
	if len(m) > 8192 {
		floor := n.maxSeq[f.Src] - 4096
		for s := range m {
			if s < floor {
				delete(m, s)
			}
		}
	}
	return false
}

// liveCoreFrom returns the first live core scanning from idx, or nil when
// every core is stopped.
func (n *NIC) liveCoreFrom(idx int) *Core {
	for i := 0; i < len(n.cores); i++ {
		c := n.cores[(idx+i)%len(n.cores)]
		if !c.poller.Stopped() {
			return c
		}
	}
	return nil
}

// FromHost delivers a batch of host-originated messages (one PCIe packet)
// to a NIC core. Called by the host runtime after the HostToNIC delay.
// Like dispatchFrame, it routes around stopped cores and counts the batch as
// dropped if none remain.
func (n *NIC) FromHost(ms []wire.Msg) {
	if len(ms) == 0 {
		return
	}
	if n.sched != nil {
		n.sched.fromHost(ms)
		return
	}
	n.deliverHostPacket(ms)
}

// deliverHostPacket is the legacy host-packet dispatch: hash the first
// message's transaction id to a core. The scheduler routes non-start
// messages through here unchanged.
func (n *NIC) deliverHostPacket(ms []wire.Msg) {
	c := n.liveCoreFrom(int(hash64(txnOf(ms[0])) % uint64(len(n.cores))))
	if c == nil {
		n.stats.DeadDrops++
		return
	}
	c.inHost = append(c.inHost, ms)
	c.poller.Wake()
}

// SetScheduler attaches the conflict-aware scheduler (nil restores the
// legacy dispatch). Must be set before traffic flows.
func (n *NIC) SetScheduler(s *Scheduler) {
	n.sched = s
	if s != nil {
		s.nic = n
	}
}

// Scheduler returns the attached scheduler, or nil.
func (n *NIC) Scheduler() *Scheduler { return n.sched }

// SchedDone notifies the scheduler that a transaction closed so its hot-key
// claims release and waiters re-admit. A nil-check no-op when the scheduler
// is off; unknown ids are no-ops too, so every close path may call it.
func (n *NIC) SchedDone(txn uint64) {
	if n.sched != nil {
		n.sched.done(txn)
	}
}

func txnOf(m wire.Msg) uint64 {
	type txnIDer interface{ GetTxnID() uint64 }
	if t, ok := m.(txnIDer); ok {
		return t.GetTxnID()
	}
	return 0
}

func hash64(v uint64) uint64 {
	z := v + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	return z ^ (z >> 31)
}

// StopCore parks core i permanently (failure injection / thread scaling).
func (n *NIC) StopCore(i int) { n.cores[i].poller.Stop() }

// StallCore freezes core i for dur: its next loop iteration is charged the
// whole stall as dead time, delaying everything queued behind it. Finite
// stalls model firmware hiccups without the liveness hazards of StopCore.
func (n *NIC) StallCore(i int, dur sim.Time) {
	n.Inject(i, func(c *Core) { c.poller.Charge(dur) })
}

// LiveCore returns the index of a live core (0 when every core is stopped,
// so existing Inject(0) semantics degrade gracefully).
func (n *NIC) LiveCore() int {
	for i, c := range n.cores {
		if !c.poller.Stopped() {
			return i
		}
	}
	return 0
}

// CoreFor returns a live core index for flow key k: the deterministic hash
// choice, falling through to the next live core when that one is stopped.
func (n *NIC) CoreFor(k uint64) int {
	idx := int(hash64(k) % uint64(len(n.cores)))
	for i := 0; i < len(n.cores); i++ {
		j := (idx + i) % len(n.cores)
		if !n.cores[j].poller.Stopped() {
			return j
		}
	}
	return idx
}

// SetDMAFault installs the DMA completion-error decision hook (fault runs).
func (n *NIC) SetDMAFault(fn func() bool) { n.dma.SetFaultHook(fn) }

// StallDMA freezes the DMA engine for dur.
func (n *NIC) StallDMA(dur sim.Time) { n.dma.Stall(dur) }

// InjectRx delivers one message to the protocol handler on a live core as
// if it had arrived from src in a frame stamped with the given view epoch;
// tests exercise the receive-side epoch fence with it.
func (n *NIC) InjectRx(epoch, src int, m wire.Msg) {
	n.Inject(n.LiveCore(), func(c *Core) {
		c.rxEpoch = epoch
		c.nic.handler(c, src, m)
		c.rxEpoch = 0
	})
}

// Inject schedules fn to run on core i's next loop iteration; protocol
// timers and NIC-originated microbenchmarks use it.
func (n *NIC) Inject(i int, fn func(c *Core)) {
	c := n.cores[i%len(n.cores)]
	c.jobs = append(c.jobs, fn)
	c.poller.Wake()
}

// Core is one NIC core plus its aggregation state. Protocol handlers
// receive a *Core and use it to charge compute time, issue DMAs, and send
// messages; everything they emit is aggregated at iteration end (§4.3.2).
type Core struct {
	nic    *NIC
	id     int
	poller *Poller

	inFrames []*simnet.Frame
	inHost   [][]wire.Msg
	dmaDone  [][]func()
	jobs     []func(c *Core)

	// Spare backing arrays ping-ponged with the input queues each iteration,
	// so draining a queue does not force the next arrivals to reallocate it.
	frameSpare []*simnet.Frame
	hostSpare  [][]wire.Msg
	doneSpare  [][]func()
	jobSpare   []func(c *Core)

	pendReadSizes  []int
	pendReadCbs    []func()
	pendWriteSizes []int
	pendWriteCbs   []func()

	// Freelists for the per-vector sizes/continuation arrays: sizes come back
	// when a vector completes, continuation batches when they have run.
	sizePool [][]int
	cbPool   [][]func()

	outNet  map[int]*[]wire.Msg
	outDsts []int
	outHost []wire.Msg

	// rxEpoch is the view epoch stamped on the frame whose messages are being
	// handled right now (0 for host-, DMA-, and job-context work).
	rxEpoch int
}

// RxEpoch returns the view epoch of the frame currently being handled, or 0
// when the handler is running in a host/DMA/job context.
func (c *Core) RxEpoch() int { return c.rxEpoch }

// iteration is one burst loop pass: handle a burst of Ethernet and host
// traffic and a burst of DMA completions, then flush DMA vectors and
// aggregated transmissions.
func (c *Core) iteration() bool {
	did := false
	p := c.nic.p

	frames := c.inFrames
	c.inFrames = c.frameSpare[:0]
	for i, f := range frames {
		did = true
		c.poller.Charge(p.NICFrameRx)
		c.nic.stats.RxFrames++
		if tr := c.nic.tr; tr.Enabled() {
			tr.Instant("net", "frame-rx", c.nic.node, c.id, c.nic.eng.Now(),
				trace.Args{"src": f.Src, "bytes": f.PayloadBytes, "msgs": len(f.Msgs)})
		}
		c.rxEpoch = f.Epoch
		for _, raw := range f.Msgs {
			m := raw.(wire.Msg)
			c.nic.stats.RxMsgs++
			c.poller.Charge(p.NICMsgHandle)
			c.nic.handler(c, f.Src, m)
		}
		frames[i] = nil
		c.nic.nw.Recycle(f)
	}
	c.rxEpoch = 0
	c.frameSpare = frames[:0]

	hostPkts := c.inHost
	c.inHost = c.hostSpare[:0]
	for i, pkt := range hostPkts {
		did = true
		c.poller.Charge(p.NICFrameRx) // PCIe packet descriptor handling
		for _, m := range pkt {
			c.nic.stats.HostRxMsgs++
			c.poller.Charge(p.NICMsgHandle)
			c.nic.handler(c, c.nic.node, m)
		}
		hostPkts[i] = nil
	}
	c.hostSpare = hostPkts[:0]

	done := c.dmaDone
	c.dmaDone = c.doneSpare[:0]
	for i, batch := range done {
		did = true
		for j, cb := range batch {
			cb()
			batch[j] = nil
		}
		c.cbPool = append(c.cbPool, batch[:0])
		done[i] = nil
	}
	c.doneSpare = done[:0]

	jobs := c.jobs
	c.jobs = c.jobSpare[:0]
	for i, j := range jobs {
		did = true
		j(c)
		jobs[i] = nil
	}
	c.jobSpare = jobs[:0]

	c.flushDMA()
	c.flushNet()
	c.flushHost()
	return did
}

// Charge adds compute cost to the current iteration.
func (c *Core) Charge(d sim.Time) { c.poller.Charge(d) }

// Now returns the core's current instant.
func (c *Core) Now() sim.Time { return c.poller.Now() }

// Node returns the local node id.
func (c *Core) Node() int { return c.nic.node }

// Rand returns the NIC's PRNG.
func (c *Core) Rand() *rand.Rand { return c.nic.rng }

// Send queues m for transmission to node dst, aggregated with other
// messages to the same destination at iteration end.
func (c *Core) Send(dst int, m wire.Msg) {
	if dst == c.nic.node {
		panic("nicrt: self-send; local work must not use the fabric")
	}
	q, ok := c.outNet[dst]
	if !ok {
		q = new([]wire.Msg)
		c.outNet[dst] = q
	}
	if len(*q) == 0 {
		// First message for dst since the last flush: (re-)enter it in the
		// deterministic flush order.
		c.outDsts = append(c.outDsts, dst)
	}
	*q = append(*q, m)
}

// SendHost queues m for delivery to the local host over PCIe.
func (c *Core) SendHost(m wire.Msg) { c.outHost = append(c.outHost, m) }

// DMARead issues an asynchronous host-memory read of the given element
// sizes; cb runs (on this core, in a later iteration) once the data is in
// NIC memory. With AsyncDMA disabled the core blocks for the completion.
func (c *Core) DMARead(sizes []int, cb func()) { c.dmaOp(false, sizes, cb) }

// DMAWrite issues an asynchronous host-memory write; cb runs once the
// completion status lands (e.g. to send a LOG acknowledgement).
func (c *Core) DMAWrite(sizes []int, cb func()) { c.dmaOp(true, sizes, cb) }

func (c *Core) dmaOp(write bool, sizes []int, cb func()) {
	if len(sizes) == 0 {
		panic("nicrt: empty DMA")
	}
	p := c.nic.p
	if write {
		c.nic.stats.DMAWrites += int64(len(sizes))
	} else {
		c.nic.stats.DMAReads += int64(len(sizes))
	}
	if !c.nic.feat.AsyncDMA {
		// Blocking mode (ablation baseline): submit immediately as its own
		// vector and stall the core until completion.
		c.Charge(p.DMASubmit)
		c.nic.dmaVecOcc.Record(len(sizes))
		if tr := c.nic.tr; tr.Enabled() {
			tr.Instant("dma", "dma-vec", c.nic.node, c.id, c.nic.eng.Now(),
				trace.Args{"n": len(sizes), "write": write})
		}
		lat := p.DMAReadLatency
		if write {
			lat = p.DMAWriteLatency
		}
		c.nic.dma.Submit(c.id%p.DMAQueues, &pcie.Vector{Write: write, Sizes: sizes})
		c.Charge(lat)
		if cb != nil {
			cb()
		}
		return
	}
	for _, sz := range sizes {
		if write {
			c.pendWriteSizes = append(c.pendWriteSizes, sz)
			if len(c.pendWriteSizes) == p.DMAVectorMax {
				if cb != nil {
					c.pendWriteCbs = append(c.pendWriteCbs, cb)
					cb = nil
				}
				c.submitVector(true)
				continue
			}
		} else {
			c.pendReadSizes = append(c.pendReadSizes, sz)
			if len(c.pendReadSizes) == p.DMAVectorMax {
				if cb != nil {
					c.pendReadCbs = append(c.pendReadCbs, cb)
					cb = nil
				}
				c.submitVector(false)
				continue
			}
		}
	}
	if cb != nil {
		if write {
			c.pendWriteCbs = append(c.pendWriteCbs, cb)
		} else {
			c.pendReadCbs = append(c.pendReadCbs, cb)
		}
	}
}

// submitVector submits the pending read or write vector, amortizing the
// submission cost and registering the completion continuation.
func (c *Core) submitVector(write bool) {
	p := c.nic.p
	var sizes []int
	var cbs []func()
	if write {
		sizes, cbs = c.pendWriteSizes, c.pendWriteCbs
		c.pendWriteSizes, c.pendWriteCbs = c.grabSizes(), c.grabCbs()
	} else {
		sizes, cbs = c.pendReadSizes, c.pendReadCbs
		c.pendReadSizes, c.pendReadCbs = c.grabSizes(), c.grabCbs()
	}
	if len(sizes) == 0 {
		return
	}
	c.Charge(p.DMASubmit)
	c.nic.dmaVecOcc.Record(len(sizes))
	if tr := c.nic.tr; tr.Enabled() {
		tr.Instant("dma", "dma-vec", c.nic.node, c.id, c.nic.eng.Now(),
			trace.Args{"n": len(sizes), "write": write})
	}
	core := c
	queue := c.id % p.DMAQueues
	v := &pcie.Vector{
		Write: write,
		Sizes: sizes,
		Complete: func() {
			if len(cbs) > 0 {
				core.dmaDone = append(core.dmaDone, cbs)
			} else if cap(cbs) > 0 {
				core.cbPool = append(core.cbPool, cbs[:0])
			}
			// The engine is done with the vector; its sizes array can back a
			// future vector.
			core.sizePool = append(core.sizePool, sizes[:0])
			core.poller.Wake()
		},
	}
	// On fault runs the engine may fail the completion; the runtime retries
	// the same vector after a deterministic capped-exponential backoff, so a
	// burst of injected errors delays the continuations instead of losing
	// them.
	attempt := 0
	v.Failed = func() {
		attempt++
		core.nic.stats.DMARetries++
		if tr := core.nic.tr; tr.Enabled() {
			tr.Instant("fault", "dma-retry", core.nic.node, core.id, core.nic.eng.Now(),
				trace.Args{"attempt": attempt, "write": write})
		}
		core.nic.eng.After(dmaRetryBackoff(attempt), func() { core.nic.dma.Submit(queue, v) })
	}
	// Submit at the core's current instant so engine admission sees the
	// true submission time, not the iteration's start.
	c.poller.At(0, func() { c.nic.dma.Submit(queue, v) })
}

// grabSizes returns a recycled sizes array (or nil; append allocates then).
func (c *Core) grabSizes() []int {
	if n := len(c.sizePool); n > 0 {
		s := c.sizePool[n-1]
		c.sizePool = c.sizePool[:n-1]
		return s
	}
	return nil
}

// grabCbs returns a recycled continuation array (or nil).
func (c *Core) grabCbs() []func() {
	if n := len(c.cbPool); n > 0 {
		s := c.cbPool[n-1]
		c.cbPool = c.cbPool[:n-1]
		return s
	}
	return nil
}

// DMA resubmission backoff: deterministic capped doubling, mirroring the
// transport-level retransmission policy in simnet.
const (
	dmaRetryBase = 2 * sim.Microsecond
	dmaRetryMax  = 50 * sim.Microsecond
)

func dmaRetryBackoff(attempt int) sim.Time {
	d := dmaRetryBase
	for i := 1; i < attempt && d < dmaRetryMax; i++ {
		d *= 2
	}
	if d > dmaRetryMax {
		d = dmaRetryMax
	}
	return d
}

// flushDMA submits any partial vectors at iteration end ("when a NIC core
// is idle, or when the DMA vector fills" — §4.3.1).
func (c *Core) flushDMA() {
	c.submitVector(false)
	c.submitVector(true)
}

// flushNet transmits each destination's gather list, packing messages into
// MTU-bounded frames when aggregation is enabled. Frames come from the
// fabric's freelist and carry their messages in the frame's own (recycled)
// Msgs array, and handoff is scheduled closure-free, so a flush of an
// already-warm core allocates nothing.
func (c *Core) flushNet() {
	p := c.nic.p
	flow := c.nic.node*64 + c.id
	for _, dst := range c.outDsts {
		q := c.outNet[dst]
		ms := *q
		if len(ms) == 0 {
			continue
		}
		c.nic.gatherLens.Record(len(ms))
		if !c.nic.feat.EthAggregation {
			for i, m := range ms {
				c.nic.stats.TxMsgs++
				f := c.nic.nw.NewFrame()
				f.Msgs = append(f.Msgs, m)
				c.emitFrame(dst, flow, m.WireSize(), f)
				ms[i] = nil
			}
			*q = ms[:0]
			continue
		}
		f := c.nic.nw.NewFrame()
		batchBytes := 0
		for i, m := range ms {
			sz := m.WireSize()
			c.nic.stats.TxMsgs++
			if batchBytes > 0 && batchBytes+sz > p.MTU {
				c.emitFrame(dst, flow, batchBytes, f)
				f = c.nic.nw.NewFrame()
				batchBytes = 0
			}
			f.Msgs = append(f.Msgs, m)
			batchBytes += sz
			ms[i] = nil
		}
		c.emitFrame(dst, flow, batchBytes, f)
		*q = ms[:0]
	}
	c.outDsts = c.outDsts[:0]
}

// emitFrame stamps and transmits one gathered frame carrying bytes of
// payload. Messages larger than the MTU are fragmented; the payload rides
// the leading frames and the messages are delivered with the final fragment
// (last-bit arrival).
func (c *Core) emitFrame(dst, flow, bytes int, f *simnet.Frame) {
	p := c.nic.p
	for bytes > p.MTU {
		c.Charge(p.NICFrameTx)
		c.nic.stats.TxFrames++
		frag := c.nic.nw.NewFrame()
		frag.Src, frag.Dst, frag.PayloadBytes, frag.Flow = c.nic.node, dst, p.MTU, flow
		frag.Epoch = c.nic.epoch
		c.nic.eng.At1(c.poller.Now(), c.nic.sendFn, frag)
		bytes -= p.MTU
	}
	c.Charge(p.NICFrameTx)
	c.nic.stats.TxFrames++
	c.nic.batchSizes.Record(len(f.Msgs))
	if tr := c.nic.tr; tr.Enabled() {
		tr.Instant("net", "frame-tx", c.nic.node, c.id, c.nic.eng.Now(),
			trace.Args{"dst": dst, "bytes": bytes, "msgs": len(f.Msgs)})
	}
	f.Src, f.Dst, f.PayloadBytes, f.Flow = c.nic.node, dst, bytes, flow
	f.Epoch = c.nic.epoch
	// Transmit at the core's current instant so link serialization starts
	// when the core actually hands off the frame.
	c.nic.eng.At1(c.poller.Now(), c.nic.sendFn, f)
}

// flushHost delivers queued NIC->host messages as one PCIe packet.
func (c *Core) flushHost() {
	if len(c.outHost) == 0 {
		return
	}
	ms := c.outHost
	c.outHost = nil
	c.nic.stats.HostTxMsgs += int64(len(ms))
	c.Charge(c.nic.p.NICFrameTx)
	if tr := c.nic.tr; tr.Enabled() {
		tr.Instant("pcie", "host-tx", c.nic.node, c.id, c.nic.eng.Now(),
			trace.Args{"msgs": len(ms)})
	}
	deliver := c.nic.hostDeliver
	if deliver == nil {
		panic("nicrt: no host delivery function installed")
	}
	c.poller.At(c.nic.p.NICToHost, func() { deliver(ms) })
}
