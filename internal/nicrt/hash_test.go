package nicrt

import (
	"testing"
)

// chiSquared returns the chi-squared statistic of counts against a uniform
// expectation.
func chiSquared(counts []int, total int) float64 {
	exp := float64(total) / float64(len(counts))
	x := 0.0
	for _, c := range counts {
		d := float64(c) - exp
		x += d * d / exp
	}
	return x
}

// hash64 steers every dispatch decision in this package (frame flows, host
// packets, scheduler routing), and its inputs are decidedly low-entropy:
// sequential transaction ids, node*64+core flow labels, small dense workload
// key spaces. A finalizer that left structure in the low bits would pile
// whole workloads onto a few NIC cores. Each stream below is a DISTINCT key
// set (repeats would amplify per-key placement into a guaranteed chi-squared
// failure for any hash) fed through hash64 mod cores; the core histogram
// must pass a chi-squared uniformity test.
//
// Critical values for p=0.001: df=7 -> 24.32, df=15 -> 37.70. A fair hash
// fails each stream one time in a thousand; the streams are fixed, so the
// test is deterministic — it documents that hash64 passes (measured: worst
// stream is the 128 flow labels at 18.5 over 16 cores; the dense-integer
// streams land near 0, i.e. sub-random uniformity), and catches any future
// swap to a weaker mixer.
func TestHash64UniformOverLowEntropyStreams(t *testing.T) {
	const n = 1 << 14
	streams := []struct {
		name string
		keys []uint64
	}{
		{"sequential", nil},      // txn ids from each host's id counter
		{"node-stamped", nil},    // id = node<<48 | seq
		{"flow-labels", nil},     // node*64 + core, tiny dense integers
		{"tpcc-composite", nil},  // table tag | warehouse | district fields
		{"strided-4k", nil},      // page-aligned: all low bits zero
		{"smallbank-pairs", nil}, // two dense account-id regions
	}
	for i := 0; i < n; i++ {
		streams[0].keys = append(streams[0].keys, uint64(i))
		streams[1].keys = append(streams[1].keys, uint64(i%4)<<48|uint64(i/4))
		streams[4].keys = append(streams[4].keys, uint64(i)*4096)
		streams[5].keys = append(streams[5].keys, uint64(i%2)<<32|uint64(i/2))
	}
	for node := 0; node < 16; node++ {
		for core := 0; core < 8; core++ {
			streams[2].keys = append(streams[2].keys, uint64(node*64+core))
		}
	}
	for w := uint64(0); w < 72; w++ {
		for d := uint64(0); d < 10; d++ {
			streams[3].keys = append(streams[3].keys, 3<<56|w<<16|d)
		}
	}
	for _, cores := range []int{8, 16} {
		crit := map[int]float64{8: 24.32, 16: 37.70}[cores]
		for _, s := range streams {
			counts := make([]int, cores)
			for _, k := range s.keys {
				counts[hash64(k)%uint64(cores)]++
			}
			if x := chiSquared(counts, len(s.keys)); x > crit {
				t.Errorf("%s over %d cores: chi-squared %.1f > %.2f (counts %v)",
					s.name, cores, x, crit, counts)
			}
		}
	}
}

// TestHash64NotIdentity pins the property the dispatch paths rely on: the
// finalizer actually mixes (distinct from the identity and from a plain
// multiply), so adjacent keys do not map to adjacent cores.
func TestHash64NotIdentity(t *testing.T) {
	same := 0
	for i := uint64(0); i < 1024; i++ {
		if hash64(i)%8 == i%8 {
			same++
		}
	}
	// A mixing hash agrees with the identity mapping ~1/8 of the time.
	if same > 256 {
		t.Fatalf("hash64 mod 8 matches identity on %d/1024 sequential keys", same)
	}
}

// TestCoreForSkipsStoppedCores pins CoreFor's fall-through: the hash choice
// when live, the next live core otherwise, and the hash choice again (even
// though stopped) when every core is down so callers degrade gracefully.
func TestCoreForSkipsStoppedCores(t *testing.T) {
	eng, _, a, _, _ := twoNICs(t, AllFeatures())
	_ = eng
	k := uint64(12345)
	want := int(hash64(k) % uint64(a.Cores()))
	if got := a.CoreFor(k); got != want {
		t.Fatalf("CoreFor = %d, want hash choice %d", got, want)
	}
	a.StopCore(want)
	next := (want + 1) % a.Cores()
	if got := a.CoreFor(k); got != next {
		t.Fatalf("CoreFor with %d stopped = %d, want %d", want, a.CoreFor(k), next)
	}
	for i := 0; i < a.Cores(); i++ {
		a.StopCore(i)
	}
	if got := a.CoreFor(k); got != want {
		t.Fatalf("CoreFor all-stopped = %d, want hash choice %d", got, want)
	}
}
