package nicrt

import (
	"testing"

	"xenic/internal/model"
	"xenic/internal/sim"
	"xenic/internal/simnet"
	"xenic/internal/wire"
)

func TestPollerChargesAndSequencing(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewPoller(eng, 100*sim.Nanosecond)
	var iterAt []sim.Time
	work := 3
	p.SetWork(func() bool {
		iterAt = append(iterAt, eng.Now())
		if work > 0 {
			work--
			p.Charge(500 * sim.Nanosecond)
			return true
		}
		return false
	})
	var busy sim.Time
	p.SetOnBusy(func(d sim.Time) { busy += d })
	p.Wake()
	eng.RunAll()
	// Iterations: pickup at 100ns, then back to back every 500ns while busy,
	// plus one final empty pass.
	if len(iterAt) != 4 {
		t.Fatalf("iterations at %v", iterAt)
	}
	if iterAt[0] != 100*sim.Nanosecond || iterAt[1] != 600*sim.Nanosecond || iterAt[2] != 1100*sim.Nanosecond {
		t.Fatalf("iteration times %v", iterAt)
	}
	if busy != 1500*sim.Nanosecond {
		t.Fatalf("busy = %v", busy)
	}
}

func TestPollerWakeDuringIteration(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewPoller(eng, 100*sim.Nanosecond)
	n := 0
	p.SetWork(func() bool {
		n++
		return false // no work found, but a wake arrives mid-iteration
	})
	p.Wake()
	// Arrival while the first iteration is conceptually in flight.
	eng.At(100*sim.Nanosecond, func() { p.Wake() })
	eng.RunAll()
	if n < 2 {
		t.Fatalf("wake during iteration lost: %d iterations", n)
	}
}

func TestPollerStop(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewPoller(eng, 100*sim.Nanosecond)
	n := 0
	p.SetWork(func() bool { n++; return true })
	p.Wake()
	eng.At(1*sim.Microsecond, p.Stop)
	eng.Run(10 * sim.Microsecond)
	if !p.Stopped() {
		t.Fatal("not stopped")
	}
	ran := n
	p.Wake()
	eng.Run(20 * sim.Microsecond)
	if n != ran {
		t.Fatal("stopped poller ran")
	}
}

func TestPollerNegativeChargePanics(t *testing.T) {
	eng := sim.NewEngine(1)
	p := NewPoller(eng, 100*sim.Nanosecond)
	p.SetWork(func() bool {
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		p.Charge(-1)
		return false
	})
	p.Wake()
	eng.RunAll()
}

// twoNICs builds a 2-node fabric with echo firmware on node 1.
func twoNICs(t *testing.T, feat Features) (*sim.Engine, *simnet.Network, *NIC, *NIC, model.Params) {
	t.Helper()
	eng := sim.NewEngine(1)
	p := model.Default()
	nw := simnet.New(eng, p, 2)
	a := New(eng, p, nw, 0, 4, 1, feat)
	b := New(eng, p, nw, 1, 4, 1, feat)
	for _, n := range []*NIC{a, b} {
		n.OnHostDeliver(func(ms []wire.Msg) {})
	}
	return eng, nw, a, b, p
}

func TestNICEchoRoundTrip(t *testing.T) {
	eng, _, a, b, p := twoNICs(t, AllFeatures())
	// b echoes Execute as ExecuteResp; a records completion time.
	b.OnMessage(func(c *Core, src int, m wire.Msg) {
		req := m.(*wire.Execute)
		c.Charge(p.NICIndexOp)
		c.Send(src, &wire.ExecuteResp{Header: wire.Header{TxnID: req.TxnID, Src: uint8(c.Node())}})
	})
	var doneAt sim.Time
	var sentAt sim.Time
	a.OnMessage(func(c *Core, src int, m wire.Msg) {
		if _, ok := m.(*wire.ExecuteResp); ok {
			doneAt = eng.Now()
		}
	})
	a.Inject(0, func(c *Core) {
		sentAt = c.Now()
		c.Send(1, &wire.Execute{Header: wire.Header{TxnID: 42, Src: 0}, ReadKeys: []uint64{1}})
	})
	eng.RunAll()
	if doneAt == 0 {
		t.Fatal("no echo received")
	}
	rtt := doneAt - sentAt
	// NIC-to-NIC RPC RTT should be a couple of microseconds: two wire
	// crossings (~0.7us each) plus software handling — and importantly
	// below 5us (it beats two-sided RDMA RPC per §3.2).
	if rtt < 1*sim.Microsecond || rtt > 5*sim.Microsecond {
		t.Fatalf("NIC-NIC RTT = %v", rtt)
	}
	if a.Stats().TxMsgs != 1 || a.Stats().RxMsgs != 1 || b.Stats().RxMsgs != 1 {
		t.Fatalf("stats: a=%+v b=%+v", a.Stats(), b.Stats())
	}
}

func TestAggregationPacksFrames(t *testing.T) {
	eng, nw, a, b, _ := twoNICs(t, AllFeatures())
	got := 0
	b.OnMessage(func(c *Core, src int, m wire.Msg) { got++ })
	a.OnMessage(func(c *Core, src int, m wire.Msg) {})
	a.Inject(0, func(c *Core) {
		for i := 0; i < 20; i++ {
			c.Send(1, &wire.ValidateResp{Header: wire.Header{TxnID: uint64(i), Src: 0}})
		}
	})
	eng.RunAll()
	if got != 20 {
		t.Fatalf("delivered %d", got)
	}
	// 20 x 11B messages fit in one MTU frame.
	if nw.TxFrames(0) != 1 {
		t.Fatalf("sent %d frames, want 1 aggregated", nw.TxFrames(0))
	}
}

func TestNoAggregationOneFramePerMsg(t *testing.T) {
	eng, nw, a, b, _ := twoNICs(t, Features{EthAggregation: false, AsyncDMA: true})
	b.OnMessage(func(c *Core, src int, m wire.Msg) {})
	a.OnMessage(func(c *Core, src int, m wire.Msg) {})
	a.Inject(0, func(c *Core) {
		for i := 0; i < 20; i++ {
			c.Send(1, &wire.ValidateResp{Header: wire.Header{TxnID: uint64(i), Src: 0}})
		}
	})
	eng.RunAll()
	if nw.TxFrames(0) != 20 {
		t.Fatalf("sent %d frames, want 20", nw.TxFrames(0))
	}
}

func TestLargeMessageFragmentation(t *testing.T) {
	eng, nw, a, b, p := twoNICs(t, AllFeatures())
	var got *wire.Commit
	b.OnMessage(func(c *Core, src int, m wire.Msg) { got = m.(*wire.Commit) })
	a.OnMessage(func(c *Core, src int, m wire.Msg) {})
	big := &wire.Commit{Header: wire.Header{TxnID: 1, Src: 0},
		Writes: []wire.KV{{Key: 1, Version: 1, Value: make([]byte, 3000)}}}
	if big.WireSize() <= p.MTU {
		t.Fatal("test message not oversized")
	}
	a.Inject(0, func(c *Core) { c.Send(1, big) })
	eng.RunAll()
	if got == nil || len(got.Writes[0].Value) != 3000 {
		t.Fatal("oversized message not delivered")
	}
	if nw.TxFrames(0) < 3 {
		t.Fatalf("only %d fragments", nw.TxFrames(0))
	}
}

func TestAsyncDMABatchesVectors(t *testing.T) {
	eng, _, a, _, _ := twoNICs(t, AllFeatures())
	a.OnMessage(func(c *Core, src int, m wire.Msg) {})
	completed := 0
	a.Inject(0, func(c *Core) {
		for i := 0; i < 30; i++ {
			c.DMAWrite([]int{64}, func() { completed++ })
		}
	})
	eng.RunAll()
	if completed != 30 {
		t.Fatalf("completed %d", completed)
	}
	// 30 elements in 15-max vectors: exactly 2 submissions.
	if a.DMA().Submissions() != 2 {
		t.Fatalf("submissions = %d, want 2", a.DMA().Submissions())
	}
	if a.Stats().DMAWrites != 30 {
		t.Fatalf("stats writes = %d", a.Stats().DMAWrites)
	}
}

func TestBlockingDMASubmitsSingles(t *testing.T) {
	eng, _, a, _, _ := twoNICs(t, Features{EthAggregation: true, AsyncDMA: false})
	a.OnMessage(func(c *Core, src int, m wire.Msg) {})
	completed := 0
	var spent sim.Time
	a.Inject(0, func(c *Core) {
		start := c.Now()
		for i := 0; i < 10; i++ {
			c.DMAWrite([]int{64}, func() { completed++ })
		}
		spent = c.Now() - start
	})
	eng.RunAll()
	if completed != 10 {
		t.Fatalf("completed %d", completed)
	}
	if a.DMA().Submissions() != 10 {
		t.Fatalf("submissions = %d, want 10", a.DMA().Submissions())
	}
	// Blocking mode stalls the core for each completion (~570ns+190ns x10).
	if spent < 7*sim.Microsecond {
		t.Fatalf("blocking DMAs consumed only %v", spent)
	}
}

func TestDMAReadCallbackLatency(t *testing.T) {
	eng, _, a, _, p := twoNICs(t, AllFeatures())
	a.OnMessage(func(c *Core, src int, m wire.Msg) {})
	var start, done sim.Time
	a.Inject(0, func(c *Core) {
		start = c.Now()
		c.DMARead([]int{128}, func() { done = c.Now() })
	})
	eng.RunAll()
	if done == 0 {
		t.Fatal("read callback never ran")
	}
	lat := done - start
	if lat < p.DMAReadLatency {
		t.Fatalf("read completed in %v, below completion latency %v", lat, p.DMAReadLatency)
	}
	if lat > p.DMAReadLatency+2*sim.Microsecond {
		t.Fatalf("read took %v", lat)
	}
}

func TestHostPathDelivery(t *testing.T) {
	eng, _, a, _, p := twoNICs(t, AllFeatures())
	var hostGot []wire.Msg
	var hostAt sim.Time
	a.OnHostDeliver(func(ms []wire.Msg) { hostGot = ms; hostAt = eng.Now() })
	a.OnMessage(func(c *Core, src int, m wire.Msg) {
		// Forward host message back to host.
		c.SendHost(m)
	})
	var sentAt sim.Time
	eng.Defer(func() {
		sentAt = eng.Now()
		a.FromHost([]wire.Msg{&wire.TxnDone{Header: wire.Header{TxnID: 5, Src: 0}}})
	})
	eng.RunAll()
	if len(hostGot) != 1 {
		t.Fatalf("host got %d msgs", len(hostGot))
	}
	if hostAt-sentAt < p.NICToHost {
		t.Fatalf("host delivery after %v, below PCIe latency %v", hostAt-sentAt, p.NICToHost)
	}
	if a.Stats().HostRxMsgs != 1 || a.Stats().HostTxMsgs != 1 {
		t.Fatalf("host stats: %+v", a.Stats())
	}
}

func TestSelfSendPanics(t *testing.T) {
	eng, _, a, _, _ := twoNICs(t, AllFeatures())
	a.OnMessage(func(c *Core, src int, m wire.Msg) {})
	a.Inject(0, func(c *Core) {
		defer func() {
			if recover() == nil {
				t.Error("no panic on self-send")
			}
		}()
		c.Send(0, &wire.ValidateResp{})
	})
	eng.RunAll()
}

func TestAllCoresStoppedFramesDeadDrop(t *testing.T) {
	eng, _, a, b, _ := twoNICs(t, AllFeatures())
	got := 0
	b.OnMessage(func(c *Core, src int, m wire.Msg) { got++ })
	a.OnMessage(func(c *Core, src int, m wire.Msg) {})
	for i := 0; i < b.Cores(); i++ {
		b.StopCore(i)
	}
	a.Inject(0, func(c *Core) {
		for i := 0; i < 8; i++ {
			c.Send(1, &wire.ValidateResp{Header: wire.Header{TxnID: uint64(i)}})
		}
	})
	eng.RunAll()
	if got != 0 {
		t.Fatalf("dead NIC delivered %d messages", got)
	}
	if b.Stats().DeadDrops == 0 {
		t.Fatal("frames to a dead NIC were not counted as dead drops")
	}
	if b.Stats().RxMsgs != 0 {
		t.Fatalf("dead NIC counted %d rx msgs", b.Stats().RxMsgs)
	}
}

func TestFromHostReroutesAroundStoppedCores(t *testing.T) {
	eng, _, a, _, _ := twoNICs(t, AllFeatures())
	got := 0
	a.OnMessage(func(c *Core, src int, m wire.Msg) { got++ })
	// Stop all but core 0; host batches with any txn hash still land.
	for i := 1; i < a.Cores(); i++ {
		a.StopCore(i)
	}
	eng.Defer(func() {
		for i := 0; i < 8; i++ {
			a.FromHost([]wire.Msg{&wire.TxnDone{Header: wire.Header{TxnID: uint64(i), Src: 0}}})
		}
	})
	eng.RunAll()
	if got != 8 {
		t.Fatalf("delivered %d host batches with stopped cores", got)
	}
	if a.Stats().DeadDrops != 0 {
		t.Fatalf("dead drops counted with a live core: %d", a.Stats().DeadDrops)
	}
}

func TestFromHostAllCoresStoppedDeadDrops(t *testing.T) {
	eng, _, a, _, _ := twoNICs(t, AllFeatures())
	got := 0
	a.OnMessage(func(c *Core, src int, m wire.Msg) { got++ })
	for i := 0; i < a.Cores(); i++ {
		a.StopCore(i)
	}
	eng.Defer(func() {
		a.FromHost([]wire.Msg{&wire.TxnDone{Header: wire.Header{TxnID: 1, Src: 0}}})
		a.FromHost(nil) // empty batches are ignored, not counted
	})
	eng.RunAll()
	if got != 0 {
		t.Fatalf("dead NIC processed %d host batches", got)
	}
	if a.Stats().DeadDrops != 1 {
		t.Fatalf("dead drops = %d, want 1", a.Stats().DeadDrops)
	}
}

func TestStoppedCoreFramesRerouted(t *testing.T) {
	eng, _, a, b, _ := twoNICs(t, AllFeatures())
	got := 0
	b.OnMessage(func(c *Core, src int, m wire.Msg) { got++ })
	a.OnMessage(func(c *Core, src int, m wire.Msg) {})
	// Stop all but core 0 on b; traffic still flows.
	for i := 1; i < b.Cores(); i++ {
		b.StopCore(i)
	}
	a.Inject(0, func(c *Core) {
		for i := 0; i < 8; i++ {
			c.Send(1, &wire.ValidateResp{Header: wire.Header{TxnID: uint64(i)}})
		}
	})
	eng.RunAll()
	if got != 8 {
		t.Fatalf("delivered %d with stopped cores", got)
	}
}
