package nicrt

import (
	"sort"

	"xenic/internal/sim"
	"xenic/internal/wire"
)

// Scheduler is the conflict-aware NIC-core dispatcher (ROADMAP: Octopus-style
// scheduling on NIC cores). Instead of hashing every transaction-start frame
// straight to a core, the scheduler batches incoming starts, tracks per-key
// hotness with an O(1) decayed counter, and predicts conflicts from the
// declared read/write sets on the start frame. Transactions that would race
// on a hot key are serialized: the first claims the key, later arrivals park
// in a FIFO behind it and are admitted when the owner completes, which turns
// OCC abort/retry storms into orderly queueing. Independent transactions
// spread across live cores exactly like the legacy hash dispatch.
//
// Determinism: all state changes happen on the simulation engine (batch
// flushes and shed deadlines are engine timers; admissions and releases run
// inside protocol callbacks), waiter queues are FIFO, claim sets are sorted,
// and the hotness map is only ever iterated for order-independent deletions
// — so runs are byte-identical at any -j and across repeats of a seed.
//
// A nil scheduler (the default) leaves the NIC's legacy dispatch untouched
// byte-for-byte.
type Scheduler struct {
	nic *NIC
	eng *sim.Engine
	cfg SchedConfig

	heat      map[uint64]heatEntry
	nextSweep sim.Time

	batch      []*schedTxn
	flushArmed bool

	owner   map[uint64]int         // hot key -> in-flight holders (<= MaxOwners)
	claims  map[uint64][]uint64    // txn id -> claimed keys, sorted
	waiters map[uint64][]*schedTxn // hot key -> parked txns, FIFO

	parkedNow int
	gen       int // bumped on Reset so stale timers no-op

	// onShed delivers a parked transaction back to the protocol layer as an
	// abort (StatusAbortSched) when it waited past ShedAfter; installed by
	// the coordinator so the reply path stays protocol-owned.
	onShed func(req *wire.TxnRequest)

	stats SchedStats
}

// SchedConfig tunes the conflict-aware scheduler.
type SchedConfig struct {
	// BatchWindow is how long transaction starts accumulate before a flush
	// admits the batch in arrival order. 0 flushes at the same instant they
	// arrive (still via an engine timer, so intra-instant arrivals batch).
	BatchWindow sim.Time
	// HotThreshold is the decayed touch count at or above which a key counts
	// as hot; only hot keys are claimed and serialized.
	HotThreshold int
	// DecayHalfLife halves a key's touch count each elapsed interval.
	DecayHalfLife sim.Time
	// ShedAfter bounds how long a transaction may stay parked behind hot-key
	// owners before it is shed back to the host as StatusAbortSched. A
	// liveness backstop; generous enough to be rare under plain contention.
	ShedAfter sim.Time
	// MaxOwners is how many in-flight transactions may hold the same hot
	// key at once. The default of 1 is strict serialization; claims
	// already release at validation end (not close), which restores the
	// commit-tail overlap a second owner would otherwise buy. Measured:
	// 2 admits enough racing to give back most of the abort reduction.
	MaxOwners int
	// MaxTracked softly bounds the hotness map; cold entries are swept when
	// the map exceeds it (at most once per half-life).
	MaxTracked int
}

// DefaultSchedConfig returns the tuning used by the -sched flag defaults.
func DefaultSchedConfig() SchedConfig {
	return SchedConfig{
		BatchWindow:   2 * sim.Microsecond,
		HotThreshold:  8,
		DecayHalfLife: 50 * sim.Microsecond,
		ShedAfter:     2 * sim.Millisecond,
		MaxOwners:     1,
		MaxTracked:    1 << 15,
	}
}

// SchedStats counts scheduler events.
type SchedStats struct {
	Submitted  int64 // txn-start frames routed through the scheduler
	Batches    int64 // batch flushes
	Dispatched int64 // admitted to a core
	HotRouted  int64 // dispatched owning at least one hot key (serialized route)
	Parked     int64 // park events, including re-parks behind a second owner
	Shed       int64 // parked past ShedAfter and aborted back to the host
}

type schedState uint8

const (
	schedQueued schedState = iota
	schedParked
	schedDispatched
	schedShed
)

// schedTxn is one transaction start moving through the scheduler.
type schedTxn struct {
	req    *wire.TxnRequest
	reads  []uint64
	writes []uint64
	state  schedState
	timed  bool // shed deadline armed
}

type heatEntry struct {
	count uint32
	last  sim.Time
}

// NewScheduler creates a scheduler; attach it with NIC.SetScheduler.
func NewScheduler(eng *sim.Engine, cfg SchedConfig) *Scheduler {
	if cfg.HotThreshold <= 0 {
		cfg.HotThreshold = DefaultSchedConfig().HotThreshold
	}
	if cfg.DecayHalfLife <= 0 {
		cfg.DecayHalfLife = DefaultSchedConfig().DecayHalfLife
	}
	if cfg.ShedAfter <= 0 {
		cfg.ShedAfter = DefaultSchedConfig().ShedAfter
	}
	if cfg.MaxOwners <= 0 {
		cfg.MaxOwners = DefaultSchedConfig().MaxOwners
	}
	if cfg.MaxTracked <= 0 {
		cfg.MaxTracked = DefaultSchedConfig().MaxTracked
	}
	return &Scheduler{
		eng:     eng,
		cfg:     cfg,
		heat:    map[uint64]heatEntry{},
		owner:   map[uint64]int{},
		claims:  map[uint64][]uint64{},
		waiters: map[uint64][]*schedTxn{},
	}
}

// OnShed installs the protocol callback that aborts a shed transaction back
// to the host. Must be set before traffic flows when shedding can trigger.
func (s *Scheduler) OnShed(fn func(req *wire.TxnRequest)) { s.onShed = fn }

// Stats returns a copy of the counters.
func (s *Scheduler) Stats() SchedStats { return s.stats }

// QueueDepth reports transactions currently held by the scheduler: batched
// awaiting a flush plus parked behind hot-key owners. A telemetry gauge.
func (s *Scheduler) QueueDepth() int { return len(s.batch) + s.parkedNow }

// ParkedNow reports the number of currently parked transactions.
func (s *Scheduler) ParkedNow() int { return s.parkedNow }

// TrackedKeys reports the hotness map's current size.
func (s *Scheduler) TrackedKeys() int { return len(s.heat) }

// HotKeys reports how many tracked keys are currently at or above the hot
// threshold (decayed to now). O(tracked); stats/debug only.
func (s *Scheduler) HotKeys() int {
	now := s.eng.Now()
	hot := 0
	for _, e := range s.heat {
		if int(decayedCount(e, now, s.cfg.DecayHalfLife)) >= s.cfg.HotThreshold {
			hot++
		}
	}
	return hot
}

// Snapshot returns the scheduler's counters and gauges for the stats
// registry.
func (s *Scheduler) Snapshot() map[string]any {
	return map[string]any{
		"submitted":    s.stats.Submitted,
		"batches":      s.stats.Batches,
		"dispatched":   s.stats.Dispatched,
		"hot_routed":   s.stats.HotRouted,
		"parked":       s.stats.Parked,
		"shed":         s.stats.Shed,
		"queue_depth":  s.QueueDepth(),
		"tracked_keys": len(s.heat),
	}
}

// Reset wipes all scheduler state for a node restart. In-flight batch and
// shed timers from before the reset are fenced by a generation check; parked
// transactions are dropped (their host threads were failed with the node).
func (s *Scheduler) Reset() {
	s.gen++
	s.batch = nil
	s.flushArmed = false
	s.parkedNow = 0
	s.heat = map[uint64]heatEntry{}
	s.owner = map[uint64]int{}
	s.claims = map[uint64][]uint64{}
	s.waiters = map[uint64][]*schedTxn{}
}

// fromHost splits one host PCIe packet: transaction starts enter the batch
// queue, everything else (execution resumes, acks) takes the legacy path
// unchanged — later-phase messages must not queue behind admission.
func (s *Scheduler) fromHost(ms []wire.Msg) {
	var rest []wire.Msg
	for _, m := range ms {
		if req, ok := m.(*wire.TxnRequest); ok {
			s.submit(req)
			continue
		}
		rest = append(rest, m)
	}
	if len(rest) > 0 {
		s.nic.deliverHostPacket(rest)
	}
}

// submit enqueues one transaction start and arms the batch flush timer.
func (s *Scheduler) submit(req *wire.TxnRequest) {
	s.stats.Submitted++
	t := &schedTxn{req: req}
	t.reads = req.ReadHints(nil)
	t.writes = req.WriteHints(nil)
	s.batch = append(s.batch, t)
	if !s.flushArmed {
		s.flushArmed = true
		gen := s.gen
		s.eng.After(s.cfg.BatchWindow, func() {
			if gen != s.gen {
				return
			}
			s.flush()
		})
	}
}

// flush admits the accumulated batch in arrival order: touch hotness for
// every declared key, then dispatch or park each transaction.
func (s *Scheduler) flush() {
	s.flushArmed = false
	batch := s.batch
	s.batch = nil
	s.stats.Batches++
	now := s.eng.Now()
	for _, t := range batch {
		for _, k := range t.reads {
			s.touch(k, now)
		}
		for _, k := range t.writes {
			s.touch(k, now)
		}
	}
	for _, t := range batch {
		s.admit(t, now)
	}
}

// admit dispatches t if none of its declared keys is owned by an in-flight
// hot-key claimant, parking it FIFO behind the smallest conflicting key
// otherwise. Parked transactions own nothing, so there are no wait cycles.
func (s *Scheduler) admit(t *schedTxn, now sim.Time) {
	if t.state == schedShed {
		return
	}
	if k, conflict := s.conflictKey(t); conflict {
		t.state = schedParked
		s.waiters[k] = append(s.waiters[k], t)
		s.parkedNow++
		s.stats.Parked++
		if !t.timed {
			t.timed = true
			gen := s.gen
			s.eng.After(s.cfg.ShedAfter, func() {
				if gen != s.gen {
					return
				}
				s.maybeShed(t)
			})
		}
		return
	}
	s.dispatch(t, now)
}

// conflictKey returns the smallest declared key whose owner slots are all
// taken by in-flight transactions. Both reads and writes conflict with a
// saturated (written) key: serializing a reader behind the writers avoids
// the validation abort its stale read would cause.
func (s *Scheduler) conflictKey(t *schedTxn) (uint64, bool) {
	best, found := uint64(0), false
	for _, k := range t.reads {
		if s.owner[k] >= s.cfg.MaxOwners && (!found || k < best) {
			best, found = k, true
		}
	}
	for _, k := range t.writes {
		if s.owner[k] >= s.cfg.MaxOwners && (!found || k < best) {
			best, found = k, true
		}
	}
	return best, found
}

// dispatch claims t's currently-hot write keys and hands the start frame to
// a core: transactions claiming hot keys are routed by their smallest hot
// key (co-locating conflicters on one core), independents by the legacy
// txn-id hash so uncontended load spreads exactly as before.
func (s *Scheduler) dispatch(t *schedTxn, now sim.Time) {
	var claim []uint64
	for _, k := range t.writes {
		if !s.isHot(k, now) || containsKey(claim, k) {
			continue
		}
		s.owner[k]++
		claim = append(claim, k)
	}
	t.state = schedDispatched
	s.stats.Dispatched++
	var idx int
	if len(claim) > 0 {
		sort.Slice(claim, func(i, j int) bool { return claim[i] < claim[j] })
		s.claims[t.req.TxnID] = claim
		s.stats.HotRouted++
		idx = int(hash64(claim[0]) % uint64(len(s.nic.cores)))
	} else {
		idx = int(hash64(t.req.TxnID) % uint64(len(s.nic.cores)))
	}
	c := s.nic.liveCoreFrom(idx)
	if c == nil {
		// Same terminal behavior as the legacy dispatch with no live cores.
		s.nic.stats.DeadDrops++
		s.release(t.req.TxnID, now)
		return
	}
	c.inHost = append(c.inHost, []wire.Msg{t.req})
	c.poller.Wake()
}

// done releases the keys claimed by a completed transaction and re-admits
// its waiters in FIFO order. Called from the protocol layer exactly once per
// transaction close; unknown ids (nothing claimed) are no-ops, so the hook
// is safe on every close path including fence drops.
func (s *Scheduler) done(txn uint64) { s.release(txn, s.eng.Now()) }

func (s *Scheduler) release(txn uint64, now sim.Time) {
	claim, ok := s.claims[txn]
	if !ok {
		return
	}
	delete(s.claims, txn)
	for _, k := range claim {
		if s.owner[k] <= 1 {
			delete(s.owner, k)
		} else {
			s.owner[k]--
		}
	}
	// Wake waiters key by key in sorted claim order; each re-admission may
	// claim keys itself, re-parking later waiters deterministically.
	for _, k := range claim {
		q := s.waiters[k]
		if len(q) == 0 {
			continue
		}
		delete(s.waiters, k)
		for _, w := range q {
			if w.state != schedParked {
				continue
			}
			s.parkedNow--
			w.state = schedQueued
			s.admit(w, now)
		}
	}
}

// maybeShed aborts t back to the host if it is still parked when its shed
// deadline fires. The queue entry is left in place and skipped lazily.
func (s *Scheduler) maybeShed(t *schedTxn) {
	if t.state != schedParked {
		return
	}
	t.state = schedShed
	s.parkedNow--
	s.stats.Shed++
	if s.onShed == nil {
		panic("nicrt: scheduler shed with no OnShed handler installed")
	}
	s.onShed(t.req)
}

// touch bumps k's decayed hotness counter at now.
func (s *Scheduler) touch(k uint64, now sim.Time) {
	e, ok := s.heat[k]
	if !ok && len(s.heat) >= s.cfg.MaxTracked && now >= s.nextSweep {
		s.sweep(now)
	}
	if ok {
		e = decay(e, now, s.cfg.DecayHalfLife)
	} else {
		e = heatEntry{last: now}
	}
	if e.count < 1<<30 {
		e.count++
	}
	s.heat[k] = e
}

// isHot reports whether k's decayed count is at or above the hot threshold.
func (s *Scheduler) isHot(k uint64, now sim.Time) bool {
	e, ok := s.heat[k]
	if !ok {
		return false
	}
	return int(decayedCount(e, now, s.cfg.DecayHalfLife)) >= s.cfg.HotThreshold
}

// Heat returns k's decayed touch count at the current instant (tests).
func (s *Scheduler) Heat(k uint64) int {
	e, ok := s.heat[k]
	if !ok {
		return 0
	}
	return int(decayedCount(e, s.eng.Now(), s.cfg.DecayHalfLife))
}

// sweep deletes entries that have decayed to zero. Deletion order over the
// map does not affect the result, so determinism holds. Runs at most once
// per half-life; the map bound is soft between sweeps.
func (s *Scheduler) sweep(now sim.Time) {
	s.nextSweep = now + s.cfg.DecayHalfLife
	for k, e := range s.heat {
		if decayedCount(e, now, s.cfg.DecayHalfLife) == 0 {
			delete(s.heat, k)
		}
	}
}

// decay applies the elapsed half-lives to e, keeping the remainder interval
// so sub-half-life touches still accumulate decay across calls.
func decay(e heatEntry, now sim.Time, halfLife sim.Time) heatEntry {
	halv := (now - e.last) / halfLife
	if halv <= 0 {
		return e
	}
	if halv >= 32 {
		e.count = 0
	} else {
		e.count >>= uint(halv)
	}
	e.last += halv * halfLife
	return e
}

func decayedCount(e heatEntry, now sim.Time, halfLife sim.Time) uint32 {
	return decay(e, now, halfLife).count
}

// containsKey reports whether ks (a tiny claim list) already holds k.
func containsKey(ks []uint64, k uint64) bool {
	for _, v := range ks {
		if v == k {
			return true
		}
	}
	return false
}
