// Package nicrt implements Xenic's SmartNIC operations framework (§4.3): a
// burst-oriented polling loop on every NIC core, continuation-passing
// asynchronous DMA with per-core pending read/write vectors, per-destination
// gather lists with opportunistic aggregation into MTU-sized Ethernet frames
// and PCIe packets, and the host<->NIC packet interface.
//
// The same Poller abstraction also drives simulated host cores (DPDK
// coordinator threads, RPC handlers, Robinhood workers), so every "thread"
// in the system is a run-to-completion loop over simulated time.
package nicrt

import (
	"xenic/internal/sim"
)

// Poller models one run-to-completion core: each iteration executes the
// work function instantaneously at the iteration's start time while
// charging simulated cost; effects the work schedules happen at the
// appropriate offsets. When an iteration performs no work the core parks
// and must be Woken by an arrival.
type Poller struct {
	eng *sim.Engine
	// pickup is the mean delay between an arrival at an idle core and the
	// next loop iteration observing it (half a loop period).
	pickup sim.Time
	// work runs one iteration; it must drain input queues via the Poller's
	// owner and report whether it did anything.
	work func() bool
	// onBusy, if set, receives the busy time of every iteration
	// (utilization accounting).
	onBusy func(d sim.Time)

	elapsed sim.Time // cost accumulated within the current iteration
	running bool     // an iteration (or its end event) is in flight
	wake    bool     // arrival while running; rerun at iteration end
	stopped bool
	did     bool // last iteration performed work (consumed at iteration end)

	// iterateFn/endFn are the loop callbacks bound once at construction, so
	// the per-iteration schedule sites allocate nothing.
	iterateFn func()
	endFn     func()
}

// NewPoller creates a parked poller. Callers must set the work function via
// SetWork before the first Wake.
func NewPoller(eng *sim.Engine, pickup sim.Time) *Poller {
	p := &Poller{eng: eng, pickup: pickup}
	p.iterateFn = p.iterate
	p.endFn = p.iterationEnd
	return p
}

// SetWork installs the per-iteration work function.
func (p *Poller) SetWork(fn func() bool) { p.work = fn }

// SetOnBusy installs a busy-time observer.
func (p *Poller) SetOnBusy(fn func(d sim.Time)) { p.onBusy = fn }

// Stop parks the poller permanently (simulating a crashed or disabled
// core).
func (p *Poller) Stop() { p.stopped = true }

// Stopped reports whether Stop was called.
func (p *Poller) Stopped() bool { return p.stopped }

// Now returns the core's current instant within an iteration: the
// iteration's start time plus cost charged so far.
func (p *Poller) Now() sim.Time { return p.eng.Now() + p.elapsed }

// Charge adds d of compute cost to the current iteration.
func (p *Poller) Charge(d sim.Time) {
	if d < 0 {
		panic("nicrt: negative charge")
	}
	p.elapsed += d
}

// At schedules fn at the core's current instant plus d.
func (p *Poller) At(d sim.Time, fn func()) { p.eng.At(p.Now()+d, fn) }

// Wake schedules an iteration if the core is parked. Arrivals during a
// running iteration are picked up when it finishes.
func (p *Poller) Wake() {
	if p.stopped {
		return
	}
	if p.running {
		p.wake = true
		return
	}
	p.running = true
	p.eng.At(p.eng.Now()+p.pickup, p.iterateFn)
}

func (p *Poller) iterate() {
	if p.stopped {
		p.running = false
		return
	}
	p.elapsed = 0
	p.wake = false
	p.did = p.work()
	busy := p.elapsed
	if p.onBusy != nil && busy > 0 {
		p.onBusy(busy)
	}
	// A loop pass always takes some time even when its work is free;
	// spacing zero-cost iterations by the poll period also keeps the
	// simulation free of zero-time event livelock.
	gap := busy
	if gap <= 0 {
		gap = p.pickup
	}
	p.eng.At(p.eng.Now()+gap, p.endFn)
}

// iterationEnd runs at the iteration's finish instant and decides whether
// the loop spins again or parks.
func (p *Poller) iterationEnd() {
	if p.stopped {
		p.running = false
		return
	}
	if p.did || p.wake {
		// More work arrived (or this burst did work and queues may still
		// hold entries): run again back to back.
		p.eng.Defer(p.iterateFn)
		return
	}
	p.running = false
}
