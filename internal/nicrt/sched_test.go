package nicrt

import (
	"testing"

	"xenic/internal/model"
	"xenic/internal/sim"
	"xenic/internal/simnet"
	"xenic/internal/wire"
)

// schedNIC builds a one-node NIC with an attached scheduler whose handler
// records the (core, txn) pairs of every transaction start it processes.
func schedNIC(t *testing.T, cfg SchedConfig) (*sim.Engine, *NIC, *Scheduler, *[]dispatched) {
	t.Helper()
	eng := sim.NewEngine(1)
	p := model.Default()
	nw := simnet.New(eng, p, 2)
	n := New(eng, p, nw, 0, 4, 1, AllFeatures())
	n.OnHostDeliver(func(ms []wire.Msg) {})
	var got []dispatched
	n.OnMessage(func(c *Core, src int, m wire.Msg) {
		if req, ok := m.(*wire.TxnRequest); ok {
			got = append(got, dispatched{core: c.id, txn: req.TxnID})
		}
	})
	s := NewScheduler(eng, cfg)
	// Tests that exercise shedding install their own handler; the default
	// keeps RunAll from tripping the no-handler panic on late timers.
	s.OnShed(func(req *wire.TxnRequest) {})
	n.SetScheduler(s)
	return eng, n, s, &got
}

type dispatched struct {
	core int
	txn  uint64
}

func startReq(id uint64, writes ...uint64) *wire.TxnRequest {
	return &wire.TxnRequest{Header: wire.Header{TxnID: id, Src: 0}, WriteKeys: writes}
}

func TestSchedDecayHalving(t *testing.T) {
	const hl = 50 * sim.Microsecond
	e := heatEntry{count: 8, last: 0}
	if got := decayedCount(e, 49*sim.Microsecond, hl); got != 8 {
		t.Errorf("sub-half-life decay: got %d, want 8", got)
	}
	if got := decayedCount(e, hl, hl); got != 4 {
		t.Errorf("one half-life: got %d, want 4", got)
	}
	if got := decayedCount(e, 3*hl, hl); got != 1 {
		t.Errorf("three half-lives: got %d, want 1", got)
	}
	if got := decayedCount(e, 100*hl, hl); got != 0 {
		t.Errorf("far future: got %d, want 0", got)
	}
	// The remainder interval is preserved: decaying at 2.5 half-lives keeps
	// last pinned to the 2-half-life boundary so the half interval still
	// counts toward the next halving.
	d := decay(e, 2*hl+hl/2, hl)
	if d.count != 2 || d.last != 2*hl {
		t.Errorf("remainder: got count=%d last=%v, want count=2 last=%v", d.count, d.last, 2*hl)
	}
	if got := decayedCount(d, 3*hl, hl); got != 1 {
		t.Errorf("remainder carried: got %d, want 1", got)
	}
}

func TestSchedTouchAccumulatesAndDecays(t *testing.T) {
	cfg := DefaultSchedConfig()
	eng, _, s, _ := schedNIC(t, cfg)
	for i := 0; i < 10; i++ {
		s.touch(7, eng.Now())
	}
	if got := s.Heat(7); got != 10 {
		t.Fatalf("heat after 10 touches = %d", got)
	}
	eng.Run(2 * cfg.DecayHalfLife)
	if got := s.Heat(7); got != 2 {
		t.Fatalf("heat after two half-lives = %d, want 2", got)
	}
	if s.Heat(999) != 0 {
		t.Fatal("untouched key has heat")
	}
}

func TestSchedSweepEvictsColdKeys(t *testing.T) {
	cfg := DefaultSchedConfig()
	cfg.MaxTracked = 4
	eng, _, s, _ := schedNIC(t, cfg)
	for k := uint64(0); k < 4; k++ {
		s.touch(k, eng.Now())
	}
	// All four decay to zero; the next touch past the bound sweeps them out.
	eng.Run(64 * cfg.DecayHalfLife)
	s.touch(100, eng.Now())
	if got := s.TrackedKeys(); got != 1 {
		t.Fatalf("tracked keys after sweep = %d, want 1", got)
	}
	if s.Heat(100) != 1 {
		t.Fatal("fresh key lost by sweep")
	}
}

func TestSchedBatchFlushTiming(t *testing.T) {
	cfg := DefaultSchedConfig()
	cfg.BatchWindow = 2 * sim.Microsecond
	eng, n, s, got := schedNIC(t, cfg)
	var flushedAt sim.Time
	eng.Defer(func() {
		n.FromHost([]wire.Msg{startReq(1, 10)})
		// Second start inside the window batches with the first.
		eng.After(1*sim.Microsecond, func() {
			n.FromHost([]wire.Msg{startReq(2, 20)})
		})
		eng.After(cfg.BatchWindow, func() { flushedAt = eng.Now() })
	})
	eng.RunAll()
	if s.Stats().Batches != 1 {
		t.Fatalf("batches = %d, want 1 (both starts inside one window)", s.Stats().Batches)
	}
	if s.Stats().Submitted != 2 || s.Stats().Dispatched != 2 {
		t.Fatalf("stats = %+v", s.Stats())
	}
	if len(*got) != 2 {
		t.Fatalf("handler saw %d starts", len(*got))
	}
	_ = flushedAt // the flush timer fires exactly one window after the first submit
}

func TestSchedSecondBatchAfterWindow(t *testing.T) {
	cfg := DefaultSchedConfig()
	cfg.BatchWindow = 2 * sim.Microsecond
	eng, n, s, _ := schedNIC(t, cfg)
	eng.Defer(func() {
		n.FromHost([]wire.Msg{startReq(1, 10)})
		// Past the first window: its own batch, its own flush.
		eng.After(10*sim.Microsecond, func() {
			n.FromHost([]wire.Msg{startReq(2, 20)})
		})
	})
	eng.RunAll()
	if s.Stats().Batches != 2 {
		t.Fatalf("batches = %d, want 2", s.Stats().Batches)
	}
}

// TestSchedHotKeyCoLocation is the core scheduling property: writers of a
// hot key claim it, later writers park instead of racing, and conflicters
// land on the same core (routed by the hot key, not their txn ids).
func TestSchedHotKeyCoLocation(t *testing.T) {
	cfg := DefaultSchedConfig()
	cfg.BatchWindow = 1 * sim.Microsecond
	cfg.HotThreshold = 2
	cfg.ShedAfter = sim.Second // parked on purpose; keep the backstop out of frame
	const K = uint64(42)
	eng, n, s, got := schedNIC(t, cfg)
	eng.Defer(func() {
		// One flush, two writers of K: two touches make K hot, the first
		// writer claims it, the second parks behind it.
		n.FromHost([]wire.Msg{startReq(1, K)})
		n.FromHost([]wire.Msg{startReq(2, K)})
	})
	// Bounded runs: RunAll would drain the far-future shed backstop too.
	eng.Run(eng.Now() + 10*sim.Microsecond)
	if s.Stats().Parked != 1 || s.Stats().HotRouted != 1 {
		t.Fatalf("stats = %+v, want 1 parked 1 hot-routed", s.Stats())
	}
	if len(*got) != 1 || (*got)[0].txn != 1 {
		t.Fatalf("dispatched %v, want txn 1 only", *got)
	}
	if s.ParkedNow() != 1 {
		t.Fatalf("parkedNow = %d", s.ParkedNow())
	}

	// Owner completes: the waiter admits onto the same core.
	eng.Defer(func() { n.SchedDone(1) })
	eng.Run(eng.Now() + 10*sim.Microsecond)
	if len(*got) != 2 || (*got)[1].txn != 2 {
		t.Fatalf("dispatched %v, want txn 2 after release", *got)
	}
	wantCore := int(hash64(K) % uint64(n.Cores()))
	for _, d := range *got {
		if d.core != wantCore {
			t.Errorf("txn %d on core %d, want co-located on %d", d.txn, d.core, wantCore)
		}
	}
	if s.ParkedNow() != 0 {
		t.Fatalf("parkedNow after release = %d", s.ParkedNow())
	}
	// Double release of the same txn is a no-op.
	eng.Defer(func() { n.SchedDone(1); n.SchedDone(2); n.SchedDone(2) })
	eng.Run(eng.Now() + 10*sim.Microsecond)
}

// TestSchedReaderParksBehindWriter: a reader of a claimed hot key parks too
// (racing would only earn it a validation abort).
func TestSchedReaderParksBehindWriter(t *testing.T) {
	cfg := DefaultSchedConfig()
	cfg.BatchWindow = 1 * sim.Microsecond
	cfg.HotThreshold = 2
	cfg.ShedAfter = sim.Second
	const K = uint64(42)
	eng, n, s, got := schedNIC(t, cfg)
	eng.Defer(func() {
		n.FromHost([]wire.Msg{startReq(1, K)})
		n.FromHost([]wire.Msg{&wire.TxnRequest{Header: wire.Header{TxnID: 2}, ReadKeys: []uint64{K}}})
	})
	eng.Run(eng.Now() + 10*sim.Microsecond)
	if len(*got) != 1 || s.Stats().Parked != 1 {
		t.Fatalf("got %v, stats %+v", *got, s.Stats())
	}
	eng.Defer(func() { n.SchedDone(1) })
	eng.Run(eng.Now() + 10*sim.Microsecond)
	if len(*got) != 2 || (*got)[1].txn != 2 {
		t.Fatalf("reader not admitted after writer release: %v", *got)
	}
	// The reader claimed nothing (no writes), so its close releases nothing.
	if len(s.claims) != 0 {
		t.Fatalf("claims left: %v", s.claims)
	}
}

// TestSchedFIFOWaiters: waiters re-admit strictly in arrival order, one
// in-flight owner at a time.
func TestSchedFIFOWaiters(t *testing.T) {
	cfg := DefaultSchedConfig()
	cfg.BatchWindow = 1 * sim.Microsecond
	cfg.HotThreshold = 2
	cfg.ShedAfter = sim.Second
	const K = uint64(42)
	eng, n, s, got := schedNIC(t, cfg)
	eng.Defer(func() {
		for id := uint64(1); id <= 4; id++ {
			n.FromHost([]wire.Msg{startReq(id, K)})
		}
	})
	eng.Run(eng.Now() + 10*sim.Microsecond)
	if len(*got) != 1 {
		t.Fatalf("dispatched %v, want owner only", *got)
	}
	// Release owners one by one; each release admits exactly the next waiter.
	for round := 0; round < 3; round++ {
		owner := (*got)[len(*got)-1].txn
		eng.Defer(func() { n.SchedDone(owner) })
		eng.Run(eng.Now() + 10*sim.Microsecond)
	}
	var order []uint64
	for _, d := range *got {
		order = append(order, d.txn)
	}
	if len(order) != 4 {
		t.Fatalf("dispatch order %v", order)
	}
	for i, id := range order {
		if id != uint64(i+1) {
			t.Fatalf("dispatch order %v, want FIFO 1..4", order)
		}
	}
	// Parked counts park EVENTS including re-parks: 3 initial waiters, then
	// 2 re-parks after the first release and 1 after the second.
	if s.Stats().Parked != 6 {
		t.Fatalf("parked = %d, want 6", s.Stats().Parked)
	}
}

func TestSchedShedAfterDeadline(t *testing.T) {
	cfg := DefaultSchedConfig()
	cfg.BatchWindow = 1 * sim.Microsecond
	cfg.HotThreshold = 2
	cfg.ShedAfter = 20 * sim.Microsecond
	const K = uint64(42)
	eng, n, s, got := schedNIC(t, cfg)
	var shed []uint64
	s.OnShed(func(req *wire.TxnRequest) { shed = append(shed, req.TxnID) })
	eng.Defer(func() {
		n.FromHost([]wire.Msg{startReq(1, K)})
		n.FromHost([]wire.Msg{startReq(2, K)})
	})
	// The owner never completes; the waiter trips its shed deadline.
	eng.RunAll()
	if len(shed) != 1 || shed[0] != 2 {
		t.Fatalf("shed %v, want [2]", shed)
	}
	if s.Stats().Shed != 1 || s.ParkedNow() != 0 {
		t.Fatalf("stats %+v parkedNow %d", s.Stats(), s.ParkedNow())
	}
	// A shed txn is skipped lazily if the owner later releases: no dispatch.
	eng.Defer(func() { n.SchedDone(1) })
	eng.RunAll()
	if len(*got) != 1 {
		t.Fatalf("shed txn was dispatched anyway: %v", *got)
	}
}

// TestSchedNonStartBypass: only transaction starts go through the batch
// queue; later-phase host messages keep the legacy immediate dispatch.
func TestSchedNonStartBypass(t *testing.T) {
	eng, n, s, _ := schedNIC(t, DefaultSchedConfig())
	eng.Defer(func() {
		n.FromHost([]wire.Msg{&wire.TxnDone{Header: wire.Header{TxnID: 5, Src: 0}}})
	})
	eng.RunAll()
	if s.Stats().Submitted != 0 {
		t.Fatal("non-start message entered the scheduler queue")
	}
	if n.Stats().HostRxMsgs != 1 {
		t.Fatalf("host msg not delivered: %+v", n.Stats())
	}
}

// TestSchedResetFencesTimers: a node restart wipes scheduler state and
// in-flight batch/shed timers from before the reset must no-op.
func TestSchedResetFencesTimers(t *testing.T) {
	cfg := DefaultSchedConfig()
	cfg.BatchWindow = 5 * sim.Microsecond
	eng, n, s, got := schedNIC(t, cfg)
	eng.Defer(func() {
		n.FromHost([]wire.Msg{startReq(1, 10)})
		eng.After(1*sim.Microsecond, func() { n.Reset() })
	})
	eng.RunAll()
	if len(*got) != 0 || s.Stats().Batches != 0 {
		t.Fatalf("pre-reset batch flushed: got %v stats %+v", *got, s.Stats())
	}
	if s.QueueDepth() != 0 {
		t.Fatalf("queue depth after reset = %d", s.QueueDepth())
	}
	// Traffic after the reset flows normally.
	eng.Defer(func() { n.FromHost([]wire.Msg{startReq(2, 20)}) })
	eng.RunAll()
	if len(*got) != 1 || (*got)[0].txn != 2 {
		t.Fatalf("post-reset dispatch: %v", *got)
	}
}

// TestSchedDeadCoresDrop: with every core stopped the scheduler counts the
// drop like the legacy dispatch and releases any claims it just took.
func TestSchedDeadCoresDrop(t *testing.T) {
	cfg := DefaultSchedConfig()
	cfg.BatchWindow = 1 * sim.Microsecond
	cfg.HotThreshold = 1
	eng, n, s, got := schedNIC(t, cfg)
	for i := 0; i < n.Cores(); i++ {
		n.StopCore(i)
	}
	eng.Defer(func() { n.FromHost([]wire.Msg{startReq(1, 10)}) })
	eng.RunAll()
	if len(*got) != 0 {
		t.Fatalf("dead NIC dispatched %v", *got)
	}
	if n.Stats().DeadDrops != 1 {
		t.Fatalf("dead drops = %d", n.Stats().DeadDrops)
	}
	if len(s.claims) != 0 || len(s.owner) != 0 {
		t.Fatalf("claims leaked on dead drop: %v %v", s.claims, s.owner)
	}
}
