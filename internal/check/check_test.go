package check

import (
	"strings"
	"testing"

	"xenic/internal/wire"
)

func kv(key, ver uint64) wire.KeyVer { return wire.KeyVer{Key: key, Version: ver} }

func committedRec(id uint64, reads, writes []wire.KeyVer) TxnRecord {
	return TxnRecord{ID: id, Status: wire.StatusOK, Reads: reads, Writes: writes}
}

// TestCheckSerializable: a clean chain of RMWs plus readers is serializable.
func TestCheckSerializable(t *testing.T) {
	h := NewHistory()
	// Populate leaves every key at version 1.
	h.Add(committedRec(1, []wire.KeyVer{kv(10, 1)}, []wire.KeyVer{kv(10, 2)}))
	h.Add(committedRec(2, []wire.KeyVer{kv(10, 2)}, []wire.KeyVer{kv(10, 3)}))
	h.Add(committedRec(3, []wire.KeyVer{kv(10, 3), kv(20, 1)}, nil))
	// A read of a missing key (version 0) is an initial-state read.
	h.Add(committedRec(4, []wire.KeyVer{kv(99, 0)}, nil))
	// Aborted txns do not participate.
	h.Add(TxnRecord{ID: 5, Status: wire.StatusAbortVersion, Reads: []wire.KeyVer{kv(10, 1)}})
	rep := h.Check()
	if !rep.Ok() {
		t.Fatalf("expected clean report, got: %s", rep)
	}
	if rep.Txns != 4 {
		t.Errorf("Txns = %d, want 4", rep.Txns)
	}
	if rep.Edges == 0 {
		t.Error("expected some dependency edges")
	}
}

// TestCheckLostUpdate: two txns installing the same version of one key is a
// lost update — mutual ww edges form a 2-cycle plus an anomaly.
func TestCheckLostUpdate(t *testing.T) {
	h := NewHistory()
	h.Add(committedRec(1, []wire.KeyVer{kv(7, 1)}, []wire.KeyVer{kv(7, 2)}))
	h.Add(committedRec(2, []wire.KeyVer{kv(7, 1)}, []wire.KeyVer{kv(7, 2)}))
	rep := h.Check()
	if rep.Ok() {
		t.Fatal("expected violation")
	}
	if len(rep.Cycles) == 0 {
		t.Fatalf("expected a witness cycle, got: %s", rep)
	}
	if got := len(rep.Cycles[0].Edges); got != 2 {
		t.Errorf("witness cycle length = %d, want 2 (%s)", got, rep.Cycles[0])
	}
	found := false
	for _, a := range rep.Anomalies {
		if strings.Contains(a, "lost update") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected a lost-update anomaly, got %v", rep.Anomalies)
	}
}

// TestCheckNonAtomicRead: a reader observing half of a writer's update (old
// x, new y) forms a wr/rw 2-cycle — the classic broken-snapshot witness.
func TestCheckNonAtomicRead(t *testing.T) {
	h := NewHistory()
	// W updates x and y together.
	h.Add(committedRec(1,
		[]wire.KeyVer{kv(1, 1), kv(2, 1)},
		[]wire.KeyVer{kv(1, 2), kv(2, 2)}))
	// R saw x before W and y after W.
	h.Add(committedRec(2, []wire.KeyVer{kv(1, 1), kv(2, 2)}, nil))
	rep := h.Check()
	if rep.Ok() {
		t.Fatal("expected violation")
	}
	if len(rep.Cycles) != 1 {
		t.Fatalf("expected exactly one witness cycle, got: %s", rep)
	}
	c := rep.Cycles[0]
	if len(c.Edges) != 2 {
		t.Fatalf("witness cycle length = %d, want 2 (%s)", len(c.Edges), c)
	}
	kinds := c.Edges[0].Kind + c.Edges[1].Kind
	if kinds != "wrrw" && kinds != "rwwr" {
		t.Errorf("expected wr+rw cycle, got %s", c)
	}
}

// TestCheckDirtyRead: observing a version no committed txn installed is an
// anomaly even without a cycle.
func TestCheckDirtyRead(t *testing.T) {
	h := NewHistory()
	h.Add(committedRec(1, []wire.KeyVer{kv(3, 5)}, nil))
	rep := h.Check()
	if rep.Ok() {
		t.Fatal("expected anomaly for read of never-installed version")
	}
	if len(rep.Anomalies) != 1 || !strings.Contains(rep.Anomalies[0], "never installed") {
		t.Errorf("unexpected anomalies: %v", rep.Anomalies)
	}
}

// TestCheckMergeRecovered: a coordinator commit and per-shard recovery
// records for the same id merge into one txn (union of writes).
func TestCheckMergeRecovered(t *testing.T) {
	h := NewHistory()
	h.Add(committedRec(1, []wire.KeyVer{kv(1, 1), kv(2, 1)}, []wire.KeyVer{kv(1, 2), kv(2, 2)}))
	h.Add(TxnRecord{ID: 1, Status: wire.StatusOK, Recovered: true, Writes: []wire.KeyVer{kv(2, 2)}})
	h.Add(committedRec(2, []wire.KeyVer{kv(1, 2), kv(2, 2)}, nil))
	rep := h.Check()
	if !rep.Ok() {
		t.Fatalf("merged history should be clean: %s", rep)
	}
	if rep.Txns != 2 {
		t.Errorf("Txns = %d, want 2 after merging", rep.Txns)
	}
}

// TestCheckConflictingOutcome: one id recorded both committed and aborted.
func TestCheckConflictingOutcome(t *testing.T) {
	h := NewHistory()
	h.Add(committedRec(1, nil, []wire.KeyVer{kv(1, 2)}))
	h.Add(TxnRecord{ID: 1, Status: wire.StatusAbortView})
	rep := h.Check()
	if rep.Ok() {
		t.Fatal("expected conflicting-outcome anomaly")
	}
}

// TestShipConsistent: target shadow must cover the committed write set.
func TestShipConsistent(t *testing.T) {
	h := NewHistory()
	h.Add(TxnRecord{ID: 1, Status: wire.StatusOK, Shipped: true, ShipTo: 2,
		Writes: []wire.KeyVer{kv(1, 2), kv(2, 2)}})
	h.AddShip(ShipRecord{Txn: 1, Origin: 0, Target: 2,
		Writes: []wire.KeyVer{kv(1, 2), kv(2, 2)}})
	if err := h.ShipConsistent(); err != nil {
		t.Fatalf("consistent shadow rejected: %v", err)
	}
	h2 := NewHistory()
	h2.Add(TxnRecord{ID: 1, Status: wire.StatusOK, Shipped: true, ShipTo: 2,
		Writes: []wire.KeyVer{kv(1, 2), kv(2, 3)}})
	h2.AddShip(ShipRecord{Txn: 1, Origin: 0, Target: 2,
		Writes: []wire.KeyVer{kv(1, 2), kv(2, 2)}})
	if err := h2.ShipConsistent(); err == nil {
		t.Fatal("version mismatch between origin and target not detected")
	}
	// Shadows of never-committed txns are unconstrained.
	h3 := NewHistory()
	h3.AddShip(ShipRecord{Txn: 9, Origin: 0, Target: 1, Writes: []wire.KeyVer{kv(1, 2)}})
	if err := h3.ShipConsistent(); err != nil {
		t.Fatalf("aborted ship constrained: %v", err)
	}
}

// TestNilHistory: all recording and checking entry points are nil-safe.
func TestNilHistory(t *testing.T) {
	var h *History
	h.Add(TxnRecord{ID: 1})
	h.AddShip(ShipRecord{Txn: 1})
	if h.Len() != 0 || h.Records() != nil || h.Ships() != nil {
		t.Error("nil history should be empty")
	}
	if rep := h.Check(); !rep.Ok() {
		t.Error("nil history should check clean")
	}
	if err := h.ShipConsistent(); err != nil {
		t.Error("nil history ship audit should pass")
	}
}

// TestCanonicalize: Reads/Writes/KeyVers sort by key and dedupe.
func TestCanonicalize(t *testing.T) {
	r := Reads(map[uint64]wire.KV{5: {Key: 5, Version: 2}, 1: {Key: 1, Version: 7}})
	if len(r) != 2 || r[0].Key != 1 || r[1].Key != 5 {
		t.Errorf("Reads not sorted: %v", r)
	}
	w := Writes([]wire.KV{{Key: 3, Version: 1}, {Key: 3, Version: 2}, {Key: 1, Version: 4}})
	if len(w) != 2 || w[0] != kv(1, 4) || w[1] != kv(3, 2) {
		t.Errorf("Writes not canonical: %v", w)
	}
	k := KeyVers([]wire.KeyVer{kv(9, 1), kv(2, 3), kv(9, 5)})
	if len(k) != 2 || k[0] != kv(2, 3) || k[1] != kv(9, 5) {
		t.Errorf("KeyVers not canonical: %v", k)
	}
}

// TestLastVersions and CommittedIDs feed the store/log audits.
func TestSummaries(t *testing.T) {
	h := NewHistory()
	h.Add(committedRec(1, nil, []wire.KeyVer{kv(1, 2)}))
	h.Add(committedRec(2, nil, []wire.KeyVer{kv(1, 3), kv(2, 2)}))
	h.Add(TxnRecord{ID: 3, Status: wire.StatusAbortLocked})
	lv := h.LastVersions()
	if lv[1] != 3 || lv[2] != 2 {
		t.Errorf("LastVersions = %v", lv)
	}
	ids := h.CommittedIDs()
	if !ids[1] || !ids[2] || ids[3] {
		t.Errorf("CommittedIDs = %v", ids)
	}
}
