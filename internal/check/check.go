// Package check records complete transaction histories from a simulated
// cluster run and verifies them for serializability (DESIGN.md §9).
//
// The recorder is pure Go-side bookkeeping: it schedules no events, charges
// no simulated time, and sends no messages, so a run with a History attached
// is byte-identical to one without. Both the Xenic cluster and the baseline
// clusters append one TxnRecord per transaction outcome at their protocol
// decision points (commit point, abort decision), and the Xenic ship target
// additionally appends a ShipRecord shadow of every shipped execution so the
// origin and target views can be cross-checked.
//
// The checker reconstructs the per-key version order from installed
// versions, builds the direct serialization graph (read-from, write-write,
// and anti-dependency edges), and reports every strongly connected component
// with more than one transaction as a serializability violation, together
// with a minimal witness cycle naming the transactions, keys, and versions
// involved.
package check

import (
	"fmt"
	"sort"

	"xenic/internal/sim"
	"xenic/internal/wire"
)

// TxnRecord is one transaction's recorded outcome.
type TxnRecord struct {
	// ID is the transaction id (unique per attempt; retries get fresh ids).
	ID uint64
	// Node is the coordinator node (for Recovered records, the node that
	// decided the recovery).
	Node int
	// Status is the final outcome; StatusOK means committed.
	Status wire.Status
	// Start is when the transaction opened; End is when the commit or abort
	// decision was made (the commit point for committed transactions).
	Start sim.Time
	End   sim.Time
	// Reads is the observed read set: for every key read, the version the
	// transaction observed (0 for a missing key). Sorted by key.
	Reads []wire.KeyVer
	// Writes is the installed write set: for every key written, the version
	// the commit installed. Sorted by key. Empty for aborts.
	Writes []wire.KeyVer
	// Recovered marks a synthetic record emitted when recovery commits a
	// dead coordinator's transaction from its replicated log records; it
	// carries only the recovered shard's writes and no reads. The checker
	// merges it with any other record of the same id.
	Recovered bool
	// Shipped marks a multi-hop transaction executed at node ShipTo.
	Shipped bool
	ShipTo  int
	// Snapshot marks a read-only transaction served by the MVCC snapshot
	// path (DESIGN.md §12): it read at SnapshotTS with no locks or
	// validation. The checker keeps it in the serialization graph and
	// additionally verifies snapshot-isolation visibility for it.
	Snapshot bool
	// SnapshotTS is the timestamp a Snapshot transaction read at.
	SnapshotTS uint64
	// CommitTS is the MVCC commit timestamp an update transaction's writes
	// installed at (0 when MVCC is off; such transactions are exempt from
	// the snapshot visibility pass).
	CommitTS uint64
}

// ShipRecord is the ship target's shadow of a shipped execution: the write
// set it computed and fanned out, used to audit that the origin committed
// exactly what the target executed.
type ShipRecord struct {
	Txn    uint64
	Origin int
	Target int
	Writes []wire.KeyVer
}

// History accumulates transaction records for one cluster run. All methods
// are nil-safe so recording sites call them unconditionally; a nil History
// records nothing. A History is not safe for concurrent use — each cluster
// owns a private sim.Engine and appends single-threaded.
type History struct {
	recs  []TxnRecord
	ships []ShipRecord
}

// NewHistory returns an empty history.
func NewHistory() *History { return &History{} }

// Add appends one transaction record.
func (h *History) Add(r TxnRecord) {
	if h == nil {
		return
	}
	h.recs = append(h.recs, r)
}

// AddShip appends one ship-target shadow record.
func (h *History) AddShip(s ShipRecord) {
	if h == nil {
		return
	}
	h.ships = append(h.ships, s)
}

// Len reports the number of transaction records.
func (h *History) Len() int {
	if h == nil {
		return 0
	}
	return len(h.recs)
}

// Records returns the raw transaction records in append order.
func (h *History) Records() []TxnRecord {
	if h == nil {
		return nil
	}
	return h.recs
}

// Ships returns the ship shadow records in append order.
func (h *History) Ships() []ShipRecord {
	if h == nil {
		return nil
	}
	return h.ships
}

// Reads canonicalizes an observed read map into a KeyVer slice sorted by
// key.
func Reads(m map[uint64]wire.KV) []wire.KeyVer {
	if len(m) == 0 {
		return nil
	}
	out := make([]wire.KeyVer, 0, len(m))
	for k, kv := range m {
		out = append(out, wire.KeyVer{Key: k, Version: kv.Version})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Writes canonicalizes an installed write set into a KeyVer slice sorted by
// key, deduplicating repeated keys (the last install wins, matching apply
// order).
func Writes(kvs []wire.KV) []wire.KeyVer {
	if len(kvs) == 0 {
		return nil
	}
	last := make(map[uint64]uint64, len(kvs))
	for _, kv := range kvs {
		last[kv.Key] = kv.Version
	}
	out := make([]wire.KeyVer, 0, len(last))
	for k, v := range last {
		out = append(out, wire.KeyVer{Key: k, Version: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// KeyVers canonicalizes an already-materialized KeyVer slice (sort by key,
// last version wins on duplicates).
func KeyVers(kvs []wire.KeyVer) []wire.KeyVer {
	if len(kvs) == 0 {
		return nil
	}
	last := make(map[uint64]uint64, len(kvs))
	for _, kv := range kvs {
		last[kv.Key] = kv.Version
	}
	out := make([]wire.KeyVer, 0, len(last))
	for k, v := range last {
		out = append(out, wire.KeyVer{Key: k, Version: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// committedTxn is the checker's merged view of one committed transaction:
// records sharing a transaction id (a coordinator commit plus per-shard
// recovery decisions) union their read and write sets.
type committedTxn struct {
	id            uint64
	reads         map[uint64]uint64 // key -> observed version
	writes        map[uint64]uint64 // key -> installed version
	recoveredOnly bool              // committed only via recovery records
	shipped       bool
	snapshot      bool   // served by the MVCC snapshot read path
	snapTS        uint64 // snapshot timestamp it read at
	cts           uint64 // MVCC commit timestamp (0 when MVCC off)
}

// mergeCommitted folds the raw records into per-id committed transactions,
// reporting merge-level anomalies (conflicting outcomes for one id,
// conflicting versions for one key within one id).
func (h *History) mergeCommitted() (map[uint64]*committedTxn, []string) {
	var anomalies []string
	merged := map[uint64]*committedTxn{}
	aborted := map[uint64]bool{}
	for i := range h.recs {
		r := &h.recs[i]
		if r.Status != wire.StatusOK {
			aborted[r.ID] = true
			continue
		}
		t := merged[r.ID]
		if t == nil {
			t = &committedTxn{id: r.ID, reads: map[uint64]uint64{}, writes: map[uint64]uint64{}, recoveredOnly: true}
			merged[r.ID] = t
		}
		if !r.Recovered {
			t.recoveredOnly = false
		}
		if r.Shipped {
			t.shipped = true
		}
		if r.Snapshot {
			t.snapshot = true
			t.snapTS = r.SnapshotTS
		}
		if r.CommitTS != 0 {
			if t.cts != 0 && t.cts != r.CommitTS {
				anomalies = append(anomalies, fmt.Sprintf(
					"txn %#x: conflicting commit timestamps (%d vs %d)",
					r.ID, t.cts, r.CommitTS))
			} else {
				t.cts = r.CommitTS
			}
		}
		for _, kv := range r.Reads {
			if prev, ok := t.reads[kv.Key]; ok && prev != kv.Version {
				anomalies = append(anomalies, fmt.Sprintf(
					"txn %#x: conflicting observed versions for key %d (%d vs %d)",
					r.ID, kv.Key, prev, kv.Version))
				continue
			}
			t.reads[kv.Key] = kv.Version
		}
		for _, kv := range r.Writes {
			if prev, ok := t.writes[kv.Key]; ok && prev != kv.Version {
				anomalies = append(anomalies, fmt.Sprintf(
					"txn %#x: conflicting installed versions for key %d (%d vs %d)",
					r.ID, kv.Key, prev, kv.Version))
				continue
			}
			t.writes[kv.Key] = kv.Version
		}
	}
	for id := range merged {
		if aborted[id] {
			anomalies = append(anomalies, fmt.Sprintf(
				"txn %#x: recorded both committed and aborted", id))
		}
	}
	sort.Strings(anomalies)
	return merged, anomalies
}

// CommittedIDs returns the set of transaction ids with at least one
// committed record.
func (h *History) CommittedIDs() map[uint64]bool {
	out := map[uint64]bool{}
	if h == nil {
		return out
	}
	for i := range h.recs {
		if h.recs[i].Status == wire.StatusOK {
			out[h.recs[i].ID] = true
		}
	}
	return out
}

// LastVersions returns, per key, the highest version installed by any
// committed transaction. Keys never written by a committed transaction are
// absent (their stores must still hold the populate version, <= 1).
func (h *History) LastVersions() map[uint64]uint64 {
	out := map[uint64]uint64{}
	if h == nil {
		return out
	}
	for i := range h.recs {
		r := &h.recs[i]
		if r.Status != wire.StatusOK {
			continue
		}
		for _, kv := range r.Writes {
			if kv.Version > out[kv.Key] {
				out[kv.Key] = kv.Version
			}
		}
	}
	return out
}

// ShipConsistent audits shipped transactions: for every ship shadow whose
// transaction committed, every write the committed record carries must
// appear identically in the target's shadow (the target computed the full
// write set), and when the coordinator itself finished the transaction the
// two write sets must match exactly. Recovered-only commits may cover a
// subset of shards, so only the subset direction is required there.
func (h *History) ShipConsistent() error {
	if h == nil {
		return nil
	}
	merged, _ := h.mergeCommitted()
	for i := range h.ships {
		s := &h.ships[i]
		t, ok := merged[s.Txn]
		if !ok {
			continue // never committed; no constraint
		}
		shadow := map[uint64]uint64{}
		for _, kv := range s.Writes {
			shadow[kv.Key] = kv.Version
		}
		for k, v := range t.writes {
			if sv, ok := shadow[k]; !ok || sv != v {
				return fmt.Errorf(
					"check: shipped txn %#x (origin %d, target %d): committed write key %d v%d not in target shadow (target has v%d, present=%v)",
					s.Txn, s.Origin, s.Target, k, v, sv, ok)
			}
		}
		if !t.recoveredOnly && len(shadow) != len(t.writes) {
			return fmt.Errorf(
				"check: shipped txn %#x (origin %d, target %d): target computed %d writes but origin committed %d",
				s.Txn, s.Origin, s.Target, len(shadow), len(t.writes))
		}
	}
	return nil
}
