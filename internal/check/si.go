package check

import (
	"fmt"
	"sort"
)

// Snapshot-isolation visibility checking (DESIGN.md §12). A transaction
// served by the MVCC snapshot path claims to have read every key at one
// snapshot timestamp S. The serialization graph alone cannot always witness
// a fractured snapshot (a read-only transaction observing txn A but missing
// an earlier, independent txn B is anomalous without being a cycle), so
// this pass checks visibility directly: for every key a snapshot
// transaction read, the observed version must be exactly the one installed
// by the committed update with the greatest commit timestamp <= S — or the
// populate state when no committed update at or below S touched the key.
//
// It also cross-checks the two orders the checker relies on: per-key
// install-version order must agree with commit-timestamp order, since the
// snapshot path serves by timestamp while OCC validation serves by version.

// keyInstall is one committed, timestamped install of a key.
type keyInstall struct {
	cts uint64
	ver uint64
	id  uint64 // installing transaction
}

// siViolations returns anomaly strings for every snapshot-visibility or
// timestamp-order violation in the merged committed transactions. Update
// transactions without a commit timestamp (MVCC off, or paths that never
// assign one) are exempt; snapshot transactions can only exist when MVCC is
// on, where every committed update carries its timestamp.
func siViolations(txns []*committedTxn) []string {
	hasSnap := false
	for _, t := range txns {
		if t.snapshot {
			hasSnap = true
			break
		}
	}
	if !hasSnap {
		return nil
	}

	installs := map[uint64][]keyInstall{}
	for _, t := range txns {
		if t.cts == 0 {
			continue
		}
		for k, v := range t.writes {
			installs[k] = append(installs[k], keyInstall{cts: t.cts, ver: v, id: t.id})
		}
	}
	keys := make([]uint64, 0, len(installs))
	for k := range installs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	var out []string
	for _, k := range keys {
		ins := installs[k]
		sort.Slice(ins, func(i, j int) bool {
			if ins[i].cts != ins[j].cts {
				return ins[i].cts < ins[j].cts
			}
			return ins[i].id < ins[j].id
		})
		for i := 1; i < len(ins); i++ {
			if ins[i].ver <= ins[i-1].ver {
				out = append(out, fmt.Sprintf(
					"key %d: install-version order disagrees with commit-timestamp order (T%#x cts=%d v%d, then T%#x cts=%d v%d)",
					k, ins[i-1].id, ins[i-1].cts, ins[i-1].ver,
					ins[i].id, ins[i].cts, ins[i].ver))
			}
		}
	}

	for _, t := range txns {
		if !t.snapshot {
			continue
		}
		rks := make([]uint64, 0, len(t.reads))
		for k := range t.reads {
			rks = append(rks, k)
		}
		sort.Slice(rks, func(i, j int) bool { return rks[i] < rks[j] })
		for _, k := range rks {
			got := t.reads[k]
			ins := installs[k]
			// Latest committed install at or below the snapshot timestamp.
			i := sort.Search(len(ins), func(i int) bool { return ins[i].cts > t.snapTS })
			if i == 0 {
				// Nothing committed at or below S: the populate state (version
				// <= 1) is the only legal observation.
				if got > 1 {
					out = append(out, fmt.Sprintf(
						"SI violation: T%#x snapshot at ts=%d observed key %d at v%d, but no committed update has cts <= %d",
						t.id, t.snapTS, k, got, t.snapTS))
				}
				continue
			}
			want := ins[i-1]
			if got != want.ver {
				out = append(out, fmt.Sprintf(
					"SI violation: T%#x snapshot at ts=%d observed key %d at v%d, visible install is v%d (T%#x, cts=%d)",
					t.id, t.snapTS, k, got, want.ver, want.id, want.cts))
			}
		}
	}
	sort.Strings(out)
	return out
}
