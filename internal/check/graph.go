package check

import (
	"fmt"
	"sort"
	"strings"
)

// Edge is one dependency in the direct serialization graph.
type Edge struct {
	From, To uint64 // transaction ids
	// Kind is "wr" (To read From's install), "ww" (To overwrote From's
	// install), or "rw" (From read a version that To overwrote).
	Kind string
	Key  uint64
	// FromVer/ToVer are the versions the edge relates: for wr, the version
	// written and read; for ww, the overwritten and overwriting versions;
	// for rw, the version read and the version that overwrote it.
	FromVer, ToVer uint64
}

func (e Edge) String() string {
	return fmt.Sprintf("-[%s key=%d v%d->v%d]-> T%#x", e.Kind, e.Key, e.FromVer, e.ToVer, e.To)
}

// Cycle is a witness cycle: Edges[i].To == Edges[i+1].From, and the last
// edge closes back to the first transaction.
type Cycle struct {
	Edges []Edge
}

func (c Cycle) String() string {
	if len(c.Edges) == 0 {
		return "(empty cycle)"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "T%#x ", c.Edges[0].From)
	for _, e := range c.Edges {
		b.WriteString(e.String())
		b.WriteByte(' ')
	}
	return strings.TrimSpace(b.String())
}

// Report is the checker's verdict over one history.
type Report struct {
	// Txns is the number of distinct committed transactions checked.
	Txns int
	// Edges is the total dependency-edge count (diagnostic).
	Edges int
	// Anomalies are structural problems found before cycle detection:
	// duplicate version installs, reads of never-installed versions,
	// conflicting records for one transaction id.
	Anomalies []string
	// Cycles are witness cycles, one per offending strongly connected
	// component (capped at maxReportedCycles).
	Cycles []Cycle
}

const maxReportedCycles = 5

// Ok reports whether the history is serializable with no anomalies.
func (r *Report) Ok() bool { return len(r.Anomalies) == 0 && len(r.Cycles) == 0 }

// Err returns nil for a clean report, else an error summarizing it.
func (r *Report) Err() error {
	if r.Ok() {
		return nil
	}
	return fmt.Errorf("check: %s", r.String())
}

func (r *Report) String() string {
	if r.Ok() {
		return fmt.Sprintf("serializable: %d txns, %d edges, no cycles", r.Txns, r.Edges)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d txns, %d edges: %d anomalies, %d cycles",
		r.Txns, r.Edges, len(r.Anomalies), len(r.Cycles))
	for _, a := range r.Anomalies {
		b.WriteString("\n  anomaly: ")
		b.WriteString(a)
	}
	for _, c := range r.Cycles {
		b.WriteString("\n  cycle: ")
		b.WriteString(c.String())
	}
	return b.String()
}

// install is one committed write of a key.
type install struct {
	ver uint64
	txn int // index into the checker's txn slice
}

// readObs is one committed read of a key.
type readObs struct {
	ver uint64
	txn int
}

// intEdge is the internal adjacency representation.
type intEdge struct {
	to int
	e  Edge
}

// Check verifies the recorded history: it reconstructs the per-key version
// order, builds the read-from / write-write / anti-dependency graph over
// committed transactions, and reports anomalies and witness cycles.
func (h *History) Check() *Report {
	rep := &Report{}
	if h == nil {
		return rep
	}
	merged, anomalies := h.mergeCommitted()
	rep.Anomalies = anomalies

	// Deterministic txn ordering: ascending id.
	txns := make([]*committedTxn, 0, len(merged))
	for _, t := range merged {
		txns = append(txns, t)
	}
	sort.Slice(txns, func(i, j int) bool { return txns[i].id < txns[j].id })
	rep.Txns = len(txns)
	rep.Anomalies = append(rep.Anomalies, siViolations(txns)...)
	index := make(map[uint64]int, len(txns))
	for i, t := range txns {
		index[t.id] = i
	}

	// Per-key installs and reads.
	installs := map[uint64][]install{}
	reads := map[uint64][]readObs{}
	for i, t := range txns {
		for k, v := range t.writes {
			installs[k] = append(installs[k], install{ver: v, txn: i})
		}
		for k, v := range t.reads {
			reads[k] = append(reads[k], readObs{ver: v, txn: i})
		}
	}

	// Deterministic key order for anomaly and edge construction.
	keys := make([]uint64, 0, len(installs)+len(reads))
	seen := map[uint64]bool{}
	for k := range installs {
		keys = append(keys, k)
		seen[k] = true
	}
	for k := range reads {
		if !seen[k] {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	adj := make([][]intEdge, len(txns))
	addEdge := func(from, to int, kind string, key, fromVer, toVer uint64) {
		if from == to {
			return
		}
		adj[from] = append(adj[from], intEdge{to: to, e: Edge{
			From: txns[from].id, To: txns[to].id,
			Kind: kind, Key: key, FromVer: fromVer, ToVer: toVer,
		}})
		rep.Edges++
	}

	for _, k := range keys {
		ins := installs[k]
		sort.Slice(ins, func(i, j int) bool {
			if ins[i].ver != ins[j].ver {
				return ins[i].ver < ins[j].ver
			}
			return txns[ins[i].txn].id < txns[ins[j].txn].id
		})
		// Group installers by version; duplicate installs of one version are
		// a lost update and get mutual ww edges (a natural 2-cycle).
		type group struct {
			ver  uint64
			txns []int
		}
		var groups []group
		for _, in := range ins {
			if n := len(groups); n > 0 && groups[n-1].ver == in.ver {
				groups[n-1].txns = append(groups[n-1].txns, in.txn)
				continue
			}
			groups = append(groups, group{ver: in.ver, txns: []int{in.txn}})
		}
		for gi, g := range groups {
			if len(g.txns) > 1 {
				ids := make([]string, len(g.txns))
				for i, ti := range g.txns {
					ids[i] = fmt.Sprintf("T%#x", txns[ti].id)
				}
				rep.Anomalies = append(rep.Anomalies, fmt.Sprintf(
					"key %d: version %d installed by %d txns (%s) — lost update",
					k, g.ver, len(g.txns), strings.Join(ids, ", ")))
				for _, a := range g.txns {
					for _, b := range g.txns {
						addEdge(a, b, "ww", k, g.ver, g.ver)
					}
				}
			}
			if gi+1 < len(groups) {
				next := groups[gi+1]
				for _, a := range g.txns {
					for _, b := range next.txns {
						addEdge(a, b, "ww", k, g.ver, next.ver)
					}
				}
			}
		}

		// nextGroup finds the first install group with version > v.
		nextGroup := func(v uint64) (group, bool) {
			i := sort.Search(len(groups), func(i int) bool { return groups[i].ver > v })
			if i == len(groups) {
				return group{}, false
			}
			return groups[i], true
		}
		// sameGroup finds the install group of exactly version v.
		sameGroup := func(v uint64) (group, bool) {
			i := sort.Search(len(groups), func(i int) bool { return groups[i].ver >= v })
			if i == len(groups) || groups[i].ver != v {
				return group{}, false
			}
			return groups[i], true
		}

		robs := reads[k]
		sort.Slice(robs, func(i, j int) bool {
			if robs[i].ver != robs[j].ver {
				return robs[i].ver < robs[j].ver
			}
			return txns[robs[i].txn].id < txns[robs[j].txn].id
		})
		for _, ro := range robs {
			if g, ok := sameGroup(ro.ver); ok {
				// Read-from: the installer(s) of the observed version.
				for _, w := range g.txns {
					addEdge(w, ro.txn, "wr", k, ro.ver, ro.ver)
				}
			} else if ro.ver > 1 {
				// Versions above the populate version must come from a
				// committed install; observing one that doesn't exist means
				// a dirty or lost read.
				rep.Anomalies = append(rep.Anomalies, fmt.Sprintf(
					"key %d: T%#x observed version %d, never installed by a committed txn",
					k, txns[ro.txn].id, ro.ver))
			}
			// Anti-dependency: whoever installed the next version after the
			// one this txn observed must follow it.
			if g, ok := nextGroup(ro.ver); ok {
				for _, w := range g.txns {
					addEdge(ro.txn, w, "rw", k, ro.ver, g.ver)
				}
			}
		}
	}

	// Strongly connected components (iterative Tarjan); every SCC with more
	// than one member is a serializability violation.
	sccs := stronglyConnected(adj)
	for _, scc := range sccs {
		if len(scc) < 2 {
			continue
		}
		if len(rep.Cycles) >= maxReportedCycles {
			rep.Anomalies = append(rep.Anomalies, fmt.Sprintf(
				"additional cycle of %d txns suppressed (cap %d)", len(scc), maxReportedCycles))
			continue
		}
		if c, ok := witnessCycle(adj, scc); ok {
			rep.Cycles = append(rep.Cycles, c)
		}
	}
	sort.Slice(rep.Cycles, func(i, j int) bool {
		return rep.Cycles[i].Edges[0].From < rep.Cycles[j].Edges[0].From
	})
	return rep
}

// stronglyConnected returns Tarjan SCCs of adj, iteratively (histories can
// be large). Components are returned with members sorted ascending.
func stronglyConnected(adj [][]intEdge) [][]int {
	n := len(adj)
	const unvisited = -1
	indexOf := make([]int, n)
	lowlink := make([]int, n)
	onStack := make([]bool, n)
	for i := range indexOf {
		indexOf[i] = unvisited
	}
	var stack []int
	var sccs [][]int
	next := 0

	type frame struct {
		v, ei int
	}
	for root := 0; root < n; root++ {
		if indexOf[root] != unvisited {
			continue
		}
		frames := []frame{{v: root}}
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.ei == 0 {
				indexOf[v] = next
				lowlink[v] = next
				next++
				stack = append(stack, v)
				onStack[v] = true
			}
			advanced := false
			for f.ei < len(adj[v]) {
				w := adj[v][f.ei].to
				f.ei++
				if indexOf[w] == unvisited {
					frames = append(frames, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && indexOf[w] < lowlink[v] {
					lowlink[v] = indexOf[w]
				}
			}
			if advanced {
				continue
			}
			// v is done: pop frame, propagate lowlink, maybe emit SCC.
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if lowlink[v] < lowlink[p] {
					lowlink[p] = lowlink[v]
				}
			}
			if lowlink[v] == indexOf[v] {
				var scc []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				sort.Ints(scc)
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}

// witnessCycle finds a shortest cycle within one SCC by BFS from each of a
// few members, restricted to SCC-internal edges.
func witnessCycle(adj [][]intEdge, scc []int) (Cycle, bool) {
	inSCC := map[int]bool{}
	for _, v := range scc {
		inSCC[v] = true
	}
	starts := scc
	if len(starts) > 8 {
		starts = starts[:8]
	}
	var best []Edge
	for _, src := range starts {
		// BFS for the shortest path src -> ... -> src.
		type hop struct {
			prev int // index into visitOrder, -1 for roots
			edge Edge
			node int
		}
		visited := map[int]int{} // node -> index into order
		var order []hop
		frontier := []int{}
		for _, ie := range adj[src] {
			if !inSCC[ie.to] {
				continue
			}
			if ie.to == src {
				return Cycle{Edges: []Edge{ie.e}}, true
			}
			if _, ok := visited[ie.to]; ok {
				continue
			}
			visited[ie.to] = len(order)
			order = append(order, hop{prev: -1, edge: ie.e, node: ie.to})
			frontier = append(frontier, len(order)-1)
		}
		found := -1
		var closing Edge
		for len(frontier) > 0 && found < 0 {
			var nextFrontier []int
			for _, oi := range frontier {
				v := order[oi].node
				for _, ie := range adj[v] {
					if !inSCC[ie.to] {
						continue
					}
					if ie.to == src {
						found = oi
						closing = ie.e
						break
					}
					if _, ok := visited[ie.to]; ok {
						continue
					}
					visited[ie.to] = len(order)
					order = append(order, hop{prev: oi, edge: ie.e, node: ie.to})
					nextFrontier = append(nextFrontier, len(order)-1)
				}
				if found >= 0 {
					break
				}
			}
			frontier = nextFrontier
		}
		if found < 0 {
			continue
		}
		var path []Edge
		for oi := found; oi >= 0; oi = order[oi].prev {
			path = append(path, order[oi].edge)
		}
		// path is reversed (last hop first); flip and append the closer.
		for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
			path[i], path[j] = path[j], path[i]
		}
		path = append(path, closing)
		if best == nil || len(path) < len(best) {
			best = path
		}
		if len(best) == 2 {
			break
		}
	}
	if best == nil {
		return Cycle{}, false
	}
	return Cycle{Edges: best}, true
}
