// The bottleneck analyzer: given one cell's series set, name the resource
// that limited it. The attribution combines two signals — utilization
// ranking (which resource pool ran closest to saturation over the steady
// window) and lock-conflict pressure (the fraction of transaction outcomes
// that were lock aborts) — and cites the phase-latency critical-path shares
// as supporting detail, the same reasoning a person applies when reading the
// dashboard lanes by hand.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
)

// Verdict is the analyzer's conclusion for one cell.
type Verdict struct {
	// Resource is the limiting resource: "nic-core", "host-core", "dma",
	// "network", "lock", or "load" when nothing is near saturation (the
	// offered load itself is the limit), or "none" when the set is empty.
	Resource string `json:"resource"`
	// Node is the node whose resource saturated (e.g. "node2"), or "" when
	// the verdict is cluster-wide.
	Node string `json:"node,omitempty"`
	// Util is the supporting measurement: mean occupancy of the named
	// resource, or the lock-conflict fraction for "lock" verdicts.
	Util float64 `json:"util"`
	// Detail is a one-line human-readable justification.
	Detail string `json:"detail"`
}

func (v Verdict) String() string {
	if v.Node == "" {
		return fmt.Sprintf("%s (%.0f%%): %s", v.Resource, v.Util*100, v.Detail)
	}
	return fmt.Sprintf("%s@%s (%.0f%%): %s", v.Resource, v.Node, v.Util*100, v.Detail)
}

// Thresholds for attribution. A resource pool is the bottleneck when it is
// the most-utilized pool and runs above satUtil; lock contention wins when
// the worst node aborts more than lockFrac of its outcomes on locks (lock
// pressure caps throughput well below any pool's saturation point, so it is
// checked first).
const (
	satUtil  = 0.5
	lockFrac = 0.2
)

// occupancy series suffixes → resource names, with the lane the dashboard
// and Detail strings use.
var resourceOf = map[string]string{
	"nic.occupancy":    "nic-core",
	"host.occupancy":   "host-core",
	"dma.occupancy":    "dma",
	"net.tx_occupancy": "network",
}

// steadyMean averages the middle 80% of a series, trimming warm-up and
// tail-off so short transients don't drive the verdict.
func steadyMean(vals []float64) float64 {
	n := len(vals)
	if n == 0 {
		return 0
	}
	lo, hi := n/10, n-n/10
	if hi <= lo {
		lo, hi = 0, n
	}
	sum := 0.0
	for _, v := range vals[lo:hi] {
		sum += v
	}
	return sum / float64(hi-lo)
}

// splitNode splits "node3.nic.occupancy" into ("node3", "nic.occupancy");
// names without a node prefix return ("", name).
func splitNode(name string) (node, rest string) {
	i := strings.IndexByte(name, '.')
	if i > 4 && strings.HasPrefix(name, "node") {
		return name[:i], name[i+1:]
	}
	return "", name
}

// Analyze names the limiting resource of one cell from its series set.
func Analyze(set *Set) Verdict {
	if set == nil || len(set.TimesUs) == 0 {
		return Verdict{Resource: "none", Detail: "no samples"}
	}

	type pool struct {
		node, res string
		util      float64
	}
	var top pool
	var lockNode string
	var lockWorst float64
	phaseWork := map[string]float64{} // phase → Σ mean_us × rate (critical-path share)
	phaseRate := map[string]*Series{}

	for i := range set.Series {
		s := &set.Series[i]
		node, rest := splitNode(s.Name)
		if res, ok := resourceOf[rest]; ok {
			if u := steadyMean(s.Vals); u > top.util {
				top = pool{node: node, res: res, util: u}
			}
			continue
		}
		if rest == "txn.lock_conflict_frac" {
			if f := steadyMean(s.Vals); f > lockWorst {
				lockWorst, lockNode = f, node
			}
			continue
		}
		if p, ok := strings.CutPrefix(rest, "phase."); ok {
			if name, ok := strings.CutSuffix(p, ".rate"); ok {
				phaseRate[node+"/"+name] = s
			}
		}
	}
	// Second pass for phase means, now that the rates are indexed (series
	// are name-sorted, so x.mean_us precedes x.rate; pairing after the fact
	// avoids depending on that).
	for i := range set.Series {
		s := &set.Series[i]
		node, rest := splitNode(s.Name)
		p, ok := strings.CutPrefix(rest, "phase.")
		if !ok {
			continue
		}
		name, ok := strings.CutSuffix(p, ".mean_us")
		if !ok {
			continue
		}
		r := phaseRate[node+"/"+name]
		if r == nil {
			continue
		}
		n := len(s.Vals)
		if len(r.Vals) < n {
			n = len(r.Vals)
		}
		w := 0.0
		for j := range n {
			w += s.Vals[j] * r.Vals[j]
		}
		phaseWork[name] += w
	}

	topPhase, phaseShare := dominantPhase(phaseWork)
	detailTail := ""
	if topPhase != "" {
		detailTail = fmt.Sprintf("; dominant phase %s (%.0f%% of phase time)", topPhase, phaseShare*100)
	}

	if lockWorst >= lockFrac {
		return Verdict{
			Resource: "lock", Node: lockNode, Util: lockWorst,
			Detail: fmt.Sprintf("%.0f%% of outcomes are lock-conflict aborts on %s%s", lockWorst*100, lockNode, detailTail),
		}
	}
	if top.util >= satUtil {
		return Verdict{
			Resource: top.res, Node: top.node, Util: top.util,
			Detail: fmt.Sprintf("%s pool at %.0f%% mean occupancy on %s%s", top.res, top.util*100, top.node, detailTail),
		}
	}
	return Verdict{
		Resource: "load", Util: top.util,
		Detail: fmt.Sprintf("no pool above %.0f%% occupancy (max %s at %.0f%%)%s", satUtil*100, top.res, top.util*100, detailTail),
	}
}

// dominantPhase returns the phase with the largest critical-path share and
// that share, or ("", 0) when no phase series exist.
func dominantPhase(work map[string]float64) (string, float64) {
	if len(work) == 0 {
		return "", 0
	}
	names := make([]string, 0, len(work))
	total := 0.0
	for n, w := range work {
		names = append(names, n)
		total += w
	}
	sort.Strings(names)
	best, bestW := "", -1.0
	for _, n := range names {
		if work[n] > bestW {
			best, bestW = n, work[n]
		}
	}
	if total <= 0 {
		return "", 0
	}
	return best, bestW / total
}
