// Single-file HTML dashboard. The generated page embeds the telemetry JSON
// document and renders per-cell time-series lanes — throughput, latency
// quantiles, abort rate, queue depths, DMA backlog — with one line per node,
// entirely self-contained (inline CSS/JS/SVG, no external resources), so the
// file can be attached to a CI run or mailed around and still open.
//
// Visual conventions follow one consistent scheme: each node keeps the same
// categorical hue in every lane (color follows the entity), every lane has
// exactly one y-axis, lines are 2px with a legend plus crosshair tooltip,
// grids are solid hairlines, dark mode re-steps the same hues for the dark
// surface, and every lane carries a table view so no value is hover-gated.
package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"strings"
)

var htmlEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")

// WriteHTML writes the dashboard page for labelled sets (verdicts may be nil
// or sparse). The embedded data blob uses the same schema as WriteJSON.
func WriteHTML(w io.Writer, title string, sets map[string]*Set, verdicts map[string]*Verdict) error {
	labels := make([]string, 0, len(sets))
	for l := range sets {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	doc := fileJSON{Schema: SchemaVersion}
	for _, l := range labels {
		doc.Cells = append(doc.Cells, cellJSON{Cell: l, Bottleneck: verdicts[l], Set: sets[l]})
	}
	blob, err := json.Marshal(doc) // escapes <, >, & inside strings
	if err != nil {
		return err
	}
	page := strings.Replace(dashboardPage, "__TITLE__", htmlEscaper.Replace(title), 2)
	head, tail, _ := strings.Cut(page, "__DATA__")
	if _, err := io.WriteString(w, head); err != nil {
		return err
	}
	if _, err := w.Write(blob); err != nil {
		return err
	}
	_, err = io.WriteString(w, tail)
	return err
}

const dashboardPage = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>__TITLE__</title>
<style>
:root {
  color-scheme: light dark;
  --page: #f9f9f7; --surface: #fcfcfb;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7; --ring: rgba(11,11,11,0.10);
  --s0: #2a78d6; --s1: #eb6834; --s2: #1baf7a; --s3: #eda100;
  --s4: #e87ba4; --s5: #008300; --s6: #4a3aa7; --s7: #e34948;
}
@media (prefers-color-scheme: dark) {
  :root {
    --page: #0d0d0d; --surface: #1a1a19;
    --ink: #ffffff; --ink-2: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --axis: #383835; --ring: rgba(255,255,255,0.10);
    --s0: #3987e5; --s1: #d95926; --s2: #199e70; --s3: #c98500;
    --s4: #d55181; --s5: #008300; --s6: #9085e9; --s7: #e66767;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 24px; background: var(--page); color: var(--ink);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 18px; font-weight: 600; margin: 0 0 4px; }
.sub { color: var(--ink-2); margin: 0 0 16px; }
.filters {
  display: flex; gap: 16px; align-items: center; flex-wrap: wrap;
  margin: 0 0 8px;
}
.filters label { color: var(--ink-2); font-size: 13px; }
.filters select {
  font: inherit; color: var(--ink); background: var(--surface);
  border: 1px solid var(--ring); border-radius: 6px; padding: 4px 8px;
}
.verdict { margin: 8px 0 16px; color: var(--ink-2); }
.verdict b { color: var(--ink); font-weight: 600; }
.lane {
  background: var(--surface); border: 1px solid var(--ring);
  border-radius: 10px; padding: 16px 16px 8px; margin: 0 0 16px;
  position: relative;
}
.lane h3 { font-size: 14px; font-weight: 600; margin: 0 0 2px; }
.lane h3 .unit { color: var(--muted); font-weight: 400; }
.legend { display: flex; gap: 14px; flex-wrap: wrap; margin: 2px 0 6px; }
.legend .key { display: inline-flex; align-items: center; gap: 6px; color: var(--ink-2); font-size: 12px; }
.swatch { width: 14px; height: 3px; border-radius: 2px; display: inline-block; }
svg { display: block; width: 100%; height: auto; }
svg text { font: 11px system-ui, sans-serif; fill: var(--muted); font-variant-numeric: tabular-nums; }
.grid { stroke: var(--grid); stroke-width: 1; }
.axis { stroke: var(--axis); stroke-width: 1; }
.line { fill: none; stroke-width: 2; stroke-linejoin: round; stroke-linecap: round; }
.xhair { stroke: var(--axis); stroke-width: 1; }
.hit { fill: transparent; outline: none; }
.hit:focus-visible { stroke: var(--s0); stroke-width: 1; }
.c0 { stroke: var(--s0); } .c1 { stroke: var(--s1); } .c2 { stroke: var(--s2); } .c3 { stroke: var(--s3); }
.c4 { stroke: var(--s4); } .c5 { stroke: var(--s5); } .c6 { stroke: var(--s6); } .c7 { stroke: var(--s7); }
.b0 { background: var(--s0); } .b1 { background: var(--s1); } .b2 { background: var(--s2); } .b3 { background: var(--s3); }
.b4 { background: var(--s4); } .b5 { background: var(--s5); } .b6 { background: var(--s6); } .b7 { background: var(--s7); }
.tip {
  position: absolute; pointer-events: none; display: none; z-index: 2;
  background: var(--surface); border: 1px solid var(--ring); border-radius: 8px;
  padding: 8px 10px; box-shadow: 0 2px 8px rgba(0,0,0,0.12); font-size: 12px;
  min-width: 150px;
}
.tip .t { color: var(--muted); margin-bottom: 4px; }
.tip .row { display: flex; align-items: center; gap: 6px; }
.tip .v { font-weight: 600; font-variant-numeric: tabular-nums; }
.tip .n { color: var(--ink-2); }
details { margin: 6px 0 8px; }
summary { color: var(--muted); font-size: 12px; cursor: pointer; }
table { border-collapse: collapse; font-size: 12px; margin-top: 6px; }
th, td {
  text-align: right; padding: 2px 10px; font-variant-numeric: tabular-nums;
  border-bottom: 1px solid var(--grid); color: var(--ink-2);
}
th { color: var(--muted); font-weight: 500; }
.empty { color: var(--muted); padding: 32px 0; text-align: center; }
</style>
</head>
<body>
<h1>__TITLE__</h1>
<p class="sub">Simulated-time telemetry; one line per node in every lane.</p>
<div class="filters">
  <label>Cell <select id="cell"></select></label>
  <label>Latency quantile <select id="q">
    <option value="p50">p50</option>
    <option value="p99" selected>p99</option>
    <option value="p999">p999</option>
  </select></label>
</div>
<div class="verdict" id="verdict"></div>
<div id="lanes"></div>
<script id="data" type="application/json">__DATA__</script>
<script>
(function () {
  'use strict';
  var doc = JSON.parse(document.getElementById('data').textContent);
  var cells = doc.cells || [];
  var SVGNS = 'http://www.w3.org/2000/svg';
  var W = 900, H = 200, ML = 64, MR = 12, MT = 10, MB = 26;

  function el(tag, cls, text) {
    var e = document.createElement(tag);
    if (cls) e.className = cls;
    if (text !== undefined) e.textContent = text;
    return e;
  }
  function svgEl(tag, attrs) {
    var e = document.createElementNS(SVGNS, tag);
    for (var k in attrs) e.setAttribute(k, attrs[k]);
    return e;
  }
  function lanes(q) {
    return [
      { title: 'Throughput', unit: 'txn/s', re: /^node(\d+)\.txn\.commit_rate$/ },
      { title: 'Latency ' + q, unit: 'µs', re: new RegExp('^node(\\d+)\\.latency\\.' + q + '_us$') },
      { title: 'Abort rate', unit: 'aborts/s', re: /^node(\d+)\.txn\.abort_rate$/ },
      { title: 'NIC queue depth', unit: 'messages', re: /^node(\d+)\.nic\.queue_depth$/ },
      { title: 'Host queue depth', unit: 'messages', re: /^node(\d+)\.host\.queue_depth$/ },
      { title: 'DMA backlog', unit: 'µs', re: /^node(\d+)\.dma\.backlog_us$/ }
    ];
  }
  function pick(set, re) {
    var out = [];
    for (var i = 0; i < (set.series || []).length; i++) {
      var m = re.exec(set.series[i].name);
      if (m) out.push({ node: +m[1], label: 'node' + m[1], vals: set.series[i].vals || [] });
    }
    out.sort(function (a, b) { return a.node - b.node; });
    return out.slice(0, 8); // eight categorical slots; never cycle hues
  }
  function niceCeil(v) {
    if (!(v > 0)) return 1;
    var k = Math.pow(10, Math.floor(Math.log10(v)));
    var steps = [1, 2, 5, 10];
    for (var i = 0; i < steps.length; i++) if (steps[i] * k >= v) return steps[i] * k;
    return 10 * k;
  }
  function fmt(v) {
    if (Math.abs(v) >= 1000) return v.toLocaleString('en-US', { maximumFractionDigits: 0 });
    if (Math.abs(v) >= 10) return v.toFixed(1);
    return v.toFixed(2);
  }

  function renderLane(parent, lane, set) {
    var series = pick(set, lane.re);
    if (!series.length) return;
    var t = set.t_us || [];
    var n = t.length;
    if (!n) return;

    var card = el('div', 'lane');
    var h = el('h3', null, lane.title + ' ');
    h.appendChild(el('span', 'unit', '(' + lane.unit + ')'));
    card.appendChild(h);

    if (series.length > 1) {
      var leg = el('div', 'legend');
      series.forEach(function (s, i) {
        var key = el('span', 'key');
        key.appendChild(el('span', 'swatch b' + (i % 8)));
        key.appendChild(document.createTextNode(s.label));
        leg.appendChild(key);
      });
      card.appendChild(leg);
    }

    var ymax = 0;
    series.forEach(function (s) {
      for (var i = 0; i < s.vals.length; i++) if (s.vals[i] > ymax) ymax = s.vals[i];
    });
    ymax = niceCeil(ymax);
    var x0 = t[0], x1 = t[n - 1];
    if (x1 <= x0) x1 = x0 + 1;
    var px = function (v) { return ML + (v - x0) / (x1 - x0) * (W - ML - MR); };
    var py = function (v) { return H - MB - v / ymax * (H - MT - MB); };

    var svg = svgEl('svg', { viewBox: '0 0 ' + W + ' ' + H, role: 'img' });
    for (var g = 0; g <= 4; g++) {
      var yv = ymax * g / 4;
      var y = py(yv);
      svg.appendChild(svgEl('line', { x1: ML, x2: W - MR, y1: y, y2: y, 'class': g === 0 ? 'axis' : 'grid' }));
      var lab = svgEl('text', { x: ML - 8, y: y + 4, 'text-anchor': 'end' });
      lab.textContent = fmt(yv);
      svg.appendChild(lab);
    }
    [x0, (x0 + x1) / 2, x1].forEach(function (xv) {
      var lab = svgEl('text', { x: px(xv), y: H - 8, 'text-anchor': 'middle' });
      lab.textContent = fmt(xv / 1000) + ' ms';
      svg.appendChild(lab);
    });
    series.forEach(function (s, i) {
      var d = '';
      for (var j = 0; j < Math.min(n, s.vals.length); j++) {
        d += (j ? 'L' : 'M') + px(t[j]).toFixed(1) + ' ' + py(Math.min(s.vals[j], ymax)).toFixed(1);
      }
      svg.appendChild(svgEl('path', { d: d, 'class': 'line c' + (i % 8) }));
    });
    var xhair = svgEl('line', { y1: MT, y2: H - MB, 'class': 'xhair', visibility: 'hidden' });
    svg.appendChild(xhair);
    var hit = svgEl('rect', { x: ML, y: MT, width: W - ML - MR, height: H - MT - MB, 'class': 'hit', tabindex: '0' });
    svg.appendChild(hit);
    card.appendChild(svg);

    var tip = el('div', 'tip');
    card.appendChild(tip);
    var cur = -1;
    function show(idx) {
      cur = Math.max(0, Math.min(n - 1, idx));
      var x = px(t[cur]);
      xhair.setAttribute('x1', x); xhair.setAttribute('x2', x);
      xhair.setAttribute('visibility', 'visible');
      tip.textContent = '';
      tip.appendChild(el('div', 't', 't = ' + fmt(t[cur] / 1000) + ' ms'));
      series.forEach(function (s, i) {
        var row = el('div', 'row');
        row.appendChild(el('span', 'swatch b' + (i % 8)));
        row.appendChild(el('span', 'v', cur < s.vals.length ? fmt(s.vals[cur]) : '—'));
        row.appendChild(el('span', 'n', s.label));
        tip.appendChild(row);
      });
      tip.style.display = 'block';
      var rect = card.getBoundingClientRect();
      var sr = svg.getBoundingClientRect();
      var fx = sr.left - rect.left + x / W * sr.width;
      tip.style.left = Math.min(fx + 12, rect.width - tip.offsetWidth - 8) + 'px';
      tip.style.top = (sr.top - rect.top + 8) + 'px';
    }
    function hide() { tip.style.display = 'none'; xhair.setAttribute('visibility', 'hidden'); cur = -1; }
    hit.addEventListener('pointermove', function (ev) {
      var sr = svg.getBoundingClientRect();
      var vx = (ev.clientX - sr.left) / sr.width * W;
      var frac = (vx - ML) / (W - ML - MR);
      show(Math.round(frac * (n - 1)));
    });
    hit.addEventListener('pointerleave', hide);
    hit.addEventListener('focus', function () { show(cur < 0 ? Math.floor(n / 2) : cur); });
    hit.addEventListener('blur', hide);
    hit.addEventListener('keydown', function (ev) {
      if (ev.key === 'ArrowLeft') { show((cur < 0 ? Math.floor(n / 2) : cur) - 1); ev.preventDefault(); }
      if (ev.key === 'ArrowRight') { show((cur < 0 ? Math.floor(n / 2) : cur) + 1); ev.preventDefault(); }
    });

    var det = el('details');
    det.appendChild(el('summary', null, 'Table view'));
    var tbl = el('table');
    var hr = el('tr');
    hr.appendChild(el('th', null, 't (µs)'));
    series.forEach(function (s) { hr.appendChild(el('th', null, s.label)); });
    tbl.appendChild(hr);
    for (var r = 0; r < n; r++) {
      var tr = el('tr');
      tr.appendChild(el('td', null, fmt(t[r])));
      series.forEach(function (s) { tr.appendChild(el('td', null, r < s.vals.length ? fmt(s.vals[r]) : '')); });
      tbl.appendChild(tr);
    }
    det.appendChild(tbl);
    card.appendChild(det);
    parent.appendChild(card);
  }

  var cellSel = document.getElementById('cell');
  var qSel = document.getElementById('q');
  cells.forEach(function (c, i) {
    var o = document.createElement('option');
    o.value = String(i);
    o.textContent = c.cell;
    cellSel.appendChild(o);
  });

  function render() {
    var c = cells[+cellSel.value] || cells[0];
    var verdict = document.getElementById('verdict');
    verdict.textContent = '';
    var parent = document.getElementById('lanes');
    parent.textContent = '';
    if (!c) { parent.appendChild(el('div', 'empty', 'No telemetry cells in this file.')); return; }
    if (c.bottleneck) {
      verdict.appendChild(el('b', null, 'Bottleneck: ' + c.bottleneck.resource +
        (c.bottleneck.node ? ' @ ' + c.bottleneck.node : '') + '.'));
      verdict.appendChild(document.createTextNode(' ' + (c.bottleneck.detail || '')));
    }
    var any = false;
    lanes(qSel.value).forEach(function (lane) {
      var before = parent.childElementCount;
      renderLane(parent, lane, c);
      if (parent.childElementCount > before) any = true;
    });
    if (!any) parent.appendChild(el('div', 'empty', 'No samples recorded for this cell.'));
  }
  cellSel.addEventListener('change', render);
  qSel.addEventListener('change', render);
  render();
})();
</script>
</body>
</html>
`
