// Series export: CSV for spreadsheet/gnuplot consumption and JSON for
// machine analysis. Both are deterministic — series are sorted by name, cell
// labels are sorted, and floats format with strconv's shortest round-trip
// representation — so two identically-seeded runs export byte-identical
// files (the CI determinism gate diffs them).
package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"strconv"
)

func appendFloat(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// WriteCSV writes one set as CSV with a t_us time column followed by every
// series in name order.
func WriteCSV(w io.Writer, set *Set) error {
	bw := bufio.NewWriter(w)
	var line []byte
	line = append(line, "t_us"...)
	for i := range set.Series {
		line = append(line, ',')
		line = append(line, set.Series[i].Name...)
	}
	line = append(line, '\n')
	if _, err := bw.Write(line); err != nil {
		return err
	}
	for i := range set.TimesUs {
		line = line[:0]
		line = appendFloat(line, set.TimesUs[i])
		for j := range set.Series {
			line = append(line, ',')
			if i < len(set.Series[j].Vals) {
				line = appendFloat(line, set.Series[j].Vals[i])
			}
		}
		line = append(line, '\n')
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteMultiCSV writes several labelled sets as one CSV in long form: a
// leading cell column, the time column, then the union of all series names.
// Cells missing a series leave its field empty.
func WriteMultiCSV(w io.Writer, sets map[string]*Set) error {
	labels := make([]string, 0, len(sets))
	for l := range sets {
		labels = append(labels, l)
	}
	sort.Strings(labels)

	seen := map[string]bool{}
	var names []string
	for _, l := range labels {
		for i := range sets[l].Series {
			if n := sets[l].Series[i].Name; !seen[n] {
				seen[n] = true
				names = append(names, n)
			}
		}
	}
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	var line []byte
	line = append(line, "cell,t_us"...)
	for _, n := range names {
		line = append(line, ',')
		line = append(line, n...)
	}
	line = append(line, '\n')
	if _, err := bw.Write(line); err != nil {
		return err
	}
	for _, l := range labels {
		set := sets[l]
		col := make(map[string]int, len(set.Series))
		for i := range set.Series {
			col[set.Series[i].Name] = i
		}
		for i := range set.TimesUs {
			line = line[:0]
			line = append(line, l...)
			line = append(line, ',')
			line = appendFloat(line, set.TimesUs[i])
			for _, n := range names {
				line = append(line, ',')
				if j, ok := col[n]; ok && i < len(set.Series[j].Vals) {
					line = appendFloat(line, set.Series[j].Vals[i])
				}
			}
			line = append(line, '\n')
			if _, err := bw.Write(line); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// cellJSON is one cell's telemetry in the JSON export.
type cellJSON struct {
	Cell       string   `json:"cell"`
	Bottleneck *Verdict `json:"bottleneck,omitempty"`
	*Set
}

// fileJSON is the top-level JSON export schema.
type fileJSON struct {
	Schema string     `json:"schema"`
	Cells  []cellJSON `json:"cells"`
}

// SchemaVersion identifies the JSON export layout; bump it when the shape
// changes so downstream tooling can detect drift.
const SchemaVersion = "xenic-telemetry/1"

// WriteJSON writes labelled sets (with per-cell bottleneck verdicts, which
// may be nil) as one indented JSON document. Determinism comes from sorted
// labels and struct-typed encoding — no map iteration reaches the encoder.
func WriteJSON(w io.Writer, sets map[string]*Set, verdicts map[string]*Verdict) error {
	labels := make([]string, 0, len(sets))
	for l := range sets {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	doc := fileJSON{Schema: SchemaVersion}
	for _, l := range labels {
		doc.Cells = append(doc.Cells, cellJSON{Cell: l, Bottleneck: verdicts[l], Set: sets[l]})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
