// Package telemetry is the time-resolved observability pipeline: a
// deterministic, simulated-time sampler that periodically reads registered
// probes — counters become windowed rates, histograms become windowed
// quantiles, gauges are read directly — into per-node, per-resource time
// series. Sampling is read-only: probe callbacks never mutate simulation
// state, never touch the engine PRNG, and never schedule work, so a run with
// telemetry attached executes the same transaction schedule as one without
// (the overhead rule: telemetry off must be byte-identical, telemetry on must
// be behavior-identical).
//
// The pipeline is pull-based. Components expose cheap cumulative counters
// (busy picoseconds, event counts, queue depths); the sampler diffs them at
// each tick, so the instrumented code pays nothing between samples and the
// per-sample cost is O(probes).
package telemetry

import (
	"sort"

	"xenic/internal/metrics"
	"xenic/internal/sim"
)

// maxSamples caps series length as a backstop against unbounded growth when
// a sampler is left attached across a very long run (e.g. a drain loop that
// the caller forgot to Stop around). 20000 samples at the default 100µs
// interval covers 2 simulated seconds.
const maxSamples = 20000

// DefaultInterval is the sampling cadence used when none is given: 100µs of
// simulated time, fine enough to resolve the 500µs availability buckets and
// coarse enough that a 40ms run yields 400 samples.
const DefaultInterval = 100 * sim.Microsecond

// Series is one named time series; Vals[i] is the sample taken at
// Set.TimesUs[i].
type Series struct {
	Name string    `json:"name"`
	Vals []float64 `json:"vals"`
}

// Set is an exported snapshot of everything a sampler recorded: a shared
// time axis plus the series, sorted by name so every export is
// deterministic.
type Set struct {
	IntervalUs float64   `json:"interval_us"`
	TimesUs    []float64 `json:"t_us"`
	Series     []Series  `json:"series"`
}

// state is the shared sampler core; Sampler values are light prefix views
// over it (mirroring metrics.Registry and its Sub scopes).
type state struct {
	interval sim.Time
	attached bool
	stopped  bool
	lastTick sim.Time

	times  []sim.Time
	series []*Series           // registration order; sorted at export
	probes []func(dt sim.Time) // each appends one tick's values to its series
}

// Sampler collects time series from registered probes on a fixed
// simulated-time cadence. A nil *Sampler is valid and inert: every method
// no-ops, so call sites need no telemetry-enabled checks. Register all
// probes before Attach; each probe primes its "previous" cursor at
// registration time.
type Sampler struct {
	st     *state
	prefix string
}

// New creates a sampler with the given interval (DefaultInterval if
// non-positive).
func New(interval sim.Time) *Sampler {
	if interval <= 0 {
		interval = DefaultInterval
	}
	return &Sampler{st: &state{interval: interval}}
}

// Interval returns the sampling cadence (0 on a nil sampler).
func (s *Sampler) Interval() sim.Time {
	if s == nil {
		return 0
	}
	return s.st.interval
}

// Sub returns a view that prefixes every registered series name with
// "scope." — e.g. Sub("node2").Gauge("txn.inflight", ...) records
// "node2.txn.inflight".
func (s *Sampler) Sub(scope string) *Sampler {
	if s == nil {
		return nil
	}
	return &Sampler{st: s.st, prefix: s.prefix + scope + "."}
}

func (s *Sampler) newSeries(name string) *Series {
	se := &Series{Name: s.prefix + name}
	s.st.series = append(s.st.series, se)
	return se
}

// Gauge samples fn directly at each tick: an instantaneous reading (queue
// depth, in-flight count, backlog).
func (s *Sampler) Gauge(name string, fn func() float64) {
	if s == nil {
		return
	}
	se := s.newSeries(name)
	s.st.probes = append(s.st.probes, func(dt sim.Time) {
		se.Vals = append(se.Vals, fn())
	})
}

// Rate turns a monotone event counter into events/second over each sampling
// window. A counter reset (cur < prev) restarts the window from zero.
func (s *Sampler) Rate(name string, fn func() int64) {
	if s == nil {
		return
	}
	se := s.newSeries(name)
	prev := fn()
	s.st.probes = append(s.st.probes, func(dt sim.Time) {
		cur := fn()
		d := cur - prev
		if d < 0 {
			d = cur
		}
		prev = cur
		se.Vals = append(se.Vals, float64(d)/dt.Seconds())
	})
}

// Occupancy turns cumulative busy time spread over `lanes` parallel lanes
// (cores, threads, links) into fractional utilization per window:
// Δbusy / (Δt · lanes), so 1.0 means every lane was busy the whole window.
func (s *Sampler) Occupancy(name string, busy func() sim.Time, lanes int) {
	if s == nil {
		return
	}
	if lanes <= 0 {
		lanes = 1
	}
	se := s.newSeries(name)
	prev := busy()
	s.st.probes = append(s.st.probes, func(dt sim.Time) {
		cur := busy()
		d := cur - prev
		if d < 0 {
			d = 0
		}
		prev = cur
		se.Vals = append(se.Vals, float64(d)/(float64(dt)*float64(lanes)))
	})
}

// Ratio records Δnum/Δden per window (e.g. cache hits over lookups, lock
// aborts over attempts); windows where the denominator did not move record
// 0.
func (s *Sampler) Ratio(name string, num, den func() int64) {
	if s == nil {
		return
	}
	se := s.newSeries(name)
	pn, pd := num(), den()
	s.st.probes = append(s.st.probes, func(dt sim.Time) {
		cn, cd := num(), den()
		dn, dd := cn-pn, cd-pd
		pn, pd = cn, cd
		v := 0.0
		if dd > 0 && dn >= 0 {
			v = float64(dn) / float64(dd)
		}
		se.Vals = append(se.Vals, v)
	})
}

// Quantiles tracks a latency histogram as four windowed series:
// name.p50_us, name.p99_us, name.p999_us and name.rate (samples/second).
// Quantiles are computed from the bucket deltas between ticks, so they
// describe only the window, not the lifetime distribution; a histogram
// Reset between ticks restarts the window.
func (s *Sampler) Quantiles(name string, h *metrics.Histogram) {
	if s == nil {
		return
	}
	w := metrics.NewHistWindow(h)
	p50 := s.newSeries(name + ".p50_us")
	p99 := s.newSeries(name + ".p99_us")
	p999 := s.newSeries(name + ".p999_us")
	rate := s.newSeries(name + ".rate")
	s.st.probes = append(s.st.probes, func(dt sim.Time) {
		ws := w.Advance()
		p50.Vals = append(p50.Vals, ws.P50.Micros())
		p99.Vals = append(p99.Vals, ws.P99.Micros())
		p999.Vals = append(p999.Vals, ws.P999.Micros())
		rate.Vals = append(rate.Vals, float64(ws.Count)/dt.Seconds())
	})
}

// Window tracks a histogram as two windowed series — name.mean_us and
// name.rate — the cheap form of Quantiles for per-phase latency lanes where
// mean × rate gives each phase's share of critical-path time.
func (s *Sampler) Window(name string, h *metrics.Histogram) {
	if s == nil {
		return
	}
	w := metrics.NewHistWindow(h)
	mean := s.newSeries(name + ".mean_us")
	rate := s.newSeries(name + ".rate")
	s.st.probes = append(s.st.probes, func(dt sim.Time) {
		ws := w.Advance()
		mean.Vals = append(mean.Vals, ws.Mean.Micros())
		rate.Vals = append(rate.Vals, float64(ws.Count)/dt.Seconds())
	})
}

// Attach starts the sampling ticker on eng. The first sample lands one
// interval after Attach; sampling continues until Stop (or the maxSamples
// backstop). Attach is idempotent — a second call is ignored.
func (s *Sampler) Attach(eng *sim.Engine) {
	if s == nil || s.st.attached {
		return
	}
	st := s.st
	st.attached = true
	st.lastTick = eng.Now()
	eng.Ticker(st.interval, func() bool {
		if st.stopped || len(st.times) >= maxSamples {
			return false
		}
		now := eng.Now()
		dt := now - st.lastTick
		st.lastTick = now
		st.times = append(st.times, now)
		for _, p := range st.probes {
			p(dt)
		}
		return true
	})
}

// Stop ends sampling at the next tick. Call it before long drain phases so
// the series cover only the measured run.
func (s *Sampler) Stop() {
	if s == nil {
		return
	}
	s.st.stopped = true
}

// Set exports a snapshot of everything recorded so far, with series sorted
// by name. The snapshot is a deep copy; further sampling does not alias it.
func (s *Sampler) Set() *Set {
	if s == nil {
		return nil
	}
	st := s.st
	out := &Set{IntervalUs: st.interval.Micros()}
	out.TimesUs = make([]float64, len(st.times))
	for i, t := range st.times {
		out.TimesUs[i] = t.Micros()
	}
	out.Series = make([]Series, 0, len(st.series))
	for _, se := range st.series {
		vals := make([]float64, len(se.Vals))
		copy(vals, se.Vals)
		out.Series = append(out.Series, Series{Name: se.Name, Vals: vals})
	}
	sort.Slice(out.Series, func(i, j int) bool { return out.Series[i].Name < out.Series[j].Name })
	return out
}
