package telemetry

import (
	"bytes"
	"encoding/json"
	"sort"
	"strings"
	"testing"

	"xenic/internal/metrics"
	"xenic/internal/sim"
)

func TestSamplerProbes(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(100 * sim.Microsecond)

	// A synthetic workload the probes observe: a counter incremented by a
	// periodic event, busy time accrued at 50% duty, and a histogram fed one
	// sample per tick.
	var count, hits, lookups int64
	var busy sim.Time
	depth := 3.0
	h := metrics.NewHistogram()
	eng.Ticker(10*sim.Microsecond, func() bool {
		count += 5
		busy += 5 * sim.Microsecond // 5µs busy per 10µs → 0.5 occupancy
		hits += 3
		lookups += 4
		h.Record(20 * sim.Microsecond)
		return eng.Now() < 2*sim.Millisecond
	})

	sub := s.Sub("node0")
	sub.Rate("txn.commit_rate", func() int64 { return count })
	sub.Gauge("nic.queue_depth", func() float64 { return depth })
	sub.Occupancy("nic.occupancy", func() sim.Time { return busy }, 1)
	sub.Ratio("nicindex.hit_rate", func() int64 { return hits }, func() int64 { return lookups })
	sub.Quantiles("latency", h)
	s.Attach(eng)
	eng.Run(1 * sim.Millisecond)

	set := s.Set()
	if len(set.TimesUs) != 10 {
		t.Fatalf("samples = %d, want 10", len(set.TimesUs))
	}
	get := func(name string) []float64 {
		for _, se := range set.Series {
			if se.Name == name {
				return se.Vals
			}
		}
		t.Fatalf("series %q missing (have %d)", name, len(set.Series))
		return nil
	}
	// 5 events per 10µs = 500k/s.
	if v := get("node0.txn.commit_rate")[5]; v < 499_000 || v > 501_000 {
		t.Fatalf("commit_rate = %v, want ~500k", v)
	}
	if v := get("node0.nic.queue_depth")[0]; v != 3 {
		t.Fatalf("queue_depth = %v", v)
	}
	if v := get("node0.nic.occupancy")[5]; v < 0.49 || v > 0.51 {
		t.Fatalf("occupancy = %v, want ~0.5", v)
	}
	if v := get("node0.nicindex.hit_rate")[5]; v != 0.75 {
		t.Fatalf("hit_rate = %v, want 0.75", v)
	}
	if v := get("node0.latency.p50_us")[5]; v < 18 || v > 22 {
		t.Fatalf("latency p50 = %v, want ~20", v)
	}
	// Series are sorted by name in the export.
	for i := 1; i < len(set.Series); i++ {
		if set.Series[i-1].Name >= set.Series[i].Name {
			t.Fatalf("series not sorted: %q before %q", set.Series[i-1].Name, set.Series[i].Name)
		}
	}
}

func TestSamplerStop(t *testing.T) {
	eng := sim.NewEngine(1)
	s := New(100 * sim.Microsecond)
	s.Gauge("g", func() float64 { return 1 })
	s.Attach(eng)
	eng.Run(500 * sim.Microsecond)
	s.Stop()
	eng.Run(2 * sim.Millisecond)
	if n := len(s.Set().TimesUs); n != 5 {
		t.Fatalf("samples after stop = %d, want 5", n)
	}
}

func TestNilSamplerSafe(t *testing.T) {
	var s *Sampler
	// Every method must be a no-op, including through Sub.
	s.Gauge("g", nil)
	s.Rate("r", nil)
	s.Occupancy("o", nil, 4)
	s.Ratio("x", nil, nil)
	s.Quantiles("q", nil)
	s.Window("w", nil)
	s.Sub("node0").Gauge("g", nil)
	s.Attach(nil)
	s.Stop()
	if s.Set() != nil || s.Interval() != 0 {
		t.Fatal("nil sampler leaked state")
	}
}

// synthSet builds a one-sample-per-value set from name → series, sorted by
// name like Sampler.Set exports.
func synthSet(series map[string][]float64) *Set {
	set := &Set{IntervalUs: 100}
	n := 0
	for name, vals := range series {
		set.Series = append(set.Series, Series{Name: name, Vals: vals})
		if len(vals) > n {
			n = len(vals)
		}
	}
	sort.Slice(set.Series, func(i, j int) bool { return set.Series[i].Name < set.Series[j].Name })
	for i := 0; i < n; i++ {
		set.TimesUs = append(set.TimesUs, float64(100*(i+1)))
	}
	return set
}

func flat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestAnalyzeVerdicts(t *testing.T) {
	// Saturated NIC cores win over a cooler host pool.
	v := Analyze(synthSet(map[string][]float64{
		"node1.nic.occupancy":  flat(0.92, 20),
		"node1.host.occupancy": flat(0.40, 20),
	}))
	if v.Resource != "nic-core" || v.Node != "node1" {
		t.Fatalf("verdict = %+v, want nic-core@node1", v)
	}
	// Lock pressure wins even when a pool is saturated.
	v = Analyze(synthSet(map[string][]float64{
		"node0.nic.occupancy":          flat(0.92, 20),
		"node2.txn.lock_conflict_frac": flat(0.35, 20),
	}))
	if v.Resource != "lock" || v.Node != "node2" {
		t.Fatalf("verdict = %+v, want lock@node2", v)
	}
	// Nothing saturated → the offered load is the limit.
	v = Analyze(synthSet(map[string][]float64{
		"node0.dma.occupancy": flat(0.10, 20),
	}))
	if v.Resource != "load" {
		t.Fatalf("verdict = %+v, want load", v)
	}
	// Empty set.
	if v = Analyze(&Set{}); v.Resource != "none" {
		t.Fatalf("verdict = %+v, want none", v)
	}
	if v = Analyze(nil); v.Resource != "none" {
		t.Fatalf("nil verdict = %+v, want none", v)
	}
}

func TestAnalyzeDominantPhase(t *testing.T) {
	v := Analyze(synthSet(map[string][]float64{
		"node0.nic.occupancy":          flat(0.8, 20),
		"node0.phase.commit.mean_us":   flat(30, 20),
		"node0.phase.commit.rate":      flat(1000, 20),
		"node0.phase.validate.mean_us": flat(5, 20),
		"node0.phase.validate.rate":    flat(1000, 20),
	}))
	if !strings.Contains(v.Detail, "dominant phase commit") {
		t.Fatalf("detail %q does not cite the dominant phase", v.Detail)
	}
}

func TestWriteCSV(t *testing.T) {
	set := synthSet(map[string][]float64{
		"b.rate":  {2, 4},
		"a.depth": {1, 3},
	})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, set); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "t_us,a.depth,b.rate" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 3 || lines[1] != "100,1,2" || lines[2] != "200,3,4" {
		t.Fatalf("rows = %q", lines[1:])
	}
}

func TestWriteJSONShape(t *testing.T) {
	set := synthSet(map[string][]float64{"node0.txn.commit_rate": {10, 20}})
	v := Analyze(set)
	var buf bytes.Buffer
	err := WriteJSON(&buf, map[string]*Set{"cellA": set}, map[string]*Verdict{"cellA": &v})
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema string `json:"schema"`
		Cells  []struct {
			Cell       string    `json:"cell"`
			Bottleneck *Verdict  `json:"bottleneck"`
			TimesUs    []float64 `json:"t_us"`
			Series     []Series  `json:"series"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != SchemaVersion {
		t.Fatalf("schema = %q", doc.Schema)
	}
	if len(doc.Cells) != 1 || doc.Cells[0].Cell != "cellA" || doc.Cells[0].Bottleneck == nil {
		t.Fatalf("cells = %+v", doc.Cells)
	}
	if len(doc.Cells[0].Series) != 1 || len(doc.Cells[0].TimesUs) != 2 {
		t.Fatalf("cell content = %+v", doc.Cells[0])
	}
}

func TestWriteHTMLEmbedsData(t *testing.T) {
	set := synthSet(map[string][]float64{"node0.txn.commit_rate": {10, 20}})
	var buf bytes.Buffer
	err := WriteHTML(&buf, "t<i>tle", map[string]*Set{"c&1": set}, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "t&lt;i&gt;tle") {
		t.Fatal("title not escaped")
	}
	if strings.Contains(out, "__DATA__") || strings.Contains(out, "__TITLE__") {
		t.Fatal("placeholders not substituted")
	}
	// The data blob must be JSON-escaped so "</script>" cannot occur inside.
	start := strings.Index(out, `<script id="data" type="application/json">`)
	if start < 0 {
		t.Fatal("data blob missing")
	}
	blob := out[start+len(`<script id="data" type="application/json">`):]
	blob = blob[:strings.Index(blob, "</script>")]
	if strings.ContainsAny(blob, "<>") {
		t.Fatal("unescaped angle brackets inside the data blob")
	}
	var doc any
	if err := json.Unmarshal([]byte(blob), &doc); err != nil {
		t.Fatalf("data blob is not valid JSON: %v", err)
	}
}

// TestSamplerDeterministic runs two identical synthetic engines and expects
// byte-identical CSV exports.
func TestSamplerDeterministic(t *testing.T) {
	run := func() []byte {
		eng := sim.NewEngine(7)
		s := New(50 * sim.Microsecond)
		var count int64
		eng.Ticker(7*sim.Microsecond, func() bool {
			count += int64(eng.Rand().Intn(10))
			return eng.Now() < 5*sim.Millisecond
		})
		s.Rate("events", func() int64 { return count })
		s.Attach(eng)
		eng.Run(2 * sim.Millisecond)
		s.Stop()
		var buf bytes.Buffer
		if err := WriteCSV(&buf, s.Set()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatal("two identically-seeded runs exported different telemetry")
	}
}
