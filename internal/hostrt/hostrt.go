// Package hostrt models host-side DPDK threads: coordinator application
// threads that initiate transactions and run execution logic, Robinhood
// worker threads that apply logged write sets (§4.2 step 7), and — for the
// RPC baselines — host RPC handler threads. Each thread is a nicrt.Poller
// over simulated time with an inbox, an outbox batched per iteration, and a
// pluggable idle-poll hook for background work.
package hostrt

import (
	"fmt"
	"math/rand"

	"xenic/internal/metrics"
	"xenic/internal/model"
	"xenic/internal/nicrt"
	"xenic/internal/sim"
	"xenic/internal/wire"
)

// Handler processes one message delivered to a host thread.
type Handler func(t *Thread, src int, m wire.Msg)

// Host is one server's set of host threads.
type Host struct {
	eng     *sim.Engine
	p       model.Params
	node    int
	threads []*Thread
	rng     *rand.Rand

	handler  Handler
	idle     func(t *Thread) bool
	transmit func(t *Thread, ms []wire.Msg)
	router   func(m wire.Msg) int

	util *metrics.Utilization
}

// New creates a host with n threads at the given node. seed is the cluster
// seed; the host PRNG derives from (seed, node) so distinct cluster seeds
// explore distinct random streams on every node.
func New(eng *sim.Engine, p model.Params, node, n int, seed int64) *Host {
	if n <= 0 {
		panic("hostrt: no threads")
	}
	h := &Host{
		eng: eng, p: p, node: node,
		rng:  rand.New(rand.NewSource(seed*1000003 + int64(node)*104729 + 7)),
		util: metrics.NewUtilization(n),
	}
	for i := 0; i < n; i++ {
		t := &Thread{host: h, id: i}
		t.poller = nicrt.NewPoller(eng, p.NICLoopIdle)
		t.poller.SetWork(t.iteration)
		i := i
		t.poller.SetOnBusy(func(d sim.Time) { h.util.Add(i, d) })
		h.threads = append(h.threads, t)
	}
	return h
}

// Node returns the host's node id.
func (h *Host) Node() int { return h.node }

// Threads returns the thread count.
func (h *Host) Threads() int { return len(h.threads) }

// Thread returns thread i.
func (h *Host) Thread(i int) *Thread { return h.threads[i] }

// Rand returns the host's PRNG.
func (h *Host) Rand() *rand.Rand { return h.rng }

// Utilization returns per-thread busy accounting.
func (h *Host) Utilization() *metrics.Utilization { return h.util }

// QueueDepth reports the messages queued at the host's thread inboxes right
// now. A telemetry gauge; O(threads) and read-only.
func (h *Host) QueueDepth() int {
	d := 0
	for _, t := range h.threads {
		d += len(t.in)
	}
	return d
}

// OnMessage installs the message handler.
func (h *Host) OnMessage(fn Handler) { h.handler = fn }

// OnIdle installs the per-iteration background hook (log applying, load
// generation); it reports whether it did work.
func (h *Host) OnIdle(fn func(t *Thread) bool) { h.idle = fn }

// OnTransmit installs the outbox flush function (e.g. post a PCIe packet to
// the local SmartNIC, or RDMA sends for the baselines).
func (h *Host) OnTransmit(fn func(t *Thread, ms []wire.Msg)) { h.transmit = fn }

// SetRouter installs the inbound routing function mapping a message to the
// owning thread index. Default: steer by transaction id.
func (h *Host) SetRouter(fn func(m wire.Msg) int) { h.router = fn }

// Deliver routes inbound messages (e.g. a PCIe packet from the NIC) to
// their owning threads. src is the originating node.
func (h *Host) Deliver(src int, ms []wire.Msg) {
	for _, m := range ms {
		var ti int
		if h.router != nil {
			ti = h.router(m)
		} else {
			ti = int(m.(interface{ GetTxnID() uint64 }).GetTxnID() % uint64(len(h.threads)))
		}
		t := h.threads[ti%len(h.threads)]
		t.in = append(t.in, inMsg{src: src, m: m})
		t.poller.Wake()
	}
}

// WakeAll kicks every thread (used at startup to begin load generation).
func (h *Host) WakeAll() {
	for _, t := range h.threads {
		t.poller.Wake()
	}
}

// StopThread parks thread i permanently.
func (h *Host) StopThread(i int) { h.threads[i].poller.Stop() }

type inMsg struct {
	src int
	m   wire.Msg
}

// Thread is one host core's polling loop.
type Thread struct {
	host   *Host
	id     int
	poller *nicrt.Poller
	in     []inMsg
	out    []wire.Msg
}

// ID returns the thread index.
func (t *Thread) ID() int { return t.id }

// Host returns the owning host.
func (t *Thread) Host() *Host { return t.host }

// Node returns the node id.
func (t *Thread) Node() int { return t.host.node }

// Charge adds compute cost to the current iteration.
func (t *Thread) Charge(d sim.Time) { t.poller.Charge(d) }

// Now returns the thread's current instant.
func (t *Thread) Now() sim.Time { return t.poller.Now() }

// At schedules fn at the thread's current instant plus d.
func (t *Thread) At(d sim.Time, fn func()) { t.poller.At(d, fn) }

// Rand returns the host PRNG.
func (t *Thread) Rand() *rand.Rand { return t.host.rng }

// Send queues m on the outbox, flushed as one batch at iteration end.
func (t *Thread) Send(m wire.Msg) { t.out = append(t.out, m) }

// Deliver places m directly in this thread's inbox, bypassing the router
// (e.g. an RDMA completion owned by this thread).
func (t *Thread) Deliver(src int, m wire.Msg) {
	t.in = append(t.in, inMsg{src: src, m: m})
	t.poller.Wake()
}

// Wake schedules an iteration if the thread is parked.
func (t *Thread) Wake() { t.poller.Wake() }

func (t *Thread) iteration() bool {
	did := false
	msgs := t.in
	t.in = nil
	for _, im := range msgs {
		did = true
		t.Charge(t.host.p.HostMsgProc)
		if t.host.handler == nil {
			panic(fmt.Sprintf("hostrt: node %d has no handler", t.host.node))
		}
		t.host.handler(t, im.src, im.m)
	}
	if t.host.idle != nil {
		if t.host.idle(t) {
			did = true
		}
	}
	if len(t.out) > 0 {
		ms := t.out
		t.out = nil
		t.Charge(t.host.p.HostSendCost)
		if t.host.transmit == nil {
			panic(fmt.Sprintf("hostrt: node %d has no transmit function", t.host.node))
		}
		t.host.transmit(t, ms)
	}
	return did
}
