package hostrt

import (
	"testing"

	"xenic/internal/model"
	"xenic/internal/sim"
	"xenic/internal/wire"
)

func newHost(t *testing.T, threads int) (*sim.Engine, *Host) {
	t.Helper()
	eng := sim.NewEngine(1)
	h := New(eng, model.Default(), 0, threads, 1)
	return eng, h
}

func TestDeliverRoutesByTxnID(t *testing.T) {
	eng, h := newHost(t, 4)
	got := map[int][]uint64{}
	h.OnMessage(func(th *Thread, src int, m wire.Msg) {
		got[th.ID()] = append(got[th.ID()], m.(*wire.TxnDone).TxnID)
	})
	h.OnTransmit(func(th *Thread, ms []wire.Msg) {})
	for i := uint64(0); i < 8; i++ {
		h.Deliver(1, []wire.Msg{&wire.TxnDone{Header: wire.Header{TxnID: i}}})
	}
	eng.RunAll()
	total := 0
	for ti, ids := range got {
		total += len(ids)
		for _, id := range ids {
			if int(id%4) != ti {
				t.Fatalf("txn %d delivered to thread %d", id, ti)
			}
		}
	}
	if total != 8 {
		t.Fatalf("delivered %d messages", total)
	}
}

func TestCustomRouter(t *testing.T) {
	eng, h := newHost(t, 4)
	hits := 0
	h.SetRouter(func(m wire.Msg) int { return 2 })
	h.OnMessage(func(th *Thread, src int, m wire.Msg) {
		if th.ID() != 2 {
			t.Errorf("routed to %d", th.ID())
		}
		hits++
	})
	h.OnTransmit(func(th *Thread, ms []wire.Msg) {})
	h.Deliver(0, []wire.Msg{&wire.TxnDone{}, &wire.TxnDone{}})
	eng.RunAll()
	if hits != 2 {
		t.Fatalf("hits = %d", hits)
	}
}

func TestOutboxBatchesPerIteration(t *testing.T) {
	eng, h := newHost(t, 1)
	var batches [][]wire.Msg
	h.OnMessage(func(th *Thread, src int, m wire.Msg) {
		// Two sends in one handler invocation -> one transmit batch.
		th.Send(&wire.ValidateResp{})
		th.Send(&wire.ValidateResp{})
	})
	h.OnTransmit(func(th *Thread, ms []wire.Msg) { batches = append(batches, ms) })
	h.Deliver(0, []wire.Msg{&wire.TxnDone{}})
	eng.RunAll()
	if len(batches) != 1 || len(batches[0]) != 2 {
		t.Fatalf("batches = %v", batches)
	}
}

func TestIdleHookAndCharging(t *testing.T) {
	eng, h := newHost(t, 1)
	h.OnMessage(func(th *Thread, src int, m wire.Msg) {})
	h.OnTransmit(func(th *Thread, ms []wire.Msg) {})
	iters := 0
	h.OnIdle(func(th *Thread) bool {
		iters++
		if iters <= 3 {
			th.Charge(1 * sim.Microsecond)
			return true
		}
		return false
	})
	h.WakeAll()
	eng.RunAll()
	if iters != 4 {
		t.Fatalf("iterations = %d, want 3 busy + 1 final", iters)
	}
	if busy := h.Utilization().Busy(0); busy != 3*sim.Microsecond {
		t.Fatalf("busy = %v", busy)
	}
}

func TestDirectThreadDeliver(t *testing.T) {
	eng, h := newHost(t, 4)
	hit := -1
	h.OnMessage(func(th *Thread, src int, m wire.Msg) { hit = th.ID() })
	h.OnTransmit(func(th *Thread, ms []wire.Msg) {})
	h.Thread(3).Deliver(0, &wire.TxnDone{Header: wire.Header{TxnID: 0}})
	eng.RunAll()
	if hit != 3 {
		t.Fatalf("delivered to %d, want 3 (router bypassed)", hit)
	}
}

func TestStopThread(t *testing.T) {
	eng, h := newHost(t, 2)
	ran := 0
	h.OnMessage(func(th *Thread, src int, m wire.Msg) { ran++ })
	h.OnTransmit(func(th *Thread, ms []wire.Msg) {})
	h.StopThread(0)
	h.Thread(0).Deliver(0, &wire.TxnDone{})
	eng.RunAll()
	if ran != 0 {
		t.Fatal("stopped thread processed a message")
	}
}

func TestScheduledAtCallback(t *testing.T) {
	eng, h := newHost(t, 1)
	h.OnMessage(func(th *Thread, src int, m wire.Msg) {})
	h.OnTransmit(func(th *Thread, ms []wire.Msg) {})
	var fired sim.Time
	done := false
	h.OnIdle(func(th *Thread) bool {
		if done {
			return false
		}
		done = true
		th.At(5*sim.Microsecond, func() { fired = eng.Now() })
		return true
	})
	h.WakeAll()
	eng.RunAll()
	if fired < 5*sim.Microsecond {
		t.Fatalf("fired at %v", fired)
	}
}
